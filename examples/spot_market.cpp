/**
 * @file
 * A provider's day on the spot market (sections 2.3 and 4).
 *
 * A FabricManager owns a chip; customers bid for Slices and banks
 * under dynamic prices; an auto-tuned newcomer without a performance
 * model finds its shape by hill climbing on heartbeats.  Shows the
 * full hypervisor story: market clearing, allocation, fragmentation,
 * and defragmentation.
 *
 * Usage: spot_market [chip_width] [chip_height]
 */

#include <cstdio>
#include <string>

#include "area/area_model.hh"
#include "core/perf_model.hh"
#include "econ/optimizer.hh"
#include "hyper/autotuner.hh"
#include "hyper/fabric_manager.hh"
#include "hyper/spot_market.hh"

using namespace sharch;

int
main(int argc, char **argv)
{
    const int width = argc > 1 ? std::stoi(argv[1]) : 16;
    const int height = argc > 2 ? std::stoi(argv[2]) : 8;

    PerfModel pm(30000);
    AreaModel am;
    UtilityOptimizer opt(pm, am);
    FabricManager fabric(width, height);

    std::printf("=== Spot market on a %dx%d fabric ===\n", width,
                height);
    std::printf("chip: %u Slices, %u x 64 KB banks\n\n",
                fabric.totalSlices(), fabric.totalBanks());

    // --- 1. Price discovery ---------------------------------------
    SpotMarket market(opt, fabric.totalSlices(), fabric.totalBanks());
    market.addCustomer({"web-farm", "apache",
                        UtilityKind::Throughput, 400.0});
    market.addCustomer({"ci-fleet", "gcc", UtilityKind::Balanced,
                        400.0});
    market.addCustomer({"oldi-search", "omnetpp",
                        UtilityKind::SingleStream, 400.0});

    const auto history = market.runToClearing();
    std::printf("tatonnement: %zu rounds to clear\n", history.size());
    std::printf("%-6s %12s %12s %14s %14s\n", "round", "slice price",
                "bank price", "slice excess", "bank excess");
    for (const SpotRound &r : history) {
        std::printf("%-6u %12.2f %12.2f %+13.1f%% %+13.1f%%\n",
                    r.round, r.prices.slicePrice, r.prices.bankPrice,
                    100.0 * r.sliceExcess, 100.0 * r.bankExcess);
    }

    // --- 2. Allocation at clearing prices --------------------------
    std::printf("\nallocations at clearing prices:\n");
    const SpotRound &last = history.back();
    for (const SpotBid &bid : last.bids) {
        const unsigned vms = static_cast<unsigned>(bid.choice.cores);
        unsigned placed = 0;
        for (unsigned i = 0; i < vms; ++i) {
            if (fabric.allocate(bid.choice.slices, bid.choice.banks))
                ++placed;
        }
        std::printf("  %-12s wanted %2u x (%4u KB, %u Slices), "
                    "placed %2u\n",
                    market.customer(bid.customer).name.c_str(), vms,
                    bid.choice.cacheKb(), bid.choice.slices, placed);
    }
    std::printf("fabric: %.0f%% of Slices, %.0f%% of banks leased; "
                "fragmentation %.2f\n",
                100.0 * fabric.sliceUtilization(),
                100.0 * fabric.bankUtilization(),
                fabric.fragmentation());

    // --- 3. Churn and defragmentation ------------------------------
    const auto all = fabric.allocations();
    for (std::size_t i = 0; i < all.size(); i += 2)
        fabric.release(all[i].id);
    std::printf("\nafter releasing every other VM: fragmentation "
                "%.2f, largest free run %u\n",
                fabric.fragmentation(), fabric.largestFreeRun());
    const auto moves = fabric.defragment();
    Cycles defrag_cost = 0;
    for (const DefragMove &m : moves)
        defrag_cost += m.cost;
    std::printf("defragmentation: %zu Slice-run moves, %llu cycles of "
                "Register Flushes,\n  largest free run now %u "
                "(fragmentation %.2f)\n",
                moves.size(),
                static_cast<unsigned long long>(defrag_cost),
                fabric.largestFreeRun(), fabric.fragmentation());

    // --- 4. A newcomer auto-tunes its shape ------------------------
    std::printf("\nauto-tuning a newcomer (bzip, Utility2) from "
                "(128 KB, 1 Slice):\n");
    AutoTuner tuner(UtilityKind::Balanced, last.prices, 400.0);
    while (auto shape = tuner.nextShape()) {
        const double perf =
            pm.performance("bzip", shape->banks, shape->slices);
        tuner.report(perf);
    }
    std::printf("  %zu trials, %llu reconfiguration cycles, settled "
                "on (%u KB, %u Slices)\n",
                tuner.history().size(),
                static_cast<unsigned long long>(
                    tuner.reconfigurationSpent()),
                tuner.best().shape.banks * 64,
                tuner.best().shape.slices);
    const auto exact = opt.peakUtility("bzip", UtilityKind::Balanced,
                                       last.prices, 400.0);
    std::printf("  (exhaustive search would pick (%u KB, %u Slices); "
                "tuner utility is %.0f%% of optimal)\n",
                exact.cacheKb(), exact.slices,
                100.0 * tuner.best().utility / exact.objective);
    return 0;
}
