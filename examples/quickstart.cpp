/**
 * @file
 * Quickstart: compose a Virtual Core, run a workload, vary its shape.
 *
 * Usage: quickstart [benchmark] [slices] [l2_banks]
 *
 * Builds a VCore from `slices` Slices and `l2_banks` 64 KB L2 banks,
 * replays a synthetic trace of the named benchmark through SSim, and
 * prints the run statistics, then shows how performance moves as the
 * same workload runs on a few other VCore shapes -- the one-minute
 * tour of what the Sharing Architecture is for.
 */

#include <cstdio>
#include <string>

#include "core/perf_model.hh"
#include "core/vm_sim.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"

using namespace sharch;

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "gcc";
    const unsigned slices = argc > 2 ? std::stoul(argv[2]) : 2;
    const unsigned banks = argc > 3 ? std::stoul(argv[3]) : 2;

    if (!hasProfile(bench)) {
        std::printf("unknown benchmark '%s'; available:\n",
                    bench.c_str());
        for (const auto &n : benchmarkNames())
            std::printf("  %s\n", n.c_str());
        return 1;
    }

    std::printf("=== Sharing Architecture quickstart ===\n");
    std::printf("benchmark: %s, VCore: %u Slice(s) + %u x 64 KB L2\n\n",
                bench.c_str(), slices, banks);

    // Run one VM in full detail.
    PerfModel pm(60000);
    const VmResult res = pm.detailedRun(profileFor(bench), banks,
                                        slices);
    std::printf("%s\n", res.aggregate.report().c_str());

    // The same binary, re-run on differently shaped VCores: no
    // recompilation, just a different lease from the provider.
    std::printf("reshaping the VCore (same trace, no recompilation):\n");
    std::printf("  %-28s %10s\n", "configuration", "IPC");
    const unsigned shapes[][2] = {
        {1, 0}, {1, 2}, {2, 2}, {4, 8}, {8, 16}};
    for (const auto &sh : shapes) {
        const double ipc = pm.performance(bench, sh[1], sh[0]);
        std::printf("  %u Slice(s) + %4u KB L2     %10.3f\n", sh[0],
                    sh[1] * 64, ipc);
    }
    return 0;
}
