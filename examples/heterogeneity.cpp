/**
 * @file
 * Datacenter heterogeneity study (section 5.9) as a runnable example:
 * compare a fixed big/small-core datacenter against the Sharing
 * Architecture's reshape-on-demand fabric across workload mixes.
 *
 * Usage: heterogeneity [appA] [appB]   (defaults: hmmer gobmk)
 */

#include <cstdio>
#include <string>

#include "area/area_model.hh"
#include "core/perf_model.hh"
#include "econ/datacenter.hh"
#include "econ/optimizer.hh"
#include "trace/profile.hh"

using namespace sharch;

int
main(int argc, char **argv)
{
    const std::string app_a = argc > 1 ? argv[1] : "hmmer";
    const std::string app_b = argc > 2 ? argv[2] : "gobmk";
    if (!hasProfile(app_a) || !hasProfile(app_b)) {
        std::printf("unknown benchmark; available:\n");
        for (const auto &n : benchmarkNames())
            std::printf("  %s\n", n.c_str());
        return 1;
    }

    PerfModel pm(40000);
    AreaModel am;
    UtilityOptimizer opt(pm, am);

    const std::vector<double> mixes = {0.0, 0.25, 0.5, 0.75, 1.0};
    const DatacenterResult res =
        datacenterStudy(opt, app_a, app_b, mixes, 21);

    std::printf("=== Heterogeneous datacenter vs. the Sharing "
                "fabric ===\n");
    std::printf("core types: %s and %s\n\n", res.big.label.c_str(),
                res.small.label.c_str());

    std::printf("%-22s %18s %20s\n", "mix", "best big-core frac",
                "perf/area at best");
    for (double m : mixes) {
        const double f = res.optimalBigFrac(m);
        double best = 0.0;
        for (const MixPoint &p : res.points) {
            if (p.appAMix == m)
                best = std::max(best, p.utilityPerArea);
        }
        std::printf("%3.0f%% %s / %3.0f%% %s %12.2f %20.3f\n",
                    100.0 * m, app_a.c_str(), 100.0 * (1.0 - m),
                    app_b.c_str(), f, best);
    }

    // What the Sharing Architecture achieves: per-job-optimal shapes
    // on the same silicon, for every mix, with no fixed ratio.
    const OptResult a_opt = opt.peakPerfPerArea(app_a, 1);
    const OptResult b_opt = opt.peakPerfPerArea(app_b, 1);
    std::printf("\nSharing fabric: every %s job gets (%u KB, %u "
                "Slices), every %s job\ngets (%u KB, %u Slices), at "
                "any mix -- the per-area optimum by construction.\n",
                app_a.c_str(), a_opt.cacheKb(), a_opt.slices,
                app_b.c_str(), b_opt.cacheKb(), b_opt.slices);
    // Sharing at a 50/50 core mix: half the cores take app A's
    // optimal shape, half app B's; performance and area both follow.
    const double area_a = am.vcoreAreaMm2(a_opt.slices, a_opt.banks);
    const double area_b = am.vcoreAreaMm2(b_opt.slices, b_opt.banks);
    const double sharing = (0.5 * a_opt.perf + 0.5 * b_opt.perf) /
                           (0.5 * area_a + 0.5 * area_b);
    std::printf("at a 50/50 mix the fabric delivers %.3f perf/area "
                "with zero stranded silicon.\n", sharing);
    return 0;
}
