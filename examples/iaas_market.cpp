/**
 * @file
 * An IaaS provider auctioning sub-core resources (sections 2 and 5.6).
 *
 * Three customers arrive with different workloads and utility
 * functions -- a throughput-oriented web farm, a balanced batch user,
 * and a latency-obsessed OLDI service.  Under each of the paper's
 * three markets, every customer solves Equation 2's budget problem
 * over the performance surface and leases a different VCore shape;
 * the provider prints the resulting allocations and total welfare.
 *
 * Usage: iaas_market [budget]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "area/area_model.hh"
#include "core/perf_model.hh"
#include "econ/market.hh"
#include "econ/optimizer.hh"
#include "econ/utility.hh"

using namespace sharch;

namespace {

struct CustomerSpec
{
    const char *who;
    const char *benchmark;
    UtilityKind utility;
};

} // namespace

int
main(int argc, char **argv)
{
    const double budget =
        argc > 1 ? std::stod(argv[1]) : defaultBudget();

    PerfModel pm(40000);
    AreaModel am;
    UtilityOptimizer opt(pm, am);

    const CustomerSpec customers[] = {
        {"web farm (throughput)", "apache", UtilityKind::Throughput},
        {"batch compiler (balanced)", "gcc", UtilityKind::Balanced},
        {"OLDI search (latency)", "omnetpp",
         UtilityKind::SingleStream},
    };

    std::printf("=== Sharing Architecture IaaS market ===\n");
    std::printf("per-customer budget: %.0f units "
                "(1 unit = one 64 KB L2 bank-hour)\n",
                budget);

    for (const Market &m : allMarkets()) {
        std::printf("\n--- %s: slice %.0f, 64 KB bank %.0f ---\n",
                    m.name.c_str(), m.slicePrice, m.bankPrice);
        double welfare = 0.0;
        for (const CustomerSpec &c : customers) {
            const OptResult r =
                opt.peakUtility(c.benchmark, c.utility, m, budget);
            std::printf("%-28s leases %5.1f VCores of "
                        "(%4u KB L2 + %u Slices)  perf %.2f  "
                        "utility %.3g\n",
                        c.who, r.cores, r.cacheKb(), r.slices, r.perf,
                        r.objective);
            welfare += r.objective;
        }
        std::printf("total welfare: %.4g\n", welfare);
    }

    std::printf("\nNo recompilation separates these leases: the same "
                "binary runs on every\nVCore shape, and the provider "
                "re-prices Slices and banks as demand moves.\n");
    return 0;
}
