/**
 * @file
 * Phase-adaptive VCore reconfiguration (sections 3.8 and 5.10).
 *
 * Runs the ten gcc phases back to back twice: once on the best static
 * shape, and once reshaping at each phase boundary to that phase's
 * perf^2/area optimum -- paying the 10,000-cycle L2-flush (or
 * 500-cycle Slice-only) penalty at each transition.
 *
 * Usage: phase_adaptive [instructions_per_phase]
 */

#include <cstdio>
#include <string>

#include "area/area_model.hh"
#include "core/perf_model.hh"
#include "core/reconfig.hh"
#include "core/vm_sim.hh"
#include "econ/optimizer.hh"
#include "econ/phases.hh"
#include "trace/generator.hh"

using namespace sharch;

namespace {

/** Cycles to run one phase on one shape, on a fresh VM. */
Cycles
runPhase(const BenchmarkProfile &phase, const VCoreShape &shape,
         std::size_t instructions)
{
    SimConfig cfg;
    cfg.numSlices = shape.slices;
    cfg.numL2Banks = shape.banks;
    VmSim vm(cfg, 1);
    vm.prewarm(phase);
    TraceGenerator gen(phase, 1);
    return vm.run(gen.generateThreads(instructions)).cycles;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::size_t per_phase =
        argc > 1 ? std::stoul(argv[1]) : 20000;

    PerfModel pm(per_phase);
    AreaModel am;
    UtilityOptimizer opt(pm, am);
    const ReconfigManager reconfig;
    const auto phases = gccPhaseProfiles();

    // Choose shapes: per-phase optima and the best static compromise
    // for the perf^2/area metric.
    const PhaseStudyResult study = phaseStudy(opt, phases);
    const PhaseStudyRow &row = study.rows[1]; // perf^2/area

    std::printf("=== Phase-adaptive reconfiguration on gcc ===\n");
    std::printf("static shape: (%u KB, %u Slices)\n\n",
                row.staticOptimal.banks * 64, row.staticOptimal.slices);
    std::printf("%-8s %16s %12s %16s %12s %9s\n", "phase", "dyn shape",
                "dyn cycles", "static shape", "stat cycles",
                "reconfig");

    Cycles dynamic_total = 0, static_total = 0;
    VCoreShape prev = row.perPhase.front();
    for (std::size_t i = 0; i < phases.size(); ++i) {
        const VCoreShape shape = row.perPhase[i];
        const Cycles penalty =
            i == 0 ? 0 : reconfig.transitionCost(prev, shape);
        const Cycles dyn = runPhase(phases[i], shape, per_phase);
        const Cycles sta =
            runPhase(phases[i], row.staticOptimal, per_phase);
        dynamic_total += dyn + penalty;
        static_total += sta;
        std::printf("%-8zu   (%5uK, %u)   %10llu    (%5uK, %u)   "
                    "%10llu %8llu\n",
                    i + 1, shape.banks * 64, shape.slices,
                    static_cast<unsigned long long>(dyn),
                    row.staticOptimal.banks * 64,
                    row.staticOptimal.slices,
                    static_cast<unsigned long long>(sta),
                    static_cast<unsigned long long>(penalty));
        prev = shape;
    }

    std::printf("\ntotal: dynamic %llu cycles (incl. reconfiguration) "
                "vs static %llu cycles\n",
                static_cast<unsigned long long>(dynamic_total),
                static_cast<unsigned long long>(static_total));
    std::printf("speedup from reshaping the VCore between phases: "
                "%.1f%%\n",
                100.0 * (static_cast<double>(static_total) /
                             dynamic_total -
                         1.0));
    std::printf("\n(The static shape was already chosen as gcc's own "
                "best compromise; the\npaper's Table 7 reports "
                "9-19%% for this experiment at full SPEC scale.)\n");
    return 0;
}
