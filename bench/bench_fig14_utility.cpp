/**
 * @file
 * Table 5 and Figure 14: the three customer utility functions, and
 * utility surfaces over (Slice count, L2 banks) for gcc and bzip under
 * Utility1 and Utility2, rendered as text heat maps (x = Slices 1..8,
 * y = log2 of 64 KB banks, exactly the paper's axes).
 *
 * The facts to reproduce: changing the utility function moves the
 * peak for a fixed workload, and changing the workload moves the peak
 * for a fixed utility (bzip peaks at a small VCore under Utility2,
 * gcc at a larger one).
 */

#include <algorithm>
#include <cmath>
#include <vector>

#include "bench_util.hh"
#include "econ/market.hh"
#include "econ/utility.hh"

using namespace sharch;
using namespace sharch::bench;

namespace {

// log2-spaced bank counts: 0, 1, 2, 4, ..., 128 (the paper's y axis).
const std::vector<unsigned> &
bankAxis()
{
    return l2BankGrid();
}

void
printSurface(UtilityOptimizer &opt, const std::string &bench,
             UtilityKind u)
{
    const Market m = market2();
    const double budget = defaultBudget();

    std::printf("\n%s, %s (normalized 0..9; '*' marks the peak)\n",
                bench.c_str(), utilityName(u));

    // Collect the surface and find the maximum.
    double best = 0.0;
    unsigned best_s = 1, best_b = 0;
    std::vector<std::vector<double>> grid;
    for (unsigned bi = 0; bi < bankAxis().size(); ++bi) {
        grid.emplace_back();
        for (unsigned s = 1; s <= SimConfig::kMaxSlices; ++s) {
            const double util = opt.utilityAt(bench, u, m, budget,
                                              bankAxis()[bi], s);
            grid.back().push_back(util);
            if (util > best) {
                best = util;
                best_s = s;
                best_b = bankAxis()[bi];
            }
        }
    }

    // Highest bank row first so the y axis grows upward.
    for (std::size_t bi = bankAxis().size(); bi-- > 0;) {
        std::printf("%6uK |", banksToKb(bankAxis()[bi]));
        for (unsigned s = 1; s <= SimConfig::kMaxSlices; ++s) {
            const double util = grid[bi][s - 1];
            if (bankAxis()[bi] == best_b && s == best_s) {
                std::printf("  *");
                continue;
            }
            const int level = std::min(
                9, static_cast<int>(std::floor(10.0 * util / best)));
            std::printf("  %d", level);
        }
        std::printf("\n");
    }
    std::printf("        ");
    for (unsigned s = 1; s <= SimConfig::kMaxSlices; ++s)
        std::printf(" s%u ", s);
    std::printf("\npeak: (%u KB, %u Slices), utility %.3g\n",
                best_b * 64, best_s, best);
}

} // namespace

int
main()
{
    PerfModel &pm = sharedPerfModel();
    prefillSurface(pm, fullPaperGrid());
    AreaModel am;
    UtilityOptimizer opt(pm, am);

    printHeader("Table 5", "The three customer utility functions");
    std::printf("Utility1 (latency-tolerant): U = v * P(c, s)\n");
    std::printf("Utility2 (balanced):         U = sqrt(v) * P^2\n");
    std::printf("Utility3 (OLDI-style):       U = cbrt(v) * P^3\n");
    std::printf("with v = B / (Cc*c + Cs*s)  (Equation 2)\n\n");

    printHeader("Figure 14",
                "Utility surfaces over (Slices, L2 banks)");
    for (const char *bench : {"gcc", "bzip"}) {
        printSurface(opt, bench, UtilityKind::Throughput);
        printSurface(opt, bench, UtilityKind::Balanced);
    }
    std::printf("\npaper shape: for the same workload, Utility1 and "
                "Utility2 peak at different\nconfigurations; for the "
                "same utility, bzip peaks at a smaller VCore than "
                "gcc.\n");
    return 0;
}
