/**
 * @file
 * Table 5 and Figure 14: the three customer utility functions, and
 * utility surfaces over (Slice count, L2 banks) for gcc and bzip under
 * Utility1 and Utility2 (the paper's axes: x = Slices 1..8, y = log2
 * of 64 KB banks).
 *
 * The facts to reproduce: changing the utility function moves the
 * peak for a fixed workload, and changing the workload moves the peak
 * for a fixed utility (bzip peaks at a small VCore under Utility2,
 * gcc at a larger one).
 */

#include <string>
#include <vector>

#include "area/area_model.hh"
#include "config/sim_config.hh"
#include "core/perf_model.hh"
#include "econ/market.hh"
#include "econ/optimizer.hh"
#include "econ/utility.hh"
#include "study/registry.hh"
#include "study/study.hh"
#include "study/surface.hh"
#include "trace/profile.hh"

using namespace sharch;

namespace {

/** One surface table plus its peak row for the peaks summary. */
std::vector<study::Value>
surfaceTable(study::Report &report, UtilityOptimizer &opt,
             const std::string &bench, UtilityKind u)
{
    const Market m = market2();
    const double budget = defaultBudget();

    const std::string id =
        bench + "_" + (u == UtilityKind::Throughput ? "utility1"
                                                    : "utility2");
    study::Table &t = report.addTable(
        id, "Utility surface: " + bench + " under " +
                utilityName(u));
    t.col("l2_kb", study::Value::Kind::Integer);
    for (unsigned s = 1; s <= SimConfig::kMaxSlices; ++s)
        t.col("s" + std::to_string(s), study::Value::Kind::Real, 4);

    double best = 0.0;
    unsigned best_s = 1, best_b = 0;
    // Highest bank row first so the y axis grows upward, as in the
    // paper's heat maps.
    const std::vector<unsigned> &banks = l2BankGrid();
    for (std::size_t bi = banks.size(); bi-- > 0;) {
        std::vector<study::Value> row{banksToKb(banks[bi])};
        for (unsigned s = 1; s <= SimConfig::kMaxSlices; ++s) {
            const double util = opt.utilityAt(bench, u, m, budget,
                                              banks[bi], s);
            row.push_back(util);
            if (util > best) {
                best = util;
                best_s = s;
                best_b = banks[bi];
            }
        }
        t.addRow(std::move(row));
    }
    return {bench, utilityName(u), banksToKb(best_b), best_s, best};
}

class Fig14UtilityStudy final : public study::Study
{
  public:
    std::string
    name() const override
    {
        return "fig14";
    }

    std::string
    description() const override
    {
        return "Utility surfaces over (Slices, L2 banks) for gcc and "
               "bzip";
    }

    std::vector<exec::SweepPoint>
    grid() const override
    {
        return study::fullPaperGrid();
    }

    void
    run(study::ReportContext &ctx) override
    {
        AreaModel am;
        UtilityOptimizer opt(ctx.pm, am);

        ctx.report.addNote(
            "Table 5: Utility1 (latency-tolerant) U = v * P; "
            "Utility2 (balanced) U = sqrt(v) * P^2; Utility3 "
            "(OLDI-style) U = cbrt(v) * P^3; with v = B / (Cc*c + "
            "Cs*s) (Equation 2).");

        study::Table &peaks = ctx.report.addTable(
            "peaks", "Peak of each utility surface");
        peaks.col("benchmark", study::Value::Kind::Text)
            .col("utility", study::Value::Kind::Text)
            .col("peak_l2_kb", study::Value::Kind::Integer)
            .col("peak_slices", study::Value::Kind::Integer)
            .col("utility_value", study::Value::Kind::Real, 3);
        for (const char *bench : {"gcc", "bzip"}) {
            for (UtilityKind u : {UtilityKind::Throughput,
                                  UtilityKind::Balanced}) {
                peaks.addRow(
                    surfaceTable(ctx.report, opt, bench, u));
            }
        }
        ctx.report.addNote(
            "paper shape: for the same workload, Utility1 and "
            "Utility2 peak at different configurations; for the same "
            "utility, bzip peaks at a smaller VCore than gcc.");
    }
};

} // namespace

SHARCH_REGISTER_STUDY(Fig14UtilityStudy)
