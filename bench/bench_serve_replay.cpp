/**
 * @file
 * Checkpoint-determinism study for the allocation engine: a
 * tab6-style market session (arrivals with budgets, auction epochs,
 * a fault, departures) is driven twice through AllocationEngine --
 * once straight through, and once killed at a mid-stream Checkpoint
 * event and resumed in a *fresh* engine from the sharch-state-v1
 * document.  The fact to reproduce is the engine's core contract:
 * both runs emit byte-identical sharch-report-v1 output, so a serve
 * daemon (or a multi-day churn experiment) can be stopped and
 * restarted at any checkpoint without perturbing a single byte of
 * its results.
 */

#include "area/area_model.hh"
#include "econ/market.hh"
#include "engine/allocation_engine.hh"
#include "engine/event.hh"
#include "study/registry.hh"
#include "study/study.hh"
#include "study/surface.hh"
#include "trace/profile.hh"

using namespace sharch;

namespace {

/** The two workloads the session's tenants run. */
std::vector<std::string>
replayBenchmarks()
{
    const std::vector<std::string> names = benchmarkNames();
    return {names.front(), names.back()};
}

/**
 * The scripted session: two arrivals, an auction, growth, a Slice
 * fault under live VCores, the mid-stream checkpoint, churn, a
 * heal, and a final re-clearing.
 */
std::vector<engine::Event>
replayScript()
{
    const std::vector<std::string> bench = replayBenchmarks();
    const double budget = defaultBudget();
    std::vector<engine::Event> script;
    script.push_back(engine::tenantArrive(
        0, "t-alpha", bench[0], UtilityKind::Throughput, budget, 4,
        8));
    script.push_back(engine::tenantArrive(
        0, "t-beta", bench[1], UtilityKind::Balanced, budget, 6, 4));
    script.push_back(engine::auctionEpoch(100));
    script.push_back(engine::tenantArrive(
        200, "t-gamma", bench[0], UtilityKind::SingleStream, budget,
        8, 16));
    script.push_back(engine::faultStrike(
        300, fault::FaultKind::Slice, Coord{2, 0}));
    script.push_back(engine::checkpoint(400, "mid-session"));
    script.push_back(engine::tenantDepart(500, "t-beta"));
    script.push_back(engine::auctionEpoch(600));
    script.push_back(engine::tenantArrive(
        700, "t-delta", bench[1], UtilityKind::Throughput, budget, 2,
        2));
    script.push_back(engine::healFault(
        800, fault::FaultKind::Slice, Coord{2, 0}));
    script.push_back(engine::auctionEpoch(900));
    return script;
}

class ServeReplayStudy final : public study::Study
{
  public:
    std::string
    name() const override
    {
        return "serve_replay";
    }

    std::string
    description() const override
    {
        return "Engine checkpoint/resume is byte-deterministic";
    }

    std::vector<exec::SweepPoint>
    grid() const override
    {
        // The market's bids sweep the whole (banks, slices) grid of
        // each tenant's benchmark at every tatonnement round.
        std::vector<BenchmarkProfile> profiles;
        for (const std::string &b : replayBenchmarks())
            profiles.push_back(profileFor(b));
        std::vector<unsigned> slices;
        for (unsigned s = 1; s <= 8; ++s)
            slices.push_back(s);
        return exec::sweepGrid(profiles, l2BankGrid(), slices);
    }

    void
    run(study::ReportContext &ctx) override
    {
        AreaModel am;
        UtilityOptimizer opt(ctx.pm, am);
        const engine::EngineConfig cfg; // the 8x8 default chip

        // Run 1: straight through, harvesting the checkpoint the
        // Checkpoint event captures on the way.
        engine::AllocationEngine full(opt, cfg);
        for (const engine::Event &e : replayScript())
            full.post(e);
        full.run();
        const std::string checkpoint = full.lastCheckpoint();
        const std::string fullJson =
            study::renderJson(full.finalReport());

        // Run 2: a fresh engine resumed from the checkpoint bytes,
        // as a restarted serve daemon would be.
        engine::AllocationEngine resumed(opt, cfg);
        std::string restoreError;
        const bool restored =
            resumed.restoreState(checkpoint, &restoreError);
        if (restored)
            resumed.run();
        const std::string resumedJson =
            study::renderJson(resumed.finalReport());

        const bool match = restored && fullJson == resumedJson;

        study::Table &t = ctx.report.addTable(
            "serve_replay", "Interrupted vs. uninterrupted run");
        t.col("metric", study::Value::Kind::Text)
            .col("value", study::Value::Kind::Integer);
        t.addRow({"checkpoint_match", match ? 1 : 0});
        t.addRow({"restore_ok", restored ? 1 : 0});
        t.addRow({"checkpoint_bytes",
                  static_cast<unsigned long long>(
                      checkpoint.size())});
        t.addRow({"report_bytes",
                  static_cast<unsigned long long>(fullJson.size())});
        t.addRow({"events_processed",
                  static_cast<unsigned long long>(
                      full.stats().processed)});
        t.addRow({"admitted", static_cast<unsigned long long>(
                                  full.stats().admitted)});
        t.addRow({"departures", static_cast<unsigned long long>(
                                    full.stats().departures)});
        t.addRow({"faults", static_cast<unsigned long long>(
                                full.stats().faults)});
        if (!restored)
            ctx.report.addNote("restore failed: " + restoreError);
        ctx.report.addNote(
            "contract: a run killed at the mid-session checkpoint "
            "and resumed from its sharch-state-v1 document emits "
            "byte-identical sharch-report-v1 output "
            "(checkpoint_match = 1).");
    }
};

} // namespace

SHARCH_REGISTER_STUDY(ServeReplayStudy)
