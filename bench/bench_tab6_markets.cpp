/**
 * @file
 * Table 6: optimal VCore configurations in three different markets
 * (section 5.7).  Market2 prices resources at area parity (1 Slice ==
 * 128 KB of cache); Market1 prices Slices at 4x their equal-area cost;
 * Market3 prices cache at 4x.  The fact to reproduce: when prices
 * deviate from area, customers substitute toward the cheap resource.
 */

#include "bench_util.hh"
#include "econ/market.hh"
#include "trace/profile.hh"

using namespace sharch;
using namespace sharch::bench;

int
main()
{
    PerfModel &pm = sharedPerfModel();
    prefillSurface(pm, fullPaperGrid());
    AreaModel am;
    UtilityOptimizer opt(pm, am);
    const double budget = defaultBudget();

    printHeader("Table 6",
                "Optimal (L2 KB, Slices) in different markets");
    for (const Market &m : allMarkets()) {
        std::printf("\n%s (slice price %.0f, 64 KB bank price %.0f)\n",
                    m.name.c_str(), m.slicePrice, m.bankPrice);
        std::printf("%-12s %16s %16s %16s\n", "benchmark", "Utility1",
                    "Utility2", "Utility3");
        for (const std::string &name : benchmarkNames()) {
            std::printf("%-12s", name.c_str());
            for (UtilityKind u : kAllUtilities) {
                const OptResult r = opt.peakUtility(name, u, m, budget);
                std::printf("    (%5uK, %u)  ", r.cacheKb(), r.slices);
            }
            std::printf("\n");
        }
    }
    std::printf("\npaper shape: Market1 (expensive Slices) shifts "
                "optima toward cache;\nMarket3 (expensive cache) "
                "shifts them toward Slices.\n");
    return 0;
}
