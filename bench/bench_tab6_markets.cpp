/**
 * @file
 * Table 6: optimal VCore configurations in three different markets
 * (section 5.7).  Market2 prices resources at area parity (1 Slice ==
 * 128 KB of cache); Market1 prices Slices at 4x their equal-area cost;
 * Market3 prices cache at 4x.  The fact to reproduce: when prices
 * deviate from area, customers substitute toward the cheap resource.
 */

#include "area/area_model.hh"
#include "core/perf_model.hh"
#include "econ/market.hh"
#include "econ/optimizer.hh"
#include "study/registry.hh"
#include "study/study.hh"
#include "study/surface.hh"
#include "trace/profile.hh"

using namespace sharch;

namespace {

class Tab6MarketsStudy final : public study::Study
{
  public:
    std::string
    name() const override
    {
        return "tab6";
    }

    std::string
    description() const override
    {
        return "Optimal (L2 KB, Slices) in different markets";
    }

    std::vector<exec::SweepPoint>
    grid() const override
    {
        return study::fullPaperGrid();
    }

    void
    run(study::ReportContext &ctx) override
    {
        AreaModel am;
        UtilityOptimizer opt(ctx.pm, am);
        const double budget = defaultBudget();

        study::Table &prices =
            ctx.report.addTable("markets", "The three markets");
        prices.col("market", study::Value::Kind::Text)
            .col("slice_price", study::Value::Kind::Real, 0)
            .col("bank_price", study::Value::Kind::Real, 0);

        study::Table &t = ctx.report.addTable(
            "tab6",
            "Optimal (L2 KB, Slices) per market and utility");
        t.col("market", study::Value::Kind::Text)
            .col("benchmark", study::Value::Kind::Text);
        for (int u = 1; u <= 3; ++u) {
            const std::string p = "u" + std::to_string(u);
            t.col(p + "_l2_kb", study::Value::Kind::Integer)
                .col(p + "_slices", study::Value::Kind::Integer);
        }
        for (const Market &m : allMarkets()) {
            prices.addRow({m.name, m.slicePrice, m.bankPrice});
            for (const std::string &bench : benchmarkNames()) {
                std::vector<study::Value> row{m.name, bench};
                for (UtilityKind u : kAllUtilities) {
                    const OptResult r =
                        opt.peakUtility(bench, u, m, budget);
                    row.push_back(r.cacheKb());
                    row.push_back(r.slices);
                }
                t.addRow(std::move(row));
            }
        }
        ctx.report.addNote(
            "paper shape: Market1 (expensive Slices) shifts optima "
            "toward cache; Market3 (expensive cache) shifts them "
            "toward Slices.");
    }
};

} // namespace

SHARCH_REGISTER_STUDY(Tab6MarketsStudy)
