/**
 * @file
 * Figure 17: datacenter heterogeneity comparison (section 5.9).
 *
 * A fixed heterogeneous datacenter mixes big cores (gobmk's peak
 * Utility1 shape) and small cores (hmmer's).  Sweeping the big-core
 * area fraction for several hmmer:gobmk mixes shows the optimal
 * ratio moving with the mix -- no static mixture serves all
 * workloads, which is the Sharing Architecture's opening.
 */

#include <cmath>
#include <cstdio>

#include "area/area_model.hh"
#include "core/perf_model.hh"
#include "econ/datacenter.hh"
#include "study/registry.hh"
#include "study/study.hh"
#include "study/surface.hh"

using namespace sharch;

namespace {

const std::vector<double> kMixes = {0.0, 0.25, 0.5, 0.75, 1.0};
constexpr unsigned kSteps = 11;

class Fig17DatacenterStudy final : public study::Study
{
  public:
    std::string
    name() const override
    {
        return "fig17";
    }

    std::string
    description() const override
    {
        return "Utility of hmmer/gobmk mixes vs. big/small core "
               "ratio";
    }

    std::vector<exec::SweepPoint>
    grid() const override
    {
        return study::fullPaperGrid();
    }

    void
    run(study::ReportContext &ctx) override
    {
        AreaModel am;
        UtilityOptimizer opt(ctx.pm, am);

        const DatacenterResult res =
            datacenterStudy(opt, "hmmer", "gobmk", kMixes, kSteps);
        ctx.report.addMeta("big_core", res.big.label);
        ctx.report.addMeta("small_core", res.small.label);

        study::Table &t = ctx.report.addTable(
            "fig17",
            "Utility/area vs. big-core fraction per hmmer mix");
        t.col("big_core_frac", study::Value::Kind::Real, 2);
        for (double m : kMixes) {
            char h[32];
            std::snprintf(h, sizeof(h), "hmmer_%.0f_pct", 100.0 * m);
            t.col(h, study::Value::Kind::Real, 3);
        }
        for (unsigned i = 0; i < kSteps; ++i) {
            const double f = i / 10.0;
            std::vector<study::Value> row{f};
            for (double m : kMixes) {
                for (const MixPoint &p : res.points) {
                    if (std::abs(p.bigCoreAreaFrac - f) < 1e-9 &&
                        std::abs(p.appAMix - m) < 1e-9) {
                        row.push_back(p.utilityPerArea);
                    }
                }
            }
            t.addRow(std::move(row));
        }

        study::Table &o = ctx.report.addTable(
            "optimal_frac", "Optimal big-core fraction per mix");
        o.col("hmmer_pct", study::Value::Kind::Real, 0)
            .col("gobmk_pct", study::Value::Kind::Real, 0)
            .col("optimal_big_frac", study::Value::Kind::Real, 1);
        for (double m : kMixes)
            o.addRow({100.0 * m, 100.0 * (1.0 - m),
                      res.optimalBigFrac(m)});

        ctx.report.addNote(
            "paper shape: the optimal big/small ratio moves with the "
            "application mix, so a fixed heterogeneous mixture cannot "
            "serve all cloud workloads optimally.");
    }
};

} // namespace

SHARCH_REGISTER_STUDY(Fig17DatacenterStudy)
