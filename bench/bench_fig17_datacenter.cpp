/**
 * @file
 * Figure 17: datacenter heterogeneity comparison (section 5.9).
 *
 * A fixed heterogeneous datacenter mixes big cores (gobmk's peak
 * Utility1 shape) and small cores (hmmer's).  Sweeping the big-core
 * area fraction for several hmmer:gobmk mixes shows the optimal
 * ratio moving with the mix -- no static mixture serves all
 * workloads, which is the Sharing Architecture's opening.
 */

#include <cmath>

#include "bench_util.hh"
#include "econ/datacenter.hh"

using namespace sharch;
using namespace sharch::bench;

int
main()
{
    PerfModel &pm = sharedPerfModel();
    prefillSurface(pm, fullPaperGrid());
    AreaModel am;
    UtilityOptimizer opt(pm, am);

    printHeader("Figure 17",
                "Utility of hmmer/gobmk mixes vs. big/small core "
                "ratio");

    const std::vector<double> mixes = {0.0, 0.25, 0.5, 0.75, 1.0};
    const DatacenterResult res =
        datacenterStudy(opt, "hmmer", "gobmk", mixes, 11);

    std::printf("big core: %s, small core: %s\n",
                res.big.label.c_str(), res.small.label.c_str());
    std::printf("%-18s", "big-core frac");
    for (double m : mixes)
        std::printf("  hmmer=%3.0f%%", 100.0 * m);
    std::printf("\n");
    for (unsigned i = 0; i < 11; ++i) {
        const double f = i / 10.0;
        std::printf("%-18.2f", f);
        for (double m : mixes) {
            for (const MixPoint &p : res.points) {
                if (std::abs(p.bigCoreAreaFrac - f) < 1e-9 &&
                    std::abs(p.appAMix - m) < 1e-9) {
                    std::printf("  %10.3f", p.utilityPerArea);
                }
            }
        }
        std::printf("\n");
    }

    std::printf("\noptimal big-core fraction per mix:\n");
    for (double m : mixes) {
        std::printf("  hmmer %3.0f%% / gobmk %3.0f%% -> %.1f\n",
                    100.0 * m, 100.0 * (1.0 - m),
                    res.optimalBigFrac(m));
    }
    std::printf("\npaper shape: the optimal big/small ratio moves "
                "with the application mix,\nso a fixed heterogeneous "
                "mixture cannot serve all cloud workloads "
                "optimally.\n");
    return 0;
}
