/**
 * @file
 * Fault injection study: graceful degradation of the Slice fabric.
 *
 * The paper's economics assume the provider can always recompose
 * VCores from interchangeable Slices (section 3).  This study
 * quantifies what that buys under hardware failures:
 *
 *  1. A populated fabric absorbs growing random fault loads; we
 *     report how much leased capacity survives via re-placement and
 *     dynamic shrinking versus outright eviction.
 *  2. The spot market re-auctions after a capacity loss: customers
 *     are refunded pro-rata at the pre-fault prices and the
 *     tatonnement finds new clearing prices over the smaller fabric.
 *  3. A fixed heterogeneous datacenter (Figure 17's comparison point)
 *     loses whole cores to the same fault fraction, showing the
 *     configurability advantage under failures.
 *
 * Everything is seeded: re-running this study reproduces every
 * number bit-for-bit (see fault/fault_model.hh).
 */

#include <algorithm>
#include <string>

#include "area/area_model.hh"
#include "core/perf_model.hh"
#include "econ/datacenter.hh"
#include "fault/fault_model.hh"
#include "hyper/fabric_manager.hh"
#include "hyper/spot_market.hh"
#include "study/registry.hh"
#include "study/study.hh"
#include "trace/profile.hh"

using namespace sharch;

namespace {

/** Fill an 8x8 chip with 4-Slice/4-bank tenants and replay faults. */
void
degradationSweep(study::Report &report)
{
    study::Table &t = report.addTable(
        "fabric_degradation",
        "Fabric degradation (8x8 chip, 4S+4B tenants, seed 42)");
    t.col("faults", study::Value::Kind::Integer)
        .col("replaced", study::Value::Kind::Integer)
        .col("shrunk", study::Value::Kind::Integer)
        .col("evicted", study::Value::Kind::Integer)
        .col("slices_lost", study::Value::Kind::Integer)
        .col("reconfig_cycles", study::Value::Kind::Integer)
        .col("fragmentation", study::Value::Kind::Real, 3);
    for (unsigned count : {0u, 2u, 4u, 8u, 16u}) {
        FabricManager fm(8, 8);
        while (fm.allocate(4, 4)) {
        }
        fault::FaultSpec spec;
        spec.seed = 42;
        spec.mtbf = 100000.0;
        spec.count = count;
        fault::FaultModel model(spec, fm.width(), fm.height());

        unsigned replaced = 0, shrunk = 0, evicted = 0, lost = 0;
        Cycles cycles = 0;
        for (const fault::FaultEvent &ev : model.schedule()) {
            for (const DegradeAction &a : fm.apply(ev)) {
                replaced += a.kind == DegradeKind::Replaced;
                shrunk += a.kind == DegradeKind::Shrunk;
                evicted += a.kind == DegradeKind::Evicted;
                lost += a.slicesLost;
                cycles += a.cost;
            }
        }
        t.addRow({count, replaced, shrunk, evicted, lost, cycles,
                  fm.fragmentation()});
    }
}

/** Lose an eighth of the fabric and re-clear the spot market. */
void
marketReauction(study::Report &report, UtilityOptimizer &opt)
{
    SpotMarket market(opt, 64.0, 128.0);
    market.addCustomer(SpotCustomer{"throughput", "hmmer",
                                    UtilityKind::Throughput, 40.0});
    market.addCustomer(SpotCustomer{"single-stream", "gobmk",
                                    UtilityKind::SingleStream, 40.0});
    const auto before = market.runToClearing();

    study::Table &t = report.addTable(
        "market_reauction",
        "Spot-market clearing before and after losing 8 Slices + "
        "16 banks");
    t.col("stage", study::Value::Kind::Text)
        .col("rounds", study::Value::Kind::Integer)
        .col("slice_price", study::Value::Kind::Real, 3)
        .col("bank_price", study::Value::Kind::Real, 3)
        .col("slice_capacity", study::Value::Kind::Real, 0)
        .col("bank_capacity", study::Value::Kind::Real, 0);
    t.addRow({"pre_fault", before.size(),
              market.prices().slicePrice, market.prices().bankPrice,
              market.sliceCapacity(), market.bankCapacity()});

    const ReauctionResult re = market.reauctionAfterFailure(8.0, 16.0);
    t.addRow({"re_cleared", re.rounds.size(),
              market.prices().slicePrice, market.prices().bankPrice,
              market.sliceCapacity(), market.bankCapacity()});

    study::Table &r = report.addTable(
        "refunds",
        "Pro-rated refunds at pre-fault prices (pool total first)");
    r.col("customer", study::Value::Kind::Text)
        .col("amount", study::Value::Kind::Real, 3);
    r.addRow({"(total)", re.refundTotal});
    for (const SpotRefund &refund : re.refunds)
        r.addRow({market.customer(refund.customer).name,
                  refund.amount});
}

/** Whole-core losses in the fixed heterogeneous datacenter. */
void
datacenterDegradation(study::Report &report, UtilityOptimizer &opt)
{
    const std::vector<double> mixes = {0.5};
    study::Table &t = report.addTable(
        "datacenter_degraded",
        "Fixed heterogeneous datacenter under the same fault "
        "fraction");
    t.col("fail_frac", study::Value::Kind::Real, 2)
        .col("peak_utility", study::Value::Kind::Real, 3)
        .col("vs_healthy", study::Value::Kind::Real, 3);
    double healthy = 0.0;
    for (double fail : {0.0, 0.1, 0.25}) {
        const DatacenterResult res = datacenterStudyDegraded(
            opt, "hmmer", "gobmk", mixes, fail, fail, 11);
        double peak = 0.0;
        for (const MixPoint &p : res.points)
            peak = std::max(peak, p.utilityPerArea);
        if (fail == 0.0)
            healthy = peak;
        t.addRow({fail, peak,
                  healthy > 0.0 ? peak / healthy : 0.0});
    }
    report.addNote(
        "a fixed mixture loses utility linearly with dead cores; the "
        "Sharing Architecture sheds only the faulty tiles "
        "(fabric_degradation above) and recomposes the rest.");
}

class FaultDegradationStudy final : public study::Study
{
  public:
    std::string
    name() const override
    {
        return "fault_degradation";
    }

    std::string
    description() const override
    {
        return "Graceful degradation of fabric, market, and "
               "datacenter under faults";
    }

    std::vector<exec::SweepPoint>
    grid() const override
    {
        const std::vector<std::string> apps = {"hmmer", "gobmk"};
        return exec::sweepGrid(apps, l2BankGrid(),
                               exec::sliceRange());
    }

    void
    run(study::ReportContext &ctx) override
    {
        AreaModel am;
        UtilityOptimizer opt(ctx.pm, am);

        degradationSweep(ctx.report);
        marketReauction(ctx.report, opt);
        datacenterDegradation(ctx.report, opt);
    }
};

} // namespace

SHARCH_REGISTER_STUDY(FaultDegradationStudy)
