/**
 * @file
 * Fault injection study: graceful degradation of the Slice fabric.
 *
 * The paper's economics assume the provider can always recompose
 * VCores from interchangeable Slices (section 3).  This harness
 * quantifies what that buys under hardware failures:
 *
 *  1. A populated fabric absorbs growing random fault loads; we
 *     report how much leased capacity survives via re-placement and
 *     dynamic shrinking versus outright eviction.
 *  2. The spot market re-auctions after a capacity loss: customers
 *     are refunded pro-rata at the pre-fault prices and the
 *     tatonnement finds new clearing prices over the smaller fabric.
 *  3. A fixed heterogeneous datacenter (Figure 17's comparison point)
 *     loses whole cores to the same fault fraction, showing the
 *     configurability advantage under failures.
 *
 * Everything is seeded: re-running this harness reproduces every
 * number bit-for-bit (see fault/fault_model.hh).
 */

#include <string>

#include "bench_util.hh"
#include "econ/datacenter.hh"
#include "fault/fault_model.hh"
#include "hyper/fabric_manager.hh"
#include "hyper/spot_market.hh"

using namespace sharch;
using namespace sharch::bench;

namespace {

/** Fill an 8x8 chip with 4-Slice/4-bank tenants and replay faults. */
void
degradationSweep()
{
    std::printf("%-8s %-9s %-9s %-9s %-9s %-11s %-9s\n", "faults",
                "replaced", "shrunk", "evicted", "lostSl",
                "reconfigCyc", "frag");
    for (unsigned count : {0u, 2u, 4u, 8u, 16u}) {
        FabricManager fm(8, 8);
        while (fm.allocate(4, 4)) {
        }
        fault::FaultSpec spec;
        spec.seed = 42;
        spec.mtbf = 100000.0;
        spec.count = count;
        fault::FaultModel model(spec, fm.width(), fm.height());

        unsigned replaced = 0, shrunk = 0, evicted = 0, lost = 0;
        Cycles cycles = 0;
        for (const fault::FaultEvent &ev : model.schedule()) {
            for (const DegradeAction &a : fm.apply(ev)) {
                replaced += a.kind == DegradeKind::Replaced;
                shrunk += a.kind == DegradeKind::Shrunk;
                evicted += a.kind == DegradeKind::Evicted;
                lost += a.slicesLost;
                cycles += a.cost;
            }
        }
        std::printf("%-8u %-9u %-9u %-9u %-9u %-11llu %-9.3f\n",
                    count, replaced, shrunk, evicted, lost,
                    static_cast<unsigned long long>(cycles),
                    fm.fragmentation());
    }
}

/** Lose an eighth of the fabric and re-clear the spot market. */
void
marketReauction(UtilityOptimizer &opt)
{
    SpotMarket market(opt, 64.0, 128.0);
    market.addCustomer(SpotCustomer{"throughput", "hmmer",
                                    UtilityKind::Throughput, 40.0});
    market.addCustomer(SpotCustomer{"single-stream", "gobmk",
                                    UtilityKind::SingleStream, 40.0});
    const auto before = market.runToClearing();
    std::printf("pre-fault clearing after %zu round(s): "
                "slice $%.3f, bank $%.3f\n",
                before.size(), market.prices().slicePrice,
                market.prices().bankPrice);

    const ReauctionResult re = market.reauctionAfterFailure(8.0, 16.0);
    std::printf("fault takes 8 Slices + 16 banks off the market\n");
    std::printf("refund pool $%.3f (lost capacity at pre-fault "
                "prices):\n",
                re.refundTotal);
    for (const SpotRefund &r : re.refunds)
        std::printf("  %-12s $%.3f\n", r.customer->name.c_str(),
                    r.amount);
    std::printf("re-cleared after %zu round(s): slice $%.3f, "
                "bank $%.3f over %.0f Slices / %.0f banks\n",
                re.rounds.size(), market.prices().slicePrice,
                market.prices().bankPrice, market.sliceCapacity(),
                market.bankCapacity());
}

/** Whole-core losses in the fixed heterogeneous datacenter. */
void
datacenterDegradation(UtilityOptimizer &opt)
{
    const std::vector<double> mixes = {0.5};
    std::printf("%-12s %-14s %-14s\n", "fail frac", "peak utility",
                "vs healthy");
    double healthy = 0.0;
    for (double fail : {0.0, 0.1, 0.25}) {
        const DatacenterResult res = datacenterStudyDegraded(
            opt, "hmmer", "gobmk", mixes, fail, fail, 11);
        double peak = 0.0;
        for (const MixPoint &p : res.points)
            peak = std::max(peak, p.utilityPerArea);
        if (fail == 0.0)
            healthy = peak;
        std::printf("%-12.2f %-14.3f %-14.3f\n", fail, peak,
                    healthy > 0.0 ? peak / healthy : 0.0);
    }
    std::printf("\na fixed mixture loses utility linearly with dead "
                "cores; the Sharing\nArchitecture sheds only the "
                "faulty tiles (sweep above) and recomposes the "
                "rest.\n");
}

} // namespace

int
main()
{
    PerfModel &pm = sharedPerfModel();
    const std::vector<std::string> apps = {"hmmer", "gobmk"};
    prefillSurface(pm, exec::sweepGrid(apps, l2BankGrid(),
                                       exec::sliceRange()));
    AreaModel am;
    UtilityOptimizer opt(pm, am);

    printHeader("Fault study",
                "graceful degradation of fabric, market, and "
                "datacenter");

    std::printf("\n-- fabric degradation (8x8 chip, 4S+4B tenants, "
                "seed 42) --\n");
    degradationSweep();

    std::printf("\n-- spot market re-auction after capacity loss "
                "--\n");
    marketReauction(opt);

    std::printf("\n-- fixed heterogeneous datacenter under the same "
                "fault fraction --\n");
    datacenterDegradation(opt);
    return 0;
}
