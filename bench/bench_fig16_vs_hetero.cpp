/**
 * @file
 * Figure 16: utility gain of the Sharing Architecture over a
 * heterogeneous multicore whose core types are fixed per utility
 * class at design time (section 5.8, following Guevara et al. [18]).
 * The paper reports gains over 3x.
 */

#include <algorithm>
#include <vector>

#include "bench_util.hh"
#include "econ/efficiency.hh"

using namespace sharch;
using namespace sharch::bench;

int
main()
{
    PerfModel &pm = sharedPerfModel();
    prefillSurface(pm, fullPaperGrid());
    AreaModel am;
    UtilityOptimizer opt(pm, am);
    EfficiencyStudy study(opt);

    printHeader("Figure 16",
                "Utility gain vs. heterogeneous per-utility designs");

    const std::vector<OptResult> cores = study.bestPerUtilityConfigs();
    std::printf("heterogeneous core types (one per utility class):\n");
    for (std::size_t i = 0; i < cores.size(); ++i) {
        std::printf("  Utility%zu core: (%u KB, %u Slices)\n", i + 1,
                    cores[i].banks * 64, cores[i].slices);
    }

    const EfficiencyResult res = study.vsHeterogeneous();
    std::vector<double> gains;
    for (const PairGain &g : res.gains)
        gains.push_back(g.gain);
    std::sort(gains.begin(), gains.end());
    auto pct = [&](double p) {
        return gains[static_cast<std::size_t>(p * (gains.size() - 1))];
    };
    std::printf("\ncustomer pairs evaluated: %zu\n", res.gains.size());
    std::printf("gain distribution: min %.2f  p25 %.2f  median %.2f  "
                "p75 %.2f  p95 %.2f  max %.2f\n",
                gains.front(), pct(0.25), pct(0.50), pct(0.75),
                pct(0.95), gains.back());
    std::printf("mean gain: %.2f\n", res.meanGain);
    std::printf("\npaper shape: over 3x market-efficiency gains can "
                "be achieved even\nagainst a per-utility-optimized "
                "heterogeneous multicore.\n");
    return 0;
}
