/**
 * @file
 * Figure 16: utility gain of the Sharing Architecture over a
 * heterogeneous multicore whose core types are fixed per utility
 * class at design time (section 5.8, following Guevara et al. [18]).
 * The paper reports gains over 3x.
 */

#include "area/area_model.hh"
#include "core/perf_model.hh"
#include "econ/efficiency.hh"
#include "efficiency_tables.hh"
#include "study/registry.hh"
#include "study/study.hh"
#include "study/surface.hh"

using namespace sharch;

namespace {

class Fig16VsHeteroStudy final : public study::Study
{
  public:
    std::string
    name() const override
    {
        return "fig16";
    }

    std::string
    description() const override
    {
        return "Utility gain vs. heterogeneous per-utility designs";
    }

    std::vector<exec::SweepPoint>
    grid() const override
    {
        return study::fullPaperGrid();
    }

    void
    run(study::ReportContext &ctx) override
    {
        AreaModel am;
        UtilityOptimizer opt(ctx.pm, am);
        EfficiencyStudy eff(opt);

        study::Table &cores = ctx.report.addTable(
            "hetero_cores",
            "Heterogeneous core types (one per utility class)");
        cores.col("utility", study::Value::Kind::Text)
            .col("l2_kb", study::Value::Kind::Integer)
            .col("slices", study::Value::Kind::Integer);
        const std::vector<OptResult> types =
            eff.bestPerUtilityConfigs();
        for (std::size_t i = 0; i < types.size(); ++i)
            cores.addRow({"Utility" + std::to_string(i + 1),
                          types[i].banks * 64, types[i].slices});

        const EfficiencyResult res = eff.vsHeterogeneous();
        ctx.report.addMeta("pairs", res.gains.size());
        bench::gainTables(ctx.report, res);

        ctx.report.addNote(
            "paper shape: over 3x market-efficiency gains can be "
            "achieved even against a per-utility-optimized "
            "heterogeneous multicore.");
    }
};

} // namespace

SHARCH_REGISTER_STUDY(Fig16VsHeteroStudy)
