/**
 * @file
 * Table 1: which intra-core structures are replicated per Slice and
 * which are partitioned across the Slices of a VCore, and the
 * resulting aggregate capacities as the VCore grows.
 */

#include "config/sim_config.hh"
#include "study/registry.hh"
#include "study/study.hh"
#include "uarch/structure_policy.hh"

using namespace sharch;

namespace {

class Tab1StructuresStudy final : public study::Study
{
  public:
    std::string
    name() const override
    {
        return "tab1";
    }

    std::string
    description() const override
    {
        return "Replicated vs. partitioned structures and aggregate "
               "capacities";
    }

    void
    run(study::ReportContext &ctx) override
    {
        const SimConfig cfg;
        study::Table &t = ctx.report.addTable(
            "tab1", "Replicated vs. Partitioned structures");
        t.col("structure", study::Value::Kind::Text)
            .col("policy", study::Value::Kind::Text)
            .col("slices_1", study::Value::Kind::Integer)
            .col("slices_4", study::Value::Kind::Integer)
            .col("slices_8", study::Value::Kind::Integer);
        for (const StructurePolicyRow &row : structurePolicyTable()) {
            std::uint64_t per_slice = 0;
            switch (row.structure) {
              case CoreStructure::BranchPredictor:
                per_slice = cfg.slice.bimodalEntries; break;
              case CoreStructure::Btb:
                per_slice = cfg.slice.btbEntries; break;
              case CoreStructure::Scoreboard:
              case CoreStructure::GlobalRat:
                per_slice = cfg.slice.numGlobalRegisters; break;
              case CoreStructure::IssueWindow:
                per_slice = cfg.slice.issueWindowSize; break;
              case CoreStructure::LoadQueue:
              case CoreStructure::StoreQueue:
                per_slice = cfg.slice.lsqSize / 2; break;
              case CoreStructure::Rob:
                per_slice = cfg.slice.robSize; break;
              case CoreStructure::LocalRat:
                per_slice = 32; break;
              case CoreStructure::PhysicalRegisterFile:
                per_slice = cfg.slice.numLocalRegisters; break;
              default: break;
            }
            t.addRow(
                {coreStructureName(row.structure),
                 row.policy == SharingPolicy::Replicated
                     ? "replicated"
                     : "partitioned",
                 aggregateCapacity(row.structure, per_slice, 1),
                 aggregateCapacity(row.structure, per_slice, 4),
                 aggregateCapacity(row.structure, per_slice, 8)});
        }
    }
};

} // namespace

SHARCH_REGISTER_STUDY(Tab1StructuresStudy)
