/**
 * @file
 * Table 1: which intra-core structures are replicated per Slice and
 * which are partitioned across the Slices of a VCore, and the
 * resulting aggregate capacities as the VCore grows.
 */

#include "bench_util.hh"
#include "config/sim_config.hh"
#include "uarch/structure_policy.hh"

using namespace sharch;
using namespace sharch::bench;

int
main()
{
    printHeader("Table 1", "Replicated vs. Partitioned structures");

    const SimConfig cfg;
    std::printf("%-18s %-12s %10s %10s %10s\n", "structure", "policy",
                "1 Slice", "4 Slices", "8 Slices");
    for (const StructurePolicyRow &row : structurePolicyTable()) {
        std::uint64_t per_slice = 0;
        switch (row.structure) {
          case CoreStructure::BranchPredictor:
            per_slice = cfg.slice.bimodalEntries; break;
          case CoreStructure::Btb:
            per_slice = cfg.slice.btbEntries; break;
          case CoreStructure::Scoreboard:
          case CoreStructure::GlobalRat:
            per_slice = cfg.slice.numGlobalRegisters; break;
          case CoreStructure::IssueWindow:
            per_slice = cfg.slice.issueWindowSize; break;
          case CoreStructure::LoadQueue:
          case CoreStructure::StoreQueue:
            per_slice = cfg.slice.lsqSize / 2; break;
          case CoreStructure::Rob:
            per_slice = cfg.slice.robSize; break;
          case CoreStructure::LocalRat:
            per_slice = 32; break;
          case CoreStructure::PhysicalRegisterFile:
            per_slice = cfg.slice.numLocalRegisters; break;
          default: break;
        }
        std::printf("%-18s %-12s %10llu %10llu %10llu\n",
            coreStructureName(row.structure),
            row.policy == SharingPolicy::Replicated ? "replicated"
                                                    : "partitioned",
            static_cast<unsigned long long>(
                aggregateCapacity(row.structure, per_slice, 1)),
            static_cast<unsigned long long>(
                aggregateCapacity(row.structure, per_slice, 4)),
            static_cast<unsigned long long>(
                aggregateCapacity(row.structure, per_slice, 8)));
    }
    return 0;
}
