/**
 * @file
 * sharch-bench: the one driver for every figure/table study.
 *
 * Replaces the fourteen per-figure harness binaries.  Studies
 * self-register (see study/registry.hh); this driver only selects,
 * sweeps, runs, and renders:
 *
 *   sharch-bench --list
 *   sharch-bench --run fig13
 *   sharch-bench --run 'fig*' --format json --out reports/
 *   sharch-bench --run tab1,tab4 --instructions 2000 --seed 7
 *
 * When several studies are selected their grids are concatenated and
 * prefilled through a single PerfModel::performanceBatch(), so the
 * sweep pool is saturated once for the whole invocation instead of
 * once per binary.  Status lines go to stderr; reports go to stdout
 * (or one file per study under --out), so `sharch-bench --run fig13
 * --format json > fig13.json` stays clean.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "exec/run_options.hh"
#include "exec/sweep.hh"
#include "obs/obs.hh"
#include "study/engine.hh"
#include "study/metrics_report.hh"
#include "study/registry.hh"
#include "study/report.hh"
#include "study/surface.hh"

using namespace sharch;

namespace {

/**
 * Write the current metrics snapshot as <name>.metrics.json under
 * @p dir, then reset the registry so the next study's counts start
 * from zero (per-study attribution).
 */
bool
dumpMetrics(const std::string &dir, const std::string &name)
{
    auto &registry = obs::MetricsRegistry::instance();
    const study::Report report =
        study::metricsReport(registry.snapshot());
    registry.reset();
    const std::filesystem::path path =
        std::filesystem::path(dir) / (name + ".metrics.json");
    std::ofstream out(path, std::ios::binary);
    out << study::render(report, study::Format::Json);
    if (!out) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     path.string().c_str());
        return false;
    }
    std::fprintf(stderr, "[metrics] %s\n", path.string().c_str());
    return true;
}

/** The studies matching any of @p patterns, deduplicated, sorted. */
std::vector<study::Study *>
selectStudies(const std::vector<std::string> &patterns,
              std::string *unmatched)
{
    std::vector<study::Study *> selected;
    for (const std::string &pattern : patterns) {
        const auto matches =
            study::StudyRegistry::instance().match(pattern);
        if (matches.empty() && unmatched->empty())
            *unmatched = pattern;
        for (study::Study *s : matches) {
            if (std::find(selected.begin(), selected.end(), s) ==
                selected.end()) {
                selected.push_back(s);
            }
        }
    }
    std::sort(selected.begin(), selected.end(),
              [](const study::Study *a, const study::Study *b) {
                  return a->name() < b->name();
              });
    return selected;
}

void
listStudies()
{
    for (const study::Study *s :
         study::StudyRegistry::instance().all()) {
        std::printf("%-18s %s\n", s->name().c_str(),
                    s->description().c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const exec::BenchOptions opts =
        exec::parseBenchOptions(argc, argv);
    if (!opts.ok()) {
        std::fprintf(stderr, "error: %s\n%s", opts.error.c_str(),
                     exec::benchUsage(argv[0]).c_str());
        return 2;
    }

    if (opts.list) {
        listStudies();
        if (opts.patterns.empty())
            return 0;
    }

    std::string unmatched;
    const std::vector<study::Study *> selected =
        selectStudies(opts.patterns, &unmatched);
    if (!unmatched.empty()) {
        std::fprintf(stderr, "error: no study matches '%s' "
                     "(try --list)\n", unmatched.c_str());
        return 2;
    }
    if (selected.empty())
        return 0;

    study::Format format = study::Format::Text;
    study::parseFormat(opts.format, &format); // parser validated it

    if (!opts.metricsOut.empty() || !opts.traceOut.empty()) {
        obs::setEnabled(true);
        if (!obs::compiledIn()) {
            std::fprintf(stderr,
                         "warning: telemetry was compiled out of "
                         "this build; reconfigure with "
                         "-DSHARCH_OBS=ON for non-empty "
                         "--metrics-out/--trace-out output\n");
        }
    }
    if (!opts.metricsOut.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opts.metricsOut, ec);
        if (ec) {
            std::fprintf(stderr, "error: cannot create '%s': %s\n",
                         opts.metricsOut.c_str(),
                         ec.message().c_str());
            return 1;
        }
    }

    study::EngineOptions engine;
    engine.instructions = opts.instructions
                              ? opts.instructions
                              : study::envInstructions();
    engine.seed = opts.seedSet ? opts.seed : study::envSeed();
    engine.threads = exec::resolveThreadCount(opts.threads);
    engine.traceMode = opts.traceMode;
    engine.sample = opts.sample;
    engine.sampleSet = opts.sampleSet;

    PerfModel pm(engine.instructions, engine.seed);
    pm.setTraceMode(engine.traceMode);
    if (opts.sampleSet)
        pm.setSampleMode(SampleMode::Sampled, opts.sample);
    // No-op (with a note) for sampled models: estimates must not mix
    // with the exact rows other invocations share.
    study::enableSharedDiskCache(pm);

    // One batch for the union of the selected grids; each study's own
    // prefill inside runStudy() then hits only the memo.
    const auto grid = study::unionGrid(selected);
    if (!grid.empty()) {
        const study::PrefillStats ps =
            study::prefillSurface(pm, grid, engine.threads);
        std::fprintf(stderr,
                     "[sweep] %zu point(s): %zu simulated, %zu "
                     "cached, %u thread(s), %.1fs\n",
                     ps.points, ps.simulated, ps.cached, ps.threads,
                     ps.seconds);
    }
    // The shared prefill's telemetry belongs to no single study;
    // dump it under its own name so per-study files stay honest.
    if (!opts.metricsOut.empty() &&
        !dumpMetrics(opts.metricsOut, "_prefill")) {
        return 1;
    }

    if (!opts.outDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opts.outDir, ec);
        if (ec) {
            std::fprintf(stderr, "error: cannot create '%s': %s\n",
                         opts.outDir.c_str(),
                         ec.message().c_str());
            return 1;
        }
    }

    bool first = true;
    for (study::Study *s : selected) {
        std::fprintf(stderr, "[run] %s\n", s->name().c_str());
        const study::Report report = study::runStudy(*s, pm, engine);
        const std::string text = study::render(report, format);

        if (opts.outDir.empty()) {
            if (!first && format == study::Format::Text)
                std::printf("\n");
            std::fputs(text.c_str(), stdout);
        } else {
            const std::filesystem::path path =
                std::filesystem::path(opts.outDir) /
                (s->name() + "." +
                 study::formatExtension(format));
            std::ofstream out(path, std::ios::binary);
            out << text;
            if (!out) {
                std::fprintf(stderr, "error: cannot write '%s'\n",
                             path.string().c_str());
                return 1;
            }
            std::fprintf(stderr, "[out] %s\n",
                         path.string().c_str());
        }
        if (!opts.metricsOut.empty() &&
            !dumpMetrics(opts.metricsOut, s->name())) {
            return 1;
        }
        first = false;
    }

    if (!opts.traceOut.empty()) {
        std::ofstream out(opts.traceOut,
                          std::ios::out | std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "error: cannot write trace to "
                         "'%s'\n", opts.traceOut.c_str());
            return 1;
        }
        obs::Tracer::instance().writeChromeTrace(out);
        std::fprintf(stderr, "[trace] %s\n", opts.traceOut.c_str());
    }
    return 0;
}
