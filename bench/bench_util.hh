/**
 * @file
 * Shared plumbing for the table/figure reproduction harnesses.
 *
 * All harnesses sweep the same performance surface; a CSV disk cache
 * in the working directory lets them share simulation results, so the
 * first harness pays for a configuration and the rest reuse it.
 * Harnesses declare their whole grid up front with prefillSurface(),
 * which fans the uncached points across the exec::SweepRunner worker
 * pool; the point queries that follow then hit the memo.
 *
 * Environment:
 *   SHARCH_BENCH_INSTRUCTIONS  trace length per thread (default 40000)
 *   SHARCH_BENCH_SEED          generation seed (default 1)
 *   SHARCH_THREADS             sweep worker threads (default: hardware
 *                              concurrency); results are bit-identical
 *                              for any value, including 1
 */

#ifndef SHARCH_BENCH_BENCH_UTIL_HH
#define SHARCH_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "area/area_model.hh"
#include "core/perf_model.hh"
#include "econ/optimizer.hh"
#include "exec/sweep.hh"

namespace sharch::bench {

inline std::size_t
benchInstructions()
{
    if (const char *env = std::getenv("SHARCH_BENCH_INSTRUCTIONS"))
        return static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    return 40000;
}

inline std::uint64_t
benchSeed()
{
    if (const char *env = std::getenv("SHARCH_BENCH_SEED"))
        return std::strtoull(env, nullptr, 10);
    return 1;
}

/** Worker threads for sweeps (SHARCH_THREADS, else hardware). */
inline unsigned
benchThreads()
{
    return exec::resolveThreadCount();
}

/**
 * The shared, disk-cached performance model.  A process-wide
 * singleton: PerfModel owns mutexes and is deliberately not movable.
 */
inline PerfModel &
sharedPerfModel()
{
    static PerfModel pm(benchInstructions(), benchSeed());
    static bool initialized = [] {
        pm.enableDiskCache("sharch_perf_cache.csv");
        return true;
    }();
    (void)initialized;
    return pm;
}

/**
 * Simulate every uncached point of @p grid in parallel before the
 * harness starts querying the surface point by point.
 */
inline void
prefillSurface(PerfModel &pm,
               const std::vector<exec::SweepPoint> &grid)
{
    const auto start = std::chrono::steady_clock::now();
    const auto results = pm.performanceBatch(grid);
    std::size_t fresh = 0;
    for (const exec::SweepResult &r : results)
        fresh += r.fresh;
    const double secs =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    std::printf("[sweep] %zu points (%zu simulated, %zu cached) on "
                "%u thread(s) in %.1fs\n\n",
                results.size(), fresh, results.size() - fresh,
                benchThreads(), secs);
}

/** The full paper grid: all benchmarks x l2BankGrid() x slices 1..8. */
inline std::vector<exec::SweepPoint>
fullPaperGrid()
{
    return exec::sweepGrid(benchmarkNames(), l2BankGrid(),
                           exec::sliceRange(SimConfig::kMaxSlices));
}

inline void
printHeader(const char *id, const char *title)
{
    std::printf("==============================================="
                "=====================\n");
    std::printf("%s -- %s\n", id, title);
    std::printf("==============================================="
                "=====================\n");
}

} // namespace sharch::bench

#endif // SHARCH_BENCH_BENCH_UTIL_HH
