/**
 * @file
 * Shared plumbing for the table/figure reproduction harnesses.
 *
 * All harnesses sweep the same performance surface; a CSV disk cache
 * in the working directory lets them share simulation results, so the
 * first harness pays for a configuration and the rest reuse it.
 *
 * Environment:
 *   SHARCH_BENCH_INSTRUCTIONS  trace length per thread (default 40000)
 *   SHARCH_BENCH_SEED          generation seed (default 1)
 */

#ifndef SHARCH_BENCH_BENCH_UTIL_HH
#define SHARCH_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>

#include "area/area_model.hh"
#include "core/perf_model.hh"
#include "econ/optimizer.hh"

namespace sharch::bench {

inline std::size_t
benchInstructions()
{
    if (const char *env = std::getenv("SHARCH_BENCH_INSTRUCTIONS"))
        return static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    return 40000;
}

inline std::uint64_t
benchSeed()
{
    if (const char *env = std::getenv("SHARCH_BENCH_SEED"))
        return std::strtoull(env, nullptr, 10);
    return 1;
}

/** The shared, disk-cached performance model. */
inline PerfModel
makePerfModel()
{
    PerfModel pm(benchInstructions(), benchSeed());
    pm.enableDiskCache("sharch_perf_cache.csv");
    return pm;
}

inline void
printHeader(const char *id, const char *title)
{
    std::printf("==============================================="
                "=====================\n");
    std::printf("%s -- %s\n", id, title);
    std::printf("==============================================="
                "=====================\n");
}

} // namespace sharch::bench

#endif // SHARCH_BENCH_BENCH_UTIL_HH
