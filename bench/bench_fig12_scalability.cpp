/**
 * @file
 * Figure 12: scalability of VCore performance with Slice count, for
 * every benchmark, normalized to a one-Slice VCore with 128 KB of L2
 * (plus the Table 2/3 base configuration for reference).
 *
 * PARSEC workloads run four threads on four equally configured VCores
 * sharing an L2, as in section 5.3.
 */

#include "bench_util.hh"
#include "trace/profile.hh"

using namespace sharch;
using namespace sharch::bench;

int
main()
{
    PerfModel &pm = sharedPerfModel();
    // The whole figure reads one bank column across every Slice count.
    prefillSurface(pm, exec::sweepGrid(benchmarkNames(), {2},
                                       exec::sliceRange()));

    printHeader("Tables 2 & 3", "Base Slice / cache configuration");
    const SimConfig cfg;
    std::printf("issue window %u, LSQ %u, FUs/Slice %u, ROB %u, "
                "global regs %u,\nstore buffer %u, LRF %u, inflight "
                "loads %u, memory delay %llu\n",
                cfg.slice.issueWindowSize, cfg.slice.lsqSize,
                cfg.slice.numFunctionalUnits, cfg.slice.robSize,
                cfg.slice.numGlobalRegisters, cfg.slice.storeBufferSize,
                cfg.slice.numLocalRegisters, cfg.slice.maxInflightLoads,
                static_cast<unsigned long long>(cfg.memoryLatency));
    std::printf("L1D/L1I 16 KB 2-way 3-cycle; L2 banks 64 KB 4-way, "
                "hit = distance*2 + 4\n\n");

    printHeader("Figure 12",
                "VCore performance vs. Slice count "
                "(normalized to 1 Slice, 128 KB L2)");
    std::printf("%-12s", "benchmark");
    for (unsigned s = 1; s <= SimConfig::kMaxSlices; ++s)
        std::printf("   s=%u ", s);
    std::printf("\n");

    const unsigned base_banks = 2; // 128 KB
    for (const std::string &name : benchmarkNames()) {
        const double base = pm.performance(name, base_banks, 1);
        std::printf("%-12s", name.c_str());
        for (unsigned s = 1; s <= SimConfig::kMaxSlices; ++s) {
            std::printf(" %5.2f ",
                        pm.performance(name, base_banks, s) / base);
        }
        std::printf("\n");
    }
    std::printf("\npaper shape: SPEC/apache rise with diminishing "
                "returns and occasional\ndips; PARSEC (dedup, "
                "swaptions, ferret) speedup is bounded by ~2.\n");
    return 0;
}
