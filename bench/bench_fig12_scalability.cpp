/**
 * @file
 * Figure 12: scalability of VCore performance with Slice count, for
 * every benchmark, normalized to a one-Slice VCore with 128 KB of L2
 * (plus the Table 2/3 base configuration for reference).
 *
 * PARSEC workloads run four threads on four equally configured VCores
 * sharing an L2, as in section 5.3.
 */

#include "config/sim_config.hh"
#include "core/perf_model.hh"
#include "study/registry.hh"
#include "study/study.hh"
#include "trace/profile.hh"

using namespace sharch;

namespace {

constexpr unsigned kBaseBanks = 2; // 128 KB

class Fig12ScalabilityStudy final : public study::Study
{
  public:
    std::string
    name() const override
    {
        return "fig12";
    }

    std::string
    description() const override
    {
        return "VCore performance vs. Slice count (normalized to "
               "1 Slice, 128 KB L2)";
    }

    std::vector<exec::SweepPoint>
    grid() const override
    {
        // The whole figure reads one bank column across every Slice
        // count.
        return exec::sweepGrid(benchmarkNames(), {kBaseBanks},
                               exec::sliceRange());
    }

    void
    run(study::ReportContext &ctx) override
    {
        const SimConfig cfg;
        study::Table &base = ctx.report.addTable(
            "tab2_3", "Base Slice / cache configuration");
        base.col("parameter", study::Value::Kind::Text)
            .col("value", study::Value::Kind::Integer);
        base.addRow({"issue_window", cfg.slice.issueWindowSize});
        base.addRow({"lsq", cfg.slice.lsqSize});
        base.addRow({"fus_per_slice", cfg.slice.numFunctionalUnits});
        base.addRow({"rob", cfg.slice.robSize});
        base.addRow({"global_regs", cfg.slice.numGlobalRegisters});
        base.addRow({"store_buffer", cfg.slice.storeBufferSize});
        base.addRow({"local_regs", cfg.slice.numLocalRegisters});
        base.addRow({"inflight_loads", cfg.slice.maxInflightLoads});
        base.addRow({"memory_delay", cfg.memoryLatency});
        ctx.report.addNote("L1D/L1I 16 KB 2-way 3-cycle; L2 banks "
                           "64 KB 4-way, hit = distance*2 + 4");

        study::Table &t = ctx.report.addTable(
            "fig12", "Performance vs. Slices, normalized to "
                     "(128 KB, 1 Slice)");
        t.col("benchmark", study::Value::Kind::Text);
        for (unsigned s = 1; s <= SimConfig::kMaxSlices; ++s)
            t.col("s" + std::to_string(s), study::Value::Kind::Real,
                  2);
        for (const std::string &bench : benchmarkNames()) {
            const double norm =
                ctx.pm.performance(bench, kBaseBanks, 1);
            std::vector<study::Value> row{bench};
            for (unsigned s = 1; s <= SimConfig::kMaxSlices; ++s)
                row.push_back(
                    ctx.pm.performance(bench, kBaseBanks, s) / norm);
            t.addRow(std::move(row));
        }
        ctx.report.addNote(
            "paper shape: SPEC/apache rise with diminishing returns "
            "and occasional dips; PARSEC (dedup, swaptions, ferret) "
            "speedup is bounded by ~2.");
    }
};

} // namespace

SHARCH_REGISTER_STUDY(Fig12ScalabilityStudy)
