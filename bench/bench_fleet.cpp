/**
 * @file
 * The datacenter fleet studies: long-horizon tenant churn over
 * thousands of sharing-architecture chips (the scale section 5.8 of
 * the paper gestures at but never simulates).
 *
 *   datacenter_churn        1024 chips, 60k tenants (120k tenant
 *                           events) of seeded diurnal churn with a
 *                           fault layer, sampled every auction epoch:
 *                           utilization, revenue, fragmentation and
 *                           SLA-rejection curves over simulated days.
 *                           A mid-horizon checkpoint is restored into
 *                           a *fresh* engine and replayed to the end;
 *                           both trajectories must render
 *                           byte-identical reports.
 *   datacenter_churn_short  The same experiment at CI scale (64
 *                           chips, 2k tenants); the workflow
 *                           byte-compares its report across
 *                           --threads 1 vs 4 and across a journal
 *                           kill/resume.
 *   fleet_scale             The placement-cost claim: the same
 *                           budget-less tenant stream is placed into
 *                           fleets from 64 to 4096 chips, and the
 *                           tiered index's probes-per-lookup must
 *                           stay flat (per-event cost sublinear in
 *                           fleet size).  Wall-clock per event goes
 *                           to runInfo only, keeping the JSON report
 *                           deterministic.
 *
 * All three drive FleetEngine purely through typed events
 * (startStream + postFaultSchedule + run), so every number here is
 * reproducible from a journal or a sharch-state-v1 checkpoint.
 */

#include <chrono>
#include <memory>

#include "area/area_model.hh"
#include "engine/event.hh"
#include "fault/fault_model.hh"
#include "fleet/fleet_engine.hh"
#include "study/registry.hh"
#include "study/study.hh"
#include "study/surface.hh"

using namespace sharch;

namespace {

/** One churn experiment's knobs (fleet + workload + fault layer). */
struct ChurnParams
{
    fleet::ChipId chips = 64;
    std::uint64_t tenants = 2000;
    Cycles epochPeriod = 20000;
    fleet::WorkloadConfig workload;
    /** Every Nth chip gets a random fault schedule (0: no faults). */
    fleet::ChipId faultStride = 0;
    unsigned faultsPerChip = 4;
    double faultMtbf = 0.0;
    double faultMttr = 0.0;
};

/** The outcome: the finished engine plus the kill/resume verdict. */
struct ChurnResult
{
    std::unique_ptr<fleet::FleetEngine> engine;
    bool restoreOk = false;
    bool resumeMatch = false;
    std::size_t checkpointBytes = 0;
    std::string restoreError;
};

fleet::FleetEngineConfig
fleetConfig(const ChurnParams &p)
{
    fleet::FleetEngineConfig fcfg;
    fcfg.fleet.chips = p.chips;
    fcfg.epochPeriod = p.epochPeriod;
    return fcfg;
}

/** Post each scheduled chip's random strike/heal sequence. */
void
postFaults(fleet::FleetEngine &eng, const ChurnParams &p)
{
    if (p.faultStride == 0)
        return;
    for (fleet::ChipId chip = p.faultStride / 2; chip < p.chips;
         chip += p.faultStride) {
        fault::FaultSpec spec;
        spec.seed = p.workload.seed * 8191 + chip;
        spec.mtbf = p.faultMtbf;
        spec.count = p.faultsPerChip;
        spec.mttr = p.faultMttr;
        fault::FaultModel model(spec,
                                eng.config().fleet.chipWidth,
                                eng.config().fleet.chipHeight);
        eng.postFaultSchedule(chip, model.schedule());
    }
}

/**
 * Drive the full horizon once, harvesting a mid-horizon checkpoint,
 * then replay the second half in a fresh engine restored from those
 * bytes and compare final reports byte for byte.
 */
ChurnResult
runChurn(UtilityOptimizer &opt, const ChurnParams &p, bool selfCheck)
{
    const fleet::FleetEngineConfig fcfg = fleetConfig(p);
    const fleet::WorkloadStream stream(p.workload);

    ChurnResult r;
    r.engine = std::make_unique<fleet::FleetEngine>(opt, fcfg);
    r.engine->startStream(stream, p.tenants);
    postFaults(*r.engine, p);
    const Cycles mid = static_cast<Cycles>(
        static_cast<double>(p.tenants) * p.workload.meanGap / 2.0);
    if (selfCheck)
        r.engine->post(engine::checkpoint(mid, "mid-horizon"));
    r.engine->run();
    if (!selfCheck)
        return r;

    r.checkpointBytes = r.engine->lastCheckpoint().size();
    auto resumed = std::make_unique<fleet::FleetEngine>(opt, fcfg);
    r.restoreOk = resumed->restoreState(r.engine->lastCheckpoint(),
                                        &r.restoreError);
    if (r.restoreOk) {
        resumed->resumeStream(stream);
        resumed->run();
        r.resumeMatch =
            study::renderJson(resumed->finalReport()) ==
            study::renderJson(r.engine->finalReport());
    }
    return r;
}

/** The churn tables every fleet study shares. */
void
fillChurnTables(study::ReportContext &ctx,
                const fleet::FleetEngine &eng,
                std::size_t sampleStride)
{
    const engine::EngineStats &s = eng.stats();
    const fleet::Fleet &fleet = eng.fleet();
    const double capacity =
        static_cast<double>(fleet.chipCount()) *
        fleet.perChipSlices();

    study::Table &c = ctx.report.addTable(
        "fleet_counters", "Tenant-event counters over the horizon");
    c.col("metric", study::Value::Kind::Text)
        .col("value", study::Value::Kind::Integer);
    c.addRow({"events_processed",
              static_cast<unsigned long long>(s.processed)});
    c.addRow({"arrivals", static_cast<unsigned long long>(
                              s.arrivals)});
    c.addRow({"admitted", static_cast<unsigned long long>(
                              s.admitted)});
    c.addRow({"rejected", static_cast<unsigned long long>(
                              s.rejected)});
    c.addRow({"departures", static_cast<unsigned long long>(
                                s.departures)});
    c.addRow({"faults", static_cast<unsigned long long>(s.faults)});
    c.addRow({"heals", static_cast<unsigned long long>(s.heals)});
    c.addRow({"evictions", static_cast<unsigned long long>(
                               s.evictions)});
    c.addRow({"replaced_across_chips",
              static_cast<unsigned long long>(
                  eng.replacedAcrossChips())});
    c.addRow({"auction_epochs",
              static_cast<unsigned long long>(s.epochs)});
    c.addRow({"auction_rounds",
              static_cast<unsigned long long>(s.auctionRounds)});
    c.addRow({"reconfig_cycles",
              static_cast<unsigned long long>(s.reconfigCycles)});

    study::Table &pl = ctx.report.addTable(
        "fleet_placement",
        "Tiered placement-index cost (the sublinearity claim)");
    pl.col("metric", study::Value::Kind::Text)
        .col("value", study::Value::Kind::Real, 4);
    const auto &idx = fleet.index();
    pl.addRow({"chips", static_cast<double>(fleet.chipCount())});
    pl.addRow({"lookups", static_cast<double>(idx.lookups())});
    pl.addRow({"tier_probes",
               static_cast<double>(idx.tierProbes())});
    pl.addRow({"probes_per_lookup",
               idx.lookups() == 0
                   ? 0.0
                   : static_cast<double>(idx.tierProbes()) /
                         static_cast<double>(idx.lookups())});

    study::Table &t = ctx.report.addTable(
        "datacenter_churn",
        "Fleet utilization / revenue / SLA curves (one row per "
        "sampled auction epoch)");
    t.col("at", study::Value::Kind::Integer)
        .col("live", study::Value::Kind::Integer)
        .col("utilization", study::Value::Kind::Real, 4)
        .col("revenue", study::Value::Kind::Real, 2)
        .col("fragmentation", study::Value::Kind::Real, 4)
        .col("rejected", study::Value::Kind::Integer)
        .col("evictions", study::Value::Kind::Integer)
        .col("materialized", study::Value::Kind::Integer);
    const std::vector<fleet::ChurnSample> &samples = eng.samples();
    for (std::size_t i = 0; i < samples.size();
         i += (sampleStride == 0 ? 1 : sampleStride)) {
        const fleet::ChurnSample &smp = samples[i];
        t.addRow({static_cast<unsigned long long>(smp.at),
                  static_cast<unsigned long long>(smp.live),
                  capacity == 0.0
                      ? 0.0
                      : static_cast<double>(smp.leasedSlices) /
                            capacity,
                  smp.revenue, smp.fragmentation,
                  static_cast<unsigned long long>(smp.rejected),
                  static_cast<unsigned long long>(smp.evictions),
                  static_cast<unsigned long long>(
                      smp.materialized)});
    }
}

void
fillResumeTable(study::ReportContext &ctx, const ChurnResult &r)
{
    study::Table &t = ctx.report.addTable(
        "kill_resume", "Mid-horizon checkpoint, fresh-engine resume");
    t.col("metric", study::Value::Kind::Text)
        .col("value", study::Value::Kind::Integer);
    t.addRow({"restore_ok", r.restoreOk ? 1 : 0});
    t.addRow({"resume_report_match", r.resumeMatch ? 1 : 0});
    t.addRow({"checkpoint_bytes",
              static_cast<unsigned long long>(r.checkpointBytes)});
    if (!r.restoreOk)
        ctx.report.addNote("restore failed: " + r.restoreError);
    ctx.report.addNote(
        "contract: a churn run killed at the mid-horizon checkpoint "
        "and resumed in a fresh engine (restoreState + resumeStream) "
        "renders a byte-identical report "
        "(resume_report_match = 1).");
}

/** Both churn studies differ only in scale; share the body. */
void
runChurnStudy(study::ReportContext &ctx, const ChurnParams &p,
              std::size_t sampleStride)
{
    AreaModel am;
    UtilityOptimizer opt(ctx.pm, am);
    const ChurnResult r = runChurn(opt, p, /*selfCheck=*/true);

    ctx.report.addMeta("chips", static_cast<unsigned long long>(
                                    p.chips));
    ctx.report.addMeta("tenants", static_cast<unsigned long long>(
                                      p.tenants));
    ctx.report.addMeta("workload_seed",
                       static_cast<unsigned long long>(
                           p.workload.seed));
    ctx.report.addMeta("day_length",
                       static_cast<unsigned long long>(
                           p.workload.dayLength));
    ctx.report.addMeta("horizon",
                       static_cast<unsigned long long>(
                           r.engine->now()));
    fillChurnTables(ctx, *r.engine, sampleStride);
    fillResumeTable(ctx, r);
    ctx.report.addNote(
        "paper shape: diurnal arrivals load the fleet in waves; "
        "utilization and revenue track the wave while rejections "
        "(SLA violations) only accumulate near the peaks, and the "
        "fault layer's evictions are mostly absorbed by cross-chip "
        "re-placement (replaced_across_chips).");
}

class DatacenterChurnStudy final : public study::Study
{
  public:
    std::string
    name() const override
    {
        return "datacenter_churn";
    }

    std::string
    description() const override
    {
        return "1024-chip, 60k-tenant diurnal churn with faults";
    }

    std::vector<exec::SweepPoint>
    grid() const override
    {
        // Tenants draw any benchmark; the markets bid over the
        // whole surface.
        return study::fullPaperGrid();
    }

    void
    run(study::ReportContext &ctx) override
    {
        ChurnParams p;
        p.chips = 1024;
        p.tenants = 60000; // 120k arrive/depart tenant events
        p.epochPeriod = 50000;
        p.workload.seed = ctx.seed;
        p.workload.meanGap = 400.0;
        p.workload.meanLifetime = 3.0e6;
        p.workload.dayLength = Cycles{1} << 22;
        p.faultStride = 61; // ~17 chips carry a fault schedule
        p.faultsPerChip = 6;
        p.faultMtbf = 2.0e6;
        p.faultMttr = 1.0e6;
        runChurnStudy(ctx, p, /*sampleStride=*/4);
    }
};

class DatacenterChurnShortStudy final : public study::Study
{
  public:
    std::string
    name() const override
    {
        return "datacenter_churn_short";
    }

    std::string
    description() const override
    {
        return "CI-scale fleet churn (64 chips, 2k tenants)";
    }

    std::vector<exec::SweepPoint>
    grid() const override
    {
        return study::fullPaperGrid();
    }

    void
    run(study::ReportContext &ctx) override
    {
        ChurnParams p;
        p.chips = 64;
        p.tenants = 2000;
        p.epochPeriod = 20000;
        p.workload.seed = ctx.seed;
        p.workload.meanGap = 200.0;
        p.workload.meanLifetime = 1.0e5;
        p.workload.dayLength = Cycles{1} << 17;
        p.faultStride = 21; // 3 chips carry a fault schedule
        p.faultMtbf = 5.0e4;
        p.faultMttr = 2.5e4;
        runChurnStudy(ctx, p, /*sampleStride=*/1);
    }
};

class FleetScaleStudy final : public study::Study
{
  public:
    std::string
    name() const override
    {
        return "fleet_scale";
    }

    std::string
    description() const override
    {
        return "Placement cost vs. fleet size (sublinearity)";
    }

    void
    run(study::ReportContext &ctx) override
    {
        AreaModel am;
        UtilityOptimizer opt(ctx.pm, am);

        study::Table &t = ctx.report.addTable(
            "fleet_scale",
            "The same 8k-tenant stream placed into growing fleets");
        t.col("chips", study::Value::Kind::Integer)
            .col("admitted", study::Value::Kind::Integer)
            .col("rejected", study::Value::Kind::Integer)
            .col("lookups", study::Value::Kind::Integer)
            .col("tier_probes", study::Value::Kind::Integer)
            .col("probes_per_lookup", study::Value::Kind::Real, 4);

        for (const fleet::ChipId chips : {64u, 256u, 1024u, 4096u}) {
            ChurnParams p;
            p.chips = chips;
            p.tenants = 8000;
            p.epochPeriod = 100000;
            p.workload.seed = ctx.seed;
            p.workload.meanGap = 100.0;
            p.workload.meanLifetime = 1.0e5;
            // Budget-less tenants: fabric-only placement, no
            // markets -- the auction dimension would not scale with
            // fleet size and only blurs the placement measurement.
            p.workload.minBudget = 0.0;
            p.workload.maxBudget = 0.0;

            const auto t0 = std::chrono::steady_clock::now();
            const ChurnResult r =
                runChurn(opt, p, /*selfCheck=*/false);
            const double secs =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

            const engine::EngineStats &s = r.engine->stats();
            const auto &idx = r.engine->fleet().index();
            t.addRow({static_cast<unsigned long long>(chips),
                      static_cast<unsigned long long>(s.admitted),
                      static_cast<unsigned long long>(s.rejected),
                      static_cast<unsigned long long>(
                          idx.lookups()),
                      static_cast<unsigned long long>(
                          idx.tierProbes()),
                      idx.lookups() == 0
                          ? 0.0
                          : static_cast<double>(idx.tierProbes()) /
                                static_cast<double>(
                                    idx.lookups())});
            // Wall clock is volatile: runInfo only, never in the
            // deterministic JSON/CSV body.
            ctx.report.addRunInfo(
                "us_per_event_" + std::to_string(chips) + "_chips",
                s.processed == 0
                    ? 0.0
                    : secs * 1e6 /
                          static_cast<double>(s.processed));
        }
        ctx.report.addNote(
            "claim: probes_per_lookup stays flat as the fleet grows "
            "64x, so per-event placement cost is sublinear in fleet "
            "size (the tier sets are O(log chips) and the tier count "
            "is O(chip width), independent of the chip count).");
    }
};

} // namespace

SHARCH_REGISTER_STUDY(DatacenterChurnStudy)
SHARCH_REGISTER_STUDY(DatacenterChurnShortStudy)
SHARCH_REGISTER_STUDY(FleetScaleStudy)
