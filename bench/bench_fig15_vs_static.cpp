/**
 * @file
 * Figure 15: utility gain of the Sharing Architecture over the best
 * static fixed architecture, across all pairwise combinations of
 * (benchmark, utility) customers in Market2 (section 5.8).
 *
 * The paper reports gains of up to ~5x.  The study reports the gain
 * distribution (the scatter of the figure), the fixed configuration
 * chosen, and the extremes.
 */

#include "area/area_model.hh"
#include "core/perf_model.hh"
#include "econ/efficiency.hh"
#include "efficiency_tables.hh"
#include "study/registry.hh"
#include "study/study.hh"
#include "study/surface.hh"

using namespace sharch;

namespace {

class Fig15VsStaticStudy final : public study::Study
{
  public:
    std::string
    name() const override
    {
        return "fig15";
    }

    std::string
    description() const override
    {
        return "Utility gain vs. best static fixed architecture";
    }

    std::vector<exec::SweepPoint>
    grid() const override
    {
        return study::fullPaperGrid();
    }

    void
    run(study::ReportContext &ctx) override
    {
        AreaModel am;
        UtilityOptimizer opt(ctx.pm, am);
        EfficiencyStudy eff(opt);

        const EfficiencyResult res = eff.vsStaticFixed();
        ctx.report.addMeta("fixed_l2_kb", res.banksFixed * 64);
        ctx.report.addMeta("fixed_slices", res.slicesFixed);
        ctx.report.addMeta("pairs", res.gains.size());

        bench::gainTables(ctx.report, res);

        // The best pair, as an existence proof of large gains.
        const PairGain *best = &res.gains.front();
        for (const PairGain &g : res.gains)
            if (g.gain > best->gain)
                best = &g;
        study::Table &b =
            ctx.report.addTable("best_pair", "Largest pairwise gain");
        b.col("benchmark_a", study::Value::Kind::Text)
            .col("utility_a", study::Value::Kind::Text)
            .col("benchmark_b", study::Value::Kind::Text)
            .col("utility_b", study::Value::Kind::Text)
            .col("gain", study::Value::Kind::Real, 2);
        b.addRow({best->a.benchmark, utilityName(best->a.utility),
                  best->b.benchmark, utilityName(best->b.utility),
                  best->gain});

        ctx.report.addNote(
            "paper shape: significant gains, up to ~5x, across ~1000 "
            "permutations.");
    }
};

} // namespace

SHARCH_REGISTER_STUDY(Fig15VsStaticStudy)
