/**
 * @file
 * Figure 15: utility gain of the Sharing Architecture over the best
 * static fixed architecture, across all pairwise combinations of
 * (benchmark, utility) customers in Market2 (section 5.8).
 *
 * The paper reports gains of up to ~5x.  The harness prints the gain
 * distribution (the scatter of the figure), the fixed configuration
 * chosen, and the extremes.
 */

#include <algorithm>
#include <vector>

#include "bench_util.hh"
#include "econ/efficiency.hh"

using namespace sharch;
using namespace sharch::bench;

int
main()
{
    PerfModel &pm = sharedPerfModel();
    prefillSurface(pm, fullPaperGrid());
    AreaModel am;
    UtilityOptimizer opt(pm, am);
    EfficiencyStudy study(opt);

    printHeader("Figure 15",
                "Utility gain vs. best static fixed architecture");
    const EfficiencyResult res = study.vsStaticFixed();
    std::printf("best static fixed configuration: (%u KB, %u Slices)\n",
                res.banksFixed * 64, res.slicesFixed);
    std::printf("customer pairs evaluated: %zu\n", res.gains.size());

    // Gain distribution (the y values of the paper's scatter).
    std::vector<double> gains;
    for (const PairGain &g : res.gains)
        gains.push_back(g.gain);
    std::sort(gains.begin(), gains.end());
    auto pct = [&](double p) {
        return gains[static_cast<std::size_t>(p * (gains.size() - 1))];
    };
    std::printf("gain distribution: min %.2f  p25 %.2f  median %.2f  "
                "p75 %.2f  p95 %.2f  max %.2f\n",
                gains.front(), pct(0.25), pct(0.50), pct(0.75),
                pct(0.95), gains.back());
    std::printf("mean gain: %.2f\n", res.meanGain);

    // Histogram of the scatter.
    std::printf("\nhistogram (gain -> pairs):\n");
    const double top = std::max(2.0, gains.back());
    const int buckets = 12;
    for (int b = 0; b < buckets; ++b) {
        const double lo = b * top / buckets;
        const double hi = (b + 1) * top / buckets;
        std::size_t n = 0;
        for (double g : gains)
            if (g >= lo && g < hi)
                ++n;
        std::printf("  [%4.2f, %4.2f) %6zu ", lo, hi, n);
        for (std::size_t i = 0; i < n / 8; ++i)
            std::printf("#");
        std::printf("\n");
    }

    // The best pair, as an existence proof of large gains.
    const PairGain *best = &res.gains.front();
    for (const PairGain &g : res.gains)
        if (g.gain > best->gain)
            best = &g;
    std::printf("\nlargest gain %.2fx: %s/%s paired with %s/%s\n",
                best->gain, best->a.benchmark.c_str(),
                utilityName(best->a.utility),
                best->b.benchmark.c_str(),
                utilityName(best->b.utility));
    std::printf("\npaper shape: significant gains, up to ~5x, across "
                "~1000 permutations.\n");
    return 0;
}
