/**
 * @file
 * Table 7: optimal VCore configurations for the ten gcc phases, per
 * performance/area metric, with the dynamic-over-static gain charging
 * 10,000 cycles per reconfiguration that changes the L2 and 500
 * cycles for Slice-only changes (section 5.10).
 *
 * Paper values: gains of 9.1% / 15.1% / 19.4% for perf, perf^2 and
 * perf^3 per area, with the gain growing with the exponent.
 */

#include "area/area_model.hh"
#include "core/perf_model.hh"
#include "econ/phases.hh"
#include "study/registry.hh"
#include "study/study.hh"
#include "trace/profile.hh"

using namespace sharch;

namespace {

class Tab7PhasesStudy final : public study::Study
{
  public:
    std::string
    name() const override
    {
        return "tab7";
    }

    std::string
    description() const override
    {
        return "Optimal configurations for 10 gcc phases and the "
               "dynamic/static gain";
    }

    std::vector<exec::SweepPoint>
    grid() const override
    {
        // The phase study sweeps the full grid for each gcc phase.
        return exec::sweepGrid(gccPhaseProfiles(), l2BankGrid(),
                               exec::sliceRange());
    }

    void
    run(study::ReportContext &ctx) override
    {
        AreaModel am;
        UtilityOptimizer opt(ctx.pm, am);
        const PhaseStudyResult res = phaseStudy(opt);

        study::Table &p = ctx.report.addTable(
            "per_phase", "Optimal shape per gcc phase and metric");
        p.col("metric_exponent", study::Value::Kind::Integer)
            .col("phase", study::Value::Kind::Integer)
            .col("l2_kb", study::Value::Kind::Integer)
            .col("slices", study::Value::Kind::Integer);

        study::Table &s = ctx.report.addTable(
            "summary", "Static optimum and dynamic/static gain");
        s.col("metric_exponent", study::Value::Kind::Integer)
            .col("static_l2_kb", study::Value::Kind::Integer)
            .col("static_slices", study::Value::Kind::Integer)
            .col("gain_pct", study::Value::Kind::Real, 1)
            .col("paper_gain_pct", study::Value::Kind::Real, 1);

        for (const PhaseStudyRow &row : res.rows) {
            for (std::size_t i = 0; i < row.perPhase.size(); ++i) {
                const VCoreShape &sh = row.perPhase[i];
                p.addRow({row.metricExponent, i, sh.banks * 64,
                          sh.slices});
            }
            const double paper = row.metricExponent == 1   ? 9.1
                                 : row.metricExponent == 2 ? 15.1
                                                           : 19.4;
            s.addRow({row.metricExponent,
                      row.staticOptimal.banks * 64,
                      row.staticOptimal.slices, 100.0 * row.gain,
                      paper});
        }
        ctx.report.addNote(
            "paper shape: optimal shapes drift across phases, and "
            "the dynamic gain increases with the metric exponent.");
    }
};

} // namespace

SHARCH_REGISTER_STUDY(Tab7PhasesStudy)
