/**
 * @file
 * Table 7: optimal VCore configurations for the ten gcc phases, per
 * performance/area metric, with the dynamic-over-static gain charging
 * 10,000 cycles per reconfiguration that changes the L2 and 500
 * cycles for Slice-only changes (section 5.10).
 *
 * Paper values: gains of 9.1% / 15.1% / 19.4% for perf, perf^2 and
 * perf^3 per area, with the gain growing with the exponent.
 */

#include "bench_util.hh"
#include "econ/phases.hh"

using namespace sharch;
using namespace sharch::bench;

int
main()
{
    PerfModel &pm = sharedPerfModel();
    // The phase study sweeps the full grid for each gcc phase.
    prefillSurface(pm, exec::sweepGrid(gccPhaseProfiles(),
                                       l2BankGrid(),
                                       exec::sliceRange()));
    AreaModel am;
    UtilityOptimizer opt(pm, am);

    printHeader("Table 7",
                "Optimal configurations for 10 gcc phases");
    const PhaseStudyResult res = phaseStudy(opt);

    for (const PhaseStudyRow &row : res.rows) {
        std::printf("\nmetric: perf^%d/area\n", row.metricExponent);
        std::printf("  %-14s", "L2 (KB):");
        for (const VCoreShape &sh : row.perPhase)
            std::printf("%6u", sh.banks * 64);
        std::printf("\n  %-14s", "Slices:");
        for (const VCoreShape &sh : row.perPhase)
            std::printf("%6u", sh.slices);
        std::printf("\n  static optimal: (%u KB, %u Slices)\n",
                    row.staticOptimal.banks * 64,
                    row.staticOptimal.slices);
        std::printf("  dynamic/static gain: %.1f%%  (paper: %s)\n",
                    100.0 * row.gain,
                    row.metricExponent == 1   ? "9.1%"
                    : row.metricExponent == 2 ? "15.1%"
                                              : "19.4%");
    }
    std::printf("\npaper shape: optimal shapes drift across phases, "
                "and the dynamic gain\nincreases with the metric "
                "exponent.\n");
    return 0;
}
