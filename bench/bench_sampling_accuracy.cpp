/**
 * @file
 * Sampling accuracy: the fig13-shaped sweep (all benchmarks x L2
 * sizes on a two-Slice VCore) run both ways -- full detailed timing
 * and SMARTS-sampled with the default U:W:M schedule -- reporting
 * per-point relative IPC error.
 *
 * This is the validation study behind the sampled mode: the CI
 * `sampling-accuracy` job fails if any point's relative error
 * exceeds the tolerance (the `points_exceeding_tolerance` row must
 * stay 0).  The full side reads the shared prefilled surface; the
 * sampled side runs its own PerfModel in SampleMode::Sampled, which
 * by design never touches the shared disk cache.
 */

#include <algorithm>
#include <cmath>

#include "core/perf_model.hh"
#include "core/sampling.hh"
#include "study/registry.hh"
#include "study/study.hh"
#include "trace/profile.hh"

using namespace sharch;

namespace {

constexpr unsigned kSlices = 2;

/** CI gate: no sweep point may be off by more than this. */
constexpr double kTolerancePct = 2.0;

class SamplingAccuracyStudy final : public study::Study
{
  public:
    std::string
    name() const override
    {
        return "sampling_accuracy";
    }

    std::string
    description() const override
    {
        return "Sampled vs. full IPC on the fig13 sweep (relative "
               "error per point)";
    }

    std::vector<exec::SweepPoint>
    grid() const override
    {
        // The full side of the comparison: identical to fig13's grid
        // so the shared prefill covers it (and fig13 itself rides
        // free when both studies are selected).
        return exec::sweepGrid(benchmarkNames(), l2BankGrid(),
                               {kSlices});
    }

    void
    run(study::ReportContext &ctx) override
    {
        // The sampled twin of ctx.pm: same surface identity
        // (instructions, seed, trace mode), only the estimator
        // differs.  Batched so accuracy runs saturate the pool too.
        PerfModel sampled(ctx.instructions, ctx.seed);
        sampled.setTraceMode(ctx.pm.traceMode());
        sampled.setSampleMode(SampleMode::Sampled,
                              kDefaultSampleSchedule);
        const std::vector<exec::SweepPoint> points = grid();
        const std::vector<exec::SweepResult> estimates =
            sampled.performanceBatch(points, ctx.threads);

        study::Table &t = ctx.report.addTable(
            "accuracy", "Per-point sampled vs. full IPC");
        t.col("benchmark", study::Value::Kind::Text)
            .col("l2_kb", study::Value::Kind::Integer)
            .col("full_ipc", study::Value::Kind::Real, 4)
            .col("sampled_ipc", study::Value::Kind::Real, 4)
            .col("rel_err_pct", study::Value::Kind::Real, 3);

        double maxErr = 0.0, sumErr = 0.0;
        unsigned exceeding = 0;
        for (const exec::SweepResult &est : estimates) {
            const double full =
                ctx.pm.performance(est.name, est.banks, est.slices);
            const double err =
                100.0 * std::abs(est.ipc - full) / full;
            maxErr = std::max(maxErr, err);
            sumErr += err;
            if (err > kTolerancePct)
                ++exceeding;
            t.addRow({est.name, banksToKb(est.banks), full, est.ipc,
                      err});
        }

        study::Table &s = ctx.report.addTable(
            "summary", "Aggregate accuracy (gate: exceeding == 0)");
        s.col("metric", study::Value::Kind::Text)
            .col("value", study::Value::Kind::Real, 3);
        s.addRow({"points_total",
                  static_cast<double>(estimates.size())});
        s.addRow({"points_exceeding_tolerance",
                  static_cast<double>(exceeding)});
        s.addRow({"tolerance_pct", kTolerancePct});
        s.addRow({"max_rel_err_pct", maxErr});
        s.addRow({"mean_rel_err_pct",
                  estimates.empty()
                      ? 0.0
                      : sumErr / static_cast<double>(
                                     estimates.size())});

        ctx.report.addMeta("schedule",
                           sampleScheduleName(kDefaultSampleSchedule));
        ctx.report.addNote(
            "full side reads the shared exact surface; sampled side "
            "re-times every point with the SMARTS estimator at the "
            "default U:W:M schedule.  CI fails when any point's "
            "relative IPC error exceeds the tolerance.");
    }
};

} // namespace

SHARCH_REGISTER_STUDY(SamplingAccuracyStudy)
