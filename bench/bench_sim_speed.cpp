/**
 * @file
 * Microbenchmarks of the simulation substrate: trace generation,
 * cache model, network scheduling, end-to-end SSim throughput
 * (simulated instructions per second), and the parallel sweep.
 *
 * Timing is hand-rolled: each kernel is warmed once and then run in
 * batches until a minimum wall-clock interval has elapsed, and the
 * table reports the steady-state rate.  The reported numbers are
 * inherently machine- and load-dependent -- unlike every other study
 * this one is NOT reproducible bit-for-bit, which is why it should
 * never be used as a golden file.
 */

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cache/cache_model.hh"
#include "common/random.hh"
#include "common/scheduling.hh"
#include "core/perf_model.hh"
#include "core/sampling.hh"
#include "core/vm_sim.hh"
#include "exec/sweep.hh"
#include "study/registry.hh"
#include "study/study.hh"
#include "trace/generator.hh"
#include "trace/inst_source.hh"
#include "trace/profile.hh"

using namespace sharch;

namespace {

/** Keep the optimizer from discarding a benchmarked computation. */
volatile std::uint64_t g_sink = 0;

/**
 * Run @p body (which returns an item count) repeatedly until at
 * least 50 ms have elapsed, and report {items, seconds}.
 */
template <typename Body>
std::pair<std::uint64_t, double>
measure(Body &&body)
{
    using clock = std::chrono::steady_clock;
    constexpr double kMinSeconds = 0.05;

    body(); // warm-up: touch code, caches, and any lazy state
    std::uint64_t items = 0;
    const clock::time_point start = clock::now();
    clock::time_point now = start;
    do {
        items += body();
        now = clock::now();
    } while (std::chrono::duration<double>(now - start).count() <
             kMinSeconds);
    return {items, std::chrono::duration<double>(now - start).count()};
}

void
addRateRow(study::Table &t, const std::string &kernel,
           std::uint64_t param, std::pair<std::uint64_t, double> m)
{
    t.addRow({kernel, param, m.first, m.second,
              m.second > 0.0 ? m.first / m.second : 0.0});
}

class SimSpeedStudy final : public study::Study
{
  public:
    std::string
    name() const override
    {
        return "sim_speed";
    }

    std::string
    description() const override
    {
        return "Simulator throughput microbenchmarks (wall-clock, "
               "not reproducible)";
    }

    void
    run(study::ReportContext &ctx) override
    {
        study::Table &t = ctx.report.addTable(
            "sim_speed", "Substrate kernel throughput");
        t.col("kernel", study::Value::Kind::Text)
            .col("param", study::Value::Kind::Integer)
            .col("items", study::Value::Kind::Integer)
            .col("seconds", study::Value::Kind::Real, 4)
            .col("items_per_sec", study::Value::Kind::Real, 0);

        const BenchmarkProfile &p = profileFor("gcc");

        for (std::size_t n : {std::size_t(10000),
                              std::size_t(100000)}) {
            TraceGenerator gen(p, 1);
            addRateRow(t, "trace_generation", n, measure([&] {
                Trace tr = gen.generate(n);
                g_sink = g_sink + tr.instructions.size();
                return static_cast<std::uint64_t>(n);
            }));
        }

        // The same instruction stream pulled through the fused
        // (streaming) path: no Trace vector is ever materialized, the
        // consumer drains window()/consume() batches directly.
        for (std::size_t n : {std::size_t(10000),
                              std::size_t(100000)}) {
            TraceGenerator gen(p, 1);
            addRateRow(t, "trace_generation_fused", n, measure([&] {
                StreamingTraceSource src(gen, n);
                std::uint64_t acc = 0;
                while (!src.exhausted()) {
                    std::size_t avail = 0;
                    const TraceInst *w = src.window(avail);
                    for (std::size_t i = 0; i < avail; ++i)
                        acc += w[i].pc;
                    src.consume(avail);
                }
                g_sink = g_sink + acc;
                return static_cast<std::uint64_t>(n);
            }));
        }

        {
            CacheConfig cfg{64 * 1024, 64, 4, 4};
            CacheModel cache(cfg);
            Rng rng(7);
            addRateRow(t, "cache_model", 0, measure([&] {
                for (unsigned i = 0; i < 1024; ++i)
                    g_sink = g_sink + cache.access(
                        rng.nextBounded(1 << 22) * 8, false).hit;
                return std::uint64_t(1024);
            }));
        }

        {
            SlottedPort port(1);
            Rng rng(3);
            Cycles base = 0;
            addRateRow(t, "slotted_port", 0, measure([&] {
                for (unsigned i = 0; i < 1024; ++i) {
                    g_sink = g_sink +
                        port.schedule(base + rng.nextBounded(64));
                    ++base;
                }
                return std::uint64_t(1024);
            }));
        }

        // End-to-end throughput in the default (streaming) mode: the
        // trace is generated inside the sim loop, one refill buffer
        // at a time, never materialized.
        {
            TraceGenerator gen(p, 1);
            for (unsigned slices : {1u, 4u, 8u}) {
                addRateRow(t, "end_to_end", slices, measure([&] {
                    SimConfig cfg;
                    cfg.numSlices = slices;
                    cfg.numL2Banks = 4;
                    VmSim vm(cfg, 1);
                    std::vector<std::unique_ptr<InstSource>> sources;
                    sources.push_back(
                        std::make_unique<StreamingTraceSource>(gen,
                                                               20000));
                    VmResult res = vm.run(sources);
                    g_sink = g_sink + res.cycles;
                    return std::uint64_t(20000);
                }));
            }
        }

        // The materialized replay path (--trace-mode materialize):
        // a pre-generated Trace vector is re-simulated each
        // iteration, the pre-streaming behavior.  The gap between
        // this and end_to_end is the cost of bundle copies and
        // vector traffic that fusion removes.
        {
            TraceGenerator gen(p, 1);
            const Trace trace = gen.generate(20000);
            for (unsigned slices : {1u, 4u, 8u}) {
                addRateRow(t, "end_to_end_replay", slices, measure([&] {
                    SimConfig cfg;
                    cfg.numSlices = slices;
                    cfg.numL2Banks = 4;
                    VmSim vm(cfg, 1);
                    VmResult res = vm.run({trace});
                    g_sink = g_sink + res.cycles;
                    return std::uint64_t(20000);
                }));
            }
        }

        // The functional fast-forward alone: architectural warm
        // state (cache tags, predictor, mem-dep history) advances,
        // no timing.  This is the floor for sampled throughput --
        // the sampled rate approaches it as U/(W+M) grows.
        {
            TraceGenerator gen(p, 1);
            for (unsigned slices : {1u, 4u, 8u}) {
                addRateRow(t, "functional_fastforward", slices,
                           measure([&] {
                    SimConfig cfg;
                    cfg.numSlices = slices;
                    cfg.numL2Banks = 4;
                    VmSim vm(cfg, 1);
                    StreamingTraceSource src(gen, 200000);
                    while (vm.vcore(0).fastForward(src, 2000) > 0) {
                    }
                    g_sink = g_sink + vm.vcore(0).warmStateDigest();
                    return std::uint64_t(200000);
                }));
            }
        }

        // End-to-end SMARTS-sampled throughput at the default U:W:M
        // schedule (--sample): detailed warm-up + measure windows,
        // functional fast-forward between them, extrapolated stats.
        {
            TraceGenerator gen(p, 1);
            for (unsigned slices : {1u, 4u, 8u}) {
                addRateRow(t, "end_to_end_sampled", slices,
                           measure([&] {
                    SimConfig cfg;
                    cfg.numSlices = slices;
                    cfg.numL2Banks = 4;
                    VmSim vm(cfg, 1);
                    std::vector<std::unique_ptr<InstSource>> sources;
                    sources.push_back(
                        std::make_unique<StreamingTraceSource>(gen,
                                                               20000));
                    SamplingController controller(
                        kDefaultSampleSchedule, 1);
                    VmResult res = controller.run(vm, sources);
                    g_sink = g_sink + res.cycles;
                    return std::uint64_t(20000);
                }));
            }
        }

        // The acceptance workload in miniature: a multi-benchmark
        // grid batched through PerfModel::performanceBatch with a
        // varying worker count.  A fresh model per iteration keeps
        // the memo from hiding the simulation cost.
        {
            const auto grid = exec::sweepGrid(
                {std::string("gcc"), "hmmer", "sjeng"}, {0, 2, 8},
                exec::sliceRange(4));
            // On a single-core host the multi-worker rows measure
            // nothing but scheduling overhead and would bake
            // "negative scaling" into a committed baseline; emit the
            // 1-thread row only and say so.
            const unsigned hw = std::thread::hardware_concurrency();
            for (unsigned threads : {1u, 2u, 4u, 8u}) {
                if (hw == 1 && threads > 1)
                    continue;
                addRateRow(t, "parallel_sweep", threads, measure([&] {
                    PerfModel pm(8000);
                    auto results = pm.performanceBatch(grid, threads);
                    g_sink = g_sink + results.size();
                    return static_cast<std::uint64_t>(grid.size());
                }));
            }
            if (hw == 1) {
                ctx.report.addNote(
                    "hardware_concurrency() == 1: multi-thread "
                    "parallel_sweep rows omitted (they would only "
                    "measure scheduling overhead).");
            }
        }

        ctx.report.addNote(
            "wall-clock rates depend on the host machine and load; "
            "do not diff this report across runs.");
    }
};

} // namespace

SHARCH_REGISTER_STUDY(SimSpeedStudy)
