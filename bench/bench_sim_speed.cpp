/**
 * @file
 * google-benchmark microbenchmarks of the simulation substrate:
 * trace generation, cache model, network scheduling, and end-to-end
 * SSim throughput (simulated instructions per second).
 */

#include <benchmark/benchmark.h>

#include "cache/cache_model.hh"
#include "common/random.hh"
#include "common/scheduling.hh"
#include "core/perf_model.hh"
#include "core/vm_sim.hh"
#include "exec/sweep.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"

using namespace sharch;

namespace {

void
BM_TraceGeneration(benchmark::State &state)
{
    const BenchmarkProfile &p = profileFor("gcc");
    TraceGenerator gen(p, 1);
    for (auto _ : state) {
        Trace t = gen.generate(
            static_cast<std::size_t>(state.range(0)));
        benchmark::DoNotOptimize(t.instructions.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceGeneration)->Arg(10000)->Arg(100000);

void
BM_CacheModel(benchmark::State &state)
{
    CacheConfig cfg{64 * 1024, 64, 4, 4};
    CacheModel cache(cfg);
    Rng rng(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.nextBounded(1 << 22) * 8, false));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheModel);

void
BM_SlottedPort(benchmark::State &state)
{
    SlottedPort port(1);
    Rng rng(3);
    Cycles base = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            port.schedule(base + rng.nextBounded(64)));
        ++base;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlottedPort);

void
BM_SimulatorEndToEnd(benchmark::State &state)
{
    const BenchmarkProfile &p = profileFor("gcc");
    TraceGenerator gen(p, 1);
    const Trace trace =
        gen.generate(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        SimConfig cfg;
        cfg.numSlices = static_cast<unsigned>(state.range(1));
        cfg.numL2Banks = 4;
        VmSim vm(cfg, 1);
        VmResult res = vm.run({trace});
        benchmark::DoNotOptimize(res.cycles);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorEndToEnd)
    ->Args({20000, 1})
    ->Args({20000, 4})
    ->Args({20000, 8});

void
BM_ParallelSweep(benchmark::State &state)
{
    // The acceptance workload in miniature: a multi-benchmark grid
    // batched through PerfModel::performanceBatch with a varying
    // worker count.  Real time is the figure of merit; a fresh model
    // per iteration keeps the memo from hiding the simulation cost.
    const auto grid = exec::sweepGrid(
        {std::string("gcc"), "hmmer", "sjeng"}, {0, 2, 8},
        exec::sliceRange(4));
    const unsigned threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        PerfModel pm(8000);
        auto results = pm.performanceBatch(grid, threads);
        benchmark::DoNotOptimize(results.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(grid.size()));
}
BENCHMARK(BM_ParallelSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

} // namespace

BENCHMARK_MAIN();
