/**
 * @file
 * Ablation from section 5.1: operand-network bandwidth sensitivity.
 *
 * The paper dedicates one Scalar Operand Network to both operand
 * requests and replies, and reports that adding a second operand
 * network improves performance by only ~1% across their applications.
 * This study runs every benchmark at the 4-Slice/256 KB design point
 * with one and with two operand networks and reports the deltas.
 */

#include <vector>

#include "common/math_util.hh"
#include "config/sim_config.hh"
#include "core/vm_sim.hh"
#include "study/registry.hh"
#include "study/study.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"

using namespace sharch;

namespace {

double
runWith(const BenchmarkProfile &profile, unsigned operand_networks,
        std::size_t instructions, std::uint64_t seed)
{
    SimConfig cfg;
    cfg.numSlices = 4;
    cfg.numL2Banks = 4;
    cfg.network.operandNetworks = operand_networks;
    const unsigned vcores =
        profile.multithreaded ? profile.numThreads : 1;
    VmSim vm(cfg, vcores);
    vm.prewarm(profile);
    TraceGenerator gen(profile, seed);
    const VmResult res = vm.run(gen.generateThreads(instructions));
    return res.throughput();
}

class AblateSonStudy final : public study::Study
{
  public:
    std::string
    name() const override
    {
        return "ablate_son";
    }

    std::string
    description() const override
    {
        return "Second operand network sensitivity (4 Slices, "
               "256 KB)";
    }

    void
    run(study::ReportContext &ctx) override
    {
        study::Table &t = ctx.report.addTable(
            "ablate_son",
            "IPC with one vs. two scalar operand networks");
        t.col("benchmark", study::Value::Kind::Text)
            .col("ipc_1son", study::Value::Kind::Real, 3)
            .col("ipc_2son", study::Value::Kind::Real, 3)
            .col("delta_pct", study::Value::Kind::Real, 2);
        std::vector<double> ratios;
        for (const std::string &bench : benchmarkNames()) {
            const BenchmarkProfile &p = profileFor(bench);
            const double one =
                runWith(p, 1, ctx.instructions, ctx.seed);
            const double two =
                runWith(p, 2, ctx.instructions, ctx.seed);
            t.addRow({bench, one, two, 100.0 * (two / one - 1.0)});
            ratios.push_back(two / one);
        }
        study::Table &g = ctx.report.addTable(
            "summary", "Geometric-mean improvement");
        g.col("geomean_delta_pct", study::Value::Kind::Real, 2);
        g.addRow({100.0 * (geometricMean(ratios) - 1.0)});
        ctx.report.addNote(
            "paper: ~1% -- one operand network provides sufficient "
            "bandwidth.");
    }
};

} // namespace

SHARCH_REGISTER_STUDY(AblateSonStudy)
