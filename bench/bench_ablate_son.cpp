/**
 * @file
 * Ablation from section 5.1: operand-network bandwidth sensitivity.
 *
 * The paper dedicates one Scalar Operand Network to both operand
 * requests and replies, and reports that adding a second operand
 * network improves performance by only ~1% across their applications.
 * This harness runs every benchmark at the 4-Slice/256 KB design point
 * with one and with two operand networks and reports the deltas.
 */

#include "bench_util.hh"
#include "common/math_util.hh"
#include "core/vm_sim.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"

using namespace sharch;
using namespace sharch::bench;

namespace {

double
runWith(const BenchmarkProfile &profile, unsigned operand_networks,
        std::size_t instructions)
{
    SimConfig cfg;
    cfg.numSlices = 4;
    cfg.numL2Banks = 4;
    cfg.network.operandNetworks = operand_networks;
    const unsigned vcores =
        profile.multithreaded ? profile.numThreads : 1;
    VmSim vm(cfg, vcores);
    vm.prewarm(profile);
    TraceGenerator gen(profile, benchSeed());
    const VmResult res = vm.run(gen.generateThreads(instructions));
    return res.throughput();
}

} // namespace

int
main()
{
    const std::size_t n = benchInstructions();

    printHeader("Section 5.1 ablation",
                "Second operand network sensitivity (4 Slices, "
                "256 KB)");
    std::printf("%-12s %10s %10s %8s\n", "benchmark", "1 SON",
                "2 SONs", "delta");
    std::vector<double> ratios;
    for (const std::string &name : benchmarkNames()) {
        const BenchmarkProfile &p = profileFor(name);
        const double one = runWith(p, 1, n);
        const double two = runWith(p, 2, n);
        std::printf("%-12s %10.3f %10.3f %+7.2f%%\n", name.c_str(),
                    one, two, 100.0 * (two / one - 1.0));
        ratios.push_back(two / one);
    }
    std::printf("\ngeometric-mean improvement from a second operand "
                "network: %+.2f%%\n",
                100.0 * (geometricMean(ratios) - 1.0));
    std::printf("paper: ~1%% -- one operand network provides "
                "sufficient bandwidth.\n");
    return 0;
}
