/**
 * @file
 * Table 4: optimal VCore configurations (L2 size, Slice count) per
 * benchmark for the three performance-area efficiency metrics
 * perf/area, perf^2/area and perf^3/area (section 5.5).
 *
 * The paper's headline facts: optima are non-uniform even for
 * perf/area; hmmer prefers (64 KB, 1 Slice) while gobmk prefers many
 * Slices and much more cache under perf^2/area; and optima grow with
 * the metric exponent.
 */

#include "bench_util.hh"
#include "trace/profile.hh"

using namespace sharch;
using namespace sharch::bench;

int
main()
{
    PerfModel &pm = sharedPerfModel();
    prefillSurface(pm, fullPaperGrid());
    AreaModel am;
    UtilityOptimizer opt(pm, am);

    printHeader("Table 4",
                "Optimal (L2 KB, Slices) per performance/area metric");
    std::printf("%-12s %16s %16s %16s\n", "benchmark", "perf/area",
                "perf^2/area", "perf^3/area");
    for (const std::string &name : benchmarkNames()) {
        std::printf("%-12s", name.c_str());
        for (int k = 1; k <= 3; ++k) {
            const OptResult r = opt.peakPerfPerArea(name, k);
            std::printf("    (%5uK, %u)  ", r.cacheKb(), r.slices);
        }
        std::printf("\n");
    }
    std::printf("\npaper shape: optima differ across benchmarks and "
                "grow with the exponent;\nhmmer stays at (64 KB, 1-2 "
                "Slices) while gobmk/gcc move to several Slices\nand "
                "hundreds of KB to MBs of cache.\n");
    return 0;
}
