/**
 * @file
 * Table 4: optimal VCore configurations (L2 size, Slice count) per
 * benchmark for the three performance-area efficiency metrics
 * perf/area, perf^2/area and perf^3/area (section 5.5).
 *
 * The paper's headline facts: optima are non-uniform even for
 * perf/area; hmmer prefers (64 KB, 1 Slice) while gobmk prefers many
 * Slices and much more cache under perf^2/area; and optima grow with
 * the metric exponent.
 */

#include "area/area_model.hh"
#include "core/perf_model.hh"
#include "econ/optimizer.hh"
#include "study/registry.hh"
#include "study/study.hh"
#include "study/surface.hh"
#include "trace/profile.hh"

using namespace sharch;

namespace {

class Tab4PerfAreaStudy final : public study::Study
{
  public:
    std::string
    name() const override
    {
        return "tab4";
    }

    std::string
    description() const override
    {
        return "Optimal (L2 KB, Slices) per performance/area metric";
    }

    std::vector<exec::SweepPoint>
    grid() const override
    {
        return study::fullPaperGrid();
    }

    void
    run(study::ReportContext &ctx) override
    {
        AreaModel am;
        UtilityOptimizer opt(ctx.pm, am);

        study::Table &t = ctx.report.addTable(
            "tab4", "Optimal (L2 KB, Slices) per metric perf^k/area");
        t.col("benchmark", study::Value::Kind::Text);
        for (int k = 1; k <= 3; ++k) {
            const std::string p = "perf" + std::to_string(k);
            t.col(p + "_l2_kb", study::Value::Kind::Integer)
                .col(p + "_slices", study::Value::Kind::Integer);
        }
        for (const std::string &bench : benchmarkNames()) {
            std::vector<study::Value> row{bench};
            for (int k = 1; k <= 3; ++k) {
                const OptResult r = opt.peakPerfPerArea(bench, k);
                row.push_back(r.cacheKb());
                row.push_back(r.slices);
            }
            t.addRow(std::move(row));
        }
        ctx.report.addNote(
            "paper shape: optima differ across benchmarks and grow "
            "with the exponent; hmmer stays at (64 KB, 1-2 Slices) "
            "while gobmk/gcc move to several Slices and hundreds of "
            "KB to MBs of cache.");
    }
};

} // namespace

SHARCH_REGISTER_STUDY(Tab4PerfAreaStudy)
