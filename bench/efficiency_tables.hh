/**
 * @file
 * Shared report shaping for the two market-efficiency studies (fig15,
 * fig16): the gain distribution and histogram tables over an
 * EfficiencyResult's customer-pair gains.
 */

#ifndef SHARCH_BENCH_EFFICIENCY_TABLES_HH
#define SHARCH_BENCH_EFFICIENCY_TABLES_HH

#include <algorithm>
#include <vector>

#include "econ/efficiency.hh"
#include "study/report.hh"

namespace sharch::bench {

/** Distribution + histogram tables of @p res's pair gains. */
inline void
gainTables(study::Report &report, const EfficiencyResult &res)
{
    std::vector<double> gains;
    gains.reserve(res.gains.size());
    for (const PairGain &g : res.gains)
        gains.push_back(g.gain);
    std::sort(gains.begin(), gains.end());
    auto pct = [&](double p) {
        return gains[static_cast<std::size_t>(p * (gains.size() - 1))];
    };

    study::Table &d = report.addTable(
        "gain_distribution", "Gain distribution over customer pairs");
    d.col("stat", study::Value::Kind::Text)
        .col("gain", study::Value::Kind::Real, 2);
    d.addRow({"min", gains.front()});
    d.addRow({"p25", pct(0.25)});
    d.addRow({"median", pct(0.50)});
    d.addRow({"p75", pct(0.75)});
    d.addRow({"p95", pct(0.95)});
    d.addRow({"max", gains.back()});
    d.addRow({"mean", res.meanGain});

    study::Table &h =
        report.addTable("histogram", "Histogram of pair gains");
    h.col("gain_lo", study::Value::Kind::Real, 2)
        .col("gain_hi", study::Value::Kind::Real, 2)
        .col("pairs", study::Value::Kind::Integer);
    const double top = std::max(2.0, gains.back());
    const int buckets = 12;
    for (int b = 0; b < buckets; ++b) {
        const double lo = b * top / buckets;
        const double hi = (b + 1) * top / buckets;
        std::size_t n = 0;
        for (double g : gains)
            if (g >= lo && g < hi)
                ++n;
        h.addRow({lo, hi, n});
    }
}

} // namespace sharch::bench

#endif // SHARCH_BENCH_EFFICIENCY_TABLES_HH
