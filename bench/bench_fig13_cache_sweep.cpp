/**
 * @file
 * Figure 13: performance scaling with L2 cache size, 0 KB to 8 MB, on
 * a fixed two-Slice VCore, normalized to the no-L2 point.
 *
 * The paper's observations to reproduce: omnetpp/mcf are strongly
 * cache-sensitive, astar/libquantum/gobmk much less so (gobmk
 * saturates early), and performance can *decrease* with more cache
 * because each additional 256 KB adds ~2 cycles of distance latency.
 */

#include "bench_util.hh"
#include "trace/profile.hh"

using namespace sharch;
using namespace sharch::bench;

int
main()
{
    PerfModel &pm = sharedPerfModel();
    // One parallel batch for the whole benchmark x L2-size grid.
    prefillSurface(pm,
                   exec::sweepGrid(benchmarkNames(), l2BankGrid(),
                                   {2}));

    printHeader("Figure 13",
                "Performance vs. L2 size (2 Slices, normalized to "
                "no L2)");
    std::printf("%-12s", "benchmark");
    for (unsigned banks : l2BankGrid())
        std::printf("%7uK", banksToKb(banks));
    std::printf("\n");

    const unsigned slices = 2;
    for (const std::string &name : benchmarkNames()) {
        const double base = pm.performance(name, 0, slices);
        std::printf("%-12s", name.c_str());
        for (unsigned banks : l2BankGrid()) {
            std::printf("%8.2f",
                        pm.performance(name, banks, slices) / base);
        }
        std::printf("\n");
    }
    std::printf("\npaper shape: omnetpp/mcf strongly sensitive; "
                "astar/libquantum flat;\nmost curves dip at 4-8 MB "
                "from the +2 cycles per 256 KB of distance.\n");
    return 0;
}
