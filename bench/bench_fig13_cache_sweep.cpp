/**
 * @file
 * Figure 13: performance scaling with L2 cache size, 0 KB to 8 MB, on
 * a fixed two-Slice VCore, normalized to the no-L2 point.
 *
 * The paper's observations to reproduce: omnetpp/mcf are strongly
 * cache-sensitive, astar/libquantum/gobmk much less so (gobmk
 * saturates early), and performance can *decrease* with more cache
 * because each additional 256 KB adds ~2 cycles of distance latency.
 */

#include "core/perf_model.hh"
#include "study/registry.hh"
#include "study/study.hh"
#include "trace/profile.hh"

using namespace sharch;

namespace {

constexpr unsigned kSlices = 2;

class Fig13CacheSweepStudy final : public study::Study
{
  public:
    std::string
    name() const override
    {
        return "fig13";
    }

    std::string
    description() const override
    {
        return "Performance vs. L2 size (2 Slices, normalized to "
               "no L2)";
    }

    std::vector<exec::SweepPoint>
    grid() const override
    {
        // One batch for the whole benchmark x L2-size grid.
        return exec::sweepGrid(benchmarkNames(), l2BankGrid(),
                               {kSlices});
    }

    void
    run(study::ReportContext &ctx) override
    {
        study::Table &t = ctx.report.addTable(
            "fig13", "Performance vs. L2 size, normalized to 0 KB");
        t.col("benchmark", study::Value::Kind::Text);
        for (unsigned banks : l2BankGrid())
            t.col("l2_" + std::to_string(banksToKb(banks)) + "k",
                  study::Value::Kind::Real, 2);
        for (const std::string &bench : benchmarkNames()) {
            const double norm = ctx.pm.performance(bench, 0, kSlices);
            std::vector<study::Value> row{bench};
            for (unsigned banks : l2BankGrid())
                row.push_back(
                    ctx.pm.performance(bench, banks, kSlices) / norm);
            t.addRow(std::move(row));
        }
        ctx.report.addNote(
            "paper shape: omnetpp/mcf strongly sensitive; "
            "astar/libquantum flat; most curves dip at 4-8 MB from "
            "the +2 cycles per 256 KB of distance.");
    }
};

} // namespace

SHARCH_REGISTER_STUDY(Fig13CacheSweepStudy)
