/**
 * @file
 * Figures 10 and 11: area decomposition of one Slice, without and with
 * a 64 KB L2 bank, plus the headline sharing-overhead percentages the
 * paper reports from its Verilog implementation (section 5.1).
 */

#include <cstdio>

#include "area/area_model.hh"
#include "study/registry.hh"
#include "study/study.hh"

using namespace sharch;

namespace {

void
breakdownTable(study::Report &report, const AreaModel &model,
               const std::string &id, const std::string &title,
               bool include_l2)
{
    study::Table &t = report.addTable(id, title);
    t.col("component", study::Value::Kind::Text)
        .col("area_um2", study::Value::Kind::Real, 0)
        .col("percent", study::Value::Kind::Real, 1)
        .col("sharing_overhead", study::Value::Kind::Boolean);
    double total = 0.0;
    for (const AreaEntry &e : model.breakdown(include_l2)) {
        // Identify sharing-overhead rows by name lookup.
        bool sharing = false;
        for (int i = 0;
             i < static_cast<int>(SliceComponent::NumComponents); ++i) {
            const auto c = static_cast<SliceComponent>(i);
            if (e.name == sliceComponentName(c))
                sharing = isSharingOverhead(c);
        }
        t.addRow({e.name, e.areaUm2, e.percent, sharing});
        total += e.areaUm2;
    }
    t.addRow({"total", total, 100.0, false});

    char note[128];
    std::snprintf(note, sizeof(note),
                  "%s sharing overhead: %.1f%% (paper: %s)",
                  id.c_str(),
                  100.0 * model.sharingOverheadFraction(include_l2),
                  include_l2 ? "5%" : "8%");
    report.addNote(note);
}

class Fig1011AreaStudy final : public study::Study
{
  public:
    std::string
    name() const override
    {
        return "fig10_11";
    }

    std::string
    description() const override
    {
        return "Slice area decomposition without and with a 64 KB "
               "L2 bank";
    }

    void
    run(study::ReportContext &ctx) override
    {
        const AreaModel model;
        breakdownTable(ctx.report, model, "fig10",
                       "Slice area decomposition without L2", false);
        breakdownTable(ctx.report, model, "fig11",
                       "Area decomposition including one 64 KB L2 "
                       "bank",
                       true);

        study::Table &a =
            ctx.report.addTable("anchors", "Area anchors");
        a.col("quantity", study::Value::Kind::Text)
            .col("value", study::Value::Kind::Real, 3);
        a.addRow({"slice_mm2", model.sliceAreaUm2() * 1e-6});
        a.addRow({"l2_bank_mm2", model.l2BankAreaUm2() * 1e-6});
        a.addRow({"bank_per_slice",
                  model.l2BankAreaUm2() / model.sliceAreaUm2()});
        ctx.report.addNote("market parity: 128 KB ~ 1 Slice");
    }
};

} // namespace

SHARCH_REGISTER_STUDY(Fig1011AreaStudy)
