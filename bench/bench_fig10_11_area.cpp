/**
 * @file
 * Figures 10 and 11: area decomposition of one Slice, without and with
 * a 64 KB L2 bank, plus the headline sharing-overhead percentages the
 * paper reports from its Verilog implementation (section 5.1).
 */

#include "bench_util.hh"

using namespace sharch;
using namespace sharch::bench;

namespace {

void
printBreakdown(const AreaModel &model, bool include_l2)
{
    std::printf("%-28s %12s %8s %8s\n", "component", "area (um^2)",
                "percent", "sharing");
    double total = 0.0;
    for (const AreaEntry &e : model.breakdown(include_l2)) {
        // Identify sharing-overhead rows by name lookup.
        bool sharing = false;
        for (int i = 0;
             i < static_cast<int>(SliceComponent::NumComponents); ++i) {
            const auto c = static_cast<SliceComponent>(i);
            if (e.name == sliceComponentName(c))
                sharing = isSharingOverhead(c);
        }
        std::printf("%-28s %12.0f %7.1f%% %8s\n", e.name.c_str(),
                    e.areaUm2, e.percent, sharing ? "yes" : "");
        total += e.areaUm2;
    }
    std::printf("%-28s %12.0f %7.1f%%\n", "total", total, 100.0);
    std::printf("sharing overhead: %.1f%% (paper: %s)\n",
                100.0 * model.sharingOverheadFraction(include_l2),
                include_l2 ? "5%" : "8%");
}

} // namespace

int
main()
{
    const AreaModel model;

    printHeader("Figure 10", "Slice area decomposition without L2");
    printBreakdown(model, false);

    std::printf("\n");
    printHeader("Figure 11",
                "Area decomposition including one 64 KB L2 bank");
    printBreakdown(model, true);

    std::printf("\nanchors: slice = %.3f mm^2, 64 KB bank = %.3f mm^2, "
                "bank/slice = %.2f (market parity: 128 KB ~ 1 Slice)\n",
                model.sliceAreaUm2() * 1e-6, model.l2BankAreaUm2() * 1e-6,
                model.l2BankAreaUm2() / model.sliceAreaUm2());
    return 0;
}
