/**
 * @file
 * Kill-anywhere recovery study for the write-ahead journal: a
 * market session (arrivals with budgets, auctions, a reshape, a
 * fault, churn) runs once with a journal attached, then the log's
 * final segment is cut at every record boundary and at offsets
 * inside each frame -- every state a crash could leave on disk.
 * Each cut is recovered (newest snapshot + wal replay, torn tail
 * truncated with a positioned warning), the missing script suffix
 * is re-executed, and the final sharch-report-v1 bytes are compared
 * to the uninterrupted run.  The fact to reproduce is the journal's
 * contract: every crash point recovers byte-identically
 * (recoveries_matched == crash_points), with mid-frame cuts
 * surfacing as torn-tail truncations rather than errors.
 */

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include <unistd.h>

#include "area/area_model.hh"
#include "econ/market.hh"
#include "engine/allocation_engine.hh"
#include "engine/event.hh"
#include "engine/journal.hh"
#include "study/registry.hh"
#include "study/study.hh"
#include "study/surface.hh"
#include "trace/profile.hh"

using namespace sharch;
namespace fs = std::filesystem;

namespace {

std::vector<std::string>
journalBenchmarks()
{
    const std::vector<std::string> names = benchmarkNames();
    return {names.front(), names.back()};
}

/**
 * The scripted session.  Cycles strictly increase so dispatch order
 * equals script order: after recovery, the engine's `processed`
 * counter indexes directly into this list.
 */
std::vector<engine::Event>
journalScript()
{
    const std::vector<std::string> bench = journalBenchmarks();
    const double budget = defaultBudget();
    std::vector<engine::Event> s;
    s.push_back(engine::tenantArrive(
        10, "t-alpha", bench[0], UtilityKind::Throughput, budget, 4,
        8));
    s.push_back(engine::tenantArrive(
        20, "t-beta", bench[1], UtilityKind::Balanced, budget, 6,
        4));
    s.push_back(engine::auctionEpoch(100));
    s.push_back(engine::tenantArrive(
        200, "t-gamma", bench[0], UtilityKind::SingleStream, budget,
        8, 16));
    s.push_back(engine::reshapeEvent(250, 1, 2, 4));
    s.push_back(engine::faultStrike(300, fault::FaultKind::Slice,
                                    Coord{2, 0}));
    s.push_back(engine::tenantDepart(500, "t-beta"));
    s.push_back(engine::auctionEpoch(600));
    s.push_back(engine::tenantArrive(
        700, "t-delta", bench[1], UtilityKind::Throughput, budget, 2,
        2));
    s.push_back(engine::healFault(800, fault::FaultKind::Slice,
                                  Coord{2, 0}));
    s.push_back(engine::reshapeEvent(850, 3, 6, 8));
    s.push_back(engine::auctionEpoch(900));
    return s;
}

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

class JournalRecoveryStudy final : public study::Study
{
  public:
    std::string
    name() const override
    {
        return "journal_recovery";
    }

    std::string
    description() const override
    {
        return "Kill-anywhere journal recovery is byte-deterministic";
    }

    std::vector<exec::SweepPoint>
    grid() const override
    {
        std::vector<BenchmarkProfile> profiles;
        for (const std::string &b : journalBenchmarks())
            profiles.push_back(profileFor(b));
        std::vector<unsigned> slices;
        for (unsigned s = 1; s <= 8; ++s)
            slices.push_back(s);
        return exec::sweepGrid(profiles, l2BankGrid(), slices);
    }

    void
    run(study::ReportContext &ctx) override
    {
        AreaModel am;
        UtilityOptimizer opt(ctx.pm, am);
        const engine::EngineConfig cfg; // the 8x8 default chip
        const std::vector<engine::Event> script = journalScript();

        const fs::path work =
            fs::temp_directory_path() /
            ("sharch-journal-study-" + std::to_string(::getpid()));
        fs::remove_all(work);
        fs::create_directories(work);

        // Uninterrupted baseline, journaled with a small segment so
        // rotation + compaction are part of what recovery must cope
        // with.
        engine::JournalConfig jcfg{(work / "base").string()};
        jcfg.rotateEvery = 4;
        std::string baseline;
        std::uint64_t generations = 0;
        {
            engine::AllocationEngine full(opt, cfg);
            engine::Journal journal{jcfg};
            std::string err;
            const bool ok = journal.open(full, nullptr, &err);
            if (!ok) {
                ctx.report.addNote("journal open failed: " + err);
                return;
            }
            for (const engine::Event &e : script)
                full.execute(e);
            baseline = study::renderJson(full.finalReport());
            generations = journal.generation();
        }

        // Every prefix of the final segment is a possible crash
        // state: cut at each record boundary and at three offsets
        // inside every frame (header, payload, tail).
        const fs::path finalWal =
            work / "base" /
            ("wal-" + std::to_string(generations) + ".log");
        const std::string wal = readFile(finalWal);
        const std::size_t magic =
            std::strlen(engine::kJournalMagic);
        std::vector<std::size_t> cuts;
        std::size_t off = magic;
        while (off < wal.size()) {
            cuts.push_back(off);
            const auto *u =
                reinterpret_cast<const unsigned char *>(
                    wal.data() + off);
            const std::size_t len =
                u[0] | u[1] << 8 | u[2] << 16 |
                static_cast<std::size_t>(u[3]) << 24;
            for (std::size_t inside : {std::size_t{4},
                                       std::size_t{8} + len / 2,
                                       std::size_t{8} + len - 1}) {
                if (off + inside < wal.size())
                    cuts.push_back(off + inside);
            }
            off += 8 + len;
        }
        cuts.push_back(wal.size()); // no tearing at all

        std::uint64_t matched = 0, torn = 0, replayedTotal = 0;
        for (std::size_t i = 0; i < cuts.size(); ++i) {
            const fs::path dir =
                work / ("cut-" + std::to_string(i));
            fs::create_directories(dir);
            for (const auto &ent :
                 fs::directory_iterator(work / "base")) {
                if (ent.path() == finalWal)
                    continue;
                fs::copy(ent.path(),
                         dir / ent.path().filename());
            }
            std::ofstream cut(dir / finalWal.filename(),
                              std::ios::binary);
            cut << wal.substr(0, cuts[i]);
            cut.close();

            engine::AllocationEngine e(opt, cfg);
            engine::Journal j{engine::JournalConfig{
                dir.string(), 1, jcfg.rotateEvery}};
            engine::JournalRecovery rec;
            std::string err;
            if (!j.open(e, &rec, &err)) {
                ctx.report.addNote(
                    "cut " + std::to_string(cuts[i]) +
                    ": recovery failed: " + err);
                continue;
            }
            torn += rec.truncatedTail;
            replayedTotal += rec.replayed;
            std::string inv;
            if (!e.checkInvariants(&inv)) {
                ctx.report.addNote(
                    "cut " + std::to_string(cuts[i]) +
                    ": invariants failed: " + inv);
                continue;
            }
            for (std::uint64_t k = e.stats().processed;
                 k < script.size(); ++k) {
                e.execute(script[k]);
            }
            matched +=
                study::renderJson(e.finalReport()) == baseline;
        }
        fs::remove_all(work);

        study::Table &t = ctx.report.addTable(
            "journal_recovery",
            "Crash-point recovery vs. uninterrupted run");
        t.col("metric", study::Value::Kind::Text)
            .col("value", study::Value::Kind::Integer);
        t.addRow({"crash_points", static_cast<unsigned long long>(
                                      cuts.size())});
        t.addRow({"recoveries_matched",
                  static_cast<unsigned long long>(matched)});
        t.addRow({"torn_truncations",
                  static_cast<unsigned long long>(torn)});
        t.addRow({"events_replayed",
                  static_cast<unsigned long long>(replayedTotal)});
        t.addRow({"generations",
                  static_cast<unsigned long long>(generations)});
        t.addRow({"script_events",
                  static_cast<unsigned long long>(script.size())});
        ctx.report.addNote(
            "contract: every cut of the final wal segment -- at "
            "record boundaries and mid-frame -- recovers to "
            "byte-identical sharch-report-v1 output "
            "(recoveries_matched == crash_points); mid-frame cuts "
            "count as torn_truncations.");
    }
};

} // namespace

SHARCH_REGISTER_STUDY(JournalRecoveryStudy)
