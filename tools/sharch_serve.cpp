/**
 * @file
 * sharch-serve -- the allocation engine as a daemon.
 *
 * Reads one JSON request per stdin line, answers one JSON response
 * per stdout line (see engine/serve_session.hh for the protocol and
 * DESIGN.md section 8 for a worked transcript).  All diagnostics go
 * to stderr so stdout stays a pure response stream a driver can
 * parse line by line:
 *
 *   printf '%s\n' '{"op":"allocate","tenant":"a","slices":4}' \
 *     '{"op":"snapshot","path":"s.json"}' | sharch-serve
 *
 * Durability has two tiers.  Snapshot/restore round-trips
 * byte-exactly, so a process killed after any *response* resumes
 * via --restore FILE.  With --journal DIR every event is also
 * written ahead to a CRC32-framed log (DESIGN.md section 9), so a
 * process killed after any *instruction* recovers: the next start
 * loads the newest snapshot, truncates a torn tail with a
 * positioned warning, replays the suffix, and refuses to serve
 * unless AllocationEngine::checkInvariants() passes.
 *
 * SIGTERM/SIGINT shut down gracefully: the in-flight request is
 * answered, the journal is flushed and anchored with a final
 * snapshot, and the process exits 0 with a one-line summary on
 * stderr.  Input lines are read through a bounded buffer -- a line
 * that exceeds the protocol's request limit is answered with a
 * positioned error, never buffered without limit.
 */

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <unistd.h>

#include "area/area_model.hh"
#include "core/perf_model.hh"
#include "econ/optimizer.hh"
#include "engine/allocation_engine.hh"
#include "engine/journal.hh"
#include "engine/serve_session.hh"
#include "exec/run_options.hh"
#include "fleet/fleet_engine.hh"

using namespace sharch;

namespace {

volatile std::sig_atomic_t gStop = 0;

void
onSignal(int)
{
    gStop = 1;
}

/** SIGTERM/SIGINT break the blocking read (no SA_RESTART). */
void
installSignalHandlers()
{
    struct sigaction sa{};
    sa.sa_handler = onSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
}

void
answer(engine::ServeSession &session, const std::string &line)
{
    std::fputs(session.handle(line).c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
}

/**
 * The serve loop: bounded line reader over fd 0.  A line longer
 * than the protocol limit is discarded as it streams past (only
 * its length is tracked) and answered with the positioned refusal
 * once its newline finally arrives.
 */
void
serveLoop(engine::ServeSession &session)
{
    std::string buf;
    std::size_t dropped = 0; //!< bytes discarded of an oversized line
    char chunk[1 << 16];
    while (!gStop) {
        const ssize_t n =
            ::read(STDIN_FILENO, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue; // recheck gStop
            break;
        }
        if (n == 0)
            break; // EOF
        std::size_t start = 0;
        for (std::size_t i = 0; i < static_cast<std::size_t>(n);
             ++i) {
            if (chunk[i] != '\n')
                continue;
            if (dropped > 0) {
                // The tail of a line we refused to buffer.
                std::fputs(engine::oversizedLineReply(
                               dropped + (i - start))
                               .c_str(),
                           stdout);
                std::fputc('\n', stdout);
                std::fflush(stdout);
                dropped = 0;
            } else {
                buf.append(chunk + start, i - start);
                if (!buf.empty())
                    answer(session, buf);
                buf.clear();
            }
            start = i + 1;
        }
        if (dropped > 0) {
            dropped += static_cast<std::size_t>(n) - start;
        } else {
            buf.append(chunk + start,
                       static_cast<std::size_t>(n) - start);
            if (buf.size() > engine::kMaxRequestBytes) {
                // Stop buffering; remember only how much streamed.
                dropped = buf.size();
                buf.clear();
            }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const exec::ServeOptions opts =
        exec::parseServeOptions(argc, argv);
    if (!opts.ok()) {
        std::fprintf(stderr, "%s: %s\n%s", argv[0],
                     opts.error.c_str(),
                     exec::serveUsage(argv[0]).c_str());
        return 1;
    }

    PerfModel pm(opts.instructions, opts.seed);
    pm.setTraceMode(opts.traceMode);
    if (opts.sampleSet)
        pm.setSampleMode(SampleMode::Sampled, opts.sample);
    AreaModel am;
    UtilityOptimizer opt(pm, am);

    // --fleet N serves a FleetEngine (N chips of --fabric geometry)
    // through the same session/journal stack; everything below only
    // speaks EngineBase.
    std::unique_ptr<engine::EngineBase> engineStorage;
    if (opts.fleetChips > 0) {
        fleet::FleetEngineConfig fcfg;
        fcfg.fleet.chips =
            static_cast<fleet::ChipId>(opts.fleetChips);
        fcfg.fleet.chipWidth = opts.fabricWidth;
        fcfg.fleet.chipHeight = opts.fabricHeight;
        engineStorage =
            std::make_unique<fleet::FleetEngine>(opt, fcfg);
    } else {
        engine::EngineConfig cfg;
        cfg.fabricWidth = opts.fabricWidth;
        cfg.fabricHeight = opts.fabricHeight;
        engineStorage =
            std::make_unique<engine::AllocationEngine>(opt, cfg);
    }
    engine::EngineBase &engine = *engineStorage;

    if (!opts.restorePath.empty()) {
        std::ifstream in(opts.restorePath, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "%s: cannot read '%s'\n", argv[0],
                         opts.restorePath.c_str());
            return 1;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        std::string text = buf.str();
        while (!text.empty() &&
               (text.back() == '\n' || text.back() == '\r')) {
            text.pop_back();
        }
        std::string err;
        if (!engine.restoreState(text, &err)) {
            std::fprintf(stderr, "%s: --restore rejected: %s\n",
                         argv[0], err.c_str());
            return 1;
        }
    }

    engine::Journal *journal = nullptr;
    engine::Journal journalStorage{[&] {
        engine::JournalConfig jcfg;
        jcfg.dir = opts.journalDir;
        jcfg.fsyncEvery = opts.journalFsync;
        jcfg.rotateEvery = opts.journalRotate;
        return jcfg;
    }()};
    if (!opts.journalDir.empty()) {
        engine::JournalRecovery rec;
        std::string err;
        if (!journalStorage.open(engine, &rec, &err)) {
            std::fprintf(stderr, "%s: journal: %s\n", argv[0],
                         err.c_str());
            return 1;
        }
        for (const std::string &w : rec.warnings)
            std::fprintf(stderr, "%s: journal: warning: %s\n",
                         argv[0], w.c_str());
        if (!rec.fresh && !opts.restorePath.empty()) {
            // Two competing state sources: the journal already
            // defines this engine's history.
            std::fprintf(stderr,
                         "%s: refusing --restore into an existing "
                         "journal '%s' (the journal is "
                         "authoritative; restore via the protocol's "
                         "restore op instead)\n",
                         argv[0], opts.journalDir.c_str());
            return 1;
        }
        std::string inv;
        if (!engine.checkInvariants(&inv)) {
            std::fprintf(stderr,
                         "%s: journal: recovered state fails "
                         "invariants, refusing to serve: %s\n",
                         argv[0], inv.c_str());
            return 1;
        }
        std::fprintf(stderr,
                     "%s: journal: %s '%s' at generation %llu "
                     "(replayed %llu event%s%s)\n",
                     argv[0], rec.fresh ? "started" : "recovered",
                     opts.journalDir.c_str(),
                     static_cast<unsigned long long>(
                         rec.generation),
                     static_cast<unsigned long long>(rec.replayed),
                     rec.replayed == 1 ? "" : "s",
                     rec.truncatedTail ? ", truncated torn tail"
                                       : "");
        journal = &journalStorage;
    }

    engine::ServeSession session(engine);
    session.setJournal(journal);
    installSignalHandlers();
    serveLoop(session);

    // Graceful shutdown (signal or EOF): make everything durable
    // and anchor a final snapshot so the next start replays nothing.
    if (journal) {
        journal->flush();
        std::string err;
        if (!journal->rotate(&err)) {
            std::fprintf(stderr,
                         "%s: journal: final snapshot failed: %s\n",
                         argv[0], err.c_str());
            return 1;
        }
        journal->close();
    }
    std::fprintf(stderr,
                 "%s: %s: %llu request%s answered, %llu event%s "
                 "journaled, clock %llu\n",
                 argv[0], gStop ? "shutdown on signal" : "shutdown",
                 static_cast<unsigned long long>(
                     session.requestsHandled()),
                 session.requestsHandled() == 1 ? "" : "s",
                 static_cast<unsigned long long>(
                     journal ? journal->appended() : 0),
                 (journal ? journal->appended() : 0) == 1 ? "" : "s",
                 static_cast<unsigned long long>(engine.now()));
    return 0;
}
