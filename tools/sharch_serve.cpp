/**
 * @file
 * sharch-serve -- the allocation engine as a daemon.
 *
 * Reads one JSON request per stdin line, answers one JSON response
 * per stdout line (see engine/serve_session.hh for the protocol and
 * DESIGN.md section 8 for a worked transcript).  All diagnostics go
 * to stderr so stdout stays a pure response stream a driver can
 * parse line by line:
 *
 *   printf '%s\n' '{"op":"allocate","tenant":"a","slices":4}' \
 *     '{"op":"snapshot","path":"s.json"}' | sharch-serve
 *
 * Because the engine's snapshot/restore round-trips byte-exactly, a
 * serve process can be killed after any response and a new one
 * started with --restore FILE continues the session as if nothing
 * happened -- the property the serve-smoke CI step pins down.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "area/area_model.hh"
#include "core/perf_model.hh"
#include "econ/optimizer.hh"
#include "engine/allocation_engine.hh"
#include "engine/serve_session.hh"
#include "exec/run_options.hh"

using namespace sharch;

int
main(int argc, char **argv)
{
    const exec::ServeOptions opts =
        exec::parseServeOptions(argc, argv);
    if (!opts.ok()) {
        std::fprintf(stderr, "%s: %s\n%s", argv[0],
                     opts.error.c_str(),
                     exec::serveUsage(argv[0]).c_str());
        return 1;
    }

    PerfModel pm(opts.instructions, opts.seed);
    AreaModel am;
    UtilityOptimizer opt(pm, am);

    engine::EngineConfig cfg;
    cfg.fabricWidth = opts.fabricWidth;
    cfg.fabricHeight = opts.fabricHeight;
    engine::AllocationEngine engine(opt, cfg);

    if (!opts.restorePath.empty()) {
        std::ifstream in(opts.restorePath, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "%s: cannot read '%s'\n", argv[0],
                         opts.restorePath.c_str());
            return 1;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        std::string text = buf.str();
        while (!text.empty() &&
               (text.back() == '\n' || text.back() == '\r')) {
            text.pop_back();
        }
        std::string err;
        if (!engine.restoreState(text, &err)) {
            std::fprintf(stderr, "%s: --restore rejected: %s\n",
                         argv[0], err.c_str());
            return 1;
        }
    }

    engine::ServeSession session(engine);
    std::string line;
    while (std::getline(std::cin, line)) {
        if (line.empty())
            continue;
        std::fputs(session.handle(line).c_str(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
    }
    return 0;
}
