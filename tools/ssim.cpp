/**
 * @file
 * ssim -- the command-line face of the simulator, as the paper
 * describes it: "SSim is very flexible, allowing all critical
 * micro-architecture parameters and latencies to be set from a XML
 * configuration file.  When a simulation completes, SSim reports the
 * cycles executed for a given workload along with cache miss rates
 * and stage-based micro-architecture stalls and statistics."
 *
 * Usage (see exec/run_options.hh for the full flag reference):
 *   ssim <benchmark> [--config FILE] [--instructions N]
 *        [--slices LIST] [--banks LIST] [--seed N] [--threads N]
 *        [--json]
 *   ssim --dump-config            # print the default XML config
 *   ssim --list                   # list benchmark profiles
 *
 * Giving --slices/--banks a comma-separated list sweeps the cross
 * product on the parallel sweep engine; single values override the
 * XML config for one run, so quick experiments need no config file.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "config/sim_config.hh"
#include "core/perf_model.hh"
#include "core/sampling.hh"
#include "core/vm_sim.hh"
#include "exec/run_options.hh"
#include "exec/sweep.hh"
#include "fault/fault_model.hh"
#include "hyper/fabric_manager.hh"
#include "engine/fault_replay.hh"
#include "obs/obs.hh"
#include "study/metrics_report.hh"
#include "study/report.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"

using namespace sharch;

namespace {

int
usageError(const char *prog, const std::string &message)
{
    std::fprintf(stderr, "%s: %s\n%s", prog, message.c_str(),
                 exec::runUsage(prog).c_str());
    return 1;
}

/**
 * Turn telemetry on when --trace-out/--metrics ask for it, warning
 * when the build compiled the instrumentation out (the run would
 * otherwise produce empty outputs with no hint why).
 */
void
setupObs(const exec::RunOptions &opts)
{
    if (opts.traceOut.empty() && !opts.metrics)
        return;
    obs::setEnabled(true);
    if (!obs::compiledIn()) {
        std::fprintf(stderr,
                     "warning: telemetry was compiled out of this "
                     "build; reconfigure with -DSHARCH_OBS=ON for "
                     "non-empty --trace-out/--metrics output\n");
    }
}

/**
 * Export --trace-out / --metrics after the run.  Metrics go to
 * stderr so stdout's report bytes stay identical with and without
 * the flag (the determinism contract in study/report.hh).
 */
int
finishObs(const exec::RunOptions &opts, int rc)
{
    if (opts.metrics) {
        const study::Report report = study::metricsReport(
            obs::MetricsRegistry::instance().snapshot());
        std::fputs(
            study::render(report, study::Format::Text).c_str(),
            stderr);
    }
    if (!opts.traceOut.empty()) {
        std::ofstream out(opts.traceOut,
                          std::ios::out | std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "cannot write trace to '%s'\n",
                         opts.traceOut.c_str());
            return rc ? rc : 1;
        }
        obs::Tracer::instance().writeChromeTrace(out);
    }
    return rc;
}

/** One full-detail run, the historical ssim output. */
int
runSingle(const exec::RunOptions &opts, const SimConfig &cfg,
          const BenchmarkProfile &profile)
{
    const unsigned vcores =
        profile.multithreaded ? profile.numThreads : 1;

    if (!opts.json) {
        std::printf(
            "ssim: %s on %u VCore(s) of %u Slice(s) + %u x %u KB "
            "L2, %zu instructions/thread, seed %llu\n\n",
            profile.name.c_str(), vcores, cfg.numSlices,
            cfg.numL2Banks, cfg.l2Bank.sizeBytes / 1024,
            opts.instructions,
            static_cast<unsigned long long>(cfg.seed));
    }

#if SHARCH_OBS
    // Stand up a fabric sized for this run and place each VCore on it
    // so even a single-run trace shows honest hypervisor place /
    // release decisions alongside the pipeline spans.
    std::optional<FabricManager> fabric;
    std::vector<AllocationId> placed;
    if (obs::enabled()) {
        const unsigned slices = std::max(cfg.numSlices, 1u);
        const unsigned banks = cfg.numL2Banks;
        const int w = static_cast<int>(std::max(slices, 4u));
        const unsigned runs_per_row =
            static_cast<unsigned>(w) / slices;
        const unsigned slice_rows =
            (vcores + runs_per_row - 1) / runs_per_row;
        const unsigned bank_rows =
            (banks * vcores + static_cast<unsigned>(w) - 1) /
            static_cast<unsigned>(w);
        const int h = 2 * static_cast<int>(
                              std::max({slice_rows, bank_rows, 1u}));
        fabric.emplace(w, h);
        for (unsigned i = 0; i < vcores; ++i) {
            if (const auto id = fabric->allocate(slices, banks))
                placed.push_back(*id);
        }
    }
#endif

    VmSim vm(cfg, vcores);
    vm.prewarm(profile);
    // Both modes produce bit-identical VmResults (the differential
    // tests enforce it); streaming just never materializes the trace.
    std::vector<std::unique_ptr<InstSource>> sources;
    if (opts.traceMode == TraceMode::Stream) {
        const auto gen =
            std::make_shared<const TraceGenerator>(profile, cfg.seed);
        sources = streamSources(gen, opts.instructions);
    } else {
        TraceGenerator gen(profile, cfg.seed);
        sources = materializedSources(
            std::make_shared<const std::vector<Trace>>(
                gen.generateThreads(opts.instructions)));
    }
    VmResult res;
    if (opts.sampleSet) {
        SamplingController controller(opts.sample, cfg.seed);
        res = controller.run(vm, sources);
    } else {
        res = vm.run(sources);
    }

#if SHARCH_OBS
    if (fabric) {
        for (const AllocationId id : placed)
            fabric->release(id);
    }
#endif

    if (opts.json) {
        // The same sharch-report-v1 schema sharch-bench emits, with
        // the full SimStats spliced in as the "stats" section.
        study::Report report;
        report.id = "ssim_run";
        report.title = "ssim single run";
        report.addMeta("benchmark", profile.name);
        report.addMeta("slices", cfg.numSlices);
        report.addMeta("banks", cfg.numL2Banks);
        report.addMeta("l2_kb",
                       static_cast<unsigned long long>(
                           cfg.l2Bytes() / 1024));
        report.addMeta("instructions", opts.instructions);
        report.addMeta("seed",
                       static_cast<unsigned long long>(cfg.seed));
        report.addMeta("vcores", vcores);
        report.addMeta("cycles",
                       static_cast<unsigned long long>(res.cycles));
        report.addMeta("ipc", res.throughput());
        report.attachJson("stats", res.aggregate.toJson());
        std::fputs(
            study::render(report, study::Format::Json).c_str(),
            stdout);
        return 0;
    }

    std::printf("%s\n", res.aggregate.report().c_str());
    if (res.perVCore.size() > 1) {
        std::printf("per-VCore cycles:");
        for (const SimStats &st : res.perVCore)
            std::printf(" %llu",
                        static_cast<unsigned long long>(st.cycles));
        std::printf("\n");
    }
    std::printf("aggregate throughput: %.3f IPC\n", res.throughput());
    return 0;
}

/** Sweep the banks x slices cross product on the parallel engine. */
int
runSweep(const exec::RunOptions &opts, const SimConfig &cfg,
         const BenchmarkProfile &profile,
         const std::vector<unsigned> &banks,
         const std::vector<unsigned> &slices)
{
    if (!opts.configPath.empty()) {
        std::fprintf(stderr,
                     "warning: sweep mode uses the paper's Table 2/3 "
                     "base config; only seed/slices/banks from '%s' "
                     "apply\n",
                     opts.configPath.c_str());
    }
    PerfModel pm(opts.instructions, cfg.seed);
    pm.setTraceMode(opts.traceMode);
    if (opts.sampleSet)
        pm.setSampleMode(SampleMode::Sampled, opts.sample);
    const std::vector<exec::SweepPoint> grid =
        exec::sweepGrid(std::vector<BenchmarkProfile>{profile}, banks,
                        slices);
    const std::vector<exec::SweepResult> results =
        pm.performanceBatch(grid, opts.threads);

    if (opts.json) {
        study::Report report;
        report.id = "ssim_sweep";
        report.title = "ssim sweep";
        report.addMeta("benchmark", profile.name);
        report.addMeta("instructions", opts.instructions);
        report.addMeta("seed",
                       static_cast<unsigned long long>(cfg.seed));
        study::Table &t =
            report.addTable("sweep", "Per-VCore IPC, P(c, s)");
        t.col("benchmark", study::Value::Kind::Text)
            .col("banks", study::Value::Kind::Integer)
            .col("slices", study::Value::Kind::Integer)
            .col("ipc", study::Value::Kind::Real, 3);
        for (const exec::SweepResult &r : results)
            t.addRow({r.name, r.banks, r.slices, r.ipc});
        std::fputs(
            study::render(report, study::Format::Json).c_str(),
            stdout);
        return 0;
    }

    std::printf("ssim sweep: %s, %zu instructions/thread, seed %llu, "
                "%u thread(s)\n\n",
                profile.name.c_str(), opts.instructions,
                static_cast<unsigned long long>(cfg.seed),
                exec::resolveThreadCount(opts.threads));
    std::printf("%-10s", "L2 \\ s");
    for (unsigned s : slices)
        std::printf("    s=%-3u", s);
    std::printf("\n");
    std::size_t idx = 0;
    for (unsigned b : banks) {
        std::printf("%6uK   ", banksToKb(b));
        for (std::size_t j = 0; j < slices.size(); ++j)
            std::printf("  %7.3f", results[idx++].ipc);
        std::printf("\n");
    }
    std::printf("\nvalues are per-VCore committed IPC, P(c, s)\n");
    return 0;
}

/**
 * Replay a fault schedule against a populated fabric and report each
 * VCore's graceful degradation (re-place / shrink / evict / bank
 * substitution) plus the surviving capacity.
 */
int
runFaultReplay(const exec::RunOptions &opts, const char *prog)
{
    const fault::FaultSpec spec =
        fault::parseFaultSpec(opts.faultSpec);
    if (!spec.ok())
        return usageError(prog, "bad --inject-faults: " + spec.error);
    if (spec.empty())
        return usageError(prog,
                          "--inject-faults spec schedules no events");

    // Identical tenants (the --slices/--banks overrides, else a
    // mid-size VCore); the replay itself lives in hyper/fault_replay.
    const unsigned vslices =
        opts.slices.empty() ? 4 : opts.slices.front();
    const unsigned vbanks = opts.banks.empty() ? 4 : opts.banks.front();
    const FaultReplayResult result = replayFaults(
        spec, opts.fabricWidth, opts.fabricHeight, vslices, vbanks);

    if (opts.json) {
        std::fputs(study::render(faultReplayReport(result),
                                 study::Format::Json)
                       .c_str(),
                   stdout);
        return 0;
    }

    std::printf("ssim fault replay: %dx%d fabric, %u VCore(s) of "
                "%u Slice(s) + %u bank(s)\n\n",
                opts.fabricWidth, opts.fabricHeight, result.tenants,
                vslices, vbanks);
    for (const auto &[ev, actions] : result.events) {
        std::printf("cycle %10llu  %-5s %s (%d,%d)\n",
                    static_cast<unsigned long long>(ev.at),
                    fault::faultKindName(ev.kind),
                    ev.heal ? "heal " : "fail ", ev.tile.y,
                    ev.tile.x);
        for (const DegradeAction &a : actions) {
            std::printf("    vcore %llu %s: run (%d,%d)x%u -> "
                        "(%d,%d)x%u, -%u slice(s) -%u bank(s), "
                        "%llu cycles\n",
                        static_cast<unsigned long long>(a.id),
                        degradeKindName(a.kind), a.from.row,
                        a.from.col, a.from.count, a.to.row, a.to.col,
                        a.to.count, a.slicesLost, a.banksLost,
                        static_cast<unsigned long long>(a.cost));
        }
    }
    std::printf("\nsummary: %u replaced, %u shrunk, %u evicted; "
                "%u Slice(s) and %u bank(s) lost; %llu "
                "reconfiguration cycles\n",
                result.replaced, result.shrunk, result.evicted,
                result.slicesLost, result.banksLost,
                static_cast<unsigned long long>(
                    result.reconfigCycles));
    std::printf("fabric: %u/%u Slices faulty, %u banks faulty, "
                "%zu live VCore(s), utilization %.3f, "
                "fragmentation %.3f\n",
                result.faultySlices, result.totalSlices,
                result.faultyBanks, result.liveVCores,
                result.sliceUtilization, result.fragmentation);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const exec::RunOptions opts = exec::parseRunOptions(argc, argv);
    if (!opts.ok())
        return usageError(argv[0], opts.error);
    if (!opts.deprecationWarning.empty())
        std::fprintf(stderr, "%s\n",
                     opts.deprecationWarning.c_str());

    if (opts.dumpConfig) {
        std::fputs(simConfigToXml(SimConfig{}).c_str(), stdout);
        return 0;
    }
    if (opts.listBenchmarks) {
        for (const auto &n : benchmarkNames())
            std::printf("%s\n", n.c_str());
        return 0;
    }
    setupObs(opts);

    if (!opts.faultSpec.empty())
        return finishObs(opts, runFaultReplay(opts, argv[0]));

    if (!hasProfile(opts.benchmark)) {
        std::fprintf(stderr, "unknown benchmark '%s' (try --list)\n",
                     opts.benchmark.c_str());
        return 1;
    }
    const BenchmarkProfile &profile = profileFor(opts.benchmark);

    SimConfig cfg = opts.configPath.empty()
                        ? SimConfig{}
                        : loadSimConfig(opts.configPath);
    if (opts.seedSet)
        cfg.seed = opts.seed;

    // --slices/--banks override the XML config (range-checked at
    // parse time by parseRunOptions).
    if (opts.isSweep()) {
        const std::vector<unsigned> banks =
            opts.banks.empty() ? std::vector<unsigned>{cfg.numL2Banks}
                               : opts.banks;
        const std::vector<unsigned> slices =
            opts.slices.empty() ? std::vector<unsigned>{cfg.numSlices}
                                : opts.slices;
        return finishObs(opts,
                         runSweep(opts, cfg, profile, banks, slices));
    }

    if (!opts.slices.empty())
        cfg.numSlices = opts.slices.front();
    if (!opts.banks.empty())
        cfg.numL2Banks = opts.banks.front();
    return finishObs(opts, runSingle(opts, cfg, profile));
}
