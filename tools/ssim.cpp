/**
 * @file
 * ssim -- the command-line face of the simulator, as the paper
 * describes it: "SSim is very flexible, allowing all critical
 * micro-architecture parameters and latencies to be set from a XML
 * configuration file.  When a simulation completes, SSim reports the
 * cycles executed for a given workload along with cache miss rates
 * and stage-based micro-architecture stalls and statistics."
 *
 * Usage (see exec/run_options.hh for the full flag reference):
 *   ssim <benchmark> [config.xml] [instructions]     # legacy form
 *   ssim <benchmark> [--config FILE] [--instructions N]
 *        [--slices LIST] [--banks LIST] [--seed N] [--threads N]
 *        [--json]
 *   ssim --dump-config            # print the default XML config
 *   ssim --list                   # list benchmark profiles
 *
 * Giving --slices/--banks a comma-separated list sweeps the cross
 * product on the parallel sweep engine; single values override the
 * XML config for one run, so quick experiments need no config file.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "config/sim_config.hh"
#include "core/perf_model.hh"
#include "core/vm_sim.hh"
#include "exec/run_options.hh"
#include "exec/sweep.hh"
#include "fault/fault_model.hh"
#include "hyper/fabric_manager.hh"
#include "study/report.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"

using namespace sharch;

namespace {

int
usageError(const char *prog, const std::string &message)
{
    std::fprintf(stderr, "%s: %s\n%s", prog, message.c_str(),
                 exec::runUsage(prog).c_str());
    return 1;
}

/** One full-detail run, the historical ssim output. */
int
runSingle(const exec::RunOptions &opts, const SimConfig &cfg,
          const BenchmarkProfile &profile)
{
    const unsigned vcores =
        profile.multithreaded ? profile.numThreads : 1;

    if (!opts.json) {
        std::printf(
            "ssim: %s on %u VCore(s) of %u Slice(s) + %u x %u KB "
            "L2, %zu instructions/thread, seed %llu\n\n",
            profile.name.c_str(), vcores, cfg.numSlices,
            cfg.numL2Banks, cfg.l2Bank.sizeBytes / 1024,
            opts.instructions,
            static_cast<unsigned long long>(cfg.seed));
    }

    VmSim vm(cfg, vcores);
    vm.prewarm(profile);
    TraceGenerator gen(profile, cfg.seed);
    const VmResult res = vm.run(gen.generateThreads(opts.instructions));

    if (opts.json) {
        // The same sharch-report-v1 schema sharch-bench emits, with
        // the full SimStats spliced in as the "stats" section.
        study::Report report;
        report.id = "ssim_run";
        report.title = "ssim single run";
        report.addMeta("benchmark", profile.name);
        report.addMeta("slices", cfg.numSlices);
        report.addMeta("banks", cfg.numL2Banks);
        report.addMeta("l2_kb",
                       static_cast<unsigned long long>(
                           cfg.l2Bytes() / 1024));
        report.addMeta("instructions", opts.instructions);
        report.addMeta("seed",
                       static_cast<unsigned long long>(cfg.seed));
        report.addMeta("vcores", vcores);
        report.addMeta("cycles",
                       static_cast<unsigned long long>(res.cycles));
        report.addMeta("ipc", res.throughput());
        report.attachJson("stats", res.aggregate.toJson());
        std::fputs(
            study::render(report, study::Format::Json).c_str(),
            stdout);
        return 0;
    }

    std::printf("%s\n", res.aggregate.report().c_str());
    if (res.perVCore.size() > 1) {
        std::printf("per-VCore cycles:");
        for (const SimStats &st : res.perVCore)
            std::printf(" %llu",
                        static_cast<unsigned long long>(st.cycles));
        std::printf("\n");
    }
    std::printf("aggregate throughput: %.3f IPC\n", res.throughput());
    return 0;
}

/** Sweep the banks x slices cross product on the parallel engine. */
int
runSweep(const exec::RunOptions &opts, const SimConfig &cfg,
         const BenchmarkProfile &profile,
         const std::vector<unsigned> &banks,
         const std::vector<unsigned> &slices)
{
    if (!opts.configPath.empty()) {
        std::fprintf(stderr,
                     "warning: sweep mode uses the paper's Table 2/3 "
                     "base config; only seed/slices/banks from '%s' "
                     "apply\n",
                     opts.configPath.c_str());
    }
    PerfModel pm(opts.instructions, cfg.seed);
    const std::vector<exec::SweepPoint> grid =
        exec::sweepGrid(std::vector<BenchmarkProfile>{profile}, banks,
                        slices);
    const std::vector<exec::SweepResult> results =
        pm.performanceBatch(grid, opts.threads);

    if (opts.json) {
        study::Report report;
        report.id = "ssim_sweep";
        report.title = "ssim sweep";
        report.addMeta("benchmark", profile.name);
        report.addMeta("instructions", opts.instructions);
        report.addMeta("seed",
                       static_cast<unsigned long long>(cfg.seed));
        study::Table &t =
            report.addTable("sweep", "Per-VCore IPC, P(c, s)");
        t.col("benchmark", study::Value::Kind::Text)
            .col("banks", study::Value::Kind::Integer)
            .col("slices", study::Value::Kind::Integer)
            .col("ipc", study::Value::Kind::Real, 3);
        for (const exec::SweepResult &r : results)
            t.addRow({r.name, r.banks, r.slices, r.ipc});
        std::fputs(
            study::render(report, study::Format::Json).c_str(),
            stdout);
        return 0;
    }

    std::printf("ssim sweep: %s, %zu instructions/thread, seed %llu, "
                "%u thread(s)\n\n",
                profile.name.c_str(), opts.instructions,
                static_cast<unsigned long long>(cfg.seed),
                exec::resolveThreadCount(opts.threads));
    std::printf("%-10s", "L2 \\ s");
    for (unsigned s : slices)
        std::printf("    s=%-3u", s);
    std::printf("\n");
    std::size_t idx = 0;
    for (unsigned b : banks) {
        std::printf("%6uK   ", banksToKb(b));
        for (std::size_t j = 0; j < slices.size(); ++j)
            std::printf("  %7.3f", results[idx++].ipc);
        std::printf("\n");
    }
    std::printf("\nvalues are per-VCore committed IPC, P(c, s)\n");
    return 0;
}

/**
 * Replay a fault schedule against a populated fabric and report each
 * VCore's graceful degradation (re-place / shrink / evict / bank
 * substitution) plus the surviving capacity.
 */
int
runFaultReplay(const exec::RunOptions &opts, const char *prog)
{
    const fault::FaultSpec spec =
        fault::parseFaultSpec(opts.faultSpec);
    if (!spec.ok())
        return usageError(prog, "bad --inject-faults: " + spec.error);
    if (spec.empty())
        return usageError(prog,
                          "--inject-faults spec schedules no events");

    FabricManager fm(opts.fabricWidth, opts.fabricHeight);

    // Populate the chip with identical tenants (the --slices/--banks
    // overrides, else a mid-size VCore) until allocation fails, so
    // the schedule always hits live state.
    const unsigned vslices =
        opts.slices.empty() ? 4 : opts.slices.front();
    const unsigned vbanks = opts.banks.empty() ? 4 : opts.banks.front();
    unsigned tenants = 0;
    while (fm.allocate(vslices, vbanks))
        ++tenants;

    fault::FaultModel model(spec, opts.fabricWidth,
                            opts.fabricHeight);

    unsigned evicted = 0, moved = 0, shrunk = 0;
    unsigned slices_lost = 0, banks_lost = 0;
    Cycles reconfig_cycles = 0;
    const bool json = opts.json;
    std::string events = "[";
    if (!json)
        std::printf("ssim fault replay: %dx%d fabric, %u VCore(s) of "
                    "%u Slice(s) + %u bank(s)\n\n",
                    opts.fabricWidth, opts.fabricHeight, tenants,
                    vslices, vbanks);
    bool first = true;
    for (const fault::FaultEvent &ev : model.schedule()) {
        const auto actions = fm.apply(ev);
        if (json) {
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "%s{\"at\":%llu,\"kind\":\"%s\",\"tile\":"
                          "[%d,%d],\"heal\":%s,\"actions\":[",
                          first ? "" : ",",
                          static_cast<unsigned long long>(ev.at),
                          fault::faultKindName(ev.kind), ev.tile.y,
                          ev.tile.x, ev.heal ? "true" : "false");
            events += buf;
            for (std::size_t i = 0; i < actions.size(); ++i) {
                const DegradeAction &a = actions[i];
                std::snprintf(
                    buf, sizeof(buf),
                    "%s{\"vcore\":%llu,\"outcome\":\"%s\","
                    "\"slices_lost\":%u,\"banks_lost\":%u,"
                    "\"cost\":%llu}",
                    i ? "," : "",
                    static_cast<unsigned long long>(a.id),
                    degradeKindName(a.kind), a.slicesLost,
                    a.banksLost,
                    static_cast<unsigned long long>(a.cost));
                events += buf;
            }
            events += "]}";
            first = false;
        } else {
            std::printf("cycle %10llu  %-5s %s (%d,%d)\n",
                        static_cast<unsigned long long>(ev.at),
                        fault::faultKindName(ev.kind),
                        ev.heal ? "heal " : "fail ", ev.tile.y,
                        ev.tile.x);
            for (const DegradeAction &a : actions) {
                std::printf("    vcore %llu %s: run (%d,%d)x%u -> "
                            "(%d,%d)x%u, -%u slice(s) -%u bank(s), "
                            "%llu cycles\n",
                            static_cast<unsigned long long>(a.id),
                            degradeKindName(a.kind), a.from.row,
                            a.from.col, a.from.count, a.to.row,
                            a.to.col, a.to.count, a.slicesLost,
                            a.banksLost,
                            static_cast<unsigned long long>(a.cost));
            }
        }
        for (const DegradeAction &a : actions) {
            moved += a.kind == DegradeKind::Replaced;
            shrunk += a.kind == DegradeKind::Shrunk;
            evicted += a.kind == DegradeKind::Evicted;
            slices_lost += a.slicesLost;
            banks_lost += a.banksLost;
            reconfig_cycles += a.cost;
        }
    }

    if (json) {
        events += "]";
        study::Report report;
        report.id = "ssim_fault_replay";
        report.title = "ssim fault replay";
        report.addMeta("fabric_width", opts.fabricWidth);
        report.addMeta("fabric_height", opts.fabricHeight);
        report.addMeta("tenants", tenants);
        report.addMeta("vcore_slices", vslices);
        report.addMeta("vcore_banks", vbanks);
        study::Table &t = report.addTable(
            "summary", "Degradation outcome totals");
        t.col("replaced", study::Value::Kind::Integer)
            .col("shrunk", study::Value::Kind::Integer)
            .col("evicted", study::Value::Kind::Integer)
            .col("slices_lost", study::Value::Kind::Integer)
            .col("banks_lost", study::Value::Kind::Integer)
            .col("reconfig_cycles", study::Value::Kind::Integer)
            .col("faulty_slices", study::Value::Kind::Integer)
            .col("faulty_banks", study::Value::Kind::Integer)
            .col("live_vcores", study::Value::Kind::Integer)
            .col("slice_utilization", study::Value::Kind::Real, 3)
            .col("fragmentation", study::Value::Kind::Real, 3);
        t.addRow({moved, shrunk, evicted, slices_lost, banks_lost,
                  static_cast<unsigned long long>(reconfig_cycles),
                  fm.faultySlices(), fm.faultyBanks(),
                  fm.allocations().size(), fm.sliceUtilization(),
                  fm.fragmentation()});
        report.attachJson("events", events);
        std::fputs(
            study::render(report, study::Format::Json).c_str(),
            stdout);
        return 0;
    }
    std::printf("\nsummary: %u replaced, %u shrunk, %u evicted; "
                "%u Slice(s) and %u bank(s) lost; %llu "
                "reconfiguration cycles\n",
                moved, shrunk, evicted, slices_lost, banks_lost,
                static_cast<unsigned long long>(reconfig_cycles));
    std::printf("fabric: %u/%u Slices faulty, %u banks faulty, "
                "%zu live VCore(s), utilization %.3f, "
                "fragmentation %.3f\n",
                fm.faultySlices(), fm.totalSlices(), fm.faultyBanks(),
                fm.allocations().size(), fm.sliceUtilization(),
                fm.fragmentation());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const exec::RunOptions opts = exec::parseRunOptions(argc, argv);
    if (!opts.ok())
        return usageError(argv[0], opts.error);

    if (opts.dumpConfig) {
        std::fputs(simConfigToXml(SimConfig{}).c_str(), stdout);
        return 0;
    }
    if (opts.listBenchmarks) {
        for (const auto &n : benchmarkNames())
            std::printf("%s\n", n.c_str());
        return 0;
    }
    if (!opts.faultSpec.empty())
        return runFaultReplay(opts, argv[0]);

    if (!hasProfile(opts.benchmark)) {
        std::fprintf(stderr, "unknown benchmark '%s' (try --list)\n",
                     opts.benchmark.c_str());
        return 1;
    }
    const BenchmarkProfile &profile = profileFor(opts.benchmark);

    SimConfig cfg = opts.configPath.empty()
                        ? SimConfig{}
                        : loadSimConfig(opts.configPath);
    if (opts.seedSet)
        cfg.seed = opts.seed;

    // --slices/--banks override the XML config (range-checked at
    // parse time by parseRunOptions).
    if (opts.isSweep()) {
        const std::vector<unsigned> banks =
            opts.banks.empty() ? std::vector<unsigned>{cfg.numL2Banks}
                               : opts.banks;
        const std::vector<unsigned> slices =
            opts.slices.empty() ? std::vector<unsigned>{cfg.numSlices}
                                : opts.slices;
        return runSweep(opts, cfg, profile, banks, slices);
    }

    if (!opts.slices.empty())
        cfg.numSlices = opts.slices.front();
    if (!opts.banks.empty())
        cfg.numL2Banks = opts.banks.front();
    return runSingle(opts, cfg, profile);
}
