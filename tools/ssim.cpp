/**
 * @file
 * ssim -- the command-line face of the simulator, as the paper
 * describes it: "SSim is very flexible, allowing all critical
 * micro-architecture parameters and latencies to be set from a XML
 * configuration file.  When a simulation completes, SSim reports the
 * cycles executed for a given workload along with cache miss rates
 * and stage-based micro-architecture stalls and statistics."
 *
 * Usage:
 *   ssim <benchmark> [config.xml] [instructions]
 *   ssim --dump-config            # print the default XML config
 *   ssim --list                   # list benchmark profiles
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "config/sim_config.hh"
#include "core/vm_sim.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"

using namespace sharch;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <benchmark> [config.xml] "
                     "[instructions]\n       %s --dump-config | "
                     "--list\n",
                     argv[0], argv[0]);
        return 1;
    }

    if (std::strcmp(argv[1], "--dump-config") == 0) {
        std::fputs(simConfigToXml(SimConfig{}).c_str(), stdout);
        return 0;
    }
    if (std::strcmp(argv[1], "--list") == 0) {
        for (const auto &n : benchmarkNames())
            std::printf("%s\n", n.c_str());
        return 0;
    }

    const std::string bench = argv[1];
    if (!hasProfile(bench)) {
        std::fprintf(stderr, "unknown benchmark '%s' (try --list)\n",
                     bench.c_str());
        return 1;
    }
    const SimConfig cfg =
        argc > 2 ? loadSimConfig(argv[2]) : SimConfig{};
    const std::size_t instructions =
        argc > 3 ? std::stoul(argv[3]) : 100000;

    const BenchmarkProfile &profile = profileFor(bench);
    const unsigned vcores =
        profile.multithreaded ? profile.numThreads : 1;

    std::printf("ssim: %s on %u VCore(s) of %u Slice(s) + %u x %u KB "
                "L2, %zu instructions/thread, seed %llu\n\n",
                bench.c_str(), vcores, cfg.numSlices, cfg.numL2Banks,
                cfg.l2Bank.sizeBytes / 1024, instructions,
                static_cast<unsigned long long>(cfg.seed));

    VmSim vm(cfg, vcores);
    vm.prewarm(profile);
    TraceGenerator gen(profile, cfg.seed);
    const VmResult res = vm.run(gen.generateThreads(instructions));

    std::printf("%s\n", res.aggregate.report().c_str());
    if (res.perVCore.size() > 1) {
        std::printf("per-VCore cycles:");
        for (const SimStats &st : res.perVCore)
            std::printf(" %llu",
                        static_cast<unsigned long long>(st.cycles));
        std::printf("\n");
    }
    std::printf("aggregate throughput: %.3f IPC\n", res.throughput());
    return 0;
}
