#!/usr/bin/env python3
"""Compare a fresh sim_speed report against the committed baseline.

Usage:
    check_sim_speed.py BASELINE.json CURRENT.json [--tolerance X]

Both files are sharch-report-v1 JSON documents produced by
`sharch-bench --run 'sim_speed*' --format json`.  For every
(kernel, param) row present in both, the current items_per_sec must be
at least baseline/tolerance.  The default tolerance of 2.0 is
deliberately generous: sim_speed is wall-clock and CI machines are
noisy and heterogeneous, so the gate only catches large regressions
(an accidental O(n) -> O(n log n) hot path, a debug build slipping into
Release CI), not few-percent jitter.

Rows present only on one side are reported but never fail the check,
so kernels can be added or retired without lock-step baseline edits.

Exit status: 0 on pass, 1 on regression, 2 on malformed input.
"""

import argparse
import json
import sys

REGEN_HINT = (
    "regenerate it with:\n"
    "    ./build/bench/sharch-bench --run 'sim_speed*' --format json"
    " > bench/BENCH_sim_speed.json\n"
    "(Release build, quiet reference machine)"
)


class ReportError(Exception):
    """A report file is missing, unreadable, or not a sim_speed doc."""


def load_rows(path):
    """Map (kernel, param) -> items_per_sec from a sim_speed report."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise ReportError(
            f"{path}: cannot read ({exc.strerror}); {REGEN_HINT}")
    except json.JSONDecodeError as exc:
        raise ReportError(
            f"{path}: not valid JSON ({exc}); was the report "
            f"truncated by an interrupted run?  {REGEN_HINT}")
    if not isinstance(doc, dict):
        raise ReportError(
            f"{path}: expected a sharch-report-v1 object, got "
            f"{type(doc).__name__}; {REGEN_HINT}")
    schema = doc.get("schema")
    if schema not in (None, "sharch-report-v1"):
        raise ReportError(
            f"{path}: unexpected schema '{schema}' (this tool reads "
            f"sharch-report-v1 sim_speed reports); {REGEN_HINT}")
    for table in doc.get("tables", []):
        names = [c["name"] for c in table.get("columns", [])]
        try:
            k = names.index("kernel")
            p = names.index("param")
            r = names.index("items_per_sec")
        except ValueError:
            continue
        return {(row[k], row[p]): float(row[r])
                for row in table.get("rows", [])}
    raise ReportError(
        f"{path}: no table with kernel/param/items_per_sec columns -- "
        f"is this a sim_speed report?  {REGEN_HINT}")


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", "--threshold", type=float,
                    default=2.0, dest="tolerance",
                    help="fail if current is more than this factor "
                         "slower than baseline (default: 2.0; "
                         "--threshold is the historical spelling)")
    args = ap.parse_args(argv)

    try:
        base = load_rows(args.baseline)
        cur = load_rows(args.current)
    except ReportError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (KeyError, TypeError, ValueError) as exc:
        print(f"error: malformed report row: {exc!r}; {REGEN_HINT}",
              file=sys.stderr)
        return 2

    failures = []
    for key in sorted(base, key=str):
        kernel, param = key
        if key not in cur:
            print(f"note: {kernel}/{param}: only in baseline, skipped")
            continue
        floor = base[key] / args.tolerance
        verdict = "ok" if cur[key] >= floor else "REGRESSION"
        print(f"{verdict:>10}  {kernel}/{param}: "
              f"{cur[key]:,.0f} items/s "
              f"(baseline {base[key]:,.0f}, floor {floor:,.0f})")
        if cur[key] < floor:
            failures.append(key)
    for key in sorted(set(cur) - set(base), key=str):
        print(f"note: {key[0]}/{key[1]}: new kernel, no baseline")

    if failures:
        print(f"\n{len(failures)} kernel(s) regressed more than "
              f"{args.tolerance}x; if intentional, regenerate "
              "bench/BENCH_sim_speed.json on the reference machine.",
              file=sys.stderr)
        return 1
    print(f"\nall {len(base)} baseline kernels within "
          f"{args.tolerance}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
