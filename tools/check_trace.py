#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by `--trace-out`.

Usage:
    check_trace.py TRACE.json [--require-categories a,b,...]
                   [--min-events N]

Checks that the file is valid JSON in Chrome trace-event "JSON object
format": a top-level object with a `traceEvents` array whose entries
each carry `ph`/`pid`/`tid` (and `ts` for timed phases), plus the
sharch `otherData.schema` stamp.  With `--require-categories`, every
named category must appear on at least one event -- this is how CI
asserts the instrumented layers (pipeline, cache, noc, fabric, ...)
actually emitted spans rather than silently compiling to nothing.

Stdlib only, so it runs on a bare CI runner with no installs.

Exit status: 0 on pass, 1 on a failed check, 2 on unreadable input.
"""

import argparse
import json
import sys

# Phases a sharch trace may contain: complete events, instants, and
# process/thread-name metadata.  Anything else means the writer and
# this checker have drifted apart.
KNOWN_PHASES = {"X", "i", "M"}


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    return 1


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace")
    ap.add_argument("--require-categories", default="",
                    help="comma-separated categories that must each "
                         "appear on at least one event")
    ap.add_argument("--min-events", type=int, default=1,
                    help="minimum number of non-metadata events "
                         "(default: 1)")
    args = ap.parse_args(argv)

    try:
        with open(args.trace) as fh:
            doc = json.load(fh)
    except OSError as exc:
        print(f"error: {args.trace}: cannot read ({exc.strerror})",
              file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: {args.trace}: not valid JSON ({exc})",
              file=sys.stderr)
        return 2

    if not isinstance(doc, dict):
        return fail(f"top level is {type(doc).__name__}, expected an "
                    "object with a traceEvents array")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail("no traceEvents array")
    schema = doc.get("otherData", {}).get("schema")
    if schema != "sharch-trace-v1":
        return fail(f"otherData.schema is {schema!r}, expected "
                    "'sharch-trace-v1'")

    categories = {}
    timed = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return fail(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            return fail(f"event {i} has unknown phase {ph!r}")
        for field in ("pid", "tid"):
            if not isinstance(ev.get(field), int):
                return fail(f"event {i} ({ph}) lacks integer "
                            f"'{field}'")
        if ph == "M":
            continue
        if not isinstance(ev.get("ts"), int):
            return fail(f"event {i} ({ph}) lacks integer 'ts'")
        if ph == "X" and not isinstance(ev.get("dur"), int):
            return fail(f"event {i} (X) lacks integer 'dur'")
        timed += 1
        cat = ev.get("cat")
        if not isinstance(cat, str) or not cat:
            return fail(f"event {i} ({ph}) lacks a category")
        categories[cat] = categories.get(cat, 0) + 1

    if timed < args.min_events:
        return fail(f"only {timed} event(s), need at least "
                    f"{args.min_events} -- was the run traced at all?")

    required = [c for c in args.require_categories.split(",") if c]
    missing = [c for c in required if c not in categories]
    if missing:
        return fail(f"missing required categories: "
                    f"{', '.join(missing)} (present: "
                    f"{', '.join(sorted(categories)) or 'none'})")

    dropped = doc.get("otherData", {}).get("dropped", 0)
    summary = ", ".join(f"{c}={n}" for c, n in sorted(categories.items()))
    print(f"ok: {timed} events across {len(categories)} categories "
          f"({summary}); {dropped} dropped")
    return 0


if __name__ == "__main__":
    sys.exit(main())
