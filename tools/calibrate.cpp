// Internal calibration scratch tool (not part of the library).
//
// Usage: calibrate [fig12|fig13|ipc|all] [--threads N]
// The figure sweeps prefill the surface through the parallel batch
// API (SHARCH_THREADS also honored), then print from the memo.
#include <cstdio>
#include <string>
#include "core/perf_model.hh"
#include "exec/run_options.hh"
#include "exec/sweep.hh"
#include "trace/profile.hh"
using namespace sharch;

int main(int argc, char**argv) {
    PerfModel pm(40000);
    std::string mode = "all";
    unsigned threads = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threads" && i + 1 < argc) {
            std::uint64_t v = 0;
            if (!exec::parseU64(argv[++i], &v) || v == 0) {
                std::fprintf(stderr, "bad --threads '%s'\n", argv[i]);
                return 1;
            }
            threads = static_cast<unsigned>(v);
        } else {
            mode = arg;
        }
    }
    const bool all = mode == "all";
    if (mode=="fig12" || all) {
        pm.performanceBatch(
            exec::sweepGrid(benchmarkNames(), {2}, exec::sliceRange()),
            threads);
        printf("== Fig12: perf vs slices (norm to 1 slice,128KB) ==\n%-12s","bench");
        for (int s=1;s<=8;s++) printf(" s=%d  ",s);
        printf("\n");
        for (auto &n : benchmarkNames()) {
            double base = pm.performance(n,2,1);
            printf("%-12s", n.c_str());
            for (int s=1;s<=8;s++) printf("%5.2f ", pm.performance(n,2,s)/base);
            printf("\n");
        }
    }
    if (mode=="fig13" || all) {
        pm.performanceBatch(
            exec::sweepGrid(benchmarkNames(), l2BankGrid(), {2}),
            threads);
        printf("\n== Fig13: perf vs L2 size (2 slices, norm to 0KB) ==\n%-12s","bench");
        for (unsigned b : l2BankGrid()) printf("%6uK", b*64);
        printf("\n");
        for (auto &n : benchmarkNames()) {
            double base = pm.performance(n,0,2);
            printf("%-12s", n.c_str());
            for (unsigned b : l2BankGrid()) printf("%7.2f", pm.performance(n,b,2)/base);
            printf("\n");
        }
    }
    if (mode=="ipc" || all) {
        printf("\n== raw IPC + rates at (2 banks, 2 slices) ==\n");
        for (auto &n : benchmarkNames()) {
            auto r = pm.detailedRun(profileFor(n),2,2);
            auto &st = r.aggregate;
            printf("%-12s ipc=%5.2f br_mpki=%5.1f l1d_miss=%4.1f%% l1i_miss=%4.1f%% l2_miss=%4.1f%%\n",
                n.c_str(), r.throughput(),
                1000.0*st.branchMispredicts/st.instructionsCommitted,
                100.0*st.l1dMissRate(), 100.0*(st.l1iAccesses? (double)st.l1iMisses/st.l1iAccesses:0),
                100.0*st.l2MissRate());
        }
    }
    return 0;
}
