/**
 * @file
 * Internal calibration scratch tool (not part of the library).
 *
 * Usage: calibrate [fig12|fig13|ipc|all] [--threads N] [--format F]
 *
 * The figure sweeps prefill the shared disk-cached surface through
 * the parallel batch API (SHARCH_THREADS also honored), then report
 * from the memo through the same Report layer sharch-bench uses, so
 * calibration output can be diffed against study output directly.
 */

#include <cstdio>
#include <string>

#include "core/perf_model.hh"
#include "exec/run_options.hh"
#include "exec/sweep.hh"
#include "study/report.hh"
#include "study/surface.hh"
#include "trace/profile.hh"

using namespace sharch;

namespace {

void
emit(const study::Report &report, study::Format format)
{
    std::fputs(study::render(report, format).c_str(), stdout);
    if (format == study::Format::Text)
        std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string mode = "all";
    std::string format_name = "text";
    unsigned threads = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threads" && i + 1 < argc) {
            std::uint64_t v = 0;
            if (!exec::parseU64(argv[++i], &v) || v == 0) {
                std::fprintf(stderr, "bad --threads '%s'\n",
                             argv[i]);
                return 1;
            }
            threads = static_cast<unsigned>(v);
        } else if (arg == "--format" && i + 1 < argc) {
            format_name = argv[++i];
        } else {
            mode = arg;
        }
    }
    study::Format format = study::Format::Text;
    if (!study::parseFormat(format_name, &format)) {
        std::fprintf(stderr, "bad --format '%s'\n",
                     format_name.c_str());
        return 1;
    }

    PerfModel &pm = study::sharedPerfModel();
    const bool all = mode == "all";

    if (mode == "fig12" || all) {
        study::prefillSurface(
            pm,
            exec::sweepGrid(benchmarkNames(), {2},
                            exec::sliceRange()),
            threads);
        study::Report report;
        report.id = "calibrate_fig12";
        report.title =
            "Fig12 calibration: perf vs slices (norm to 1 "
            "slice, 128 KB)";
        study::Table &t = report.addTable("fig12", "normalized IPC");
        t.col("benchmark", study::Value::Kind::Text);
        for (int s = 1; s <= 8; ++s)
            t.col("s" + std::to_string(s),
                  study::Value::Kind::Real, 2);
        for (const auto &n : benchmarkNames()) {
            const double base = pm.performance(n, 2, 1);
            std::vector<study::Value> row{n};
            for (int s = 1; s <= 8; ++s)
                row.push_back(pm.performance(n, 2, s) / base);
            t.addRow(std::move(row));
        }
        emit(report, format);
    }
    if (mode == "fig13" || all) {
        study::prefillSurface(
            pm,
            exec::sweepGrid(benchmarkNames(), l2BankGrid(), {2}),
            threads);
        study::Report report;
        report.id = "calibrate_fig13";
        report.title =
            "Fig13 calibration: perf vs L2 size (2 slices, norm "
            "to 0 KB)";
        study::Table &t = report.addTable("fig13", "normalized IPC");
        t.col("benchmark", study::Value::Kind::Text);
        for (unsigned b : l2BankGrid())
            t.col("l2_" + std::to_string(b * 64) + "k",
                  study::Value::Kind::Real, 2);
        for (const auto &n : benchmarkNames()) {
            const double base = pm.performance(n, 0, 2);
            std::vector<study::Value> row{n};
            for (unsigned b : l2BankGrid())
                row.push_back(pm.performance(n, b, 2) / base);
            t.addRow(std::move(row));
        }
        emit(report, format);
    }
    if (mode == "ipc" || all) {
        study::Report report;
        report.id = "calibrate_ipc";
        report.title = "Raw IPC and rates at (2 banks, 2 slices)";
        study::Table &t = report.addTable("ipc", "per-benchmark");
        t.col("benchmark", study::Value::Kind::Text)
            .col("ipc", study::Value::Kind::Real, 2)
            .col("br_mpki", study::Value::Kind::Real, 1)
            .col("l1d_miss_pct", study::Value::Kind::Real, 1)
            .col("l1i_miss_pct", study::Value::Kind::Real, 1)
            .col("l2_miss_pct", study::Value::Kind::Real, 1);
        for (const auto &n : benchmarkNames()) {
            const auto r = pm.detailedRun(profileFor(n), 2, 2);
            const auto &st = r.aggregate;
            const double l1i =
                st.l1iAccesses
                    ? static_cast<double>(st.l1iMisses) /
                          st.l1iAccesses
                    : 0.0;
            t.addRow({n, r.throughput(),
                      1000.0 * st.branchMispredicts /
                          st.instructionsCommitted,
                      100.0 * st.l1dMissRate(), 100.0 * l1i,
                      100.0 * st.l2MissRate()});
        }
        emit(report, format);
    }
    return 0;
}
