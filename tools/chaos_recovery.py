#!/usr/bin/env python3
"""Kill-anywhere chaos harness for sharch-serve's write-ahead journal.

Runs a fixed scripted session once uninterrupted to get the baseline
sharch-report-v1 reply, then for each seed:

  1. replays the script into a journaled serve process that is killed
     after a randomized number of journal writes (SHARCH_CRASH_AFTER),
     half the time mid-write (SHARCH_CRASH_TORN=1) so the log ends in
     a torn record;
  2. starts a fresh process on the same journal directory, reads
     `stats` to learn how many events survived, feeds it the
     not-yet-applied script suffix, and asks for the final report;
  3. asserts the crashed-and-recovered report is byte-identical to
     the uninterrupted one.

Any divergence -- wrong crash exit code, recovery refusing to serve,
a report that differs by even one byte -- fails the run.  Stdlib
only; exits 0 on success.
"""

import argparse
import json
import os
import random
import shutil
import subprocess
import sys
import tempfile

# One request per line; every line posts exactly one engine event
# (allocate/release/reshape/price each map to a single event), so
# the `processed` counter after recovery indexes this list directly.
# Strictly increasing `at` keeps dispatch order equal to script
# order.  Fabric-only tenants (no budget) keep the report
# independent of the perf surface.
SCRIPT = [
    '{"op":"allocate","tenant":"a","slices":4,"banks":2,"at":1}',
    '{"op":"allocate","tenant":"b","slices":2,"banks":1,"at":2}',
    '{"op":"allocate","tenant":"c","slices":6,"banks":3,"at":3}',
    '{"op":"price","at":4}',
    '{"op":"reshape","lease":1,"slices":2,"banks":1}',
    '{"op":"release","tenant":"b","at":6}',
    '{"op":"allocate","tenant":"d","slices":8,"banks":4,"at":7}',
    '{"op":"reshape","lease":3,"slices":4,"banks":2}',
    '{"op":"price","at":9}',
    '{"op":"release","tenant":"c","at":10}',
    '{"op":"allocate","tenant":"e","slices":1,"banks":1,"at":11}',
    '{"op":"price","at":12}',
]
REPORT_REQ = '{"op":"report"}'


def run_session(serve, journal, lines, env=None, rotate=4,
                serve_args=()):
    """Feed lines to one serve process; return (exit, stdout lines)."""
    full_env = dict(os.environ)
    if env:
        full_env.update(env)
    proc = subprocess.run(
        [serve, "--journal", journal, "--journal-rotate",
         str(rotate), *serve_args],
        input="".join(line + "\n" for line in lines),
        capture_output=True,
        text=True,
        env=full_env,
        timeout=120,
    )
    out = [l for l in proc.stdout.splitlines() if l]
    return proc.returncode, out


def interact(serve, journal, script_suffix, rotate=4,
             serve_args=()):
    """Recover a journal, replay the suffix, return the report line."""
    proc = subprocess.Popen(
        [serve, "--journal", journal, "--journal-rotate",
         str(rotate), *serve_args],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        bufsize=1,
    )
    try:
        for line in script_suffix:
            proc.stdin.write(line + "\n")
        proc.stdin.write(REPORT_REQ + "\n")
        proc.stdin.close()
        replies = [l for l in proc.stdout.read().splitlines() if l]
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
    if proc.returncode != 0:
        raise SystemExit(
            f"recovery process exited {proc.returncode}: "
            f"{proc.stderr.read()}"
        )
    return replies[-1]


def processed_events(serve, journal, serve_args=()):
    """Ask a recovered session how many events its journal replayed."""
    code, out = run_session(serve, journal, ['{"op":"stats"}'],
                            serve_args=serve_args)
    if code != 0 or not out:
        raise SystemExit(f"stats probe failed (exit {code})")
    return json.loads(out[-1])["processed"]


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--serve", required=True,
                    help="path to the sharch-serve binary")
    ap.add_argument("--seeds", type=int, default=5,
                    help="randomized crash points to try")
    ap.add_argument("--seed-base", type=int, default=0,
                    help="offset into the seed sequence")
    ap.add_argument("--serve-arg", action="append", default=[],
                    help="extra flag passed through to every serve "
                         "invocation (repeatable), e.g. "
                         "--serve-arg=--fleet --serve-arg=256")
    args = ap.parse_args()

    work = tempfile.mkdtemp(prefix="sharch-chaos-")
    failures = 0
    torn_runs = 0
    try:
        # Uninterrupted baseline.
        base_dir = os.path.join(work, "baseline")
        code, out = run_session(args.serve, base_dir,
                                SCRIPT + [REPORT_REQ],
                                serve_args=args.serve_arg)
        if code != 0:
            raise SystemExit(f"baseline run exited {code}")
        baseline = out[-1]
        if '"schema":"sharch-report-v1"' not in baseline:
            raise SystemExit("baseline reply is not a report")

        for i in range(args.seeds):
            rng = random.Random(args.seed_base + i)
            crash_after = rng.randint(1, len(SCRIPT))
            torn = rng.random() < 0.5
            torn_runs += torn
            jdir = os.path.join(work, f"seed{i}")
            env = {"SHARCH_CRASH_AFTER": str(crash_after)}
            if torn:
                env["SHARCH_CRASH_TORN"] = "1"

            code, _ = run_session(args.serve, jdir,
                                  SCRIPT + [REPORT_REQ], env=env,
                                  serve_args=args.serve_arg)
            if code != 137:
                print(f"seed {i}: FAIL crash run exited {code}, "
                      f"want 137", file=sys.stderr)
                failures += 1
                continue

            # A torn n-th write never became durable; a clean crash
            # made exactly n events durable.  Trust the recovered
            # engine's own counter rather than re-deriving it.
            done = processed_events(args.serve, jdir,
                                    serve_args=args.serve_arg)
            expect = crash_after - 1 if torn else crash_after
            if done != expect:
                print(f"seed {i}: FAIL recovered {done} events, "
                      f"want {expect} (crash_after={crash_after} "
                      f"torn={torn})", file=sys.stderr)
                failures += 1
                continue

            report = interact(args.serve, jdir, SCRIPT[done:],
                              serve_args=args.serve_arg)
            if report != baseline:
                print(f"seed {i}: FAIL report diverged after crash "
                      f"at write {crash_after} (torn={torn})",
                      file=sys.stderr)
                failures += 1
                continue
            print(f"seed {i}: ok (crash after {crash_after} writes, "
                  f"torn={torn}, replayed {done})")

        if torn_runs == 0 and args.seeds >= 4:
            # Randomization should exercise both crash flavors.
            print("note: no torn-write runs in this seed range")
    finally:
        shutil.rmtree(work, ignore_errors=True)

    if failures:
        print(f"{failures}/{args.seeds} seeds FAILED",
              file=sys.stderr)
        return 1
    print(f"all {args.seeds} seeds recovered byte-identically")
    return 0


if __name__ == "__main__":
    sys.exit(main())
