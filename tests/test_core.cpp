/**
 * @file
 * Tests for the SSim core: VCoreSim timing invariants, VmSim
 * multi-VCore coherence, prewarming, reconfiguration costs, and the
 * memoized/disk-cached performance model.
 */

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "core/perf_model.hh"
#include "core/reconfig.hh"
#include "core/vm_sim.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"

using namespace sharch;

namespace {

VmResult
runOnce(const std::string &bench, unsigned banks, unsigned slices,
        std::size_t n = 8000, bool prewarm = true)
{
    const BenchmarkProfile &p = profileFor(bench);
    SimConfig cfg;
    cfg.numSlices = slices;
    cfg.numL2Banks = banks;
    const unsigned vcores = p.multithreaded ? p.numThreads : 1;
    VmSim vm(cfg, vcores);
    if (prewarm)
        vm.prewarm(p);
    TraceGenerator gen(p, 1);
    return vm.run(gen.generateThreads(n));
}

} // namespace

TEST(VCoreSim, CommitsEveryInstruction)
{
    const VmResult r = runOnce("gcc", 2, 2);
    EXPECT_EQ(r.aggregate.instructionsCommitted, 8000u);
    EXPECT_EQ(r.aggregate.instructionsFetched, 8000u);
    EXPECT_GT(r.cycles, 0u);
}

TEST(VCoreSim, DeterministicAcrossRuns)
{
    const VmResult a = runOnce("sjeng", 2, 4);
    const VmResult b = runOnce("sjeng", 2, 4);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.aggregate.branchMispredicts,
              b.aggregate.branchMispredicts);
    EXPECT_EQ(a.aggregate.l1dMisses, b.aggregate.l1dMisses);
}

TEST(VCoreSim, IpcIsPhysical)
{
    // A Slice fetches 2/cycle: aggregate IPC can never exceed 2*s.
    for (unsigned s : {1u, 4u}) {
        const VmResult r = runOnce("hmmer", 2, s);
        EXPECT_LE(r.throughput(), 2.0 * s);
        EXPECT_GT(r.throughput(), 0.01);
    }
}

TEST(VCoreSim, CountsMatchTraceContent)
{
    const BenchmarkProfile &p = profileFor("gcc");
    TraceGenerator gen(p, 1);
    const Trace t = gen.generate(8000);
    std::size_t loads = 0, stores = 0, branches = 0;
    for (const TraceInst &ti : t.instructions) {
        loads += ti.op == OpClass::Load;
        stores += ti.op == OpClass::Store;
        branches += ti.isBranch();
    }
    const VmResult r = runOnce("gcc", 2, 2);
    EXPECT_EQ(r.aggregate.loads, loads);
    EXPECT_EQ(r.aggregate.stores, stores);
    EXPECT_EQ(r.aggregate.branches, branches);
    EXPECT_LE(r.aggregate.branchMispredicts, branches);
}

TEST(VCoreSim, SingleSliceHasNoSonTraffic)
{
    const VmResult r = runOnce("gcc", 2, 1);
    EXPECT_EQ(r.aggregate.operandRequests, 0u);
    EXPECT_EQ(r.aggregate.renameBroadcasts, 0u);
}

TEST(VCoreSim, MultiSliceUsesTheSon)
{
    const VmResult r = runOnce("gcc", 2, 4);
    EXPECT_GT(r.aggregate.operandRequests, 0u);
    EXPECT_EQ(r.aggregate.operandRequests, r.aggregate.operandReplies);
    EXPECT_GT(r.aggregate.renameBroadcasts, 0u);
}

TEST(VCoreSim, StepInterfaceIsIncremental)
{
    SimConfig cfg;
    FabricPlacement placement(cfg.numSlices, cfg.numL2Banks);
    L2System l2(cfg, {placement});
    VCoreSim sim(cfg, 0, placement, l2);
    TraceGenerator gen(profileFor("gcc"), 1);
    const Trace t = gen.generate(1000);
    MaterializedTraceSource src(t);
    EXPECT_EQ(sim.step(src, 400), 400u);
    EXPECT_FALSE(sim.done());
    EXPECT_EQ(src.consumed(), 400u);
    EXPECT_EQ(sim.step(src, 1000), 600u);
    EXPECT_TRUE(sim.done());
    EXPECT_EQ(sim.stats().instructionsCommitted, 1000u);
}

TEST(VCoreSim, MoreCacheHelpsSensitiveWorkloads)
{
    const Cycles none = runOnce("gobmk", 0, 2).cycles;
    const Cycles big = runOnce("gobmk", 8, 2).cycles;
    EXPECT_LT(big, none);
}

TEST(VCoreSim, PrewarmReducesColdMisses)
{
    const VmResult cold = runOnce("gcc", 8, 2, 8000, false);
    const VmResult warm = runOnce("gcc", 8, 2, 8000, true);
    EXPECT_LT(warm.aggregate.l1dMisses, cold.aggregate.l1dMisses);
}

TEST(VCoreSim, ReconfigurationChargesCycles)
{
    SimConfig cfg;
    FabricPlacement placement(cfg.numSlices, cfg.numL2Banks);
    L2System l2(cfg, {placement});
    VCoreSim sim(cfg, 0, placement, l2);
    TraceGenerator gen(profileFor("gcc"), 1);
    StreamingTraceSource src(gen, 2000);
    sim.step(src, 1000);
    const Cycles before = sim.currentCycle();
    sim.chargeReconfiguration(10000);
    EXPECT_GE(sim.currentCycle(), before + 10000);
    sim.step(src, 1000);
    EXPECT_EQ(sim.stats().instructionsCommitted, 2000u);
}

TEST(VmSim, ParsecRunsFourVCores)
{
    const VmResult r = runOnce("dedup", 2, 2, 4000);
    EXPECT_EQ(r.perVCore.size(), 4u);
    EXPECT_EQ(r.aggregate.instructionsCommitted, 4u * 4000u);
    for (const SimStats &st : r.perVCore)
        EXPECT_GT(st.instructionsCommitted, 0u);
}

TEST(VmSim, SharedWritesCauseInvalidations)
{
    // dedup shares 15% of its heap; writes must invalidate remote L1s
    // through the L2 directory (section 3.5).
    const VmResult r = runOnce("dedup", 4, 2, 6000);
    EXPECT_GT(r.aggregate.coherenceInvalidations, 0u);
}

TEST(VmSim, SingleThreadHasNoCoherenceTraffic)
{
    const VmResult r = runOnce("gcc", 4, 2);
    EXPECT_EQ(r.aggregate.coherenceInvalidations, 0u);
}

TEST(ReconfigManager, CostsFollowSection510)
{
    const ReconfigManager rm;
    const VCoreShape a{4, 2}, same{4, 2};
    EXPECT_EQ(rm.transitionCost(a, same), 0u);
    // Slice-only change: 500 cycles.
    EXPECT_EQ(rm.transitionCost({4, 2}, {4, 6}), 500u);
    // Any bank change flushes the L2: 10,000 cycles.
    EXPECT_EQ(rm.transitionCost({4, 2}, {8, 2}), 10000u);
    EXPECT_EQ(rm.transitionCost({4, 2}, {8, 6}), 10000u);
}

TEST(ReconfigManager, FlushRequirements)
{
    const ReconfigManager rm;
    EXPECT_TRUE(rm.requiresCacheFlush({4, 2}, {2, 2}));
    EXPECT_FALSE(rm.requiresCacheFlush({4, 2}, {4, 8}));
    EXPECT_TRUE(rm.requiresRegisterFlush({4, 4}, {4, 2}));
    EXPECT_FALSE(rm.requiresRegisterFlush({4, 2}, {4, 4}));
}

TEST(PerfModel, MemoizesResults)
{
    PerfModel pm(4000);
    const double a = pm.performance("gcc", 2, 2);
    const double b = pm.performance("gcc", 2, 2);
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_GT(a, 0.0);
}

TEST(PerfModel, BankGridCoversPaperRange)
{
    const auto &grid = l2BankGrid();
    EXPECT_EQ(grid.front(), 0u);
    EXPECT_EQ(grid.back(), 128u); // 8 MB in 64 KB banks
    EXPECT_EQ(banksToKb(128), 8192u);
    EXPECT_EQ(banksToKb(0), 0u);
}

TEST(PerfModel, DiskCacheRoundTrips)
{
    const std::string path = "test_perf_cache.csv";
    std::filesystem::remove(path);
    {
        PerfModel pm(4000);
        pm.enableDiskCache(path);
        pm.performance("hmmer", 1, 1);
    }
    ASSERT_TRUE(std::filesystem::exists(path));
    {
        PerfModel fresh(4000);
        fresh.enableDiskCache(path);
        // Identical value must come back without re-simulation; verify
        // by comparing against an uncached model.
        PerfModel reference(4000);
        EXPECT_DOUBLE_EQ(fresh.performance("hmmer", 1, 1),
                         reference.performance("hmmer", 1, 1));
    }
    {
        // A model with different parameters must ignore the cache.
        PerfModel other(2000);
        other.enableDiskCache(path);
        EXPECT_GT(other.performance("hmmer", 1, 1), 0.0);
    }
    std::filesystem::remove(path);
}

TEST(PerfModel, DiskCacheDropsCorruptRowsKeepsGoodOnes)
{
    const std::string path = "test_perf_cache_corrupt.csv";
    std::filesystem::remove(path);
    {
        // Hand-written cache mixing valid rows (planted perf values no
        // simulation would produce, so a load is unambiguous) with the
        // corruption modes enableDiskCache must reject: garbage text,
        // a row truncated mid-write, out-of-range slices, and a
        // non-finite perf.  Loading must keep every good row and drop
        // every bad one with a single summarized warning.
        std::ofstream out(path);
        out << "hmmer,4000,1,2,2,123.5\n";
        out << "this is not a cache row\n";
        out << "gcc,4000,1,1\n";             // truncated mid-row
        out << "sjeng,4000,1,1,99,1.0\n";    // slices > kMaxSlices
        out << "mcf,4000,1,1,1,nan\n";       // non-finite perf
        out << "gcc,4000,1,4,1,67.25\n";
    }
    PerfModel pm(4000);
    pm.enableDiskCache(path);
    // Both valid rows came back memoized: the planted values are
    // returned verbatim, proving no re-simulation happened.
    EXPECT_DOUBLE_EQ(pm.performance("hmmer", 2, 2), 123.5);
    EXPECT_DOUBLE_EQ(pm.performance("gcc", 4, 1), 67.25);
    // The NaN row was dropped, not memoized: the point re-simulates
    // to the same finite value an uncached model produces.
    PerfModel reference(4000);
    const double resim = pm.performance("mcf", 1, 1);
    EXPECT_TRUE(std::isfinite(resim));
    EXPECT_DOUBLE_EQ(resim, reference.performance("mcf", 1, 1));
    std::filesystem::remove(path);
}

TEST(PerfModel, TraceCacheBoundedAcrossBatches)
{
    // A long multi-benchmark batch must not hold every benchmark's
    // trace streams forever: the LRU bound caps the distinct
    // workloads resident at once.
    PerfModel pm(2000);
    pm.setTraceCacheCapacity(2);
    const auto grid = exec::sweepGrid(
        {std::string("gcc"), "hmmer", "sjeng", "mcf", "astar"}, {1},
        {1u, 2u});
    const auto results = pm.performanceBatch(grid, 2);
    ASSERT_EQ(results.size(), grid.size());
    for (const auto &r : results)
        EXPECT_GT(r.ipc, 0.0);
    EXPECT_LE(pm.traceCacheSize(), 2u);
}

TEST(PerfModel, EvictedTracesRegenerateIdentically)
{
    // Eviction must be invisible in the results: a capacity-1 model
    // (every switch regenerates) matches an unbounded one bit-for-bit.
    // The bundle cache only exists on the materialized path.
    PerfModel bounded(2000);
    bounded.setTraceMode(TraceMode::Materialize);
    bounded.setTraceCacheCapacity(1);
    PerfModel roomy(2000);
    roomy.setTraceMode(TraceMode::Materialize);
    for (unsigned banks : {1u, 4u}) {
        for (const char *b : {"gcc", "hmmer", "gcc", "hmmer"}) {
            EXPECT_DOUBLE_EQ(bounded.performance(b, banks, 2),
                             roomy.performance(b, banks, 2));
        }
    }
    EXPECT_EQ(bounded.traceCacheSize(), 1u);
}

TEST(PerfModel, PhaseProfilesWork)
{
    PerfModel pm(4000);
    const auto phases = gccPhaseProfiles();
    const double p = pm.performance(phases[0], 2, 2);
    EXPECT_GT(p, 0.0);
    // Distinct phases are memoized under distinct names.
    EXPECT_NE(pm.performance(phases[1], 2, 2), 0.0);
}

/** Property sweep over the whole configuration grid. */
class ConfigSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(ConfigSweep, EveryShapeRunsToCompletion)
{
    const auto [slices, banks] = GetParam();
    const VmResult r = runOnce("gcc", banks, slices, 3000);
    EXPECT_EQ(r.aggregate.instructionsCommitted, 3000u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_LE(r.throughput(), 2.0 * slices);
}

// Slice counts deliberately mix powers of two (mask-indexed fetch and
// load/store sorting) and non-powers (modulo fallback); see
// VCoreSim::fetchSliceOf / homeSliceOf.
INSTANTIATE_TEST_SUITE_P(
    Shapes, ConfigSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u, 6u, 7u, 8u),
                       ::testing::Values(0u, 1u, 4u, 32u, 128u)));

/** The pow2 fast path and the modulo fallback must spread work the
 *  same way their shared definition says: slice = index mod s. */
TEST(VCoreSim, SliceSortMatchesModuloForAllSliceCounts)
{
    for (unsigned slices : {2u, 3u, 4u, 6u, 8u}) {
        const VmResult r = runOnce("gcc", 1, slices, 4000);
        EXPECT_EQ(r.aggregate.instructionsCommitted, 4000u)
            << "slices " << slices;
        // Re-running is bit-identical regardless of indexing path.
        const VmResult r2 = runOnce("gcc", 1, slices, 4000);
        EXPECT_EQ(r.cycles, r2.cycles) << "slices " << slices;
    }
}
