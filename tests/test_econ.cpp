/**
 * @file
 * Tests for the economics library: utility functions, markets,
 * optimizers, efficiency studies, datacenter mixes, and the phase
 * study.  Simulation-backed tests use short traces to stay fast.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "econ/datacenter.hh"
#include "econ/efficiency.hh"
#include "econ/market.hh"
#include "econ/phases.hh"
#include "econ/utility.hh"

using namespace sharch;

namespace {

/** Shared simulation state across econ tests (built once). */
class EconTest : public ::testing::Test
{
  protected:
    static PerfModel &
    perf()
    {
        static PerfModel pm(4000);
        return pm;
    }

    static UtilityOptimizer &
    optimizer()
    {
        static UtilityOptimizer opt(perf(), AreaModel{});
        return opt;
    }
};

} // namespace

TEST(Utility, NamesAndExponents)
{
    EXPECT_STREQ(utilityName(UtilityKind::Throughput), "Utility1");
    EXPECT_STREQ(utilityName(UtilityKind::Balanced), "Utility2");
    EXPECT_STREQ(utilityName(UtilityKind::SingleStream), "Utility3");
    EXPECT_EQ(utilityExponent(UtilityKind::Throughput), 1);
    EXPECT_EQ(utilityExponent(UtilityKind::Balanced), 2);
    EXPECT_EQ(utilityExponent(UtilityKind::SingleStream), 3);
}

TEST(Utility, ClosedForms)
{
    // Table 5: U1 = v*P, U2 = sqrt(v)*P^2, U3 = cbrt(v)*P^3.
    EXPECT_DOUBLE_EQ(utilityValue(UtilityKind::Throughput, 4.0, 2.0),
                     8.0);
    EXPECT_DOUBLE_EQ(utilityValue(UtilityKind::Balanced, 4.0, 2.0),
                     2.0 * 4.0);
    EXPECT_DOUBLE_EQ(
        utilityValue(UtilityKind::SingleStream, 8.0, 2.0), 2.0 * 8.0);
}

TEST(Utility, ThroughputKindFavorsReplication)
{
    // Doubling v doubles U1 but only sqrt-scales U2 and cbrt-scales U3.
    const double p = 1.5;
    EXPECT_DOUBLE_EQ(utilityValue(UtilityKind::Throughput, 2.0, p) /
                         utilityValue(UtilityKind::Throughput, 1.0, p),
                     2.0);
    EXPECT_NEAR(utilityValue(UtilityKind::Balanced, 2.0, p) /
                    utilityValue(UtilityKind::Balanced, 1.0, p),
                std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(utilityValue(UtilityKind::SingleStream, 2.0, p) /
                    utilityValue(UtilityKind::SingleStream, 1.0, p),
                std::cbrt(2.0), 1e-12);
}

TEST(Market, PaperPriceVectors)
{
    // Equal-area anchor: 1 Slice == 128 KB == 2 banks.
    EXPECT_DOUBLE_EQ(market2().slicePrice, 2.0);
    EXPECT_DOUBLE_EQ(market2().bankPrice, 1.0);
    // Market1: Slices at 4x equal-area cost.
    EXPECT_DOUBLE_EQ(market1().slicePrice, 4.0 * market2().slicePrice);
    EXPECT_DOUBLE_EQ(market1().bankPrice, market2().bankPrice);
    // Market3: cache at 4x equal-area cost.
    EXPECT_DOUBLE_EQ(market3().bankPrice, 4.0 * market2().bankPrice);
    EXPECT_DOUBLE_EQ(market3().slicePrice, market2().slicePrice);
    EXPECT_EQ(allMarkets().size(), 3u);
}

TEST(Market, CostAndAffordability)
{
    const Market m = market2();
    EXPECT_DOUBLE_EQ(configCost(m, 4, 2), 4.0 + 4.0);
    // Equation 2: v = B / (Cc*c + Cs*s).
    EXPECT_DOUBLE_EQ(coresAffordable(m, 80.0, 4, 2), 10.0);
    EXPECT_GT(defaultBudget(), configCost(m, 128, 8));
}

TEST_F(EconTest, PeakUtilityIsArgmaxOverGrid)
{
    const Market m = market2();
    const double budget = defaultBudget();
    const OptResult best = optimizer().peakUtility(
        "gcc", UtilityKind::Balanced, m, budget);
    // No grid point may beat the reported optimum.
    for (unsigned s = 1; s <= SimConfig::kMaxSlices; ++s) {
        for (unsigned banks : l2BankGrid()) {
            EXPECT_LE(optimizer().utilityAt("gcc",
                                            UtilityKind::Balanced, m,
                                            budget, banks, s),
                      best.objective + 1e-9);
        }
    }
    EXPECT_GT(best.cores, 0.0);
    EXPECT_EQ(best.cacheKb(), best.banks * 64);
}

TEST_F(EconTest, PeakPerfPerAreaIsArgmax)
{
    const OptResult best = optimizer().peakPerfPerArea("hmmer", 2);
    const AreaModel &am = optimizer().areaModel();
    for (unsigned s = 1; s <= SimConfig::kMaxSlices; ++s) {
        for (unsigned banks : l2BankGrid()) {
            const double p = perf().performance("hmmer", banks, s);
            EXPECT_LE(p * p / am.vcoreAreaMm2(s, banks),
                      best.objective + 1e-9);
        }
    }
}

TEST_F(EconTest, HigherExponentNeverShrinksOptimalPerf)
{
    // A cubed-performance customer never prefers a slower VCore than
    // the linear customer's optimum.
    const OptResult k1 = optimizer().peakPerfPerArea("gcc", 1);
    const OptResult k3 = optimizer().peakPerfPerArea("gcc", 3);
    EXPECT_GE(k3.perf, k1.perf - 1e-12);
}

TEST_F(EconTest, ExpensiveSlicesShiftSpendingTowardCache)
{
    // Aggregate substitution effect across the suite: when Slices cost
    // 4x (Market1), customers buy no more Slices -- and when cache
    // costs 4x (Market3), no more banks -- than at area parity.
    const double budget = defaultBudget();
    unsigned slices_m1 = 0, slices_m3 = 0;
    unsigned banks_m2 = 0, banks_m3 = 0;
    for (const std::string &b : benchmarkNames()) {
        slices_m1 += optimizer()
                         .peakUtility(b, UtilityKind::Balanced,
                                      market1(), budget)
                         .slices;
        const OptResult m3r = optimizer().peakUtility(
            b, UtilityKind::Balanced, market3(), budget);
        slices_m3 += m3r.slices;
        banks_m3 += m3r.banks;
        banks_m2 += optimizer()
                        .peakUtility(b, UtilityKind::Balanced,
                                     market2(), budget)
                        .banks;
    }
    EXPECT_LE(slices_m1, slices_m3);
    EXPECT_LE(banks_m3, banks_m2);
}

TEST_F(EconTest, UtilitySurfaceCoversGrid)
{
    const auto surface = optimizer().utilitySurface(
        "bzip", UtilityKind::Throughput, market2(), defaultBudget());
    EXPECT_EQ(surface.size(),
              SimConfig::kMaxSlices * l2BankGrid().size());
    for (const SurfacePoint &p : surface)
        EXPECT_GE(p.utility, 0.0);
}

TEST_F(EconTest, EfficiencyCustomersAreComplete)
{
    EfficiencyStudy study(optimizer());
    const auto customers = study.allCustomers();
    EXPECT_EQ(customers.size(), benchmarkNames().size() * 3);
}

TEST_F(EconTest, SharingNeverLosesToFixedOnAverage)
{
    // Sharing gives every customer their optimum, so each pair gain
    // is >= 1 up to simulation noise, and the mean strictly > 1.
    EfficiencyStudy study(optimizer());
    const EfficiencyResult res = study.vsStaticFixed();
    EXPECT_FALSE(res.gains.empty());
    for (const PairGain &g : res.gains)
        EXPECT_GE(g.gain, 0.999);
    EXPECT_GT(res.meanGain, 1.0);
    EXPECT_GE(res.maxGain, res.meanGain);
}

TEST_F(EconTest, HeterogeneousIsHarderToBeatThanFixed)
{
    EfficiencyStudy study(optimizer());
    const double vs_fixed = study.vsStaticFixed().meanGain;
    const double vs_hetero = study.vsHeterogeneous().meanGain;
    // Three specialized core types serve customers at least as well
    // as one compromise design.
    EXPECT_LE(vs_hetero, vs_fixed + 0.05);
    EXPECT_GE(vs_hetero, 1.0);
}

TEST_F(EconTest, DatacenterMixPrefersItsOwnCoreType)
{
    const DatacenterResult res = datacenterStudy(
        optimizer(), "hmmer", "gobmk", {0.0, 1.0}, 11);
    EXPECT_EQ(res.points.size(), 2u * 11u);

    // Economics of Figure 17: an all-B (gobmk) datacenter does at
    // least as well on all-B-optimal silicon as on all-A-optimal
    // silicon, and vice versa -- strictly so when the two core types
    // differ.  (At test scale the derived optima can coincide, in
    // which case the utilities tie.)
    auto utility_at = [&](double mix, double frac) {
        for (const MixPoint &pt : res.points) {
            if (std::abs(pt.appAMix - mix) < 1e-9 &&
                std::abs(pt.bigCoreAreaFrac - frac) < 1e-9) {
                return pt.utilityPerArea;
            }
        }
        ADD_FAILURE() << "missing point";
        return 0.0;
    };
    EXPECT_GE(utility_at(0.0, 1.0), utility_at(0.0, 0.0) - 1e-9);
    EXPECT_GE(utility_at(1.0, 0.0), utility_at(1.0, 1.0) - 1e-9);
    const bool distinct = res.big.banks != res.small.banks ||
                          res.big.slices != res.small.slices;
    if (distinct) {
        EXPECT_GE(res.optimalBigFrac(0.0) + 1e-9,
                  res.optimalBigFrac(1.0));
    }
}

TEST_F(EconTest, DatacenterUtilityPositive)
{
    const DatacenterResult res = datacenterStudy(
        optimizer(), "hmmer", "gobmk", {0.5}, 5);
    for (const MixPoint &p : res.points) {
        EXPECT_GT(p.utilityPerArea, 0.0);
        EXPECT_GE(p.bigCoreAreaFrac, 0.0);
        EXPECT_LE(p.bigCoreAreaFrac, 1.0);
    }
}

TEST_F(EconTest, PhaseStudyStructure)
{
    const PhaseStudyResult res = phaseStudy(optimizer());
    EXPECT_EQ(res.phases.size(), 10u);
    ASSERT_EQ(res.rows.size(), 3u);
    for (const PhaseStudyRow &row : res.rows) {
        EXPECT_EQ(row.perPhase.size(), 10u);
        EXPECT_GT(row.dynamicGme, 0.0);
        EXPECT_GT(row.staticGme, 0.0);
        // The dynamic schedule includes every phase's optimum, so
        // without reconfiguration costs it would dominate; with them
        // it may only lose a little.
        EXPECT_GT(row.gain, -0.10);
    }
    EXPECT_EQ(res.rows[0].metricExponent, 1);
    EXPECT_EQ(res.rows[2].metricExponent, 3);
}

TEST_F(EconTest, PhaseGainGrowsWithExponent)
{
    const PhaseStudyResult res = phaseStudy(optimizer());
    EXPECT_LE(res.rows[0].gain, res.rows[2].gain + 0.02);
}
