/**
 * @file
 * The study engine: registry contents, renderer agreement, the
 * JSON determinism contract across worker-thread counts, golden
 * report stability, and the environment-variable validation that
 * replaced the silent-zero strtoull parsing.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/perf_model.hh"
#include "study/engine.hh"
#include "study/registry.hh"
#include "study/report.hh"
#include "study/surface.hh"

using namespace sharch;
using namespace sharch::study;

namespace {

/** Every figure/table harness ported onto the registry, sorted. */
const std::vector<std::string> kExpectedStudies = {
    "ablate_son", "datacenter_churn", "datacenter_churn_short",
    "fault_degradation", "fig10_11",  "fig12",
    "fig13",      "fig14",            "fig15",
    "fig16",      "fig17",            "fleet_scale",
    "journal_recovery", "sampling_accuracy", "serve_replay",
    "sim_speed",  "tab1",             "tab4",
    "tab6",       "tab7",
};

TEST(StudyRegistry, ListsEveryPortedHarness)
{
    std::vector<std::string> names;
    for (const Study *s : StudyRegistry::instance().all())
        names.push_back(s->name());
    EXPECT_EQ(names, kExpectedStudies);
}

TEST(StudyRegistry, FindAndMatch)
{
    EXPECT_NE(StudyRegistry::instance().find("fig13"), nullptr);
    EXPECT_EQ(StudyRegistry::instance().find("fig99"), nullptr);

    std::vector<std::string> figs;
    for (const Study *s : StudyRegistry::instance().match("fig*"))
        figs.push_back(s->name());
    EXPECT_EQ(figs,
              (std::vector<std::string>{"fig10_11", "fig12", "fig13",
                                        "fig14", "fig15", "fig16",
                                        "fig17"}));
    EXPECT_EQ(StudyRegistry::instance().match("*").size(),
              kExpectedStudies.size());
}

TEST(StudyRegistry, GlobMatch)
{
    EXPECT_TRUE(globMatch("fig13", "fig13"));
    EXPECT_FALSE(globMatch("fig13", "fig12"));
    EXPECT_TRUE(globMatch("fig*", "fig10_11"));
    EXPECT_FALSE(globMatch("fig*", "tab1"));
    EXPECT_TRUE(globMatch("*", ""));
    EXPECT_TRUE(globMatch("?ab1", "tab1"));
    EXPECT_FALSE(globMatch("?ab1", "ab1"));
    // Star backtracking: the first '1' must not commit the match.
    EXPECT_TRUE(globMatch("f*3", "fig13"));
    EXPECT_TRUE(globMatch("*_*", "fig10_11"));
    EXPECT_FALSE(globMatch("*_*", "tab1"));
    EXPECT_FALSE(globMatch("fig", "fig13"));
}

/** A fixed two-table report for exercising the renderers. */
Report
sampleReport()
{
    Report r;
    r.id = "sample";
    r.title = "Sample";
    r.addMeta("seed", 7);
    Table &t = r.addTable("t", "first");
    t.col("name", Value::Kind::Text)
        .col("n", Value::Kind::Integer)
        .col("x", Value::Kind::Real, 3);
    t.addRow({"alpha", 1, 0.5});
    t.addRow({"bravo", 2, 1.25});
    t.addRow({"charlie", 3, 2.0});
    Table &u = r.addTable("u", "second");
    u.col("flag", Value::Kind::Boolean);
    u.addRow({true});
    u.addRow({false});
    return r;
}

/** Positions of @p needles in @p text must be strictly increasing. */
void
expectOrdered(const std::string &text,
              const std::vector<std::string> &needles)
{
    std::size_t last = 0;
    for (const std::string &n : needles) {
        const std::size_t at = text.find(n, last);
        ASSERT_NE(at, std::string::npos)
            << "'" << n << "' missing (or out of order) in:\n"
            << text;
        last = at + n.size();
    }
}

TEST(Renderers, RowOrderIdenticalAcrossFormats)
{
    const Report r = sampleReport();
    const std::vector<std::string> order = {
        "alpha", "bravo", "charlie", "true", "false"};
    expectOrdered(renderText(r), order);
    expectOrdered(renderCsv(r), order);
    expectOrdered(renderJson(r), order);
}

TEST(Renderers, CanonicalValues)
{
    EXPECT_EQ(Value(42).toCanonical(), "42");
    EXPECT_EQ(Value(-3).toCanonical(), "-3");
    EXPECT_EQ(Value(true).toCanonical(), "true");
    EXPECT_EQ(Value(0.5).toCanonical(), "0.5");
    EXPECT_EQ(Value("hi").toJson(), "\"hi\"");
    EXPECT_EQ(Value("a\"b\\c\n").toJson(), "\"a\\\"b\\\\c\\n\"");
    // %.17g round-trips; equal doubles must render equally.
    EXPECT_EQ(Value(1.0 / 3.0).toCanonical(),
              Value(1.0 / 3.0).toCanonical());
}

TEST(Renderers, JsonOmitsVolatileRunInfo)
{
    Report r = sampleReport();
    r.addRunInfo("threads", 4);
    r.addRunInfo("elapsed_s", 1.25);
    const std::string json = renderJson(r);
    const std::string csv = renderCsv(r);
    EXPECT_EQ(json.find("threads"), std::string::npos);
    EXPECT_EQ(json.find("elapsed_s"), std::string::npos);
    EXPECT_EQ(csv.find("elapsed_s"), std::string::npos);
    // ...while the human-facing text renderer shows them.
    EXPECT_NE(renderText(r).find("threads"), std::string::npos);
}

TEST(StudyEngine, JsonBitIdenticalAcrossThreadCounts)
{
    Study *s = StudyRegistry::instance().find("fig12");
    ASSERT_NE(s, nullptr);

    EngineOptions o;
    o.instructions = 500;
    o.seed = 1;

    o.threads = 1;
    PerfModel pm1(o.instructions, o.seed);
    const Report r1 = runStudy(*s, pm1, o);

    o.threads = 4;
    PerfModel pm4(o.instructions, o.seed);
    const Report r4 = runStudy(*s, pm4, o);

    EXPECT_EQ(renderJson(r1), renderJson(r4));
    EXPECT_EQ(renderCsv(r1), renderCsv(r4));
}

TEST(StudyEngine, GoldenTab1Report)
{
    Study *s = StudyRegistry::instance().find("tab1");
    ASSERT_NE(s, nullptr);

    EngineOptions o;
    o.instructions = 2000;
    o.seed = 1;
    o.threads = 1;
    PerfModel pm(o.instructions, o.seed);
    const Report r = runStudy(*s, pm, o);

    std::ifstream in(std::string(SHARCH_TEST_DATA_DIR) +
                     "/tab1.json");
    ASSERT_TRUE(in) << "golden tab1.json missing";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(renderJson(r), golden.str())
        << "tab1 drifted from the committed golden report; if the "
           "change is intentional, regenerate with: sharch-bench "
           "--run tab1 --instructions 2000 --seed 1 --format json";
}

TEST(Surface, EnvCountsValidateInsteadOfSilentZero)
{
    // Garbage and zero must warn and fall back, never parse as 0.
    ::setenv("SHARCH_BENCH_INSTRUCTIONS", "garbage", 1);
    EXPECT_EQ(envInstructions(1234), 1234u);
    ::setenv("SHARCH_BENCH_INSTRUCTIONS", "12k", 1);
    EXPECT_EQ(envInstructions(1234), 1234u);
    ::setenv("SHARCH_BENCH_INSTRUCTIONS", "0", 1);
    EXPECT_EQ(envInstructions(1234), 1234u);
    ::setenv("SHARCH_BENCH_INSTRUCTIONS", "5000", 1);
    EXPECT_EQ(envInstructions(1234), 5000u);
    ::unsetenv("SHARCH_BENCH_INSTRUCTIONS");
    EXPECT_EQ(envInstructions(1234), 1234u);

    ::setenv("SHARCH_BENCH_SEED", "not-a-seed", 1);
    EXPECT_EQ(envSeed(9), 9u);
    // Seed 0 is a legal seed, unlike an instruction count of 0.
    ::setenv("SHARCH_BENCH_SEED", "0", 1);
    EXPECT_EQ(envSeed(9), 0u);
    ::setenv("SHARCH_BENCH_SEED", "77", 1);
    EXPECT_EQ(envSeed(9), 77u);
    ::unsetenv("SHARCH_BENCH_SEED");
    EXPECT_EQ(envSeed(9), 9u);
}

TEST(StudyEngine, UnionGridConcatenatesSelectionOrder)
{
    Study *fig12 = StudyRegistry::instance().find("fig12");
    Study *fig13 = StudyRegistry::instance().find("fig13");
    ASSERT_NE(fig12, nullptr);
    ASSERT_NE(fig13, nullptr);
    const auto grid = unionGrid({fig12, fig13});
    EXPECT_EQ(grid.size(),
              fig12->grid().size() + fig13->grid().size());
}

} // namespace
