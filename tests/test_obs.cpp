/**
 * @file
 * Tests for the obs telemetry subsystem: the metrics registry (shard
 * merge determinism, histogram bucket edges), the timeline tracer
 * (ring wrap-around, track naming), and the Chrome trace-event JSON
 * export (structural well-formedness).
 *
 * The obs *library* always compiles -- only the instrumentation call
 * sites are gated behind SHARCH_OBS -- so this suite runs in every
 * build configuration.
 */

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.hh"

using namespace sharch;

namespace {

/**
 * Minimal JSON structural check: balanced braces/brackets outside
 * strings, no trailing garbage.  Enough to catch a missing comma's
 * usual symptom (unbalanced nesting) and unescaped quotes without
 * a JSON parser dependency.
 */
bool
structurallyValidJson(const std::string &doc)
{
    int depth = 0;
    bool in_string = false, escaped = false;
    for (const char c : doc) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (in_string) {
            if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        switch (c) {
          case '"':
            in_string = true;
            break;
          case '{':
          case '[':
            ++depth;
            break;
          case '}':
          case ']':
            if (--depth < 0)
                return false;
            break;
          default:
            break;
        }
    }
    return depth == 0 && !in_string;
}

/** Fresh state for each test: obs singletons are process-wide. */
void
resetObs()
{
    obs::MetricsRegistry::instance().reset();
    obs::Tracer::instance().clear();
    obs::setEnabled(false);
}

} // namespace

TEST(ObsMetrics, CounterSumsAcrossThreadsDeterministically)
{
    resetObs();
    static const obs::MetricId id =
        obs::MetricsRegistry::instance().addCounter(
            "test.obs.counter");

    // Each worker bumps from its own shard; the merged total must be
    // the plain sum no matter how the threads interleaved.
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
        workers.emplace_back([t] {
            for (int i = 0; i < 1000 + t; ++i)
                obs::MetricsRegistry::instance().add(id);
        });
    }
    for (std::thread &w : workers)
        w.join();

    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::instance().snapshot();
    const obs::MetricValue *v = snap.find("test.obs.counter");
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->kind, obs::MetricKind::Counter);
    EXPECT_EQ(v->value, 1000 + 1001 + 1002 + 1003);

    // Shards survive their threads: a second snapshot agrees.
    const obs::MetricsSnapshot again =
        obs::MetricsRegistry::instance().snapshot();
    EXPECT_EQ(again.find("test.obs.counter")->value, v->value);
}

TEST(ObsMetrics, GaugeHoldsSignedLevels)
{
    resetObs();
    static const obs::MetricId id =
        obs::MetricsRegistry::instance().addGauge("test.obs.gauge");
    obs::MetricsRegistry::instance().set(id, -7);
    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::instance().snapshot();
    EXPECT_EQ(snap.find("test.obs.gauge")->value, -7);

    // Last write on this thread wins.
    obs::MetricsRegistry::instance().set(id, 42);
    EXPECT_EQ(obs::MetricsRegistry::instance()
                  .snapshot()
                  .find("test.obs.gauge")
                  ->value,
              42);
}

TEST(ObsMetrics, HistogramBucketEdges)
{
    resetObs();
    static const obs::HistogramHandle h =
        obs::MetricsRegistry::instance().addHistogram(
            "test.obs.hist", 0.0, 10.0, 4); // [0,10) ... [30,40)
    auto &reg = obs::MetricsRegistry::instance();

    reg.observe(h, -0.001); // underflow
    reg.observe(h, 0.0);    // first bucket, inclusive lower edge
    reg.observe(h, 9.999);  // still first bucket
    reg.observe(h, 10.0);   // second bucket, exclusive upper edge
    reg.observe(h, 39.999); // last bucket
    reg.observe(h, 40.0);   // overflow, inclusive
    reg.observe(h, 1e9);    // overflow

    const obs::MetricsSnapshot snap = reg.snapshot();
    const obs::MetricValue *v = snap.find("test.obs.hist");
    ASSERT_NE(v, nullptr);
    ASSERT_EQ(v->buckets.size(), 4u);
    EXPECT_EQ(v->underflow, 1u);
    EXPECT_EQ(v->buckets[0], 2u);
    EXPECT_EQ(v->buckets[1], 1u);
    EXPECT_EQ(v->buckets[2], 0u);
    EXPECT_EQ(v->buckets[3], 1u);
    EXPECT_EQ(v->overflow, 2u);
    EXPECT_EQ(v->samples(), 7u);
}

TEST(ObsMetrics, ResetZeroesButKeepsRegistrations)
{
    resetObs();
    static const obs::MetricId id =
        obs::MetricsRegistry::instance().addCounter(
            "test.obs.reset_counter");
    obs::MetricsRegistry::instance().add(id, 5);
    obs::MetricsRegistry::instance().reset();
    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::instance().snapshot();
    const obs::MetricValue *v =
        snap.find("test.obs.reset_counter");
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->value, 0);
}

TEST(ObsTrace, RingWrapsAndCountsDropped)
{
    resetObs();
    auto &tracer = obs::Tracer::instance();
    tracer.setCapacity(8); // already a power of two

    for (std::uint64_t i = 0; i < 20; ++i)
        tracer.record({"span", "test", i, i + 1, 1, 0, 0, nullptr});

    const std::vector<obs::TraceSpan> spans = tracer.collect();
    ASSERT_EQ(spans.size(), 8u);
    EXPECT_EQ(tracer.dropped(), 12u);
    // The survivors are the 8 newest, in begin order.
    for (std::size_t i = 0; i < spans.size(); ++i)
        EXPECT_EQ(spans[i].begin, 12 + i);
}

TEST(ObsTrace, CapacityRoundsUpToPowerOfTwo)
{
    resetObs();
    auto &tracer = obs::Tracer::instance();
    tracer.setCapacity(5); // rounds to 8

    for (std::uint64_t i = 0; i < 9; ++i)
        tracer.record({"span", "test", i, i, 1, 0, 0, nullptr});
    EXPECT_EQ(tracer.collect().size(), 8u);
    EXPECT_EQ(tracer.dropped(), 1u);
}

TEST(ObsTrace, CollectSortsAcrossTracks)
{
    resetObs();
    auto &tracer = obs::Tracer::instance();
    tracer.setCapacity(64);
    tracer.record({"b", "test", 5, 6, 2, 0, 0, nullptr});
    tracer.record({"a", "test", 9, 9, 1, 1, 0, nullptr});
    tracer.record({"c", "test", 1, 2, 1, 0, 0, nullptr});

    const auto spans = tracer.collect();
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_STREQ(spans[0].name, "c"); // pid 1 before pid 2
    EXPECT_STREQ(spans[1].name, "a");
    EXPECT_STREQ(spans[2].name, "b");
}

TEST(ObsTrace, InternReturnsStablePointers)
{
    resetObs();
    auto &tracer = obs::Tracer::instance();
    const char *a = tracer.intern("gcc");
    const char *b = tracer.intern("gcc");
    const char *c = tracer.intern("mcf");
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_STREQ(c, "mcf");
}

TEST(ObsTrace, ChromeJsonIsWellFormed)
{
    resetObs();
    obs::setEnabled(true); // names the six standard processes
    auto &tracer = obs::Tracer::instance();
    tracer.setCapacity(64);
    tracer.nameTrack(obs::kPidCache, 0, "bank0");
    // A complete event with an argument, an instant, and a name that
    // needs escaping.
    tracer.record({"load \"x\"", "pipeline", 10, 25,
                   obs::kPidPipeline, 0, 3, "hops"});
    tracer.record({"fault", "fabric", 7, 7, obs::kPidFabric, 0, 0,
                   nullptr});

    std::ostringstream out;
    tracer.writeChromeTrace(out);
    const std::string doc = out.str();

    EXPECT_TRUE(structurallyValidJson(doc));
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(doc.find("\"dur\":15"), std::string::npos);
    EXPECT_NE(doc.find("\"hops\":3"), std::string::npos);
    EXPECT_NE(doc.find("load \\\"x\\\""), std::string::npos);
    EXPECT_NE(doc.find("sharch-trace-v1"), std::string::npos);
    EXPECT_NE(doc.find("pipeline (cycles)"), std::string::npos);
    resetObs();
}

TEST(ObsGating, RuntimeToggleAndCompileTimeFlag)
{
    resetObs();
    EXPECT_FALSE(obs::enabled());
    obs::setEnabled(true);
    EXPECT_TRUE(obs::enabled());
    obs::setEnabled(false);
    EXPECT_FALSE(obs::enabled());
    // compiledIn() mirrors the build flag, whatever it is here.
    EXPECT_EQ(obs::compiledIn(), SHARCH_OBS != 0);
}

TEST(ObsGating, NowMicrosIsMonotonic)
{
    const std::uint64_t a = obs::nowMicros();
    const std::uint64_t b = obs::nowMicros();
    EXPECT_GE(b, a);
}
