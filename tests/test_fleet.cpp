/**
 * @file
 * The fleet subsystem: tiered placement-index best-fit, lazy chip
 * materialization, workload-stream determinism, and the fleet
 * engine's churn/checkpoint/invariant contracts (ISSUE 10).
 */

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "area/area_model.hh"
#include "core/perf_model.hh"
#include "econ/optimizer.hh"
#include "engine/event.hh"
#include "fleet/fleet.hh"
#include "fleet/fleet_engine.hh"
#include "fleet/placement_index.hh"
#include "fleet/workload_stream.hh"
#include "study/report.hh"

using namespace sharch;
using namespace sharch::fleet;

namespace {

UtilityOptimizer &
fleetOpt()
{
    static PerfModel pm(2000, 1);
    static AreaModel am;
    static UtilityOptimizer opt(pm, am);
    return opt;
}

} // namespace

// --- PlacementIndex ------------------------------------------------

TEST(PlacementIndex, BestFitSmallestRunThenFewestBanks)
{
    PlacementIndex idx(8);
    idx.insert(0, 8, 32); // virgin-like: plenty of everything
    idx.insert(1, 4, 8);  // tight run, tight banks
    idx.insert(2, 4, 16); // tight run, more banks
    idx.insert(3, 6, 4);  // bigger run, few banks

    // Smallest adequate run tier wins, then fewest adequate banks.
    EXPECT_EQ(idx.find(4, 8), std::optional<ChipId>(1));
    EXPECT_EQ(idx.find(4, 12), std::optional<ChipId>(2));
    EXPECT_EQ(idx.find(5, 4), std::optional<ChipId>(3));
    EXPECT_EQ(idx.find(5, 8), std::optional<ChipId>(0));
    EXPECT_EQ(idx.find(8, 1), std::optional<ChipId>(0));
    // Nothing offers a 9-run or 33 banks.
    EXPECT_EQ(idx.find(9, 1), std::nullopt);
    EXPECT_EQ(idx.find(1, 33), std::nullopt);
}

TEST(PlacementIndex, TiesBreakOnLowestChipId)
{
    PlacementIndex idx(8);
    idx.insert(7, 4, 8);
    idx.insert(3, 4, 8);
    idx.insert(5, 4, 8);
    EXPECT_EQ(idx.find(4, 8), std::optional<ChipId>(3));
}

TEST(PlacementIndex, UpdateRefilesAndCountsProbes)
{
    PlacementIndex idx(8);
    idx.insert(0, 2, 2);
    EXPECT_EQ(idx.keys(0),
              (std::optional<std::pair<unsigned, unsigned>>{
                  {2u, 2u}}));
    EXPECT_EQ(idx.find(4, 1), std::nullopt);

    idx.update(0, 6, 10);
    EXPECT_EQ(idx.find(4, 1), std::optional<ChipId>(0));
    EXPECT_EQ(idx.keys(0),
              (std::optional<std::pair<unsigned, unsigned>>{
                  {6u, 10u}}));

    // Two lookups so far; a failing lookup probes every tier from
    // the request up, a hit stops at its tier.
    EXPECT_EQ(idx.lookups(), 2u);
    EXPECT_GT(idx.tierProbes(), 0u);
}

// --- Fleet ---------------------------------------------------------

TEST(Fleet, LazyMaterializationAndBestFitPacking)
{
    FleetConfig cfg;
    cfg.chips = 1000;
    Fleet fleet(fleetOpt(), cfg);
    EXPECT_EQ(fleet.materializedChips(), 0u);
    EXPECT_EQ(fleet.peek(0), nullptr);

    // Best-fit keeps filling the dirtiest adequate chip before
    // touching a virgin one: a handful of tenants stay on one chip.
    std::vector<Placement> placed;
    for (int i = 0; i < 6; ++i) {
        auto p = fleet.place(2, 2);
        ASSERT_TRUE(p.has_value());
        placed.push_back(*p);
    }
    std::set<ChipId> chips;
    for (const Placement &p : placed)
        chips.insert(p.chip);
    EXPECT_LE(chips.size(), 2u);
    EXPECT_LE(fleet.materializedChips(), 2u);

    std::string err;
    EXPECT_TRUE(fleet.checkIndex(&err)) << err;
    for (const Placement &p : placed)
        EXPECT_TRUE(fleet.release(p.chip, p.local));
    EXPECT_TRUE(fleet.checkIndex(&err)) << err;
}

TEST(Fleet, SpillsAcrossChipsWhenOneIsFull)
{
    FleetConfig cfg;
    cfg.chips = 4;
    cfg.chipWidth = 4;
    cfg.chipHeight = 2; // 4 Slices + 4 banks per chip
    Fleet fleet(fleetOpt(), cfg);

    std::set<ChipId> chips;
    for (int i = 0; i < 4; ++i) {
        auto p = fleet.place(4, 4); // one whole chip each
        ASSERT_TRUE(p.has_value());
        EXPECT_TRUE(chips.insert(p->chip).second)
            << "chip reused while full";
    }
    // The fleet is saturated now.
    EXPECT_EQ(fleet.place(1, 1), std::nullopt);
    std::string err;
    EXPECT_TRUE(fleet.checkIndex(&err)) << err;
}

TEST(Fleet, FaultsMaterializeRefileAndHeal)
{
    FleetConfig cfg;
    cfg.chips = 8;
    Fleet fleet(fleetOpt(), cfg);

    EXPECT_FALSE(
        fleet.isFaulty(3, fault::FaultKind::Slice, Coord{0, 0}));
    fleet.markFaulty(3, fault::FaultKind::Slice, Coord{0, 0});
    EXPECT_TRUE(fleet.isMaterialized(3));
    EXPECT_TRUE(
        fleet.isFaulty(3, fault::FaultKind::Slice, Coord{0, 0}));
    std::string err;
    EXPECT_TRUE(fleet.checkIndex(&err)) << err;

    EXPECT_TRUE(fleet.heal(3, fault::FaultKind::Slice, Coord{0, 0}));
    EXPECT_FALSE(
        fleet.isFaulty(3, fault::FaultKind::Slice, Coord{0, 0}));
    EXPECT_TRUE(fleet.checkIndex(&err)) << err;
    // Healing a virgin chip is a polite no-op, not a materialization.
    EXPECT_FALSE(fleet.heal(5, fault::FaultKind::Bank, Coord{0, 1}));
    EXPECT_FALSE(fleet.isMaterialized(5));
}

// --- WorkloadStream ------------------------------------------------

TEST(WorkloadStream, TenantIsAPureFunctionOfSeedAndIndex)
{
    WorkloadConfig cfg;
    cfg.seed = 42;
    const WorkloadStream a(cfg);
    const WorkloadStream b(cfg);

    // Same (index, prev) in any evaluation order: same tenant.
    const FleetTenant t5 = a.tenant(5, 12345);
    const FleetTenant t2 = a.tenant(2, 999);
    EXPECT_EQ(b.tenant(2, 999).at, t2.at);
    const FleetTenant t5again = b.tenant(5, 12345);
    EXPECT_EQ(t5again.at, t5.at);
    EXPECT_EQ(t5again.name, t5.name);
    EXPECT_EQ(t5again.slices, t5.slices);
    EXPECT_EQ(t5again.banks, t5.banks);
    EXPECT_EQ(t5again.benchmark, t5.benchmark);
    EXPECT_EQ(t5again.lifetime, t5.lifetime);
    EXPECT_DOUBLE_EQ(t5again.budget, t5.budget);
}

TEST(WorkloadStream, DrawsStayInConfiguredRanges)
{
    WorkloadConfig cfg;
    cfg.seed = 7;
    const WorkloadStream s(cfg);
    Cycles prev = 0;
    for (std::uint64_t i = 0; i < 500; ++i) {
        const FleetTenant t = s.tenant(i, prev);
        EXPECT_GT(t.at, prev) << "arrivals must advance";
        EXPECT_GE(t.slices, 1u);
        EXPECT_LE(t.slices, cfg.maxSlices);
        EXPECT_GE(t.banks, 1u);
        EXPECT_LE(t.banks, cfg.maxBanks);
        EXPECT_GE(t.lifetime, Cycles{1});
        EXPECT_GE(t.budget, cfg.minBudget);
        EXPECT_LE(t.budget, cfg.maxBudget);
        EXPECT_EQ(t.name, WorkloadStream::tenantName(i));
        prev = t.at;
    }
}

TEST(WorkloadStream, SeedSelectsADifferentTrajectory)
{
    WorkloadConfig a, b;
    a.seed = 1;
    b.seed = 2;
    const WorkloadStream sa(a), sb(b);
    bool differs = false;
    Cycles prevA = 0, prevB = 0;
    for (std::uint64_t i = 0; i < 32 && !differs; ++i) {
        const FleetTenant ta = sa.tenant(i, prevA);
        const FleetTenant tb = sb.tenant(i, prevB);
        differs = ta.at != tb.at || ta.slices != tb.slices ||
                  ta.benchmark != tb.benchmark;
        prevA = ta.at;
        prevB = tb.at;
    }
    EXPECT_TRUE(differs);
}

// --- FleetEngine ---------------------------------------------------

namespace {

FleetEngineConfig
smallFleet()
{
    FleetEngineConfig cfg;
    cfg.fleet.chips = 32;
    cfg.epochPeriod = 10000;
    return cfg;
}

WorkloadConfig
fastChurn(std::uint64_t seed)
{
    WorkloadConfig w;
    w.seed = seed;
    w.meanGap = 150.0;
    w.meanLifetime = 30000.0;
    w.dayLength = 1 << 16;
    return w;
}

} // namespace

TEST(FleetEngine, StreamChurnClosesItsBooks)
{
    FleetEngine eng(fleetOpt(), smallFleet());
    const WorkloadStream stream(fastChurn(11));
    eng.startStream(stream, 600);
    eng.run();

    const engine::EngineStats &s = eng.stats();
    EXPECT_EQ(s.arrivals, 600u);
    EXPECT_EQ(s.admitted + s.rejected, s.arrivals);
    // Every admitted tenant's lifetime elapsed inside the horizon:
    // the books are closed.
    EXPECT_EQ(s.departures, s.admitted);
    EXPECT_TRUE(eng.leases().empty());
    EXPECT_EQ(eng.leasedSlices(), 0u);
    EXPECT_EQ(s.unmatchedDeparts, 0u);
    EXPECT_GT(s.epochs, 0u);
    EXPECT_FALSE(eng.samples().empty());

    std::string err;
    EXPECT_TRUE(eng.checkInvariants(&err)) << err;
}

TEST(FleetEngine, MidStreamCheckpointResumesByteIdentically)
{
    const WorkloadStream stream(fastChurn(23));

    FleetEngine full(fleetOpt(), smallFleet());
    full.startStream(stream, 400);
    full.post(engine::checkpoint(30000, "mid-stream"));
    full.run();
    ASSERT_FALSE(full.lastCheckpoint().empty());
    EXPECT_GT(full.stats().processed, 800u);

    FleetEngine resumed(fleetOpt(), smallFleet());
    std::string err;
    ASSERT_TRUE(resumed.restoreState(full.lastCheckpoint(), &err))
        << err;
    EXPECT_TRUE(resumed.checkInvariants(&err)) << err;
    resumed.resumeStream(stream);
    resumed.run();

    EXPECT_EQ(study::renderJson(resumed.finalReport()),
              study::renderJson(full.finalReport()));
    EXPECT_EQ(resumed.saveState(), full.saveState());
}

TEST(FleetEngine, RejectsSingleChipEventsAndForeignStates)
{
    FleetEngine eng(fleetOpt(), smallFleet());
    const engine::EventOutcome out = eng.execute(engine::tenantArrive(
        0, "t", "gcc", UtilityKind::Throughput, 0.0, 2, 2));
    EXPECT_FALSE(out.applied);
    EXPECT_NE(out.detail.find("single-chip"), std::string::npos);

    // A chip-engine state document must be refused by kind.
    std::string err;
    EXPECT_FALSE(eng.restoreState(
        "{\"schema\":\"sharch-state-v1\",\"kind\":\"chip\"}", &err));
    EXPECT_NE(err.find("fleet"), std::string::npos);
}

TEST(FleetEngine, FaultEvictionIsReplacedAcrossChips)
{
    FleetEngineConfig cfg;
    cfg.fleet.chips = 4;
    cfg.fleet.chipWidth = 4;
    cfg.fleet.chipHeight = 2; // 4 Slices + 4 banks per chip
    FleetEngine eng(fleetOpt(), cfg);

    // One budget-less tenant filling chip 0 edge to edge.
    engine::EventOutcome out = eng.execute(engine::fleetArrive(
        0, "whale", "", UtilityKind::Throughput, 0.0, 4, 2, 0));
    ASSERT_TRUE(out.applied);
    ASSERT_EQ(eng.leases().size(), 1u);
    EXPECT_EQ(eng.leases().begin()->second.chip, 0u);

    // Strike every Slice of chip 0: nothing can shrink-fit, so the
    // tenant is evicted there -- and re-placed on another chip.
    std::vector<fault::FaultEvent> strikes;
    for (int c = 0; c < 4; ++c)
        strikes.push_back(fault::FaultEvent{
            100 + static_cast<Cycles>(c), fault::FaultKind::Slice,
            Coord{c, 0}, false});
    eng.postFaultSchedule(0, strikes);
    eng.run();

    EXPECT_EQ(eng.stats().faults, 4u);
    EXPECT_EQ(eng.stats().evictions, 0u)
        << "the fleet-level second chance must absorb the eviction";
    EXPECT_EQ(eng.replacedAcrossChips(), 1u);
    ASSERT_EQ(eng.leases().size(), 1u);
    const FleetLease &lease = eng.leases().begin()->second;
    EXPECT_NE(lease.chip, 0u);
    // Graceful degradation shrank the run strike by strike (4 -> 3
    // -> 2 -> 1) before the final strike evicted the remnant, so the
    // re-placed lease carries its degraded 1-Slice shape.
    EXPECT_EQ(lease.slices, 1u);

    std::string err;
    EXPECT_TRUE(eng.checkInvariants(&err)) << err;
}

TEST(FleetEngine, BoundedQueueRefusesAndKeepsServing)
{
    FleetEngineConfig cfg = smallFleet();
    cfg.maxPending = 2;
    FleetEngine eng(fleetOpt(), cfg);

    ASSERT_TRUE(eng.post(engine::epochAuction(10)).has_value());
    ASSERT_TRUE(eng.post(engine::epochAuction(20)).has_value());
    EXPECT_FALSE(eng.post(engine::epochAuction(30)).has_value());
    eng.run();
    EXPECT_EQ(eng.stats().epochs, 2u);
    // Draining the queue frees capacity again.
    EXPECT_TRUE(eng.post(engine::epochAuction(40)).has_value());
    eng.run();
    EXPECT_EQ(eng.stats().epochs, 3u);
}
