/**
 * @file
 * Tests for the parallel sweep subsystem: thread pool, per-job seed
 * derivation, CLI parsing, and -- the load-bearing guarantee -- that a
 * sweep run with N worker threads is bit-identical to the serial run,
 * both in IPC values and in the CSV disk-cache contents.
 */

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <initializer_list>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/perf_model.hh"
#include "exec/run_options.hh"
#include "exec/sweep.hh"
#include "exec/thread_pool.hh"

using namespace sharch;
using namespace sharch::exec;

namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

RunOptions
parse(std::initializer_list<const char *> args)
{
    std::vector<const char *> argv = {"ssim"};
    argv.insert(argv.end(), args.begin(), args.end());
    return parseRunOptions(static_cast<int>(argv.size()), argv.data());
}

} // namespace

TEST(ThreadPool, RunsEveryJob)
{
    for (unsigned threads : {1u, 4u}) {
        ThreadPool pool(threads);
        std::atomic<int> count{0};
        for (int i = 0; i < 100; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), 100);
    }
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { ++count; });
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(JobSeed, IsPureFunctionOfIdentity)
{
    const std::uint64_t a = deriveJobSeed(1, "gcc", 2, 4);
    EXPECT_EQ(a, deriveJobSeed(1, "gcc", 2, 4));
    // Every component of the identity must matter.
    EXPECT_NE(a, deriveJobSeed(2, "gcc", 2, 4));
    EXPECT_NE(a, deriveJobSeed(1, "mcf", 2, 4));
    EXPECT_NE(a, deriveJobSeed(1, "gcc", 4, 4));
    EXPECT_NE(a, deriveJobSeed(1, "gcc", 2, 2));
    EXPECT_NE(a, 0u);
}

TEST(JobSeed, GridPointsAreDistinct)
{
    std::set<std::uint64_t> seeds;
    for (unsigned b : l2BankGrid())
        for (unsigned s = 1; s <= 8; ++s)
            seeds.insert(deriveJobSeed(1, "gcc", b, s));
    EXPECT_EQ(seeds.size(), l2BankGrid().size() * 8);
}

TEST(Threads, RequestedCountWins)
{
    EXPECT_EQ(resolveThreadCount(3), 3u);
    EXPECT_GE(resolveThreadCount(0), 1u);
}

TEST(Threads, EnvControlsDefault)
{
    ::setenv("SHARCH_THREADS", "5", 1);
    EXPECT_EQ(resolveThreadCount(), 5u);
    ::setenv("SHARCH_THREADS", "zero", 1);
    EXPECT_GE(resolveThreadCount(), 1u); // malformed: fall through
    ::unsetenv("SHARCH_THREADS");
}

TEST(SweepGrid, RowMajorOrderAndHelpers)
{
    const auto grid = sweepGrid({std::string("gcc"), "mcf"}, {0, 2},
                                sliceRange(2));
    ASSERT_EQ(grid.size(), 8u);
    EXPECT_EQ(grid[0].profile.name, "gcc");
    EXPECT_EQ(grid[0].banks, 0u);
    EXPECT_EQ(grid[0].slices, 1u);
    EXPECT_EQ(grid[1].slices, 2u);
    EXPECT_EQ(grid[2].banks, 2u);
    EXPECT_EQ(grid[4].profile.name, "mcf");
    EXPECT_TRUE(grid[0].sameConfigAs(grid[0]));
    EXPECT_FALSE(grid[0].sameConfigAs(grid[1]));
}

TEST(SweepRunner, ResultsFollowInputOrderAndDedup)
{
    std::vector<SweepPoint> points = sweepGrid(
        {std::string("gcc")}, {0, 1}, sliceRange(2));
    points.push_back(points.front()); // duplicate config
    std::atomic<int> evals{0};
    SweepRunner runner(4);
    EXPECT_EQ(runner.threads(), 4u);
    const auto values =
        runner.run(points, [&evals](const SweepPoint &pt) {
            ++evals;
            return pt.banks * 100.0 + pt.slices;
        });
    ASSERT_EQ(values.size(), 5u);
    EXPECT_DOUBLE_EQ(values[0], 1.0);
    EXPECT_DOUBLE_EQ(values[1], 2.0);
    EXPECT_DOUBLE_EQ(values[2], 101.0);
    EXPECT_DOUBLE_EQ(values[3], 102.0);
    EXPECT_DOUBLE_EQ(values[4], values[0]); // fanned-out duplicate
    EXPECT_EQ(evals.load(), 4);             // evaluated once
}

TEST(CliParse, LegacyPositionalFormStillWorks)
{
    const RunOptions o =
        parse({"gcc", "tools/configs/big_vcore.xml", "5000"});
    ASSERT_TRUE(o.ok()) << o.error;
    EXPECT_EQ(o.benchmark, "gcc");
    EXPECT_EQ(o.configPath, "tools/configs/big_vcore.xml");
    EXPECT_EQ(o.instructions, 5000u);
    EXPECT_FALSE(o.isSweep());
}

TEST(CliParse, LegacyPositionalFormWarnsDeprecation)
{
    // Positional config/instructions still parse but carry a
    // one-line warning naming the named-flag equivalents.
    const RunOptions legacy = parse({"gcc", "cfg.xml", "5000"});
    ASSERT_TRUE(legacy.ok()) << legacy.error;
    EXPECT_NE(legacy.deprecationWarning.find("deprecated"),
              std::string::npos);
    EXPECT_NE(legacy.deprecationWarning.find("--config"),
              std::string::npos);
    EXPECT_NE(legacy.deprecationWarning.find("--instructions"),
              std::string::npos);

    // The benchmark positional itself is fine, flags are fine.
    EXPECT_TRUE(parse({"gcc"}).deprecationWarning.empty());
    EXPECT_TRUE(parse({"gcc", "--config", "cfg.xml",
                       "--instructions", "5000"})
                    .deprecationWarning.empty());
}

TEST(CliParse, SharedFlagsErrorIdenticallyAcrossBinaries)
{
    // ssim, sharch-bench, and sharch-serve parse
    // --instructions/--seed/--threads through one spec table;
    // malformed values must produce byte-identical messages.
    const char *runArgv[] = {"ssim", "gcc", "--threads", "0"};
    const char *benchArgv[] = {"sharch-bench", "fig13", "--threads",
                               "0"};
    const char *serveArgv[] = {"sharch-serve", "--threads", "0"};
    const RunOptions r = parseRunOptions(4, runArgv);
    const BenchOptions b = parseBenchOptions(4, benchArgv);
    const ServeOptions s = parseServeOptions(3, serveArgv);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error, b.error);
    EXPECT_EQ(r.error, s.error);
    EXPECT_EQ(r.error, "bad --threads '0' (want 1..4096)");

    const char *runSeed[] = {"ssim", "gcc", "--seed", "x"};
    const char *benchSeed[] = {"sharch-bench", "fig13", "--seed",
                               "x"};
    const char *serveSeed[] = {"sharch-serve", "--seed", "x"};
    EXPECT_EQ(parseRunOptions(4, runSeed).error,
              parseBenchOptions(4, benchSeed).error);
    EXPECT_EQ(parseRunOptions(4, runSeed).error,
              parseServeOptions(3, serveSeed).error);
    EXPECT_EQ(parseRunOptions(4, runSeed).error, "bad --seed 'x'");

    const char *runInstr[] = {"ssim", "gcc", "--instructions", "0"};
    const char *serveInstr[] = {"sharch-serve", "--instructions",
                                "0"};
    EXPECT_EQ(parseRunOptions(4, runInstr).error,
              parseServeOptions(3, serveInstr).error);
    EXPECT_EQ(parseRunOptions(4, runInstr).error,
              "bad --instructions '0'");

    const char *runMode[] = {"ssim", "gcc", "--trace-mode", "eager"};
    const char *benchMode[] = {"sharch-bench", "fig13", "--trace-mode",
                               "eager"};
    const char *serveMode[] = {"sharch-serve", "--trace-mode",
                               "eager"};
    EXPECT_EQ(parseRunOptions(4, runMode).error,
              parseBenchOptions(4, benchMode).error);
    EXPECT_EQ(parseRunOptions(4, runMode).error,
              parseServeOptions(3, serveMode).error);
    EXPECT_EQ(parseRunOptions(4, runMode).error,
              "bad --trace-mode 'eager' (want stream or materialize)");
}

TEST(CliParse, TraceModeFlagReachesAllBinaries)
{
    // Default is streaming everywhere; --trace-mode switches all
    // three binaries through the shared spec table.
    const char *runDefault[] = {"ssim", "gcc"};
    EXPECT_EQ(parseRunOptions(2, runDefault).traceMode,
              TraceMode::Stream);
    const char *serveDefault[] = {"sharch-serve"};
    EXPECT_EQ(parseServeOptions(1, serveDefault).traceMode,
              TraceMode::Stream);
    const char *benchDefault[] = {"sharch-bench", "fig13"};
    EXPECT_EQ(parseBenchOptions(2, benchDefault).traceMode,
              TraceMode::Stream);

    const char *runMat[] = {"ssim", "gcc", "--trace-mode",
                            "materialize"};
    const RunOptions r = parseRunOptions(4, runMat);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.traceMode, TraceMode::Materialize);

    const char *benchMat[] = {"sharch-bench", "fig13", "--trace-mode",
                              "materialize"};
    const BenchOptions b = parseBenchOptions(4, benchMat);
    ASSERT_TRUE(b.ok()) << b.error;
    EXPECT_EQ(b.traceMode, TraceMode::Materialize);

    const char *serveMat[] = {"sharch-serve", "--trace-mode",
                              "materialize"};
    const ServeOptions s = parseServeOptions(3, serveMat);
    ASSERT_TRUE(s.ok()) << s.error;
    EXPECT_EQ(s.traceMode, TraceMode::Materialize);

    const char *runStream[] = {"ssim", "gcc", "--trace-mode",
                               "stream"};
    EXPECT_EQ(parseRunOptions(4, runStream).traceMode,
              TraceMode::Stream);
}

TEST(CliParse, SampleFlagErrorsIdenticallyAcrossBinaries)
{
    // --sample rides the same shared spec table; malformed schedules
    // must error byte-identically from all three binaries.
    const char *runBad[] = {"ssim", "gcc", "--sample", "1000:250"};
    const char *benchBad[] = {"sharch-bench", "fig13", "--sample",
                              "1000:250"};
    const char *serveBad[] = {"sharch-serve", "--sample", "1000:250"};
    const RunOptions r = parseRunOptions(4, runBad);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error, parseBenchOptions(4, benchBad).error);
    EXPECT_EQ(r.error, parseServeOptions(3, serveBad).error);
    EXPECT_EQ(r.error,
              "bad --sample '1000:250' "
              "(want U:W:M instruction counts, measure >= 1)");

    // A zero measure window is rejected with the same message.
    const char *runZero[] = {"ssim", "gcc", "--sample", "1000:250:0"};
    const char *serveZero[] = {"sharch-serve", "--sample",
                               "1000:250:0"};
    EXPECT_EQ(parseRunOptions(4, runZero).error,
              parseServeOptions(3, serveZero).error);
    EXPECT_EQ(parseRunOptions(4, runZero).error,
              "bad --sample '1000:250:0' "
              "(want U:W:M instruction counts, measure >= 1)");

    // Signs, garbage suffixes, and extra fields are all malformed.
    for (const char *bad :
         {"-1:250:750", "1000:250:750:9", "1000:250:75x", "a:b:c",
          ""}) {
        const char *argvBad[] = {"ssim", "gcc", "--sample", bad};
        EXPECT_FALSE(parseRunOptions(4, argvBad).ok()) << bad;
    }
}

TEST(CliParse, SampleFlagReachesAllBinaries)
{
    // Default everywhere: sampling off (full detailed timing).
    const char *runDefault[] = {"ssim", "gcc"};
    EXPECT_FALSE(parseRunOptions(2, runDefault).sampleSet);
    const char *benchDefault[] = {"sharch-bench", "fig13"};
    EXPECT_FALSE(parseBenchOptions(2, benchDefault).sampleSet);
    const char *serveDefault[] = {"sharch-serve"};
    EXPECT_FALSE(parseServeOptions(1, serveDefault).sampleSet);

    const SampleSchedule want{12000, 2000, 2000};
    const char *runS[] = {"ssim", "gcc", "--sample", "12000:2000:2000"};
    const RunOptions r = parseRunOptions(4, runS);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.sampleSet);
    EXPECT_EQ(r.sample, want);

    const char *benchS[] = {"sharch-bench", "fig13", "--sample",
                            "12000:2000:2000"};
    const BenchOptions b = parseBenchOptions(4, benchS);
    ASSERT_TRUE(b.ok()) << b.error;
    EXPECT_TRUE(b.sampleSet);
    EXPECT_EQ(b.sample, want);

    const char *serveS[] = {"sharch-serve", "--sample",
                            "12000:2000:2000"};
    const ServeOptions s = parseServeOptions(3, serveS);
    ASSERT_TRUE(s.ok()) << s.error;
    EXPECT_TRUE(s.sampleSet);
    EXPECT_EQ(s.sample, want);

    // Round-trip: the canonical spelling re-parses to itself.
    SampleSchedule again;
    ASSERT_TRUE(parseSampleSchedule(sampleScheduleName(want), &again));
    EXPECT_EQ(again, want);
}

TEST(ServeParse, FlagsAndDefaults)
{
    const char *defaults[] = {"sharch-serve"};
    ServeOptions o = parseServeOptions(1, defaults);
    ASSERT_TRUE(o.ok()) << o.error;
    EXPECT_EQ(o.instructions, 2000u);
    EXPECT_EQ(o.seed, 1u);
    EXPECT_EQ(o.fabricWidth, 8);
    EXPECT_EQ(o.fabricHeight, 8);
    EXPECT_TRUE(o.restorePath.empty());

    const char *argv[] = {"sharch-serve", "--instructions", "4000",
                          "--seed",       "9",              "--fabric",
                          "16x4",         "--restore",      "s.json"};
    o = parseServeOptions(9, argv);
    ASSERT_TRUE(o.ok()) << o.error;
    EXPECT_EQ(o.instructions, 4000u);
    EXPECT_EQ(o.seed, 9u);
    EXPECT_EQ(o.fabricWidth, 16);
    EXPECT_EQ(o.fabricHeight, 4);
    EXPECT_EQ(o.restorePath, "s.json");

    const char *badFabric[] = {"sharch-serve", "--fabric", "16"};
    EXPECT_FALSE(parseServeOptions(3, badFabric).ok());
    const char *unknown[] = {"sharch-serve", "positional"};
    EXPECT_FALSE(parseServeOptions(2, unknown).ok());
}

TEST(CliParse, NamedFlags)
{
    const RunOptions o = parse({"mcf", "--instructions", "2000",
                                "--slices", "1,2,4", "--banks", "0,8",
                                "--seed", "7", "--threads", "2",
                                "--json"});
    ASSERT_TRUE(o.ok()) << o.error;
    EXPECT_EQ(o.benchmark, "mcf");
    EXPECT_EQ(o.instructions, 2000u);
    EXPECT_EQ(o.slices, (std::vector<unsigned>{1, 2, 4}));
    EXPECT_EQ(o.banks, (std::vector<unsigned>{0, 8}));
    EXPECT_TRUE(o.seedSet);
    EXPECT_EQ(o.seed, 7u);
    EXPECT_EQ(o.threads, 2u);
    EXPECT_TRUE(o.json);
    EXPECT_TRUE(o.isSweep());
}

TEST(CliParse, MalformedNumbersAreErrorsNotExceptions)
{
    // The historical CLI let std::stoul throw on this.
    EXPECT_FALSE(parse({"gcc", "cfg.xml", "lots"}).ok());
    EXPECT_FALSE(parse({"gcc", "--instructions", "12x"}).ok());
    EXPECT_FALSE(parse({"gcc", "--instructions", "0"}).ok());
    EXPECT_FALSE(parse({"gcc", "--slices", "1,,2"}).ok());
    EXPECT_FALSE(parse({"gcc", "--slices", "-3"}).ok());
    EXPECT_FALSE(parse({"gcc", "--seed"}).ok());
    EXPECT_FALSE(parse({"gcc", "--threads", "0"}).ok());
    EXPECT_FALSE(parse({"gcc", "--frobnicate"}).ok());
    EXPECT_FALSE(parse({}).ok());
    EXPECT_FALSE(parse({"gcc", "a.xml", "1", "extra"}).ok());
}

TEST(CliParse, HelpersRejectGarbage)
{
    std::uint64_t v = 0;
    EXPECT_TRUE(parseU64("42", &v));
    EXPECT_EQ(v, 42u);
    EXPECT_FALSE(parseU64("", &v));
    EXPECT_FALSE(parseU64("-1", &v));
    EXPECT_FALSE(parseU64("4 2", &v));
    EXPECT_FALSE(parseU64("99999999999999999999999", &v));
    std::vector<unsigned> list;
    EXPECT_TRUE(parseCountList("0,2,128", &list));
    EXPECT_EQ(list, (std::vector<unsigned>{0, 2, 128}));
    EXPECT_FALSE(parseCountList("", &list));
    EXPECT_FALSE(parseCountList("1,", &list));
    EXPECT_FALSE(parseCountList("a,b", &list));
}

TEST(BenchParse, ListRunAndFormats)
{
    const char *argv1[] = {"sharch-bench", "--list"};
    BenchOptions o = parseBenchOptions(2, argv1);
    ASSERT_TRUE(o.ok()) << o.error;
    EXPECT_TRUE(o.list);
    EXPECT_TRUE(o.patterns.empty());

    const char *argv2[] = {"sharch-bench", "--run", "fig*,tab1",
                           "--format", "json", "--out", "reports",
                           "--instructions", "2000", "--seed", "7",
                           "--threads", "2"};
    o = parseBenchOptions(13, argv2);
    ASSERT_TRUE(o.ok()) << o.error;
    EXPECT_EQ(o.patterns,
              (std::vector<std::string>{"fig*", "tab1"}));
    EXPECT_EQ(o.format, "json");
    EXPECT_EQ(o.outDir, "reports");
    EXPECT_EQ(o.instructions, 2000u);
    EXPECT_TRUE(o.seedSet);
    EXPECT_EQ(o.seed, 7u);
    EXPECT_EQ(o.threads, 2u);

    // Bare positionals are patterns too.
    const char *argv3[] = {"sharch-bench", "fig13"};
    o = parseBenchOptions(2, argv3);
    ASSERT_TRUE(o.ok()) << o.error;
    EXPECT_EQ(o.patterns, (std::vector<std::string>{"fig13"}));
}

TEST(BenchParse, Rejections)
{
    const char *none[] = {"sharch-bench"};
    EXPECT_FALSE(parseBenchOptions(1, none).ok());
    const char *fmt[] = {"sharch-bench", "--run", "fig13",
                         "--format", "yaml"};
    EXPECT_FALSE(parseBenchOptions(5, fmt).ok());
    const char *instr[] = {"sharch-bench", "--run", "fig13",
                           "--instructions", "0"};
    EXPECT_FALSE(parseBenchOptions(5, instr).ok());
    const char *thr[] = {"sharch-bench", "--run", "fig13",
                         "--threads", "junk"};
    EXPECT_FALSE(parseBenchOptions(5, thr).ok());
    const char *flag[] = {"sharch-bench", "--frobnicate"};
    EXPECT_FALSE(parseBenchOptions(2, flag).ok());
}

TEST(Determinism, ParallelSweepMatchesSerialBitwise)
{
    // The acceptance criterion in miniature: same grid, 1 worker vs 4,
    // byte-identical IPC values and CSV cache contents.  The grid
    // includes a multithreaded workload (dedup) so the coherence path
    // is covered too.
    const auto grid = sweepGrid({std::string("gcc"), "hmmer", "dedup"},
                                {0, 2}, sliceRange(2));
    const std::string pathSerial = "test_exec_serial.csv";
    const std::string pathParallel = "test_exec_parallel.csv";
    std::filesystem::remove(pathSerial);
    std::filesystem::remove(pathParallel);

    PerfModel serial(2000);
    serial.enableDiskCache(pathSerial);
    const auto a = serial.performanceBatch(grid, 1);

    PerfModel parallel(2000);
    parallel.enableDiskCache(pathParallel);
    const auto b = parallel.performanceBatch(grid, 4);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].banks, b[i].banks);
        EXPECT_EQ(a[i].slices, b[i].slices);
        // Bitwise, not approximate: determinism is the contract.
        EXPECT_EQ(a[i].ipc, b[i].ipc)
            << a[i].name << " " << a[i].banks << " " << a[i].slices;
        EXPECT_TRUE(a[i].fresh);
    }
    EXPECT_EQ(slurp(pathSerial), slurp(pathParallel));
    EXPECT_FALSE(slurp(pathSerial).empty());
    std::filesystem::remove(pathSerial);
    std::filesystem::remove(pathParallel);
}

TEST(ThreadPool, ThrowingJobDoesNotKillWorkers)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 20; ++i) {
        pool.submit([&count, i] {
            if (i % 5 == 0)
                throw std::runtime_error("job " + std::to_string(i));
            ++count;
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 16); // every non-throwing job still ran
    EXPECT_EQ(pool.pendingExceptions(), 4u);
    const auto errors = pool.takeExceptions();
    ASSERT_EQ(errors.size(), 4u);
    EXPECT_EQ(pool.pendingExceptions(), 0u); // ownership transferred
    for (const std::exception_ptr &e : errors)
        EXPECT_THROW(std::rethrow_exception(e), std::runtime_error);

    // The pool is still serviceable after the failures.
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 17);
}

TEST(SweepRunner, ThrowingEvaluatorCompletesRemainingPoints)
{
    // One poisoned point must not abort the batch: every other point
    // still evaluates, and the failure surfaces afterwards as the
    // first failing point in *input* order.
    const auto points = sweepGrid({std::string("gcc")}, {0, 1, 2, 4},
                                  sliceRange(2));
    for (unsigned threads : {1u, 4u}) {
        std::atomic<int> evals{0};
        SweepRunner runner(threads);
        EXPECT_THROW(
            runner.run(points,
                       [&evals](const SweepPoint &pt) {
                           ++evals;
                           if (pt.banks == 1 && pt.slices == 2)
                               throw std::runtime_error("poisoned");
                           return 1.0;
                       }),
            std::runtime_error);
        EXPECT_EQ(evals.load(), static_cast<int>(points.size()));
    }
}

TEST(SweepRunner, RunWithStatusReportsEveryPoint)
{
    const auto points =
        sweepGrid({std::string("gcc")}, {0, 2}, sliceRange(2));
    SweepRunner runner(2);
    const auto status = runner.runWithStatus(
        points, [](const SweepPoint &pt, unsigned) {
            if (pt.slices == 2)
                throw std::runtime_error("slice-2 is cursed");
            return pt.banks + 0.5;
        });
    ASSERT_EQ(status.size(), points.size());
    for (std::size_t i = 0; i < status.size(); ++i) {
        if (points[i].slices == 2) {
            EXPECT_FALSE(status[i].ok);
            EXPECT_EQ(status[i].error, "slice-2 is cursed");
            EXPECT_EQ(status[i].attempts, 1u);
        } else {
            EXPECT_TRUE(status[i].ok);
            EXPECT_EQ(status[i].error, "");
            EXPECT_DOUBLE_EQ(status[i].value, points[i].banks + 0.5);
        }
    }
}

TEST(SweepRunner, RetrySucceedsOnSecondAttempt)
{
    const auto points =
        sweepGrid({std::string("mcf")}, {0}, sliceRange(2));
    SweepRunner runner(2);
    const auto status = runner.runWithStatus(
        points,
        [](const SweepPoint &pt, unsigned attempt) {
            if (pt.slices == 1 && attempt == 0)
                throw std::runtime_error("transient");
            return 7.0 + attempt;
        },
        3);
    ASSERT_EQ(status.size(), 2u);
    EXPECT_TRUE(status[0].ok);
    EXPECT_EQ(status[0].attempts, 2u); // failed once, then recovered
    EXPECT_DOUBLE_EQ(status[0].value, 8.0);
    EXPECT_TRUE(status[1].ok);
    EXPECT_EQ(status[1].attempts, 1u);
    EXPECT_DOUBLE_EQ(status[1].value, 7.0);
}

TEST(SweepRunner, RetryExhaustionKeepsLastError)
{
    const auto points =
        sweepGrid({std::string("mcf")}, {0}, sliceRange(1));
    SweepRunner runner(1);
    const auto status = runner.runWithStatus(
        points,
        [](const SweepPoint &, unsigned attempt) -> double {
            throw std::runtime_error("attempt " +
                                     std::to_string(attempt));
        },
        3);
    ASSERT_EQ(status.size(), 1u);
    EXPECT_FALSE(status[0].ok);
    EXPECT_EQ(status[0].attempts, 3u);
    EXPECT_EQ(status[0].error, "attempt 2"); // the last failure
    EXPECT_DOUBLE_EQ(status[0].value, 0.0);
}

TEST(RetrySeed, FirstAttemptMatchesJobSeed)
{
    // Attempt 0 must be the historical seed, so a retry-capable sweep
    // that never actually retries stays bit-identical.
    EXPECT_EQ(deriveRetrySeed(1, "gcc", 2, 4, 0),
              deriveJobSeed(1, "gcc", 2, 4));
    std::set<std::uint64_t> seeds;
    for (unsigned attempt = 0; attempt < 8; ++attempt)
        seeds.insert(deriveRetrySeed(1, "gcc", 2, 4, attempt));
    EXPECT_EQ(seeds.size(), 8u); // each retry gets a fresh stream
    EXPECT_NE(deriveRetrySeed(1, "gcc", 2, 4, 1),
              deriveRetrySeed(1, "mcf", 2, 4, 1));
}

TEST(CliParse, RangeSyntaxAndBounds)
{
    const RunOptions o = parse({"gcc", "--slices", "1-8"});
    ASSERT_TRUE(o.ok()) << o.error;
    EXPECT_EQ(o.slices, (std::vector<unsigned>{1, 2, 3, 4, 5, 6, 7,
                                               8}));
    const RunOptions mixed = parse({"gcc", "--banks", "0,2-4,128"});
    ASSERT_TRUE(mixed.ok()) << mixed.error;
    EXPECT_EQ(mixed.banks, (std::vector<unsigned>{0, 2, 3, 4, 128}));

    EXPECT_FALSE(parse({"gcc", "--slices", "8-1"}).ok()); // reversed
    EXPECT_FALSE(parse({"gcc", "--slices", "0"}).ok());   // < 1
    EXPECT_FALSE(parse({"gcc", "--slices", "9"}).ok());   // > 8
    EXPECT_FALSE(parse({"gcc", "--slices", "1-9"}).ok());
    EXPECT_FALSE(parse({"gcc", "--banks", "129"}).ok());  // > 128
    EXPECT_TRUE(parse({"gcc", "--banks", "0"}).ok()); // 0 KB is legal
}

TEST(CliParse, FaultFlags)
{
    const RunOptions o = parse({"--inject-faults", "slice:0:3",
                                "--fabric", "4x6"});
    ASSERT_TRUE(o.ok()) << o.error; // no benchmark needed for replay
    EXPECT_EQ(o.faultSpec, "slice:0:3");
    EXPECT_EQ(o.fabricWidth, 4);
    EXPECT_EQ(o.fabricHeight, 6);

    const RunOptions defaults = parse({"gcc"});
    EXPECT_EQ(defaults.fabricWidth, 8);
    EXPECT_EQ(defaults.fabricHeight, 8);
    EXPECT_TRUE(defaults.faultSpec.empty());

    EXPECT_FALSE(parse({"--fabric", "4x6"}).ok()); // still needs one
    EXPECT_FALSE(parse({"gcc", "--fabric", "8"}).ok());
    EXPECT_FALSE(parse({"gcc", "--fabric", "0x8"}).ok());
    EXPECT_FALSE(parse({"gcc", "--fabric", "8x1"}).ok());
    EXPECT_FALSE(parse({"gcc", "--fabric", "8xten"}).ok());
    EXPECT_FALSE(parse({"gcc", "--inject-faults"}).ok());
}

TEST(DiskCache, CorruptRowsAreRejected)
{
    const std::string path = "test_exec_corrupt_cache.csv";
    std::filesystem::remove(path);
    {
        std::ofstream out(path);
        // Matching (instructions=2000, seed=1) rows with sentinel
        // values a simulation would never produce, plus corruption.
        out << "gcc,2000,1,2,4,123.5\n";        // good
        out << "gcc,2000,1,2,5,nan\n";          // non-finite
        out << "gcc,2000,1,2,6,-1.0\n";         // negative
        out << "gcc,2000,1,2,9,123.5\n";        // slices > 8
        out << "gcc,2000,1,200,4,123.5\n";      // banks > 128
        out << "gcc,2000,1,2,0,123.5\n";        // slices < 1
        out << "not,a,row\n";                   // garbage
        out << "mcf,2000,1,4,4,456.5\n";        // good
        out << "mcf,2000,1,4";                  // truncated final row
    }
    PerfModel pm(2000, 1);
    pm.enableDiskCache(path);
    // The good rows are served from the cache (sentinel values prove
    // no simulation happened)...
    EXPECT_DOUBLE_EQ(pm.performance("gcc", 2, 4), 123.5);
    EXPECT_DOUBLE_EQ(pm.performance("mcf", 4, 4), 456.5);
    // ...while the poisoned configurations fall back to simulation.
    const double resim = pm.performance("gcc", 2, 5);
    EXPECT_TRUE(std::isfinite(resim));
    EXPECT_NE(resim, 123.5);
    EXPECT_GT(pm.performance("gcc", 2, 6), 0.0);
    std::filesystem::remove(path);
}

TEST(DiskCache, OtherConfigRowsAreSkippedSilently)
{
    const std::string path = "test_exec_other_config_cache.csv";
    std::filesystem::remove(path);
    {
        std::ofstream out(path);
        out << "gcc,9999,1,2,4,123.5\n"; // other instruction count
        out << "gcc,2000,7,2,4,123.5\n"; // other seed
    }
    PerfModel pm(2000, 1);
    pm.enableDiskCache(path);
    // Neither row matches this model's identity; both must be
    // ignored (they are legitimate rows for other studies).
    EXPECT_NE(pm.performance("gcc", 2, 4), 123.5);
    std::filesystem::remove(path);
}

TEST(Determinism, BatchAgreesWithPointApi)
{
    PerfModel batch(2000);
    PerfModel pointwise(2000);
    const auto grid =
        sweepGrid({std::string("sjeng")}, {0, 4}, sliceRange(2));
    const auto results = batch.performanceBatch(grid, 2);
    for (const SweepResult &r : results) {
        EXPECT_EQ(r.ipc,
                  pointwise.performance(r.name, r.banks, r.slices));
    }
    // A second batch over the same grid is served from the memo.
    for (const SweepResult &r : batch.performanceBatch(grid, 2))
        EXPECT_FALSE(r.fresh);
}

TEST(Determinism, BatchResultsIndependentOfBatchOrder)
{
    PerfModel forward(2000);
    PerfModel reverse(2000);
    auto grid = sweepGrid({std::string("astar")}, {0, 1}, sliceRange(2));
    const auto a = forward.performanceBatch(grid, 2);
    std::reverse(grid.begin(), grid.end());
    const auto b = reverse.performanceBatch(grid, 2);
    ASSERT_EQ(a.size(), b.size());
    for (const SweepResult &ra : a) {
        for (const SweepResult &rb : b) {
            if (ra.banks == rb.banks && ra.slices == rb.slices) {
                EXPECT_EQ(ra.ipc, rb.ipc);
            }
        }
    }
}
