/**
 * @file
 * Tests for CactiLite and the area model, anchored to the paper's
 * published Figure 10/11 decomposition.
 */

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "area/area_model.hh"
#include "area/cacti_lite.hh"

using namespace sharch;

TEST(CactiLite, AreaGrowsWithCapacity)
{
    double prev = 0.0;
    for (std::uint64_t kb : {4, 16, 64, 256, 1024}) {
        const double a = CactiLite::cacheAreaUm2(kb * 1024, 64, 2);
        EXPECT_GT(a, prev);
        prev = a;
    }
}

TEST(CactiLite, AreaSublinearAtSmallSizes)
{
    // Periphery amortizes: 4x the capacity costs less than 4x area.
    const double a16 = CactiLite::cacheAreaUm2(16 * 1024, 64, 2);
    const double a64 = CactiLite::cacheAreaUm2(64 * 1024, 64, 4);
    EXPECT_LT(a64 / a16, 4.0);
    EXPECT_GT(a64 / a16, 1.5);
}

TEST(CactiLite, PortsCostArea)
{
    const double one = CactiLite::ramAreaUm2(1024, 1, 1);
    const double many = CactiLite::ramAreaUm2(1024, 4, 2);
    EXPECT_GT(many, one * 1.5);
}

TEST(CactiLite, TagsCostArea)
{
    const double tagless = CactiLite::ramAreaUm2(16 * 1024);
    const double tagged = CactiLite::cacheAreaUm2(16 * 1024, 64, 1);
    EXPECT_GT(tagged, tagless);
}

TEST(CactiLite, AccessCyclesMatchTable3)
{
    EXPECT_EQ(CactiLite::accessCycles(16 * 1024), 3u);
    EXPECT_EQ(CactiLite::accessCycles(64 * 1024), 4u);
    EXPECT_GT(CactiLite::accessCycles(8 * 1024 * 1024), 4u);
}

TEST(AreaModel, Figure10Anchors)
{
    const AreaModel m;
    const double slice = m.sliceAreaUm2();
    // Each 16 KB L1 is ~24% of the Slice (Fig. 10).
    const double l1 =
        m.componentAreaUm2(SliceComponent::L1DCache) / slice;
    EXPECT_NEAR(l1, 0.24, 0.02);
    EXPECT_NEAR(m.componentAreaUm2(SliceComponent::L1ICache) / slice,
                0.24, 0.02);
    // Instruction buffer ~11%, LSQ ~8%, ROB and RF ~6%.
    EXPECT_NEAR(m.componentAreaUm2(
                    SliceComponent::InstructionBuffer) / slice,
                0.11, 0.01);
    EXPECT_NEAR(m.componentAreaUm2(SliceComponent::Lsq) / slice, 0.08,
                0.01);
    EXPECT_NEAR(m.componentAreaUm2(SliceComponent::Rob) / slice, 0.06,
                0.01);
}

TEST(AreaModel, SharingOverheadMatchesPaper)
{
    const AreaModel m;
    // Fig. 10: ~8% without L2; Fig. 11: ~5% with one 64 KB bank.
    EXPECT_NEAR(m.sharingOverheadFraction(false), 0.08, 0.012);
    EXPECT_NEAR(m.sharingOverheadFraction(true), 0.05, 0.012);
}

TEST(AreaModel, Figure11BankShare)
{
    const AreaModel m;
    // One 64 KB bank is ~35% of Slice + bank (Fig. 11).
    const double share =
        m.l2BankAreaUm2() / (m.sliceAreaUm2() + m.l2BankAreaUm2());
    EXPECT_NEAR(share, 0.35, 0.03);
}

TEST(AreaModel, MarketParityAnchor)
{
    const AreaModel m;
    // Market2's "1 Slice costs the same as 128 KB Cache": two banks
    // within ~15% of one Slice.
    EXPECT_NEAR(2.0 * m.l2BankAreaUm2() / m.sliceAreaUm2(), 1.0, 0.15);
}

TEST(AreaModel, VCoreRollup)
{
    const AreaModel m;
    const double one = m.vcoreAreaUm2(1, 0);
    EXPECT_DOUBLE_EQ(one, m.sliceAreaUm2());
    EXPECT_DOUBLE_EQ(m.vcoreAreaUm2(3, 5),
                     3 * m.sliceAreaUm2() + 5 * m.l2BankAreaUm2());
    EXPECT_DOUBLE_EQ(m.vcoreAreaMm2(1, 0) * 1e6, one);
}

TEST(AreaModel, BreakdownSumsToHundred)
{
    const AreaModel m;
    for (bool l2 : {false, true}) {
        double total = 0.0;
        for (const AreaEntry &e : m.breakdown(l2))
            total += e.percent;
        EXPECT_NEAR(total, 100.0, 1e-9);
    }
    // The L2 row only appears in the Fig. 11 variant.
    EXPECT_EQ(m.breakdown(true).size(), m.breakdown(false).size() + 1);
}

TEST(AreaModel, ConfigScalesStructures)
{
    SimConfig big;
    big.slice.robSize = 128;        // 2x default
    big.slice.issueWindowSize = 64; // 2x default
    const AreaModel base;
    const AreaModel scaled(big);
    EXPECT_NEAR(scaled.componentAreaUm2(SliceComponent::Rob),
                2.0 * base.componentAreaUm2(SliceComponent::Rob),
                1e-6);
    EXPECT_NEAR(scaled.componentAreaUm2(SliceComponent::IssueWindow),
                2.0 * base.componentAreaUm2(SliceComponent::IssueWindow),
                1e-6);
    EXPECT_GT(scaled.sliceAreaUm2(), base.sliceAreaUm2());
}

TEST(AreaModel, LargerCachesGrowTheSlice)
{
    SimConfig cfg;
    cfg.l1d.sizeBytes = 32 * 1024;
    const AreaModel base;
    const AreaModel bigger(cfg);
    EXPECT_GT(bigger.componentAreaUm2(SliceComponent::L1DCache),
              base.componentAreaUm2(SliceComponent::L1DCache));
    // The I-cache is untouched.
    EXPECT_DOUBLE_EQ(bigger.componentAreaUm2(SliceComponent::L1ICache),
                     base.componentAreaUm2(SliceComponent::L1ICache));
}

TEST(AreaModel, ComponentNamesAreUnique)
{
    std::set<std::string> names;
    for (int i = 0;
         i < static_cast<int>(SliceComponent::NumComponents); ++i) {
        names.insert(
            sliceComponentName(static_cast<SliceComponent>(i)));
    }
    EXPECT_EQ(names.size(),
              static_cast<std::size_t>(SliceComponent::NumComponents));
}

TEST(AreaModel, SharingOverheadComponentsClassified)
{
    // Exactly the six sharing-support structures are overhead.
    int overhead = 0;
    for (int i = 0;
         i < static_cast<int>(SliceComponent::NumComponents); ++i) {
        overhead +=
            isSharingOverhead(static_cast<SliceComponent>(i));
    }
    EXPECT_EQ(overhead, 6);
    EXPECT_FALSE(isSharingOverhead(SliceComponent::L1DCache));
    EXPECT_TRUE(isSharingOverhead(SliceComponent::GlobalRename));
    EXPECT_TRUE(isSharingOverhead(SliceComponent::Routers));
}
