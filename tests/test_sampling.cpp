/**
 * @file
 * Tests for SMARTS-style sampled simulation: the functional
 * fast-forward's warm-state fidelity (digest-compared against the
 * detailed walk), exact architectural counting, the sampled
 * estimator's accuracy and determinism, and short-stream edge cases.
 */

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/perf_model.hh"
#include "core/sampling.hh"
#include "core/vm_sim.hh"
#include "trace/generator.hh"
#include "trace/inst_source.hh"
#include "trace/profile.hh"

using namespace sharch;

namespace {

/** A single-VCore rig whose warm state we can digest. */
struct Rig
{
    SimConfig cfg;
    FabricPlacement placement;
    L2System l2;
    VCoreSim sim;

    Rig(unsigned banks, unsigned slices, std::uint64_t seed)
        : cfg(makeCfg(banks, slices, seed)),
          placement(cfg.numSlices, cfg.numL2Banks),
          l2(cfg, {placement}), sim(cfg, 0, placement, l2)
    {
        l2.registerL1s(0, sim.l1dPointers());
    }

    static SimConfig
    makeCfg(unsigned banks, unsigned slices, std::uint64_t seed)
    {
        SimConfig cfg;
        cfg.numSlices = slices;
        cfg.numL2Banks = banks;
        cfg.seed = seed;
        return cfg;
    }

    std::uint64_t
    digest() const
    {
        return sim.warmStateDigest() ^ l2.stateDigest();
    }
};

constexpr std::size_t kWarmInstr = 12000;

} // namespace

TEST(Sampling, FastForwardReproducesDetailedWarmState)
{
    // The functional fast-forward must leave every piece of
    // architectural warm state -- L1 I/D tags, L2 banks + directory,
    // branch predictor, memory-dependence history, fetch-line
    // tracker -- exactly where the detailed walk leaves it, for every
    // profile's access pattern and across trace seeds.
    for (const std::string &name : benchmarkNames()) {
        const BenchmarkProfile &p = profileFor(name);
        for (std::uint64_t seed : {1ull, 7ull}) {
            Rig detailed(8, 2, seed);
            Rig functional(8, 2, seed);
            TraceGenerator gen(p, seed);
            StreamingTraceSource a(gen, kWarmInstr);
            StreamingTraceSource b(gen, kWarmInstr);
            ASSERT_EQ(detailed.sim.step(a, kWarmInstr), kWarmInstr);
            ASSERT_EQ(functional.sim.fastForward(b, kWarmInstr),
                      kWarmInstr);
            EXPECT_EQ(detailed.digest(), functional.digest())
                << name << " seed " << seed;
        }
    }
}

TEST(Sampling, FunctionalCountsMatchDetailedStats)
{
    // functionalStats() mirrors the detailed walk's counting sites,
    // so over the same stream the two passes agree on every
    // timing-independent counter -- this is what lets the sampled
    // estimator report those counters exactly instead of scaled.
    for (const std::string &name : benchmarkNames()) {
        const BenchmarkProfile &p = profileFor(name);
        Rig detailed(8, 2, 1);
        Rig functional(8, 2, 1);
        TraceGenerator gen(p, 1);
        StreamingTraceSource a(gen, kWarmInstr);
        StreamingTraceSource b(gen, kWarmInstr);
        detailed.sim.step(a, kWarmInstr);
        functional.sim.fastForward(b, kWarmInstr);
        const SimStats &d = detailed.sim.stats();
        const SimStats &f = functional.sim.functionalStats();
        EXPECT_EQ(d.instructionsCommitted, f.instructionsCommitted)
            << name;
        EXPECT_EQ(d.branches, f.branches) << name;
        EXPECT_EQ(d.branchMispredicts, f.branchMispredicts) << name;
        EXPECT_EQ(d.loads, f.loads) << name;
        EXPECT_EQ(d.stores, f.stores) << name;
        EXPECT_EQ(d.l1dAccesses, f.l1dAccesses) << name;
        EXPECT_EQ(d.l1dMisses, f.l1dMisses) << name;
        EXPECT_EQ(d.l1iAccesses, f.l1iAccesses) << name;
        EXPECT_EQ(d.l1iMisses, f.l1iMisses) << name;
        EXPECT_EQ(d.l2Accesses, f.l2Accesses) << name;
        EXPECT_EQ(d.l2Misses, f.l2Misses) << name;
        // The detailed side must not have leaked anything into the
        // functional tallies, or vice versa.
        EXPECT_EQ(detailed.sim.functionalStats().instructionsCommitted,
                  0u)
            << name;
        EXPECT_EQ(functional.sim.stats().instructionsCommitted, 0u)
            << name;
    }
}

namespace {

/** Full and sampled VmResults for one (profile, banks, slices). */
std::pair<VmResult, VmResult>
runBothWays(const std::string &bench, unsigned banks, unsigned slices,
            std::size_t n, const SampleSchedule &sched,
            std::uint64_t seed = 1)
{
    const BenchmarkProfile &p = profileFor(bench);
    SimConfig cfg;
    cfg.numSlices = slices;
    cfg.numL2Banks = banks;
    cfg.seed = seed;
    const unsigned vcores = p.multithreaded ? p.numThreads : 1;
    auto gen = std::make_shared<TraceGenerator>(p, seed);

    VmSim full(cfg, vcores);
    full.prewarm(p);
    const VmResult f = full.run(streamSources(gen, n));

    VmSim samp(cfg, vcores);
    samp.prewarm(p);
    SamplingController ctl(sched, seed);
    const VmResult s = ctl.run(samp, streamSources(gen, n));
    return {f, s};
}

} // namespace

TEST(Sampling, ArchitecturalCountersAreExact)
{
    // The sampled estimate substitutes exact whole-stream totals for
    // every timing-independent counter, so those match the full run
    // bit for bit (and their CIs are zero); cycles is an estimate.
    const SampleSchedule sched{6000, 2000, 2000};
    const auto [f, s] = runBothWays("gcc", 8, 2, 100000, sched);
    EXPECT_EQ(f.aggregate.instructionsCommitted,
              s.aggregate.instructionsCommitted);
    EXPECT_EQ(f.aggregate.branches, s.aggregate.branches);
    EXPECT_EQ(f.aggregate.branchMispredicts,
              s.aggregate.branchMispredicts);
    EXPECT_EQ(f.aggregate.l1dAccesses, s.aggregate.l1dAccesses);
    EXPECT_EQ(f.aggregate.l1dMisses, s.aggregate.l1dMisses);
    EXPECT_EQ(f.aggregate.l1iMisses, s.aggregate.l1iMisses);
    EXPECT_EQ(f.aggregate.l2Accesses, s.aggregate.l2Accesses);
    EXPECT_EQ(f.aggregate.l2Misses, s.aggregate.l2Misses);
    EXPECT_TRUE(s.aggregate.sampling.active);
    EXPECT_GT(s.aggregate.sampling.windows, 0u);
    EXPECT_EQ(s.aggregate.sampling.ciL1dMissRate, 0.0);
    EXPECT_EQ(s.aggregate.sampling.ciL2MissRate, 0.0);
    EXPECT_EQ(s.aggregate.sampling.ciBranchMispredictRate, 0.0);
    // Measured + warm-up + fast-forwarded partition the stream.
    EXPECT_EQ(s.aggregate.sampling.measuredInstructions +
                  s.aggregate.sampling.warmupInstructions +
                  s.aggregate.sampling.fastForwardInstructions,
              s.aggregate.instructionsCommitted);
}

TEST(Sampling, SampledCpiWithinTolerance)
{
    // End-to-end accuracy on three profiles spanning the interesting
    // regimes: cache-sensitive single-thread (mcf), compute-bound
    // single-thread (gcc), and multithreaded with coherence traffic
    // (dedup).  Deterministic -- fixed seeds, fixed schedule -- so
    // the bound is a regression fence, not a statistical hope.
    const SampleSchedule sched{6000, 2000, 2000};
    for (const char *bench : {"gcc", "mcf", "dedup"}) {
        const auto [f, s] = runBothWays(bench, 8, 2, 200000, sched);
        const double fullIpc = f.throughput();
        const double sampIpc = s.throughput();
        const double err =
            100.0 * std::fabs(sampIpc - fullIpc) / fullIpc;
        EXPECT_LT(err, 3.0) << bench << ": full " << fullIpc
                            << " sampled " << sampIpc;
    }
}

TEST(Sampling, DeterministicAcrossSweepThreadCounts)
{
    // A sampled sweep is a pure function of the point identity: the
    // worker count must not change a single bit of any estimate.
    PerfModel one(50000, 1);
    PerfModel four(50000, 1);
    one.setSampleMode(SampleMode::Sampled, kDefaultSampleSchedule);
    four.setSampleMode(SampleMode::Sampled, kDefaultSampleSchedule);
    const std::vector<exec::SweepPoint> points = exec::sweepGrid(
        {"gcc", "mcf", "sjeng"}, {4, 32}, {2});
    const auto a = one.performanceBatch(points, 1);
    const auto b = four.performanceBatch(points, 4);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].ipc, b[i].ipc) << points[i].profile.name;
}

TEST(Sampling, ShortStreamStillMeasures)
{
    // A stream shorter than one warm-up + measure period must still
    // produce a usable estimate (the schedule leads with warm-up +
    // measure, and a partial measure window is flushed at the end).
    const SampleSchedule sched{100000, 2000, 2000};
    const auto [f, s] = runBothWays("gcc", 8, 2, 3000, sched);
    EXPECT_EQ(s.aggregate.instructionsCommitted, 3000u);
    EXPECT_TRUE(s.aggregate.sampling.active);
    EXPECT_GE(s.aggregate.sampling.windows, 1u);
    EXPECT_GT(s.cycles, 0u);
    // A stream this short is measured from one partial window, so
    // the estimate is coarse (the un-measured prefix carries the
    // predictor-training transient) -- but it must stay the right
    // order of magnitude, not collapse or explode.
    EXPECT_GT(s.cycles, f.cycles / 2);
    EXPECT_LT(s.cycles, f.cycles * 2);
}

TEST(Sampling, ScheduleIsPartOfTheEstimate)
{
    // Different schedules measure different windows; both are valid
    // estimates of the same run, and the exact counters agree even
    // when the CPI estimates differ.
    const SampleSchedule a{6000, 2000, 2000};
    const SampleSchedule b{14000, 2000, 2000};
    const auto [fa, sa] = runBothWays("astar", 8, 2, 100000, a);
    const auto [fb, sb] = runBothWays("astar", 8, 2, 100000, b);
    EXPECT_EQ(fa.cycles, fb.cycles); // same full run
    EXPECT_EQ(sa.aggregate.l1dMisses, sb.aggregate.l1dMisses);
    EXPECT_EQ(sa.aggregate.l2Misses, sb.aggregate.l2Misses);
    EXPECT_GT(sa.aggregate.sampling.fastForwardInstructions, 0u);
    EXPECT_GT(sb.aggregate.sampling.fastForwardInstructions,
              sa.aggregate.sampling.fastForwardInstructions);
}
