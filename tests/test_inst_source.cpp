/**
 * @file
 * The streaming trace pipeline's contract tests.
 *
 * Three layers of the determinism contract from trace/inst_source.hh:
 *
 *  1. Differential emission: across every builtin profile, several
 *     seeds, and every thread, StreamingTraceSource emits exactly the
 *     instruction sequence TraceGenerator::generateThreads()
 *     materializes -- field by field (TraceInst has padding bytes, so
 *     memcmp would compare garbage).
 *  2. Bit-identical simulation: VmSim and PerfModel produce identical
 *     SimStats (via toJson) whether the instruction stream is
 *     streamed or materialized, for single- and multithreaded
 *     workloads.
 *  3. Memory regression: streaming storage stays O(kBufferInsts)
 *     regardless of the instruction budget, and the PerfModel bundle
 *     cache stays empty in streaming mode.
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "config/sim_config.hh"
#include "core/perf_model.hh"
#include "core/vm_sim.hh"
#include "trace/generator.hh"
#include "trace/inst_source.hh"
#include "trace/profile.hh"

using namespace sharch;

namespace {

/** Field-wise equality; TraceInst's 3 padding bytes bar memcmp. */
void
expectInstEq(const TraceInst &a, const TraceInst &b, std::size_t i,
             const std::string &what)
{
    ASSERT_TRUE(a.pc == b.pc && a.effAddr == b.effAddr &&
                a.target == b.target && a.src1 == b.src1 &&
                a.src2 == b.src2 && a.dst == b.dst && a.op == b.op &&
                a.taken == b.taken)
        << what << ": instruction " << i << " differs (pc "
        << a.pc << " vs " << b.pc << ")";
}

/** Drain @p src in mixed-size pulls to exercise the window seams. */
std::vector<TraceInst>
drain(InstSource &src)
{
    std::vector<TraceInst> out;
    // Alternate single-instruction next() pulls with batched windows
    // so both consumption paths cross refill boundaries.
    bool single = true;
    while (!src.exhausted()) {
        if (single) {
            out.push_back(src.next());
        } else {
            std::size_t avail = 0;
            const TraceInst *w = src.window(avail);
            EXPECT_NE(w, nullptr) << "window after !exhausted()";
            if (!w)
                break;
            const std::size_t run = std::min<std::size_t>(avail, 37);
            out.insert(out.end(), w, w + run);
            src.consume(run);
        }
        single = !single;
    }
    return out;
}

std::vector<TraceInst>
drain(std::unique_ptr<InstSource> src)
{
    return drain(*src);
}

TEST(StreamingDifferential, AllProfilesSeedsThreads)
{
    // Every builtin profile x several seeds; a limit straddling
    // multiple refill buffers (kBufferInsts = 1024) without making
    // the full cross product slow.
    constexpr std::size_t kInstructions = 4000;
    for (const BenchmarkProfile &p : builtinProfiles()) {
        for (const std::uint64_t seed : {1ull, 7ull, 9001ull}) {
            const auto gen =
                std::make_shared<const TraceGenerator>(p, seed);
            const std::vector<Trace> traces =
                gen->generateThreads(kInstructions);
            auto sources = streamSources(gen, kInstructions);
            ASSERT_EQ(sources.size(), traces.size())
                << p.name << ": thread count mismatch";
            for (std::size_t t = 0; t < traces.size(); ++t) {
                const std::vector<TraceInst> streamed =
                    drain(std::move(sources[t]));
                ASSERT_EQ(streamed.size(),
                          traces[t].instructions.size())
                    << p.name << " seed " << seed << " thread " << t;
                for (std::size_t i = 0; i < streamed.size(); ++i) {
                    expectInstEq(streamed[i],
                                 traces[t].instructions[i], i,
                                 p.name + " seed " +
                                     std::to_string(seed) +
                                     " thread " + std::to_string(t));
                }
            }
        }
    }
}

TEST(StreamingDifferential, PrefixOfLongerWalkIsIdentical)
{
    // A streaming source bounded to n must match the first n
    // instructions of a longer materialized walk: the bound cuts
    // between instructions, never mid-draw.
    const BenchmarkProfile &p = profileFor("mcf");
    TraceGenerator gen(p, 42);
    const Trace full = gen.generate(5000);
    StreamingTraceSource src(gen, 2000);
    const std::vector<TraceInst> streamed = drain(src);
    ASSERT_EQ(streamed.size(), 2000u);
    for (std::size_t i = 0; i < streamed.size(); ++i)
        expectInstEq(streamed[i], full.instructions[i], i, "prefix");
}

TEST(StreamingDifferential, SkipPreservesAlignment)
{
    // skip() must consume exactly the same RNG draws as emitting, so
    // the post-skip stream equals the materialized suffix.
    const BenchmarkProfile &p = profileFor("gcc");
    TraceGenerator gen(p, 3);
    const Trace full = gen.generate(6000);
    StreamingTraceSource src(gen, 6000);
    EXPECT_EQ(src.skip(2500), 2500u);
    EXPECT_EQ(src.consumed(), 2500u);
    const std::vector<TraceInst> tail = drain(src);
    ASSERT_EQ(tail.size(), 3500u);
    for (std::size_t i = 0; i < tail.size(); ++i)
        expectInstEq(tail[i], full.instructions[2500 + i], i, "tail");
    EXPECT_EQ(src.skip(10), 0u) << "skip past end reports 0";
}

TEST(MaterializedSource, ServesWholeTraceOnceAndPinsBundle)
{
    const BenchmarkProfile &p = profileFor("bzip");
    TraceGenerator gen(p, 5);
    auto bundle = std::make_shared<const TraceBundle>(
        gen.generateThreads(1000));
    const long pinned = bundle.use_count();
    auto sources = materializedSources(bundle);
    ASSERT_EQ(sources.size(), 1u);
    EXPECT_GT(bundle.use_count(), pinned) << "source must pin bundle";
    const std::vector<TraceInst> served = drain(std::move(sources[0]));
    ASSERT_EQ(served.size(), (*bundle)[0].instructions.size());
    for (std::size_t i = 0; i < served.size(); ++i)
        expectInstEq(served[i], (*bundle)[0].instructions[i], i,
                     "materialized");
}

/** The two modes' VmResults, same workload and config. */
void
expectModesBitIdentical(const BenchmarkProfile &p, std::uint64_t seed,
                        std::size_t instructions)
{
    SimConfig cfg;
    cfg.numSlices = 2;
    cfg.numL2Banks = 4;
    cfg.seed = seed;
    const unsigned vcores = p.multithreaded ? p.numThreads : 1;

    const auto gen = std::make_shared<const TraceGenerator>(p, seed);
    VmSim streamVm(cfg, vcores);
    streamVm.prewarm(p);
    const VmResult streamed =
        streamVm.run(streamSources(gen, instructions));

    VmSim matVm(cfg, vcores);
    matVm.prewarm(p);
    const VmResult materialized =
        matVm.run(gen->generateThreads(instructions));

    EXPECT_EQ(streamed.cycles, materialized.cycles) << p.name;
    ASSERT_EQ(streamed.perVCore.size(), materialized.perVCore.size());
    EXPECT_EQ(streamed.aggregate.toJson(),
              materialized.aggregate.toJson())
        << p.name << ": aggregate SimStats diverge across modes";
    for (std::size_t i = 0; i < streamed.perVCore.size(); ++i) {
        EXPECT_EQ(streamed.perVCore[i].toJson(),
                  materialized.perVCore[i].toJson())
            << p.name << " VCore " << i;
    }
}

TEST(ModeEquivalence, SingleThreadedVmBitIdentical)
{
    expectModesBitIdentical(profileFor("gcc"), 1, 8000);
    expectModesBitIdentical(profileFor("libquantum"), 11, 8000);
}

TEST(ModeEquivalence, MultithreadedVmBitIdentical)
{
    // Shared-L2 contention depends on the global instruction order;
    // the round-robin interleaving must not depend on the backing.
    expectModesBitIdentical(profileFor("dedup"), 1, 4000);
    expectModesBitIdentical(profileFor("swaptions"), 17, 4000);
}

TEST(ModeEquivalence, PerfModelSurfacesMatch)
{
    PerfModel streaming(3000, 7);
    streaming.setTraceMode(TraceMode::Stream);
    PerfModel materializing(3000, 7);
    materializing.setTraceMode(TraceMode::Materialize);

    for (const char *name : {"gcc", "mcf", "ferret"}) {
        for (unsigned banks : {0u, 4u}) {
            for (unsigned slices : {1u, 4u}) {
                EXPECT_EQ(streaming.performance(name, banks, slices),
                          materializing.performance(name, banks,
                                                    slices))
                    << name << " banks=" << banks
                    << " slices=" << slices;
            }
        }
    }
    EXPECT_EQ(streaming.traceCacheSize(), 0u)
        << "streaming mode must not materialize bundles";
    EXPECT_GT(materializing.traceCacheSize(), 0u);
}

TEST(StreamingMemory, BufferStaysBoundedOverLongRun)
{
    // The whole point of streaming: resident storage is O(buffer),
    // not O(instructions).  Drain 400k instructions (400 refills) and
    // watch the buffer capacity never grow past kBufferInsts.
    const BenchmarkProfile &p = profileFor("hmmer");
    TraceGenerator gen(p, 1);
    constexpr std::uint64_t kLimit = 400000;
    StreamingTraceSource src(gen, kLimit);
    EXPECT_LE(src.bufferCapacity(),
              StreamingTraceSource::kBufferInsts);
    std::uint64_t drained = 0;
    while (!src.exhausted()) {
        std::size_t avail = 0;
        const TraceInst *w = src.window(avail);
        ASSERT_NE(w, nullptr);
        ASSERT_LE(avail, StreamingTraceSource::kBufferInsts);
        src.consume(avail);
        drained += avail;
        ASSERT_LE(src.bufferCapacity(),
                  StreamingTraceSource::kBufferInsts)
            << "buffer grew after " << drained << " instructions";
    }
    EXPECT_EQ(drained, kLimit);
    EXPECT_EQ(src.consumed(), kLimit);
}

TEST(StreamingMemory, SmallLimitAllocatesSmallBuffer)
{
    const BenchmarkProfile &p = profileFor("gcc");
    TraceGenerator gen(p, 1);
    StreamingTraceSource src(gen, 64);
    EXPECT_LE(src.bufferCapacity(), 64u)
        << "a 64-instruction stream must not allocate a full buffer";
}

TEST(StreamingMemory, CacheCapacityIsNoOpInStreamMode)
{
    // setTraceCacheCapacity() is a materialized-path policy; in
    // streaming mode it records the bound and no-ops.  Running many
    // benchmarks through a capacity-1 streaming model must still
    // leave the bundle cache empty -- nothing was ever materialized,
    // so nothing is evicted or retained.
    PerfModel pm(1500, 1);
    pm.setTraceMode(TraceMode::Stream);
    pm.setTraceCacheCapacity(1);
    for (const char *name : {"gcc", "mcf", "hmmer", "sjeng"})
        pm.performance(name, 4, 2);
    EXPECT_EQ(pm.traceCacheSize(), 0u);

    // The same bound governs the materialized path when switched on.
    PerfModel mat(1500, 1);
    mat.setTraceMode(TraceMode::Materialize);
    mat.setTraceCacheCapacity(1);
    for (const char *name : {"gcc", "mcf", "hmmer", "sjeng"})
        mat.performance(name, 4, 2);
    EXPECT_EQ(mat.traceCacheSize(), 1u);
}

TEST(TraceModeParse, NamesRoundTrip)
{
    TraceMode mode = TraceMode::Materialize;
    EXPECT_TRUE(parseTraceMode("stream", mode));
    EXPECT_EQ(mode, TraceMode::Stream);
    EXPECT_TRUE(parseTraceMode("materialize", mode));
    EXPECT_EQ(mode, TraceMode::Materialize);
    EXPECT_STREQ(traceModeName(TraceMode::Stream), "stream");
    EXPECT_STREQ(traceModeName(TraceMode::Materialize), "materialize");

    mode = TraceMode::Stream;
    EXPECT_FALSE(parseTraceMode("", mode));
    EXPECT_FALSE(parseTraceMode("streaming", mode));
    EXPECT_FALSE(parseTraceMode("Materialize", mode));
    EXPECT_EQ(mode, TraceMode::Stream) << "failed parse must not write";
}

} // namespace
