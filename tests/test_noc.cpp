/**
 * @file
 * Tests for the on-chip network substrate: mesh geometry, XY routing,
 * VCore placement (including the +2 cycles per 256 KB distance
 * property of section 5.4), and the switched-network latency and
 * injection-contention model.
 */

#include <gtest/gtest.h>

#include "noc/mesh.hh"
#include "noc/network.hh"
#include "noc/placement.hh"

using namespace sharch;

TEST(Mesh, ManhattanDistance)
{
    EXPECT_EQ(manhattanDistance({0, 0}, {0, 0}), 0u);
    EXPECT_EQ(manhattanDistance({0, 0}, {3, 4}), 7u);
    EXPECT_EQ(manhattanDistance({3, 4}, {0, 0}), 7u);
    EXPECT_EQ(manhattanDistance({-2, 1}, {1, -1}), 5u);
}

TEST(Mesh, XyRouteVisitsXThenY)
{
    const auto route = xyRoute({0, 0}, {2, 1});
    ASSERT_EQ(route.size(), 4u);
    EXPECT_EQ(route[0], (Coord{0, 0}));
    EXPECT_EQ(route[1], (Coord{1, 0}));
    EXPECT_EQ(route[2], (Coord{2, 0}));
    EXPECT_EQ(route[3], (Coord{2, 1}));
}

TEST(Mesh, XyRouteLengthIsDistancePlusOne)
{
    for (int x = -3; x <= 3; ++x) {
        for (int y = -3; y <= 3; ++y) {
            const Coord to{x, y};
            EXPECT_EQ(xyRoute({0, 0}, to).size(),
                      manhattanDistance({0, 0}, to) + 1);
        }
    }
}

TEST(Mesh, GeometryIndexRoundTrip)
{
    const MeshGeometry mesh(5, 3);
    EXPECT_EQ(mesh.numTiles(), 15);
    for (int i = 0; i < mesh.numTiles(); ++i)
        EXPECT_EQ(mesh.indexOf(mesh.coordOf(i)), i);
    EXPECT_TRUE(mesh.contains({4, 2}));
    EXPECT_FALSE(mesh.contains({5, 0}));
    EXPECT_FALSE(mesh.contains({0, -1}));
}

TEST(Placement, SlicesAreContiguous)
{
    const FabricPlacement p(4, 0);
    for (SliceId s = 0; s + 1 < 4; ++s)
        EXPECT_EQ(p.sliceToSliceHops(s, s + 1), 1u);
    EXPECT_EQ(p.sliceToSliceHops(0, 3), 3u);
}

TEST(Placement, BankRowsOfFour)
{
    const FabricPlacement p(1, 8);
    // First four banks in row 1, next four in row 2.
    EXPECT_EQ(p.bankCoord(0).y, 1);
    EXPECT_EQ(p.bankCoord(3).y, 1);
    EXPECT_EQ(p.bankCoord(4).y, 2);
    EXPECT_EQ(p.bankCoord(7).y, 2);
}

TEST(Placement, MeanBankDistanceGrowsWithCache)
{
    // Section 5.4: about +1 hop (i.e., +2 cycles at 2 cycles/hop) per
    // additional 256 KB (= 4 banks).
    const FabricPlacement small(2, 4);
    const FabricPlacement big(2, 8);
    const FabricPlacement huge(2, 64);
    EXPECT_LT(small.meanBankDistance(), big.meanBankDistance());
    EXPECT_LT(big.meanBankDistance(), huge.meanBankDistance());
    // 64 banks = 16 rows: mean row distance ~ 8 hops more than 1 row.
    EXPECT_NEAR(huge.meanBankDistance() - small.meanBankDistance(),
                (64 - 4) / 4 / 2.0, 2.0);
}

TEST(Placement, OriginOffsetsEverything)
{
    const FabricPlacement p(2, 2, Coord{10, 5});
    EXPECT_EQ(p.sliceCoord(0), (Coord{10, 5}));
    EXPECT_EQ(p.sliceCoord(1), (Coord{11, 5}));
    EXPECT_EQ(p.bankCoord(0), (Coord{10, 6}));
    // Distances are origin-invariant.
    const FabricPlacement q(2, 2);
    EXPECT_EQ(p.sliceToBankHops(1, 0), q.sliceToBankHops(1, 0));
}

TEST(Network, UncontendedLatencyMatchesPaper)
{
    // Section 3.4: two cycles nearest neighbour, +1 per extra hop.
    const SwitchedNetwork net(4, 2, 1, 1);
    EXPECT_EQ(net.uncontendedLatency(0), 0u);
    EXPECT_EQ(net.uncontendedLatency(1), 2u);
    EXPECT_EQ(net.uncontendedLatency(2), 3u);
    EXPECT_EQ(net.uncontendedLatency(5), 6u);
}

TEST(Network, SendAddsLatency)
{
    SwitchedNetwork net(4, 2, 1, 1);
    EXPECT_EQ(net.send(0, 100, 1), 102u);
    EXPECT_EQ(net.send(1, 100, 3), 104u);
    // Zero hops is free (same tile).
    EXPECT_EQ(net.send(2, 50, 0), 50u);
}

TEST(Network, InjectionContentionSerializesSameCycle)
{
    SwitchedNetwork net(2, 2, 1, 1);
    const Cycles first = net.send(0, 10, 1);
    const Cycles second = net.send(0, 10, 1);
    EXPECT_EQ(first, 12u);
    EXPECT_EQ(second, 13u);
    EXPECT_EQ(net.stats().injectionStalls, 1u);
    // A different source does not contend.
    EXPECT_EQ(net.send(1, 10, 1), 12u);
}

TEST(Network, OutOfOrderSendsDoNotQueueBehindLaterOnes)
{
    SwitchedNetwork net(2, 2, 1, 1);
    EXPECT_EQ(net.send(0, 1000, 1), 1002u);
    // An earlier message must still inject at its own time.
    EXPECT_EQ(net.send(0, 10, 1), 12u);
}

TEST(Network, WiderPortsAllowParallelInjection)
{
    SwitchedNetwork net(1, 2, 1, 2);
    EXPECT_EQ(net.send(0, 10, 1), 12u);
    EXPECT_EQ(net.send(0, 10, 1), 12u);
    EXPECT_EQ(net.send(0, 10, 1), 13u);
}

TEST(Network, StatsAccumulateAndReset)
{
    SwitchedNetwork net(2, 2, 1, 1);
    net.send(0, 0, 3);
    net.send(1, 0, 2);
    EXPECT_EQ(net.stats().messages, 2u);
    EXPECT_EQ(net.stats().totalHops, 5u);
    net.reset();
    EXPECT_EQ(net.stats().messages, 0u);
    EXPECT_EQ(net.send(0, 0, 1), 2u);
}

/** Property: placements for any (slices, banks) give sane distances. */
class PlacementSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(PlacementSweep, DistancesPositiveAndSymmetric)
{
    const auto [slices, banks] = GetParam();
    const FabricPlacement p(slices, banks);
    EXPECT_EQ(p.numSlices(), slices);
    EXPECT_EQ(p.numBanks(), banks);
    for (SliceId a = 0; a < slices; ++a) {
        EXPECT_EQ(p.sliceToSliceHops(a, a), 0u);
        for (SliceId b = 0; b < slices; ++b)
            EXPECT_EQ(p.sliceToSliceHops(a, b),
                      p.sliceToSliceHops(b, a));
        for (BankId k = 0; k < banks; ++k)
            EXPECT_GE(p.sliceToBankHops(a, k), 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PlacementSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(0u, 1u, 4u, 16u, 128u)));
