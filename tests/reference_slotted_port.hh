/**
 * @file
 * The historical std::map implementation of SlottedPort, kept verbatim
 * as the semantic reference for the ring-buffer rewrite.
 *
 * SlottedPort's contract is that the ring representation is
 * *bit-identical* in its grants to this map version for every request
 * sequence; test_common.cpp drives both with randomized ready streams
 * (drifting, jittered, and pathologically spread) across a width sweep
 * and compares every grant.  If you change the scheduling semantics,
 * change both -- a divergence here is a simulation-result change and
 * invalidates every golden report.
 */

#ifndef SHARCH_TESTS_REFERENCE_SLOTTED_PORT_HH
#define SHARCH_TESTS_REFERENCE_SLOTTED_PORT_HH

#include <algorithm>
#include <cstdint>
#include <map>

#include "common/types.hh"

namespace sharch::testing {

/** Map-based SlottedPort as it shipped before the ring rewrite. */
class MapSlottedPort
{
  public:
    explicit MapSlottedPort(std::uint32_t width = 1) : width_(width) {}

    Cycles
    schedule(Cycles ready)
    {
        Cycles c = std::max(ready, watermark_);
        auto it = used_.lower_bound(c);
        while (it != used_.end() && it->first == c &&
               it->second >= width_) {
            ++c;
            ++it;
        }
        ++used_[c];
        prune(c);
        return c;
    }

    void
    reset()
    {
        used_.clear();
        watermark_ = 0;
    }

  private:
    std::uint32_t width_;
    std::map<Cycles, std::uint32_t> used_;
    Cycles watermark_ = 0;

    void
    prune(Cycles now)
    {
        constexpr Cycles kLag = 4096;
        if (now < watermark_ + 2 * kLag)
            return;
        const Cycles new_mark = now - kLag;
        used_.erase(used_.begin(), used_.lower_bound(new_mark));
        watermark_ = new_mark;
    }
};

} // namespace sharch::testing

#endif // SHARCH_TESTS_REFERENCE_SLOTTED_PORT_HH
