/**
 * @file
 * Cross-module integration tests: the qualitative facts the paper's
 * evaluation rests on, verified end-to-end (generator -> SSim ->
 * area/econ) with short traces.
 */

#include <gtest/gtest.h>

#include "area/area_model.hh"
#include "core/perf_model.hh"
#include "econ/market.hh"
#include "econ/optimizer.hh"
#include "trace/profile.hh"

using namespace sharch;

namespace {

PerfModel &
perf()
{
    static PerfModel pm(6000);
    return pm;
}

/** Cache sensitivity: perf(8 MB) / perf(no L2) at two Slices. */
double
cacheSensitivity(const std::string &bench)
{
    double best = 0.0;
    for (unsigned banks : l2BankGrid())
        best = std::max(best, perf().performance(bench, banks, 2));
    return best / perf().performance(bench, 0, 2);
}

/** Slice scalability: best perf over s / perf at one Slice. */
double
sliceScalability(const std::string &bench)
{
    double best = 0.0;
    for (unsigned s = 1; s <= SimConfig::kMaxSlices; ++s)
        best = std::max(best, perf().performance(bench, 2, s));
    return best / perf().performance(bench, 2, 1);
}

} // namespace

TEST(Integration, OmnetppIsMoreCacheSensitiveThanAstar)
{
    // Section 5.4: omnetpp extremely sensitive, astar insensitive.
    EXPECT_GT(cacheSensitivity("omnetpp"),
              1.5 * cacheSensitivity("astar"));
    EXPECT_LT(cacheSensitivity("astar"), 1.35);
}

TEST(Integration, LibquantumIgnoresTheL2)
{
    // Streaming workload: no reuse for the L2 to capture.
    EXPECT_LT(cacheSensitivity("libquantum"), 1.25);
}

TEST(Integration, HmmerSaturatesAtSixtyFourKb)
{
    // Table 4: hmmer's optimum is 64 KB; adding far more cache must
    // not help much beyond it.
    const double at64k = perf().performance("hmmer", 1, 2);
    const double at4m = perf().performance("hmmer", 64, 2);
    EXPECT_LT(at4m / at64k, 1.10);
}

TEST(Integration, CacheCanHurtThroughDistance)
{
    // Section 5.4: an 8 MB L2 sits farther away (+2 cycles per
    // 256 KB), so insensitive workloads lose performance.
    const double small = perf().performance("libquantum", 2, 2);
    const double huge = perf().performance("libquantum", 128, 2);
    EXPECT_LT(huge, small);
}

TEST(Integration, IlpRichWorkloadsScaleSerialOnesDoNot)
{
    EXPECT_GT(sliceScalability("h264ref"), 1.5);
    EXPECT_GT(sliceScalability("gcc"), 1.3);
    EXPECT_LT(sliceScalability("astar"), 1.6);
    // Section 5.3: PARSEC speedup bounded by ~2 per VCore.
    EXPECT_LT(sliceScalability("swaptions"), 2.6);
}

TEST(Integration, ParsecBenefitsFromVCoreParallelism)
{
    // Four VCores commit 4x the instructions of a single thread; the
    // VM throughput (not per-VCore) reflects that.
    const BenchmarkProfile &p = profileFor("swaptions");
    const VmResult r = perf().detailedRun(p, 2, 2);
    EXPECT_EQ(r.perVCore.size(), 4u);
    EXPECT_GT(r.throughput(), perf().performance("swaptions", 2, 2));
}

TEST(Integration, OptimaDifferAcrossBenchmarks)
{
    // The heart of the paper: one size does not fit all.
    AreaModel am;
    UtilityOptimizer opt(perf(), am);
    const OptResult hmmer = opt.peakPerfPerArea("hmmer", 2);
    const OptResult gcc = opt.peakPerfPerArea("gcc", 2);
    EXPECT_TRUE(hmmer.banks != gcc.banks || hmmer.slices != gcc.slices);
}

TEST(Integration, OptimaGrowWithPerformanceExponent)
{
    AreaModel am;
    UtilityOptimizer opt(perf(), am);
    const OptResult k1 = opt.peakPerfPerArea("gcc", 1);
    const OptResult k3 = opt.peakPerfPerArea("gcc", 3);
    EXPECT_GE(k3.banks + k3.slices, k1.banks + k1.slices);
}

TEST(Integration, MarketPricesReshapeDemand)
{
    AreaModel am;
    UtilityOptimizer opt(perf(), am);
    const double budget = defaultBudget();
    // With Slices 4x overpriced, no customer buys more Slices than at
    // parity for the same utility function.
    const OptResult parity = opt.peakUtility(
        "gobmk", UtilityKind::Balanced, market2(), budget);
    const OptResult pricey = opt.peakUtility(
        "gobmk", UtilityKind::Balanced, market1(), budget);
    EXPECT_LE(pricey.slices, parity.slices);
}

TEST(Integration, AreaModelFeedsTheEconomy)
{
    // The Market2 anchor must match the area model within tolerance,
    // or every efficiency number silently drifts.
    AreaModel am;
    const double bank_cost_ratio =
        market2().bankPrice / market2().slicePrice;
    const double bank_area_ratio =
        am.l2BankAreaUm2() / am.sliceAreaUm2();
    EXPECT_NEAR(bank_cost_ratio, bank_area_ratio, 0.10);
}

TEST(Integration, SecondOperandNetworkBarelyMatters)
{
    // Section 5.1's sensitivity study: ~1% from a second SON.
    const BenchmarkProfile &p = profileFor("gcc");
    SimConfig cfg;
    cfg.numSlices = 4;
    cfg.numL2Banks = 4;
    TraceGenerator gen(p, 1);
    const auto traces = gen.generateThreads(6000);

    VmSim one(cfg, 1);
    one.prewarm(p);
    const Cycles c1 = one.run(traces).cycles;

    cfg.network.operandNetworks = 2;
    VmSim two(cfg, 1);
    two.prewarm(p);
    const Cycles c2 = two.run(traces).cycles;

    EXPECT_LE(c2, c1);
    EXPECT_LT(static_cast<double>(c1 - c2) / c1, 0.05);
}
