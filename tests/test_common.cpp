/**
 * @file
 * Unit and property tests for the common library: logging levels,
 * deterministic random numbers, numeric helpers, and the slotted-port
 * scheduler everything else builds on.
 */

#include <algorithm>
#include <array>
#include <map>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/math_util.hh"
#include "common/random.hh"
#include "common/scheduling.hh"
#include "reference_slotted_port.hh"

using namespace sharch;

TEST(Logging, LevelRoundTrips)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(before);
}

TEST(Logging, AssertPassesOnTrue)
{
    SHARCH_ASSERT(1 + 1 == 2, "arithmetic works");
    SUCCEED();
}

TEST(Logging, AssertAbortsOnFalse)
{
    EXPECT_DEATH(SHARCH_ASSERT(false, "must die"), "assertion failed");
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInBounds)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(11);
    int heads = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        heads += rng.nextBool(0.3);
    EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
}

TEST(Rng, GeometricMeanMatches)
{
    Rng rng(13);
    const double p = 0.25;
    double total = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        total += static_cast<double>(rng.nextGeometric(p));
    // Mean of the number of failures before success: (1-p)/p = 3.
    EXPECT_NEAR(total / n, 3.0, 0.15);
}

TEST(Rng, GeometricOfOneIsZero)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextGeometric(1.0), 0u);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng rng(19);
    double total = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        total += rng.nextExponential(5.0);
    EXPECT_NEAR(total / n, 5.0, 0.25);
}

TEST(Rng, ZipfInRange)
{
    Rng rng(23);
    for (double alpha : {0.0, 0.5, 1.0, 1.5}) {
        for (int i = 0; i < 500; ++i)
            EXPECT_LT(rng.nextZipf(1000, alpha), 1000u);
    }
}

TEST(Rng, ZipfSkewsTowardLowRanks)
{
    Rng rng(29);
    const std::uint64_t n = 10000;
    int in_head = 0;
    const int samples = 10000;
    for (int i = 0; i < samples; ++i)
        in_head += (rng.nextZipf(n, 1.2) < n / 100);
    // With alpha = 1.2, far more than 1% of draws hit the top 1%.
    EXPECT_GT(in_head, samples / 10);
}

TEST(Rng, ZipfUniformWhenAlphaZero)
{
    Rng rng(31);
    const std::uint64_t n = 1000;
    int in_head = 0;
    const int samples = 20000;
    for (int i = 0; i < samples; ++i)
        in_head += (rng.nextZipf(n, 0.0) < n / 10);
    EXPECT_NEAR(static_cast<double>(in_head) / samples, 0.1, 0.02);
}

TEST(MathUtil, GeometricMeanBasics)
{
    const std::array<double, 3> v{1.0, 10.0, 100.0};
    EXPECT_NEAR(geometricMean(v), 10.0, 1e-9);
    const std::array<double, 1> one{7.0};
    EXPECT_NEAR(geometricMean(one), 7.0, 1e-12);
}

TEST(MathUtil, GeometricMeanLeqArithmetic)
{
    Rng rng(37);
    std::vector<double> v;
    for (int i = 0; i < 50; ++i)
        v.push_back(0.1 + rng.nextDouble() * 10.0);
    EXPECT_LE(geometricMean(v), arithmeticMean(v) + 1e-12);
}

TEST(MathUtil, Pow2Helpers)
{
    EXPECT_TRUE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(65));
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(65), 6u);
    EXPECT_EQ(ceilLog2(64), 6u);
    EXPECT_EQ(ceilLog2(65), 7u);
}

TEST(MathUtil, DivCeil)
{
    EXPECT_EQ(divCeil(0, 3), 0u);
    EXPECT_EQ(divCeil(1, 3), 1u);
    EXPECT_EQ(divCeil(3, 3), 1u);
    EXPECT_EQ(divCeil(4, 3), 2u);
}

TEST(MathUtil, SafeDiv)
{
    EXPECT_DOUBLE_EQ(safeDiv(6.0, 3.0), 2.0);
    EXPECT_DOUBLE_EQ(safeDiv(6.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(safeDiv(6.0, 0.0, -1.0), -1.0);
}

TEST(SlottedPort, OneOpPerCycle)
{
    SlottedPort port(1);
    EXPECT_EQ(port.schedule(10), 10u);
    EXPECT_EQ(port.schedule(10), 11u);
    EXPECT_EQ(port.schedule(10), 12u);
}

TEST(SlottedPort, OutOfOrderClaimsEarlierSlots)
{
    SlottedPort port(1);
    EXPECT_EQ(port.schedule(100), 100u);
    // An earlier-ready op must not queue behind the later one.
    EXPECT_EQ(port.schedule(5), 5u);
    EXPECT_EQ(port.schedule(5), 6u);
}

TEST(SlottedPort, WidthAllowsParallelism)
{
    SlottedPort port(3);
    EXPECT_EQ(port.schedule(7), 7u);
    EXPECT_EQ(port.schedule(7), 7u);
    EXPECT_EQ(port.schedule(7), 7u);
    EXPECT_EQ(port.schedule(7), 8u);
}

TEST(SlottedPort, ResetClearsState)
{
    SlottedPort port(1);
    port.schedule(5);
    port.reset();
    EXPECT_EQ(port.schedule(5), 5u);
}

TEST(SlottedPort, ThroughputNeverExceedsWidth)
{
    SlottedPort port(2);
    Rng rng(41);
    std::vector<Cycles> grants;
    for (int i = 0; i < 2000; ++i)
        grants.push_back(port.schedule(rng.nextBounded(500)));
    std::sort(grants.begin(), grants.end());
    for (std::size_t i = 2; i < grants.size(); ++i)
        EXPECT_GT(grants[i], grants[i - 2]);
}

/** Property sweep: a width-w port grants at most w slots per cycle. */
class SlottedPortWidth : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(SlottedPortWidth, GrantsBoundedByWidth)
{
    const std::uint32_t w = GetParam();
    SlottedPort port(w);
    Rng rng(43);
    std::map<Cycles, int> per_cycle;
    for (int i = 0; i < 3000; ++i)
        ++per_cycle[port.schedule(rng.nextBounded(200))];
    for (const auto &[cycle, count] : per_cycle)
        EXPECT_LE(count, static_cast<int>(w));
}

INSTANTIATE_TEST_SUITE_P(Widths, SlottedPortWidth,
                         ::testing::Values(1u, 2u, 3u, 8u));

// ---------------------------------------------------------------------
// Differential tests: the ring-buffer SlottedPort must grant
// bit-identically to the historical std::map implementation
// (tests/reference_slotted_port.hh) for any request sequence --
// that equivalence is what keeps every golden report valid.
// ---------------------------------------------------------------------

namespace {

/** Drive both implementations with the same ready stream. */
void
expectIdenticalGrants(const std::vector<Cycles> &readies,
                      std::uint32_t width)
{
    SlottedPort ring(width);
    sharch::testing::MapSlottedPort ref(width);
    for (std::size_t i = 0; i < readies.size(); ++i) {
        const Cycles r = readies[i];
        ASSERT_EQ(ring.schedule(r), ref.schedule(r))
            << "diverged at request " << i << " (ready " << r
            << ", width " << width << ")";
    }
}

} // namespace

/** Randomized drifting frontier with jitter, across a width sweep. */
TEST(SlottedPortDifferential, DriftingJitteredStream)
{
    for (std::uint32_t width : {1u, 2u, 3u, 5u, 8u, 16u}) {
        Rng rng(1000 + width);
        std::vector<Cycles> readies;
        Cycles frontier = 0;
        for (int i = 0; i < 50000; ++i) {
            frontier += rng.nextBounded(3);
            const Cycles jitter = rng.nextBounded(200);
            readies.push_back(frontier > jitter ? frontier - jitter
                                                : 0);
        }
        expectIdenticalGrants(readies, width);
    }
}

/** Bursts of identical ready times saturate single cycles. */
TEST(SlottedPortDifferential, SaturatingBursts)
{
    for (std::uint32_t width : {1u, 2u, 4u}) {
        Rng rng(77 + width);
        std::vector<Cycles> readies;
        Cycles base = 0;
        for (int burst = 0; burst < 400; ++burst) {
            base += rng.nextBounded(10);
            const std::uint64_t n = 1 + rng.nextBounded(6 * width);
            for (std::uint64_t i = 0; i < n; ++i)
                readies.push_back(base);
        }
        expectIdenticalGrants(readies, width);
    }
}

/** Pathological spreads: far jumps past the ring window, then
 *  requests behind the (carried) watermark. */
TEST(SlottedPortDifferential, PathologicalSpreadsAndWatermark)
{
    for (std::uint32_t width : {1u, 2u, 8u}) {
        Rng rng(9 + width);
        std::vector<Cycles> readies;
        Cycles frontier = 0;
        for (int i = 0; i < 20000; ++i) {
            switch (rng.nextBounded(10)) {
              case 0: // jump far beyond the window
                frontier += SlottedPort::kWindow +
                            rng.nextBounded(3 * SlottedPort::kWindow);
                readies.push_back(frontier);
                break;
              case 1: // fall far behind (clamped by the watermark)
                readies.push_back(
                    frontier > 3 * SlottedPort::kLag
                        ? frontier - 3 * SlottedPort::kLag
                        : 0);
                break;
              case 2: // land exactly on window/lag boundaries
                readies.push_back(frontier + SlottedPort::kLag);
                break;
              default:
                frontier += rng.nextBounded(4);
                readies.push_back(frontier);
                break;
            }
        }
        expectIdenticalGrants(readies, width);
    }
}

/** Reset must restore the pristine state in both implementations. */
TEST(SlottedPortDifferential, ResetMatches)
{
    SlottedPort ring(2);
    sharch::testing::MapSlottedPort ref(2);
    Rng rng(5);
    for (int i = 0; i < 5000; ++i) {
        const Cycles r = rng.nextBounded(100000);
        ASSERT_EQ(ring.schedule(r), ref.schedule(r));
    }
    ring.reset();
    ref.reset();
    for (int i = 0; i < 5000; ++i) {
        const Cycles r = rng.nextBounded(300);
        ASSERT_EQ(ring.schedule(r), ref.schedule(r));
    }
}
