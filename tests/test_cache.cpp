/**
 * @file
 * Tests for the cache substrate: the set-associative tag model and
 * the banked, distance-aware, directory-coherent L2 system.
 */

#include <gtest/gtest.h>

#include "cache/cache_model.hh"
#include "cache/l2_system.hh"
#include "common/random.hh"

using namespace sharch;

namespace {

CacheConfig
tinyCache(std::uint32_t size = 512, std::uint32_t assoc = 2)
{
    return CacheConfig{size, 64, assoc, 3};
}

} // namespace

TEST(CacheModel, MissThenHit)
{
    CacheModel c(tinyCache());
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1030, false).hit); // same 64 B line
    EXPECT_FALSE(c.access(0x1040, false).hit); // next line
    EXPECT_EQ(c.accesses(), 4u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(CacheModel, LruEvictsLeastRecentlyUsed)
{
    // Direct construction of set conflicts is awkward with hashed
    // indexing; instead verify the global property that with capacity
    // for N lines, the N most recently used lines mostly survive.
    CacheModel c(tinyCache(8 * 64, 8)); // fully associative, 8 lines
    for (Addr a = 0; a < 8; ++a)
        c.access(a * 64, false);
    c.access(8 * 64, false); // evicts line 0 (LRU)
    EXPECT_FALSE(c.access(0, false).hit);
    EXPECT_TRUE(c.access(2 * 64, false).hit);
}

TEST(CacheModel, WritebackOnDirtyEviction)
{
    CacheModel c(tinyCache(2 * 64, 2)); // one set, two ways
    c.access(0x0, true);                // dirty
    c.access(0x40, false);
    const AccessResult r = c.access(0x80, false); // evicts dirty 0x0
    EXPECT_TRUE(r.writebackVictim);
    EXPECT_EQ(r.victimLine, 0u);
}

TEST(CacheModel, CleanEvictionHasNoWriteback)
{
    CacheModel c(tinyCache(2 * 64, 2));
    c.access(0x0, false);
    c.access(0x40, false);
    EXPECT_FALSE(c.access(0x80, false).writebackVictim);
}

TEST(CacheModel, InvalidateRemovesLine)
{
    CacheModel c(tinyCache());
    c.access(0x2000, true);
    EXPECT_TRUE(c.probe(0x2000));
    EXPECT_TRUE(c.invalidate(0x2000));
    EXPECT_FALSE(c.probe(0x2000));
    EXPECT_FALSE(c.invalidate(0x2000)); // already gone
    EXPECT_FALSE(c.access(0x2000, false).hit);
}

TEST(CacheModel, ProbeDoesNotDisturbLru)
{
    CacheModel c(tinyCache(2 * 64, 2));
    c.access(0x0, false);
    c.access(0x40, false);
    // Probing 0x0 must not refresh it.
    EXPECT_TRUE(c.probe(0x0));
    c.access(0x80, false); // evicts 0x0, the true LRU
    EXPECT_FALSE(c.probe(0x0));
    EXPECT_TRUE(c.probe(0x40));
}

TEST(CacheModel, FlushCountsDirtyLines)
{
    CacheModel c(tinyCache(4 * 64, 4));
    c.access(0x0, true);
    c.access(0x40, true);
    c.access(0x80, false);
    EXPECT_EQ(c.flushAll(), 2u);
    EXPECT_FALSE(c.probe(0x0));
    EXPECT_EQ(c.flushAll(), 0u);
}

TEST(CacheModel, HashedIndexSpreadsInterleavedStreams)
{
    // A Slice receives every s-th line; hashing must still use the
    // whole cache.  With 64 lines of capacity and a stride-8 stream of
    // 64 distinct lines, a modulo index would thrash one-eighth of the
    // sets; hashed indexing keeps nearly all resident.
    CacheModel c(tinyCache(64 * 64, 2));
    for (int rep = 0; rep < 4; ++rep) {
        for (Addr i = 0; i < 56; ++i)
            c.access(i * 8 * 64, false);
    }
    std::size_t resident = 0;
    for (Addr i = 0; i < 56; ++i)
        resident += c.probe(i * 8 * 64);
    EXPECT_GT(resident, 20u);
}

TEST(CacheModel, RejectsDegenerateGeometry)
{
    EXPECT_DEATH(CacheModel(CacheConfig{0, 64, 2, 1}), "");
    EXPECT_DEATH(CacheModel(CacheConfig{64, 0, 2, 1}), "");
    EXPECT_DEATH(CacheModel(CacheConfig{64, 64, 2, 1}), "");
}

namespace {

L2System
makeL2(unsigned banks, unsigned vcores = 1, unsigned slices = 2)
{
    SimConfig cfg;
    cfg.numSlices = slices;
    cfg.numL2Banks = banks;
    std::vector<FabricPlacement> placements;
    for (unsigned v = 0; v < vcores; ++v)
        placements.emplace_back(slices, banks,
                                Coord{static_cast<int>(v) * 8, 0});
    return L2System(cfg, std::move(placements));
}

} // namespace

TEST(L2System, BankInterleaveByLine)
{
    L2System l2 = makeL2(4);
    EXPECT_EQ(l2.numBanks(), 4u);
    EXPECT_EQ(l2.bankFor(0x0), 0);
    EXPECT_EQ(l2.bankFor(0x40), 1);
    EXPECT_EQ(l2.bankFor(0x80), 2);
    EXPECT_EQ(l2.bankFor(0xC0), 3);
    EXPECT_EQ(l2.bankFor(0x100), 0);
    // Same line, any offset: same bank.
    EXPECT_EQ(l2.bankFor(0x47), 1);
}

TEST(L2System, MissGoesToMemoryThenHits)
{
    L2System l2 = makeL2(2);
    const L2AccessResult miss = l2.access(0, 0, 0x1000, false, 10);
    EXPECT_FALSE(miss.l2Hit);
    EXPECT_TRUE(miss.wentToMemory);
    EXPECT_GE(miss.doneCycle, 10u + 100u);
    const L2AccessResult hit = l2.access(0, 0, 0x1000, false, 500);
    EXPECT_TRUE(hit.l2Hit);
    EXPECT_LT(hit.doneCycle, 500u + 30u);
}

TEST(L2System, HitLatencyGrowsWithDistance)
{
    // Table 3: hit delay = distance*2 + 4.
    L2System l2 = makeL2(8);
    l2.access(0, 0, 0x0, false, 0); // fill bank 0 (row 1)
    l2.access(0, 0, 0x100, false, 0); // fill bank 4 (row 2)
    const Cycles near = l2.access(0, 0, 0x0, false, 1000).doneCycle;
    const Cycles far = l2.access(0, 0, 0x100, false, 1000).doneCycle;
    EXPECT_GT(far, near);
}

TEST(L2System, NoBanksMeansMemoryLatency)
{
    L2System l2 = makeL2(0);
    const L2AccessResult r = l2.access(0, 0, 0x1000, false, 0);
    EXPECT_TRUE(r.wentToMemory);
    EXPECT_GE(r.doneCycle, 100u);
    EXPECT_FALSE(l2.probeHit(0x1000));
}

TEST(L2System, PrefillAndProbe)
{
    L2System l2 = makeL2(2);
    EXPECT_FALSE(l2.probeHit(0x4000));
    l2.prefill(0, 0x4000);
    EXPECT_TRUE(l2.probeHit(0x4000));
    EXPECT_EQ(l2.accesses(), 0u); // prefill is stats-free
    const L2AccessResult r = l2.access(0, 0, 0x4000, false, 0);
    EXPECT_TRUE(r.l2Hit);
}

TEST(L2System, DirectoryInvalidatesRemoteL1s)
{
    L2System l2 = makeL2(2, /*vcores=*/2);
    CacheModel l1a(CacheConfig{16 * 1024, 64, 2, 3});
    CacheModel l1b(CacheConfig{16 * 1024, 64, 2, 3});
    l2.registerL1s(0, {&l1a});
    l2.registerL1s(1, {&l1b});

    // VCore 0 reads a line into its L1; VCore 1 writes the same line.
    l1a.access(0x8000, false);
    l2.access(0, 0, 0x8000, false, 0);
    const L2AccessResult w = l2.access(1, 0, 0x8000, true, 50);
    EXPECT_EQ(w.invalidations, 1u);
    EXPECT_FALSE(l1a.probe(0x8000));
    EXPECT_EQ(l2.invalidations(), 1u);
}

TEST(L2System, NoCoherenceTrafficWithinOneVCore)
{
    L2System l2 = makeL2(2, /*vcores=*/1);
    CacheModel l1(CacheConfig{16 * 1024, 64, 2, 3});
    l2.registerL1s(0, {&l1});
    l1.access(0x8000, false);
    l2.access(0, 0, 0x8000, false, 0);
    const L2AccessResult w = l2.access(0, 0, 0x8000, true, 10);
    EXPECT_EQ(w.invalidations, 0u);
    EXPECT_TRUE(l1.probe(0x8000));
}

TEST(L2System, FlushBankForReconfiguration)
{
    // Section 3.8: reallocating a bank flushes its dirty state.
    L2System l2 = makeL2(2);
    l2.access(0, 0, 0x0, true, 0);   // bank 0, dirty
    l2.access(0, 0, 0x40, false, 0); // bank 1, clean
    EXPECT_EQ(l2.flushBank(0), 1u);
    EXPECT_EQ(l2.flushBank(1), 0u);
    EXPECT_FALSE(l2.probeHit(0x0));
}

TEST(L2System, FlushAllClearsEverything)
{
    L2System l2 = makeL2(4, 2);
    l2.access(0, 0, 0x0, true, 0);
    l2.access(1, 0, 0x40, true, 0);
    EXPECT_EQ(l2.flushAll(), 2u);
    EXPECT_FALSE(l2.probeHit(0x0));
    EXPECT_FALSE(l2.probeHit(0x40));
}

TEST(L2System, BankPortSerializesSameCycleAccesses)
{
    L2System l2 = makeL2(1);
    l2.access(0, 0, 0x0, false, 0);
    // Warm so both are hits, then collide on the single bank.
    l2.access(0, 0, 0x1000, false, 0);
    const Cycles a = l2.access(0, 0, 0x0, false, 100).doneCycle;
    const Cycles b = l2.access(0, 0, 0x0, false, 100).doneCycle;
    EXPECT_EQ(b, a + 1);
}

/** Property: every (size, assoc) geometry behaves like a cache. */
class CacheGeometry
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t>>
{
};

TEST_P(CacheGeometry, HitRateIncreasesWithReuse)
{
    const auto [kb, assoc] = GetParam();
    CacheModel c(CacheConfig{kb * 1024, 64, assoc, 3});
    Rng rng(5);
    // Working set half the cache: second pass must mostly hit.
    const std::uint64_t lines = kb * 1024 / 64 / 2;
    Count misses_first = 0, misses_second = 0;
    for (int pass = 0; pass < 2; ++pass) {
        for (std::uint64_t i = 0; i < lines; ++i) {
            const bool hit = c.access(i * 64, false).hit;
            (pass == 0 ? misses_first : misses_second) += !hit;
        }
    }
    EXPECT_EQ(misses_first, lines);
    // Hashed indexing admits birthday collisions, worst when
    // direct-mapped; reuse must still dominate.
    EXPECT_LT(misses_second,
              (assoc == 1 ? lines / 2 : lines / 4) + 2);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Combine(::testing::Values(4u, 16u, 64u),
                       ::testing::Values(1u, 2u, 4u, 8u)));
