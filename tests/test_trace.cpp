/**
 * @file
 * Tests for the synthetic trace generator: determinism, instruction
 * mix, the static program skeleton's front-end honesty (fixed PCs and
 * targets), the chain-structured ILP model, memory regions, and the
 * multithreaded / phase variants.
 */

#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include <gtest/gtest.h>

#include "trace/address_map.hh"
#include "trace/generator.hh"
#include "trace/instruction.hh"
#include "trace/profile.hh"
#include "trace/trace_io.hh"

using namespace sharch;

namespace {

Trace
genTrace(const std::string &name, std::size_t n = 20000,
         std::uint64_t seed = 1)
{
    return TraceGenerator(profileFor(name), seed).generate(n);
}

} // namespace

TEST(Profiles, FifteenBenchmarks)
{
    // The paper's suite: apache + SPEC CINT subset + PARSEC subset.
    EXPECT_EQ(builtinProfiles().size(), 15u);
    for (const char *required :
         {"apache", "bzip", "gcc", "astar", "libquantum", "perlbench",
          "sjeng", "hmmer", "gobmk", "mcf", "omnetpp", "h264ref",
          "dedup", "swaptions", "ferret"}) {
        EXPECT_TRUE(hasProfile(required)) << required;
    }
    EXPECT_FALSE(hasProfile("nonexistent"));
}

TEST(Profiles, ParsecIsMultithreaded)
{
    for (const char *mt : {"dedup", "swaptions", "ferret"}) {
        EXPECT_TRUE(profileFor(mt).multithreaded) << mt;
        EXPECT_EQ(profileFor(mt).numThreads, 4u) << mt;
    }
    EXPECT_FALSE(profileFor("gcc").multithreaded);
}

TEST(Profiles, FractionsAreSane)
{
    for (const BenchmarkProfile &p : builtinProfiles()) {
        EXPECT_GT(p.branchFrac, 0.0) << p.name;
        EXPECT_LT(p.loadFrac + p.storeFrac + p.branchFrac + p.mulFrac,
                  1.0)
            << p.name;
        EXPECT_GE(p.hotFrac, 0.0);
        EXPECT_LE(p.hotFrac, 1.0);
        EXPECT_GT(p.workingSetBytes, 0u);
    }
}

TEST(Generator, DeterministicForSameSeed)
{
    const Trace a = genTrace("gcc", 5000, 7);
    const Trace b = genTrace("gcc", 5000, 7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pc, b[i].pc);
        EXPECT_EQ(a[i].op, b[i].op);
        EXPECT_EQ(a[i].effAddr, b[i].effAddr);
        EXPECT_EQ(a[i].taken, b[i].taken);
    }
}

TEST(Generator, DifferentSeedsDiffer)
{
    const Trace a = genTrace("gcc", 5000, 1);
    const Trace b = genTrace("gcc", 5000, 2);
    std::size_t diff = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        diff += (a[i].pc != b[i].pc || a[i].effAddr != b[i].effAddr);
    EXPECT_GT(diff, a.size() / 10);
}

TEST(Generator, ExactLength)
{
    for (std::size_t n : {1u, 17u, 1000u})
        EXPECT_EQ(genTrace("gcc", n).size(), n);
}

TEST(Generator, MixMatchesProfile)
{
    const BenchmarkProfile &p = profileFor("gcc");
    const TraceSummary s = summarize(genTrace("gcc", 40000));
    EXPECT_NEAR(s.loadFrac, p.loadFrac, 0.03);
    EXPECT_NEAR(s.storeFrac, p.storeFrac, 0.02);
    EXPECT_NEAR(s.branchFrac, p.branchFrac, 0.05);
}

TEST(Generator, BranchTargetsAreStable)
{
    // Front-end honesty: the same branch PC always jumps to the same
    // target (section 3.1's interleaved-fetch requirement).
    const Trace t = genTrace("sjeng", 30000);
    std::unordered_map<Addr, Addr> target_of;
    for (const TraceInst &ti : t.instructions) {
        if (!ti.isBranch() || !ti.taken)
            continue;
        auto [it, fresh] = target_of.emplace(ti.pc, ti.target);
        if (!fresh) {
            EXPECT_EQ(it->second, ti.target) << std::hex << ti.pc;
        }
    }
    EXPECT_GT(target_of.size(), 10u);
}

TEST(Generator, PcsLiveInTheCodeRegion)
{
    const BenchmarkProfile &p = profileFor("gcc");
    const Trace t = genTrace("gcc", 20000);
    for (const TraceInst &ti : t.instructions) {
        EXPECT_GE(ti.pc, addrmap::kCodeBase);
        // The skeleton is allowed modest slack over codeBytes from
        // geometric block lengths.
        EXPECT_LT(ti.pc, addrmap::kCodeBase + 3 * p.codeBytes);
        EXPECT_EQ(ti.pc % 4, 0u);
    }
}

TEST(Generator, MemoryAddressesInKnownRegions)
{
    const Trace t = genTrace("gcc", 20000);
    for (const TraceInst &ti : t.instructions) {
        if (!ti.isMemory())
            continue;
        const bool hot = ti.effAddr >= addrmap::kHotBase &&
                         ti.effAddr < addrmap::kHeapBase;
        const bool heap = ti.effAddr >= addrmap::kHeapBase &&
                          ti.effAddr < addrmap::kStreamBase;
        const bool stream = ti.effAddr >= addrmap::kStreamBase &&
                            ti.effAddr < addrmap::kSharedBase;
        const bool shared = ti.effAddr >= addrmap::kSharedBase;
        EXPECT_TRUE(hot || heap || stream || shared)
            << std::hex << ti.effAddr;
    }
}

TEST(Generator, HotFractionRoughlyHonored)
{
    const BenchmarkProfile &p = profileFor("hmmer");
    const Trace t = genTrace("hmmer", 40000);
    std::size_t hot = 0, mem = 0;
    for (const TraceInst &ti : t.instructions) {
        if (!ti.isMemory())
            continue;
        ++mem;
        hot += (ti.effAddr >= addrmap::kHotBase &&
                ti.effAddr < addrmap::kHeapBase);
    }
    EXPECT_NEAR(static_cast<double>(hot) / mem, p.hotFrac, 0.05);
}

TEST(Generator, WorkingSetBounded)
{
    const BenchmarkProfile &p = profileFor("sjeng");
    const Trace t = genTrace("sjeng", 40000);
    Addr max_heap = 0;
    for (const TraceInst &ti : t.instructions) {
        if (ti.isMemory() && ti.effAddr >= addrmap::kHeapBase &&
            ti.effAddr < addrmap::kStreamBase) {
            max_heap = std::max(max_heap, ti.effAddr);
        }
    }
    EXPECT_LT(max_heap, addrmap::kHeapBase + p.workingSetBytes + 64);
}

TEST(Generator, ChainStructureExpressesIlp)
{
    // High-ILP profiles must touch more distinct chain registers.
    auto distinct_chain_regs = [](const Trace &t) {
        std::set<RegIndex> regs;
        for (const TraceInst &ti : t.instructions) {
            if (ti.dst != kNoReg && ti.dst >= 8 && ti.dst < 24)
                regs.insert(ti.dst);
        }
        return regs.size();
    };
    EXPECT_GT(distinct_chain_regs(genTrace("h264ref", 10000)),
              distinct_chain_regs(genTrace("hmmer", 10000)));
}

TEST(Generator, RegistersWithinArchitecturalRange)
{
    const Trace t = genTrace("apache", 20000);
    for (const TraceInst &ti : t.instructions) {
        for (RegIndex r : {ti.src1, ti.src2, ti.dst}) {
            if (r != kNoReg) {
                EXPECT_LT(r, 32);
            }
        }
        if (ti.isBranch()) {
            EXPECT_EQ(ti.dst, kNoReg);
        }
        if (ti.op == OpClass::Store) {
            EXPECT_EQ(ti.dst, kNoReg);
        }
        if (ti.op == OpClass::Load || ti.op == OpClass::IntAlu ||
            ti.op == OpClass::IntMul) {
            EXPECT_NE(ti.dst, kNoReg);
        }
    }
}

TEST(Generator, ThreadsGetDistinctPrivateRegions)
{
    const TraceGenerator gen(profileFor("dedup"), 3);
    const auto traces = gen.generateThreads(5000);
    ASSERT_EQ(traces.size(), 4u);
    // Private heaps must not overlap between threads.
    for (unsigned t = 0; t < 4; ++t) {
        EXPECT_EQ(traces[t].threadId, t);
        for (const TraceInst &ti : traces[t].instructions) {
            if (!ti.isMemory() || ti.effAddr >= addrmap::kSharedBase)
                continue;
            if (ti.effAddr >= addrmap::kHeapBase &&
                ti.effAddr < addrmap::kStreamBase) {
                const Addr base =
                    addrmap::threadBase(addrmap::kHeapBase, t);
                EXPECT_GE(ti.effAddr, base);
                EXPECT_LT(ti.effAddr, base + addrmap::kThreadStride);
            }
        }
    }
}

TEST(Generator, SharedRegionOnlyForMultithreaded)
{
    auto shared_refs = [](const Trace &t) {
        std::size_t n = 0;
        for (const TraceInst &ti : t.instructions)
            n += ti.isMemory() && ti.effAddr >= addrmap::kSharedBase;
        return n;
    };
    EXPECT_EQ(shared_refs(genTrace("gcc", 20000)), 0u);
    const TraceGenerator gen(profileFor("dedup"), 1);
    const auto traces = gen.generateThreads(20000);
    EXPECT_GT(shared_refs(traces[0]), 0u);
}

TEST(Generator, SingleThreadedGeneratesOneTrace)
{
    const TraceGenerator gen(profileFor("gcc"), 1);
    EXPECT_EQ(gen.generateThreads(100).size(), 1u);
}

TEST(Phases, TenPhasesDerivedFromGcc)
{
    const auto phases = gccPhaseProfiles();
    ASSERT_EQ(phases.size(), 10u);
    std::set<std::string> names;
    for (const BenchmarkProfile &p : phases) {
        names.insert(p.name);
        EXPECT_EQ(p.name.rfind("gcc.phase", 0), 0u);
        EXPECT_GT(p.workingSetBytes, 0u);
    }
    EXPECT_EQ(names.size(), 10u);
    // Phases genuinely differ.
    EXPECT_NE(phases.front().workingSetBytes,
              phases.back().workingSetBytes);
}

TEST(Summary, CountsDistinctLines)
{
    Trace t;
    t.benchmark = "synthetic";
    for (int i = 0; i < 4; ++i) {
        TraceInst ti;
        ti.op = OpClass::Load;
        ti.dst = 8;
        ti.effAddr = static_cast<Addr>(i % 2) * 64;
        t.instructions.push_back(ti);
    }
    EXPECT_EQ(summarize(t).distinctLines, 2u);
    EXPECT_DOUBLE_EQ(summarize(t).loadFrac, 1.0);
}

/** Property sweep: every profile generates clean traces. */
class AllProfiles : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AllProfiles, GeneratesWellFormedTraces)
{
    const BenchmarkProfile &p = profileFor(GetParam());
    TraceGenerator gen(p, 11);
    const Trace t = gen.generate(8000);
    EXPECT_EQ(t.size(), 8000u);
    EXPECT_EQ(t.benchmark, p.name);
    const TraceSummary s = summarize(t);
    EXPECT_GT(s.branchFrac, 0.0);
    EXPECT_GT(s.loadFrac, 0.0);
    EXPECT_GT(s.distinctLines, 10u);
    for (const TraceInst &ti : t.instructions) {
        if (ti.isMemory()) {
            EXPECT_NE(ti.effAddr, 0u);
        }
        if (ti.isBranch() && ti.taken) {
            EXPECT_NE(ti.target, 0u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(EveryBenchmark, AllProfiles,
                         ::testing::ValuesIn(benchmarkNames()));

// ---- trace file I/O --------------------------------------------------

/** The packed record layout must not cost any field its full range:
 *  every field at its extremes survives a trace_io round trip. */
TEST(TraceIo, PackedLayoutRoundTripsFieldExtremes)
{
    // Replay bandwidth scales with the record size; the layout is
    // pinned (also via static_assert in instruction.hh).
    EXPECT_EQ(sizeof(TraceInst), 32u);

    Trace t;
    t.benchmark = "layout";
    t.threadId = 3;
    const Addr max64 = ~Addr{0};
    const RegIndex maxReg = 0xfffe; // kNoReg - 1
    const OpClass ops[] = {OpClass::IntAlu, OpClass::IntMul,
                           OpClass::Load, OpClass::Store,
                           OpClass::Branch};
    for (OpClass op : ops) {
        for (bool extremes : {false, true}) {
            TraceInst ti;
            ti.op = op;
            ti.pc = extremes ? max64 : 0;
            ti.effAddr = extremes ? max64 : 0;
            ti.target = extremes ? max64 : 0;
            ti.src1 = extremes ? maxReg : kNoReg;
            ti.src2 = extremes ? RegIndex{0} : kNoReg;
            ti.dst = extremes ? maxReg : kNoReg;
            ti.taken = extremes;
            t.instructions.push_back(ti);
        }
    }

    std::stringstream buf;
    ASSERT_TRUE(writeTrace(t, buf));
    const auto back = readTrace(buf);
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(back->size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ((*back)[i].pc, t[i].pc);
        EXPECT_EQ((*back)[i].op, t[i].op);
        EXPECT_EQ((*back)[i].src1, t[i].src1);
        EXPECT_EQ((*back)[i].src2, t[i].src2);
        EXPECT_EQ((*back)[i].dst, t[i].dst);
        EXPECT_EQ((*back)[i].effAddr, t[i].effAddr);
        EXPECT_EQ((*back)[i].target, t[i].target);
        EXPECT_EQ((*back)[i].taken, t[i].taken);
    }
}

TEST(TraceIo, RoundTripsExactly)
{
    const Trace original = genTrace("gcc", 4000, 5);
    std::stringstream buf;
    ASSERT_TRUE(writeTrace(original, buf));
    const auto back = readTrace(buf);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->benchmark, original.benchmark);
    EXPECT_EQ(back->threadId, original.threadId);
    ASSERT_EQ(back->size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ((*back)[i].pc, original[i].pc);
        EXPECT_EQ((*back)[i].op, original[i].op);
        EXPECT_EQ((*back)[i].src1, original[i].src1);
        EXPECT_EQ((*back)[i].src2, original[i].src2);
        EXPECT_EQ((*back)[i].dst, original[i].dst);
        EXPECT_EQ((*back)[i].effAddr, original[i].effAddr);
        EXPECT_EQ((*back)[i].target, original[i].target);
        EXPECT_EQ((*back)[i].taken, original[i].taken);
    }
}

TEST(TraceIo, FileRoundTrip)
{
    const std::string path = "test_trace_io.shtr";
    const Trace original = genTrace("hmmer", 500, 2);
    ASSERT_TRUE(writeTraceFile(original, path));
    const auto back = readTraceFile(path);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->size(), 500u);
    std::filesystem::remove(path);
}

TEST(TraceIo, RejectsBadMagic)
{
    std::stringstream buf;
    buf << "NOPE garbage";
    EXPECT_FALSE(readTrace(buf).has_value());
}

TEST(TraceIo, RejectsTruncatedStream)
{
    const Trace original = genTrace("gcc", 100, 1);
    std::stringstream buf;
    ASSERT_TRUE(writeTrace(original, buf));
    const std::string whole = buf.str();
    // Chop the last record in half.
    std::stringstream cut(whole.substr(0, whole.size() - 10));
    EXPECT_FALSE(readTrace(cut).has_value());
}

TEST(TraceIo, RejectsWrongVersion)
{
    const Trace original = genTrace("gcc", 10, 1);
    std::stringstream buf;
    ASSERT_TRUE(writeTrace(original, buf));
    std::string bytes = buf.str();
    bytes[4] = 99; // version field
    std::stringstream bad(bytes);
    EXPECT_FALSE(readTrace(bad).has_value());
}

TEST(TraceIo, MissingFileReturnsNullopt)
{
    EXPECT_FALSE(readTraceFile("/nonexistent/trace.shtr").has_value());
}
