/**
 * @file
 * Tests for the XML subset parser and the typed simulator
 * configuration (SSim reads its parameters from XML, section 5.2).
 */

#include <gtest/gtest.h>

#include "config/sim_config.hh"
#include "config/xml.hh"

using namespace sharch;

TEST(Xml, ParsesSimpleElement)
{
    XmlResult r = parseXml("<root/>");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.root->name(), "root");
    EXPECT_TRUE(r.root->children().empty());
}

TEST(Xml, ParsesTextContent)
{
    XmlResult r = parseXml("<a>  hello world  </a>");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.root->childText("missing"), std::nullopt);
    EXPECT_NE(r.root->text().find("hello world"), std::string::npos);
}

TEST(Xml, ParsesNestedChildren)
{
    XmlResult r = parseXml("<a><b><c>1</c></b><b>2</b></a>");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.root->children().size(), 2u);
    EXPECT_EQ(r.root->childrenNamed("b").size(), 2u);
    const XmlNode *b = r.root->child("b");
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->childLong("c"), 1);
}

TEST(Xml, ParsesAttributes)
{
    XmlResult r = parseXml("<a x=\"1\" y='two'/>");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.root->attribute("x"), "1");
    EXPECT_EQ(r.root->attribute("y"), "two");
    EXPECT_EQ(r.root->attribute("z"), std::nullopt);
}

TEST(Xml, SkipsCommentsAndDeclaration)
{
    XmlResult r = parseXml(
        "<?xml version=\"1.0\"?>\n"
        "<!-- top comment -->\n"
        "<a><!-- inner --><b>3</b></a>");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.root->childLong("b"), 3);
}

TEST(Xml, DecodesEntities)
{
    XmlResult r = parseXml("<a q=\"&lt;&amp;&gt;\">&quot;x&apos;</a>");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.root->attribute("q"), "<&>");
    EXPECT_NE(r.root->text().find("\"x'"), std::string::npos);
}

TEST(Xml, ChildTypedAccessors)
{
    XmlResult r = parseXml(
        "<a><i>42</i><d>2.5</d><t>true</t><f>0</f><bad>xyz</bad></a>");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.root->childLong("i"), 42);
    EXPECT_EQ(r.root->childDouble("d"), 2.5);
    EXPECT_EQ(r.root->childBool("t"), true);
    EXPECT_EQ(r.root->childBool("f"), false);
    EXPECT_EQ(r.root->childLong("bad"), std::nullopt);
    EXPECT_EQ(r.root->childBool("bad"), std::nullopt);
}

TEST(Xml, RejectsMismatchedTags)
{
    XmlResult r = parseXml("<a><b></a></b>");
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.error.empty());
}

TEST(Xml, RejectsUnterminatedElement)
{
    EXPECT_FALSE(parseXml("<a><b>").ok());
    EXPECT_FALSE(parseXml("<a attr=\"x>").ok());
    EXPECT_FALSE(parseXml("<a><!-- comment <b/>").ok());
}

TEST(Xml, RejectsTrailingContent)
{
    EXPECT_FALSE(parseXml("<a/><b/>").ok());
}

TEST(Xml, ReportsErrorLine)
{
    XmlResult r = parseXml("<a>\n<b>\n</c>\n</a>");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.errorLine, 3);
}

TEST(Xml, WriteReadRoundTrip)
{
    XmlNode root("cfg");
    root.setAttribute("version", "1");
    root.addChild("x").setText("10");
    XmlNode &sub = root.addChild("sub");
    sub.addChild("y").setText("hello & <world>");

    XmlResult r = parseXml(writeXml(root));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.root->attribute("version"), "1");
    EXPECT_EQ(r.root->childLong("x"), 10);
    EXPECT_EQ(r.root->child("sub")->childText("y"), "hello & <world>");
}

TEST(SimConfigXml, DefaultsMatchTables2And3)
{
    const SimConfig cfg;
    // Table 2.
    EXPECT_EQ(cfg.slice.issueWindowSize, 32u);
    EXPECT_EQ(cfg.slice.lsqSize, 32u);
    EXPECT_EQ(cfg.slice.numFunctionalUnits, 2u);
    EXPECT_EQ(cfg.slice.robSize, 64u);
    EXPECT_EQ(cfg.slice.numGlobalRegisters, 128u);
    EXPECT_EQ(cfg.slice.storeBufferSize, 8u);
    EXPECT_EQ(cfg.slice.numLocalRegisters, 64u);
    EXPECT_EQ(cfg.slice.maxInflightLoads, 8u);
    EXPECT_EQ(cfg.memoryLatency, 100u);
    // Table 3.
    EXPECT_EQ(cfg.l1d.sizeBytes, 16u * 1024);
    EXPECT_EQ(cfg.l1d.associativity, 2u);
    EXPECT_EQ(cfg.l1d.hitLatency, 3u);
    EXPECT_EQ(cfg.l2Bank.sizeBytes, 64u * 1024);
    EXPECT_EQ(cfg.l2Bank.associativity, 4u);
    EXPECT_EQ(cfg.l2Bank.hitLatency, 4u);
    EXPECT_EQ(cfg.l2DistanceCyclesPerHop, 2u);
    // Base VCore: 128 KB of L2.
    EXPECT_EQ(cfg.l2Bytes(), 128u * 1024);
    // Section 5.10 reconfiguration costs.
    EXPECT_EQ(cfg.reconfigCacheFlushCycles, 10000u);
    EXPECT_EQ(cfg.reconfigSliceOnlyCycles, 500u);
}

TEST(SimConfigXml, RoundTripsThroughXml)
{
    SimConfig cfg;
    cfg.numSlices = 5;
    cfg.numL2Banks = 17;
    cfg.slice.robSize = 96;
    cfg.l2Bank.associativity = 8;
    cfg.network.operandNetworks = 2;
    cfg.memoryLatency = 150;

    XmlResult r = parseXml(simConfigToXml(cfg));
    ASSERT_TRUE(r.ok());
    std::string error;
    const SimConfig back = simConfigFromXml(*r.root, &error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_EQ(back.numSlices, 5u);
    EXPECT_EQ(back.numL2Banks, 17u);
    EXPECT_EQ(back.slice.robSize, 96u);
    EXPECT_EQ(back.l2Bank.associativity, 8u);
    EXPECT_EQ(back.network.operandNetworks, 2u);
    EXPECT_EQ(back.memoryLatency, 150u);
}

TEST(SimConfigXml, PartialDocumentKeepsDefaults)
{
    XmlResult r =
        parseXml("<ssim><num_slices>4</num_slices></ssim>");
    ASSERT_TRUE(r.ok());
    std::string error;
    const SimConfig cfg = simConfigFromXml(*r.root, &error);
    EXPECT_TRUE(error.empty());
    EXPECT_EQ(cfg.numSlices, 4u);
    EXPECT_EQ(cfg.slice.robSize, 64u); // default retained
}

TEST(SimConfigXml, ReportsMalformedValues)
{
    XmlResult r =
        parseXml("<ssim><num_slices>four</num_slices></ssim>");
    ASSERT_TRUE(r.ok());
    std::string error;
    simConfigFromXml(*r.root, &error);
    EXPECT_FALSE(error.empty());
}

TEST(SimConfigXml, ValidateRejectsBadConfigs)
{
    SimConfig cfg;
    cfg.numSlices = 0;
    EXPECT_FALSE(cfg.validate().empty());
    cfg = SimConfig{};
    cfg.numSlices = 9;
    EXPECT_FALSE(cfg.validate().empty());
    cfg = SimConfig{};
    cfg.l1d.sizeBytes = 3000; // not a power of two
    EXPECT_FALSE(cfg.validate().empty());
    cfg = SimConfig{};
    EXPECT_TRUE(cfg.validate().empty());
}

TEST(SimConfigXml, EquationThreeBounds)
{
    // Equation 3: 0 KB <= c <= 8 MB, 1 <= s <= 8.
    EXPECT_EQ(SimConfig::kMaxSlices, 8u);
    EXPECT_EQ(SimConfig::kMaxL2Banks * 64u * 1024u, 8u << 20);
}
