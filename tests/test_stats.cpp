/**
 * @file
 * Tests for the statistics package: counters, samples, histograms,
 * SimStats derived rates, merging, and reporting.
 */

#include <gtest/gtest.h>

#include "stats/stats.hh"

using namespace sharch;

TEST(Counter, StartsAtZeroAndIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(9);
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Sample, TracksMeanMinMax)
{
    Sample s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    s.add(2.0);
    s.add(4.0);
    s.add(9.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.total(), 15.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Sample, SingleNegativeValue)
{
    Sample s;
    s.add(-3.5);
    EXPECT_DOUBLE_EQ(s.min(), -3.5);
    EXPECT_DOUBLE_EQ(s.max(), -3.5);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4, 10.0); // [0,10) [10,20) [20,30) [30,40)
    h.add(0.0);
    h.add(9.99);
    h.add(10.0);
    h.add(35.0);
    h.add(40.0);  // overflow
    h.add(-1.0);  // negative -> overflow
    EXPECT_EQ(h.numBuckets(), 4u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.samples(), 6u);
}

TEST(SimStats, DerivedRates)
{
    SimStats s;
    s.cycles = 200;
    s.instructionsCommitted = 100;
    EXPECT_DOUBLE_EQ(s.ipc(), 0.5);
    s.branches = 50;
    s.branchMispredicts = 5;
    EXPECT_DOUBLE_EQ(s.branchMispredictRate(), 0.1);
    s.l1dAccesses = 40;
    s.l1dMisses = 10;
    EXPECT_DOUBLE_EQ(s.l1dMissRate(), 0.25);
    s.l2Accesses = 10;
    s.l2Misses = 10;
    EXPECT_DOUBLE_EQ(s.l2MissRate(), 1.0);
}

TEST(SimStats, RatesSafeWhenEmpty)
{
    const SimStats s;
    EXPECT_DOUBLE_EQ(s.ipc(), 0.0);
    EXPECT_DOUBLE_EQ(s.branchMispredictRate(), 0.0);
    EXPECT_DOUBLE_EQ(s.l1dMissRate(), 0.0);
    EXPECT_DOUBLE_EQ(s.l2MissRate(), 0.0);
}

TEST(SimStats, StallAccounting)
{
    SimStats s;
    s.addStall(Stage::Fetch, 3);
    s.addStall(Stage::Fetch);
    s.addStall(Stage::Memory, 7);
    EXPECT_EQ(s.stall(Stage::Fetch), 4u);
    EXPECT_EQ(s.stall(Stage::Memory), 7u);
    EXPECT_EQ(s.stall(Stage::Commit), 0u);
}

TEST(SimStats, MergeTakesMaxCyclesAndSumsCounts)
{
    SimStats a, b;
    a.cycles = 100;
    a.instructionsCommitted = 10;
    a.loads = 4;
    a.addStall(Stage::Issue, 5);
    b.cycles = 80;
    b.instructionsCommitted = 20;
    b.loads = 6;
    b.addStall(Stage::Issue, 2);
    a.merge(b);
    EXPECT_EQ(a.cycles, 100u);
    EXPECT_EQ(a.instructionsCommitted, 30u);
    EXPECT_EQ(a.loads, 10u);
    EXPECT_EQ(a.stall(Stage::Issue), 7u);
}

TEST(SimStats, ReportMentionsKeyFields)
{
    SimStats s;
    s.cycles = 123;
    s.instructionsCommitted = 456;
    const std::string rep = s.report();
    EXPECT_NE(rep.find("123"), std::string::npos);
    EXPECT_NE(rep.find("456"), std::string::npos);
    EXPECT_NE(rep.find("ipc"), std::string::npos);
    EXPECT_NE(rep.find("fetch"), std::string::npos);
}

TEST(Stages, AllStagesNamed)
{
    for (int i = 0; i < static_cast<int>(Stage::NumStages); ++i) {
        const char *name = stageName(static_cast<Stage>(i));
        EXPECT_NE(name, nullptr);
        EXPECT_STRNE(name, "unknown");
    }
}
