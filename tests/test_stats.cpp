/**
 * @file
 * Tests for the statistics package: counters, samples, histograms,
 * SimStats derived rates, merging, and reporting.
 */

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "stats/stats.hh"

using namespace sharch;

TEST(Counter, StartsAtZeroAndIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(9);
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Sample, TracksMeanMinMax)
{
    Sample s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    s.add(2.0);
    s.add(4.0);
    s.add(9.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.total(), 15.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Sample, SingleNegativeValue)
{
    Sample s;
    s.add(-3.5);
    EXPECT_DOUBLE_EQ(s.min(), -3.5);
    EXPECT_DOUBLE_EQ(s.max(), -3.5);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4, 10.0); // [0,10) [10,20) [20,30) [30,40)
    h.add(0.0);
    h.add(9.99);
    h.add(10.0);
    h.add(35.0);
    h.add(40.0);  // overflow
    h.add(-1.0);  // negative -> overflow
    EXPECT_EQ(h.numBuckets(), 4u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.samples(), 6u);
}

TEST(SimStats, DerivedRates)
{
    SimStats s;
    s.cycles = 200;
    s.instructionsCommitted = 100;
    EXPECT_DOUBLE_EQ(s.ipc(), 0.5);
    s.branches = 50;
    s.branchMispredicts = 5;
    EXPECT_DOUBLE_EQ(s.branchMispredictRate(), 0.1);
    s.l1dAccesses = 40;
    s.l1dMisses = 10;
    EXPECT_DOUBLE_EQ(s.l1dMissRate(), 0.25);
    s.l2Accesses = 10;
    s.l2Misses = 10;
    EXPECT_DOUBLE_EQ(s.l2MissRate(), 1.0);
}

TEST(SimStats, RatesSafeWhenEmpty)
{
    const SimStats s;
    EXPECT_DOUBLE_EQ(s.ipc(), 0.0);
    EXPECT_DOUBLE_EQ(s.branchMispredictRate(), 0.0);
    EXPECT_DOUBLE_EQ(s.l1dMissRate(), 0.0);
    EXPECT_DOUBLE_EQ(s.l2MissRate(), 0.0);
}

TEST(SimStats, StallAccounting)
{
    SimStats s;
    s.addStall(Stage::Fetch, 3);
    s.addStall(Stage::Fetch);
    s.addStall(Stage::Memory, 7);
    EXPECT_EQ(s.stall(Stage::Fetch), 4u);
    EXPECT_EQ(s.stall(Stage::Memory), 7u);
    EXPECT_EQ(s.stall(Stage::Commit), 0u);
}

TEST(SimStats, MergeTakesMaxCyclesAndSumsCounts)
{
    SimStats a, b;
    a.cycles = 100;
    a.instructionsCommitted = 10;
    a.loads = 4;
    a.addStall(Stage::Issue, 5);
    b.cycles = 80;
    b.instructionsCommitted = 20;
    b.loads = 6;
    b.addStall(Stage::Issue, 2);
    a.merge(b);
    EXPECT_EQ(a.cycles, 100u);
    EXPECT_EQ(a.instructionsCommitted, 30u);
    EXPECT_EQ(a.loads, 10u);
    EXPECT_EQ(a.stall(Stage::Issue), 7u);
}

TEST(SimStats, ReportMentionsKeyFields)
{
    SimStats s;
    s.cycles = 123;
    s.instructionsCommitted = 456;
    const std::string rep = s.report();
    EXPECT_NE(rep.find("123"), std::string::npos);
    EXPECT_NE(rep.find("456"), std::string::npos);
    EXPECT_NE(rep.find("ipc"), std::string::npos);
    EXPECT_NE(rep.find("fetch"), std::string::npos);
}

TEST(Stages, AllStagesNamed)
{
    for (int i = 0; i < static_cast<int>(Stage::NumStages); ++i) {
        const char *name = stageName(static_cast<Stage>(i));
        EXPECT_NE(name, nullptr);
        EXPECT_STRNE(name, "unknown");
    }
}

namespace {

/**
 * Every field gets a distinct prime-ish value so a swapped pair of
 * counters in toJson() cannot cancel out in the golden diff.
 */
SimStats
goldenStats()
{
    SimStats st;
    st.cycles = 1000;
    st.instructionsCommitted = 800;
    st.instructionsFetched = 900;
    st.squashedInstructions = 100;
    st.branches = 150;
    st.branchMispredicts = 15;
    st.loads = 300;
    st.stores = 200;
    st.lsqViolations = 7;
    st.l1dAccesses = 500;
    st.l1dMisses = 50;
    st.l1iAccesses = 450;
    st.l1iMisses = 9;
    st.l2Accesses = 59;
    st.l2Misses = 13;
    st.coherenceInvalidations = 3;
    st.operandRequests = 120;
    st.operandReplies = 119;
    st.operandNetworkHops = 240;
    st.operandNetworkStalls = 11;
    st.renameBroadcasts = 77;
    st.sumOperandWait = 1600;
    st.sumIssueWait = 2400;
    st.sumExecLatency = 4000;
    st.addStall(Stage::Fetch, 21);
    st.addStall(Stage::Rename, 22);
    st.addStall(Stage::Dispatch, 23);
    st.addStall(Stage::Issue, 24);
    st.addStall(Stage::Execute, 25);
    st.addStall(Stage::Memory, 26);
    st.addStall(Stage::Commit, 27);
    return st;
}

} // namespace

TEST(SimStats, ToJsonMatchesGoldenFile)
{
    // The committed golden pins both the field set and the byte-level
    // formatting: ssim --json and every study report embed this
    // document verbatim, so a silent rename or reordering here is a
    // schema break for every downstream consumer.  To regenerate
    // after an *intentional* change:
    //   build/tests/test_stats \
    //       --gtest_filter=SimStats.ToJsonMatchesGoldenFile
    // and copy the "actual" line from the failure message into
    // tests/golden/simstats.json (no trailing newline).
    std::ifstream in(std::string(SHARCH_TEST_DATA_DIR) +
                     "/simstats.json");
    ASSERT_TRUE(in) << "missing tests/golden/simstats.json";
    std::stringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(goldenStats().toJson(), golden.str())
        << "actual: " << goldenStats().toJson();
}

TEST(SimStats, ToJsonCoversEveryField)
{
    // Completeness guard independent of the golden bytes: every
    // distinct value planted by goldenStats() must surface somewhere
    // in the document.
    const std::string doc = goldenStats().toJson();
    for (const char *needle :
         {"\"cycles\":1000", "\"instructions_committed\":800",
          "\"instructions_fetched\":900",
          "\"squashed_instructions\":100", "\"branches\":150",
          "\"branch_mispredicts\":15", "\"loads\":300",
          "\"stores\":200", "\"lsq_violations\":7",
          "\"l1d_accesses\":500", "\"l1d_misses\":50",
          "\"l1i_accesses\":450", "\"l1i_misses\":9",
          "\"l2_accesses\":59", "\"l2_misses\":13",
          "\"coherence_invalidations\":3",
          "\"operand_requests\":120", "\"operand_replies\":119",
          "\"operand_network_hops\":240",
          "\"operand_network_stalls\":11",
          "\"rename_broadcasts\":77", "\"ipc\":", "\"l1d_miss_rate\":",
          "\"l2_miss_rate\":", "\"branch_mispredict_rate\":",
          "\"avg_operand_wait\":2", "\"avg_issue_wait\":3",
          "\"avg_exec_latency\":5", "\"fetch\":21", "\"rename\":22",
          "\"dispatch\":23", "\"issue\":24", "\"execute\":25",
          "\"memory\":26", "\"commit\":27"}) {
        EXPECT_NE(doc.find(needle), std::string::npos)
            << "missing " << needle << " in " << doc;
    }
}
