/**
 * @file
 * Tests for the Slice microarchitecture structures: the distributed
 * branch predictor, occupancy limiters, rename state, memory
 * dependence tracking, and the Table 1 structure policy.
 */

#include <gtest/gtest.h>

#include "uarch/branch_predictor.hh"
#include "uarch/mem_dep.hh"
#include "uarch/rename.hh"
#include "uarch/structure_policy.hh"
#include "uarch/structures.hh"

using namespace sharch;

TEST(Bimodal, LearnsATakenBranch)
{
    BimodalPredictor bp(64);
    const Addr pc = 0x400100;
    bp.update(pc, true);
    bp.update(pc, true);
    EXPECT_TRUE(bp.predict(pc));
    bp.update(pc, false);
    bp.update(pc, false);
    bp.update(pc, false);
    EXPECT_FALSE(bp.predict(pc));
}

TEST(Bimodal, HysteresisSurvivesOneFlip)
{
    BimodalPredictor bp(64);
    const Addr pc = 0x400104;
    for (int i = 0; i < 4; ++i)
        bp.update(pc, true);
    bp.update(pc, false); // a single not-taken shouldn't flip it
    EXPECT_TRUE(bp.predict(pc));
}

TEST(Btb, StoresAndTagsTargets)
{
    Btb btb(64);
    Addr target = 0;
    EXPECT_FALSE(btb.lookup(0x1000, target));
    btb.update(0x1000, 0x2000);
    ASSERT_TRUE(btb.lookup(0x1000, target));
    EXPECT_EQ(target, 0x2000u);
    // An aliasing PC (same index, different tag) must miss.
    EXPECT_FALSE(btb.lookup(0x1000 + 64 * 4, target));
}

TEST(DistributedPredictor, SamePcSameSlice)
{
    // Section 3.1: the same PC is always fetched by the same Slice,
    // so its predictor state never migrates.
    const DistributedBranchPredictor p(4, 64, 64);
    for (Addr pc = 0x400000; pc < 0x400100; pc += 4)
        EXPECT_EQ(p.sliceFor(pc), p.sliceFor(pc));
    // PC pairs interleave across slices.
    EXPECT_NE(p.sliceFor(0x400000), p.sliceFor(0x400008));
}

TEST(DistributedPredictor, CapacityScalesWithSlices)
{
    // Train two branches that would alias in a single small table but
    // land on different Slices' tables in a 2-Slice VCore.
    DistributedBranchPredictor p(2, 16, 16);
    const Addr pc_a = 0x400000;        // slice 0
    const Addr pc_b = pc_a + 8;        // slice 1
    for (int i = 0; i < 3; ++i) {
        p.update(pc_a, true, pc_a + 64);
        p.update(pc_b, false, 0);
    }
    EXPECT_TRUE(p.predict(pc_a).predictTaken);
    EXPECT_FALSE(p.predict(pc_b).predictTaken);
    EXPECT_TRUE(p.predict(pc_a).btbHit);
    EXPECT_EQ(p.predict(pc_a).target, pc_a + 64);
}

TEST(OccupancyLimiter, NoConstraintUntilFull)
{
    OccupancyLimiter lim(2);
    EXPECT_EQ(lim.allocConstraint(), 0u);
    lim.allocate(10);
    EXPECT_EQ(lim.allocConstraint(), 0u);
    lim.allocate(20);
    // Now full: the next allocation waits for the oldest release.
    EXPECT_EQ(lim.allocConstraint(), 10u);
    lim.allocate(30);
    EXPECT_EQ(lim.allocConstraint(), 20u);
}

TEST(OccupancyLimiter, OccupancyCountsLiveEntries)
{
    OccupancyLimiter lim(4);
    lim.allocate(100);
    lim.allocate(200);
    EXPECT_EQ(lim.occupancy(50), 2u);
    EXPECT_EQ(lim.occupancy(150), 1u);
    EXPECT_EQ(lim.occupancy(250), 0u);
    lim.reset();
    EXPECT_EQ(lim.allocConstraint(), 0u);
}

TEST(UnorderedOccupancy, FreesOutOfOrder)
{
    UnorderedOccupancy win(2);
    EXPECT_EQ(win.allocate(0, 100), 0u);  // long-lived entry
    EXPECT_EQ(win.allocate(1, 5), 1u);    // short-lived entry
    // Full at t=2, but the *short* entry frees at 5 -- the allocation
    // must wait for 5, not for 100 (in-order release would).
    EXPECT_EQ(win.allocate(2, 50), 5u);
    // Full again; earliest live release is 50.
    EXPECT_EQ(win.allocate(6, 60), 50u);
}

TEST(UnorderedOccupancy, FreeEntriesDropAtAllocation)
{
    UnorderedOccupancy win(1);
    win.allocate(0, 10);
    // At t=20 the entry has freed; no wait.
    EXPECT_EQ(win.allocate(20, 30), 20u);
}

TEST(UnitPort, WidthPerCycle)
{
    UnitPort port(2);
    EXPECT_EQ(port.schedule(5), 5u);
    EXPECT_EQ(port.schedule(5), 5u);
    EXPECT_EQ(port.schedule(5), 6u);
    port.reset();
    EXPECT_EQ(port.schedule(0), 0u);
}

TEST(RenameDepth, GrowsWithSliceCount)
{
    EXPECT_EQ(renameDepth(1), 1u);
    EXPECT_EQ(renameDepth(2), 2u);
    EXPECT_EQ(renameDepth(4), 2u);
    EXPECT_EQ(renameDepth(5), 3u);
    EXPECT_EQ(renameDepth(8), 3u);
}

TEST(RenameState, DefineAndLookup)
{
    RenameState rs;
    EXPECT_EQ(rs.lookup(3).readyCycle, 0u);
    rs.define(3, /*slice=*/2, /*ready=*/55, /*seq=*/9);
    EXPECT_EQ(rs.lookup(3).slice, 2);
    EXPECT_EQ(rs.lookup(3).readyCycle, 55u);
    EXPECT_EQ(rs.lookup(3).seq, 9u);
    // Redefinition replaces.
    rs.define(3, 0, 60, 10);
    EXPECT_EQ(rs.lookup(3).slice, 0);
}

TEST(RenameState, RegisterFlushMovesEverythingToOneSlice)
{
    // Section 3.8's Register Flush when a VCore sheds Slices.
    RenameState rs;
    rs.define(1, 3, 10, 1);
    rs.define(2, 5, 200, 2);
    rs.flushTo(0, 100);
    EXPECT_EQ(rs.lookup(1).slice, 0);
    EXPECT_EQ(rs.lookup(1).readyCycle, 100u); // bumped to flush time
    EXPECT_EQ(rs.lookup(2).slice, 0);
    EXPECT_EQ(rs.lookup(2).readyCycle, 200u); // later value unchanged
}

TEST(MemDep, ForwardableStoreFound)
{
    MemDepTracker md;
    md.recordStore(0x1000, /*seq=*/5, /*addr_ready=*/10,
                   /*data_ready=*/12);
    const MemDepResult r = md.queryLoad(0x1000, /*load_seq=*/9);
    EXPECT_TRUE(r.conflict);
    EXPECT_EQ(r.storeSeq, 5u);
    EXPECT_EQ(r.storeDataReady, 12u);
}

TEST(MemDep, YoungerStoresDoNotConflict)
{
    MemDepTracker md;
    md.recordStore(0x1000, 20, 10, 12);
    EXPECT_FALSE(md.queryLoad(0x1000, 15).conflict);
}

TEST(MemDep, MatchesWordGranularity)
{
    MemDepTracker md;
    md.recordStore(0x1000, 5, 10, 12);
    EXPECT_TRUE(md.queryLoad(0x1004, 9).conflict);  // same 8 B word
    EXPECT_FALSE(md.queryLoad(0x1008, 9).conflict); // next word
}

TEST(MemDep, YoungestOlderStoreWins)
{
    MemDepTracker md;
    md.recordStore(0x1000, 3, 10, 11);
    md.recordStore(0x1000, 6, 20, 21);
    const MemDepResult r = md.queryLoad(0x1000, 9);
    EXPECT_EQ(r.storeSeq, 6u);
}

TEST(MemDep, WindowEvictsOldStores)
{
    MemDepTracker md(4);
    md.recordStore(0x1000, 1, 10, 11);
    for (SeqNum s = 2; s <= 5; ++s)
        md.recordStore(0x2000 + s * 64, s, 10, 11);
    // The 0x1000 store fell out of the 4-entry window.
    EXPECT_FALSE(md.queryLoad(0x1000, 9).conflict);
}

TEST(MemDep, ResetForgetsEverything)
{
    MemDepTracker md;
    md.recordStore(0x1000, 5, 10, 12);
    md.reset();
    EXPECT_FALSE(md.queryLoad(0x1000, 9).conflict);
}

/** The backing ring is power-of-two sized for mask indexing, but a
 *  non-power-of-two window must still evict at *exactly* the window
 *  depth -- not at the rounded ring capacity. */
TEST(MemDep, NonPowerOfTwoWindowEvictsExactly)
{
    for (std::size_t window : {3u, 5u, 7u}) {
        MemDepTracker md(window);
        md.recordStore(0x1000, 1, 10, 11);
        // Fill the remaining window-1 slots, then one more to evict.
        for (SeqNum s = 2; s <= static_cast<SeqNum>(window); ++s) {
            md.recordStore(0x2000 + s * 64, s, 10, 11);
            EXPECT_TRUE(md.queryLoad(0x1000, 99).conflict)
                << "window " << window << " evicted too early";
        }
        md.recordStore(0x9000, window + 1, 10, 11);
        EXPECT_FALSE(md.queryLoad(0x1000, 99).conflict)
            << "window " << window << " kept a store too long";
    }
}

/** A wrapped non-power-of-two window still finds the youngest match. */
TEST(MemDep, NonPowerOfTwoWindowWrapsCorrectly)
{
    MemDepTracker md(3);
    for (SeqNum s = 1; s <= 20; ++s)
        md.recordStore(0x1000, s, 100 + s, 200 + s);
    const MemDepResult r = md.queryLoad(0x1000, 99);
    EXPECT_TRUE(r.conflict);
    EXPECT_EQ(r.storeSeq, 20u); // youngest of the three live stores
    EXPECT_EQ(r.storeAddrReady, 120u);
}

TEST(StructurePolicy, MatchesTableOne)
{
    using CS = CoreStructure;
    EXPECT_EQ(sharingPolicy(CS::BranchPredictor),
              SharingPolicy::Partitioned);
    EXPECT_EQ(sharingPolicy(CS::Btb), SharingPolicy::Replicated);
    EXPECT_EQ(sharingPolicy(CS::Scoreboard), SharingPolicy::Replicated);
    EXPECT_EQ(sharingPolicy(CS::IssueWindow),
              SharingPolicy::Partitioned);
    EXPECT_EQ(sharingPolicy(CS::LoadQueue), SharingPolicy::Partitioned);
    EXPECT_EQ(sharingPolicy(CS::StoreQueue),
              SharingPolicy::Partitioned);
    EXPECT_EQ(sharingPolicy(CS::Rob), SharingPolicy::Partitioned);
    EXPECT_EQ(sharingPolicy(CS::LocalRat), SharingPolicy::Replicated);
    EXPECT_EQ(sharingPolicy(CS::GlobalRat), SharingPolicy::Replicated);
    EXPECT_EQ(sharingPolicy(CS::PhysicalRegisterFile),
              SharingPolicy::Partitioned);
}

TEST(StructurePolicy, AggregateCapacityScalesOnlyPartitioned)
{
    EXPECT_EQ(aggregateCapacity(CoreStructure::Rob, 64, 8), 512u);
    EXPECT_EQ(aggregateCapacity(CoreStructure::Btb, 512, 8), 512u);
    EXPECT_EQ(aggregateCapacity(CoreStructure::Rob, 64, 1), 64u);
}

TEST(StructurePolicy, TableCoversAllStructures)
{
    const auto rows = structurePolicyTable();
    EXPECT_EQ(rows.size(),
              static_cast<std::size_t>(CoreStructure::NumStructures));
}
