/**
 * @file
 * Allocation-engine suite: the event queue's determinism, the
 * sharch-state-v1 checkpoint contract (snapshot -> restore ->
 * snapshot is byte-identical; tampered documents are rejected with
 * actionable errors and leave the engine untouched), checkpoint /
 * resume equivalence with an uninterrupted run, CustomerId handle
 * stability, and the sharch-serve request protocol.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "area/area_model.hh"
#include "common/json.hh"
#include "core/perf_model.hh"
#include "econ/market.hh"
#include "engine/allocation_engine.hh"
#include "engine/serve_session.hh"
#include "trace/profile.hh"

using namespace sharch;
using engine::AllocationEngine;
using engine::EngineConfig;

namespace {

/** Shared tiny surface: tests that never bid stay simulation-free. */
class EngineTest : public ::testing::Test
{
  protected:
    EngineTest() : pm_(2000, 1), opt_(pm_, am_) {}

    AllocationEngine
    makeEngine()
    {
        return AllocationEngine(opt_, EngineConfig{});
    }

    /** Fabric-only arrival (budget 0): no market, no simulation. */
    static engine::Event
    arrive(Cycles at, const std::string &tenant, unsigned slices,
           unsigned banks)
    {
        return engine::tenantArrive(at, tenant, "",
                                    UtilityKind::Throughput, 0.0,
                                    slices, banks);
    }

    PerfModel pm_;
    AreaModel am_;
    UtilityOptimizer opt_;
};

TEST(Json, ParsedDocumentReEmitsItsBytes)
{
    const std::string doc =
        "{\"a\":0.1,\"b\":[1,2.5e-3,-7],\"c\":\"x\\ny\","
        "\"d\":{\"e\":true,\"f\":null}}";
    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(doc, &v, &err)) << err;
    EXPECT_EQ(v.dump(), doc);
}

TEST(Json, TruncationNamesTheOffendingOffset)
{
    json::Value v;
    std::string err;
    EXPECT_FALSE(json::parse("{\"a\":1", &v, &err));
    EXPECT_NE(err.find("offset"), std::string::npos) << err;
}

TEST(Json, IntegersStayExactWhereDoublesWouldRound)
{
    json::Value v;
    std::string err;
    ASSERT_TRUE(
        json::parse("{\"big\":18446744073709551615}", &v, &err));
    std::uint64_t big = 0;
    ASSERT_TRUE(v.get("big")->asU64(&big));
    EXPECT_EQ(big, 18446744073709551615ull);
}

TEST_F(EngineTest, QueueOrdersByCycleThenPostingOrder)
{
    AllocationEngine e = makeEngine();
    // Posted out of cycle order; same-cycle ties resolve by posting
    // order (b before c).
    e.post(arrive(50, "late", 2, 2));
    e.post(arrive(10, "b", 2, 2));
    e.post(arrive(10, "c", 2, 2));
    e.run();
    ASSERT_EQ(e.leases().size(), 3u);
    ASSERT_EQ(e.stats().admitted, 3u);
    // Lease ids are allocation order, so they encode dispatch order.
    auto it = e.leases().begin();
    EXPECT_EQ(it->second.tenant, "b");
    ++it;
    EXPECT_EQ(it->second.tenant, "c");
    ++it;
    EXPECT_EQ(it->second.tenant, "late");
    EXPECT_EQ(e.now(), 50u);
}

TEST_F(EngineTest, RejectsWhatTheFabricCannotPlace)
{
    AllocationEngine e = makeEngine();
    // 8x8 chip: a row holds 8 Slices; 9 contiguous never fit.
    const engine::EventOutcome out =
        e.execute(arrive(0, "too-big", 9, 0));
    EXPECT_FALSE(out.applied);
    EXPECT_NE(out.detail.find("no room"), std::string::npos);
    EXPECT_EQ(e.stats().rejected, 1u);
    EXPECT_TRUE(e.leases().empty());
}

TEST_F(EngineTest, RejectsBiddersWithUnknownBenchmarks)
{
    // The optimizer can only price builtin profiles; admitting an
    // unknown one would abort at the next auction epoch.
    AllocationEngine e = makeEngine();
    const engine::EventOutcome out = e.execute(engine::tenantArrive(
        0, "mystery", "no-such-profile", UtilityKind::Throughput,
        25.0, 1, 1));
    EXPECT_FALSE(out.applied);
    EXPECT_NE(out.detail.find("unknown benchmark"),
              std::string::npos);
    EXPECT_EQ(e.stats().rejected, 1u);
    EXPECT_TRUE(e.market().customers().empty());
}

TEST_F(EngineTest, SnapshotRestoreSnapshotIsByteIdentical)
{
    AllocationEngine e = makeEngine();
    e.post(arrive(0, "alpha", 4, 8));
    e.post(arrive(10, "beta", 6, 4));
    e.post(engine::faultStrike(20, fault::FaultKind::Slice,
                               Coord{1, 0}));
    e.post(engine::tenantDepart(30, "beta"));
    // A still-pending future event must survive the round trip too.
    e.post(arrive(1000, "future", 2, 2));
    e.runUntil(500);
    ASSERT_EQ(e.pendingEvents(), 1u);

    const std::string s1 = e.saveState();
    AllocationEngine restored = makeEngine();
    std::string err;
    ASSERT_TRUE(restored.restoreState(s1, &err)) << err;
    EXPECT_EQ(restored.saveState(), s1);

    // And the restored engine is live, not a husk: the pending event
    // still fires.
    restored.run();
    EXPECT_EQ(restored.stats().processed, 5u);
}

TEST_F(EngineTest, RestoreRejectsTamperedStateAndStaysUntouched)
{
    AllocationEngine e = makeEngine();
    e.execute(arrive(0, "alpha", 4, 4));
    const std::string good = e.saveState();

    std::string err;

    // Truncation: the JSON layer names the first bad byte.
    EXPECT_FALSE(e.restoreState(
        good.substr(0, good.size() - 10), &err));
    EXPECT_NE(err.find("offset"), std::string::npos) << err;

    // Wrong schema version.
    std::string wrongSchema = good;
    wrongSchema.replace(wrongSchema.find("sharch-state-v1"),
                        std::string("sharch-state-v1").size(),
                        "sharch-state-v9");
    EXPECT_FALSE(e.restoreState(wrongSchema, &err));
    EXPECT_NE(err.find("unsupported schema"), std::string::npos)
        << err;

    // A negative clock is not a cycle count.
    std::string badClock = good;
    const std::size_t at = badClock.find("\"clock\":");
    badClock.insert(at + std::string("\"clock\":").size(), "-");
    EXPECT_FALSE(e.restoreState(badClock, &err));
    EXPECT_NE(err.find("clock"), std::string::npos) << err;

    // Every rejection left the engine byte-identical.
    EXPECT_EQ(e.saveState(), good);
}

TEST_F(EngineTest, RestoreRejectsDoubleClaimedSlices)
{
    AllocationEngine e = makeEngine();
    e.execute(arrive(0, "alpha", 4, 0)); // row 0, cols 0..3
    e.execute(arrive(0, "beta", 4, 0));  // row 0, cols 4..7
    const std::string good = e.saveState();

    // Slide beta's run onto alpha's: the occupancy check must fire.
    std::string overlapped = good;
    const std::size_t at = overlapped.find("\"col\":4");
    ASSERT_NE(at, std::string::npos);
    overlapped.replace(at, 7, "\"col\":0");
    std::string err;
    EXPECT_FALSE(e.restoreState(overlapped, &err));
    EXPECT_NE(err.find("claimed twice"), std::string::npos) << err;
    EXPECT_EQ(e.saveState(), good);
}

TEST_F(EngineTest, RestoreRejectsLeaseWithoutBackingAllocation)
{
    AllocationEngine e = makeEngine();
    e.execute(arrive(0, "alpha", 2, 2));
    std::string state = e.saveState();
    // Point the lease at an allocation id the fabric never issued.
    const std::size_t leases = state.find("\"leases\":");
    const std::size_t at = state.find("\"id\":1", leases);
    ASSERT_NE(at, std::string::npos);
    state.replace(at, 6, "\"id\":7");
    std::string err;
    EXPECT_FALSE(e.restoreState(state, &err));
    EXPECT_NE(err.find("no fabric allocation"), std::string::npos)
        << err;
}

TEST_F(EngineTest, CheckpointResumeMatchesUninterruptedRun)
{
    // A fabric-churn script with a mid-stream checkpoint: arrivals,
    // a fault under a live VCore, departures, a heal.
    const auto script = [](AllocationEngine &e) {
        e.post(arrive(0, "a", 4, 8));
        e.post(arrive(10, "b", 6, 4));
        e.post(engine::faultStrike(20, fault::FaultKind::Slice,
                                   Coord{1, 0}));
        e.post(engine::checkpoint(30, "mid"));
        e.post(engine::tenantDepart(40, "b"));
        e.post(engine::healFault(50, fault::FaultKind::Slice,
                                 Coord{1, 0}));
        e.post(arrive(60, "c", 8, 2));
    };

    AllocationEngine full = makeEngine();
    script(full);
    full.run();
    ASSERT_FALSE(full.lastCheckpoint().empty());
    EXPECT_EQ(full.lastCheckpointLabel(), "mid");

    AllocationEngine resumed = makeEngine();
    std::string err;
    ASSERT_TRUE(resumed.restoreState(full.lastCheckpoint(), &err))
        << err;
    resumed.run();

    EXPECT_EQ(study::renderJson(resumed.finalReport()),
              study::renderJson(full.finalReport()));
    EXPECT_EQ(resumed.saveState(), full.saveState());
}

TEST_F(EngineTest, MarketRunCheckpointResumeIsByteIdentical)
{
    // The economic path: bidding tenants and auction epochs on both
    // sides of the checkpoint (this one does simulate the surface).
    const std::string bench = benchmarkNames().front();
    const double budget = defaultBudget();
    const auto script = [&](AllocationEngine &e) {
        e.post(engine::tenantArrive(0, "t1", bench,
                                    UtilityKind::Throughput, budget,
                                    4, 8));
        e.post(engine::tenantArrive(0, "t2", bench,
                                    UtilityKind::SingleStream,
                                    budget, 2, 4));
        e.post(engine::auctionEpoch(10));
        e.post(engine::checkpoint(20, "mid"));
        e.post(engine::tenantDepart(30, "t2"));
        e.post(engine::auctionEpoch(40));
    };

    AllocationEngine full = makeEngine();
    script(full);
    full.run();

    AllocationEngine resumed = makeEngine();
    std::string err;
    ASSERT_TRUE(resumed.restoreState(full.lastCheckpoint(), &err))
        << err;
    resumed.run();

    EXPECT_EQ(resumed.saveState(), full.saveState());
    EXPECT_EQ(study::renderJson(resumed.finalReport()),
              study::renderJson(full.finalReport()));
    EXPECT_GT(full.stats().epochs, 0u);
}

TEST_F(EngineTest, CustomerIdsStayValidAcrossDepartures)
{
    AllocationEngine e = makeEngine();
    const double budget = defaultBudget();
    const std::string bench = benchmarkNames().front();
    e.execute(engine::tenantArrive(0, "one", bench,
                                   UtilityKind::Throughput, budget,
                                   2, 2));
    e.execute(engine::tenantArrive(0, "two", bench,
                                   UtilityKind::Balanced, budget, 2,
                                   2));
    e.execute(engine::tenantDepart(1, "one"));
    e.execute(engine::tenantArrive(2, "three", bench,
                                   UtilityKind::SingleStream, budget,
                                   2, 2));
    // Departure deactivates; it never erases, so ids are stable.
    const SpotMarket &m = e.market();
    ASSERT_EQ(m.customers().size(), 3u);
    EXPECT_EQ(m.customer(0).name, "one");
    EXPECT_FALSE(m.customer(0).active);
    EXPECT_EQ(m.customer(1).name, "two");
    EXPECT_TRUE(m.customer(1).active);
    EXPECT_EQ(m.customer(2).name, "three");
    EXPECT_EQ(m.activeCustomers(), 2u);
}

TEST_F(EngineTest, ReshapeGrowsAndShrinksALiveLease)
{
    AllocationEngine e = makeEngine();
    const engine::EventOutcome out = e.execute(arrive(0, "a", 2, 2));
    ASSERT_TRUE(out.applied);
    const auto cost = e.reshapeLease(out.lease, 4, 4);
    ASSERT_TRUE(cost.has_value());
    EXPECT_EQ(e.leases().at(out.lease).slices, 4u);
    EXPECT_EQ(e.leases().at(out.lease).banks, 4u);
    EXPECT_FALSE(e.reshapeLease(999, 1, 1).has_value());
}

// --- The sharch-serve protocol -----------------------------------

TEST_F(EngineTest, ServeSessionAnswersTheSevenOps)
{
    AllocationEngine e = makeEngine();
    engine::ServeSession s(e);

    const std::string a = s.handle(
        "{\"op\":\"allocate\",\"tenant\":\"web\",\"slices\":4,"
        "\"banks\":8}");
    EXPECT_NE(a.find("\"ok\":true"), std::string::npos) << a;
    EXPECT_NE(a.find("\"applied\":true"), std::string::npos) << a;
    EXPECT_NE(a.find("\"lease\":1"), std::string::npos) << a;

    const std::string r = s.handle(
        "{\"op\":\"reshape\",\"lease\":1,\"slices\":2,\"banks\":4}");
    EXPECT_NE(r.find("\"applied\":true"), std::string::npos) << r;

    const std::string st = s.handle("{\"op\":\"stats\"}");
    EXPECT_NE(st.find("\"admitted\":1"), std::string::npos) << st;
    EXPECT_NE(st.find("\"leases\":1"), std::string::npos) << st;

    const std::string snap = s.handle("{\"op\":\"snapshot\"}");
    EXPECT_NE(snap.find("\"state\":{\"schema\":\"sharch-state-v1\""),
              std::string::npos)
        << snap.substr(0, 120);

    const std::string rel =
        s.handle("{\"op\":\"release\",\"tenant\":\"web\"}");
    EXPECT_NE(rel.find("\"applied\":true"), std::string::npos)
        << rel;

    const std::string bad = s.handle("{\"op\":\"evaporate\"}");
    EXPECT_NE(bad.find("\"ok\":false"), std::string::npos);
    EXPECT_NE(bad.find("unknown op"), std::string::npos);

    const std::string garbage = s.handle("not json at all");
    EXPECT_NE(garbage.find("\"ok\":false"), std::string::npos);
    EXPECT_EQ(s.requestsHandled(), 7u);
}

TEST_F(EngineTest, ServeSnapshotAndRestoreViaFilesRoundTrip)
{
    const std::string dir = ::testing::TempDir();
    const std::string p1 = dir + "/sharch_serve_s1.json";
    const std::string p2 = dir + "/sharch_serve_s2.json";

    AllocationEngine e1 = makeEngine();
    engine::ServeSession s1(e1);
    s1.handle("{\"op\":\"allocate\",\"tenant\":\"a\",\"slices\":4,"
              "\"banks\":4}");
    const std::string w = s1.handle(
        "{\"op\":\"snapshot\",\"path\":\"" + p1 + "\"}");
    ASSERT_NE(w.find("\"ok\":true"), std::string::npos) << w;

    // A second session restores the file and must re-emit the exact
    // same bytes -- the CI serve-smoke step diffs these two files.
    AllocationEngine e2 = makeEngine();
    engine::ServeSession s2(e2);
    const std::string r = s2.handle(
        "{\"op\":\"restore\",\"path\":\"" + p1 + "\"}");
    ASSERT_NE(r.find("\"ok\":true"), std::string::npos) << r;
    s2.handle("{\"op\":\"snapshot\",\"path\":\"" + p2 + "\"}");

    std::ifstream f1(p1), f2(p2);
    std::stringstream b1, b2;
    b1 << f1.rdbuf();
    b2 << f2.rdbuf();
    EXPECT_EQ(b1.str(), b2.str());
    EXPECT_FALSE(b1.str().empty());
    std::remove(p1.c_str());
    std::remove(p2.c_str());
}

TEST_F(EngineTest, ServeRestoreRejectsTamperWithActionableError)
{
    AllocationEngine e = makeEngine();
    engine::ServeSession s(e);
    const std::string r = s.handle(
        "{\"op\":\"restore\",\"state\":{\"schema\":\"wrong\"}}");
    EXPECT_NE(r.find("\"ok\":false"), std::string::npos);
    EXPECT_NE(r.find("unsupported schema"), std::string::npos) << r;
}

TEST_F(EngineTest, ServeReportOpRendersTheFinalReportInline)
{
    AllocationEngine e = makeEngine();
    engine::ServeSession s(e);
    s.handle("{\"op\":\"allocate\",\"tenant\":\"a\",\"slices\":4,"
             "\"banks\":2}");
    const std::string r = s.handle("{\"op\":\"report\"}");
    EXPECT_NE(r.find("\"ok\":true"), std::string::npos) << r;
    EXPECT_NE(r.find("\"schema\":\"sharch-report-v1\""),
              std::string::npos)
        << r.substr(0, 120);
    // One response per line: the spliced report must not smuggle a
    // newline into the reply.
    EXPECT_EQ(r.find('\n'), std::string::npos);
    // The reply bytes are the determinism anchor the chaos harness
    // diffs, so two sessions with the same history must agree.
    AllocationEngine e2 = makeEngine();
    engine::ServeSession s2(e2);
    s2.handle("{\"op\":\"allocate\",\"tenant\":\"a\",\"slices\":4,"
              "\"banks\":2}");
    EXPECT_EQ(s2.handle("{\"op\":\"report\"}"), r);
}

TEST_F(EngineTest, ServeRefusesOversizedRequestsWithPosition)
{
    AllocationEngine e = makeEngine();
    engine::ServeSession s(e);
    std::string huge = "{\"op\":\"stats\",\"pad\":\"";
    huge.append(engine::kMaxRequestBytes, 'x');
    huge += "\"}";
    const std::string r = s.handle(huge);
    EXPECT_NE(r.find("\"ok\":false"), std::string::npos) << r;
    EXPECT_NE(r.find(std::to_string(huge.size()) + " bytes"),
              std::string::npos)
        << r;
    EXPECT_NE(r.find(std::to_string(engine::kMaxRequestBytes)),
              std::string::npos)
        << r;
    // The session survives and the next request is served normally.
    const std::string st = s.handle("{\"op\":\"stats\"}");
    EXPECT_NE(st.find("\"ok\":true"), std::string::npos) << st;
}

TEST_F(EngineTest, MalformedRequestCorpusNeverKillsTheSession)
{
    AllocationEngine e = makeEngine();
    engine::ServeSession s(e);

    // 64 levels of array nesting breaches json::kMaxDepth.
    std::string deep;
    deep.append(100, '[');
    deep.append(100, ']');

    const std::vector<std::string> corpus = {
        "",                      // empty after trim? (still a line)
        "not json at all",
        "{",
        "[1,2,3",
        "\"just a string\"",
        "[1,2,3]",               // valid JSON, not an object
        "{\"no\":\"op\"}",
        "{\"op\":42}",
        "{\"op\":\"evaporate\"}",
        "{\"op\":\"allocate\"}", // missing tenant
        "{\"op\":\"allocate\",\"tenant\":7}",
        "{\"op\":\"allocate\",\"tenant\":\"a\",\"slices\":-4}",
        "{\"op\":\"allocate\",\"tenant\":\"a\",\"budget\":\"x\"}",
        "{\"op\":\"allocate\",\"tenant\":\"a\","
        "\"utility\":\"nope\"}",
        "{\"op\":\"reshape\"}",
        "{\"op\":\"reshape\",\"lease\":\"one\"}",
        "{\"op\":\"release\"}",
        "{\"op\":\"price\",\"at\":-1}",
        "{\"op\":\"snapshot\",\"path\":123}",
        "{\"op\":\"restore\"}",
        "{\"op\":\"restore\",\"state\":{},\"path\":\"x\"}",
        "{\"op\":\"restore\",\"state\":{\"schema\":\"bogus\"}}",
        "{\"op\":\"restore\",\"path\":\"/nonexistent/nope\"}",
        "{\"op\":\"stats\",\"op\":\"stats\"",  // torn duplicate key
        deep,
        "{\"a\":1e99999}",
        // Raw control byte inside a string literal (must be escaped
        // in valid JSON).
        std::string("{\"op\":\"stats\",\"x\":\"\x01\"}"),
    };
    for (const std::string &line : corpus) {
        const std::string reply = s.handle(line);
        EXPECT_EQ(reply.find("{\"ok\":false"), 0u)
            << "request: " << line.substr(0, 60)
            << "\nreply: " << reply.substr(0, 120);
    }
    // Nothing leaked into the engine: still pristine and serving.
    EXPECT_EQ(e.stats().processed, 0u);
    EXPECT_EQ(e.leases().size(), 0u);
    const std::string ok = s.handle(
        "{\"op\":\"allocate\",\"tenant\":\"a\",\"slices\":2}");
    EXPECT_NE(ok.find("\"ok\":true"), std::string::npos) << ok;
    std::string err;
    EXPECT_TRUE(e.checkInvariants(&err)) << err;
}

TEST_F(EngineTest, ReshapeEventRoundTripsThroughJson)
{
    const engine::Event e = engine::reshapeEvent(42, 7, 6, 3);
    const json::Value v = engine::eventToJson(e, 11);
    engine::Event back;
    std::uint64_t seq = 0;
    std::string err;
    ASSERT_TRUE(engine::eventFromJson(v, &back, &seq, &err)) << err;
    EXPECT_EQ(seq, 11u);
    EXPECT_EQ(back.kind, engine::EventKind::Reshape);
    EXPECT_EQ(back.at, 42u);
    EXPECT_EQ(back.lease, 7u);
    EXPECT_EQ(back.slices, 6u);
    EXPECT_EQ(back.banks, 3u);
}

TEST(Json, DepthBeyondTheLimitFailsWithPosition)
{
    std::string deep;
    deep.append(json::kMaxDepth + 1, '[');
    deep.append(json::kMaxDepth + 1, ']');
    json::Value v;
    std::string err;
    EXPECT_FALSE(json::parse(deep, &v, &err));
    EXPECT_NE(err.find("offset"), std::string::npos) << err;
    EXPECT_NE(err.find(std::to_string(json::kMaxDepth)),
              std::string::npos)
        << err;
    // Exactly at the limit still parses.
    std::string ok;
    ok.append(json::kMaxDepth, '[');
    ok.append(json::kMaxDepth, ']');
    EXPECT_TRUE(json::parse(ok, &v, &err)) << err;
}

TEST(Json, DocumentBeyondTheSizeLimitFailsWithPosition)
{
    std::string big = "[";
    big.resize(json::kMaxDocumentBytes + 1, ' ');
    json::Value v;
    std::string err;
    EXPECT_FALSE(json::parse(big, &v, &err));
    EXPECT_NE(err.find("offset 0"), std::string::npos) << err;
    EXPECT_NE(err.find(std::to_string(json::kMaxDocumentBytes)),
              std::string::npos)
        << err;
}

} // namespace
