/**
 * @file
 * Tests for the fault subsystem: deterministic fault schedules, the
 * FabricManager's graceful-degradation policy (re-place, shrink,
 * evict, bank substitution), and the economic reaction (spot-market
 * re-auction accounting, degraded datacenter study).
 */

#include <cmath>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "area/area_model.hh"
#include "core/perf_model.hh"
#include "econ/datacenter.hh"
#include "econ/optimizer.hh"
#include "fault/fault_model.hh"
#include "hyper/fabric_manager.hh"
#include "hyper/spot_market.hh"

using namespace sharch;
using namespace sharch::fault;

TEST(FaultSpecParse, GoodSpec)
{
    const FaultSpec spec = parseFaultSpec(
        "seed=7,mtbf=100000,count=4,mttr=50000,"
        "slice:0:3,bank:1:2,link:2:5");
    ASSERT_TRUE(spec.ok()) << spec.error;
    EXPECT_EQ(spec.seed, 7u);
    EXPECT_DOUBLE_EQ(spec.mtbf, 100000.0);
    EXPECT_EQ(spec.count, 4u);
    EXPECT_DOUBLE_EQ(spec.mttr, 50000.0);
    ASSERT_EQ(spec.fixed.size(), 3u);
    EXPECT_EQ(spec.fixed[0].kind, FaultKind::Slice);
    EXPECT_EQ(spec.fixed[0].tile, (Coord{3, 0})); // col 3, row 0
    EXPECT_EQ(spec.fixed[1].kind, FaultKind::Bank);
    EXPECT_EQ(spec.fixed[1].tile, (Coord{2, 1}));
    EXPECT_EQ(spec.fixed[2].kind, FaultKind::Link);
    EXPECT_EQ(spec.fixed[2].tile, (Coord{5, 2}));
    EXPECT_FALSE(spec.empty());
}

TEST(FaultSpecParse, BadSpecsSetErrorNotThrow)
{
    EXPECT_FALSE(parseFaultSpec("").ok());
    EXPECT_FALSE(parseFaultSpec("seed=1,,mtbf=5").ok());
    EXPECT_FALSE(parseFaultSpec("wibble=3").ok());
    EXPECT_FALSE(parseFaultSpec("seed=banana").ok());
    EXPECT_FALSE(parseFaultSpec("mtbf=-100").ok());
    EXPECT_FALSE(parseFaultSpec("slice:0").ok());   // missing column
    EXPECT_FALSE(parseFaultSpec("core:0:1").ok());  // unknown kind
    EXPECT_FALSE(parseFaultSpec("slice:a:b").ok());
    // A random count needs an MTBF to space the failures.
    EXPECT_FALSE(parseFaultSpec("count=4").ok());
    // A spec that schedules nothing is valid, just empty.
    const FaultSpec idle = parseFaultSpec("seed=9");
    EXPECT_TRUE(idle.ok());
    EXPECT_TRUE(idle.empty());
}

TEST(FaultModel, ScheduleIsPureFunctionOfSeedAndGeometry)
{
    FaultSpec spec;
    spec.seed = 9;
    spec.mtbf = 50000.0;
    spec.count = 10;
    const FaultModel a(spec, 8, 8);
    const FaultModel b(spec, 8, 8);
    EXPECT_EQ(a.schedule(), b.schedule());

    FaultSpec other = spec;
    other.seed = 10;
    EXPECT_NE(a.schedule(), FaultModel(other, 8, 8).schedule());
    // Geometry is part of the identity too.
    EXPECT_NE(a.schedule(), FaultModel(spec, 8, 6).schedule());
}

TEST(FaultModel, EventsAreSortedAndOnChip)
{
    FaultSpec spec;
    spec.seed = 3;
    spec.mtbf = 10000.0;
    spec.count = 50;
    const int width = 6, height = 8;
    const FaultModel model(spec, width, height);
    ASSERT_EQ(model.schedule().size(), 50u);
    Cycles prev = 0;
    for (const FaultEvent &ev : model.schedule()) {
        EXPECT_GE(ev.at, prev);
        prev = ev.at;
        EXPECT_GE(ev.tile.x, 0);
        EXPECT_GE(ev.tile.y, 0);
        EXPECT_LT(ev.tile.y, height);
        switch (ev.kind) {
          case FaultKind::Slice:
            EXPECT_EQ(ev.tile.y % 2, 0);
            EXPECT_LT(ev.tile.x, width);
            break;
          case FaultKind::Bank:
            EXPECT_EQ(ev.tile.y % 2, 1);
            EXPECT_LT(ev.tile.x, width);
            break;
          case FaultKind::Link:
            EXPECT_EQ(ev.tile.y % 2, 0);
            EXPECT_LT(ev.tile.x, width - 1);
            break;
        }
        EXPECT_FALSE(ev.heal); // no mttr: failures are permanent
    }
}

TEST(FaultModel, MttrSchedulesOneHealPerFailure)
{
    FaultSpec spec;
    spec.seed = 11;
    spec.mtbf = 20000.0;
    spec.count = 6;
    spec.mttr = 80000.0;
    const FaultModel model(spec, 8, 8);
    ASSERT_EQ(model.schedule().size(), 12u);
    unsigned heals = 0;
    for (const FaultEvent &ev : model.schedule())
        heals += ev.heal;
    EXPECT_EQ(heals, 6u);
}

TEST(FaultModel, EventsUpToAdvancesACursor)
{
    const FaultSpec spec = parseFaultSpec("slice:0:1,bank:1:0");
    ASSERT_TRUE(spec.ok()) << spec.error;
    FaultModel model(spec, 4, 2);
    EXPECT_EQ(model.pending(), 2u);
    // Fixed events fire at cycle 0 in spec order.
    const auto first = model.eventsUpTo(0);
    ASSERT_EQ(first.size(), 2u);
    EXPECT_EQ(first[0].kind, FaultKind::Slice);
    EXPECT_EQ(first[1].kind, FaultKind::Bank);
    EXPECT_EQ(model.pending(), 0u);
    EXPECT_TRUE(model.eventsUpTo(1000000).empty()); // no re-delivery
    model.reset();
    EXPECT_EQ(model.pending(), 2u);
}

TEST(FabricDegrade, AllocationSkipsFaultyTiles)
{
    FabricManager fm(8, 2);
    EXPECT_TRUE(fm.markFaulty(FaultKind::Slice, Coord{3, 0}).empty());
    EXPECT_TRUE(fm.isFaulty(FaultKind::Slice, Coord{3, 0}));
    EXPECT_EQ(fm.faultySlices(), 1u);
    EXPECT_EQ(fm.freeSlices(), 7u);
    // The longest healthy run is cols 4..7; five contiguous Slices no
    // longer exist anywhere.
    EXPECT_EQ(fm.largestFreeRun(), 4u);
    EXPECT_FALSE(fm.allocate(5, 0).has_value());
    const auto id = fm.allocate(4, 0);
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(fm.find(*id)->slices.col, 4);
}

TEST(FabricDegrade, BrokenLinkSplitsFreeRuns)
{
    FabricManager fm(8, 2);
    // Link (0,3)-(0,4) down: tiles stay usable but contiguity breaks.
    EXPECT_TRUE(fm.markFaulty(FaultKind::Link, Coord{3, 0}).empty());
    EXPECT_EQ(fm.freeSlices(), 8u);
    EXPECT_EQ(fm.largestFreeRun(), 4u);
    EXPECT_FALSE(fm.allocate(5, 0).has_value());
    const auto id = fm.allocate(4, 0);
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(fm.find(*id)->slices.col, 0);
}

TEST(FabricDegrade, SliceFaultReplacesRunWhenRoomExists)
{
    FabricManager fm(8, 8);
    const auto id = fm.allocate(4, 2);
    ASSERT_TRUE(id.has_value());
    const SliceRun before = fm.find(*id)->slices;

    const auto actions =
        fm.markFaulty(FaultKind::Slice,
                      Coord{before.col + 1, before.row});
    ASSERT_EQ(actions.size(), 1u);
    const DegradeAction &act = actions[0];
    EXPECT_EQ(act.id, *id);
    EXPECT_EQ(act.kind, DegradeKind::Replaced);
    EXPECT_EQ(act.to.count, 4u); // same size, new position
    EXPECT_EQ(act.slicesLost, 0u);
    EXPECT_EQ(act.cost, 500u); // Register Flush, not an L2 flush
    const SliceRun after = fm.find(*id)->slices;
    EXPECT_EQ(after.row, act.to.row);
    EXPECT_EQ(after.col, act.to.col);
    EXPECT_FALSE(after.contains(before.row, before.col + 1));
}

TEST(FabricDegrade, SliceFaultShrinksWhenNoFullRunFits)
{
    FabricManager fm(8, 2);
    const auto a = fm.allocate(4, 0);
    const auto b = fm.allocate(4, 0);
    ASSERT_TRUE(a && b);
    // The chip is full; losing (0,1) leaves {0} and {2,3} of a's run.
    const auto actions = fm.markFaulty(FaultKind::Slice, Coord{1, 0});
    ASSERT_EQ(actions.size(), 1u);
    EXPECT_EQ(actions[0].kind, DegradeKind::Shrunk);
    EXPECT_EQ(actions[0].slicesLost, 2u);
    EXPECT_EQ(actions[0].cost, 500u); // banks unchanged: slice-only
    EXPECT_EQ(fm.find(*a)->slices.count, 2u);
    EXPECT_EQ(fm.find(*a)->slices.col, 2);
    EXPECT_EQ(fm.find(*b)->slices.count, 4u); // bystander untouched
}

TEST(FabricDegrade, EvictsWhenNotEvenOneSliceFits)
{
    FabricManager fm(2, 2);
    const auto id = fm.allocate(2, 1);
    ASSERT_TRUE(id.has_value());
    const auto first = fm.markFaulty(FaultKind::Slice, Coord{0, 0});
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].kind, DegradeKind::Shrunk);

    const auto second = fm.markFaulty(FaultKind::Slice, Coord{1, 0});
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].kind, DegradeKind::Evicted);
    EXPECT_EQ(second[0].slicesLost, 1u);
    EXPECT_EQ(second[0].banksLost, 1u);
    EXPECT_EQ(second[0].cost, 10000u); // held a bank: L2 flush
    EXPECT_EQ(second[0].to.count, 0u);
    EXPECT_EQ(fm.find(*id), nullptr);
    EXPECT_TRUE(fm.allocations().empty());
    EXPECT_EQ(fm.freeBanks(), 2u); // the bank itself was healthy
}

TEST(FabricDegrade, BankFaultSubstitutesAFreeBank)
{
    FabricManager fm(4, 2); // 4 Slices, 4 banks
    const auto id = fm.allocate(2, 2);
    ASSERT_TRUE(id.has_value());
    const Coord victim = fm.find(*id)->banks.front();

    const auto actions = fm.markFaulty(FaultKind::Bank, victim);
    ASSERT_EQ(actions.size(), 1u);
    EXPECT_EQ(actions[0].kind, DegradeKind::BankReplaced);
    EXPECT_EQ(actions[0].banksLost, 0u);
    EXPECT_EQ(actions[0].cost, 10000u); // bank set changed: L2 flush
    const FabricAllocation *alloc = fm.find(*id);
    ASSERT_NE(alloc, nullptr);
    EXPECT_EQ(alloc->banks.size(), 2u);
    for (const Coord &b : alloc->banks)
        EXPECT_NE(b, victim);
    EXPECT_EQ(fm.faultyBanks(), 1u);
    EXPECT_EQ(fm.freeBanks(), 1u); // 4 - 1 dead - 2 leased
}

TEST(FabricDegrade, BankFaultShrinksL2WhenNoSpareExists)
{
    FabricManager fm(2, 2); // 2 Slices, 2 banks
    const auto id = fm.allocate(1, 2);
    ASSERT_TRUE(id.has_value());
    const Coord victim = fm.find(*id)->banks.front();
    const auto actions = fm.markFaulty(FaultKind::Bank, victim);
    ASSERT_EQ(actions.size(), 1u);
    EXPECT_EQ(actions[0].kind, DegradeKind::BankLost);
    EXPECT_EQ(actions[0].banksLost, 1u);
    EXPECT_EQ(actions[0].cost, 10000u);
    EXPECT_EQ(fm.find(*id)->banks.size(), 1u);
}

TEST(FabricDegrade, LinkFaultOnlyDegradesSpanningRuns)
{
    FabricManager fm(8, 2);
    const auto a = fm.allocate(2, 0); // cols 0..1
    const auto b = fm.allocate(2, 0); // cols 2..3
    ASSERT_TRUE(a && b);
    // Link (0,1)-(0,2) sits *between* the two runs: nobody spans it.
    EXPECT_TRUE(fm.markFaulty(FaultKind::Link, Coord{1, 0}).empty());
    EXPECT_EQ(fm.find(*a)->slices.count, 2u);
    EXPECT_EQ(fm.find(*b)->slices.count, 2u);
    // Link (0,2)-(0,3) runs under b: b must degrade (re-place right).
    const auto actions = fm.markFaulty(FaultKind::Link, Coord{2, 0});
    ASSERT_EQ(actions.size(), 1u);
    EXPECT_EQ(actions[0].id, *b);
    EXPECT_EQ(actions[0].kind, DegradeKind::Replaced);
}

TEST(FabricDegrade, MarkingTwiceIsANoOpAndHealRestores)
{
    FabricManager fm(4, 2);
    EXPECT_TRUE(fm.markFaulty(FaultKind::Slice, Coord{2, 0}).empty());
    EXPECT_TRUE(fm.markFaulty(FaultKind::Slice, Coord{2, 0}).empty());
    EXPECT_EQ(fm.faultySlices(), 1u);
    EXPECT_EQ(fm.freeSlices(), 3u);

    EXPECT_TRUE(fm.heal(FaultKind::Slice, Coord{2, 0}));
    EXPECT_FALSE(fm.heal(FaultKind::Slice, Coord{2, 0})); // not faulty
    EXPECT_EQ(fm.faultySlices(), 0u);
    EXPECT_EQ(fm.freeSlices(), 4u);
    const auto id = fm.allocate(4, 0); // healed tile allocatable again
    EXPECT_TRUE(id.has_value());
}

TEST(FabricDegrade, DefragmentationAvoidsFaultyTiles)
{
    FabricManager fm(8, 2);
    const auto a = fm.allocate(2, 0); // cols 0..1
    const auto b = fm.allocate(2, 0); // cols 2..3
    const auto c = fm.allocate(2, 0); // cols 4..5
    ASSERT_TRUE(a && b && c);
    ASSERT_TRUE(fm.release(*b));
    EXPECT_TRUE(fm.markFaulty(FaultKind::Slice, Coord{2, 0}).empty());

    const auto moves = fm.defragment();
    ASSERT_EQ(moves.size(), 1u);
    EXPECT_EQ(moves[0].id, *c);
    // The leftmost healthy window for c is cols 3..4 (col 2 is dead).
    EXPECT_EQ(moves[0].to.col, 3);
    EXPECT_EQ(moves[0].cost, 500u);
    EXPECT_EQ(fm.find(*c)->slices.col, 3);
}

TEST(FabricDegrade, ScheduleReplayIsReproducible)
{
    FaultSpec spec;
    spec.seed = 5;
    spec.mtbf = 20000.0;
    spec.count = 12;
    spec.mttr = 60000.0;

    using Outcome = std::tuple<AllocationId, DegradeKind, int, int,
                               unsigned, Cycles>;
    auto replay = [&spec]() {
        FabricManager fm(8, 8);
        while (fm.allocate(3, 2)) {
        }
        FaultModel model(spec, fm.width(), fm.height());
        std::vector<Outcome> outcomes;
        for (const FaultEvent &ev : model.schedule()) {
            for (const DegradeAction &a : fm.apply(ev)) {
                outcomes.emplace_back(a.id, a.kind, a.to.row,
                                      a.to.col, a.slicesLost, a.cost);
            }
        }
        outcomes.emplace_back(0, DegradeKind::Replaced,
                              static_cast<int>(fm.faultySlices()),
                              static_cast<int>(fm.faultyBanks()),
                              fm.largestFreeRun(),
                              static_cast<Cycles>(
                                  fm.allocations().size()));
        return outcomes;
    };
    // Same seed, same geometry, same tenants: every degradation
    // decision and the final fabric state must replay identically.
    EXPECT_EQ(replay(), replay());
}

namespace {

PerfModel &
faultPerf()
{
    static PerfModel pm(2000);
    return pm;
}

UtilityOptimizer &
faultOpt()
{
    static UtilityOptimizer opt(faultPerf(), AreaModel{});
    return opt;
}

} // namespace

TEST(SpotReauction, RefundsLostCapacityAtPreFaultPrices)
{
    SpotMarket market(faultOpt(), 64.0, 128.0);
    market.addCustomer(SpotCustomer{"web", "gcc",
                                    UtilityKind::Throughput, 40.0});
    market.addCustomer(SpotCustomer{"batch", "hmmer",
                                    UtilityKind::Balanced, 40.0});
    market.runToClearing(0.15, 40);
    const double slice_price = market.prices().slicePrice;
    const double bank_price = market.prices().bankPrice;

    const ReauctionResult re = market.reauctionAfterFailure(8.0, 16.0);
    EXPECT_DOUBLE_EQ(re.refundTotal,
                     8.0 * slice_price + 16.0 * bank_price);
    // Pro-rated refunds must add up to exactly the pool.
    double paid = 0.0;
    for (const SpotRefund &r : re.refunds) {
        EXPECT_GE(r.amount, 0.0);
        paid += r.amount;
    }
    EXPECT_NEAR(paid, re.refundTotal, 1e-9);
    ASSERT_EQ(re.refunds.size(), 2u);
    // Capacity shrank and the market re-cleared over the remainder.
    EXPECT_DOUBLE_EQ(market.sliceCapacity(), 56.0);
    EXPECT_DOUBLE_EQ(market.bankCapacity(), 112.0);
    EXPECT_FALSE(re.rounds.empty());
}

TEST(SpotReauction, CapacityBookkeeping)
{
    SpotMarket market(faultOpt(), 10.0, 20.0);
    market.reduceCapacity(4.0, 8.0);
    EXPECT_DOUBLE_EQ(market.sliceCapacity(), 6.0);
    EXPECT_DOUBLE_EQ(market.bankCapacity(), 12.0);
    market.restoreCapacity(4.0, 8.0);
    EXPECT_DOUBLE_EQ(market.sliceCapacity(), 10.0);
    EXPECT_DOUBLE_EQ(market.bankCapacity(), 20.0);
}

TEST(DatacenterDegraded, ZeroFailureIsBitIdentical)
{
    const std::vector<double> mixes = {0.25, 0.75};
    const DatacenterResult healthy =
        datacenterStudy(faultOpt(), "hmmer", "gobmk", mixes, 5);
    const DatacenterResult degraded = datacenterStudyDegraded(
        faultOpt(), "hmmer", "gobmk", mixes, 0.0, 0.0, 5);
    ASSERT_EQ(healthy.points.size(), degraded.points.size());
    for (std::size_t i = 0; i < healthy.points.size(); ++i) {
        EXPECT_EQ(healthy.points[i].utilityPerArea,
                  degraded.points[i].utilityPerArea);
    }
}

TEST(DatacenterDegraded, DeadCoresCostUtility)
{
    const std::vector<double> mixes = {0.5};
    const DatacenterResult healthy =
        datacenterStudy(faultOpt(), "hmmer", "gobmk", mixes, 5);
    const DatacenterResult degraded = datacenterStudyDegraded(
        faultOpt(), "hmmer", "gobmk", mixes, 0.25, 0.25, 5);
    for (std::size_t i = 0; i < healthy.points.size(); ++i) {
        EXPECT_LT(degraded.points[i].utilityPerArea,
                  healthy.points[i].utilityPerArea);
    }
}
