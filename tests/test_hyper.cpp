/**
 * @file
 * Tests for the hypervisor layer: the fabric allocator (contiguity,
 * fragmentation, defragmentation, reshape), the sub-core spot market,
 * and the auto-tuner of section 4.
 */

#include <algorithm>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "hyper/autotuner.hh"
#include "hyper/fabric_manager.hh"
#include "engine/fault_replay.hh"
#include "hyper/spot_market.hh"

using namespace sharch;

TEST(FabricManager, CapacityFromGeometry)
{
    // Even rows are Slices, odd rows banks.
    const FabricManager fm(8, 4);
    EXPECT_EQ(fm.totalSlices(), 16u);
    EXPECT_EQ(fm.totalBanks(), 16u);
    EXPECT_EQ(fm.freeSlices(), 16u);
    EXPECT_EQ(fm.freeBanks(), 16u);
    EXPECT_DOUBLE_EQ(fm.sliceUtilization(), 0.0);
}

TEST(FabricManager, AllocatesContiguousSlices)
{
    FabricManager fm(8, 4);
    const auto id = fm.allocate(4, 2);
    ASSERT_TRUE(id.has_value());
    const FabricAllocation *a = fm.find(*id);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->slices.count, 4u);
    EXPECT_EQ(a->banks.size(), 2u);
    EXPECT_EQ(fm.freeSlices(), 12u);
    EXPECT_EQ(fm.freeBanks(), 14u);
}

TEST(FabricManager, BanksNeedNotBeContiguousButAreNear)
{
    FabricManager fm(8, 4);
    const auto id = fm.allocate(2, 6);
    ASSERT_TRUE(id.has_value());
    const FabricAllocation *a = fm.find(*id);
    // All banks on odd rows, within the chip.
    for (const Coord &b : a->banks) {
        EXPECT_EQ(b.y % 2, 1);
        EXPECT_GE(b.x, 0);
        EXPECT_LT(b.x, 8);
    }
    // No duplicates.
    std::set<std::pair<int, int>> uniq;
    for (const Coord &b : a->banks)
        uniq.insert({b.x, b.y});
    EXPECT_EQ(uniq.size(), a->banks.size());
}

TEST(FabricManager, RejectsImpossibleRequests)
{
    FabricManager fm(4, 2); // 4 Slices, 4 banks
    EXPECT_FALSE(fm.allocate(5, 0).has_value());  // run too long
    EXPECT_FALSE(fm.allocate(1, 5).has_value());  // not enough banks
    EXPECT_FALSE(fm.allocate(0, 1).has_value());  // empty VCore
    EXPECT_TRUE(fm.allocate(4, 4).has_value());
    EXPECT_FALSE(fm.allocate(1, 0).has_value());  // chip full
}

TEST(FabricManager, ReleaseReturnsResources)
{
    FabricManager fm(8, 2);
    const auto id = fm.allocate(8, 8);
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(fm.freeSlices(), 0u);
    EXPECT_TRUE(fm.release(*id));
    EXPECT_EQ(fm.freeSlices(), 8u);
    EXPECT_EQ(fm.freeBanks(), 8u);
    EXPECT_FALSE(fm.release(*id)); // double release
    EXPECT_EQ(fm.find(*id), nullptr);
}

TEST(FabricManager, NoOverlapAcrossAllocations)
{
    FabricManager fm(8, 6);
    std::vector<AllocationId> ids;
    for (int i = 0; i < 5; ++i) {
        const auto id = fm.allocate(3, 3);
        if (id)
            ids.push_back(*id);
    }
    std::set<std::pair<int, int>> slice_cells, bank_cells;
    for (AllocationId id : ids) {
        const FabricAllocation *a = fm.find(id);
        for (unsigned i = 0; i < a->slices.count; ++i) {
            const bool fresh =
                slice_cells
                    .insert({a->slices.row,
                             a->slices.col + static_cast<int>(i)})
                    .second;
            EXPECT_TRUE(fresh);
        }
        for (const Coord &b : a->banks)
            EXPECT_TRUE(bank_cells.insert({b.x, b.y}).second);
    }
}

TEST(FabricManager, FragmentationAndDefrag)
{
    FabricManager fm(8, 2); // one row of 8 Slices
    const auto a = fm.allocate(2, 0);
    const auto b = fm.allocate(2, 0);
    const auto c = fm.allocate(2, 0);
    ASSERT_TRUE(a && b && c);
    // Free the middle run: 4 free Slices but max run only 2.
    ASSERT_TRUE(fm.release(*b));
    EXPECT_EQ(fm.freeSlices(), 4u);
    EXPECT_EQ(fm.largestFreeRun(), 2u);
    EXPECT_GT(fm.fragmentation(), 0.0);
    EXPECT_FALSE(fm.allocate(4, 0).has_value()); // fragmented

    const auto moves = fm.defragment();
    EXPECT_FALSE(moves.empty());
    for (const DefragMove &mv : moves)
        EXPECT_EQ(mv.cost, 500u); // Register Flush, Slice-only cost
    EXPECT_EQ(fm.largestFreeRun(), 4u);
    EXPECT_DOUBLE_EQ(fm.fragmentation(), 0.0);
    EXPECT_TRUE(fm.allocate(4, 0).has_value());
}

TEST(FabricManager, DefragPreservesAllocationSizes)
{
    FabricManager fm(8, 4);
    const auto a = fm.allocate(3, 2);
    const auto b = fm.allocate(2, 1);
    const auto c = fm.allocate(3, 0);
    ASSERT_TRUE(a && b && c);
    fm.release(*b);
    fm.defragment();
    EXPECT_EQ(fm.find(*a)->slices.count, 3u);
    EXPECT_EQ(fm.find(*c)->slices.count, 3u);
    EXPECT_EQ(fm.find(*a)->banks.size(), 2u);
}

TEST(FabricManager, ReshapeGrowsAndShrinks)
{
    FabricManager fm(8, 2);
    const auto id = fm.allocate(2, 2);
    ASSERT_TRUE(id.has_value());

    // Slice-only growth: 500 cycles.
    auto cost = fm.reshape(*id, 4, 2);
    ASSERT_TRUE(cost.has_value());
    EXPECT_EQ(*cost, 500u);
    EXPECT_EQ(fm.find(*id)->slices.count, 4u);
    EXPECT_EQ(fm.freeSlices(), 4u);

    // Bank change: L2 flush, 10,000 cycles.
    cost = fm.reshape(*id, 4, 6);
    ASSERT_TRUE(cost.has_value());
    EXPECT_EQ(*cost, 10000u);
    EXPECT_EQ(fm.find(*id)->banks.size(), 6u);

    // Shrink back; resources return.
    cost = fm.reshape(*id, 1, 0);
    ASSERT_TRUE(cost.has_value());
    EXPECT_EQ(fm.freeSlices(), 7u);
    EXPECT_EQ(fm.freeBanks(), 8u);
}

TEST(FabricManager, ReshapeFailsWhenBlocked)
{
    FabricManager fm(8, 2);
    const auto a = fm.allocate(4, 0);
    const auto b = fm.allocate(4, 0);
    ASSERT_TRUE(a && b);
    // No free neighbours anywhere: growth must fail, allocation
    // unchanged.
    EXPECT_FALSE(fm.reshape(*a, 6, 0).has_value());
    EXPECT_EQ(fm.find(*a)->slices.count, 4u);
}

namespace {

PerfModel &
hyperPerf()
{
    static PerfModel pm(4000);
    return pm;
}

UtilityOptimizer &
hyperOpt()
{
    static UtilityOptimizer opt(hyperPerf(), AreaModel{});
    return opt;
}

} // namespace

TEST(SpotMarket, PricesRiseUnderExcessDemand)
{
    // Tiny capacity, several rich customers: prices must climb.
    SpotMarket market(hyperOpt(), 4.0, 8.0);
    for (int i = 0; i < 4; ++i) {
        market.addCustomer(SpotCustomer{"c" + std::to_string(i),
                                        "gcc",
                                        UtilityKind::Balanced,
                                        defaultBudget()});
    }
    const double slice0 = market.prices().slicePrice;
    const double bank0 = market.prices().bankPrice;
    const SpotRound round = market.step();
    // Whichever resource is oversubscribed must get dearer (Slices
    // always are here; banks only if the customers' optima use any).
    EXPECT_GT(round.sliceExcess, 0.0);
    EXPECT_GT(market.prices().slicePrice, slice0);
    if (round.bankExcess > 0.0) {
        EXPECT_GT(market.prices().bankPrice, bank0);
    }
}

TEST(SpotMarket, PricesFallWhenIdle)
{
    SpotMarket market(hyperOpt(), 1e6, 1e6);
    market.addCustomer(SpotCustomer{"lonely", "hmmer",
                                    UtilityKind::Throughput, 100.0});
    const double slice0 = market.prices().slicePrice;
    market.step();
    EXPECT_LT(market.prices().slicePrice, slice0);
}

TEST(SpotMarket, ConvergesTowardClearing)
{
    SpotMarket market(hyperOpt(), 64.0, 256.0);
    market.addCustomer(SpotCustomer{"web", "apache",
                                    UtilityKind::Throughput, 300.0});
    market.addCustomer(SpotCustomer{"batch", "gcc",
                                    UtilityKind::Balanced, 300.0});
    market.addCustomer(SpotCustomer{"oldi", "omnetpp",
                                    UtilityKind::SingleStream, 300.0});
    const auto history = market.runToClearing(0.15, 60);
    ASSERT_FALSE(history.empty());
    const SpotRound &last = history.back();
    // Within tolerance, or the price floor explains the slack.
    EXPECT_LE(last.sliceExcess, 0.15 + 0.5);
    EXPECT_LE(last.bankExcess, 0.15 + 0.5);
    EXPECT_LT(history.size(), 61u);
    // Bids carry real shapes.
    for (const SpotBid &bid : last.bids) {
        EXPECT_GE(bid.choice.slices, 1u);
        EXPECT_GT(bid.choice.cores, 0.0);
    }
}

TEST(AutoTuner, ProtocolProposesAndConverges)
{
    AutoTuner tuner(UtilityKind::Balanced, market2(), defaultBudget());
    unsigned trials = 0;
    while (auto shape = tuner.nextShape()) {
        ASSERT_LT(++trials, 200u) << "tuner failed to converge";
        const double perf = hyperPerf().performance(
            "gcc", shape->banks, shape->slices);
        tuner.report(perf);
    }
    EXPECT_TRUE(tuner.converged());
    EXPECT_GE(tuner.history().size(), 4u);
    EXPECT_GT(tuner.best().utility, 0.0);
}

TEST(AutoTuner, FindsANearOptimalShape)
{
    AutoTuner tuner(UtilityKind::Balanced, market2(), defaultBudget());
    while (auto shape = tuner.nextShape()) {
        tuner.report(hyperPerf().performance("gcc", shape->banks,
                                             shape->slices));
    }
    const OptResult global = hyperOpt().peakUtility(
        "gcc", UtilityKind::Balanced, market2(), defaultBudget());
    // Hill climbing finds a local optimum within 2x of the global
    // one (the surface is benign; usually it finds the optimum).
    EXPECT_GE(tuner.best().utility, 0.5 * global.objective);
}

TEST(AutoTuner, AccountsReconfigurationCosts)
{
    AutoTuner tuner(UtilityKind::SingleStream, market2(),
                    defaultBudget(), VCoreShape{0, 1});
    while (auto shape = tuner.nextShape()) {
        tuner.report(hyperPerf().performance("omnetpp", shape->banks,
                                             shape->slices));
    }
    // omnetpp's single-stream optimum needs cache, so the tuner must
    // have moved at least once and paid for it.
    EXPECT_GT(tuner.reconfigurationSpent(), 0u);
    EXPECT_GT(tuner.best().shape.banks + tuner.best().shape.slices,
              1u);
}

TEST(FaultReplay, PacksTenantsAndAppliesSchedule)
{
    const fault::FaultSpec spec =
        fault::parseFaultSpec("slice:0:1,bank:1:2");
    ASSERT_TRUE(spec.ok());
    const FaultReplayResult r = replayFaults(spec, 8, 4, 4, 2);

    // 8x4 chip: 16 Slices / 16 banks; 4-Slice 2-bank tenants pack
    // four deep.
    EXPECT_EQ(r.tenants, 4u);
    EXPECT_EQ(r.events.size(), 2u);
    EXPECT_EQ(r.fabricWidth, 8);
    EXPECT_EQ(r.vcoreSlices, 4u);
    EXPECT_EQ(r.totalSlices, 16u);
    EXPECT_EQ(r.faultySlices, 1u);
    EXPECT_EQ(r.faultyBanks, 1u);
    // Somebody owned tile (0,1), so the fault forced a reaction.
    EXPECT_FALSE(r.events[0].second.empty());

    // Totals re-derive from the per-event log.
    unsigned replaced = 0, slices_lost = 0;
    Cycles cost = 0;
    for (const auto &[ev, actions] : r.events) {
        for (const DegradeAction &a : actions) {
            replaced += a.kind == DegradeKind::Replaced;
            slices_lost += a.slicesLost;
            cost += a.cost;
        }
    }
    EXPECT_EQ(r.replaced, replaced);
    EXPECT_EQ(r.slicesLost, slices_lost);
    EXPECT_EQ(r.reconfigCycles, cost);
}

TEST(FaultReplay, EventsJsonMirrorsTheLog)
{
    const fault::FaultSpec spec =
        fault::parseFaultSpec("slice:0:1,bank:1:2");
    ASSERT_TRUE(spec.ok());
    const FaultReplayResult r = replayFaults(spec, 8, 4, 4, 2);
    const std::string json = faultEventsJson(r);

    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.back(), ']');
    EXPECT_NE(json.find("\"kind\":\"slice\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\":\"bank\""), std::string::npos);
    EXPECT_NE(json.find("\"tile\":[0,1]"), std::string::npos);
    // One object per event.
    std::size_t at = 0, count = 0, pos = 0;
    while ((pos = json.find("\"at\":", at)) != std::string::npos) {
        ++count;
        at = pos + 1;
    }
    EXPECT_EQ(count, r.events.size());
}

TEST(FaultReplay, ReportCarriesSummaryAndEvents)
{
    const fault::FaultSpec spec =
        fault::parseFaultSpec("seed=3,mtbf=1000,count=5");
    ASSERT_TRUE(spec.ok());
    const FaultReplayResult r = replayFaults(spec, 8, 8, 4, 4);
    const study::Report report = faultReplayReport(r);

    EXPECT_EQ(report.id, "ssim_fault_replay");
    ASSERT_EQ(report.tables.size(), 1u);
    const study::Table &t = report.tables.front();
    ASSERT_EQ(t.columns.size(), 11u);
    ASSERT_EQ(t.rows.size(), 1u);
    EXPECT_EQ(t.columns[0].name, "replaced");
    EXPECT_EQ(t.rows[0][0].integer,
              static_cast<std::int64_t>(r.replaced));
    ASSERT_EQ(report.rawJson.size(), 1u);
    EXPECT_EQ(report.rawJson[0].first, "events");
    EXPECT_EQ(report.rawJson[0].second, faultEventsJson(r));
    // The rendered document must still be one valid JSON value: the
    // events splice is a raw string, so this is where a stray quote
    // would surface.
    const std::string doc =
        study::render(report, study::Format::Json);
    EXPECT_NE(doc.find("\"events\""), std::string::npos);
    EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
              std::count(doc.begin(), doc.end(), '}'));
}

// --- Churn invariants (ISSUE 10 satellite) -------------------------
//
// The fleet engine leans on FabricManager::defragment and
// SpotMarket::reauctionAfterFailure holding their invariants not just
// after one operation but after *thousands* of interleaved
// arrive/depart/fault/heal cycles.  These two tests churn the
// hypervisor layer the way datacenter_churn does and audit closure
// after every composite step.

namespace {

/** Occupied + free + faulty must tile the chip exactly. */
void
expectOccupancyClosure(const FabricManager &fm)
{
    unsigned heldSlices = 0, heldBanks = 0;
    for (const FabricAllocation &a : fm.allocations()) {
        heldSlices += a.slices.count;
        heldBanks += static_cast<unsigned>(a.banks.size());
    }
    EXPECT_EQ(heldSlices + fm.freeSlices() + fm.faultySlices(),
              fm.totalSlices());
    EXPECT_EQ(heldBanks + fm.freeBanks() + fm.faultyBanks(),
              fm.totalBanks());
}

} // namespace

TEST(FabricManager, DefragmentInvariantsUnderChurn)
{
    FabricManager fm(8, 8); // 32 Slices, 32 banks
    Rng rng(1234);
    std::vector<AllocationId> live;

    for (int step = 0; step < 4000; ++step) {
        const bool arrive =
            live.empty() || rng.nextBool(0.55);
        if (arrive) {
            const unsigned s =
                1 + static_cast<unsigned>(rng.nextBounded(6));
            const unsigned b =
                static_cast<unsigned>(rng.nextBounded(5));
            const auto id = fm.allocate(s, b);
            if (id.has_value())
                live.push_back(*id);
        } else {
            const std::size_t pick = static_cast<std::size_t>(
                rng.nextBounded(live.size()));
            ASSERT_TRUE(fm.release(live[pick]));
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(pick));
        }

        if (step % 97 == 0) {
            // Shapes must survive compaction move for move.
            std::vector<std::pair<AllocationId, VCoreShape>> before;
            for (const AllocationId id : live) {
                const FabricAllocation *a = fm.find(id);
                ASSERT_NE(a, nullptr);
                before.emplace_back(id, a->shape());
            }
            const double fragBefore = fm.fragmentation();
            fm.defragment();
            EXPECT_LE(fm.fragmentation(), fragBefore);
            for (const auto &[id, shape] : before) {
                const FabricAllocation *a = fm.find(id);
                ASSERT_NE(a, nullptr) << "lease lost to defrag";
                EXPECT_EQ(a->shape().slices, shape.slices);
                EXPECT_EQ(a->shape().banks, shape.banks);
            }
        }

        std::string err;
        ASSERT_TRUE(fm.checkConsistency(&err))
            << "step " << step << ": " << err;
        expectOccupancyClosure(fm);
    }
    EXPECT_FALSE(live.empty()) << "churn never held an allocation";
}

TEST(SpotMarket, ReauctionInvariantsUnderFaultChurn)
{
    FabricManager fm(8, 8);
    SpotMarket market(hyperOpt(), fm.totalSlices(),
                      fm.totalBanks());
    Rng rng(99);
    const char *benches[] = {"gcc", "apache", "bzip"};
    std::vector<CustomerId> active;
    std::vector<Coord> faulted; // Slice tiles currently down
    int joined = 0;

    for (int step = 0; step < 1500; ++step) {
        const double roll = rng.nextDouble();
        if (roll < 0.45 || active.empty()) {
            active.push_back(market.addCustomer(SpotCustomer{
                "churn" + std::to_string(joined++),
                benches[rng.nextBounded(3)],
                kAllUtilities[rng.nextBounded(3)],
                4.0 + rng.nextDouble() * 20.0}));
        } else if (roll < 0.75) {
            const std::size_t pick = static_cast<std::size_t>(
                rng.nextBounded(active.size()));
            market.deactivateCustomer(active[pick]);
            active.erase(active.begin() +
                         static_cast<std::ptrdiff_t>(pick));
        } else if (roll < 0.90 && faulted.size() < 16) {
            // Strike a random healthy Slice tile and reauction.
            const Coord tile{
                static_cast<int>(rng.nextBounded(8)),
                2 * static_cast<int>(rng.nextBounded(4))};
            if (!fm.isFaulty(fault::FaultKind::Slice, tile)) {
                fm.markFaulty(fault::FaultKind::Slice, tile);
                faulted.push_back(tile);
                const double priceBefore =
                    market.prices().slicePrice;
                const ReauctionResult r =
                    market.reauctionAfterFailure(1.0, 0.0, 0.15, 6);
                EXPECT_NEAR(r.refundTotal, priceBefore, 1e-9)
                    << "refund must be the lost capacity at the "
                       "pre-fault price";
            }
        } else if (!faulted.empty()) {
            const std::size_t pick = static_cast<std::size_t>(
                rng.nextBounded(faulted.size()));
            ASSERT_TRUE(fm.heal(fault::FaultKind::Slice,
                                faulted[pick]));
            market.restoreCapacity(1.0, 0.0);
            faulted.erase(faulted.begin() +
                          static_cast<std::ptrdiff_t>(pick));
        }

        // Capacity closure: the market sells exactly the healthy
        // fabric, cycle after cycle.
        EXPECT_DOUBLE_EQ(market.sliceCapacity(),
                         static_cast<double>(fm.totalSlices() -
                                             fm.faultySlices()));
        EXPECT_EQ(market.activeCustomers(), active.size());
        std::string err;
        ASSERT_TRUE(market.checkConsistency(&err))
            << "step " << step << ": " << err;
        ASSERT_TRUE(fm.checkConsistency(&err))
            << "step " << step << ": " << err;
    }
    EXPECT_GT(joined, 100);
}
