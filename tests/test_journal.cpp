/**
 * @file
 * Write-ahead journal suite: the sharch-journal-v1 frame format,
 * crash recovery (kill at every byte of the log recovers to a
 * byte-identical final report), torn-tail truncation with
 * positioned warnings, snapshot fallback, rotation + compaction,
 * and the cross-layer invariant audit recovery gates on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "area/area_model.hh"
#include "core/perf_model.hh"
#include "engine/allocation_engine.hh"
#include "engine/journal.hh"
#include "hyper/fabric_manager.hh"
#include "hyper/spot_market.hh"
#include "study/report.hh"

using namespace sharch;
using engine::AllocationEngine;
using engine::EngineConfig;
using engine::Journal;
using engine::JournalConfig;
using engine::JournalRecovery;

namespace fs = std::filesystem;

namespace {

class JournalTest : public ::testing::Test
{
  protected:
    JournalTest() : pm_(2000, 1), opt_(pm_, am_) {}

    AllocationEngine
    makeEngine()
    {
        return AllocationEngine(opt_, EngineConfig{});
    }

    /** Fabric-only arrival (budget 0): no market, no simulation. */
    static engine::Event
    arrive(Cycles at, const std::string &tenant, unsigned slices,
           unsigned banks)
    {
        return engine::tenantArrive(at, tenant, "",
                                    UtilityKind::Throughput, 0.0,
                                    slices, banks);
    }

    /** A fresh, empty journal directory under the test tmpdir. */
    std::string
    freshDir(const std::string &name)
    {
        const std::string dir = ::testing::TempDir() + "sharch-" +
                                name + "-" +
                                std::to_string(::getpid());
        fs::remove_all(dir);
        return dir;
    }

    /** The mixed fabric-only script the recovery tests replay. */
    static std::vector<engine::Event>
    script()
    {
        std::vector<engine::Event> ev;
        ev.push_back(arrive(1, "a", 4, 2));
        ev.push_back(arrive(2, "b", 2, 1));
        ev.push_back(arrive(3, "c", 6, 3));
        ev.push_back(engine::reshapeEvent(4, 1, 2, 1));
        ev.push_back(engine::tenantDepart(5, "b"));
        ev.push_back(arrive(6, "d", 8, 4));
        ev.push_back(engine::reshapeEvent(7, 3, 4, 2));
        ev.push_back(engine::tenantDepart(8, "c"));
        return ev;
    }

    static std::string
    readFile(const std::string &path)
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        return buf.str();
    }

    static void
    writeFile(const std::string &path, const std::string &bytes)
    {
        std::ofstream out(path,
                          std::ios::binary | std::ios::trunc);
        out << bytes;
    }

    PerfModel pm_;
    AreaModel am_;
    UtilityOptimizer opt_;
};

TEST(Crc32, MatchesTheReferenceVector)
{
    // The classic check value for reflected poly 0xEDB88320.
    EXPECT_EQ(engine::crc32("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(engine::crc32("", 0), 0x00000000u);
}

TEST_F(JournalTest, FreshDirectoryStartsGenerationZero)
{
    const std::string dir = freshDir("fresh");
    AllocationEngine e = makeEngine();
    Journal j{JournalConfig{dir}};
    JournalRecovery rec;
    std::string err;
    ASSERT_TRUE(j.open(e, &rec, &err)) << err;
    EXPECT_TRUE(rec.fresh);
    EXPECT_EQ(rec.replayed, 0u);
    EXPECT_TRUE(fs::exists(dir + "/snap-0.state"));
    EXPECT_TRUE(fs::exists(dir + "/wal-0.log"));
}

TEST_F(JournalTest, FrameFormatIsMagicThenLengthCrcPayload)
{
    const std::string dir = freshDir("frame");
    AllocationEngine e = makeEngine();
    Journal j{JournalConfig{dir}};
    std::string err;
    ASSERT_TRUE(j.open(e, nullptr, &err)) << err;
    e.execute(arrive(1, "a", 4, 2));
    j.close();

    const std::string wal = readFile(dir + "/wal-0.log");
    const std::string magic = engine::kJournalMagic;
    ASSERT_GT(wal.size(), magic.size() + 8);
    EXPECT_EQ(wal.substr(0, magic.size()), magic);

    const auto *u = reinterpret_cast<const unsigned char *>(
        wal.data() + magic.size());
    const std::uint32_t len = u[0] | u[1] << 8 | u[2] << 16 |
                              static_cast<std::uint32_t>(u[3])
                                  << 24;
    const std::uint32_t crc = u[4] | u[5] << 8 | u[6] << 16 |
                              static_cast<std::uint32_t>(u[7])
                                  << 24;
    ASSERT_EQ(magic.size() + 8 + len, wal.size());
    const std::string payload = wal.substr(magic.size() + 8, len);
    EXPECT_EQ(engine::crc32(payload.data(), payload.size()), crc);
    // The payload is the event line itself.
    EXPECT_NE(payload.find("\"kind\":\"tenant_arrive\""),
              std::string::npos)
        << payload;
}

TEST_F(JournalTest, RecoveryReplaysToByteIdenticalState)
{
    const std::string dir = freshDir("roundtrip");
    std::string before;
    {
        AllocationEngine e = makeEngine();
        Journal j{JournalConfig{dir}};
        std::string err;
        ASSERT_TRUE(j.open(e, nullptr, &err)) << err;
        for (const engine::Event &ev : script())
            e.execute(ev);
        before = e.saveState();
    }
    AllocationEngine e = makeEngine();
    Journal j{JournalConfig{dir}};
    JournalRecovery rec;
    std::string err;
    ASSERT_TRUE(j.open(e, &rec, &err)) << err;
    EXPECT_FALSE(rec.fresh);
    EXPECT_EQ(rec.replayed, script().size());
    EXPECT_TRUE(rec.warnings.empty());
    EXPECT_EQ(e.saveState(), before);
    EXPECT_TRUE(e.checkInvariants(&err)) << err;
}

TEST_F(JournalTest, KillAtEveryByteRecoversIdentically)
{
    // Baseline: the full script, journaled, and its final report.
    const std::string dir = freshDir("killbase");
    const std::vector<engine::Event> events = script();
    std::string baseline;
    {
        AllocationEngine e = makeEngine();
        Journal j{JournalConfig{dir}};
        std::string err;
        ASSERT_TRUE(j.open(e, nullptr, &err)) << err;
        for (const engine::Event &ev : events)
            e.execute(ev);
        baseline = study::renderJson(e.finalReport());
    }
    const std::string snap = readFile(dir + "/snap-0.state");
    const std::string wal = readFile(dir + "/wal-0.log");
    const std::size_t magic =
        std::string(engine::kJournalMagic).size();

    // Cut the log at every byte past the magic: each prefix is a
    // state some crash could have left behind.  Recovery must
    // replay the intact records, truncate at most one torn tail,
    // and -- once the missing suffix is re-executed -- produce the
    // identical report.
    const std::string work = freshDir("killwork");
    for (std::size_t cut = magic; cut <= wal.size(); ++cut) {
        fs::remove_all(work);
        fs::create_directory(work);
        writeFile(work + "/snap-0.state", snap);
        writeFile(work + "/wal-0.log", wal.substr(0, cut));

        AllocationEngine e = makeEngine();
        Journal j{JournalConfig{work}};
        JournalRecovery rec;
        std::string err;
        ASSERT_TRUE(j.open(e, &rec, &err))
            << "cut at byte " << cut << ": " << err;
        ASSERT_LE(rec.replayed, events.size()) << cut;
        EXPECT_EQ(rec.truncatedTail, !rec.warnings.empty()) << cut;
        for (std::size_t i = rec.replayed; i < events.size(); ++i)
            e.execute(events[i]);
        ASSERT_EQ(study::renderJson(e.finalReport()), baseline)
            << "diverged after cutting the log at byte " << cut
            << " (replayed " << rec.replayed << ")";
        j.close();
    }
}

TEST_F(JournalTest, CorruptPayloadTruncatesWithPositionedWarning)
{
    const std::string dir = freshDir("corrupt");
    {
        AllocationEngine e = makeEngine();
        Journal j{JournalConfig{dir}};
        std::string err;
        ASSERT_TRUE(j.open(e, nullptr, &err)) << err;
        for (const engine::Event &ev : script())
            e.execute(ev);
    }
    // Flip one byte deep inside the final record's payload.
    std::string wal = readFile(dir + "/wal-0.log");
    wal[wal.size() - 5] ^= 0x20;
    writeFile(dir + "/wal-0.log", wal);

    AllocationEngine e = makeEngine();
    Journal j{JournalConfig{dir}};
    JournalRecovery rec;
    std::string err;
    ASSERT_TRUE(j.open(e, &rec, &err)) << err;
    EXPECT_EQ(rec.replayed, script().size() - 1);
    EXPECT_TRUE(rec.truncatedTail);
    ASSERT_EQ(rec.warnings.size(), 1u);
    EXPECT_NE(rec.warnings[0].find("wal-0.log: offset"),
              std::string::npos)
        << rec.warnings[0];
    EXPECT_NE(rec.warnings[0].find("CRC mismatch"),
              std::string::npos)
        << rec.warnings[0];
    // The truncation is persistent: a second recovery is silent.
    AllocationEngine e2 = makeEngine();
    Journal j2{JournalConfig{dir}};
    JournalRecovery rec2;
    j.close();
    ASSERT_TRUE(j2.open(e2, &rec2, &err)) << err;
    EXPECT_TRUE(rec2.warnings.empty());
    EXPECT_EQ(rec2.replayed, script().size() - 1);
}

TEST_F(JournalTest, RotationCompactsToTheLatestTwoGenerations)
{
    const std::string dir = freshDir("rotate");
    JournalConfig cfg{dir};
    cfg.rotateEvery = 2;
    std::string before;
    {
        AllocationEngine e = makeEngine();
        Journal j{cfg};
        std::string err;
        ASSERT_TRUE(j.open(e, nullptr, &err)) << err;
        for (const engine::Event &ev : script())
            e.execute(ev);
        // 8 events at 2 per segment: generations 0..3.
        EXPECT_EQ(j.generation(), 3u);
        before = e.saveState();
    }
    EXPECT_FALSE(fs::exists(dir + "/snap-0.state"));
    EXPECT_FALSE(fs::exists(dir + "/wal-1.log"));
    EXPECT_TRUE(fs::exists(dir + "/snap-2.state"));
    EXPECT_TRUE(fs::exists(dir + "/snap-3.state"));
    EXPECT_TRUE(fs::exists(dir + "/wal-2.log"));
    EXPECT_TRUE(fs::exists(dir + "/wal-3.log"));

    AllocationEngine e = makeEngine();
    Journal j{cfg};
    JournalRecovery rec;
    std::string err;
    ASSERT_TRUE(j.open(e, &rec, &err)) << err;
    EXPECT_EQ(e.saveState(), before);
    EXPECT_EQ(rec.generation, 3u);
}

TEST_F(JournalTest, BadNewestSnapshotFallsBackAGeneration)
{
    const std::string dir = freshDir("fallback");
    JournalConfig cfg{dir};
    cfg.rotateEvery = 2;
    std::string before;
    {
        AllocationEngine e = makeEngine();
        Journal j{cfg};
        std::string err;
        ASSERT_TRUE(j.open(e, nullptr, &err)) << err;
        for (const engine::Event &ev : script())
            e.execute(ev);
        before = e.saveState();
    }
    // Damage the newest snapshot: recovery must anchor on snap-2
    // and reach the same state through wal-2 + wal-3.
    writeFile(dir + "/snap-3.state", "not a snapshot");

    AllocationEngine e = makeEngine();
    Journal j{cfg};
    JournalRecovery rec;
    std::string err;
    ASSERT_TRUE(j.open(e, &rec, &err)) << err;
    ASSERT_FALSE(rec.warnings.empty());
    EXPECT_NE(rec.warnings[0].find("snap-3.state"),
              std::string::npos)
        << rec.warnings[0];
    EXPECT_EQ(e.saveState(), before);
}

TEST_F(JournalTest, CorruptionInANonFinalSegmentIsFatal)
{
    const std::string dir = freshDir("midhist");
    JournalConfig cfg{dir};
    cfg.rotateEvery = 2;
    {
        AllocationEngine e = makeEngine();
        Journal j{cfg};
        std::string err;
        ASSERT_TRUE(j.open(e, nullptr, &err)) << err;
        for (const engine::Event &ev : script())
            e.execute(ev);
    }
    // Force recovery to replay wal-2 (now mid-history) by removing
    // the newest snapshot, then damage wal-2: a torn tail is only
    // legitimate in the final segment, so this must refuse.
    fs::remove(dir + "/snap-3.state");
    std::string wal = readFile(dir + "/wal-2.log");
    wal[wal.size() - 5] ^= 0x20;
    writeFile(dir + "/wal-2.log", wal);

    AllocationEngine e = makeEngine();
    Journal j{cfg};
    std::string err;
    EXPECT_FALSE(j.open(e, nullptr, &err));
    EXPECT_NE(err.find("wal-2.log"), std::string::npos) << err;
    EXPECT_NE(err.find("non-final"), std::string::npos) << err;
}

TEST_F(JournalTest, WalWithoutAnySnapshotIsUnrecoverable)
{
    const std::string dir = freshDir("nosnap");
    {
        AllocationEngine e = makeEngine();
        Journal j{JournalConfig{dir}};
        std::string err;
        ASSERT_TRUE(j.open(e, nullptr, &err)) << err;
        e.execute(arrive(1, "a", 4, 2));
    }
    fs::remove(dir + "/snap-0.state");
    AllocationEngine e = makeEngine();
    Journal j{JournalConfig{dir}};
    std::string err;
    EXPECT_FALSE(j.open(e, nullptr, &err));
    EXPECT_NE(err.find("no snapshot"), std::string::npos) << err;
}

TEST_F(JournalTest, InvariantsHoldThroughABusySession)
{
    AllocationEngine e = makeEngine();
    for (const engine::Event &ev : script())
        e.execute(ev);
    e.execute(engine::faultStrike(9, fault::FaultKind::Slice,
                                  Coord{3, 0}));
    e.execute(engine::auctionEpoch(10));
    std::string err;
    EXPECT_TRUE(e.checkInvariants(&err)) << err;
}

TEST_F(JournalTest, FabricAuditCatchesAFaultyOwnedTile)
{
    FabricManager f(8, 8);
    const auto id = f.allocate(4, 2);
    ASSERT_TRUE(id.has_value());
    std::string err;
    ASSERT_TRUE(f.checkConsistency(&err)) << err;

    // restore() validates claims but not fault overlap -- a
    // snapshot marking a *leased* tile faulty slips through, and
    // the deep audit is what catches it.
    FabricSnapshot snap = f.snapshot();
    const SliceRun &run = f.find(*id)->slices;
    snap.faultySliceTiles.push_back(Coord{run.col, run.row});
    ASSERT_TRUE(f.restore(snap, &err)) << err;
    EXPECT_FALSE(f.checkConsistency(&err));
    EXPECT_NE(err.find("fabric:"), std::string::npos) << err;
}

TEST_F(JournalTest, MarketAuditCatchesANonFiniteBudget)
{
    SpotMarket m(opt_, 32.0, 32.0);
    std::string err;
    ASSERT_TRUE(m.checkConsistency(&err)) << err;
    SpotMarketSnapshot snap = m.snapshot();
    SpotCustomer bad;
    bad.name = "evil";
    bad.budget = -5.0;
    snap.customers.push_back(bad);
    m.restore(snap);
    EXPECT_FALSE(m.checkConsistency(&err));
    EXPECT_NE(err.find("market:"), std::string::npos) << err;
}

} // namespace
