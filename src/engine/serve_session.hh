/**
 * @file
 * The sharch-serve request protocol: newline-delimited JSON over
 * stdin/stdout, one request per line, one response per line.
 *
 * The engine made hypervisor mutations data (events); this layer
 * makes them *remote*: an external orchestrator -- a test script, a
 * CI step, a would-be cloud control plane -- drives an
 * AllocationEngine without linking against it.  Eight operations:
 *
 *   {"op":"allocate","tenant":T,...}   admit a tenant (TenantArrive)
 *   {"op":"release","tenant":T}        tenant departs (TenantDepart)
 *   {"op":"reshape","lease":N,...}     grow/shrink a live lease
 *   {"op":"price"}                     run an auction epoch, report
 *                                      the clearing prices
 *   {"op":"snapshot"}                  sharch-state-v1 inline (or to
 *                                      "path":FILE)
 *   {"op":"restore","state":{...}}     replace engine state (or from
 *                                      "path":FILE)
 *   {"op":"stats"}                     counters, clock, occupancy
 *   {"op":"report"}                    the deterministic
 *                                      sharch-report-v1 document
 *
 * Every response is one JSON object starting {"ok":true,...} or
 * {"ok":false,"error":"..."}.  A malformed request never kills the
 * session: it answers ok:false and the next line is processed
 * normally -- and a request larger than kMaxRequestBytes is refused
 * the same way, so a hostile or broken client cannot balloon the
 * process.  Because snapshot/restore round-trip byte-exactly, a
 * session can be killed after any response and resumed from its last
 * snapshot with identical subsequent behavior; with a Journal
 * attached (setJournal) it can be killed after any *instruction* and
 * recovered.
 */

#ifndef SHARCH_ENGINE_SERVE_SESSION_HH
#define SHARCH_ENGINE_SERVE_SESSION_HH

#include <string>

#include "engine/engine_base.hh"

namespace sharch::engine {

class Journal;

/**
 * Longest request line the session will look at.  Oversized lines
 * get a positioned {"ok":false} reply instead of a parse attempt;
 * the sharch-serve reader enforces the same bound while reading so
 * an unterminated line cannot buffer without limit either.
 */
inline constexpr std::size_t kMaxRequestBytes = 1u << 20;

/** The refusal reply for a line that breaches kMaxRequestBytes. */
std::string oversizedLineReply(std::size_t size);

/**
 * One sharch-serve conversation over an engine.  The session speaks
 * EngineBase only -- event factories, lease queries, reply
 * contributions -- so the same eight operations drive a single-chip
 * AllocationEngine or a fleet::FleetEngine (sharch-serve --fleet).
 */
class ServeSession
{
  public:
    explicit ServeSession(EngineBase &engine)
        : engine_(&engine)
    {
    }

    /**
     * Attach the write-ahead journal recovering/serving this engine
     * (may be null).  The session only needs it for `restore`:
     * wholesale state replacement does not flow through the event
     * queue, so the journal must cut a fresh snapshot generation or
     * a later recovery would resurrect the pre-restore state.
     */
    void setJournal(Journal *journal) { journal_ = journal; }

    /**
     * Process one request line; @return the one-line JSON response
     * (no trailing newline).  Never throws: protocol and engine
     * errors come back as {"ok":false,"error":...}.
     */
    std::string handle(const std::string &line);

    /** Requests answered so far (ok and failed alike). */
    std::uint64_t requestsHandled() const { return requests_; }

  private:
    EngineBase *engine_;
    Journal *journal_ = nullptr;
    std::uint64_t requests_ = 0;

    std::string handleAllocate(const json::Value &req);
    std::string handleRelease(const json::Value &req);
    std::string handleReshape(const json::Value &req);
    std::string handlePrice(const json::Value &req);
    std::string handleSnapshot(const json::Value &req);
    std::string handleRestore(const json::Value &req);
    std::string handleStats() const;
    std::string handleReport() const;
};

} // namespace sharch::engine

#endif // SHARCH_ENGINE_SERVE_SESSION_HH
