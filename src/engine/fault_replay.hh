/**
 * @file
 * Library form of ssim's `--inject-faults` replay: populate an
 * AllocationEngine with identical tenants, run a fault schedule
 * through the typed-event queue, and report the graceful-degradation
 * outcome.
 *
 * Originally extracted from tools/ssim.cpp as a hand-rolled loop over
 * FabricManager::apply(); now routed through the engine's event path
 * (TenantArrive / FaultStrike / Heal via AllocationEngine::execute),
 * so the replay exercises the same dispatch machinery journals and
 * checkpoints see, while the report bytes -- pinned by test_hyper --
 * stay identical.
 */

#ifndef SHARCH_ENGINE_FAULT_REPLAY_HH
#define SHARCH_ENGINE_FAULT_REPLAY_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault_model.hh"
#include "hyper/fabric_manager.hh"
#include "study/report.hh"

namespace sharch {

/** Everything one fault-schedule replay produced. */
struct FaultReplayResult
{
    unsigned tenants = 0;      //!< VCores placed before the schedule
    unsigned vcoreSlices = 0;  //!< Slices per tenant
    unsigned vcoreBanks = 0;   //!< banks per tenant
    int fabricWidth = 0;
    int fabricHeight = 0;

    /** Each scheduled event with the degradation actions it forced. */
    std::vector<std::pair<fault::FaultEvent,
                          std::vector<DegradeAction>>> events;

    /** Outcome totals over every event. */
    unsigned replaced = 0;
    unsigned shrunk = 0;
    unsigned evicted = 0;
    unsigned slicesLost = 0;
    unsigned banksLost = 0;
    Cycles reconfigCycles = 0;

    /** Fabric state after the last event. */
    unsigned faultySlices = 0;
    unsigned totalSlices = 0;
    unsigned faultyBanks = 0;
    std::size_t liveVCores = 0;
    double sliceUtilization = 0.0;
    double fragmentation = 0.0;
};

/**
 * Replay @p spec against a fresh @p width x @p height engine packed
 * with as many (@p vcore_slices, @p vcore_banks) tenants as fit.
 * @pre spec.ok() and !spec.empty().
 */
FaultReplayResult replayFaults(const fault::FaultSpec &spec,
                               int width, int height,
                               unsigned vcore_slices,
                               unsigned vcore_banks);

/**
 * The per-event JSON array ssim attaches under "events": one object
 * per event with its cycle, kind, tile, heal flag, and actions.
 */
std::string faultEventsJson(const FaultReplayResult &result);

/**
 * The full "ssim_fault_replay" report (summary table, meta, events
 * section) -- render with study::Format::Json for the historical
 * `ssim --inject-faults --json` bytes.
 */
study::Report faultReplayReport(const FaultReplayResult &result);

} // namespace sharch

#endif // SHARCH_ENGINE_FAULT_REPLAY_HH
