/**
 * @file
 * The typed event vocabulary of the allocation engine.
 *
 * The hypervisor layer used to be call-driven: whoever held a
 * FabricManager or SpotMarket poked it directly, so a long churn run
 * existed only as a C++ call sequence -- unserializable, unresumable,
 * unservable.  The engine inverts that: every hypervisor mutation is
 * one of six event kinds processed from a deterministic queue
 * (ordered by cycle, ties by posting order), so the same stream can
 * come from a study script, a replayed fault schedule, or a
 * sharch-serve request socket, and the full run is a value that can
 * be checkpointed mid-stream.
 */

#ifndef SHARCH_ENGINE_EVENT_HH
#define SHARCH_ENGINE_EVENT_HH

#include <string>

#include "common/json.hh"
#include "common/types.hh"
#include "econ/utility.hh"
#include "fault/fault_model.hh"
#include "noc/mesh.hh"

namespace sharch::engine {

/** The mutations the engines understand. */
enum class EventKind
{
    TenantArrive, //!< admit a tenant: market book entry + VCore
    TenantDepart, //!< tenant leaves: release VCore, retire bidder
    Reshape,      //!< grow/shrink a live lease in place
    FaultStrike,  //!< a tile or link fails under live VCores
    Heal,         //!< a faulty tile or link returns to service
    AuctionEpoch, //!< run the tatonnement to a new clearing
    Checkpoint,   //!< serialize engine state (sharch-state-v1)

    // Fleet vocabulary (src/fleet): the same queue drives thousands
    // of chips, with placement deciding *which* chip an arrival
    // lands on.
    FleetArrive,  //!< place a tenant somewhere in the fleet
    FleetDepart,  //!< a fleet tenant leaves (global lease lookup)
    EpochAuction, //!< re-clear every chip whose membership changed
};

/** "tenant_arrive" / "tenant_depart" / "fault_strike" / ... */
const char *eventKindName(EventKind kind);

/** Inverse of eventKindName(); false on an unknown name. */
bool parseEventKind(const std::string &name, EventKind *out);

/**
 * One event.  Only the fields its kind reads are meaningful; the
 * rest stay at their defaults (and are omitted from serialization).
 */
struct Event
{
    Cycles at = 0;
    EventKind kind = EventKind::AuctionEpoch;

    // TenantArrive (all) / TenantDepart (tenant only).  A tenant
    // with slices == 0 is market-only: it bids in auctions but
    // claims no fabric; budget == 0 is fabric-only (no bidding).
    std::string tenant;
    std::string benchmark;
    UtilityKind utility = UtilityKind::Throughput;
    double budget = 0.0;
    unsigned slices = 0; //!< also the Reshape target shape
    unsigned banks = 0;

    // Reshape.
    std::uint64_t lease = 0;

    // FaultStrike / Heal.
    fault::FaultKind fault = fault::FaultKind::Slice;
    Coord tile;

    // Checkpoint.
    std::string label;

    // FleetArrive: cycles until the tenant departs on its own (0:
    // stays until an explicit FleetDepart).  Admission posts the
    // departure, so a churn stream is arrivals all the way down.
    Cycles lifetime = 0;

    // Fleet FaultStrike / Heal: which chip the tile belongs to.
    // -1 targets the single-chip engine's only fabric (and is
    // omitted from serialization, keeping pre-fleet bytes stable).
    int chip = -1;
};

// --- Factories (keep study/test scripts terse) -------------------

Event tenantArrive(Cycles at, std::string tenant,
                   std::string benchmark, UtilityKind utility,
                   double budget, unsigned slices, unsigned banks);
Event tenantDepart(Cycles at, std::string tenant);
Event reshapeEvent(Cycles at, std::uint64_t lease, unsigned slices,
                   unsigned banks);
Event faultStrike(Cycles at, fault::FaultKind kind, Coord tile);
Event healFault(Cycles at, fault::FaultKind kind, Coord tile);
Event auctionEpoch(Cycles at);
Event checkpoint(Cycles at, std::string label);
Event fleetArrive(Cycles at, std::string tenant,
                  std::string benchmark, UtilityKind utility,
                  double budget, unsigned slices, unsigned banks,
                  Cycles lifetime);
Event fleetDepart(Cycles at, std::string tenant);
Event epochAuction(Cycles at);

/**
 * Serialize for the sharch-state-v1 "queue" section: kind first,
 * then cycle and posting order, then only the kind's own fields, in
 * a fixed order (byte-determinism).
 */
json::Value eventToJson(const Event &e, std::uint64_t seq);

/**
 * Rebuild an Event (+ its posting order) from eventToJson() output.
 * @return false with @p error naming the bad field otherwise.
 */
bool eventFromJson(const json::Value &v, Event *out,
                   std::uint64_t *seq, std::string *error);

} // namespace sharch::engine

#endif // SHARCH_ENGINE_EVENT_HH
