#include "engine/fault_replay.hh"

#include <cstdio>

#include "area/area_model.hh"
#include "common/logging.hh"
#include "core/perf_model.hh"
#include "econ/optimizer.hh"
#include "engine/allocation_engine.hh"
#include "engine/event.hh"

namespace sharch {

FaultReplayResult
replayFaults(const fault::FaultSpec &spec, int width, int height,
             unsigned vcore_slices, unsigned vcore_banks)
{
    SHARCH_ASSERT(spec.ok(), "replayFaults needs a valid spec");

    FaultReplayResult result;
    result.vcoreSlices = vcore_slices;
    result.vcoreBanks = vcore_banks;
    result.fabricWidth = width;
    result.fabricHeight = height;

    // The replay tenants are fabric-only (zero budget), so the
    // optimizer is never consulted; it exists because the engine's
    // auction path needs one in general.
    PerfModel pm(2000, 1);
    AreaModel am;
    UtilityOptimizer opt(pm, am);
    engine::EngineConfig cfg;
    cfg.fabricWidth = width;
    cfg.fabricHeight = height;
    engine::AllocationEngine eng(opt, cfg);

    // Populate the chip with identical tenants until allocation
    // fails, so the schedule always hits live state.  Admissions are
    // TenantArrive events: the same dispatch path a journaled or
    // served run takes.
    for (;;) {
        const engine::EventOutcome out = eng.execute(
            engine::tenantArrive(0,
                                 "vcore" + std::to_string(
                                               result.tenants),
                                 "", UtilityKind::Throughput, 0.0,
                                 vcore_slices, vcore_banks));
        if (!out.applied)
            break;
        ++result.tenants;
    }

    fault::FaultModel model(spec, width, height);
    for (const fault::FaultEvent &ev : model.schedule()) {
        const engine::EventOutcome out = eng.execute(
            ev.heal ? engine::healFault(ev.at, ev.kind, ev.tile)
                    : engine::faultStrike(ev.at, ev.kind, ev.tile));
        for (const DegradeAction &a : out.actions) {
            result.replaced += a.kind == DegradeKind::Replaced;
            result.shrunk += a.kind == DegradeKind::Shrunk;
            result.evicted += a.kind == DegradeKind::Evicted;
            result.slicesLost += a.slicesLost;
            result.banksLost += a.banksLost;
            result.reconfigCycles += a.cost;
        }
        result.events.emplace_back(ev, out.actions);
    }

    const FabricManager &fm = eng.fabric();
    result.faultySlices = fm.faultySlices();
    result.totalSlices = fm.totalSlices();
    result.faultyBanks = fm.faultyBanks();
    result.liveVCores = fm.allocations().size();
    result.sliceUtilization = fm.sliceUtilization();
    result.fragmentation = fm.fragmentation();
    return result;
}

std::string
faultEventsJson(const FaultReplayResult &result)
{
    std::string events = "[";
    bool first = true;
    char buf[160];
    for (const auto &[ev, actions] : result.events) {
        std::snprintf(buf, sizeof(buf),
                      "%s{\"at\":%llu,\"kind\":\"%s\",\"tile\":"
                      "[%d,%d],\"heal\":%s,\"actions\":[",
                      first ? "" : ",",
                      static_cast<unsigned long long>(ev.at),
                      fault::faultKindName(ev.kind), ev.tile.y,
                      ev.tile.x, ev.heal ? "true" : "false");
        events += buf;
        for (std::size_t i = 0; i < actions.size(); ++i) {
            const DegradeAction &a = actions[i];
            std::snprintf(
                buf, sizeof(buf),
                "%s{\"vcore\":%llu,\"outcome\":\"%s\","
                "\"slices_lost\":%u,\"banks_lost\":%u,"
                "\"cost\":%llu}",
                i ? "," : "",
                static_cast<unsigned long long>(a.id),
                degradeKindName(a.kind), a.slicesLost, a.banksLost,
                static_cast<unsigned long long>(a.cost));
            events += buf;
        }
        events += "]}";
        first = false;
    }
    events += "]";
    return events;
}

study::Report
faultReplayReport(const FaultReplayResult &result)
{
    study::Report report;
    report.id = "ssim_fault_replay";
    report.title = "ssim fault replay";
    report.addMeta("fabric_width", result.fabricWidth);
    report.addMeta("fabric_height", result.fabricHeight);
    report.addMeta("tenants", result.tenants);
    report.addMeta("vcore_slices", result.vcoreSlices);
    report.addMeta("vcore_banks", result.vcoreBanks);
    study::Table &t =
        report.addTable("summary", "Degradation outcome totals");
    t.col("replaced", study::Value::Kind::Integer)
        .col("shrunk", study::Value::Kind::Integer)
        .col("evicted", study::Value::Kind::Integer)
        .col("slices_lost", study::Value::Kind::Integer)
        .col("banks_lost", study::Value::Kind::Integer)
        .col("reconfig_cycles", study::Value::Kind::Integer)
        .col("faulty_slices", study::Value::Kind::Integer)
        .col("faulty_banks", study::Value::Kind::Integer)
        .col("live_vcores", study::Value::Kind::Integer)
        .col("slice_utilization", study::Value::Kind::Real, 3)
        .col("fragmentation", study::Value::Kind::Real, 3);
    t.addRow({result.replaced, result.shrunk, result.evicted,
              result.slicesLost, result.banksLost,
              static_cast<unsigned long long>(result.reconfigCycles),
              result.faultySlices, result.faultyBanks,
              result.liveVCores, result.sliceUtilization,
              result.fragmentation});
    report.attachJson("events", faultEventsJson(result));
    return report;
}

} // namespace sharch
