#include "engine/allocation_engine.hh"

#include <algorithm>
#include <utility>

#include "engine/state_json.hh"
#include "trace/profile.hh"

namespace sharch::engine {

AllocationEngine::AllocationEngine(UtilityOptimizer &opt,
                                   const EngineConfig &cfg)
    : EngineBase(cfg.maxPending), opt_(&opt), cfg_(cfg),
      fabric_(cfg.fabricWidth, cfg.fabricHeight),
      market_(opt, fabric_.totalSlices(), fabric_.totalBanks())
{
}

void
AllocationEngine::postFaultSchedule(
    const std::vector<fault::FaultEvent> &fs)
{
    for (const fault::FaultEvent &f : fs) {
        post(f.heal ? healFault(f.at, f.kind, f.tile)
                    : faultStrike(f.at, f.kind, f.tile));
    }
}

void
AllocationEngine::dispatchEvent(const Event &e)
{
    switch (e.kind) {
      case EventKind::TenantArrive: handleArrive(e); break;
      case EventKind::TenantDepart: handleDepart(e); break;
      case EventKind::Reshape: handleReshape(e); break;
      case EventKind::FaultStrike: handleFault(e); break;
      case EventKind::Heal: handleHeal(e); break;
      case EventKind::AuctionEpoch: handleEpoch(); break;
      case EventKind::Checkpoint:
        break; // EngineBase consumes Checkpoints before this point
      case EventKind::FleetArrive:
      case EventKind::FleetDepart:
      case EventKind::EpochAuction:
        lastOutcome_.detail =
            std::string(eventKindName(e.kind)) +
            " is a fleet event; this is a single-chip engine";
        break;
    }
}

void
AllocationEngine::handleArrive(const Event &e)
{
    stats_.arrivals++;
    if (e.budget <= 0.0 && e.slices == 0) {
        lastOutcome_.detail = "tenant '" + e.tenant +
                              "' has neither budget nor slices";
        return;
    }

    CustomerId cid = 0;
    bool hasCustomer = false;
    if (e.budget > 0.0) {
        // The optimizer resolves utility from the builtin profile
        // table; an unknown name would abort mid-auction, so reject
        // the bidder at the door instead.
        if (!hasProfile(e.benchmark)) {
            stats_.rejected++;
            lastOutcome_.detail =
                "unknown benchmark '" + e.benchmark +
                "' (see ssim --list for valid profiles)";
            return;
        }
        SpotCustomer c;
        c.name = e.tenant;
        c.benchmark = e.benchmark;
        c.utility = e.utility;
        c.budget = e.budget;
        cid = market_.addCustomer(std::move(c));
        hasCustomer = true;
    }

    if (e.slices == 0) {
        // Market-only tenant: bids in auctions, claims no fabric.
        lastOutcome_.applied = true;
        lastOutcome_.detail = "market-only";
        return;
    }

    std::optional<AllocationId> id =
        fabric_.allocate(e.slices, e.banks);
    if (!id) {
        stats_.rejected++;
        // An unplaceable tenant does not linger in the auction.
        if (hasCustomer)
            market_.deactivateCustomer(cid);
        lastOutcome_.detail =
            "no room for " + std::to_string(e.slices) +
            " Slices + " + std::to_string(e.banks) + " banks";
        return;
    }

    const FabricAllocation *fa = fabric_.find(*id);
    Lease lease;
    lease.id = *id;
    lease.tenant = e.tenant;
    lease.customer = cid;
    lease.hasCustomer = hasCustomer;
    lease.slices = fa->slices.count;
    lease.banks = static_cast<unsigned>(fa->banks.size());
    lease.arrivedAt = now();
    leases_.emplace(*id, std::move(lease));
    stats_.admitted++;
    lastOutcome_.applied = true;
    lastOutcome_.lease = *id;
}

void
AllocationEngine::handleDepart(const Event &e)
{
    // Lowest-id lease first: deterministic when a tenant name is
    // (unusually) reused.
    for (auto it = leases_.begin(); it != leases_.end(); ++it) {
        if (it->second.tenant != e.tenant)
            continue;
        fabric_.release(it->first);
        if (it->second.hasCustomer)
            market_.deactivateCustomer(it->second.customer);
        lastOutcome_.applied = true;
        lastOutcome_.lease = it->first;
        leases_.erase(it);
        stats_.departures++;
        return;
    }
    // Market-only tenants have no lease; retire the bidder directly.
    const std::vector<SpotCustomer> &book = market_.customers();
    for (std::size_t i = 0; i < book.size(); ++i) {
        if (!book[i].active || book[i].name != e.tenant)
            continue;
        market_.deactivateCustomer(static_cast<CustomerId>(i));
        lastOutcome_.applied = true;
        stats_.departures++;
        return;
    }
    stats_.unmatchedDeparts++;
    lastOutcome_.detail =
        "no live lease or active customer named '" + e.tenant + "'";
}

void
AllocationEngine::handleFault(const Event &e)
{
    if (fabric_.isFaulty(e.fault, e.tile)) {
        lastOutcome_.detail = "tile already faulty";
        return;
    }
    std::vector<DegradeAction> acts =
        fabric_.markFaulty(e.fault, e.tile);
    stats_.faults++;
    lastOutcome_.applied = true;
    lastOutcome_.actions = acts;
    degradeBookkeeping(acts);

    double slicesLost = e.fault == fault::FaultKind::Slice ? 1.0 : 0.0;
    double banksLost = e.fault == fault::FaultKind::Bank ? 1.0 : 0.0;
    if (slicesLost == 0.0 && banksLost == 0.0)
        return; // link faults break contiguity, not capacity
    if (market_.sliceCapacity() - slicesLost <= 0.0 ||
        market_.bankCapacity() - banksLost <= 0.0) {
        // A market needs something to sell; leave prices be.
        return;
    }
    if (cfg_.reauctionOnFault) {
        ReauctionResult r = market_.reauctionAfterFailure(
            slicesLost, banksLost, cfg_.tolerance, cfg_.maxRounds,
            cfg_.adjustRate);
        stats_.refundsPaid += r.refundTotal;
        stats_.auctionRounds += r.rounds.size();
    } else {
        market_.reduceCapacity(slicesLost, banksLost);
    }
}

void
AllocationEngine::handleHeal(const Event &e)
{
    if (!fabric_.heal(e.fault, e.tile)) {
        lastOutcome_.detail = "tile was not faulty";
        return;
    }
    stats_.heals++;
    lastOutcome_.applied = true;
    if (e.fault == fault::FaultKind::Slice)
        market_.restoreCapacity(1.0, 0.0);
    else if (e.fault == fault::FaultKind::Bank)
        market_.restoreCapacity(0.0, 1.0);
}

void
AllocationEngine::handleEpoch()
{
    std::vector<SpotRound> rounds = market_.runToClearing(
        cfg_.tolerance, cfg_.maxRounds, cfg_.adjustRate);
    stats_.epochs++;
    stats_.auctionRounds += rounds.size();
    lastOutcome_.applied = true;
}

void
AllocationEngine::degradeBookkeeping(
    const std::vector<DegradeAction> &acts)
{
    for (const DegradeAction &act : acts) {
        stats_.reconfigCycles += act.cost;
        auto it = leases_.find(act.id);
        if (it == leases_.end())
            continue; // engine-external allocation (none in practice)
        if (act.kind == DegradeKind::Evicted) {
            if (it->second.hasCustomer)
                market_.deactivateCustomer(it->second.customer);
            leases_.erase(it);
            stats_.evictions++;
            continue;
        }
        const FabricAllocation *fa = fabric_.find(act.id);
        if (fa) {
            it->second.slices = fa->slices.count;
            it->second.banks =
                static_cast<unsigned>(fa->banks.size());
        }
    }
}

void
AllocationEngine::handleReshape(const Event &e)
{
    auto it = leases_.find(e.lease);
    if (it == leases_.end()) {
        lastOutcome_.detail =
            "no lease with id " + std::to_string(e.lease);
        return;
    }
    lastOutcome_.lease = e.lease;
    std::optional<Cycles> cost =
        fabric_.reshape(e.lease, e.slices, e.banks);
    if (!cost) {
        lastOutcome_.detail = "fabric cannot satisfy the new shape";
        return;
    }
    const FabricAllocation *fa = fabric_.find(e.lease);
    it->second.slices = fa->slices.count;
    it->second.banks = static_cast<unsigned>(fa->banks.size());
    stats_.reconfigCycles += *cost;
    lastOutcome_.applied = true;
    lastOutcome_.cost = *cost;
}

std::string
AllocationEngine::saveState() const
{
    json::Value root = json::Value::object();
    root.add("schema", json::Value::string(kStateSchema));
    root.add("clock", json::Value::number(std::uint64_t{now()}));
    root.add("next_seq", json::Value::number(nextSeq()));
    root.add("stats", statsToJson());
    root.add("fabric", fabricToJson(fabric_.snapshot()));
    root.add("market", marketStateToJson(market_.snapshot()));

    json::Value &leases = root.add("leases", json::Value::array());
    for (const auto &[id, lease] : leases_) {
        json::Value &v = leases.push(json::Value::object());
        v.add("id", json::Value::number(id));
        v.add("tenant", json::Value::string(lease.tenant));
        v.add("customer",
              lease.hasCustomer
                  ? json::Value::number(
                        std::uint64_t{lease.customer})
                  : json::Value::null());
        v.add("slices", json::Value::number(lease.slices));
        v.add("banks", json::Value::number(lease.banks));
        v.add("arrived_at",
              json::Value::number(std::uint64_t{lease.arrivedAt}));
    }

    root.add("queue", queueToJson());
    return root.dump();
}

namespace {

bool
fail(std::string *error, const std::string &what)
{
    if (error)
        *error = what;
    return false;
}

bool
stateU64(const json::Value &v, const char *key, std::uint64_t *out,
         std::string *error)
{
    const json::Value *f = v.get(key);
    if (!f || !f->asU64(out))
        return fail(error, std::string(key) +
                               " missing or not an unsigned integer");
    return true;
}

} // namespace

bool
AllocationEngine::restoreState(const std::string &text,
                               std::string *error)
{
    json::Value root;
    std::string perr;
    if (!json::parse(text, &root, &perr))
        return fail(error, "state document is not valid JSON (" +
                               perr + ")");
    if (!root.isObject())
        return fail(error, "state document must be a JSON object");
    const json::Value *schema = root.get("schema");
    if (!schema || !schema->isString())
        return fail(error, "schema tag missing: expected \"" +
                               std::string(kStateSchema) + "\"");
    if (schema->text != kStateSchema)
        return fail(error, "unsupported schema '" + schema->text +
                               "' (this build reads " +
                               std::string(kStateSchema) + ")");
    // Fleet documents share the schema tag but carry a kind marker;
    // loading one into a single-chip engine must fail loudly, not
    // half-parse.
    if (const json::Value *kind = root.get("kind")) {
        if (!kind->isString() || kind->text != "chip")
            return fail(error,
                        "state document is not a single-chip "
                        "engine state (kind marker present)");
    }

    std::uint64_t clock = 0, nextSeq = 0;
    if (!stateU64(root, "clock", &clock, error) ||
        !stateU64(root, "next_seq", &nextSeq, error)) {
        return false;
    }

    EngineStats st;
    if (!statsFromJson(root, &st, error))
        return false;

    // --- Fabric --------------------------------------------------
    const json::Value *fab = root.get("fabric");
    if (!fab || !fab->isObject())
        return fail(error, "fabric missing or not an object");
    FabricSnapshot fs;
    if (!fabricFromJson(*fab, "fabric", &fs, error))
        return false;

    // Side-build: validate every claim without touching fabric_.
    FabricManager fabric = fabric_;
    std::string ferr;
    if (!fabric.restore(fs, &ferr))
        return fail(error, "fabric: " + ferr);

    // --- Market --------------------------------------------------
    const json::Value *mkt = root.get("market");
    if (!mkt || !mkt->isObject())
        return fail(error, "market missing or not an object");
    SpotMarketSnapshot ms;
    if (!marketStateFromJson(*mkt, "market", &ms, error))
        return false;

    // --- Leases --------------------------------------------------
    const json::Value *leases = root.get("leases");
    if (!leases || !leases->isArray())
        return fail(error, "leases missing or not an array");
    std::map<std::uint64_t, Lease> book2;
    for (std::size_t i = 0; i < leases->items.size(); ++i) {
        const json::Value &l = leases->items[i];
        const std::string where =
            "leases[" + std::to_string(i) + "]: ";
        if (!l.isObject())
            return fail(error, where + "not an object");
        Lease lease;
        std::uint64_t slices = 0, banks = 0;
        std::string sub;
        if (!stateU64(l, "id", &lease.id, &sub) ||
            !stateU64(l, "slices", &slices, &sub) ||
            !stateU64(l, "banks", &banks, &sub) ||
            !stateU64(l, "arrived_at", &lease.arrivedAt, &sub)) {
            return fail(error, where + sub);
        }
        const json::Value *tenant = l.get("tenant");
        if (!tenant || !tenant->isString())
            return fail(error, where + "tenant missing");
        lease.tenant = tenant->text;
        lease.slices = static_cast<unsigned>(slices);
        lease.banks = static_cast<unsigned>(banks);
        const json::Value *customer = l.get("customer");
        if (!customer)
            return fail(error, where + "customer missing (use "
                                       "null for fabric-only)");
        if (!customer->isNull()) {
            std::uint64_t cid = 0;
            if (!customer->asU64(&cid))
                return fail(error,
                            where + "customer is not an id");
            if (cid >= ms.customers.size())
                return fail(error,
                            where + "customer " +
                                std::to_string(cid) +
                                " not in the market book (" +
                                std::to_string(ms.customers.size()) +
                                " customers)");
            lease.customer = static_cast<CustomerId>(cid);
            lease.hasCustomer = true;
        }
        if (!fabric.find(lease.id))
            return fail(error,
                        where + "no fabric allocation with id " +
                            std::to_string(lease.id));
        if (book2.count(lease.id))
            return fail(error, where + "duplicate lease id " +
                                   std::to_string(lease.id));
        book2.emplace(lease.id, std::move(lease));
    }

    // --- Queue ---------------------------------------------------
    std::vector<Queued> pending;
    if (!queueFromJson(root.get("queue"), nextSeq, &pending, error))
        return false;

    // Everything validated: commit atomically.
    fabric_ = std::move(fabric);
    SpotMarketSnapshot msCopy = std::move(ms);
    market_.restore(msCopy);
    leases_ = std::move(book2);
    adoptRestoredSpine(std::move(pending), clock, nextSeq, st);
    return true;
}

bool
AllocationEngine::checkInvariants(std::string *error) const
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = what;
        return false;
    };

    // The layers audit themselves first.
    if (!fabric_.checkConsistency(error))
        return false;
    if (!market_.checkConsistency(error))
        return false;

    // Leases <-> fabric allocations must be a bijection with
    // matching shapes, and every customer handle must resolve.
    const std::vector<FabricAllocation> allocs =
        fabric_.allocations();
    if (allocs.size() != leases_.size())
        return fail("lease book has " +
                    std::to_string(leases_.size()) +
                    " entries but the fabric has " +
                    std::to_string(allocs.size()) + " allocations");
    std::uint64_t leasedSlices = 0, leasedBanks = 0;
    for (const FabricAllocation &fa : allocs) {
        auto it = leases_.find(fa.id);
        if (it == leases_.end())
            return fail("fabric allocation " +
                        std::to_string(fa.id) + " has no lease");
        const Lease &lease = it->second;
        if (lease.slices != fa.slices.count ||
            lease.banks != static_cast<unsigned>(fa.banks.size())) {
            return fail(
                "lease " + std::to_string(fa.id) + " ('" +
                lease.tenant + "') claims " +
                std::to_string(lease.slices) + " Slices + " +
                std::to_string(lease.banks) +
                " banks but the fabric allocation holds " +
                std::to_string(fa.slices.count) + " + " +
                std::to_string(fa.banks.size()));
        }
        leasedSlices += fa.slices.count;
        leasedBanks += fa.banks.size();
        if (lease.hasCustomer) {
            if (lease.customer >= market_.customers().size())
                return fail("lease " + std::to_string(fa.id) +
                            " points at customer " +
                            std::to_string(lease.customer) +
                            " but the book has only " +
                            std::to_string(
                                market_.customers().size()) +
                            " entries");
            if (!market_.customer(lease.customer).active)
                return fail("lease " + std::to_string(fa.id) +
                            " ('" + lease.tenant +
                            "') references departed customer " +
                            std::to_string(lease.customer));
        }
        if (lease.arrivedAt > now())
            return fail("lease " + std::to_string(fa.id) +
                        " arrived at cycle " +
                        std::to_string(lease.arrivedAt) +
                        ", after the clock (" +
                        std::to_string(now()) + ")");
    }

    // The occupancy arithmetic must close exactly.
    if (leasedSlices + fabric_.freeSlices() +
            fabric_.faultySlices() != fabric_.totalSlices()) {
        return fail("Slice occupancy does not close: " +
                    std::to_string(leasedSlices) + " leased + " +
                    std::to_string(fabric_.freeSlices()) +
                    " free + " +
                    std::to_string(fabric_.faultySlices()) +
                    " faulty != " +
                    std::to_string(fabric_.totalSlices()));
    }
    if (leasedBanks + fabric_.freeBanks() + fabric_.faultyBanks() !=
        fabric_.totalBanks()) {
        return fail("bank occupancy does not close: " +
                    std::to_string(leasedBanks) + " leased + " +
                    std::to_string(fabric_.freeBanks()) +
                    " free + " +
                    std::to_string(fabric_.faultyBanks()) +
                    " faulty != " +
                    std::to_string(fabric_.totalBanks()));
    }

    // The market cannot sell more than the chip has.
    if (market_.sliceCapacity() >
            static_cast<double>(fabric_.totalSlices()) ||
        market_.bankCapacity() >
            static_cast<double>(fabric_.totalBanks())) {
        return fail("market capacity exceeds the fabric's totals");
    }

    // Counter sanity: live leases all came through admission.
    if (leases_.size() > stats_.admitted)
        return fail(std::to_string(leases_.size()) +
                    " live leases but only " +
                    std::to_string(stats_.admitted) +
                    " admissions recorded");
    return true;
}

void
AllocationEngine::addPriceReply(json::Value *reply) const
{
    const Market &m = market_.prices();
    reply->add("slice_price", json::Value::number(m.slicePrice));
    reply->add("bank_price", json::Value::number(m.bankPrice));
    reply->add("round",
               json::Value::number(unsigned{market_.round()}));
}

void
AllocationEngine::addStatsReply(json::Value *reply) const
{
    const EngineStats &s = stats();
    reply->add("leases",
               json::Value::number(std::uint64_t{leases_.size()}));
    reply->add("active_customers",
               json::Value::number(
                   unsigned{market_.activeCustomers()}));
    reply->add("processed", json::Value::number(s.processed));
    reply->add("arrivals", json::Value::number(s.arrivals));
    reply->add("admitted", json::Value::number(s.admitted));
    reply->add("rejected", json::Value::number(s.rejected));
    reply->add("departures", json::Value::number(s.departures));
    reply->add("faults", json::Value::number(s.faults));
    reply->add("heals", json::Value::number(s.heals));
    reply->add("evictions", json::Value::number(s.evictions));
    reply->add("epochs", json::Value::number(s.epochs));
    reply->add("checkpoints", json::Value::number(s.checkpoints));
    reply->add("free_slices",
               json::Value::number(
                   unsigned{fabric_.freeSlices()}));
    reply->add("free_banks",
               json::Value::number(
                   unsigned{fabric_.freeBanks()}));
}

study::Report
AllocationEngine::finalReport() const
{
    study::Report r;
    r.id = "engine";
    r.title = "Allocation engine final state";
    r.addMeta("schema", kStateSchema);
    r.addMeta("fabric", std::to_string(fabric_.width()) + "x" +
                            std::to_string(fabric_.height()));
    r.addMeta("clock",
              study::Value(static_cast<unsigned long long>(now())));

    study::Table &counters =
        r.addTable("engine_counters", "Event counters");
    counters.col("counter", study::Value::Kind::Text)
        .col("value", study::Value::Kind::Integer);
    auto count = [&](const char *name, std::uint64_t v) {
        counters.addRow(
            {name, study::Value(static_cast<unsigned long long>(v))});
    };
    count("processed", stats_.processed);
    count("arrivals", stats_.arrivals);
    count("admitted", stats_.admitted);
    count("rejected", stats_.rejected);
    count("departures", stats_.departures);
    count("unmatched_departs", stats_.unmatchedDeparts);
    count("faults", stats_.faults);
    count("heals", stats_.heals);
    count("evictions", stats_.evictions);
    count("epochs", stats_.epochs);
    count("auction_rounds", stats_.auctionRounds);
    count("checkpoints", stats_.checkpoints);
    count("reconfig_cycles", stats_.reconfigCycles);

    study::Table &mkt =
        r.addTable("engine_market", "Spot market state");
    mkt.col("metric", study::Value::Kind::Text)
        .col("value", study::Value::Kind::Real, 4);
    mkt.addRow({"slice_price", market_.prices().slicePrice});
    mkt.addRow({"bank_price", market_.prices().bankPrice});
    mkt.addRow({"slice_capacity", market_.sliceCapacity()});
    mkt.addRow({"bank_capacity", market_.bankCapacity()});
    mkt.addRow({"active_customers",
                static_cast<double>(market_.activeCustomers())});
    mkt.addRow({"refunds_paid", stats_.refundsPaid});

    study::Table &fab =
        r.addTable("engine_fabric", "Fabric occupancy");
    fab.col("metric", study::Value::Kind::Text)
        .col("value", study::Value::Kind::Real, 4);
    fab.addRow({"slice_utilization", fabric_.sliceUtilization()});
    fab.addRow({"bank_utilization", fabric_.bankUtilization()});
    fab.addRow({"fragmentation", fabric_.fragmentation()});
    fab.addRow({"free_slices",
                static_cast<double>(fabric_.freeSlices())});
    fab.addRow({"free_banks",
                static_cast<double>(fabric_.freeBanks())});
    fab.addRow({"faulty_slices",
                static_cast<double>(fabric_.faultySlices())});
    fab.addRow({"faulty_banks",
                static_cast<double>(fabric_.faultyBanks())});

    study::Table &leases =
        r.addTable("engine_leases", "Live leases");
    leases.col("id", study::Value::Kind::Integer)
        .col("tenant", study::Value::Kind::Text)
        .col("slices", study::Value::Kind::Integer)
        .col("banks", study::Value::Kind::Integer)
        .col("arrived_at", study::Value::Kind::Integer);
    for (const auto &[id, lease] : leases_) {
        leases.addRow(
            {study::Value(static_cast<unsigned long long>(id)),
             lease.tenant, lease.slices, lease.banks,
             study::Value(static_cast<unsigned long long>(
                 lease.arrivedAt))});
    }
    return r;
}

} // namespace sharch::engine
