#include "engine/allocation_engine.hh"

#include <algorithm>
#include <utility>

#include "trace/profile.hh"

namespace sharch::engine {

AllocationEngine::AllocationEngine(UtilityOptimizer &opt,
                                   const EngineConfig &cfg)
    : opt_(&opt), cfg_(cfg),
      fabric_(cfg.fabricWidth, cfg.fabricHeight),
      market_(opt, fabric_.totalSlices(), fabric_.totalBanks())
{
}

bool
AllocationEngine::laterThan(const Queued &a, const Queued &b)
{
    if (a.event.at != b.event.at)
        return a.event.at > b.event.at;
    return a.seq > b.seq;
}

std::uint64_t
AllocationEngine::post(Event e)
{
    Queued q;
    q.event = std::move(e);
    q.seq = nextSeq_++;
    queue_.push_back(std::move(q));
    std::push_heap(queue_.begin(), queue_.end(), laterThan);
    return queue_.back().seq;
}

void
AllocationEngine::postFaultSchedule(
    const std::vector<fault::FaultEvent> &fs)
{
    for (const fault::FaultEvent &f : fs) {
        post(f.heal ? healFault(f.at, f.kind, f.tile)
                    : faultStrike(f.at, f.kind, f.tile));
    }
}

void
AllocationEngine::runUntil(Cycles cycle)
{
    while (!queue_.empty() && queue_.front().event.at <= cycle) {
        std::pop_heap(queue_.begin(), queue_.end(), laterThan);
        Queued q = std::move(queue_.back());
        queue_.pop_back();
        dispatch(q.event, q.seq);
    }
}

void
AllocationEngine::run()
{
    while (!queue_.empty()) {
        std::pop_heap(queue_.begin(), queue_.end(), laterThan);
        Queued q = std::move(queue_.back());
        queue_.pop_back();
        dispatch(q.event, q.seq);
    }
}

EventOutcome
AllocationEngine::execute(Event e)
{
    // A request cannot rewrite history: it fires now at the earliest.
    if (e.at < clock_)
        e.at = clock_;
    Cycles upTo = e.at;
    post(std::move(e));
    runUntil(upTo);
    return lastOutcome_;
}

void
AllocationEngine::dispatch(const Event &e, std::uint64_t seq)
{
    // Write-ahead: the journal hook makes the record durable before
    // any state changes, so a crash mid-apply replays the event.
    if (dispatchHook_ && !replaying_)
        dispatchHook_(e, seq);
    if (e.at > clock_)
        clock_ = e.at;
    stats_.processed++;
    lastOutcome_ = EventOutcome{};
    lastOutcome_.kind = e.kind;
    switch (e.kind) {
      case EventKind::TenantArrive: handleArrive(e); break;
      case EventKind::TenantDepart: handleDepart(e); break;
      case EventKind::Reshape: handleReshape(e); break;
      case EventKind::FaultStrike: handleFault(e); break;
      case EventKind::Heal: handleHeal(e); break;
      case EventKind::AuctionEpoch: handleEpoch(); break;
      case EventKind::Checkpoint: handleCheckpoint(e); break;
    }
}

void
AllocationEngine::replayDispatch(const Event &e, std::uint64_t seq)
{
    // The snapshot's queue may hold the same posting: drop it so the
    // event fires exactly once.
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->seq == seq) {
            queue_.erase(it);
            std::make_heap(queue_.begin(), queue_.end(), laterThan);
            break;
        }
    }
    if (seq >= nextSeq_)
        nextSeq_ = seq + 1;
    replaying_ = true;
    dispatch(e, seq);
    replaying_ = false;
}

void
AllocationEngine::handleArrive(const Event &e)
{
    stats_.arrivals++;
    if (e.budget <= 0.0 && e.slices == 0) {
        lastOutcome_.detail = "tenant '" + e.tenant +
                              "' has neither budget nor slices";
        return;
    }

    CustomerId cid = 0;
    bool hasCustomer = false;
    if (e.budget > 0.0) {
        // The optimizer resolves utility from the builtin profile
        // table; an unknown name would abort mid-auction, so reject
        // the bidder at the door instead.
        if (!hasProfile(e.benchmark)) {
            stats_.rejected++;
            lastOutcome_.detail =
                "unknown benchmark '" + e.benchmark +
                "' (see ssim --list for valid profiles)";
            return;
        }
        SpotCustomer c;
        c.name = e.tenant;
        c.benchmark = e.benchmark;
        c.utility = e.utility;
        c.budget = e.budget;
        cid = market_.addCustomer(std::move(c));
        hasCustomer = true;
    }

    if (e.slices == 0) {
        // Market-only tenant: bids in auctions, claims no fabric.
        lastOutcome_.applied = true;
        lastOutcome_.detail = "market-only";
        return;
    }

    std::optional<AllocationId> id =
        fabric_.allocate(e.slices, e.banks);
    if (!id) {
        stats_.rejected++;
        // An unplaceable tenant does not linger in the auction.
        if (hasCustomer)
            market_.deactivateCustomer(cid);
        lastOutcome_.detail =
            "no room for " + std::to_string(e.slices) +
            " Slices + " + std::to_string(e.banks) + " banks";
        return;
    }

    const FabricAllocation *fa = fabric_.find(*id);
    Lease lease;
    lease.id = *id;
    lease.tenant = e.tenant;
    lease.customer = cid;
    lease.hasCustomer = hasCustomer;
    lease.slices = fa->slices.count;
    lease.banks = static_cast<unsigned>(fa->banks.size());
    lease.arrivedAt = clock_;
    leases_.emplace(*id, std::move(lease));
    stats_.admitted++;
    lastOutcome_.applied = true;
    lastOutcome_.lease = *id;
}

void
AllocationEngine::handleDepart(const Event &e)
{
    // Lowest-id lease first: deterministic when a tenant name is
    // (unusually) reused.
    for (auto it = leases_.begin(); it != leases_.end(); ++it) {
        if (it->second.tenant != e.tenant)
            continue;
        fabric_.release(it->first);
        if (it->second.hasCustomer)
            market_.deactivateCustomer(it->second.customer);
        lastOutcome_.applied = true;
        lastOutcome_.lease = it->first;
        leases_.erase(it);
        stats_.departures++;
        return;
    }
    // Market-only tenants have no lease; retire the bidder directly.
    const std::vector<SpotCustomer> &book = market_.customers();
    for (std::size_t i = 0; i < book.size(); ++i) {
        if (!book[i].active || book[i].name != e.tenant)
            continue;
        market_.deactivateCustomer(static_cast<CustomerId>(i));
        lastOutcome_.applied = true;
        stats_.departures++;
        return;
    }
    stats_.unmatchedDeparts++;
    lastOutcome_.detail =
        "no live lease or active customer named '" + e.tenant + "'";
}

void
AllocationEngine::handleFault(const Event &e)
{
    if (fabric_.isFaulty(e.fault, e.tile)) {
        lastOutcome_.detail = "tile already faulty";
        return;
    }
    std::vector<DegradeAction> acts =
        fabric_.markFaulty(e.fault, e.tile);
    stats_.faults++;
    lastOutcome_.applied = true;
    degradeBookkeeping(acts);

    double slicesLost = e.fault == fault::FaultKind::Slice ? 1.0 : 0.0;
    double banksLost = e.fault == fault::FaultKind::Bank ? 1.0 : 0.0;
    if (slicesLost == 0.0 && banksLost == 0.0)
        return; // link faults break contiguity, not capacity
    if (market_.sliceCapacity() - slicesLost <= 0.0 ||
        market_.bankCapacity() - banksLost <= 0.0) {
        // A market needs something to sell; leave prices be.
        return;
    }
    if (cfg_.reauctionOnFault) {
        ReauctionResult r = market_.reauctionAfterFailure(
            slicesLost, banksLost, cfg_.tolerance, cfg_.maxRounds,
            cfg_.adjustRate);
        stats_.refundsPaid += r.refundTotal;
        stats_.auctionRounds += r.rounds.size();
    } else {
        market_.reduceCapacity(slicesLost, banksLost);
    }
}

void
AllocationEngine::handleHeal(const Event &e)
{
    if (!fabric_.heal(e.fault, e.tile)) {
        lastOutcome_.detail = "tile was not faulty";
        return;
    }
    stats_.heals++;
    lastOutcome_.applied = true;
    if (e.fault == fault::FaultKind::Slice)
        market_.restoreCapacity(1.0, 0.0);
    else if (e.fault == fault::FaultKind::Bank)
        market_.restoreCapacity(0.0, 1.0);
}

void
AllocationEngine::handleEpoch()
{
    std::vector<SpotRound> rounds = market_.runToClearing(
        cfg_.tolerance, cfg_.maxRounds, cfg_.adjustRate);
    stats_.epochs++;
    stats_.auctionRounds += rounds.size();
    lastOutcome_.applied = true;
}

void
AllocationEngine::handleCheckpoint(const Event &e)
{
    stats_.checkpoints++;
    lastOutcome_.applied = true;
    // Capture *after* consuming the event, so restoring this state
    // resumes with exactly the remaining stream.
    lastCheckpointLabel_ = e.label;
    lastCheckpoint_ = saveState();
    if (checkpointHook_)
        checkpointHook_(lastCheckpointLabel_, lastCheckpoint_);
}

void
AllocationEngine::degradeBookkeeping(
    const std::vector<DegradeAction> &acts)
{
    for (const DegradeAction &act : acts) {
        stats_.reconfigCycles += act.cost;
        auto it = leases_.find(act.id);
        if (it == leases_.end())
            continue; // engine-external allocation (none in practice)
        if (act.kind == DegradeKind::Evicted) {
            if (it->second.hasCustomer)
                market_.deactivateCustomer(it->second.customer);
            leases_.erase(it);
            stats_.evictions++;
            continue;
        }
        const FabricAllocation *fa = fabric_.find(act.id);
        if (fa) {
            it->second.slices = fa->slices.count;
            it->second.banks =
                static_cast<unsigned>(fa->banks.size());
        }
    }
}

void
AllocationEngine::handleReshape(const Event &e)
{
    auto it = leases_.find(e.lease);
    if (it == leases_.end()) {
        lastOutcome_.detail =
            "no lease with id " + std::to_string(e.lease);
        return;
    }
    lastOutcome_.lease = e.lease;
    std::optional<Cycles> cost =
        fabric_.reshape(e.lease, e.slices, e.banks);
    if (!cost) {
        lastOutcome_.detail = "fabric cannot satisfy the new shape";
        return;
    }
    const FabricAllocation *fa = fabric_.find(e.lease);
    it->second.slices = fa->slices.count;
    it->second.banks = static_cast<unsigned>(fa->banks.size());
    stats_.reconfigCycles += *cost;
    lastOutcome_.applied = true;
    lastOutcome_.cost = *cost;
}

std::optional<Cycles>
AllocationEngine::reshapeLease(std::uint64_t lease, unsigned slices,
                               unsigned banks)
{
    const EventOutcome out =
        execute(reshapeEvent(clock_, lease, slices, banks));
    if (!out.applied)
        return std::nullopt;
    return out.cost;
}

namespace {

json::Value
coordList(const std::vector<Coord> &coords)
{
    json::Value a = json::Value::array();
    for (const Coord &c : coords) {
        json::Value &pair = a.push(json::Value::array());
        pair.push(json::Value::number(std::int64_t{c.x}));
        pair.push(json::Value::number(std::int64_t{c.y}));
    }
    return a;
}

} // namespace

std::string
AllocationEngine::saveState() const
{
    json::Value root = json::Value::object();
    root.add("schema", json::Value::string(kStateSchema));
    root.add("clock", json::Value::number(std::uint64_t{clock_}));
    root.add("next_seq", json::Value::number(nextSeq_));

    json::Value &stats = root.add("stats", json::Value::object());
    stats.add("processed", json::Value::number(stats_.processed));
    stats.add("arrivals", json::Value::number(stats_.arrivals));
    stats.add("admitted", json::Value::number(stats_.admitted));
    stats.add("rejected", json::Value::number(stats_.rejected));
    stats.add("departures", json::Value::number(stats_.departures));
    stats.add("unmatched_departs",
              json::Value::number(stats_.unmatchedDeparts));
    stats.add("faults", json::Value::number(stats_.faults));
    stats.add("heals", json::Value::number(stats_.heals));
    stats.add("evictions", json::Value::number(stats_.evictions));
    stats.add("epochs", json::Value::number(stats_.epochs));
    stats.add("auction_rounds",
              json::Value::number(stats_.auctionRounds));
    stats.add("checkpoints", json::Value::number(stats_.checkpoints));
    stats.add("reconfig_cycles",
              json::Value::number(
                  std::uint64_t{stats_.reconfigCycles}));
    stats.add("refunds_paid",
              json::Value::number(stats_.refundsPaid));

    FabricSnapshot fs = fabric_.snapshot();
    json::Value &fab = root.add("fabric", json::Value::object());
    fab.add("width", json::Value::number(std::int64_t{fs.width}));
    fab.add("height", json::Value::number(std::int64_t{fs.height}));
    fab.add("next_id", json::Value::number(fs.next));
    json::Value &allocs =
        fab.add("allocations", json::Value::array());
    for (const FabricAllocation &fa : fs.allocations) {
        json::Value &a = allocs.push(json::Value::object());
        a.add("id", json::Value::number(fa.id));
        a.add("row", json::Value::number(std::int64_t{fa.slices.row}));
        a.add("col", json::Value::number(std::int64_t{fa.slices.col}));
        a.add("count", json::Value::number(fa.slices.count));
        a.add("banks", coordList(fa.banks));
    }
    fab.add("faulty_slices", coordList(fs.faultySliceTiles));
    fab.add("faulty_banks", coordList(fs.faultyBankTiles));
    fab.add("faulty_links", coordList(fs.faultyLinkTiles));

    SpotMarketSnapshot ms = market_.snapshot();
    json::Value &mkt = root.add("market", json::Value::object());
    mkt.add("slice_capacity",
            json::Value::number(ms.sliceCapacity));
    mkt.add("bank_capacity", json::Value::number(ms.bankCapacity));
    mkt.add("round", json::Value::number(ms.round));
    mkt.add("prices", marketToJson(ms.prices));
    json::Value &book = mkt.add("customers", json::Value::array());
    for (const SpotCustomer &c : ms.customers) {
        json::Value &v = book.push(json::Value::object());
        v.add("name", json::Value::string(c.name));
        v.add("benchmark", json::Value::string(c.benchmark));
        v.add("utility",
              json::Value::string(utilityName(c.utility)));
        v.add("budget", json::Value::number(c.budget));
        v.add("active", json::Value::boolean_(c.active));
    }

    json::Value &leases = root.add("leases", json::Value::array());
    for (const auto &[id, lease] : leases_) {
        json::Value &v = leases.push(json::Value::object());
        v.add("id", json::Value::number(id));
        v.add("tenant", json::Value::string(lease.tenant));
        v.add("customer",
              lease.hasCustomer
                  ? json::Value::number(
                        std::uint64_t{lease.customer})
                  : json::Value::null());
        v.add("slices", json::Value::number(lease.slices));
        v.add("banks", json::Value::number(lease.banks));
        v.add("arrived_at",
              json::Value::number(std::uint64_t{lease.arrivedAt}));
    }

    std::vector<Queued> pending = queue_;
    std::sort(pending.begin(), pending.end(),
              [](const Queued &a, const Queued &b) {
                  return laterThan(b, a);
              });
    json::Value &queue = root.add("queue", json::Value::array());
    for (const Queued &q : pending)
        queue.push(eventToJson(q.event, q.seq));

    return root.dump();
}

namespace {

bool
fail(std::string *error, const std::string &what)
{
    if (error)
        *error = what;
    return false;
}

bool
stateU64(const json::Value &v, const char *key, std::uint64_t *out,
         std::string *error)
{
    const json::Value *f = v.get(key);
    if (!f || !f->asU64(out))
        return fail(error, std::string(key) +
                               " missing or not an unsigned integer");
    return true;
}

bool
stateI64(const json::Value &v, const char *key, std::int64_t *out,
         std::string *error)
{
    const json::Value *f = v.get(key);
    if (!f || !f->asI64(out))
        return fail(error,
                    std::string(key) + " missing or not an integer");
    return true;
}

bool
stateDouble(const json::Value &v, const char *key, double *out,
            std::string *error)
{
    const json::Value *f = v.get(key);
    if (!f || !f->isNumber())
        return fail(error,
                    std::string(key) + " missing or not a number");
    *out = f->asDouble();
    return true;
}

bool
stateCoords(const json::Value &v, const char *key,
            std::vector<Coord> *out, std::string *error)
{
    const json::Value *f = v.get(key);
    if (!f || !f->isArray())
        return fail(error,
                    std::string(key) + " missing or not an array");
    out->clear();
    for (std::size_t i = 0; i < f->items.size(); ++i) {
        const json::Value &pair = f->items[i];
        std::int64_t x = 0, y = 0;
        if (!pair.isArray() || pair.items.size() != 2 ||
            !pair.items[0].asI64(&x) || !pair.items[1].asI64(&y)) {
            return fail(error, std::string(key) + "[" +
                                   std::to_string(i) +
                                   "] is not an [x,y] pair");
        }
        out->push_back(
            Coord{static_cast<int>(x), static_cast<int>(y)});
    }
    return true;
}

} // namespace

bool
AllocationEngine::restoreState(const std::string &text,
                               std::string *error)
{
    json::Value root;
    std::string perr;
    if (!json::parse(text, &root, &perr))
        return fail(error, "state document is not valid JSON (" +
                               perr + ")");
    if (!root.isObject())
        return fail(error, "state document must be a JSON object");
    const json::Value *schema = root.get("schema");
    if (!schema || !schema->isString())
        return fail(error, "schema tag missing: expected \"" +
                               std::string(kStateSchema) + "\"");
    if (schema->text != kStateSchema)
        return fail(error, "unsupported schema '" + schema->text +
                               "' (this build reads " +
                               std::string(kStateSchema) + ")");

    std::uint64_t clock = 0, nextSeq = 0;
    if (!stateU64(root, "clock", &clock, error) ||
        !stateU64(root, "next_seq", &nextSeq, error)) {
        return false;
    }

    const json::Value *stats = root.get("stats");
    if (!stats || !stats->isObject())
        return fail(error, "stats missing or not an object");
    EngineStats st;
    std::uint64_t reconfig = 0;
    if (!stateU64(*stats, "processed", &st.processed, error) ||
        !stateU64(*stats, "arrivals", &st.arrivals, error) ||
        !stateU64(*stats, "admitted", &st.admitted, error) ||
        !stateU64(*stats, "rejected", &st.rejected, error) ||
        !stateU64(*stats, "departures", &st.departures, error) ||
        !stateU64(*stats, "unmatched_departs", &st.unmatchedDeparts,
                  error) ||
        !stateU64(*stats, "faults", &st.faults, error) ||
        !stateU64(*stats, "heals", &st.heals, error) ||
        !stateU64(*stats, "evictions", &st.evictions, error) ||
        !stateU64(*stats, "epochs", &st.epochs, error) ||
        !stateU64(*stats, "auction_rounds", &st.auctionRounds,
                  error) ||
        !stateU64(*stats, "checkpoints", &st.checkpoints, error) ||
        !stateU64(*stats, "reconfig_cycles", &reconfig, error) ||
        !stateDouble(*stats, "refunds_paid", &st.refundsPaid,
                     error)) {
        if (error)
            *error = "stats." + *error;
        return false;
    }
    st.reconfigCycles = reconfig;

    // --- Fabric --------------------------------------------------
    const json::Value *fab = root.get("fabric");
    if (!fab || !fab->isObject())
        return fail(error, "fabric missing or not an object");
    FabricSnapshot fs;
    std::int64_t width = 0, height = 0;
    if (!stateI64(*fab, "width", &width, error) ||
        !stateI64(*fab, "height", &height, error) ||
        !stateU64(*fab, "next_id", &fs.next, error) ||
        !stateCoords(*fab, "faulty_slices", &fs.faultySliceTiles,
                     error) ||
        !stateCoords(*fab, "faulty_banks", &fs.faultyBankTiles,
                     error) ||
        !stateCoords(*fab, "faulty_links", &fs.faultyLinkTiles,
                     error)) {
        if (error)
            *error = "fabric." + *error;
        return false;
    }
    fs.width = static_cast<int>(width);
    fs.height = static_cast<int>(height);
    const json::Value *allocs = fab->get("allocations");
    if (!allocs || !allocs->isArray())
        return fail(error,
                    "fabric.allocations missing or not an array");
    for (std::size_t i = 0; i < allocs->items.size(); ++i) {
        const json::Value &a = allocs->items[i];
        const std::string where =
            "fabric.allocations[" + std::to_string(i) + "]: ";
        if (!a.isObject())
            return fail(error, where + "not an object");
        FabricAllocation fa;
        std::int64_t row = 0, col = 0;
        std::uint64_t count = 0;
        std::string sub;
        if (!stateU64(a, "id", &fa.id, &sub) ||
            !stateI64(a, "row", &row, &sub) ||
            !stateI64(a, "col", &col, &sub) ||
            !stateU64(a, "count", &count, &sub) ||
            !stateCoords(a, "banks", &fa.banks, &sub)) {
            return fail(error, where + sub);
        }
        fa.slices.row = static_cast<int>(row);
        fa.slices.col = static_cast<int>(col);
        fa.slices.count = static_cast<unsigned>(count);
        fs.allocations.push_back(std::move(fa));
    }

    // Side-build: validate every claim without touching fabric_.
    FabricManager fabric = fabric_;
    std::string ferr;
    if (!fabric.restore(fs, &ferr))
        return fail(error, "fabric: " + ferr);

    // --- Market --------------------------------------------------
    const json::Value *mkt = root.get("market");
    if (!mkt || !mkt->isObject())
        return fail(error, "market missing or not an object");
    SpotMarketSnapshot ms;
    std::uint64_t round = 0;
    if (!stateDouble(*mkt, "slice_capacity", &ms.sliceCapacity,
                     error) ||
        !stateDouble(*mkt, "bank_capacity", &ms.bankCapacity,
                     error) ||
        !stateU64(*mkt, "round", &round, error)) {
        if (error)
            *error = "market." + *error;
        return false;
    }
    ms.round = static_cast<unsigned>(round);
    if (ms.sliceCapacity <= 0.0 || ms.bankCapacity <= 0.0)
        return fail(error,
                    "market: capacities must be positive (a "
                    "provider with nothing to sell has no market)");
    const json::Value *prices = mkt->get("prices");
    std::string merr;
    if (!prices || !marketFromJson(*prices, &ms.prices, &merr))
        return fail(error, "market.prices: " +
                               (prices ? merr : "missing"));
    const json::Value *book = mkt->get("customers");
    if (!book || !book->isArray())
        return fail(error,
                    "market.customers missing or not an array");
    for (std::size_t i = 0; i < book->items.size(); ++i) {
        const json::Value &c = book->items[i];
        const std::string where =
            "market.customers[" + std::to_string(i) + "]: ";
        if (!c.isObject())
            return fail(error, where + "not an object");
        SpotCustomer sc;
        const json::Value *name = c.get("name");
        const json::Value *benchmark = c.get("benchmark");
        const json::Value *utility = c.get("utility");
        const json::Value *budget = c.get("budget");
        const json::Value *active = c.get("active");
        if (!name || !name->isString())
            return fail(error, where + "name missing");
        if (!benchmark || !benchmark->isString())
            return fail(error, where + "benchmark missing");
        if (!hasProfile(benchmark->text))
            return fail(error, where + "unknown benchmark '" +
                                   benchmark->text + "'");
        if (!utility || !utility->isString() ||
            !parseUtilityName(utility->text, &sc.utility)) {
            return fail(error, where + "unknown utility");
        }
        if (!budget || !budget->isNumber())
            return fail(error, where + "budget missing");
        if (!active || !active->isBool())
            return fail(error, where + "active missing");
        sc.name = name->text;
        sc.benchmark = benchmark->text;
        sc.budget = budget->asDouble();
        sc.active = active->boolean;
        ms.customers.push_back(std::move(sc));
    }

    // --- Leases --------------------------------------------------
    const json::Value *leases = root.get("leases");
    if (!leases || !leases->isArray())
        return fail(error, "leases missing or not an array");
    std::map<std::uint64_t, Lease> book2;
    for (std::size_t i = 0; i < leases->items.size(); ++i) {
        const json::Value &l = leases->items[i];
        const std::string where =
            "leases[" + std::to_string(i) + "]: ";
        if (!l.isObject())
            return fail(error, where + "not an object");
        Lease lease;
        std::uint64_t slices = 0, banks = 0;
        std::string sub;
        if (!stateU64(l, "id", &lease.id, &sub) ||
            !stateU64(l, "slices", &slices, &sub) ||
            !stateU64(l, "banks", &banks, &sub) ||
            !stateU64(l, "arrived_at", &lease.arrivedAt, &sub)) {
            return fail(error, where + sub);
        }
        const json::Value *tenant = l.get("tenant");
        if (!tenant || !tenant->isString())
            return fail(error, where + "tenant missing");
        lease.tenant = tenant->text;
        lease.slices = static_cast<unsigned>(slices);
        lease.banks = static_cast<unsigned>(banks);
        const json::Value *customer = l.get("customer");
        if (!customer)
            return fail(error, where + "customer missing (use "
                                       "null for fabric-only)");
        if (!customer->isNull()) {
            std::uint64_t cid = 0;
            if (!customer->asU64(&cid))
                return fail(error,
                            where + "customer is not an id");
            if (cid >= ms.customers.size())
                return fail(error,
                            where + "customer " +
                                std::to_string(cid) +
                                " not in the market book (" +
                                std::to_string(ms.customers.size()) +
                                " customers)");
            lease.customer = static_cast<CustomerId>(cid);
            lease.hasCustomer = true;
        }
        if (!fabric.find(lease.id))
            return fail(error,
                        where + "no fabric allocation with id " +
                            std::to_string(lease.id));
        if (book2.count(lease.id))
            return fail(error, where + "duplicate lease id " +
                                   std::to_string(lease.id));
        book2.emplace(lease.id, std::move(lease));
    }

    // --- Queue ---------------------------------------------------
    const json::Value *queue = root.get("queue");
    if (!queue || !queue->isArray())
        return fail(error, "queue missing or not an array");
    std::vector<Queued> pending;
    for (std::size_t i = 0; i < queue->items.size(); ++i) {
        Queued q;
        std::string qerr;
        if (!eventFromJson(queue->items[i], &q.event, &q.seq,
                           &qerr)) {
            return fail(error, "queue[" + std::to_string(i) +
                                   "]: " + qerr);
        }
        if (q.seq >= nextSeq)
            return fail(error,
                        "queue[" + std::to_string(i) + "]: seq " +
                            std::to_string(q.seq) + " >= next_seq " +
                            std::to_string(nextSeq));
        pending.push_back(std::move(q));
    }

    // Everything validated: commit atomically.
    fabric_ = std::move(fabric);
    SpotMarketSnapshot msCopy = std::move(ms);
    market_.restore(msCopy);
    leases_ = std::move(book2);
    queue_ = std::move(pending);
    std::make_heap(queue_.begin(), queue_.end(), laterThan);
    clock_ = clock;
    nextSeq_ = nextSeq;
    stats_ = st;
    lastOutcome_ = EventOutcome{};
    return true;
}

bool
AllocationEngine::checkInvariants(std::string *error) const
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = what;
        return false;
    };

    // The layers audit themselves first.
    if (!fabric_.checkConsistency(error))
        return false;
    if (!market_.checkConsistency(error))
        return false;

    // Leases <-> fabric allocations must be a bijection with
    // matching shapes, and every customer handle must resolve.
    const std::vector<FabricAllocation> allocs =
        fabric_.allocations();
    if (allocs.size() != leases_.size())
        return fail("lease book has " +
                    std::to_string(leases_.size()) +
                    " entries but the fabric has " +
                    std::to_string(allocs.size()) + " allocations");
    std::uint64_t leasedSlices = 0, leasedBanks = 0;
    for (const FabricAllocation &fa : allocs) {
        auto it = leases_.find(fa.id);
        if (it == leases_.end())
            return fail("fabric allocation " +
                        std::to_string(fa.id) + " has no lease");
        const Lease &lease = it->second;
        if (lease.slices != fa.slices.count ||
            lease.banks != static_cast<unsigned>(fa.banks.size())) {
            return fail(
                "lease " + std::to_string(fa.id) + " ('" +
                lease.tenant + "') claims " +
                std::to_string(lease.slices) + " Slices + " +
                std::to_string(lease.banks) +
                " banks but the fabric allocation holds " +
                std::to_string(fa.slices.count) + " + " +
                std::to_string(fa.banks.size()));
        }
        leasedSlices += fa.slices.count;
        leasedBanks += fa.banks.size();
        if (lease.hasCustomer) {
            if (lease.customer >= market_.customers().size())
                return fail("lease " + std::to_string(fa.id) +
                            " points at customer " +
                            std::to_string(lease.customer) +
                            " but the book has only " +
                            std::to_string(
                                market_.customers().size()) +
                            " entries");
            if (!market_.customer(lease.customer).active)
                return fail("lease " + std::to_string(fa.id) +
                            " ('" + lease.tenant +
                            "') references departed customer " +
                            std::to_string(lease.customer));
        }
        if (lease.arrivedAt > clock_)
            return fail("lease " + std::to_string(fa.id) +
                        " arrived at cycle " +
                        std::to_string(lease.arrivedAt) +
                        ", after the clock (" +
                        std::to_string(clock_) + ")");
    }

    // The occupancy arithmetic must close exactly.
    if (leasedSlices + fabric_.freeSlices() +
            fabric_.faultySlices() != fabric_.totalSlices()) {
        return fail("Slice occupancy does not close: " +
                    std::to_string(leasedSlices) + " leased + " +
                    std::to_string(fabric_.freeSlices()) +
                    " free + " +
                    std::to_string(fabric_.faultySlices()) +
                    " faulty != " +
                    std::to_string(fabric_.totalSlices()));
    }
    if (leasedBanks + fabric_.freeBanks() + fabric_.faultyBanks() !=
        fabric_.totalBanks()) {
        return fail("bank occupancy does not close: " +
                    std::to_string(leasedBanks) + " leased + " +
                    std::to_string(fabric_.freeBanks()) +
                    " free + " +
                    std::to_string(fabric_.faultyBanks()) +
                    " faulty != " +
                    std::to_string(fabric_.totalBanks()));
    }

    // The market cannot sell more than the chip has.
    if (market_.sliceCapacity() >
            static_cast<double>(fabric_.totalSlices()) ||
        market_.bankCapacity() >
            static_cast<double>(fabric_.totalBanks())) {
        return fail("market capacity exceeds the fabric's totals");
    }

    // Counter sanity: live leases all came through admission.
    if (leases_.size() > stats_.admitted)
        return fail(std::to_string(leases_.size()) +
                    " live leases but only " +
                    std::to_string(stats_.admitted) +
                    " admissions recorded");
    return true;
}

study::Report
AllocationEngine::finalReport() const
{
    study::Report r;
    r.id = "engine";
    r.title = "Allocation engine final state";
    r.addMeta("schema", kStateSchema);
    r.addMeta("fabric", std::to_string(fabric_.width()) + "x" +
                            std::to_string(fabric_.height()));
    r.addMeta("clock",
              study::Value(static_cast<unsigned long long>(clock_)));

    study::Table &counters =
        r.addTable("engine_counters", "Event counters");
    counters.col("counter", study::Value::Kind::Text)
        .col("value", study::Value::Kind::Integer);
    auto count = [&](const char *name, std::uint64_t v) {
        counters.addRow(
            {name, study::Value(static_cast<unsigned long long>(v))});
    };
    count("processed", stats_.processed);
    count("arrivals", stats_.arrivals);
    count("admitted", stats_.admitted);
    count("rejected", stats_.rejected);
    count("departures", stats_.departures);
    count("unmatched_departs", stats_.unmatchedDeparts);
    count("faults", stats_.faults);
    count("heals", stats_.heals);
    count("evictions", stats_.evictions);
    count("epochs", stats_.epochs);
    count("auction_rounds", stats_.auctionRounds);
    count("checkpoints", stats_.checkpoints);
    count("reconfig_cycles", stats_.reconfigCycles);

    study::Table &mkt =
        r.addTable("engine_market", "Spot market state");
    mkt.col("metric", study::Value::Kind::Text)
        .col("value", study::Value::Kind::Real, 4);
    mkt.addRow({"slice_price", market_.prices().slicePrice});
    mkt.addRow({"bank_price", market_.prices().bankPrice});
    mkt.addRow({"slice_capacity", market_.sliceCapacity()});
    mkt.addRow({"bank_capacity", market_.bankCapacity()});
    mkt.addRow({"active_customers",
                static_cast<double>(market_.activeCustomers())});
    mkt.addRow({"refunds_paid", stats_.refundsPaid});

    study::Table &fab =
        r.addTable("engine_fabric", "Fabric occupancy");
    fab.col("metric", study::Value::Kind::Text)
        .col("value", study::Value::Kind::Real, 4);
    fab.addRow({"slice_utilization", fabric_.sliceUtilization()});
    fab.addRow({"bank_utilization", fabric_.bankUtilization()});
    fab.addRow({"fragmentation", fabric_.fragmentation()});
    fab.addRow({"free_slices",
                static_cast<double>(fabric_.freeSlices())});
    fab.addRow({"free_banks",
                static_cast<double>(fabric_.freeBanks())});
    fab.addRow({"faulty_slices",
                static_cast<double>(fabric_.faultySlices())});
    fab.addRow({"faulty_banks",
                static_cast<double>(fabric_.faultyBanks())});

    study::Table &leases =
        r.addTable("engine_leases", "Live leases");
    leases.col("id", study::Value::Kind::Integer)
        .col("tenant", study::Value::Kind::Text)
        .col("slices", study::Value::Kind::Integer)
        .col("banks", study::Value::Kind::Integer)
        .col("arrived_at", study::Value::Kind::Integer);
    for (const auto &[id, lease] : leases_) {
        leases.addRow(
            {study::Value(static_cast<unsigned long long>(id)),
             lease.tenant, lease.slices, lease.banks,
             study::Value(static_cast<unsigned long long>(
                 lease.arrivedAt))});
    }
    return r;
}

} // namespace sharch::engine
