#include "engine/engine_base.hh"

#include <algorithm>
#include <utility>

namespace sharch::engine {

bool
EngineBase::laterThan(const Queued &a, const Queued &b)
{
    if (a.event.at != b.event.at)
        return a.event.at > b.event.at;
    return a.seq > b.seq;
}

std::optional<std::uint64_t>
EngineBase::post(Event e)
{
    if (queue_.size() >= maxPending_)
        return std::nullopt;
    Queued q;
    q.event = std::move(e);
    q.seq = nextSeq_++;
    queue_.push_back(std::move(q));
    std::push_heap(queue_.begin(), queue_.end(), laterThan);
    return queue_.back().seq;
}

void
EngineBase::runUntil(Cycles cycle)
{
    while (!queue_.empty() && queue_.front().event.at <= cycle) {
        std::pop_heap(queue_.begin(), queue_.end(), laterThan);
        Queued q = std::move(queue_.back());
        queue_.pop_back();
        dispatch(q.event, q.seq);
    }
}

void
EngineBase::run()
{
    while (!queue_.empty()) {
        std::pop_heap(queue_.begin(), queue_.end(), laterThan);
        Queued q = std::move(queue_.back());
        queue_.pop_back();
        dispatch(q.event, q.seq);
    }
}

EventOutcome
EngineBase::execute(Event e)
{
    // A request cannot rewrite history: it fires now at the earliest.
    if (e.at < clock_)
        e.at = clock_;
    Cycles upTo = e.at;
    EventKind kind = e.kind;
    if (!post(std::move(e))) {
        // Backpressure, not silent growth: the caller learns exactly
        // which bound it hit and nothing was enqueued.
        lastOutcome_ = EventOutcome{};
        lastOutcome_.kind = kind;
        lastOutcome_.detail =
            "pending queue is full (" +
            std::to_string(queue_.size()) + " events, limit " +
            std::to_string(maxPending_) + "): event rejected";
        return lastOutcome_;
    }
    runUntil(upTo);
    return lastOutcome_;
}

std::optional<Cycles>
EngineBase::reshapeLease(std::uint64_t lease, unsigned slices,
                         unsigned banks)
{
    const EventOutcome out =
        execute(reshapeEvent(clock_, lease, slices, banks));
    if (!out.applied)
        return std::nullopt;
    return out.cost;
}

void
EngineBase::dispatch(const Event &e, std::uint64_t seq)
{
    // Write-ahead: the journal hook makes the record durable before
    // any state changes, so a crash mid-apply replays the event.
    if (dispatchHook_ && !replaying_)
        dispatchHook_(e, seq);
    if (e.at > clock_)
        clock_ = e.at;
    stats_.processed++;
    lastOutcome_ = EventOutcome{};
    lastOutcome_.kind = e.kind;
    if (e.kind == EventKind::Checkpoint) {
        handleCheckpoint(e);
        return;
    }
    dispatchEvent(e);
}

void
EngineBase::replayDispatch(const Event &e, std::uint64_t seq)
{
    // The snapshot's queue may hold the same posting: drop it so the
    // event fires exactly once.
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->seq == seq) {
            queue_.erase(it);
            std::make_heap(queue_.begin(), queue_.end(), laterThan);
            break;
        }
    }
    if (seq >= nextSeq_)
        nextSeq_ = seq + 1;
    replaying_ = true;
    dispatch(e, seq);
    replaying_ = false;
}

void
EngineBase::handleCheckpoint(const Event &e)
{
    stats_.checkpoints++;
    lastOutcome_.applied = true;
    // Capture *after* consuming the event, so restoring this state
    // resumes with exactly the remaining stream.
    lastCheckpointLabel_ = e.label;
    lastCheckpoint_ = saveState();
    if (checkpointHook_)
        checkpointHook_(lastCheckpointLabel_, lastCheckpoint_);
}

Event
EngineBase::arriveEvent(Cycles at, std::string tenant,
                        std::string benchmark, UtilityKind utility,
                        double budget, unsigned slices,
                        unsigned banks, Cycles lifetime) const
{
    Event e = tenantArrive(at, std::move(tenant),
                           std::move(benchmark), utility, budget,
                           slices, banks);
    e.lifetime = lifetime;
    return e;
}

Event
EngineBase::departEvent(Cycles at, std::string tenant) const
{
    return tenantDepart(at, std::move(tenant));
}

Event
EngineBase::priceEvent(Cycles at) const
{
    return auctionEpoch(at);
}

json::Value
EngineBase::statsToJson() const
{
    json::Value stats = json::Value::object();
    stats.add("processed", json::Value::number(stats_.processed));
    stats.add("arrivals", json::Value::number(stats_.arrivals));
    stats.add("admitted", json::Value::number(stats_.admitted));
    stats.add("rejected", json::Value::number(stats_.rejected));
    stats.add("departures", json::Value::number(stats_.departures));
    stats.add("unmatched_departs",
              json::Value::number(stats_.unmatchedDeparts));
    stats.add("faults", json::Value::number(stats_.faults));
    stats.add("heals", json::Value::number(stats_.heals));
    stats.add("evictions", json::Value::number(stats_.evictions));
    stats.add("epochs", json::Value::number(stats_.epochs));
    stats.add("auction_rounds",
              json::Value::number(stats_.auctionRounds));
    stats.add("checkpoints", json::Value::number(stats_.checkpoints));
    stats.add("reconfig_cycles",
              json::Value::number(
                  std::uint64_t{stats_.reconfigCycles}));
    stats.add("refunds_paid",
              json::Value::number(stats_.refundsPaid));
    return stats;
}

namespace {

bool
baseFail(std::string *error, const std::string &what)
{
    if (error)
        *error = what;
    return false;
}

bool
baseU64(const json::Value &v, const char *key, std::uint64_t *out,
        std::string *error)
{
    const json::Value *f = v.get(key);
    if (!f || !f->asU64(out))
        return baseFail(error,
                        std::string(key) +
                            " missing or not an unsigned integer");
    return true;
}

} // namespace

bool
EngineBase::statsFromJson(const json::Value &root, EngineStats *out,
                          std::string *error)
{
    const json::Value *stats = root.get("stats");
    if (!stats || !stats->isObject())
        return baseFail(error, "stats missing or not an object");
    EngineStats st;
    std::uint64_t reconfig = 0;
    const json::Value *refunds = stats->get("refunds_paid");
    if (!baseU64(*stats, "processed", &st.processed, error) ||
        !baseU64(*stats, "arrivals", &st.arrivals, error) ||
        !baseU64(*stats, "admitted", &st.admitted, error) ||
        !baseU64(*stats, "rejected", &st.rejected, error) ||
        !baseU64(*stats, "departures", &st.departures, error) ||
        !baseU64(*stats, "unmatched_departs", &st.unmatchedDeparts,
                 error) ||
        !baseU64(*stats, "faults", &st.faults, error) ||
        !baseU64(*stats, "heals", &st.heals, error) ||
        !baseU64(*stats, "evictions", &st.evictions, error) ||
        !baseU64(*stats, "epochs", &st.epochs, error) ||
        !baseU64(*stats, "auction_rounds", &st.auctionRounds,
                 error) ||
        !baseU64(*stats, "checkpoints", &st.checkpoints, error) ||
        !baseU64(*stats, "reconfig_cycles", &reconfig, error)) {
        if (error)
            *error = "stats." + *error;
        return false;
    }
    if (!refunds || !refunds->isNumber())
        return baseFail(error,
                        "stats.refunds_paid missing or not a number");
    st.refundsPaid = refunds->asDouble();
    st.reconfigCycles = reconfig;
    *out = st;
    return true;
}

json::Value
EngineBase::queueToJson() const
{
    std::vector<Queued> pending = queue_;
    std::sort(pending.begin(), pending.end(),
              [](const Queued &a, const Queued &b) {
                  return laterThan(b, a);
              });
    json::Value queue = json::Value::array();
    for (const Queued &q : pending)
        queue.push(eventToJson(q.event, q.seq));
    return queue;
}

bool
EngineBase::queueFromJson(const json::Value *queue,
                          std::uint64_t nextSeq,
                          std::vector<Queued> *out,
                          std::string *error) const
{
    if (!queue || !queue->isArray())
        return baseFail(error, "queue missing or not an array");
    out->clear();
    for (std::size_t i = 0; i < queue->items.size(); ++i) {
        Queued q;
        std::string qerr;
        if (!eventFromJson(queue->items[i], &q.event, &q.seq,
                           &qerr)) {
            return baseFail(error, "queue[" + std::to_string(i) +
                                       "]: " + qerr);
        }
        if (q.seq >= nextSeq)
            return baseFail(error,
                            "queue[" + std::to_string(i) +
                                "]: seq " + std::to_string(q.seq) +
                                " >= next_seq " +
                                std::to_string(nextSeq));
        out->push_back(std::move(q));
    }
    return true;
}

void
EngineBase::adoptRestoredSpine(std::vector<Queued> pending,
                               Cycles clock, std::uint64_t nextSeq,
                               const EngineStats &stats)
{
    queue_ = std::move(pending);
    std::make_heap(queue_.begin(), queue_.end(), laterThan);
    clock_ = clock;
    nextSeq_ = nextSeq;
    stats_ = stats;
    lastOutcome_ = EventOutcome{};
}

} // namespace sharch::engine
