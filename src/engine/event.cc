#include "engine/event.hh"

namespace sharch::engine {

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::TenantArrive: return "tenant_arrive";
      case EventKind::TenantDepart: return "tenant_depart";
      case EventKind::Reshape: return "reshape";
      case EventKind::FaultStrike: return "fault_strike";
      case EventKind::Heal: return "heal";
      case EventKind::AuctionEpoch: return "auction_epoch";
      case EventKind::Checkpoint: return "checkpoint";
      case EventKind::FleetArrive: return "fleet_arrive";
      case EventKind::FleetDepart: return "fleet_depart";
      case EventKind::EpochAuction: return "epoch_auction";
    }
    return "?";
}

bool
parseEventKind(const std::string &name, EventKind *out)
{
    if (name == "tenant_arrive")
        *out = EventKind::TenantArrive;
    else if (name == "tenant_depart")
        *out = EventKind::TenantDepart;
    else if (name == "reshape")
        *out = EventKind::Reshape;
    else if (name == "fault_strike")
        *out = EventKind::FaultStrike;
    else if (name == "heal")
        *out = EventKind::Heal;
    else if (name == "auction_epoch")
        *out = EventKind::AuctionEpoch;
    else if (name == "checkpoint")
        *out = EventKind::Checkpoint;
    else if (name == "fleet_arrive")
        *out = EventKind::FleetArrive;
    else if (name == "fleet_depart")
        *out = EventKind::FleetDepart;
    else if (name == "epoch_auction")
        *out = EventKind::EpochAuction;
    else
        return false;
    return true;
}

Event
tenantArrive(Cycles at, std::string tenant, std::string benchmark,
             UtilityKind utility, double budget, unsigned slices,
             unsigned banks)
{
    Event e;
    e.at = at;
    e.kind = EventKind::TenantArrive;
    e.tenant = std::move(tenant);
    e.benchmark = std::move(benchmark);
    e.utility = utility;
    e.budget = budget;
    e.slices = slices;
    e.banks = banks;
    return e;
}

Event
tenantDepart(Cycles at, std::string tenant)
{
    Event e;
    e.at = at;
    e.kind = EventKind::TenantDepart;
    e.tenant = std::move(tenant);
    return e;
}

Event
reshapeEvent(Cycles at, std::uint64_t lease, unsigned slices,
             unsigned banks)
{
    Event e;
    e.at = at;
    e.kind = EventKind::Reshape;
    e.lease = lease;
    e.slices = slices;
    e.banks = banks;
    return e;
}

Event
faultStrike(Cycles at, fault::FaultKind kind, Coord tile)
{
    Event e;
    e.at = at;
    e.kind = EventKind::FaultStrike;
    e.fault = kind;
    e.tile = tile;
    return e;
}

Event
healFault(Cycles at, fault::FaultKind kind, Coord tile)
{
    Event e = faultStrike(at, kind, tile);
    e.kind = EventKind::Heal;
    return e;
}

Event
auctionEpoch(Cycles at)
{
    Event e;
    e.at = at;
    e.kind = EventKind::AuctionEpoch;
    return e;
}

Event
checkpoint(Cycles at, std::string label)
{
    Event e;
    e.at = at;
    e.kind = EventKind::Checkpoint;
    e.label = std::move(label);
    return e;
}

Event
fleetArrive(Cycles at, std::string tenant, std::string benchmark,
            UtilityKind utility, double budget, unsigned slices,
            unsigned banks, Cycles lifetime)
{
    Event e = tenantArrive(at, std::move(tenant),
                           std::move(benchmark), utility, budget,
                           slices, banks);
    e.kind = EventKind::FleetArrive;
    e.lifetime = lifetime;
    return e;
}

Event
fleetDepart(Cycles at, std::string tenant)
{
    Event e = tenantDepart(at, std::move(tenant));
    e.kind = EventKind::FleetDepart;
    return e;
}

Event
epochAuction(Cycles at)
{
    Event e;
    e.at = at;
    e.kind = EventKind::EpochAuction;
    return e;
}

json::Value
eventToJson(const Event &e, std::uint64_t seq)
{
    json::Value v = json::Value::object();
    v.add("kind", json::Value::string(eventKindName(e.kind)));
    v.add("at", json::Value::number(std::uint64_t{e.at}));
    v.add("seq", json::Value::number(seq));
    switch (e.kind) {
      case EventKind::TenantArrive:
        v.add("tenant", json::Value::string(e.tenant));
        v.add("benchmark", json::Value::string(e.benchmark));
        v.add("utility",
              json::Value::string(utilityName(e.utility)));
        v.add("budget", json::Value::number(e.budget));
        v.add("slices", json::Value::number(e.slices));
        v.add("banks", json::Value::number(e.banks));
        break;
      case EventKind::TenantDepart:
        v.add("tenant", json::Value::string(e.tenant));
        break;
      case EventKind::Reshape:
        v.add("lease", json::Value::number(e.lease));
        v.add("slices", json::Value::number(e.slices));
        v.add("banks", json::Value::number(e.banks));
        break;
      case EventKind::FaultStrike:
      case EventKind::Heal: {
        v.add("fault",
              json::Value::string(fault::faultKindName(e.fault)));
        json::Value &tile = v.add("tile", json::Value::array());
        tile.push(json::Value::number(std::int64_t{e.tile.x}));
        tile.push(json::Value::number(std::int64_t{e.tile.y}));
        // Only fleet events carry a chip: the single-chip engine's
        // serialization stays byte-stable.
        if (e.chip >= 0)
            v.add("chip", json::Value::number(std::int64_t{e.chip}));
        break;
      }
      case EventKind::AuctionEpoch:
      case EventKind::EpochAuction:
        break;
      case EventKind::Checkpoint:
        v.add("label", json::Value::string(e.label));
        break;
      case EventKind::FleetArrive:
        v.add("tenant", json::Value::string(e.tenant));
        v.add("benchmark", json::Value::string(e.benchmark));
        v.add("utility",
              json::Value::string(utilityName(e.utility)));
        v.add("budget", json::Value::number(e.budget));
        v.add("slices", json::Value::number(e.slices));
        v.add("banks", json::Value::number(e.banks));
        v.add("lifetime",
              json::Value::number(std::uint64_t{e.lifetime}));
        break;
      case EventKind::FleetDepart:
        v.add("tenant", json::Value::string(e.tenant));
        break;
    }
    return v;
}

namespace {

bool
wrong(std::string *error, const std::string &what)
{
    *error = what;
    return false;
}

bool
readString(const json::Value &v, const char *key, std::string *out,
           std::string *error)
{
    const json::Value *f = v.get(key);
    if (!f || !f->isString())
        return wrong(error, std::string("event.") + key +
                                " missing or not a string");
    *out = f->text;
    return true;
}

bool
readU64(const json::Value &v, const char *key, std::uint64_t *out,
        std::string *error)
{
    const json::Value *f = v.get(key);
    if (!f || !f->asU64(out))
        return wrong(error, std::string("event.") + key +
                                " missing or not an unsigned "
                                "integer");
    return true;
}

} // namespace

bool
eventFromJson(const json::Value &v, Event *out, std::uint64_t *seq,
              std::string *error)
{
    if (!v.isObject())
        return wrong(error, "queue entries must be JSON objects");
    std::string kind;
    if (!readString(v, "kind", &kind, error))
        return false;
    Event e;
    if (!parseEventKind(kind, &e.kind))
        return wrong(error, "unknown event kind '" + kind + "'");
    std::uint64_t at = 0;
    if (!readU64(v, "at", &at, error) ||
        !readU64(v, "seq", seq, error)) {
        return false;
    }
    e.at = at;

    switch (e.kind) {
      case EventKind::TenantArrive: {
        if (!readString(v, "tenant", &e.tenant, error) ||
            !readString(v, "benchmark", &e.benchmark, error)) {
            return false;
        }
        std::string utility;
        if (!readString(v, "utility", &utility, error))
            return false;
        if (!parseUtilityName(utility, &e.utility))
            return wrong(error,
                         "unknown utility '" + utility + "'");
        const json::Value *budget = v.get("budget");
        if (!budget || !budget->isNumber())
            return wrong(error,
                         "event.budget missing or not a number");
        e.budget = budget->asDouble();
        std::uint64_t n = 0;
        if (!readU64(v, "slices", &n, error))
            return false;
        e.slices = static_cast<unsigned>(n);
        if (!readU64(v, "banks", &n, error))
            return false;
        e.banks = static_cast<unsigned>(n);
        break;
      }
      case EventKind::TenantDepart:
        if (!readString(v, "tenant", &e.tenant, error))
            return false;
        break;
      case EventKind::Reshape: {
        std::uint64_t n = 0;
        if (!readU64(v, "lease", &e.lease, error))
            return false;
        if (!readU64(v, "slices", &n, error))
            return false;
        e.slices = static_cast<unsigned>(n);
        if (!readU64(v, "banks", &n, error))
            return false;
        e.banks = static_cast<unsigned>(n);
        break;
      }
      case EventKind::FaultStrike:
      case EventKind::Heal: {
        std::string fault;
        if (!readString(v, "fault", &fault, error))
            return false;
        if (!fault::parseFaultKind(fault, &e.fault))
            return wrong(error,
                         "unknown fault kind '" + fault + "'");
        const json::Value *tile = v.get("tile");
        std::int64_t x = 0, y = 0;
        if (!tile || !tile->isArray() || tile->items.size() != 2 ||
            !tile->items[0].asI64(&x) || !tile->items[1].asI64(&y)) {
            return wrong(error,
                         "event.tile must be an [x,y] pair");
        }
        e.tile = Coord{static_cast<int>(x), static_cast<int>(y)};
        if (const json::Value *chip = v.get("chip")) {
            std::int64_t c = 0;
            if (!chip->asI64(&c) || c < 0)
                return wrong(error, "event.chip must be an "
                                    "unsigned chip index");
            e.chip = static_cast<int>(c);
        }
        break;
      }
      case EventKind::AuctionEpoch:
      case EventKind::EpochAuction:
        break;
      case EventKind::Checkpoint:
        if (!readString(v, "label", &e.label, error))
            return false;
        break;
      case EventKind::FleetArrive: {
        if (!readString(v, "tenant", &e.tenant, error) ||
            !readString(v, "benchmark", &e.benchmark, error)) {
            return false;
        }
        std::string utility;
        if (!readString(v, "utility", &utility, error))
            return false;
        if (!parseUtilityName(utility, &e.utility))
            return wrong(error,
                         "unknown utility '" + utility + "'");
        const json::Value *budget = v.get("budget");
        if (!budget || !budget->isNumber())
            return wrong(error,
                         "event.budget missing or not a number");
        e.budget = budget->asDouble();
        std::uint64_t n = 0;
        if (!readU64(v, "slices", &n, error))
            return false;
        e.slices = static_cast<unsigned>(n);
        if (!readU64(v, "banks", &n, error))
            return false;
        e.banks = static_cast<unsigned>(n);
        if (!readU64(v, "lifetime", &n, error))
            return false;
        e.lifetime = n;
        break;
      }
      case EventKind::FleetDepart:
        if (!readString(v, "tenant", &e.tenant, error))
            return false;
        break;
    }
    *out = std::move(e);
    return true;
}

} // namespace sharch::engine
