/**
 * @file
 * The engine spine: a deterministic typed-event queue with
 * write-ahead dispatch hooks, checkpoint capture, and replay.
 *
 * AllocationEngine (one chip) and fleet::FleetEngine (thousands of
 * chips) process different event vocabularies over different state,
 * but the machinery that makes a run *a value* -- the (cycle,
 * posting-order) queue, the clock, the dispatch hook the journal
 * writes ahead of every mutation, Checkpoint capture, and
 * seq-deduplicating replay -- is identical.  EngineBase owns that
 * machinery so the Journal (sharch-journal-v1) and ServeSession
 * layers work unchanged against any engine: they only ever touch
 * post/execute/replayDispatch and the saveState/restoreState/
 * checkInvariants/finalReport virtuals.
 *
 * The queue is bounded (maxPending, configurable per engine): a
 * post past the limit is refused and execute() answers with a
 * positioned rejection instead of growing without bound under
 * sustained load.
 */

#ifndef SHARCH_ENGINE_ENGINE_BASE_HH
#define SHARCH_ENGINE_ENGINE_BASE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "engine/event.hh"
#include "hyper/fabric_manager.hh"
#include "study/report.hh"

namespace sharch::engine {

/** The document version saveState() writes and restoreState() reads. */
inline constexpr const char *kStateSchema = "sharch-state-v1";

/** Pending-queue bound when the engine config does not set one. */
inline constexpr std::size_t kDefaultMaxPending = 65536;

/** Monotonic counters over the whole run (serialized state). */
struct EngineStats
{
    std::uint64_t processed = 0;   //!< events consumed
    std::uint64_t arrivals = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;    //!< no contiguous run fit
    std::uint64_t departures = 0;
    std::uint64_t unmatchedDeparts = 0;
    std::uint64_t faults = 0;      //!< newly-faulty strikes
    std::uint64_t heals = 0;
    std::uint64_t evictions = 0;   //!< leases lost to degradation
    std::uint64_t epochs = 0;
    std::uint64_t auctionRounds = 0;
    std::uint64_t checkpoints = 0;
    Cycles reconfigCycles = 0;     //!< degradation + reshape costs
    double refundsPaid = 0.0;
};

/** What processing one event did (the serve layer's result). */
struct EventOutcome
{
    EventKind kind = EventKind::AuctionEpoch;
    bool applied = false;      //!< admitted / released / newly-faulty
    std::uint64_t lease = 0;   //!< lease touched (0: none)
    Cycles cost = 0;           //!< reconfiguration cycles (Reshape)
    std::string detail;        //!< human-readable "why not" etc.
    /** Degradations a FaultStrike caused (fault_replay reads these). */
    std::vector<DegradeAction> actions;
};

/**
 * The deterministic event loop every engine runs on.  Derived
 * classes implement dispatchEvent() (all kinds except Checkpoint,
 * which the base handles by capturing saveState()) and the state
 * virtuals; everything else -- ordering, clock, hooks, bounded
 * posting, replay -- lives here once.
 */
class EngineBase
{
  public:
    explicit EngineBase(std::size_t maxPending)
        : maxPending_(maxPending ? maxPending : kDefaultMaxPending)
    {
    }
    virtual ~EngineBase() = default;

    EngineBase(const EngineBase &) = delete;
    EngineBase &operator=(const EngineBase &) = delete;

    // --- The event API (the only mutation path) ------------------

    /**
     * Enqueue @p e.  Events may be posted at any cycle (including
     * the past: they fire on the next run, still after everything
     * already processed).  @return the posting order, which breaks
     * cycle ties deterministically -- or nullopt when the pending
     * queue is at its bound (the event was NOT enqueued).
     */
    std::optional<std::uint64_t> post(Event e);

    /** Process every queued event with at <= @p cycle, in order. */
    void runUntil(Cycles cycle);

    /** Drain the queue completely. */
    void run();

    /**
     * Post @p e and process the queue up to its cycle immediately
     * (the serve path: request in, outcome out).  A refused post --
     * pending queue at its bound -- comes back as an unapplied
     * outcome whose detail names the limit.
     */
    EventOutcome execute(Event e);

    /**
     * Reshape a live lease in place (grow/shrink Slices and banks).
     * Routed through the event queue as an EventKind::Reshape at the
     * current clock, so journals and checkpoints capture it like any
     * other mutation.
     * @return the reconfiguration cost, or nullopt when the lease is
     *         unknown or the fabric cannot satisfy the new shape.
     */
    std::optional<Cycles> reshapeLease(std::uint64_t lease,
                                       unsigned slices,
                                       unsigned banks);

    /**
     * Re-apply one event exactly as a previous process dispatched it
     * (journal recovery).  The pending copy with the same posting
     * order -- restored from the snapshot's queue section -- is
     * removed first so the event is not applied twice, and the
     * dispatch hook is NOT invoked (the record is already durable).
     */
    void replayDispatch(const Event &e, std::uint64_t seq);

    // --- Queries -------------------------------------------------

    Cycles now() const { return clock_; }
    std::size_t pendingEvents() const { return queue_.size(); }
    std::size_t maxPending() const { return maxPending_; }
    const EngineStats &stats() const { return stats_; }
    const EventOutcome &lastOutcome() const { return lastOutcome_; }

    // --- Checkpoint / restore ------------------------------------

    /**
     * The full engine state as one sharch-state-v1 JSON line.  A
     * pure function of the processed event history: byte-identical
     * across runs, thread counts, and checkpoint/resume cuts.
     */
    virtual std::string saveState() const = 0;

    /**
     * Replace the engine's state with a parsed sharch-state-v1
     * document.  Validation is strict and on failure the engine is
     * untouched and @p error names the first offending record.
     */
    virtual bool restoreState(const std::string &text,
                              std::string *error) = 0;

    /**
     * Cross-layer consistency audit; recovery refuses to serve a
     * state that fails this.  @return false with @p error naming
     * the first violation.
     */
    virtual bool checkInvariants(std::string *error) const = 0;

    /**
     * The deterministic end-of-run report (sharch-report-v1): two
     * engines that processed the same events render identical bytes.
     */
    virtual study::Report finalReport() const = 0;

    /**
     * State captured by the most recent Checkpoint event (empty
     * until one fires).  Taken *after* the event is consumed, so
     * restoring it resumes with exactly the remaining stream.
     */
    const std::string &lastCheckpoint() const
    {
        return lastCheckpoint_;
    }
    const std::string &lastCheckpointLabel() const
    {
        return lastCheckpointLabel_;
    }

    /** Hook invoked on every Checkpoint event (label, state). */
    using CheckpointHook =
        std::function<void(const std::string &, const std::string &)>;
    void onCheckpoint(CheckpointHook hook)
    {
        checkpointHook_ = std::move(hook);
    }

    /**
     * Hook invoked immediately *before* each event is applied, with
     * the event and its posting order -- the write-ahead point.  A
     * journal appends (and fsyncs) the record here, so a crash at
     * any later instant can only lose events that were never applied
     * or leave a torn final record; either way replay reconverges.
     * Not invoked during replayDispatch().
     */
    using DispatchHook =
        std::function<void(const Event &, std::uint64_t)>;
    void onDispatch(DispatchHook hook)
    {
        dispatchHook_ = std::move(hook);
    }

    // --- Serve-protocol adaptation -------------------------------
    // ServeSession speaks allocate/release/price generically; each
    // engine maps those verbs onto its own event vocabulary and
    // contributes its own fields to the stats/price replies.

    /** The event an "allocate" request should post. */
    virtual Event arriveEvent(Cycles at, std::string tenant,
                              std::string benchmark,
                              UtilityKind utility, double budget,
                              unsigned slices, unsigned banks,
                              Cycles lifetime) const;

    /** The event a "release" request should post. */
    virtual Event departEvent(Cycles at, std::string tenant) const;

    /** The event a "price" request should post. */
    virtual Event priceEvent(Cycles at) const;

    /** Does a live lease with this id exist? */
    virtual bool hasLease(std::uint64_t id) const = 0;

    /** Live lease count (the serve restore reply). */
    virtual std::size_t leaseCount() const = 0;

    /** Engine-specific fields of the "price" reply. */
    virtual void addPriceReply(json::Value *reply) const = 0;

    /** Engine-specific fields of the "stats" reply. */
    virtual void addStatsReply(json::Value *reply) const = 0;

  protected:
    struct Queued
    {
        Event event;
        std::uint64_t seq = 0;
    };

    static bool laterThan(const Queued &a, const Queued &b);

    /**
     * Apply one non-Checkpoint event to derived state.  The base has
     * already advanced the clock, bumped stats_.processed, and reset
     * lastOutcome_ (kind filled in); handlers set applied/detail.
     */
    virtual void dispatchEvent(const Event &e) = 0;

    // --- Shared sharch-state-v1 sections -------------------------
    // Both engines serialize the identical stats and queue sections;
    // keeping them here keeps the byte formats in lockstep.

    std::uint64_t nextSeq() const { return nextSeq_; }

    json::Value statsToJson() const;
    static bool statsFromJson(const json::Value &root, EngineStats *out,
                              std::string *error);
    json::Value queueToJson() const;
    bool queueFromJson(const json::Value *queue, std::uint64_t nextSeq,
                       std::vector<Queued> *out,
                       std::string *error) const;

    /** Commit the restored spine atomically (restoreState tail). */
    void adoptRestoredSpine(std::vector<Queued> pending, Cycles clock,
                            std::uint64_t nextSeq,
                            const EngineStats &stats);

    Cycles clock_ = 0;
    EngineStats stats_;
    EventOutcome lastOutcome_;

  private:
    void dispatch(const Event &e, std::uint64_t seq);
    void handleCheckpoint(const Event &e);

    std::vector<Queued> queue_; //!< min-heap on (at, seq)
    std::uint64_t nextSeq_ = 0;
    std::size_t maxPending_;
    std::string lastCheckpoint_;
    std::string lastCheckpointLabel_;
    CheckpointHook checkpointHook_;
    DispatchHook dispatchHook_;
    bool replaying_ = false; //!< suppress the hook during recovery
};

} // namespace sharch::engine

#endif // SHARCH_ENGINE_ENGINE_BASE_HH
