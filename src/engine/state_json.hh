/**
 * @file
 * Shared sharch-state-v1 sections: the JSON form of one fabric and
 * one market snapshot.
 *
 * AllocationEngine serializes a single FabricManager + SpotMarket
 * pair; fleet::FleetEngine serializes one such pair per materialized
 * chip.  Both must emit byte-identical sections for identical
 * snapshots -- the checkpoint/restore and journal-recovery
 * byte-identity contracts hang off that -- so the encoding lives
 * here once.  The *FromJson() readers validate strictly; @p prefix
 * names the section in error messages ("fabric", or
 * "chips[3].fabric" in a fleet document).
 */

#ifndef SHARCH_ENGINE_STATE_JSON_HH
#define SHARCH_ENGINE_STATE_JSON_HH

#include <string>

#include "common/json.hh"
#include "hyper/fabric_manager.hh"
#include "hyper/spot_market.hh"

namespace sharch::engine {

/** The "fabric" object: geometry, allocations, faulty tiles. */
json::Value fabricToJson(const FabricSnapshot &fs);

/** Strict inverse of fabricToJson(). */
bool fabricFromJson(const json::Value &fab, const std::string &prefix,
                    FabricSnapshot *out, std::string *error);

/** The "market" object: capacities, round, prices, customer book. */
json::Value marketStateToJson(const SpotMarketSnapshot &ms);

/**
 * Strict inverse of marketStateToJson().  Also enforces the market
 * sanity rule: capacities must be positive (a provider with nothing
 * to sell has no market).
 */
bool marketStateFromJson(const json::Value &mkt,
                         const std::string &prefix,
                         SpotMarketSnapshot *out, std::string *error);

} // namespace sharch::engine

#endif // SHARCH_ENGINE_STATE_JSON_HH
