#include "engine/serve_session.hh"

#include <fstream>
#include <sstream>

#include "engine/journal.hh"
#include "study/report.hh"

namespace sharch::engine {

namespace {

std::string
errorReply(const std::string &what)
{
    json::Value v = json::Value::object();
    v.add("ok", json::Value::boolean_(false));
    v.add("error", json::Value::string(what));
    return v.dump();
}

/** Start an ok reply tagged with its operation. */
json::Value
okReply(const char *op)
{
    json::Value v = json::Value::object();
    v.add("ok", json::Value::boolean_(true));
    v.add("op", json::Value::string(op));
    return v;
}

void
addOutcome(json::Value *v, const EventOutcome &out)
{
    v->add("applied", json::Value::boolean_(out.applied));
    if (out.lease != 0)
        v->add("lease", json::Value::number(out.lease));
    if (!out.detail.empty())
        v->add("detail", json::Value::string(out.detail));
}

/** Optional "at" member; defaults to the engine's clock. */
bool
requestCycle(const json::Value &req, Cycles now, Cycles *out,
             std::string *error)
{
    const json::Value *at = req.get("at");
    if (!at) {
        *out = now;
        return true;
    }
    std::uint64_t v = 0;
    if (!at->asU64(&v)) {
        *error = "'at' must be an unsigned integer cycle";
        return false;
    }
    *out = v;
    return true;
}

bool
optionalU64(const json::Value &req, const char *key,
            std::uint64_t *out, std::string *error)
{
    const json::Value *v = req.get(key);
    if (!v)
        return true;
    if (!v->asU64(out)) {
        *error = std::string("'") + key +
                 "' must be an unsigned integer";
        return false;
    }
    return true;
}

} // namespace

std::string
oversizedLineReply(std::size_t size)
{
    return errorReply(
        "request is " + std::to_string(size) +
        " bytes, larger than the " +
        std::to_string(kMaxRequestBytes) + "-byte limit");
}

std::string
ServeSession::handle(const std::string &line)
{
    requests_++;
    if (line.size() > kMaxRequestBytes)
        return oversizedLineReply(line.size());
    json::Value req;
    std::string perr;
    if (!json::parse(line, &req, &perr))
        return errorReply("request is not valid JSON (" + perr +
                          ")");
    if (!req.isObject())
        return errorReply("request must be a JSON object");
    const json::Value *op = req.get("op");
    if (!op || !op->isString())
        return errorReply("request needs a string 'op' member");

    if (op->text == "allocate")
        return handleAllocate(req);
    if (op->text == "release")
        return handleRelease(req);
    if (op->text == "reshape")
        return handleReshape(req);
    if (op->text == "price")
        return handlePrice(req);
    if (op->text == "snapshot")
        return handleSnapshot(req);
    if (op->text == "restore")
        return handleRestore(req);
    if (op->text == "stats")
        return handleStats();
    if (op->text == "report")
        return handleReport();
    return errorReply("unknown op '" + op->text +
                      "' (want allocate, release, reshape, price, "
                      "snapshot, restore, stats, or report)");
}

std::string
ServeSession::handleAllocate(const json::Value &req)
{
    const json::Value *tenant = req.get("tenant");
    if (!tenant || !tenant->isString())
        return errorReply("allocate needs a string 'tenant'");
    std::string err;
    Cycles at = 0;
    if (!requestCycle(req, engine_->now(), &at, &err))
        return errorReply(err);
    std::uint64_t slices = 0, banks = 0, lifetime = 0;
    if (!optionalU64(req, "slices", &slices, &err) ||
        !optionalU64(req, "banks", &banks, &err) ||
        !optionalU64(req, "lifetime", &lifetime, &err)) {
        return errorReply(err);
    }
    double budget = 0.0;
    if (const json::Value *b = req.get("budget")) {
        if (!b->isNumber())
            return errorReply("'budget' must be a number");
        budget = b->asDouble();
    }
    std::string benchmark;
    if (const json::Value *b = req.get("benchmark")) {
        if (!b->isString())
            return errorReply("'benchmark' must be a string");
        benchmark = b->text;
    }
    UtilityKind utility = UtilityKind::Throughput;
    if (const json::Value *u = req.get("utility")) {
        if (!u->isString() ||
            !parseUtilityName(u->text, &utility)) {
            return errorReply("unknown utility '" +
                              (u->isString() ? u->text : "") + "'");
        }
    }

    const EventOutcome out = engine_->execute(engine_->arriveEvent(
        at, tenant->text, benchmark, utility, budget,
        static_cast<unsigned>(slices),
        static_cast<unsigned>(banks), lifetime));
    json::Value v = okReply("allocate");
    addOutcome(&v, out);
    return v.dump();
}

std::string
ServeSession::handleRelease(const json::Value &req)
{
    const json::Value *tenant = req.get("tenant");
    if (!tenant || !tenant->isString())
        return errorReply("release needs a string 'tenant'");
    std::string err;
    Cycles at = 0;
    if (!requestCycle(req, engine_->now(), &at, &err))
        return errorReply(err);
    const EventOutcome out =
        engine_->execute(engine_->departEvent(at, tenant->text));
    json::Value v = okReply("release");
    addOutcome(&v, out);
    return v.dump();
}

std::string
ServeSession::handleReshape(const json::Value &req)
{
    std::uint64_t lease = 0, slices = 0, banks = 0;
    const json::Value *l = req.get("lease");
    if (!l || !l->asU64(&lease))
        return errorReply("reshape needs an unsigned 'lease' id");
    std::string err;
    if (!optionalU64(req, "slices", &slices, &err) ||
        !optionalU64(req, "banks", &banks, &err)) {
        return errorReply(err);
    }
    const std::optional<Cycles> cost = engine_->reshapeLease(
        lease, static_cast<unsigned>(slices),
        static_cast<unsigned>(banks));
    json::Value v = okReply("reshape");
    v.add("applied", json::Value::boolean_(cost.has_value()));
    if (cost) {
        v.add("cost", json::Value::number(std::uint64_t{*cost}));
    } else {
        v.add("detail",
              json::Value::string(
                  engine_->hasLease(lease)
                      ? "fabric cannot satisfy the new shape"
                      : "no lease with id " +
                            std::to_string(lease)));
    }
    return v.dump();
}

std::string
ServeSession::handlePrice(const json::Value &req)
{
    std::string err;
    Cycles at = 0;
    if (!requestCycle(req, engine_->now(), &at, &err))
        return errorReply(err);
    engine_->execute(engine_->priceEvent(at));
    json::Value v = okReply("price");
    engine_->addPriceReply(&v);
    return v.dump();
}

std::string
ServeSession::handleSnapshot(const json::Value &req)
{
    const std::string state = engine_->saveState();
    if (const json::Value *path = req.get("path")) {
        if (!path->isString())
            return errorReply("'path' must be a string");
        std::ofstream out(path->text,
                          std::ios::binary | std::ios::trunc);
        if (!out)
            return errorReply("cannot write '" + path->text + "'");
        out << state << "\n";
        out.close();
        if (!out)
            return errorReply("short write to '" + path->text +
                              "'");
        json::Value v = okReply("snapshot");
        v.add("path", json::Value::string(path->text));
        v.add("bytes", json::Value::number(
                           std::uint64_t{state.size()}));
        return v.dump();
    }
    // Inline: the state document is already canonical JSON, so it is
    // spliced verbatim -- parsing it into the reply would be pure
    // overhead and this path is the byte-identity contract's anchor.
    std::string reply = "{\"ok\":true,\"op\":\"snapshot\",\"state\":";
    reply += state;
    reply += "}";
    return reply;
}

std::string
ServeSession::handleRestore(const json::Value &req)
{
    std::string text;
    const json::Value *state = req.get("state");
    const json::Value *path = req.get("path");
    if (state && path)
        return errorReply("restore takes 'state' or 'path', not "
                          "both");
    if (state) {
        text = state->dump();
    } else if (path) {
        if (!path->isString())
            return errorReply("'path' must be a string");
        std::ifstream in(path->text, std::ios::binary);
        if (!in)
            return errorReply("cannot read '" + path->text + "'");
        std::ostringstream buf;
        buf << in.rdbuf();
        text = buf.str();
        // snapshot appends one newline for the benefit of text
        // tools; strip it so the document parses strictly.
        while (!text.empty() && (text.back() == '\n' ||
                                 text.back() == '\r')) {
            text.pop_back();
        }
    } else {
        return errorReply("restore needs a 'state' object or a "
                          "'path' string");
    }

    std::string err;
    if (!engine_->restoreState(text, &err))
        return errorReply("restore rejected: " + err);
    // The restored state did not arrive as journaled events; anchor
    // it as a fresh snapshot generation or recovery would replay the
    // pre-restore history over it.
    if (journal_ && !journal_->rotate(&err))
        return errorReply("restore applied but the journal could "
                          "not rotate: " + err);
    json::Value v = okReply("restore");
    v.add("clock",
          json::Value::number(std::uint64_t{engine_->now()}));
    v.add("leases", json::Value::number(
                        std::uint64_t{engine_->leaseCount()}));
    return v.dump();
}

std::string
ServeSession::handleStats() const
{
    json::Value v = okReply("stats");
    v.add("clock",
          json::Value::number(std::uint64_t{engine_->now()}));
    v.add("pending_events",
          json::Value::number(
              std::uint64_t{engine_->pendingEvents()}));
    engine_->addStatsReply(&v);
    return v.dump();
}

std::string
ServeSession::handleReport() const
{
    // renderJson() is already one canonical line (the byte-identity
    // anchor the chaos harness diffs), so splice it verbatim --
    // minus its trailing newline, which would break the
    // one-response-per-line protocol.
    std::string report = study::renderJson(engine_->finalReport());
    while (!report.empty() &&
           (report.back() == '\n' || report.back() == '\r')) {
        report.pop_back();
    }
    std::string reply = "{\"ok\":true,\"op\":\"report\",\"report\":";
    reply += report;
    reply += "}";
    return reply;
}

} // namespace sharch::engine
