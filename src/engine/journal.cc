#include "engine/journal.hh"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/json.hh"
#include "common/logging.hh"

namespace sharch::engine {

namespace {

/** Record frame: payload length, then crc32(payload), then bytes. */
constexpr std::size_t kFrameHeader = 8;
/** A single event line should never get near this. */
constexpr std::uint32_t kMaxPayload = 16u << 20;

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

void
putU32(char *dst, std::uint32_t v)
{
    dst[0] = static_cast<char>(v & 0xFF);
    dst[1] = static_cast<char>((v >> 8) & 0xFF);
    dst[2] = static_cast<char>((v >> 16) & 0xFF);
    dst[3] = static_cast<char>((v >> 24) & 0xFF);
}

std::uint32_t
getU32(const char *src)
{
    const auto *u = reinterpret_cast<const unsigned char *>(src);
    return static_cast<std::uint32_t>(u[0]) |
           static_cast<std::uint32_t>(u[1]) << 8 |
           static_cast<std::uint32_t>(u[2]) << 16 |
           static_cast<std::uint32_t>(u[3]) << 24;
}

bool
writeAll(int fd, const char *data, std::size_t size)
{
    while (size > 0) {
        const ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

std::string
hex32(std::uint32_t v)
{
    static const char digits[] = "0123456789abcdef";
    std::string s(8, '0');
    for (int i = 7; i >= 0; --i, v >>= 4)
        s[i] = digits[v & 0xF];
    return s;
}

/** fsync the directory so a rename/creat is itself durable. */
void
syncDir(const std::string &dir)
{
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}

/**
 * List the generation numbers present as "<prefix><gen><suffix>",
 * sorted ascending.  Anything else in the directory is ignored.
 */
std::vector<std::uint64_t>
listGenerations(const std::string &dir, const std::string &prefix,
                const std::string &suffix)
{
    std::vector<std::uint64_t> gens;
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return gens;
    while (const dirent *ent = ::readdir(d)) {
        const std::string name = ent->d_name;
        if (name.size() <= prefix.size() + suffix.size() ||
            name.compare(0, prefix.size(), prefix) != 0 ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
            continue;
        }
        const std::string digits = name.substr(
            prefix.size(), name.size() - prefix.size() - suffix.size());
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") !=
                std::string::npos) {
            continue;
        }
        gens.push_back(std::strtoull(digits.c_str(), nullptr, 10));
    }
    ::closedir(d);
    std::sort(gens.begin(), gens.end());
    return gens;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size)
{
    static const std::array<std::uint32_t, 256> table =
        makeCrcTable();
    std::uint32_t crc = 0xFFFFFFFFu;
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

Journal::Journal(JournalConfig cfg) : cfg_(std::move(cfg))
{
    if (const char *n = std::getenv("SHARCH_CRASH_AFTER"))
        crashAfter_ = std::strtoull(n, nullptr, 10);
    if (const char *t = std::getenv("SHARCH_CRASH_TORN"))
        crashTorn_ = *t != '\0' && *t != '0';
}

Journal::~Journal()
{
    close();
}

std::string
Journal::snapPath(std::uint64_t gen) const
{
    return cfg_.dir + "/snap-" + std::to_string(gen) + ".state";
}

std::string
Journal::walPath(std::uint64_t gen) const
{
    return cfg_.dir + "/wal-" + std::to_string(gen) + ".log";
}

bool
Journal::open(EngineBase &engine, JournalRecovery *out,
              std::string *error)
{
    engine_ = &engine;
    JournalRecovery rec;

    struct stat st{};
    if (::stat(cfg_.dir.c_str(), &st) != 0) {
        if (::mkdir(cfg_.dir.c_str(), 0777) != 0) {
            *error = cfg_.dir + ": cannot create journal "
                     "directory: " + std::strerror(errno);
            return false;
        }
    } else if (!S_ISDIR(st.st_mode)) {
        *error = cfg_.dir + ": not a directory";
        return false;
    }

    const std::vector<std::uint64_t> snaps =
        listGenerations(cfg_.dir, "snap-", ".state");
    const std::vector<std::uint64_t> wals =
        listGenerations(cfg_.dir, "wal-", ".log");

    if (snaps.empty() && wals.empty()) {
        // Fresh directory: the engine's pristine state is gen 0.
        rec.fresh = true;
        if (!writeSnapshot(0, engine.saveState(), error) ||
            !openSegment(0, /*fresh=*/true, error)) {
            return false;
        }
        generation_ = 0;
        recordsInSegment_ = 0;
        engine.onDispatch([this](const Event &e, std::uint64_t seq) {
            onEvent(e, seq);
        });
        if (out)
            *out = rec;
        return true;
    }
    if (snaps.empty()) {
        *error = cfg_.dir + ": wal segments but no snapshot -- the "
                 "journal is unrecoverable";
        return false;
    }

    // Newest snapshot that parses and restores cleanly wins; broken
    // ones are warned about and skipped (an older anchor plus its
    // wal suffix reaches the same state).
    std::uint64_t base = 0;
    bool restored = false;
    for (auto it = snaps.rbegin(); it != snaps.rend(); ++it) {
        std::ifstream in(snapPath(*it), std::ios::binary);
        std::ostringstream text;
        text << in.rdbuf();
        std::string err;
        if (!in || !engine.restoreState(text.str(), &err)) {
            rec.warnings.push_back(
                "snap-" + std::to_string(*it) + ".state: " +
                (in ? err : "unreadable") + " -- falling back to an "
                "older snapshot");
            continue;
        }
        base = *it;
        restored = true;
        break;
    }
    if (!restored) {
        *error = cfg_.dir + ": no snapshot could be restored";
        return false;
    }

    // Replay the wal suffix in generation order.  Only the newest
    // segment may end in a torn record.
    std::vector<std::uint64_t> replayGens;
    for (std::uint64_t g : wals)
        if (g >= base)
            replayGens.push_back(g);
    std::uint64_t lastSegment = 0;
    for (std::size_t i = 0; i < replayGens.size(); ++i) {
        const std::uint64_t before = rec.replayed;
        if (!replaySegment(engine, replayGens[i],
                           i + 1 == replayGens.size(), &rec, error)) {
            return false;
        }
        lastSegment = rec.replayed - before;
    }

    // Continue appending to the newest segment (creating it if the
    // crash happened between snapshot and first record).
    generation_ = replayGens.empty() ? base : replayGens.back();
    if (!openSegment(generation_, replayGens.empty(), error))
        return false;
    recordsInSegment_ = lastSegment;
    rec.generation = generation_;
    engine.onDispatch([this](const Event &e, std::uint64_t seq) {
        onEvent(e, seq);
    });
    if (out)
        *out = rec;
    return true;
}

bool
Journal::replaySegment(EngineBase &engine, std::uint64_t gen,
                       bool newest, JournalRecovery *out,
                       std::string *error)
{
    const std::string path = walPath(gen);
    const std::string name = "wal-" + std::to_string(gen) + ".log";
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        *error = name + ": unreadable";
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string data = buf.str();

    const std::size_t magicLen = std::strlen(kJournalMagic);
    if (data.size() < magicLen ||
        data.compare(0, magicLen, kJournalMagic) != 0) {
        *error = name + ": offset 0: bad segment magic (expected "
                 "\"sharch-journal-v1\")";
        return false;
    }

    // A positioned complaint: fatal mid-history, a truncation point
    // in the newest segment (where a crash legitimately tears the
    // final record).
    std::size_t off = magicLen;
    auto torn = [&](const std::string &what) {
        if (!newest) {
            *error = name + ": offset " + std::to_string(off) +
                     ": " + what + " in a non-final segment";
            return false;
        }
        out->warnings.push_back(
            name + ": offset " + std::to_string(off) + ": " + what +
            " -- truncating torn tail");
        out->truncatedTail = true;
        if (::truncate(path.c_str(),
                       static_cast<off_t>(off)) != 0) {
            *error = name + ": cannot truncate torn tail: " +
                     std::strerror(errno);
            return false;
        }
        return true;
    };

    while (off < data.size()) {
        if (data.size() - off < kFrameHeader) {
            return torn("incomplete record header (" +
                        std::to_string(data.size() - off) +
                        " of 8 bytes)");
        }
        const std::uint32_t len = getU32(data.data() + off);
        const std::uint32_t want = getU32(data.data() + off + 4);
        if (len == 0 || len > kMaxPayload) {
            return torn("implausible record length " +
                        std::to_string(len));
        }
        if (data.size() - off - kFrameHeader < len) {
            return torn("record runs past end of file (" +
                        std::to_string(len) + " byte payload, " +
                        std::to_string(data.size() - off -
                                       kFrameHeader) +
                        " available)");
        }
        const char *payload = data.data() + off + kFrameHeader;
        const std::uint32_t got = crc32(payload, len);
        if (got != want) {
            return torn("CRC mismatch (stored " + hex32(want) +
                        ", computed " + hex32(got) + ")");
        }

        json::Value v;
        std::string err;
        const std::string line(payload, len);
        Event e;
        std::uint64_t seq = 0;
        if (!json::parse(line, &v, &err) ||
            !eventFromJson(v, &e, &seq, &err)) {
            // The frame checksummed clean, so this is not tearing:
            // the journal holds a record this build cannot replay.
            *error = name + ": offset " + std::to_string(off) +
                     ": " + err;
            return false;
        }
        engine.replayDispatch(e, seq);
        out->replayed++;
        off += kFrameHeader + len;
    }
    return true;
}

bool
Journal::openSegment(std::uint64_t gen, bool fresh,
                     std::string *error)
{
    if (fd_ >= 0)
        ::close(fd_);
    const std::string path = walPath(gen);
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0666);
    if (fd_ < 0) {
        *error = path + ": cannot open for append: " +
                 std::strerror(errno);
        return false;
    }
    struct stat st{};
    if (::fstat(fd_, &st) == 0 && st.st_size == 0) {
        if (!writeAll(fd_, kJournalMagic,
                      std::strlen(kJournalMagic))) {
            *error = path + ": cannot write segment header: " +
                     std::strerror(errno);
            return false;
        }
        if (cfg_.fsyncEvery > 0)
            ::fsync(fd_);
        if (fresh)
            syncDir(cfg_.dir);
    }
    // open() re-anchors this to the replayed record count so a
    // recovered process rotates at the same cadence.
    recordsInSegment_ = 0;
    return true;
}

bool
Journal::writeSnapshot(std::uint64_t gen, const std::string &state,
                       std::string *error)
{
    const std::string path = snapPath(gen);
    const std::string tmp = path + ".tmp";
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
    if (fd < 0) {
        *error = tmp + ": cannot create snapshot: " +
                 std::strerror(errno);
        return false;
    }
    const bool ok =
        writeAll(fd, state.data(), state.size()) && ::fsync(fd) == 0;
    ::close(fd);
    if (!ok) {
        *error = tmp + ": snapshot write failed: " +
                 std::strerror(errno);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        *error = path + ": cannot publish snapshot: " +
                 std::strerror(errno);
        ::unlink(tmp.c_str());
        return false;
    }
    syncDir(cfg_.dir);
    return true;
}

bool
Journal::rotate(std::string *error)
{
    SHARCH_ASSERT(engine_ && fd_ >= 0,
                  "rotate() needs an open journal");
    const std::uint64_t next = generation_ + 1;
    // Snapshot FIRST: if we crash between the two steps, recovery
    // restores snap-(g+1) and finds wal-(g+1) simply absent.
    if (!writeSnapshot(next, engine_->saveState(), error))
        return false;
    flush();
    if (!openSegment(next, /*fresh=*/true, error))
        return false;
    generation_ = next;
    recordsInSegment_ = 0;
    compact();
    return true;
}

void
Journal::compact()
{
    // Keep the latest two generations: the live one and its
    // predecessor (still useful when the newest snapshot turns out
    // to be damaged).
    for (std::uint64_t g :
         listGenerations(cfg_.dir, "snap-", ".state")) {
        if (g + 1 < generation_)
            ::unlink(snapPath(g).c_str());
    }
    for (std::uint64_t g :
         listGenerations(cfg_.dir, "wal-", ".log")) {
        if (g + 1 < generation_)
            ::unlink(walPath(g).c_str());
    }
    syncDir(cfg_.dir);
}

void
Journal::onEvent(const Event &e, std::uint64_t seq)
{
    if (recordsInSegment_ >= cfg_.rotateEvery) {
        // The hook fires before the event is applied (and after it
        // left the pending queue), so saveState() here is exactly
        // "everything in wal-g, nothing more" -- the event about to
        // be journaled becomes the first record of the new segment.
        std::string err;
        const bool ok = rotate(&err);
        SHARCH_ASSERT(ok, "journal rotation failed: ", err);
    }
    std::string err;
    const bool ok = appendPayload(eventToJson(e, seq).dump(), &err);
    SHARCH_ASSERT(ok, "journal append failed: ", err);
}

bool
Journal::appendPayload(const std::string &payload,
                       std::string *error)
{
    SHARCH_ASSERT(payload.size() <= kMaxPayload,
                  "journal payload implausibly large");
    std::string frame(kFrameHeader, '\0');
    putU32(frame.data(),
           static_cast<std::uint32_t>(payload.size()));
    putU32(frame.data() + 4,
           crc32(payload.data(), payload.size()));
    frame += payload;

    const bool crashNow =
        crashAfter_ > 0 && writes_ + 1 == crashAfter_;
    if (crashNow && crashTorn_) {
        // Chaos harness: tear this record mid-frame, as a real
        // crash between write() and completion would.
        writeAll(fd_, frame.data(), frame.size() / 2);
        ::fsync(fd_);
        ::_exit(137);
    }
    if (!writeAll(fd_, frame.data(), frame.size())) {
        *error = walPath(generation_) + ": " + std::strerror(errno);
        return false;
    }
    recordsInSegment_++;
    appended_++;
    writes_++;
    unsynced_++;
    if (cfg_.fsyncEvery > 0 && unsynced_ >= cfg_.fsyncEvery) {
        ::fsync(fd_);
        unsynced_ = 0;
    }
    if (crashNow)
        ::_exit(137);
    return true;
}

void
Journal::flush()
{
    if (fd_ >= 0 && unsynced_ > 0) {
        ::fsync(fd_);
        unsynced_ = 0;
    }
}

void
Journal::close()
{
    if (fd_ >= 0) {
        flush();
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace sharch::engine
