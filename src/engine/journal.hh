/**
 * @file
 * Write-ahead event journal for the allocation engine (the
 * `sharch-journal-v1` on-disk format).
 *
 * The engine's checkpoint/restore machinery makes a run resumable
 * from explicit Checkpoint events, but a crash between checkpoints
 * still loses everything since the last one.  The journal closes
 * that gap: hooked into EngineBase::onDispatch(), it makes
 * every event durable *before* the event mutates engine state, so a
 * process killed at any instruction boundary can be restarted and
 * replayed to exactly the state it died in -- the final report of
 * the recovered run is byte-identical to the uninterrupted one.
 *
 * On-disk layout (one directory per engine):
 *
 *     snap-<gen>.state   sharch-state-v1 snapshot taken before any
 *                        event in wal-<gen> was applied
 *     wal-<gen>.log      segment header + CRC32-framed records
 *
 * Each segment starts with the magic line `sharch-journal-v1\n`.
 * Every record after it is framed as
 *
 *     u32 payloadLen (LE) | u32 crc32(payload) (LE) | payload
 *
 * where the payload is the eventToJson() line for one dispatched
 * event (kind, cycle, posting order, kind-specific fields).  CRC32
 * is the usual reflected 0xEDB88320 polynomial.
 *
 * Rotation is anchored to snapshots and ordered so no event can
 * fall between the files: when a segment reaches the configured
 * record count, the *next* event first triggers snap-(g+1) -- the
 * state after everything in wal-g -- and only then lands as the
 * first record of wal-(g+1).  Compaction keeps the latest two
 * generations.
 *
 * Recovery (open() on a non-empty directory): load the newest
 * snapshot that parses and restores cleanly, replay every wal
 * segment of that generation and later through the engine's normal
 * event path, and tolerate a torn final record -- but only in the
 * newest segment, where a crash mid-write can legitimately leave
 * one.  The torn tail is truncated with a positioned warning;
 * corruption anywhere else is a hard error.
 *
 * Fault injection for the chaos harness: SHARCH_CRASH_AFTER=<n>
 * calls _exit(137) immediately after the n-th complete journal
 * append, and SHARCH_CRASH_TORN=1 makes that n-th append a torn
 * half-record instead (exercising tail truncation on recovery).
 */

#ifndef SHARCH_ENGINE_JOURNAL_HH
#define SHARCH_ENGINE_JOURNAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine_base.hh"

namespace sharch::engine {

/** First line of every wal segment. */
inline constexpr const char *kJournalMagic = "sharch-journal-v1\n";

/** Reflected CRC-32 (polynomial 0xEDB88320), as used by zip/png. */
std::uint32_t crc32(const void *data, std::size_t size);

struct JournalConfig
{
    std::string dir;
    /**
     * fsync cadence: 0 never syncs (fast, loses the OS buffer on
     * power failure -- process crashes are still safe), 1 syncs
     * every record (the default: full durability), N syncs every
     * N records.
     */
    unsigned fsyncEvery = 1;
    /** Records per segment before rotation cuts a new snapshot. */
    std::uint64_t rotateEvery = 1024;
};

/** What open() found and did (recovery is part of opening). */
struct JournalRecovery
{
    bool fresh = false;          //!< directory had no journal yet
    std::uint64_t generation = 0; //!< segment now appended to
    std::uint64_t replayed = 0;  //!< events re-applied from wal
    bool truncatedTail = false;  //!< newest segment had a torn record
    /** Positioned, non-fatal findings ("wal-3.log: offset 87: ..."). */
    std::vector<std::string> warnings;
};

/**
 * One journal directory bound to one engine.  open() recovers (or
 * initializes) and installs the dispatch hook; from then on every
 * event the engine applies is appended -- and made as durable as the
 * fsync policy promises -- before the mutation happens.
 */
class Journal
{
  public:
    explicit Journal(JournalConfig cfg);
    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /**
     * Create-or-recover the directory, restore @p engine to the
     * journaled state, and start appending.  On success @p out
     * describes what recovery did (including torn-tail warnings the
     * caller should surface).  On failure the engine may hold a
     * partially-restored state and must not be served from.
     */
    bool open(EngineBase &engine, JournalRecovery *out,
              std::string *error);

    /**
     * Cut a new generation now: snapshot the engine's current state
     * and switch appends to a fresh segment.  The serve layer calls
     * this after a successful `restore` request, since the restored
     * state did not flow through the journal as events.
     */
    bool rotate(std::string *error);

    /** fsync anything the cadence policy left buffered. */
    void flush();

    /** Flush and close the segment (the destructor also does this). */
    void close();

    std::uint64_t generation() const { return generation_; }
    /** Records appended by *this process* (excludes replayed). */
    std::uint64_t appended() const { return appended_; }
    const JournalConfig &config() const { return cfg_; }

  private:
    void onEvent(const Event &e, std::uint64_t seq);
    bool appendPayload(const std::string &payload,
                       std::string *error);
    bool writeSnapshot(std::uint64_t gen, const std::string &state,
                       std::string *error);
    bool openSegment(std::uint64_t gen, bool fresh,
                     std::string *error);
    bool replaySegment(EngineBase &engine, std::uint64_t gen,
                       bool newest, JournalRecovery *out,
                       std::string *error);
    void compact();
    std::string snapPath(std::uint64_t gen) const;
    std::string walPath(std::uint64_t gen) const;

    JournalConfig cfg_;
    EngineBase *engine_ = nullptr;
    int fd_ = -1;
    std::uint64_t generation_ = 0;
    std::uint64_t recordsInSegment_ = 0;
    std::uint64_t appended_ = 0;
    unsigned unsynced_ = 0;
    // SHARCH_CRASH_AFTER / SHARCH_CRASH_TORN (chaos harness).
    std::uint64_t crashAfter_ = 0; //!< 0: disabled
    bool crashTorn_ = false;
    std::uint64_t writes_ = 0;
};

} // namespace sharch::engine

#endif // SHARCH_ENGINE_JOURNAL_HH
