/**
 * @file
 * The event-driven allocation engine (ROADMAP item 5).
 *
 * AllocationEngine owns one FabricManager + SpotMarket pair and is
 * the ONLY writer to either: every mutation arrives as a typed Event
 * (event.hh) on a deterministic queue ordered by (cycle, posting
 * order), so identical event streams produce identical hypervisor
 * trajectories regardless of who generated them -- a study script,
 * a replayed fault schedule, or a sharch-serve request stream.
 *
 * Because all state flows through one place, the engine can
 * serialize everything that matters -- occupancy grid, live leases,
 * market book and prices, the event clock, and the still-pending
 * queue -- into a versioned `sharch-state-v1` JSON document and
 * restore it byte-exactly: a run checkpointed mid-stream and resumed
 * in a fresh process emits a final report byte-identical to the
 * uninterrupted run.  That is what makes multi-day churn experiments
 * resumable and the serve daemon restartable.
 */

#ifndef SHARCH_ENGINE_ALLOCATION_ENGINE_HH
#define SHARCH_ENGINE_ALLOCATION_ENGINE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "engine/event.hh"
#include "hyper/fabric_manager.hh"
#include "hyper/spot_market.hh"
#include "study/report.hh"

namespace sharch::engine {

/** The document version saveState() writes and restoreState() reads. */
inline constexpr const char *kStateSchema = "sharch-state-v1";

/** Fixed parameters of one engine (not part of mutable state). */
struct EngineConfig
{
    int fabricWidth = 8;
    int fabricHeight = 8;
    double tolerance = 0.10;   //!< auction clearing tolerance
    unsigned maxRounds = 50;   //!< tatonnement bound per epoch
    double adjustRate = 0.25;  //!< price step per round
    /**
     * When a fault removes leasable capacity, also refund the lost
     * value pro-rata and re-run the auction (SpotMarket::
     * reauctionAfterFailure).  Off: capacity just shrinks and the
     * next AuctionEpoch reprices.
     */
    bool reauctionOnFault = false;
};

/** One admitted tenant: fabric claim + market identity. */
struct Lease
{
    std::uint64_t id = 0; //!< == the fabric AllocationId
    std::string tenant;
    CustomerId customer = 0;
    bool hasCustomer = false; //!< false for fabric-only tenants
    unsigned slices = 0;      //!< current shape (faults may shrink)
    unsigned banks = 0;
    Cycles arrivedAt = 0;
};

/** Monotonic counters over the whole run (serialized state). */
struct EngineStats
{
    std::uint64_t processed = 0;   //!< events consumed
    std::uint64_t arrivals = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;    //!< no contiguous run fit
    std::uint64_t departures = 0;
    std::uint64_t unmatchedDeparts = 0;
    std::uint64_t faults = 0;      //!< newly-faulty strikes
    std::uint64_t heals = 0;
    std::uint64_t evictions = 0;   //!< leases lost to degradation
    std::uint64_t epochs = 0;
    std::uint64_t auctionRounds = 0;
    std::uint64_t checkpoints = 0;
    Cycles reconfigCycles = 0;     //!< degradation + reshape costs
    double refundsPaid = 0.0;
};

/** What processing one event did (the serve layer's result). */
struct EventOutcome
{
    EventKind kind = EventKind::AuctionEpoch;
    bool applied = false;      //!< admitted / released / newly-faulty
    std::uint64_t lease = 0;   //!< lease touched (0: none)
    Cycles cost = 0;           //!< reconfiguration cycles (Reshape)
    std::string detail;        //!< human-readable "why not" etc.
};

class AllocationEngine
{
  public:
    /**
     * @param opt shared performance surface (bids need P(c, s))
     * @param cfg geometry + auction policy; market capacity starts
     *            at the fabric's totals
     */
    AllocationEngine(UtilityOptimizer &opt, const EngineConfig &cfg);

    // --- The event API (the only mutation path) ------------------

    /**
     * Enqueue @p e.  Events may be posted at any cycle (including
     * the past: they fire on the next run, still after everything
     * already processed).  @return the posting order, which breaks
     * cycle ties deterministically.
     */
    std::uint64_t post(Event e);

    /** Expand a fault schedule into FaultStrike/Heal events. */
    void postFaultSchedule(const std::vector<fault::FaultEvent> &fs);

    /** Process every queued event with at <= @p cycle, in order. */
    void runUntil(Cycles cycle);

    /** Drain the queue completely. */
    void run();

    /**
     * Post @p e and process the queue up to its cycle immediately
     * (the serve path: request in, outcome out).
     */
    EventOutcome execute(Event e);

    /**
     * Reshape a live lease in place (grow/shrink Slices and banks).
     * Routed through the event queue as an EventKind::Reshape at the
     * current clock, so journals and checkpoints capture it like any
     * other mutation.
     * @return the reconfiguration cost, or nullopt when the lease is
     *         unknown or the fabric cannot satisfy the new shape.
     */
    std::optional<Cycles> reshapeLease(std::uint64_t lease,
                                       unsigned slices,
                                       unsigned banks);

    /**
     * Re-apply one event exactly as a previous process dispatched it
     * (journal recovery).  The pending copy with the same posting
     * order -- restored from the snapshot's queue section -- is
     * removed first so the event is not applied twice, and the
     * dispatch hook is NOT invoked (the record is already durable).
     */
    void replayDispatch(const Event &e, std::uint64_t seq);

    // --- Queries -------------------------------------------------

    Cycles now() const { return clock_; }
    std::size_t pendingEvents() const { return queue_.size(); }
    const EngineConfig &config() const { return cfg_; }
    const FabricManager &fabric() const { return fabric_; }
    const SpotMarket &market() const { return market_; }
    const EngineStats &stats() const { return stats_; }
    const std::map<std::uint64_t, Lease> &leases() const
    {
        return leases_;
    }
    const EventOutcome &lastOutcome() const { return lastOutcome_; }

    // --- Checkpoint / restore ------------------------------------

    /**
     * The full engine state as one sharch-state-v1 JSON line.  A
     * pure function of the processed event history: byte-identical
     * across runs, thread counts, and checkpoint/resume cuts.
     */
    std::string saveState() const;

    /**
     * Replace the engine's state with a parsed sharch-state-v1
     * document.  Validation is strict -- schema tag, field types,
     * fabric claim consistency, lease/customer cross-references --
     * and on failure the engine is untouched and @p error names the
     * first offending record (actionable, not just "bad JSON").
     */
    bool restoreState(const std::string &text, std::string *error);

    /**
     * State captured by the most recent Checkpoint event (empty
     * until one fires).  Taken *after* the event is consumed, so
     * restoring it resumes with exactly the remaining stream.
     */
    const std::string &lastCheckpoint() const
    {
        return lastCheckpoint_;
    }
    const std::string &lastCheckpointLabel() const
    {
        return lastCheckpointLabel_;
    }

    /** Hook invoked on every Checkpoint event (label, state). */
    using CheckpointHook =
        std::function<void(const std::string &, const std::string &)>;
    void onCheckpoint(CheckpointHook hook)
    {
        checkpointHook_ = std::move(hook);
    }

    /**
     * Hook invoked immediately *before* each event is applied, with
     * the event and its posting order -- the write-ahead point.  A
     * journal appends (and fsyncs) the record here, so a crash at
     * any later instant can only lose events that were never applied
     * or leave a torn final record; either way replay reconverges.
     * Not invoked during replayDispatch().
     */
    using DispatchHook =
        std::function<void(const Event &, std::uint64_t)>;
    void onDispatch(DispatchHook hook)
    {
        dispatchHook_ = std::move(hook);
    }

    /**
     * Cross-layer consistency audit: the fabric occupancy grids
     * match the allocation book (FabricManager::checkConsistency),
     * the market book and prices are sane (SpotMarket::
     * checkConsistency), leases and fabric allocations are a
     * bijection with matching shapes, every lease's customer handle
     * resolves to an active bidder, and the occupancy arithmetic
     * closes (leased + free + faulty == total, for Slices and
     * banks).  Recovery refuses to serve a state that fails this.
     * @return false with @p error naming the first violation.
     */
    bool checkInvariants(std::string *error) const;

    /**
     * The deterministic end-of-run report (sharch-report-v1):
     * counters, prices, live leases, fabric health.  Two engines
     * that processed the same events render identical bytes -- the
     * property the checkpoint tests pin down.
     */
    study::Report finalReport() const;

  private:
    struct Queued
    {
        Event event;
        std::uint64_t seq = 0;
    };

    UtilityOptimizer *opt_;
    EngineConfig cfg_;
    FabricManager fabric_;
    SpotMarket market_;
    std::map<std::uint64_t, Lease> leases_;
    std::vector<Queued> queue_; //!< min-heap on (at, seq)
    Cycles clock_ = 0;
    std::uint64_t nextSeq_ = 0;
    EngineStats stats_;
    EventOutcome lastOutcome_;
    std::string lastCheckpoint_;
    std::string lastCheckpointLabel_;
    CheckpointHook checkpointHook_;
    DispatchHook dispatchHook_;
    bool replaying_ = false; //!< suppress the hook during recovery

    static bool laterThan(const Queued &a, const Queued &b);
    void dispatch(const Event &e, std::uint64_t seq);
    void handleArrive(const Event &e);
    void handleDepart(const Event &e);
    void handleReshape(const Event &e);
    void handleFault(const Event &e);
    void handleHeal(const Event &e);
    void handleEpoch();
    void handleCheckpoint(const Event &e);
    void degradeBookkeeping(const std::vector<DegradeAction> &acts);
};

} // namespace sharch::engine

#endif // SHARCH_ENGINE_ALLOCATION_ENGINE_HH
