/**
 * @file
 * The event-driven allocation engine (ROADMAP item 5).
 *
 * AllocationEngine owns one FabricManager + SpotMarket pair and is
 * the ONLY writer to either: every mutation arrives as a typed Event
 * (event.hh) on a deterministic queue ordered by (cycle, posting
 * order), so identical event streams produce identical hypervisor
 * trajectories regardless of who generated them -- a study script,
 * a replayed fault schedule, or a sharch-serve request stream.
 *
 * Because all state flows through one place, the engine can
 * serialize everything that matters -- occupancy grid, live leases,
 * market book and prices, the event clock, and the still-pending
 * queue -- into a versioned `sharch-state-v1` JSON document and
 * restore it byte-exactly: a run checkpointed mid-stream and resumed
 * in a fresh process emits a final report byte-identical to the
 * uninterrupted run.  That is what makes multi-day churn experiments
 * resumable and the serve daemon restartable.
 *
 * The queue/clock/hook machinery itself lives in EngineBase
 * (engine_base.hh), shared with the fleet engine; this class adds
 * the single-chip event semantics and state document.
 */

#ifndef SHARCH_ENGINE_ALLOCATION_ENGINE_HH
#define SHARCH_ENGINE_ALLOCATION_ENGINE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "engine/engine_base.hh"
#include "engine/event.hh"
#include "hyper/fabric_manager.hh"
#include "hyper/spot_market.hh"
#include "study/report.hh"

namespace sharch::engine {

/** Fixed parameters of one engine (not part of mutable state). */
struct EngineConfig
{
    int fabricWidth = 8;
    int fabricHeight = 8;
    double tolerance = 0.10;   //!< auction clearing tolerance
    unsigned maxRounds = 50;   //!< tatonnement bound per epoch
    double adjustRate = 0.25;  //!< price step per round
    /**
     * When a fault removes leasable capacity, also refund the lost
     * value pro-rata and re-run the auction (SpotMarket::
     * reauctionAfterFailure).  Off: capacity just shrinks and the
     * next AuctionEpoch reprices.
     */
    bool reauctionOnFault = false;
    /** Pending-event bound: posts past it are refused (0: default). */
    std::size_t maxPending = kDefaultMaxPending;
};

/** One admitted tenant: fabric claim + market identity. */
struct Lease
{
    std::uint64_t id = 0; //!< == the fabric AllocationId
    std::string tenant;
    CustomerId customer = 0;
    bool hasCustomer = false; //!< false for fabric-only tenants
    unsigned slices = 0;      //!< current shape (faults may shrink)
    unsigned banks = 0;
    Cycles arrivedAt = 0;
};

class AllocationEngine : public EngineBase
{
  public:
    /**
     * @param opt shared performance surface (bids need P(c, s))
     * @param cfg geometry + auction policy; market capacity starts
     *            at the fabric's totals
     */
    AllocationEngine(UtilityOptimizer &opt, const EngineConfig &cfg);

    /** Expand a fault schedule into FaultStrike/Heal events. */
    void postFaultSchedule(const std::vector<fault::FaultEvent> &fs);

    // --- Queries -------------------------------------------------

    const EngineConfig &config() const { return cfg_; }
    const FabricManager &fabric() const { return fabric_; }
    const SpotMarket &market() const { return market_; }
    const std::map<std::uint64_t, Lease> &leases() const
    {
        return leases_;
    }

    // --- EngineBase state contract -------------------------------

    std::string saveState() const override;
    bool restoreState(const std::string &text,
                      std::string *error) override;

    /**
     * Cross-layer consistency audit: the fabric occupancy grids
     * match the allocation book (FabricManager::checkConsistency),
     * the market book and prices are sane (SpotMarket::
     * checkConsistency), leases and fabric allocations are a
     * bijection with matching shapes, every lease's customer handle
     * resolves to an active bidder, and the occupancy arithmetic
     * closes (leased + free + faulty == total, for Slices and
     * banks).  Recovery refuses to serve a state that fails this.
     */
    bool checkInvariants(std::string *error) const override;

    study::Report finalReport() const override;

    bool hasLease(std::uint64_t id) const override
    {
        return leases_.count(id) != 0;
    }
    std::size_t leaseCount() const override { return leases_.size(); }
    void addPriceReply(json::Value *reply) const override;
    void addStatsReply(json::Value *reply) const override;

  protected:
    void dispatchEvent(const Event &e) override;

  private:
    UtilityOptimizer *opt_;
    EngineConfig cfg_;
    FabricManager fabric_;
    SpotMarket market_;
    std::map<std::uint64_t, Lease> leases_;

    void handleArrive(const Event &e);
    void handleDepart(const Event &e);
    void handleReshape(const Event &e);
    void handleFault(const Event &e);
    void handleHeal(const Event &e);
    void handleEpoch();
    void degradeBookkeeping(const std::vector<DegradeAction> &acts);
};

} // namespace sharch::engine

#endif // SHARCH_ENGINE_ALLOCATION_ENGINE_HH
