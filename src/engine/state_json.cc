#include "engine/state_json.hh"

#include "econ/market.hh"
#include "trace/profile.hh"

namespace sharch::engine {

namespace {

bool
fail(std::string *error, const std::string &what)
{
    if (error)
        *error = what;
    return false;
}

bool
fieldU64(const json::Value &v, const char *key, std::uint64_t *out,
         std::string *error)
{
    const json::Value *f = v.get(key);
    if (!f || !f->asU64(out))
        return fail(error, std::string(key) +
                               " missing or not an unsigned integer");
    return true;
}

bool
fieldI64(const json::Value &v, const char *key, std::int64_t *out,
         std::string *error)
{
    const json::Value *f = v.get(key);
    if (!f || !f->asI64(out))
        return fail(error,
                    std::string(key) + " missing or not an integer");
    return true;
}

bool
fieldDouble(const json::Value &v, const char *key, double *out,
            std::string *error)
{
    const json::Value *f = v.get(key);
    if (!f || !f->isNumber())
        return fail(error,
                    std::string(key) + " missing or not a number");
    *out = f->asDouble();
    return true;
}

json::Value
coordList(const std::vector<Coord> &coords)
{
    json::Value a = json::Value::array();
    for (const Coord &c : coords) {
        json::Value &pair = a.push(json::Value::array());
        pair.push(json::Value::number(std::int64_t{c.x}));
        pair.push(json::Value::number(std::int64_t{c.y}));
    }
    return a;
}

bool
fieldCoords(const json::Value &v, const char *key,
            std::vector<Coord> *out, std::string *error)
{
    const json::Value *f = v.get(key);
    if (!f || !f->isArray())
        return fail(error,
                    std::string(key) + " missing or not an array");
    out->clear();
    for (std::size_t i = 0; i < f->items.size(); ++i) {
        const json::Value &pair = f->items[i];
        std::int64_t x = 0, y = 0;
        if (!pair.isArray() || pair.items.size() != 2 ||
            !pair.items[0].asI64(&x) || !pair.items[1].asI64(&y)) {
            return fail(error, std::string(key) + "[" +
                                   std::to_string(i) +
                                   "] is not an [x,y] pair");
        }
        out->push_back(
            Coord{static_cast<int>(x), static_cast<int>(y)});
    }
    return true;
}

} // namespace

json::Value
fabricToJson(const FabricSnapshot &fs)
{
    json::Value fab = json::Value::object();
    fab.add("width", json::Value::number(std::int64_t{fs.width}));
    fab.add("height", json::Value::number(std::int64_t{fs.height}));
    fab.add("next_id", json::Value::number(fs.next));
    json::Value &allocs =
        fab.add("allocations", json::Value::array());
    for (const FabricAllocation &fa : fs.allocations) {
        json::Value &a = allocs.push(json::Value::object());
        a.add("id", json::Value::number(fa.id));
        a.add("row", json::Value::number(std::int64_t{fa.slices.row}));
        a.add("col", json::Value::number(std::int64_t{fa.slices.col}));
        a.add("count", json::Value::number(fa.slices.count));
        a.add("banks", coordList(fa.banks));
    }
    fab.add("faulty_slices", coordList(fs.faultySliceTiles));
    fab.add("faulty_banks", coordList(fs.faultyBankTiles));
    fab.add("faulty_links", coordList(fs.faultyLinkTiles));
    return fab;
}

bool
fabricFromJson(const json::Value &fab, const std::string &prefix,
               FabricSnapshot *out, std::string *error)
{
    if (!fab.isObject())
        return fail(error, prefix + " missing or not an object");
    FabricSnapshot fs;
    std::int64_t width = 0, height = 0;
    if (!fieldI64(fab, "width", &width, error) ||
        !fieldI64(fab, "height", &height, error) ||
        !fieldU64(fab, "next_id", &fs.next, error) ||
        !fieldCoords(fab, "faulty_slices", &fs.faultySliceTiles,
                     error) ||
        !fieldCoords(fab, "faulty_banks", &fs.faultyBankTiles,
                     error) ||
        !fieldCoords(fab, "faulty_links", &fs.faultyLinkTiles,
                     error)) {
        if (error)
            *error = prefix + "." + *error;
        return false;
    }
    fs.width = static_cast<int>(width);
    fs.height = static_cast<int>(height);
    const json::Value *allocs = fab.get("allocations");
    if (!allocs || !allocs->isArray())
        return fail(error, prefix +
                               ".allocations missing or not an array");
    for (std::size_t i = 0; i < allocs->items.size(); ++i) {
        const json::Value &a = allocs->items[i];
        const std::string where =
            prefix + ".allocations[" + std::to_string(i) + "]: ";
        if (!a.isObject())
            return fail(error, where + "not an object");
        FabricAllocation fa;
        std::int64_t row = 0, col = 0;
        std::uint64_t count = 0;
        std::string sub;
        if (!fieldU64(a, "id", &fa.id, &sub) ||
            !fieldI64(a, "row", &row, &sub) ||
            !fieldI64(a, "col", &col, &sub) ||
            !fieldU64(a, "count", &count, &sub) ||
            !fieldCoords(a, "banks", &fa.banks, &sub)) {
            return fail(error, where + sub);
        }
        fa.slices.row = static_cast<int>(row);
        fa.slices.col = static_cast<int>(col);
        fa.slices.count = static_cast<unsigned>(count);
        fs.allocations.push_back(std::move(fa));
    }
    *out = std::move(fs);
    return true;
}

json::Value
marketStateToJson(const SpotMarketSnapshot &ms)
{
    json::Value mkt = json::Value::object();
    mkt.add("slice_capacity",
            json::Value::number(ms.sliceCapacity));
    mkt.add("bank_capacity", json::Value::number(ms.bankCapacity));
    mkt.add("round", json::Value::number(ms.round));
    mkt.add("prices", marketToJson(ms.prices));
    json::Value &book = mkt.add("customers", json::Value::array());
    for (const SpotCustomer &c : ms.customers) {
        json::Value &v = book.push(json::Value::object());
        v.add("name", json::Value::string(c.name));
        v.add("benchmark", json::Value::string(c.benchmark));
        v.add("utility",
              json::Value::string(utilityName(c.utility)));
        v.add("budget", json::Value::number(c.budget));
        v.add("active", json::Value::boolean_(c.active));
    }
    return mkt;
}

bool
marketStateFromJson(const json::Value &mkt, const std::string &prefix,
                    SpotMarketSnapshot *out, std::string *error)
{
    if (!mkt.isObject())
        return fail(error, prefix + " missing or not an object");
    SpotMarketSnapshot ms;
    std::uint64_t round = 0;
    if (!fieldDouble(mkt, "slice_capacity", &ms.sliceCapacity,
                     error) ||
        !fieldDouble(mkt, "bank_capacity", &ms.bankCapacity,
                     error) ||
        !fieldU64(mkt, "round", &round, error)) {
        if (error)
            *error = prefix + "." + *error;
        return false;
    }
    ms.round = static_cast<unsigned>(round);
    if (ms.sliceCapacity <= 0.0 || ms.bankCapacity <= 0.0)
        return fail(error,
                    prefix + ": capacities must be positive (a "
                    "provider with nothing to sell has no market)");
    const json::Value *prices = mkt.get("prices");
    std::string merr;
    if (!prices || !marketFromJson(*prices, &ms.prices, &merr))
        return fail(error, prefix + ".prices: " +
                               (prices ? merr : "missing"));
    const json::Value *book = mkt.get("customers");
    if (!book || !book->isArray())
        return fail(error, prefix +
                               ".customers missing or not an array");
    for (std::size_t i = 0; i < book->items.size(); ++i) {
        const json::Value &c = book->items[i];
        const std::string where =
            prefix + ".customers[" + std::to_string(i) + "]: ";
        if (!c.isObject())
            return fail(error, where + "not an object");
        SpotCustomer sc;
        const json::Value *name = c.get("name");
        const json::Value *benchmark = c.get("benchmark");
        const json::Value *utility = c.get("utility");
        const json::Value *budget = c.get("budget");
        const json::Value *active = c.get("active");
        if (!name || !name->isString())
            return fail(error, where + "name missing");
        if (!benchmark || !benchmark->isString())
            return fail(error, where + "benchmark missing");
        if (!hasProfile(benchmark->text))
            return fail(error, where + "unknown benchmark '" +
                                   benchmark->text + "'");
        if (!utility || !utility->isString() ||
            !parseUtilityName(utility->text, &sc.utility)) {
            return fail(error, where + "unknown utility");
        }
        if (!budget || !budget->isNumber())
            return fail(error, where + "budget missing");
        if (!active || !active->isBool())
            return fail(error, where + "active missing");
        sc.name = name->text;
        sc.benchmark = benchmark->text;
        sc.budget = budget->asDouble();
        sc.active = active->boolean;
        ms.customers.push_back(std::move(sc));
    }
    *out = std::move(ms);
    return true;
}

} // namespace sharch::engine
