#include "common/math_util.hh"

#include <cmath>

#include "common/logging.hh"

namespace sharch {

double
geometricMean(std::span<const double> values)
{
    SHARCH_ASSERT(!values.empty(), "geometricMean of empty set");
    double acc = 0.0;
    for (double v : values) {
        SHARCH_ASSERT(v > 0.0, "geometricMean requires positive values");
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(values.size()));
}

double
arithmeticMean(std::span<const double> values)
{
    SHARCH_ASSERT(!values.empty(), "arithmeticMean of empty set");
    double acc = 0.0;
    for (double v : values)
        acc += v;
    return acc / static_cast<double>(values.size());
}

bool
isPow2(std::uint64_t x)
{
    return (x & (x - 1)) == 0;
}

unsigned
floorLog2(std::uint64_t x)
{
    SHARCH_ASSERT(x > 0, "floorLog2(0)");
    unsigned r = 0;
    while (x >>= 1)
        ++r;
    return r;
}

unsigned
ceilLog2(std::uint64_t x)
{
    SHARCH_ASSERT(x > 0, "ceilLog2(0)");
    const unsigned f = floorLog2(x);
    return isPow2(x) ? f : f + 1;
}

std::uint64_t
ceilPow2(std::uint64_t x)
{
    SHARCH_ASSERT(x > 0, "ceilPow2(0)");
    return std::uint64_t{1} << ceilLog2(x);
}

std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    SHARCH_ASSERT(b > 0, "divCeil by zero");
    return (a + b - 1) / b;
}

double
safeDiv(double a, double b, double fallback)
{
    return b == 0.0 ? fallback : a / b;
}

} // namespace sharch
