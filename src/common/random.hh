/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in sharch (trace synthesis, tie breaking)
 * flows through Rng so that a given seed reproduces a simulation
 * cycle-for-cycle.  The generator is xoshiro256**, which is fast,
 * well-distributed, and trivially serializable.
 *
 * The draw primitives (next, nextBounded, nextDouble, nextBool) are
 * defined inline: trace generation draws several of them per emitted
 * instruction, and with the streaming pipeline that is the simulator's
 * per-instruction hot path.  The inline bodies are bit-identical to
 * the historical out-of-line ones -- every golden file and disk-cache
 * row depends on that.
 */

#ifndef SHARCH_COMMON_RANDOM_HH
#define SHARCH_COMMON_RANDOM_HH

#include <array>
#include <cmath>
#include <cstdint>

#include "common/logging.hh"

namespace sharch {

/** Deterministic xoshiro256** generator. */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit value. */
    explicit Rng(std::uint64_t seed = 0x5eed5eedULL);

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) without modulo bias. bound > 0. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        SHARCH_DCHECK(bound > 0, "nextBounded requires a positive bound");
        // Power-of-two bounds (the common case in trace synthesis)
        // need no rejection: the generic threshold -bound % bound is 0
        // and r % bound == r & (bound - 1), so this path consumes the
        // same single draw and returns the same value.
        if ((bound & (bound - 1)) == 0)
            return next() & (bound - 1);
        // Rejection sampling to remove modulo bias.
        const std::uint64_t threshold = -bound % bound;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of true. */
    bool
    nextBool(double p)
    {
        return nextDouble() < p;
    }

    /**
     * Geometric draw: number of failures before the first success with
     * success probability p in (0, 1]; returns a value >= 0.
     */
    std::uint64_t nextGeometric(double p);

    /** Exponentially distributed draw with the given mean (> 0). */
    double nextExponential(double mean);

    /** Zipf-like draw over [0, n) with exponent alpha via inversion. */
    std::uint64_t nextZipf(std::uint64_t n, double alpha);

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_;
};

/**
 * A Zipf distribution with precomputed inversion constants.
 *
 * Rng::nextZipf recomputes pow(n, 1 - alpha) on every draw; a trace
 * generator draws from the same (n, alpha) pair millions of times, so
 * hoisting the constants halves the pow() count.  draw() performs the
 * identical floating-point operations on identical values, so its
 * results are bit-for-bit the same as Rng::nextZipf(n, alpha).
 */
class ZipfDist
{
  public:
    ZipfDist(std::uint64_t n, double alpha);

    std::uint64_t
    draw(Rng &rng) const
    {
        if (n_ == 1)
            return 0;
        const double u = rng.nextDouble();
        if (unitAlpha_) {
            const double v = std::pow(static_cast<double>(n_), u);
            const auto k = static_cast<std::uint64_t>(v) - 1;
            return k >= n_ ? n_ - 1 : k;
        }
        const double v = std::pow(u * (nmax_ - 1.0) + 1.0, invExp_);
        auto k = static_cast<std::uint64_t>(v);
        if (k >= n_)
            k = n_ - 1;
        return k;
    }

    std::uint64_t n() const { return n_; }

  private:
    std::uint64_t n_;
    bool unitAlpha_;  //!< alpha == 1.0 uses the simpler inversion
    double nmax_ = 0.0;   //!< pow(n, 1 - alpha)
    double invExp_ = 0.0; //!< 1 / (1 - alpha)
};

} // namespace sharch

#endif // SHARCH_COMMON_RANDOM_HH
