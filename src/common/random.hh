/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in sharch (trace synthesis, tie breaking)
 * flows through Rng so that a given seed reproduces a simulation
 * cycle-for-cycle.  The generator is xoshiro256**, which is fast,
 * well-distributed, and trivially serializable.
 */

#ifndef SHARCH_COMMON_RANDOM_HH
#define SHARCH_COMMON_RANDOM_HH

#include <array>
#include <cstdint>

namespace sharch {

/** Deterministic xoshiro256** generator. */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit value. */
    explicit Rng(std::uint64_t seed = 0x5eed5eedULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) without modulo bias. bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of true. */
    bool nextBool(double p);

    /**
     * Geometric draw: number of failures before the first success with
     * success probability p in (0, 1]; returns a value >= 0.
     */
    std::uint64_t nextGeometric(double p);

    /** Exponentially distributed draw with the given mean (> 0). */
    double nextExponential(double mean);

    /** Zipf-like draw over [0, n) with exponent alpha via inversion. */
    std::uint64_t nextZipf(std::uint64_t n, double alpha);

  private:
    std::array<std::uint64_t, 4> state_;
};

} // namespace sharch

#endif // SHARCH_COMMON_RANDOM_HH
