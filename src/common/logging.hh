/**
 * @file
 * Logging and error-reporting facilities in the gem5 style.
 *
 * panic()  -- an internal invariant of the simulator was violated; this
 *             is a bug in sharch itself.  Aborts.
 * fatal()  -- the simulation cannot continue because of a user error
 *             (bad configuration, invalid arguments).  Exits cleanly
 *             with an error code.
 * warn()   -- something is suspicious but the simulation continues.
 * inform() -- a purely informational status message.
 */

#ifndef SHARCH_COMMON_LOGGING_HH
#define SHARCH_COMMON_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace sharch {

/** Verbosity levels for runtime log filtering. */
enum class LogLevel { Silent = 0, Warn = 1, Info = 2, Debug = 3 };

/** Get the process-wide log level. */
LogLevel logLevel();

/** Set the process-wide log level (defaults to Warn). */
void setLogLevel(LogLevel level);

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Concatenate any streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

} // namespace sharch

/** Abort: internal simulator bug. */
#define SHARCH_PANIC(...) \
    ::sharch::detail::panicImpl(__FILE__, __LINE__, \
                                ::sharch::detail::concat(__VA_ARGS__))

/** Exit: unrecoverable user/configuration error. */
#define SHARCH_FATAL(...) \
    ::sharch::detail::fatalImpl(__FILE__, __LINE__, \
                                ::sharch::detail::concat(__VA_ARGS__))

/** Non-fatal warning. */
#define SHARCH_WARN(...) \
    ::sharch::detail::warnImpl(::sharch::detail::concat(__VA_ARGS__))

/** Informational message. */
#define SHARCH_INFORM(...) \
    ::sharch::detail::informImpl(::sharch::detail::concat(__VA_ARGS__))

/** Debug-level message. */
#define SHARCH_DEBUG(...) \
    ::sharch::detail::debugImpl(::sharch::detail::concat(__VA_ARGS__))

/** Invariant check that survives NDEBUG builds; panics with a message. */
#define SHARCH_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::sharch::detail::panicImpl(__FILE__, __LINE__, \
                ::sharch::detail::concat("assertion failed: ", #cond, \
                                         " ", ##__VA_ARGS__)); \
        } \
    } while (0)

/**
 * Debug-only invariant check for per-instruction hot loops (network
 * injection, bank selection, ring indexing).  Identical to
 * SHARCH_ASSERT in debug builds; compiles to nothing under NDEBUG so
 * Release / RelWithDebInfo throughput reflects what a production build
 * does.  Use SHARCH_ASSERT for construction-time and cold-path checks
 * -- those must hold in every build.
 */
#ifdef NDEBUG
#define SHARCH_DCHECK(cond, ...) \
    do { \
    } while (0)
#else
#define SHARCH_DCHECK(cond, ...) SHARCH_ASSERT(cond, ##__VA_ARGS__)
#endif

#endif // SHARCH_COMMON_LOGGING_HH
