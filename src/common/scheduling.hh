/**
 * @file
 * Generic cycle-slot scheduling primitives shared by the
 * microarchitecture structures and the on-chip networks.
 */

#ifndef SHARCH_COMMON_SCHEDULING_HH
#define SHARCH_COMMON_SCHEDULING_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace sharch {

/**
 * A unit with @p width issue slots per cycle that may be claimed out
 * of order: an operation ready at cycle t takes the first cycle >= t
 * with a free slot, even if later operations already claimed later
 * cycles.  Used for ALU/LSU/cache ports and network injection ports,
 * all of which see non-monotonic request times from the program-order
 * timing walk.
 *
 * Representation: a power-of-two sliding-window ring buffer of
 * per-cycle grant counts indexed by `cycle & kWindowMask`, valid over
 * [base_, base_ + kWindow).  schedule() is O(1) allocation-free in
 * steady state -- the historical std::map representation paid a node
 * allocation and a rebalance on *every* committed instruction (this
 * is the per-instruction hot path of the whole simulator).
 *
 * Grant semantics are bit-identical to the map version, which is kept
 * as a reference implementation under tests/ and checked by a
 * randomized differential test:
 *
 *  - a request ready below the carried watermark is clamped up to it
 *    (the map pruned entries below the watermark, so they could never
 *    be claimed again);
 *  - the watermark advances exactly as before: when a grant lands
 *    2*kLag past it, it jumps to grant - kLag;
 *  - a pathological ready-time spread (a request beyond the window)
 *    slides the window forward, recycling only slots that are already
 *    -- or by this grant's watermark update become -- unreachable.
 *    kWindow == 2*kLag makes that recycling provably dead (see
 *    slide() in the .cc).
 */
class SlottedPort
{
  public:
    explicit SlottedPort(std::uint32_t width = 1);

    /**
     * Claim a slot at the first free cycle >= @p ready.
     *
     * Defined inline: this is called several times per committed
     * instruction (ALU/LSU/cache ports, network injection), and the
     * call overhead of the out-of-line version was measurable in the
     * end-to-end instr/s rate.  Semantics are unchanged.
     */
    Cycles
    schedule(Cycles ready)
    {
        Cycles c = ready > watermark_ ? ready : watermark_;
        for (;;) {
            if (c >= base_ + kWindow) {
                // Overflow fallback: a pathological ready-time spread
                // (or a fully saturated window) ran past the ring.
                slide(c + 1 - kWindow);
            }
            std::uint8_t &used = ring_[c & kWindowMask];
            if (used < width_) {
                ++used;
                break;
            }
            ++c;
        }
        // Carry the watermark: slots far behind the scheduling
        // frontier can never be claimed again (ready times trail the
        // frontier by a bounded window).  Same policy the historical
        // map representation enforced by erasing entries below
        // now - kLag.
        if (c >= watermark_ + 2 * kLag)
            watermark_ = c - kLag;
        return c;
    }

    void reset();

    /** Watermark-carry distance (see prune policy above). */
    static constexpr Cycles kLag = 4096;
    /** Ring capacity in cycles; must equal 2*kLag (proof in slide()). */
    static constexpr Cycles kWindow = 2 * kLag;
    static constexpr Cycles kWindowMask = kWindow - 1;
    static_assert((kWindow & (kWindow - 1)) == 0,
                  "window must be a power of two for mask indexing");

  private:
    std::uint32_t width_;
    std::vector<std::uint8_t> ring_; //!< grants per cycle, windowed
    Cycles base_ = 0;                //!< cycle of the window start
    Cycles watermark_ = 0;           //!< grant floor (carried)

    void slide(Cycles new_base);
};

} // namespace sharch

#endif // SHARCH_COMMON_SCHEDULING_HH
