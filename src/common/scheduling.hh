/**
 * @file
 * Generic cycle-slot scheduling primitives shared by the
 * microarchitecture structures and the on-chip networks.
 */

#ifndef SHARCH_COMMON_SCHEDULING_HH
#define SHARCH_COMMON_SCHEDULING_HH

#include <cstdint>
#include <map>

#include "common/types.hh"

namespace sharch {

/**
 * A unit with @p width issue slots per cycle that may be claimed out
 * of order: an operation ready at cycle t takes the first cycle >= t
 * with a free slot, even if later operations already claimed later
 * cycles.  Used for ALU/LSU/cache ports and network injection ports,
 * all of which see non-monotonic request times from the program-order
 * timing walk.
 */
class SlottedPort
{
  public:
    explicit SlottedPort(std::uint32_t width = 1);

    /** Claim a slot at the first free cycle >= @p ready. */
    Cycles schedule(Cycles ready);

    void reset();

  private:
    std::uint32_t width_;
    std::map<Cycles, std::uint32_t> used_; //!< cycle -> slots taken
    Cycles watermark_ = 0;                 //!< prune below this

    void prune(Cycles now);
};

} // namespace sharch

#endif // SHARCH_COMMON_SCHEDULING_HH
