#include "common/json.hh"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace sharch::json {

const Value *
Value::get(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

double
Value::asDouble() const
{
    if (kind != Kind::Number)
        return 0.0;
    return std::strtod(text.c_str(), nullptr);
}

bool
Value::asU64(std::uint64_t *out) const
{
    if (kind != Kind::Number || text.empty() || text[0] == '-')
        return false;
    for (char c : text) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false; // fractions/exponents are not exact u64s
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || *end != '\0')
        return false;
    *out = v;
    return true;
}

bool
Value::asI64(std::int64_t *out) const
{
    if (kind != Kind::Number || text.empty())
        return false;
    const std::size_t start = text[0] == '-' ? 1 : 0;
    if (start == text.size())
        return false;
    for (std::size_t i = start; i < text.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(text[i])))
            return false;
    }
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (errno != 0 || *end != '\0')
        return false;
    *out = v;
    return true;
}

void
Value::write(std::string *out) const
{
    switch (kind) {
      case Kind::Null:
        *out += "null";
        break;
      case Kind::Boolean:
        *out += boolean ? "true" : "false";
        break;
      case Kind::Number:
        *out += text;
        break;
      case Kind::String:
        *out += '"';
        *out += escape(text);
        *out += '"';
        break;
      case Kind::Array: {
        *out += '[';
        bool first = true;
        for (const Value &v : items) {
            if (!first)
                *out += ',';
            first = false;
            v.write(out);
        }
        *out += ']';
        break;
      }
      case Kind::Object: {
        *out += '{';
        bool first = true;
        for (const auto &[k, v] : members) {
            if (!first)
                *out += ',';
            first = false;
            *out += '"';
            *out += escape(k);
            *out += "\":";
            v.write(out);
        }
        *out += '}';
        break;
      }
    }
}

std::string
Value::dump() const
{
    std::string out;
    write(&out);
    return out;
}

Value
Value::null()
{
    return Value{};
}

Value
Value::boolean_(bool b)
{
    Value v;
    v.kind = Kind::Boolean;
    v.boolean = b;
    return v;
}

Value
Value::number(std::uint64_t n)
{
    Value v;
    v.kind = Kind::Number;
    v.text = std::to_string(n);
    return v;
}

Value
Value::number(std::int64_t n)
{
    Value v;
    v.kind = Kind::Number;
    v.text = std::to_string(n);
    return v;
}

Value
Value::number(double d)
{
    Value v;
    v.kind = Kind::Number;
    v.text = canonicalReal(d);
    return v;
}

Value
Value::string(std::string s)
{
    Value v;
    v.kind = Kind::String;
    v.text = std::move(s);
    return v;
}

Value
Value::array()
{
    Value v;
    v.kind = Kind::Array;
    return v;
}

Value
Value::object()
{
    Value v;
    v.kind = Kind::Object;
    return v;
}

Value &
Value::add(std::string key, Value v)
{
    members.emplace_back(std::move(key), std::move(v));
    return members.back().second;
}

Value &
Value::push(Value v)
{
    items.push_back(std::move(v));
    return items.back();
}

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
canonicalReal(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

namespace {

/** Cursor over the input with offset-carrying errors. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    run(Value *out)
    {
        skipSpace();
        if (!parseValue(out))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing garbage after the document");
        return true;
    }

  private:
    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
    int depth_ = 0;

    bool
    fail(const std::string &what)
    {
        if (error_->empty()) {
            *error_ = "offset " + std::to_string(pos_) + ": " + what;
        }
        return false;
    }

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void
    skipSpace()
    {
        while (!atEnd()) {
            const char c = peek();
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    expect(char c)
    {
        if (atEnd() || peek() != c) {
            return fail(std::string("expected '") + c + "'" +
                        (atEnd() ? " but the document ends here "
                                   "(truncated?)"
                                 : ""));
        }
        ++pos_;
        return true;
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (text_.compare(pos_, len, word) != 0)
            return fail("unrecognized token");
        pos_ += len;
        return true;
    }

    bool
    parseValue(Value *out)
    {
        if (atEnd())
            return fail("document ends where a value was expected "
                        "(truncated?)");
        if (++depth_ > kMaxDepth)
            return fail("nesting deeper than " +
                        std::to_string(kMaxDepth) + " levels");
        bool ok = false;
        switch (peek()) {
          case '{': ok = parseObject(out); break;
          case '[': ok = parseArray(out); break;
          case '"':
            out->kind = Value::Kind::String;
            ok = parseString(&out->text);
            break;
          case 't':
            out->kind = Value::Kind::Boolean;
            out->boolean = true;
            ok = literal("true", 4);
            break;
          case 'f':
            out->kind = Value::Kind::Boolean;
            out->boolean = false;
            ok = literal("false", 5);
            break;
          case 'n':
            out->kind = Value::Kind::Null;
            ok = literal("null", 4);
            break;
          default:
            ok = parseNumber(out);
        }
        --depth_;
        return ok;
    }

    bool
    parseObject(Value *out)
    {
        out->kind = Value::Kind::Object;
        ++pos_; // '{'
        skipSpace();
        if (!atEnd() && peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            if (atEnd() || peek() != '"')
                return fail("expected a quoted member key");
            std::string key;
            if (!parseString(&key))
                return false;
            skipSpace();
            if (!expect(':'))
                return false;
            skipSpace();
            Value v;
            if (!parseValue(&v))
                return false;
            out->members.emplace_back(std::move(key), std::move(v));
            skipSpace();
            if (atEnd())
                return fail("object is missing its closing '}' "
                            "(truncated?)");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            return expect('}');
        }
    }

    bool
    parseArray(Value *out)
    {
        out->kind = Value::Kind::Array;
        ++pos_; // '['
        skipSpace();
        if (!atEnd() && peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            Value v;
            if (!parseValue(&v))
                return false;
            out->items.push_back(std::move(v));
            skipSpace();
            if (atEnd())
                return fail("array is missing its closing ']' "
                            "(truncated?)");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            return expect(']');
        }
    }

    bool
    parseString(std::string *out)
    {
        ++pos_; // opening quote
        out->clear();
        while (true) {
            if (atEnd())
                return fail("unterminated string (truncated?)");
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                *out += c;
                continue;
            }
            if (atEnd())
                return fail("unterminated escape (truncated?)");
            const char e = text_[pos_++];
            switch (e) {
              case '"': *out += '"'; break;
              case '\\': *out += '\\'; break;
              case '/': *out += '/'; break;
              case 'b': *out += '\b'; break;
              case 'f': *out += '\f'; break;
              case 'n': *out += '\n'; break;
              case 'r': *out += '\r'; break;
              case 't': *out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("short \\u escape (truncated?)");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad hex digit in \\u escape");
                }
                // The writer only emits \u00xx control escapes;
                // decode the basic-plane code point as UTF-8.
                if (code < 0x80) {
                    *out += static_cast<char>(code);
                } else if (code < 0x800) {
                    *out += static_cast<char>(0xc0 | (code >> 6));
                    *out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    *out += static_cast<char>(0xe0 | (code >> 12));
                    *out += static_cast<char>(
                        0x80 | ((code >> 6) & 0x3f));
                    *out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                return fail("unknown escape character");
            }
        }
    }

    bool
    parseNumber(Value *out)
    {
        const std::size_t start = pos_;
        if (!atEnd() && peek() == '-')
            ++pos_;
        if (atEnd() ||
            !std::isdigit(static_cast<unsigned char>(peek())))
            return fail("expected a value");
        while (!atEnd() &&
               std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (!atEnd() && peek() == '.') {
            ++pos_;
            if (atEnd() ||
                !std::isdigit(static_cast<unsigned char>(peek())))
                return fail("digit must follow the decimal point");
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                ++pos_;
            if (atEnd() ||
                !std::isdigit(static_cast<unsigned char>(peek())))
                return fail("digit must follow the exponent");
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        out->kind = Value::Kind::Number;
        out->text = text_.substr(start, pos_ - start);
        return true;
    }
};

} // namespace

bool
parse(const std::string &text, Value *out, std::string *error)
{
    std::string local;
    std::string &err = error ? *error : local;
    err.clear();
    *out = Value{};
    if (text.size() > kMaxDocumentBytes) {
        err = "offset 0: document is " + std::to_string(text.size()) +
              " bytes, larger than the " +
              std::to_string(kMaxDocumentBytes) + "-byte limit";
        return false;
    }
    return Parser(text, &err).run(out);
}

} // namespace sharch::json
