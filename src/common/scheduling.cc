#include "common/scheduling.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sharch {

SlottedPort::SlottedPort(std::uint32_t width) : width_(width)
{
    SHARCH_ASSERT(width > 0, "unit needs at least one port");
}

Cycles
SlottedPort::schedule(Cycles ready)
{
    Cycles c = std::max(ready, watermark_);
    auto it = used_.lower_bound(c);
    while (it != used_.end() && it->first == c && it->second >= width_) {
        ++c;
        ++it;
    }
    ++used_[c];
    prune(c);
    return c;
}

void
SlottedPort::prune(Cycles now)
{
    // Entries far behind the scheduling frontier can never be claimed
    // again (ready times trail the frontier by a bounded window).
    constexpr Cycles kLag = 4096;
    if (now < watermark_ + 2 * kLag)
        return;
    const Cycles new_mark = now - kLag;
    used_.erase(used_.begin(), used_.lower_bound(new_mark));
    watermark_ = new_mark;
}

void
SlottedPort::reset()
{
    used_.clear();
    watermark_ = 0;
}

} // namespace sharch
