#include "common/scheduling.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sharch {

SlottedPort::SlottedPort(std::uint32_t width)
    : width_(width), ring_(kWindow, 0)
{
    SHARCH_ASSERT(width > 0, "unit needs at least one port");
    SHARCH_ASSERT(width <= 0xff, "per-cycle counts are 8-bit");
}

/**
 * Advance the window start to @p new_base, zeroing the recycled slots
 * [base_, new_base).  Safety argument (why recycling cannot resurrect
 * a claimable cycle): slide() is only called from schedule() with
 * new_base = c + 1 - kWindow for the grant cycle c.
 *
 *  - If c >= watermark_ + 2*kLag, this grant's watermark update sets
 *    watermark_' = c - kLag >= c + 1 - kWindow (kLag <= kWindow - 1),
 *    so every recycled slot ends the call below the watermark.
 *  - Otherwise c < watermark_ + 2*kLag = watermark_ + kWindow, so
 *    new_base <= watermark_ and the recycled slots already sit below
 *    the watermark.
 *
 * Either way no future request can be granted in a recycled slot
 * (schedule() clamps to the watermark), which is exactly the map
 * version's prune guarantee.
 */
void
SlottedPort::slide(Cycles new_base)
{
    if (new_base >= base_ + kWindow) {
        // The whole window is stale; every slot recycles.
        std::fill(ring_.begin(), ring_.end(), 0);
    } else {
        for (Cycles c = base_; c != new_base; ++c)
            ring_[c & kWindowMask] = 0;
    }
    base_ = new_base;
}

Cycles
SlottedPort::schedule(Cycles ready)
{
    Cycles c = std::max(ready, watermark_);
    for (;;) {
        if (c >= base_ + kWindow) {
            // Overflow fallback: a pathological ready-time spread (or
            // a fully saturated window) ran past the ring; slide it.
            slide(c + 1 - kWindow);
        }
        std::uint8_t &used = ring_[c & kWindowMask];
        if (used < width_) {
            ++used;
            break;
        }
        ++c;
    }
    // Carry the watermark: slots far behind the scheduling frontier
    // can never be claimed again (ready times trail the frontier by a
    // bounded window).  Same policy the map version enforced by
    // erasing entries below now - kLag.
    if (c >= watermark_ + 2 * kLag)
        watermark_ = c - kLag;
    return c;
}

void
SlottedPort::reset()
{
    std::fill(ring_.begin(), ring_.end(), 0);
    base_ = 0;
    watermark_ = 0;
}

} // namespace sharch
