#include "common/scheduling.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sharch {

SlottedPort::SlottedPort(std::uint32_t width)
    : width_(width), ring_(kWindow, 0)
{
    SHARCH_ASSERT(width > 0, "unit needs at least one port");
    SHARCH_ASSERT(width <= 0xff, "per-cycle counts are 8-bit");
}

/**
 * Advance the window start to @p new_base, zeroing the recycled slots
 * [base_, new_base).  Safety argument (why recycling cannot resurrect
 * a claimable cycle): slide() is only called from schedule() with
 * new_base = c + 1 - kWindow for the grant cycle c.
 *
 *  - If c >= watermark_ + 2*kLag, this grant's watermark update sets
 *    watermark_' = c - kLag >= c + 1 - kWindow (kLag <= kWindow - 1),
 *    so every recycled slot ends the call below the watermark.
 *  - Otherwise c < watermark_ + 2*kLag = watermark_ + kWindow, so
 *    new_base <= watermark_ and the recycled slots already sit below
 *    the watermark.
 *
 * Either way no future request can be granted in a recycled slot
 * (schedule() clamps to the watermark), which is exactly the map
 * version's prune guarantee.
 */
void
SlottedPort::slide(Cycles new_base)
{
    if (new_base >= base_ + kWindow) {
        // The whole window is stale; every slot recycles.
        std::fill(ring_.begin(), ring_.end(), 0);
    } else {
        // The recycled range [base_, new_base) wraps at most once in
        // the ring, so it is one or two contiguous spans -- memset
        // them instead of zeroing a byte per loop iteration (steady
        // forward progress slides the window by one slot per cycle of
        // advance per port, so this is warm-path work).
        const Cycles lo = base_ & kWindowMask;
        const Cycles len = new_base - base_;
        const Cycles first = std::min(len, kWindow - lo);
        std::fill_n(ring_.begin() + static_cast<std::ptrdiff_t>(lo),
                    static_cast<std::ptrdiff_t>(first), 0);
        if (first < len) {
            std::fill_n(ring_.begin(),
                        static_cast<std::ptrdiff_t>(len - first), 0);
        }
    }
    base_ = new_base;
}

void
SlottedPort::reset()
{
    std::fill(ring_.begin(), ring_.end(), 0);
    base_ = 0;
    watermark_ = 0;
}

} // namespace sharch
