/**
 * @file
 * Small numeric helpers shared across sharch: geometric means (the
 * paper aggregates benchmark results the way SPEC does, with GME),
 * log2 helpers, and safe division.
 */

#ifndef SHARCH_COMMON_MATH_UTIL_HH
#define SHARCH_COMMON_MATH_UTIL_HH

#include <cstdint>
#include <span>

namespace sharch {

/**
 * Geometric mean of a set of positive values.
 *
 * @param values non-empty span of strictly positive values
 * @return exp(mean(log(values)))
 */
double geometricMean(std::span<const double> values);

/** Arithmetic mean of a non-empty span. */
double arithmeticMean(std::span<const double> values);

/** True if x is zero or a power of two. */
bool isPow2(std::uint64_t x);

/** floor(log2(x)) for x > 0. */
unsigned floorLog2(std::uint64_t x);

/** ceil(log2(x)) for x > 0. */
unsigned ceilLog2(std::uint64_t x);

/** Smallest power of two >= x, for x > 0 (e.g. for mask indexing). */
std::uint64_t ceilPow2(std::uint64_t x);

/** Integer division rounding up; b > 0. */
std::uint64_t divCeil(std::uint64_t a, std::uint64_t b);

/** a/b, or fallback when b == 0. */
double safeDiv(double a, double b, double fallback = 0.0);

/**
 * Fold @p value into the FNV-1a style digest @p h.  Used by the
 * warm-state digests that the sampling tests compare: two digests are
 * equal exactly when the folded word sequences are equal (up to hash
 * collisions, which the 64-bit space makes irrelevant for tests).
 */
inline std::uint64_t
digestMix(std::uint64_t h, std::uint64_t value)
{
    h ^= value;
    h *= 0x100000001b3ULL; // FNV-1a prime
    return h;
}

/** Seed for digestMix() chains (FNV-1a offset basis). */
inline constexpr std::uint64_t kDigestSeed = 0xcbf29ce484222325ULL;

} // namespace sharch

#endif // SHARCH_COMMON_MATH_UTIL_HH
