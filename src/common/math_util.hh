/**
 * @file
 * Small numeric helpers shared across sharch: geometric means (the
 * paper aggregates benchmark results the way SPEC does, with GME),
 * log2 helpers, and safe division.
 */

#ifndef SHARCH_COMMON_MATH_UTIL_HH
#define SHARCH_COMMON_MATH_UTIL_HH

#include <cstdint>
#include <span>

namespace sharch {

/**
 * Geometric mean of a set of positive values.
 *
 * @param values non-empty span of strictly positive values
 * @return exp(mean(log(values)))
 */
double geometricMean(std::span<const double> values);

/** Arithmetic mean of a non-empty span. */
double arithmeticMean(std::span<const double> values);

/** True if x is zero or a power of two. */
bool isPow2(std::uint64_t x);

/** floor(log2(x)) for x > 0. */
unsigned floorLog2(std::uint64_t x);

/** ceil(log2(x)) for x > 0. */
unsigned ceilLog2(std::uint64_t x);

/** Smallest power of two >= x, for x > 0 (e.g. for mask indexing). */
std::uint64_t ceilPow2(std::uint64_t x);

/** Integer division rounding up; b > 0. */
std::uint64_t divCeil(std::uint64_t a, std::uint64_t b);

/** a/b, or fallback when b == 0. */
double safeDiv(double a, double b, double fallback = 0.0);

} // namespace sharch

#endif // SHARCH_COMMON_MATH_UTIL_HH
