#include "common/random.hh"

#include <cmath>

#include "common/logging.hh"

namespace sharch {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &w : state_)
        w = splitmix64(s);
}

std::uint64_t
Rng::nextGeometric(double p)
{
    SHARCH_ASSERT(p > 0.0 && p <= 1.0, "geometric parameter out of range");
    if (p >= 1.0)
        return 0;
    const double u = nextDouble();
    return static_cast<std::uint64_t>(std::log1p(-u) / std::log1p(-p));
}

double
Rng::nextExponential(double mean)
{
    SHARCH_ASSERT(mean > 0.0, "exponential mean must be positive");
    return -mean * std::log1p(-nextDouble());
}

std::uint64_t
Rng::nextZipf(std::uint64_t n, double alpha)
{
    SHARCH_ASSERT(n > 0, "zipf needs a nonempty range");
    if (n == 1)
        return 0;
    // Approximate inversion for a continuous power-law, clamped to range.
    const double u = nextDouble();
    if (alpha == 1.0) {
        const double v = std::pow(static_cast<double>(n), u);
        const auto k = static_cast<std::uint64_t>(v) - 1;
        return k >= n ? n - 1 : k;
    }
    const double exp = 1.0 - alpha;
    const double nmax = std::pow(static_cast<double>(n), exp);
    const double v = std::pow(u * (nmax - 1.0) + 1.0, 1.0 / exp);
    auto k = static_cast<std::uint64_t>(v);
    if (k >= n)
        k = n - 1;
    return k;
}

ZipfDist::ZipfDist(std::uint64_t n, double alpha)
    : n_(n), unitAlpha_(alpha == 1.0)
{
    SHARCH_ASSERT(n > 0, "zipf needs a nonempty range");
    if (!unitAlpha_) {
        const double exp = 1.0 - alpha;
        nmax_ = std::pow(static_cast<double>(n), exp);
        invExp_ = 1.0 / exp;
    }
}

} // namespace sharch
