/**
 * @file
 * A small JSON reader/writer for the hypervisor state and protocol
 * layers.
 *
 * The report layer (study/report.hh) only *emits* JSON; the
 * checkpoint/restore engine and the sharch-serve request protocol
 * must also *read* it back, so this module provides the missing
 * half: a strict recursive-descent parser into a simple DOM, plus a
 * deterministic writer whose number formatting matches the report
 * layer's canonical form ("%.17g" reals, full-width integers).
 *
 * Determinism contract: numbers keep their raw source token, so a
 * document parsed and re-emitted through Value::write() reproduces
 * the original bytes for any document this codebase wrote (object
 * member order is preserved).  That is what makes snapshot ->
 * restore -> snapshot byte-identical.
 */

#ifndef SHARCH_COMMON_JSON_HH
#define SHARCH_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sharch::json {

/** One JSON value (a tree; objects keep insertion order). */
struct Value
{
    enum class Kind { Null, Boolean, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    /** String contents (String) or the raw number token (Number). */
    std::string text;
    std::vector<Value> items; //!< Array elements
    std::vector<std::pair<std::string, Value>> members; //!< Object

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Boolean; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member by key, or nullptr (first match wins). */
    const Value *get(const std::string &key) const;

    /** Number as double (0.0 when not a Number). */
    double asDouble() const;

    /**
     * Strict unsigned 64-bit read: false unless this is a Number
     * whose token is a plain non-negative integer in range.  Keeps
     * cycle counts and seeds exact where a double would round.
     */
    bool asU64(std::uint64_t *out) const;

    /** Strict signed 64-bit read (plain integer tokens only). */
    bool asI64(std::int64_t *out) const;

    /** Append this value's JSON text to @p out (no whitespace). */
    void write(std::string *out) const;

    /** Convenience: write() into a fresh string. */
    std::string dump() const;

    // --- Builders (value semantics; movable) ---------------------
    static Value null();
    static Value boolean_(bool b);
    static Value number(std::uint64_t v);
    static Value number(std::int64_t v);
    static Value number(int v) { return number(std::int64_t{v}); }
    static Value number(unsigned v)
    { return number(std::uint64_t{v}); }
    /** Canonical "%.17g" token (round-trips exactly). */
    static Value number(double v);
    static Value string(std::string s);
    static Value array();
    static Value object();

    /** Append a member (Object) and return it for filling. */
    Value &add(std::string key, Value v);
    /** Append an element (Array) and return it for filling. */
    Value &push(Value v);
};

/**
 * Adversarial-input bounds the parser enforces (both produce a
 * positioned error, never a crash): documents nested deeper than
 * kMaxDepth levels are rejected before the recursion can overflow
 * the stack, and documents larger than kMaxDocumentBytes are
 * rejected before any allocation happens.  Both are far above
 * anything this codebase writes (sharch-state-v1 nests 5 deep).
 */
inline constexpr int kMaxDepth = 64;
inline constexpr std::size_t kMaxDocumentBytes = 64u << 20;

/**
 * Parse @p text into @p out.  Strict JSON (RFC 8259): no trailing
 * garbage, no comments, no trailing commas.  On failure returns
 * false and sets @p error to "offset N: <what went wrong>" so a
 * truncated or hand-tampered document names its first bad byte.
 * Inputs beyond kMaxDepth / kMaxDocumentBytes fail the same way.
 */
bool parse(const std::string &text, Value *out, std::string *error);

/** Escape for a JSON string literal (same bytes as study's). */
std::string escape(const std::string &s);

/** The canonical "%.17g" number token the report layer emits. */
std::string canonicalReal(double v);

} // namespace sharch::json

#endif // SHARCH_COMMON_JSON_HH
