/**
 * @file
 * Fundamental scalar types shared across all sharch libraries.
 */

#ifndef SHARCH_COMMON_TYPES_HH
#define SHARCH_COMMON_TYPES_HH

#include <cstdint>

namespace sharch {

/** Simulation time in cycles. */
using Cycles = std::uint64_t;

/** A (virtual) memory address. */
using Addr = std::uint64_t;

/** Count of instructions, entries, etc. */
using Count = std::uint64_t;

/** Architectural / logical / physical register numbers. */
using RegIndex = std::uint16_t;

/** Identifier of a Slice within the fabric. */
using SliceId = std::uint16_t;

/** Identifier of an L2 cache bank within the fabric. */
using BankId = std::uint16_t;

/** Identifier of a VCore within a VM. */
using VCoreId = std::uint16_t;

/** A sequence number used to order instructions in program order. */
using SeqNum = std::uint64_t;

/** Sentinel for "no register". */
inline constexpr RegIndex kNoReg = 0xffff;

/** Sentinel for "invalid slice". */
inline constexpr SliceId kNoSlice = 0xffff;

} // namespace sharch

#endif // SHARCH_COMMON_TYPES_HH
