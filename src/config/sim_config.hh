/**
 * @file
 * Typed simulator configuration.
 *
 * Defaults follow the paper exactly:
 *   Table 2 (Base Slice Configuration):
 *     issue window 32, LSQ 32, 2 functional units per Slice, ROB 64,
 *     128 physical (global logical) registers, store buffer 8, 64 local
 *     registers per Slice, 8 in-flight loads, 100-cycle memory.
 *   Table 3 (Base Cache Configurations):
 *     L1D/L1I 16 KB, 64 B lines, 2-way, 3-cycle hit;
 *     L2 composed of 64 KB banks, 64 B lines, 4-way,
 *     hit delay = distance*2 + 4.
 *   Section 3.4: SON latency = 2 cycles nearest neighbour, +1/hop.
 *   Section 5.10: reconfiguration costs 10,000 cycles when the L2
 *     configuration changes, 500 cycles for Slice-count-only changes.
 */

#ifndef SHARCH_CONFIG_SIM_CONFIG_HH
#define SHARCH_CONFIG_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace sharch {

class XmlNode;

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    std::uint32_t sizeBytes = 16 * 1024;
    std::uint32_t blockBytes = 64;
    std::uint32_t associativity = 2;
    Cycles hitLatency = 3;
};

/** Per-Slice microarchitecture parameters (Table 2). */
struct SliceConfig
{
    std::uint32_t issueWindowSize = 32;
    std::uint32_t lsqSize = 32;
    std::uint32_t numFunctionalUnits = 2;   //!< 1 ALU + 1 LSU
    std::uint32_t robSize = 64;
    std::uint32_t numGlobalRegisters = 128; //!< global logical space
    std::uint32_t storeBufferSize = 8;
    std::uint32_t numLocalRegisters = 64;   //!< LRF entries per Slice
    std::uint32_t maxInflightLoads = 8;
    std::uint32_t fetchWidth = 2;           //!< instructions/cycle/Slice
    Cycles mulLatency = 4;                  //!< multiplier pipeline depth
    Cycles branchMispredictPenalty = 7;     //!< local flush/refill cost

    /** Branch predictor: bimodal table entries (per Slice). */
    std::uint32_t bimodalEntries = 2048;
    /** BTB entries per Slice (includes replicated fake entries). */
    std::uint32_t btbEntries = 512;
};

/** Network parameters (section 3.4, Tilera latencies). */
struct NetworkConfig
{
    Cycles baseOperandLatency = 2;  //!< nearest-neighbour SON cost
    Cycles perHopLatency = 1;       //!< each extra hop
    std::uint32_t operandNetworks = 1; //!< ablation: add a 2nd SON
    /** Operand-network injections per Slice per cycle per network. */
    std::uint32_t injectionsPerCycle = 1;
};

/** Full VCore + memory-system configuration. */
struct SimConfig
{
    SliceConfig slice;
    CacheConfig l1d;
    CacheConfig l1i{.sizeBytes = 16 * 1024, .blockBytes = 64,
                    .associativity = 2, .hitLatency = 3};
    /** One L2 bank; a VCore attaches zero or more of these. */
    CacheConfig l2Bank{.sizeBytes = 64 * 1024, .blockBytes = 64,
                       .associativity = 4, .hitLatency = 4};
    NetworkConfig network;

    std::uint32_t numSlices = 1;        //!< Slices in the VCore [1, 8]
    std::uint32_t numL2Banks = 2;       //!< 64 KB banks (base: 128 KB)
    Cycles memoryLatency = 100;         //!< Table 2 "Memory Delay"

    /** L2 hit latency multiplier per hop of distance (Table 3). */
    Cycles l2DistanceCyclesPerHop = 2;

    /** Reconfiguration penalties (section 5.10). */
    Cycles reconfigCacheFlushCycles = 10000;
    Cycles reconfigSliceOnlyCycles = 500;

    std::uint64_t seed = 1;

    /** Maximum Slices a VCore may have (Equation 3: 1 <= s <= 8). */
    static constexpr std::uint32_t kMaxSlices = 8;
    /** Maximum L2 per VCore (Equation 3: c <= 8 MB) in 64 KB banks. */
    static constexpr std::uint32_t kMaxL2Banks = 128;

    /** Total L2 bytes attached to this VCore. */
    std::uint64_t l2Bytes() const
    { return std::uint64_t(numL2Banks) * l2Bank.sizeBytes; }

    /** Validate ranges; returns an error message or empty string. */
    std::string validate() const;
};

/**
 * SMARTS-style sampling window schedule, in instructions.
 *
 * A sampled run repeats [warm-up W, measure M, fast-forward U]
 * periods: W and M instructions run through the detailed timing walk
 * (only M is measured), then U instructions advance functionally --
 * caches, branch predictor, and memory-dependence history update, but
 * no cycles pass.  The schedule is part of a run's identity: the same
 * (profile, seed, U:W:M) always measures the same windows.
 */
struct SampleSchedule
{
    // Default 6000:2000:4000: W and M are multiples of VmSim::run's
    // 2000-instruction rotation chunk, so detailed windows cover
    // whole turns and multithreaded contention is sampled with the
    // full run's interleaving (DESIGN.md §11 -- schedules that break
    // this alignment lose accuracy on multithreaded workloads).
    // Tuned on the fig13 grid at 1.6M instructions: max relative IPC
    // error 1.9%, mean 0.34% (the sampling_accuracy study re-checks
    // this in CI).
    std::uint64_t fastForward = 6000; //!< functional instructions (U)
    std::uint64_t warmup = 2000;      //!< detailed, unmeasured (W)
    std::uint64_t measure = 4000;     //!< detailed, measured (M)

    std::uint64_t period() const
    { return fastForward + warmup + measure; }

    bool operator==(const SampleSchedule &) const = default;
};

/** The default U:W:M schedule (tuning recipe in EXPERIMENTS.md). */
inline constexpr SampleSchedule kDefaultSampleSchedule{};

/**
 * Parse "U:W:M" (e.g. "6000:2000:4000") into @p out.  All three fields
 * are required; the measure window must be >= 1 instruction.
 * @return false on malformed input (@p out untouched).
 */
bool parseSampleSchedule(const std::string &text, SampleSchedule *out);

/** Canonical "U:W:M" spelling of @p s. */
std::string sampleScheduleName(const SampleSchedule &s);

/**
 * Parse a SimConfig from an XML tree rooted at <ssim>.
 *
 * Unknown elements are ignored; missing elements keep their defaults.
 * @param root the <ssim> element
 * @param error set to a description when a value is malformed
 * @return the parsed config (defaults on error)
 */
SimConfig simConfigFromXml(const XmlNode &root, std::string *error);

/** Load a SimConfig from an XML file; fatal() on parse errors. */
SimConfig loadSimConfig(const std::string &path);

/** Serialize a SimConfig to XML (round-trips via simConfigFromXml). */
std::string simConfigToXml(const SimConfig &cfg);

} // namespace sharch

#endif // SHARCH_CONFIG_SIM_CONFIG_HH
