#include "config/xml.hh"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

namespace sharch {

std::optional<std::string>
XmlNode::attribute(std::string_view key) const
{
    auto it = attributes_.find(std::string(key));
    if (it == attributes_.end())
        return std::nullopt;
    return it->second;
}

const XmlNode *
XmlNode::child(std::string_view tag) const
{
    for (const auto &c : children_) {
        if (c->name() == tag)
            return c.get();
    }
    return nullptr;
}

std::vector<const XmlNode *>
XmlNode::childrenNamed(std::string_view tag) const
{
    std::vector<const XmlNode *> out;
    for (const auto &c : children_) {
        if (c->name() == tag)
            out.push_back(c.get());
    }
    return out;
}

namespace {

std::string
trimmed(std::string_view s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

} // namespace

std::optional<std::string>
XmlNode::childText(std::string_view tag) const
{
    const XmlNode *c = child(tag);
    if (!c)
        return std::nullopt;
    return trimmed(c->text());
}

std::optional<long>
XmlNode::childLong(std::string_view tag) const
{
    auto t = childText(tag);
    if (!t)
        return std::nullopt;
    long value = 0;
    auto [ptr, ec] = std::from_chars(t->data(), t->data() + t->size(), value);
    if (ec != std::errc() || ptr != t->data() + t->size())
        return std::nullopt;
    return value;
}

std::optional<double>
XmlNode::childDouble(std::string_view tag) const
{
    auto t = childText(tag);
    if (!t)
        return std::nullopt;
    try {
        std::size_t pos = 0;
        double value = std::stod(*t, &pos);
        if (pos != t->size())
            return std::nullopt;
        return value;
    } catch (...) {
        return std::nullopt;
    }
}

std::optional<bool>
XmlNode::childBool(std::string_view tag) const
{
    auto t = childText(tag);
    if (!t)
        return std::nullopt;
    if (*t == "true" || *t == "1")
        return true;
    if (*t == "false" || *t == "0")
        return false;
    return std::nullopt;
}

void
XmlNode::setAttribute(std::string key, std::string value)
{
    attributes_[std::move(key)] = std::move(value);
}

XmlNode &
XmlNode::addChild(std::string name)
{
    children_.push_back(std::make_unique<XmlNode>(std::move(name)));
    return *children_.back();
}

namespace {

/** Recursive-descent parser over a string_view with line tracking. */
class Parser
{
  public:
    explicit Parser(std::string_view input) : in_(input) {}

    XmlResult
    parse()
    {
        skipProlog();
        if (failed_)
            return fail();
        auto root = parseElement();
        if (failed_ || !root)
            return fail();
        skipWhitespaceAndComments();
        if (pos_ != in_.size()) {
            error("trailing content after root element");
            return fail();
        }
        XmlResult r;
        r.root = std::move(root);
        return r;
    }

  private:
    std::string_view in_;
    std::size_t pos_ = 0;
    int line_ = 1;
    bool failed_ = false;
    std::string errorMsg_;
    int errorLine_ = 0;

    XmlResult
    fail()
    {
        XmlResult r;
        r.error = errorMsg_.empty() ? "parse error" : errorMsg_;
        r.errorLine = errorLine_ ? errorLine_ : line_;
        return r;
    }

    void
    error(std::string msg)
    {
        if (!failed_) {
            failed_ = true;
            errorMsg_ = std::move(msg);
            errorLine_ = line_;
        }
    }

    bool eof() const { return pos_ >= in_.size(); }

    char peek() const { return eof() ? '\0' : in_[pos_]; }

    char
    get()
    {
        if (eof())
            return '\0';
        char c = in_[pos_++];
        if (c == '\n')
            ++line_;
        return c;
    }

    bool
    consume(std::string_view lit)
    {
        if (in_.substr(pos_, lit.size()) != lit)
            return false;
        for (std::size_t i = 0; i < lit.size(); ++i)
            get();
        return true;
    }

    void
    skipWhitespace()
    {
        while (!eof() && std::isspace(static_cast<unsigned char>(peek())))
            get();
    }

    void
    skipComment()
    {
        // Caller consumed "<!--".
        while (!eof()) {
            if (consume("-->"))
                return;
            get();
        }
        error("unterminated comment");
    }

    void
    skipWhitespaceAndComments()
    {
        for (;;) {
            skipWhitespace();
            if (consume("<!--"))
                skipComment();
            else
                return;
        }
    }

    void
    skipProlog()
    {
        skipWhitespace();
        if (consume("<?xml")) {
            while (!eof()) {
                if (consume("?>"))
                    break;
                get();
            }
        }
        skipWhitespaceAndComments();
    }

    static bool
    isNameChar(char c)
    {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
               c == '-' || c == '.' || c == ':';
    }

    std::string
    parseName()
    {
        std::string name;
        while (!eof() && isNameChar(peek()))
            name.push_back(get());
        if (name.empty())
            error("expected a name");
        return name;
    }

    std::string
    decodeEntities(std::string_view raw)
    {
        std::string out;
        out.reserve(raw.size());
        for (std::size_t i = 0; i < raw.size(); ++i) {
            if (raw[i] != '&') {
                out.push_back(raw[i]);
                continue;
            }
            auto tryEntity = [&](std::string_view ent, char repl) {
                if (raw.substr(i, ent.size()) == ent) {
                    out.push_back(repl);
                    i += ent.size() - 1;
                    return true;
                }
                return false;
            };
            if (tryEntity("&lt;", '<') || tryEntity("&gt;", '>') ||
                tryEntity("&amp;", '&') || tryEntity("&quot;", '"') ||
                tryEntity("&apos;", '\'')) {
                continue;
            }
            out.push_back('&');
        }
        return out;
    }

    void
    parseAttributes(XmlNode &node)
    {
        for (;;) {
            skipWhitespace();
            if (eof() || peek() == '>' || peek() == '/' || peek() == '?')
                return;
            std::string key = parseName();
            if (failed_)
                return;
            skipWhitespace();
            if (get() != '=') {
                error("expected '=' after attribute name");
                return;
            }
            skipWhitespace();
            char quote = get();
            if (quote != '"' && quote != '\'') {
                error("expected quoted attribute value");
                return;
            }
            std::string value;
            while (!eof() && peek() != quote)
                value.push_back(get());
            if (get() != quote) {
                error("unterminated attribute value");
                return;
            }
            node.setAttribute(std::move(key), decodeEntities(value));
        }
    }

    std::unique_ptr<XmlNode>
    parseElement()
    {
        if (get() != '<') {
            error("expected '<'");
            return nullptr;
        }
        std::string name = parseName();
        if (failed_)
            return nullptr;
        auto node = std::make_unique<XmlNode>(name);
        parseAttributes(*node);
        if (failed_)
            return nullptr;
        if (consume("/>"))
            return node;
        if (get() != '>') {
            error("expected '>' to close start tag");
            return nullptr;
        }
        // Content: text, comments, children, until the matching end tag.
        std::string text;
        for (;;) {
            if (eof()) {
                error("unterminated element <" + name + ">");
                return nullptr;
            }
            if (consume("<!--")) {
                skipComment();
                if (failed_)
                    return nullptr;
                continue;
            }
            if (in_.substr(pos_, 2) == "</") {
                consume("</");
                std::string end = parseName();
                if (failed_)
                    return nullptr;
                skipWhitespace();
                if (get() != '>') {
                    error("malformed end tag");
                    return nullptr;
                }
                if (end != name) {
                    error("mismatched end tag </" + end + "> for <" +
                          name + ">");
                    return nullptr;
                }
                node->setText(decodeEntities(text));
                return node;
            }
            if (peek() == '<') {
                auto childNode = parseElement();
                if (failed_ || !childNode)
                    return nullptr;
                XmlNode &slot = node->addChild(childNode->name());
                slot = std::move(*childNode);
                continue;
            }
            text.push_back(get());
        }
    }
};

void
escapeInto(std::string &out, std::string_view s)
{
    for (char c : s) {
        switch (c) {
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '&': out += "&amp;"; break;
          case '"': out += "&quot;"; break;
          default: out.push_back(c);
        }
    }
}

void
writeNode(std::string &out, const XmlNode &node, int depth)
{
    const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
    out += indent + "<" + node.name();
    for (const auto &[k, v] : node.attributes()) {
        out += " " + k + "=\"";
        escapeInto(out, v);
        out += "\"";
    }
    const std::string text = trimmed(node.text());
    if (node.children().empty() && text.empty()) {
        out += "/>\n";
        return;
    }
    out += ">";
    if (!node.children().empty()) {
        out += "\n";
        for (const auto &c : node.children())
            writeNode(out, *c, depth + 1);
        if (!text.empty()) {
            out += indent + "  ";
            escapeInto(out, text);
            out += "\n";
        }
        out += indent + "</" + node.name() + ">\n";
    } else {
        escapeInto(out, text);
        out += "</" + node.name() + ">\n";
    }
}

} // namespace

XmlResult
parseXml(std::string_view input)
{
    return Parser(input).parse();
}

XmlResult
parseXmlFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f) {
        XmlResult r;
        r.error = "cannot open file: " + path;
        return r;
    }
    std::ostringstream oss;
    oss << f.rdbuf();
    const std::string content = oss.str();
    return parseXml(content);
}

std::string
writeXml(const XmlNode &root)
{
    std::string out;
    writeNode(out, root, 0);
    return out;
}

} // namespace sharch
