/**
 * @file
 * A minimal, dependency-free XML subset parser.
 *
 * SSim, the simulator the paper builds, reads "all critical
 * micro-architecture parameters and latencies ... from a XML
 * configuration file" (section 5.2).  This module implements the subset
 * needed for that purpose: nested elements, attributes, text content,
 * comments, and an optional XML declaration.  It does not implement
 * DTDs, namespaces, CDATA, or processing instructions.
 *
 * Parsing never throws; errors are reported through XmlResult.
 */

#ifndef SHARCH_CONFIG_XML_HH
#define SHARCH_CONFIG_XML_HH

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sharch {

/** One element of an XML document tree. */
class XmlNode
{
  public:
    explicit XmlNode(std::string name) : name_(std::move(name)) {}

    /** Tag name of this element. */
    const std::string &name() const { return name_; }

    /** Concatenated text content directly inside this element. */
    const std::string &text() const { return text_; }

    /** All attributes in document order of first appearance. */
    const std::map<std::string, std::string> &attributes() const
    { return attributes_; }

    /** Attribute value, if present. */
    std::optional<std::string> attribute(std::string_view key) const;

    /** Child elements in document order. */
    const std::vector<std::unique_ptr<XmlNode>> &children() const
    { return children_; }

    /** First child with the given tag name, or nullptr. */
    const XmlNode *child(std::string_view tag) const;

    /** All children with the given tag name. */
    std::vector<const XmlNode *> childrenNamed(std::string_view tag) const;

    /**
     * Text of child element @p tag parsed as T (supported: std::string,
     * long, unsigned long, double, bool).  Returns nullopt when the
     * child is absent or unparsable.
     */
    std::optional<std::string> childText(std::string_view tag) const;
    std::optional<long> childLong(std::string_view tag) const;
    std::optional<double> childDouble(std::string_view tag) const;
    std::optional<bool> childBool(std::string_view tag) const;

    // Mutators used by the parser and by programmatic document builders.
    void setText(std::string text) { text_ = std::move(text); }
    void appendText(std::string_view text) { text_ += text; }
    void setAttribute(std::string key, std::string value);
    XmlNode &addChild(std::string name);

  private:
    std::string name_;
    std::string text_;
    std::map<std::string, std::string> attributes_;
    std::vector<std::unique_ptr<XmlNode>> children_;
};

/** Outcome of a parse: either a root node or an error description. */
struct XmlResult
{
    std::unique_ptr<XmlNode> root;
    std::string error;   //!< empty on success
    int errorLine = 0;   //!< 1-based line of the error, 0 on success

    bool ok() const { return root != nullptr; }
};

/** Parse an XML document from memory. */
XmlResult parseXml(std::string_view input);

/** Parse an XML document from a file. */
XmlResult parseXmlFile(const std::string &path);

/** Serialize a tree back to XML text (indented, for golden tests). */
std::string writeXml(const XmlNode &root);

} // namespace sharch

#endif // SHARCH_CONFIG_XML_HH
