#include "config/sim_config.hh"

#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"
#include "common/math_util.hh"
#include "config/xml.hh"

namespace sharch {

std::string
SimConfig::validate() const
{
    std::ostringstream err;
    if (numSlices < 1 || numSlices > kMaxSlices)
        err << "numSlices must be in [1, " << kMaxSlices << "]; ";
    if (numL2Banks > kMaxL2Banks)
        err << "numL2Banks must be <= " << kMaxL2Banks << "; ";
    if (!isPow2(l1d.sizeBytes) || !isPow2(l1i.sizeBytes) ||
        !isPow2(l2Bank.sizeBytes)) {
        err << "cache sizes must be powers of two; ";
    }
    if (l1d.blockBytes == 0 || !isPow2(l1d.blockBytes))
        err << "block size must be a nonzero power of two; ";
    if (l1d.associativity == 0 || l2Bank.associativity == 0)
        err << "associativity must be nonzero; ";
    if (slice.issueWindowSize == 0 || slice.robSize == 0 ||
        slice.lsqSize == 0) {
        err << "issue window, ROB and LSQ must be nonempty; ";
    }
    if (slice.numLocalRegisters < 32)
        err << "LRF must hold at least the architectural registers; ";
    if (slice.fetchWidth == 0)
        err << "fetchWidth must be positive; ";
    if (network.operandNetworks < 1)
        err << "at least one operand network is required; ";
    return err.str();
}

namespace {

void
readCache(const XmlNode *node, CacheConfig &c, std::string *error)
{
    if (!node)
        return;
    auto check = [&](const char *tag, auto &dst) {
        auto v = node->childLong(tag);
        if (node->child(tag) && !v && error && error->empty())
            *error = std::string("malformed <") + tag + ">";
        if (v)
            dst = static_cast<std::remove_reference_t<decltype(dst)>>(*v);
    };
    check("size_bytes", c.sizeBytes);
    check("block_bytes", c.blockBytes);
    check("associativity", c.associativity);
    check("hit_latency", c.hitLatency);
}

} // namespace

SimConfig
simConfigFromXml(const XmlNode &root, std::string *error)
{
    SimConfig cfg;
    if (error)
        error->clear();

    auto readU32 = [&](const XmlNode &n, const char *tag, auto &dst) {
        auto v = n.childLong(tag);
        if (n.child(tag) && !v && error && error->empty())
            *error = std::string("malformed <") + tag + ">";
        if (v)
            dst = static_cast<std::remove_reference_t<decltype(dst)>>(*v);
    };

    if (const XmlNode *s = root.child("slice")) {
        readU32(*s, "issue_window", cfg.slice.issueWindowSize);
        readU32(*s, "lsq_size", cfg.slice.lsqSize);
        readU32(*s, "functional_units", cfg.slice.numFunctionalUnits);
        readU32(*s, "rob_size", cfg.slice.robSize);
        readU32(*s, "global_registers", cfg.slice.numGlobalRegisters);
        readU32(*s, "store_buffer", cfg.slice.storeBufferSize);
        readU32(*s, "local_registers", cfg.slice.numLocalRegisters);
        readU32(*s, "max_inflight_loads", cfg.slice.maxInflightLoads);
        readU32(*s, "fetch_width", cfg.slice.fetchWidth);
        readU32(*s, "mul_latency", cfg.slice.mulLatency);
        readU32(*s, "mispredict_penalty",
                cfg.slice.branchMispredictPenalty);
        readU32(*s, "bimodal_entries", cfg.slice.bimodalEntries);
        readU32(*s, "btb_entries", cfg.slice.btbEntries);
    }
    readCache(root.child("l1d"), cfg.l1d, error);
    readCache(root.child("l1i"), cfg.l1i, error);
    readCache(root.child("l2_bank"), cfg.l2Bank, error);
    if (const XmlNode *n = root.child("network")) {
        readU32(*n, "base_operand_latency",
                cfg.network.baseOperandLatency);
        readU32(*n, "per_hop_latency", cfg.network.perHopLatency);
        readU32(*n, "operand_networks", cfg.network.operandNetworks);
        readU32(*n, "injections_per_cycle",
                cfg.network.injectionsPerCycle);
    }
    readU32(root, "num_slices", cfg.numSlices);
    readU32(root, "num_l2_banks", cfg.numL2Banks);
    readU32(root, "memory_latency", cfg.memoryLatency);
    readU32(root, "l2_distance_cycles_per_hop",
            cfg.l2DistanceCyclesPerHop);
    readU32(root, "reconfig_cache_flush_cycles",
            cfg.reconfigCacheFlushCycles);
    readU32(root, "reconfig_slice_only_cycles",
            cfg.reconfigSliceOnlyCycles);
    readU32(root, "seed", cfg.seed);

    if (error && error->empty()) {
        const std::string v = cfg.validate();
        if (!v.empty())
            *error = v;
    }
    return cfg;
}

SimConfig
loadSimConfig(const std::string &path)
{
    XmlResult r = parseXmlFile(path);
    if (!r.ok())
        SHARCH_FATAL("cannot parse config ", path, ": ", r.error,
                     " (line ", r.errorLine, ")");
    std::string error;
    SimConfig cfg = simConfigFromXml(*r.root, &error);
    if (!error.empty())
        SHARCH_FATAL("invalid config ", path, ": ", error);
    return cfg;
}

namespace {

void
addScalar(XmlNode &parent, const char *tag, std::uint64_t value)
{
    parent.addChild(tag).setText(std::to_string(value));
}

void
addCache(XmlNode &parent, const char *tag, const CacheConfig &c)
{
    XmlNode &n = parent.addChild(tag);
    addScalar(n, "size_bytes", c.sizeBytes);
    addScalar(n, "block_bytes", c.blockBytes);
    addScalar(n, "associativity", c.associativity);
    addScalar(n, "hit_latency", c.hitLatency);
}

} // namespace

std::string
simConfigToXml(const SimConfig &cfg)
{
    XmlNode root("ssim");
    XmlNode &s = root.addChild("slice");
    addScalar(s, "issue_window", cfg.slice.issueWindowSize);
    addScalar(s, "lsq_size", cfg.slice.lsqSize);
    addScalar(s, "functional_units", cfg.slice.numFunctionalUnits);
    addScalar(s, "rob_size", cfg.slice.robSize);
    addScalar(s, "global_registers", cfg.slice.numGlobalRegisters);
    addScalar(s, "store_buffer", cfg.slice.storeBufferSize);
    addScalar(s, "local_registers", cfg.slice.numLocalRegisters);
    addScalar(s, "max_inflight_loads", cfg.slice.maxInflightLoads);
    addScalar(s, "fetch_width", cfg.slice.fetchWidth);
    addScalar(s, "mul_latency", cfg.slice.mulLatency);
    addScalar(s, "mispredict_penalty", cfg.slice.branchMispredictPenalty);
    addScalar(s, "bimodal_entries", cfg.slice.bimodalEntries);
    addScalar(s, "btb_entries", cfg.slice.btbEntries);
    addCache(root, "l1d", cfg.l1d);
    addCache(root, "l1i", cfg.l1i);
    addCache(root, "l2_bank", cfg.l2Bank);
    XmlNode &n = root.addChild("network");
    addScalar(n, "base_operand_latency", cfg.network.baseOperandLatency);
    addScalar(n, "per_hop_latency", cfg.network.perHopLatency);
    addScalar(n, "operand_networks", cfg.network.operandNetworks);
    addScalar(n, "injections_per_cycle", cfg.network.injectionsPerCycle);
    addScalar(root, "num_slices", cfg.numSlices);
    addScalar(root, "num_l2_banks", cfg.numL2Banks);
    addScalar(root, "memory_latency", cfg.memoryLatency);
    addScalar(root, "l2_distance_cycles_per_hop",
              cfg.l2DistanceCyclesPerHop);
    addScalar(root, "reconfig_cache_flush_cycles",
              cfg.reconfigCacheFlushCycles);
    addScalar(root, "reconfig_slice_only_cycles",
              cfg.reconfigSliceOnlyCycles);
    addScalar(root, "seed", cfg.seed);
    return writeXml(root);
}

bool
parseSampleSchedule(const std::string &text, SampleSchedule *out)
{
    // Strict "U:W:M": three base-10 fields, no signs, no garbage.
    auto field = [](const std::string &s, std::uint64_t *v) {
        if (s.empty() || s[0] == '-' || s[0] == '+')
            return false;
        errno = 0;
        char *end = nullptr;
        const unsigned long long parsed =
            std::strtoull(s.c_str(), &end, 10);
        if (errno != 0 || end == s.c_str() || *end != '\0')
            return false;
        *v = parsed;
        return true;
    };
    const std::size_t c1 = text.find(':');
    if (c1 == std::string::npos)
        return false;
    const std::size_t c2 = text.find(':', c1 + 1);
    if (c2 == std::string::npos ||
        text.find(':', c2 + 1) != std::string::npos) {
        return false;
    }
    SampleSchedule s;
    if (!field(text.substr(0, c1), &s.fastForward) ||
        !field(text.substr(c1 + 1, c2 - c1 - 1), &s.warmup) ||
        !field(text.substr(c2 + 1), &s.measure) || s.measure == 0) {
        return false;
    }
    *out = s;
    return true;
}

std::string
sampleScheduleName(const SampleSchedule &s)
{
    return std::to_string(s.fastForward) + ":" +
           std::to_string(s.warmup) + ":" +
           std::to_string(s.measure);
}

} // namespace sharch
