#include "study/registry.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sharch::study {

bool
globMatch(const std::string &pattern, const std::string &text)
{
    // Iterative glob with single-star backtracking: `star`/`starText`
    // remember the last `*` so a mismatch rewinds there and consumes
    // one more text character.
    std::size_t p = 0, t = 0;
    std::size_t star = std::string::npos, starText = 0;
    while (t < text.size()) {
        if (p < pattern.size() &&
            (pattern[p] == '?' || pattern[p] == text[t])) {
            ++p;
            ++t;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            starText = t;
        } else if (star != std::string::npos) {
            p = star + 1;
            t = ++starText;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

StudyRegistry &
StudyRegistry::instance()
{
    static StudyRegistry registry;
    return registry;
}

void
StudyRegistry::add(std::unique_ptr<Study> s)
{
    const std::string name = s->name();
    for (const std::unique_ptr<Study> &existing : studies_) {
        SHARCH_ASSERT(existing->name() != name,
                      "duplicate study id '", name, "'");
    }
    studies_.push_back(std::move(s));
}

std::vector<Study *>
StudyRegistry::all() const
{
    std::vector<Study *> out;
    out.reserve(studies_.size());
    for (const std::unique_ptr<Study> &s : studies_)
        out.push_back(s.get());
    std::sort(out.begin(), out.end(),
              [](const Study *a, const Study *b) {
                  return a->name() < b->name();
              });
    return out;
}

std::vector<Study *>
StudyRegistry::match(const std::string &pattern) const
{
    std::vector<Study *> out;
    for (Study *s : all())
        if (globMatch(pattern, s->name()))
            out.push_back(s);
    return out;
}

Study *
StudyRegistry::find(const std::string &name) const
{
    for (const std::unique_ptr<Study> &s : studies_)
        if (s->name() == name)
            return s.get();
    return nullptr;
}

StudyRegistrar::StudyRegistrar(std::unique_ptr<Study> s)
{
    StudyRegistry::instance().add(std::move(s));
}

} // namespace sharch::study
