/**
 * @file
 * Self-registering study catalogue.
 *
 * A study translation unit defines its Study subclass and registers it
 * with SHARCH_REGISTER_STUDY(Class); the driver (and the tests) then
 * discover every study through StudyRegistry::instance() without a
 * hand-maintained list.  Registration happens during static
 * initialization, so study objects must not touch other globals in
 * their constructors -- all work belongs in grid()/run().
 */

#ifndef SHARCH_STUDY_REGISTRY_HH
#define SHARCH_STUDY_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "study/study.hh"

namespace sharch::study {

/**
 * Match @p text against a shell-style pattern: `*` matches any run
 * (including empty), `?` any one character, everything else itself.
 */
bool globMatch(const std::string &pattern, const std::string &text);

/** The process-wide catalogue of registered studies. */
class StudyRegistry
{
  public:
    static StudyRegistry &instance();

    /** Register a study; fatal() on a duplicate name. */
    void add(std::unique_ptr<Study> s);

    /** Every registered study, sorted by name. */
    std::vector<Study *> all() const;

    /** Studies whose name matches @p pattern (globMatch), sorted. */
    std::vector<Study *> match(const std::string &pattern) const;

    /** The study named exactly @p name, or nullptr. */
    Study *find(const std::string &name) const;

  private:
    StudyRegistry() = default;

    std::vector<std::unique_ptr<Study>> studies_;
};

/** Registers a study instance at static-initialization time. */
class StudyRegistrar
{
  public:
    explicit StudyRegistrar(std::unique_ptr<Study> s);
};

/**
 * Place at namespace scope in the study's translation unit.  The
 * studies library is an OBJECT library so these registrations are
 * never dropped by the linker.
 */
#define SHARCH_REGISTER_STUDY(cls) \
    static ::sharch::study::StudyRegistrar registrar_##cls{ \
        std::make_unique<cls>()};

} // namespace sharch::study

#endif // SHARCH_STUDY_REGISTRY_HH
