/**
 * @file
 * The Study interface: one registered, parameterized experiment over
 * the shared simulation engine.
 *
 * Every figure/table of the paper's evaluation (and every later
 * ablation or fault study) is a Study: it declares the slice of the
 * performance surface it needs via grid(), and fills a structured
 * Report from the ReportContext it is run with.  Studies self-register
 * with the StudyRegistry (see registry.hh), and the `sharch-bench`
 * driver runs any subset of them as one traffic-shaped workload: the
 * union of the selected grids is prefilled through a single
 * PerfModel::performanceBatch(), saturating the sweep worker pool
 * once instead of once per study.
 */

#ifndef SHARCH_STUDY_STUDY_HH
#define SHARCH_STUDY_STUDY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exec/sweep.hh"
#include "study/report.hh"

namespace sharch {

class PerfModel;

namespace study {

/** Everything a study needs to run, plus the report it fills. */
struct ReportContext
{
    PerfModel &pm;            //!< shared, usually prefilled surface
    std::size_t instructions; //!< trace length per thread
    std::uint64_t seed;       //!< base generation seed
    unsigned threads;         //!< resolved sweep worker count

    Report report;            //!< the study's output
};

/** One registered experiment (a figure, table, or ablation). */
class Study
{
  public:
    virtual ~Study() = default;

    /** Stable id, e.g. "fig13" or "tab7" (the paper's names). */
    virtual std::string name() const = 0;

    /** One-line description for `sharch-bench --list`. */
    virtual std::string description() const = 0;

    /**
     * The performance-surface points this study reads.  The engine
     * prefills them (deduplicated across studies) before run(); a
     * study whose data does not come from the P(c, s) surface returns
     * the default empty grid.
     */
    virtual std::vector<exec::SweepPoint> grid() const { return {}; }

    /** Produce the report (fill ctx.report's tables and notes). */
    virtual void run(ReportContext &ctx) = 0;
};

} // namespace study
} // namespace sharch

#endif // SHARCH_STUDY_STUDY_HH
