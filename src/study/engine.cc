#include "study/engine.hh"

#include <chrono>

#include "common/logging.hh"
#include "core/perf_model.hh"
#include "study/surface.hh"

namespace sharch::study {

std::vector<exec::SweepPoint>
unionGrid(const std::vector<Study *> &studies)
{
    std::vector<exec::SweepPoint> grid;
    for (const Study *s : studies) {
        std::vector<exec::SweepPoint> part = s->grid();
        grid.insert(grid.end(),
                    std::make_move_iterator(part.begin()),
                    std::make_move_iterator(part.end()));
    }
    return grid;
}

Report
runStudy(Study &s, PerfModel &pm, const EngineOptions &opts)
{
    SHARCH_ASSERT(pm.instructionsPerThread() == opts.instructions &&
                      pm.seed() == opts.seed,
                  "study '", s.name(), "': surface is (",
                  pm.instructionsPerThread(), ", ", pm.seed(),
                  ") but options say (", opts.instructions, ", ",
                  opts.seed, ")");

    const auto start = std::chrono::steady_clock::now();
    prefillSurface(pm, s.grid(), opts.threads);

    ReportContext ctx{pm, opts.instructions, opts.seed,
                      exec::resolveThreadCount(opts.threads), {}};
    ctx.report.id = s.name();
    ctx.report.title = s.description();
    ctx.report.addMeta("instructions", opts.instructions);
    ctx.report.addMeta("seed", opts.seed);
    // Sampled numbers are estimates: unlike traceMode (bit-identical
    // either way, never in meta), the schedule is part of the result.
    if (opts.sampleSet)
        ctx.report.addMeta("sample", sampleScheduleName(opts.sample));
    s.run(ctx);

    const double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    ctx.report.addRunInfo("threads", ctx.threads);
    ctx.report.addRunInfo("elapsed_s", elapsed);
    return std::move(ctx.report);
}

} // namespace sharch::study
