#include "study/surface.hh"

#include <chrono>
#include <cstdlib>

#include "common/logging.hh"
#include "config/sim_config.hh"
#include "exec/run_options.hh"
#include "trace/profile.hh"

namespace sharch::study {

namespace {

/**
 * Read an environment count through the same strict parser the CLI
 * uses; @p zero_ok distinguishes seeds (0 is a value) from instruction
 * counts (0 would simulate nothing).
 */
std::uint64_t
envCount(const char *name, std::uint64_t fallback, bool zero_ok)
{
    const char *env = std::getenv(name);
    if (!env || *env == '\0')
        return fallback;
    std::uint64_t v = 0;
    if (!exec::parseU64(env, &v) || (!zero_ok && v == 0)) {
        SHARCH_WARN(name, "='", env, "' is not a valid count; using ",
                    fallback);
        return fallback;
    }
    return v;
}

} // namespace

std::size_t
envInstructions(std::size_t fallback)
{
    return static_cast<std::size_t>(
        envCount("SHARCH_BENCH_INSTRUCTIONS", fallback, false));
}

std::uint64_t
envSeed(std::uint64_t fallback)
{
    return envCount("SHARCH_BENCH_SEED", fallback, true);
}

PerfModel &
sharedPerfModel()
{
    static PerfModel pm(envInstructions(), envSeed());
    static bool initialized = [] {
        enableSharedDiskCache(pm);
        return true;
    }();
    (void)initialized;
    return pm;
}

void
enableSharedDiskCache(PerfModel &pm)
{
    pm.enableDiskCache(kPerfCachePath);
}

PrefillStats
prefillSurface(PerfModel &pm,
               const std::vector<exec::SweepPoint> &grid,
               unsigned threads)
{
    PrefillStats stats;
    stats.threads = exec::resolveThreadCount(threads);
    const auto start = std::chrono::steady_clock::now();
    const std::vector<exec::SweepResult> results =
        pm.performanceBatch(grid, threads);
    stats.points = results.size();
    for (const exec::SweepResult &r : results)
        stats.simulated += r.fresh;
    stats.cached = stats.points - stats.simulated;
    stats.seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    return stats;
}

std::vector<exec::SweepPoint>
fullPaperGrid()
{
    return exec::sweepGrid(benchmarkNames(), l2BankGrid(),
                           exec::sliceRange(SimConfig::kMaxSlices));
}

} // namespace sharch::study
