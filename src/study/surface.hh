/**
 * @file
 * The shared, disk-cached performance surface the studies (and the
 * tools and examples) run against.
 *
 * Moved here from the header-only bench/bench_util.hh so there is one
 * implementation of the disk-cache setup instead of one per binary.
 * All studies sweep the same surface P(c, s); the CSV cache in the
 * working directory lets successive runs share simulation results, so
 * the first run pays for a configuration and the rest reuse it.
 *
 * Environment:
 *   SHARCH_BENCH_INSTRUCTIONS  trace length per thread (default 40000)
 *   SHARCH_BENCH_SEED          generation seed (default 1)
 *   SHARCH_THREADS             sweep worker threads (default: hardware
 *                              concurrency); results are bit-identical
 *                              for any value, including 1
 *
 * Malformed values warn and fall back to the default -- they are never
 * silently read as 0 (the old strtoull behavior).
 */

#ifndef SHARCH_STUDY_SURFACE_HH
#define SHARCH_STUDY_SURFACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/perf_model.hh"
#include "exec/sweep.hh"

namespace sharch::study {

/** The disk-cache file every study run shares (cwd-relative). */
inline constexpr const char *kPerfCachePath = "sharch_perf_cache.csv";

/**
 * SHARCH_BENCH_INSTRUCTIONS, validated like RunOptions validates
 * --instructions: garbage or zero warns and returns the default.
 */
std::size_t envInstructions(std::size_t fallback = 40000);

/** SHARCH_BENCH_SEED, validated; garbage warns and returns default. */
std::uint64_t envSeed(std::uint64_t fallback = 1);

/**
 * The shared, disk-cached performance model at the environment's
 * instruction count and seed.  A process-wide singleton: PerfModel
 * owns mutexes and is deliberately not movable.  Callers that need a
 * different (instructions, seed) -- like the sharch-bench driver with
 * explicit flags -- construct their own PerfModel and call
 * enableSharedDiskCache() on it instead.
 */
PerfModel &sharedPerfModel();

/** Point @p pm at the shared CSV cache (kPerfCachePath). */
void enableSharedDiskCache(PerfModel &pm);

/** What prefillSurface() did, for status lines. */
struct PrefillStats
{
    std::size_t points = 0;    //!< grid points requested
    std::size_t simulated = 0; //!< freshly simulated now
    std::size_t cached = 0;    //!< served from the memo/disk cache
    unsigned threads = 0;      //!< worker count used
    double seconds = 0.0;      //!< wall-clock of the batch
};

/**
 * Simulate every uncached point of @p grid in parallel (one
 * performanceBatch) before a study starts querying the surface point
 * by point.  @p threads 0 resolves via exec::resolveThreadCount().
 */
PrefillStats prefillSurface(PerfModel &pm,
                            const std::vector<exec::SweepPoint> &grid,
                            unsigned threads = 0);

/** The full paper grid: all benchmarks x l2BankGrid() x slices 1..8. */
std::vector<exec::SweepPoint> fullPaperGrid();

} // namespace sharch::study

#endif // SHARCH_STUDY_SURFACE_HH
