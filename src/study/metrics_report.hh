/**
 * @file
 * Bridge from an obs::MetricsSnapshot to a study::Report so the
 * telemetry counters ride the same render pipeline (text/CSV/JSON) as
 * every other table in the repo.
 *
 * Lives in src/study (not src/obs) to keep the dependency arrow
 * pointing one way: obs knows nothing about reports, study links obs.
 * The emitted report carries its own schema tag, "sharch-metrics-v1",
 * distinct from "sharch-report-v1": metrics are volatile run facts
 * (they vary with --threads and wall-clock), so they must never be
 * spliced into a study's deterministic report -- they get their own
 * document instead.
 */

#ifndef SHARCH_STUDY_METRICS_REPORT_HH
#define SHARCH_STUDY_METRICS_REPORT_HH

#include "obs/metrics.hh"
#include "study/report.hh"

namespace sharch::study {

/**
 * Render @p snap as a Report: a "counters" table (metric, kind,
 * value) for counters and gauges, and a "histograms" table (metric,
 * bucket, count) with one row per non-empty bucket, bucket labels
 * formatted as "[lo, hi)" plus "underflow" / "overflow" rows.
 *
 * Deterministic given the snapshot: rows follow metric registration
 * order, which is fixed by link order and first-touch.
 */
Report metricsReport(const obs::MetricsSnapshot &snap);

} // namespace sharch::study

#endif // SHARCH_STUDY_METRICS_REPORT_HH
