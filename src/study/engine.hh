/**
 * @file
 * The study engine: runs registered studies against a shared
 * performance surface and produces structured Reports.
 *
 * runStudy() is the one code path from a Study to its Report -- the
 * sharch-bench driver, the CI smoke stage, and the tests all go
 * through it, so a report rendered anywhere is bit-identical to the
 * same study rendered elsewhere with the same options.  Deterministic
 * run parameters (instructions, seed) go into Report::meta; volatile
 * facts (threads, elapsed) into Report::runInfo, which the JSON/CSV
 * renderers omit (see report.hh's determinism contract).
 */

#ifndef SHARCH_STUDY_ENGINE_HH
#define SHARCH_STUDY_ENGINE_HH

#include <cstdint>
#include <vector>

#include "config/sim_config.hh"
#include "study/study.hh"
#include "trace/inst_source.hh"

namespace sharch {

class PerfModel;

namespace study {

/** Run parameters shared by every study of one engine invocation. */
struct EngineOptions
{
    std::size_t instructions = 40000; //!< trace length per thread
    std::uint64_t seed = 1;           //!< base generation seed
    unsigned threads = 0;             //!< 0: exec::resolveThreadCount()
    /** Studies stream by default; reports are bit-identical in both
     *  modes, so the mode never enters Report::meta. */
    TraceMode traceMode = TraceMode::Stream;
    /** --sample U:W:M: run every study point through the SMARTS
     *  sampling estimator.  Sampled numbers are estimates, so the
     *  schedule IS stamped into Report::meta (unlike traceMode). */
    SampleSchedule sample;
    bool sampleSet = false;
};

/**
 * Concatenation of the selected studies' grids, in selection order.
 * Feed it to one PerfModel::performanceBatch() (which deduplicates)
 * so the sweep pool is saturated once for the whole run.
 */
std::vector<exec::SweepPoint>
unionGrid(const std::vector<Study *> &studies);

/**
 * Run @p s against @p pm: prefill the study's grid (a no-op when the
 * driver already batched the union), execute it, and stamp the
 * standard metadata.  @p pm must have been constructed with
 * (opts.instructions, opts.seed) -- the engine asserts that, since a
 * mismatched surface would silently report the wrong experiment.
 */
Report runStudy(Study &s, PerfModel &pm, const EngineOptions &opts);

} // namespace study
} // namespace sharch

#endif // SHARCH_STUDY_ENGINE_HH
