/**
 * @file
 * The structured report model every layer emits (stats, exec, bench,
 * tools): typed tables plus metadata, with pluggable renderers for
 * aligned text, CSV, and JSON.
 *
 * The historical harnesses printf'd their tables, which no tool could
 * consume; a Report separates *what* a study produced (tables of typed
 * cells, metadata, prose notes) from *how* it is shown.  One schema --
 * "sharch-report-v1" -- covers every producer, so perf trajectories
 * can be tracked and diffed across commits.
 *
 * Determinism contract: renderers are pure functions of the Report,
 * and the JSON/CSV renderers emit only the deterministic fields.
 * Volatile run facts (worker threads, wall-clock elapsed) live in
 * Report::runInfo, which only the text renderer shows -- so a JSON
 * report is bit-identical across `--threads` values and across runs,
 * and machine-readable outputs diff cleanly.
 */

#ifndef SHARCH_STUDY_REPORT_HH
#define SHARCH_STUDY_REPORT_HH

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

namespace sharch::study {

/** One typed cell of a table (or one metadata value). */
struct Value
{
    enum class Kind { Null, Text, Integer, Real, Boolean };

    Kind kind = Kind::Null;
    std::string text;
    std::int64_t integer = 0;
    double real = 0.0;
    bool boolean = false;

    Value() = default;
    Value(const char *t) : kind(Kind::Text), text(t) {}
    Value(std::string t) : kind(Kind::Text), text(std::move(t)) {}
    Value(int v) : kind(Kind::Integer), integer(v) {}
    Value(long v) : kind(Kind::Integer), integer(v) {}
    Value(long long v) : kind(Kind::Integer), integer(v) {}
    Value(unsigned v) : kind(Kind::Integer), integer(v) {}
    Value(unsigned long v)
        : kind(Kind::Integer), integer(static_cast<std::int64_t>(v)) {}
    Value(unsigned long long v)
        : kind(Kind::Integer), integer(static_cast<std::int64_t>(v)) {}
    Value(double v) : kind(Kind::Real), real(v) {}
    Value(bool v) : kind(Kind::Boolean), boolean(v) {}

    /**
     * Canonical machine form: integers in full, reals via "%.17g"
     * (round-trippable, so equal doubles render equally), booleans as
     * true/false.  Used by the CSV renderer and for JSON primitives.
     */
    std::string toCanonical() const;

    /**
     * Human form for the text renderer: reals honor @p precision
     * ("%.*f") when it is >= 0, else "%g".
     */
    std::string toText(int precision) const;

    /** JSON token (canonical form; text gets quoted and escaped). */
    std::string toJson() const;
};

/** A table column: name, cell kind, and text-renderer precision. */
struct Column
{
    std::string name;
    Value::Kind kind = Value::Kind::Text;
    int precision = -1; //!< text-renderer decimals for reals; -1: %g
};

/** A named grid of typed rows. */
struct Table
{
    std::string id;    //!< stable key, e.g. "fig13"
    std::string title; //!< one-line caption

    std::vector<Column> columns;
    std::vector<std::vector<Value>> rows;

    Table() = default;
    Table(std::string id_, std::string title_)
        : id(std::move(id_)), title(std::move(title_)) {}

    /** Append a column (builder style; returns *this for chaining). */
    Table &col(std::string name, Value::Kind kind,
               int precision = -1);

    /** Append a row; asserts the arity matches the columns. */
    void addRow(std::vector<Value> row);
};

/** Everything one study (or tool invocation) reports. */
struct Report
{
    std::string id;    //!< study id, e.g. "fig13"
    std::string title; //!< human title

    /** Deterministic run parameters (seed, instructions, ...). */
    std::vector<std::pair<std::string, Value>> meta;

    /**
     * Volatile facts about this particular run (threads, elapsed
     * seconds).  Shown by the text renderer only; never part of the
     * machine-readable outputs (see the determinism contract above).
     */
    std::vector<std::pair<std::string, Value>> runInfo;

    /**
     * A deque so the reference addTable() returns stays valid while
     * later tables are added (builder-style study code holds several
     * at once).
     */
    std::deque<Table> tables;

    /** Prose observations ("paper shape: ..."). */
    std::vector<std::string> notes;

    /**
     * Pre-rendered JSON sections spliced into the JSON output under
     * their key (e.g. SimStats::toJson() under "stats").  Values must
     * be complete JSON values.  Ignored by the text/CSV renderers.
     */
    std::vector<std::pair<std::string, std::string>> rawJson;

    void addMeta(std::string key, Value v)
    { meta.emplace_back(std::move(key), std::move(v)); }

    void addRunInfo(std::string key, Value v)
    { runInfo.emplace_back(std::move(key), std::move(v)); }

    /** Append an empty table and return it for filling. */
    Table &addTable(std::string id, std::string title);

    void addNote(std::string note)
    { notes.push_back(std::move(note)); }

    void attachJson(std::string key, std::string json)
    { rawJson.emplace_back(std::move(key), std::move(json)); }
};

/** Output format of a rendered report. */
enum class Format { Text, Csv, Json };

/** Parse "text" / "csv" / "json"; false on anything else. */
bool parseFormat(const std::string &name, Format *out);

/** File extension (without dot) for a format. */
const char *formatExtension(Format f);

/** Render @p report in @p format. */
std::string render(const Report &report, Format format);

/** Aligned, human-readable text (the historical harness look). */
std::string renderText(const Report &report);

/**
 * CSV: each table as `# table: id -- title`, a header row, then data
 * rows, separated by blank lines.  Cells in canonical form.
 */
std::string renderCsv(const Report &report);

/** The "sharch-report-v1" JSON schema (deterministic fields only). */
std::string renderJson(const Report &report);

/** JSON string escaping (quotes, backslashes, control characters). */
std::string jsonEscape(const std::string &s);

} // namespace sharch::study

#endif // SHARCH_STUDY_REPORT_HH
