#include "study/metrics_report.hh"

#include <cstdio>

namespace sharch::study {

namespace {

/** "[lo, hi)" with %g bounds -- compact and unambiguous. */
std::string
bucketLabel(double lo, double hi)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "[%g, %g)", lo, hi);
    return buf;
}

} // namespace

Report
metricsReport(const obs::MetricsSnapshot &snap)
{
    Report report;
    report.id = "metrics";
    report.title = "Telemetry counters (sharch-metrics-v1)";
    report.addMeta("schema", "sharch-metrics-v1");

    Table &counters = report.addTable("counters", "Counters and gauges");
    counters.col("metric", Value::Kind::Text)
        .col("kind", Value::Kind::Text)
        .col("value", Value::Kind::Integer);

    Table &hists = report.addTable("histograms", "Histogram buckets");
    hists.col("metric", Value::Kind::Text)
        .col("bucket", Value::Kind::Text)
        .col("count", Value::Kind::Integer);

    for (const obs::MetricValue &m : snap.metrics) {
        if (m.kind != obs::MetricKind::Histogram) {
            counters.addRow({m.name, metricKindName(m.kind),
                             static_cast<long long>(m.value)});
            continue;
        }
        // Histograms also get a one-line sample count next to the
        // counters so a quick text glance shows activity.
        counters.addRow({m.name, metricKindName(m.kind),
                         static_cast<unsigned long long>(m.samples())});
        if (m.underflow > 0) {
            hists.addRow({m.name, "underflow",
                          static_cast<unsigned long long>(m.underflow)});
        }
        for (std::size_t b = 0; b < m.buckets.size(); ++b) {
            if (m.buckets[b] == 0)
                continue; // keep the table to the interesting rows
            const double lo = m.lo + static_cast<double>(b) * m.width;
            hists.addRow({m.name, bucketLabel(lo, lo + m.width),
                          static_cast<unsigned long long>(m.buckets[b])});
        }
        if (m.overflow > 0) {
            hists.addRow({m.name, "overflow",
                          static_cast<unsigned long long>(m.overflow)});
        }
    }
    return report;
}

} // namespace sharch::study
