#include "study/report.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace sharch::study {

namespace {

std::string
formatReal(double v, const char *fmt)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, v);
    return buf;
}

} // namespace

std::string
Value::toCanonical() const
{
    switch (kind) {
      case Kind::Null: return "";
      case Kind::Text: return text;
      case Kind::Integer: return std::to_string(integer);
      case Kind::Real: return formatReal(real, "%.17g");
      case Kind::Boolean: return boolean ? "true" : "false";
    }
    return "";
}

std::string
Value::toText(int precision) const
{
    if (kind == Kind::Real) {
        if (precision >= 0) {
            char fmt[16];
            std::snprintf(fmt, sizeof(fmt), "%%.%df", precision);
            return formatReal(real, fmt);
        }
        return formatReal(real, "%g");
    }
    return toCanonical();
}

std::string
Value::toJson() const
{
    switch (kind) {
      case Kind::Null: return "null";
      case Kind::Text: return "\"" + jsonEscape(text) + "\"";
      case Kind::Integer:
      case Kind::Real:
      case Kind::Boolean: return toCanonical();
    }
    return "null";
}

Table &
Table::col(std::string name, Value::Kind kind, int precision)
{
    columns.push_back(Column{std::move(name), kind, precision});
    return *this;
}

void
Table::addRow(std::vector<Value> row)
{
    SHARCH_ASSERT(row.size() == columns.size(),
                  "table '", id, "': row arity ", row.size(),
                  " != ", columns.size(), " columns");
    rows.push_back(std::move(row));
}

Table &
Report::addTable(std::string id_, std::string title_)
{
    tables.emplace_back(std::move(id_), std::move(title_));
    return tables.back();
}

bool
parseFormat(const std::string &name, Format *out)
{
    if (name == "text") {
        *out = Format::Text;
    } else if (name == "csv") {
        *out = Format::Csv;
    } else if (name == "json") {
        *out = Format::Json;
    } else {
        return false;
    }
    return true;
}

const char *
formatExtension(Format f)
{
    switch (f) {
      case Format::Text: return "txt";
      case Format::Csv: return "csv";
      case Format::Json: return "json";
    }
    return "txt";
}

std::string
render(const Report &report, Format format)
{
    switch (format) {
      case Format::Text: return renderText(report);
      case Format::Csv: return renderCsv(report);
      case Format::Json: return renderJson(report);
    }
    return renderText(report);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

namespace {

bool
rightAligned(Value::Kind k)
{
    return k == Value::Kind::Integer || k == Value::Kind::Real;
}

void
renderTableText(std::ostringstream &oss, const Table &t)
{
    if (!t.title.empty())
        oss << t.id << " -- " << t.title << "\n";

    // Pre-render every cell, then size columns to content.
    std::vector<std::vector<std::string>> cells;
    cells.reserve(t.rows.size());
    for (const std::vector<Value> &row : t.rows) {
        cells.emplace_back();
        for (std::size_t c = 0; c < row.size(); ++c)
            cells.back().push_back(
                row[c].toText(t.columns[c].precision));
    }
    std::vector<std::size_t> width;
    for (const Column &col : t.columns)
        width.push_back(col.name.size());
    for (const std::vector<std::string> &row : cells)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::string &cell, std::size_t c) {
        const std::size_t pad = width[c] - cell.size();
        if (rightAligned(t.columns[c].kind)) {
            oss << std::string(pad, ' ') << cell;
        } else {
            oss << cell;
            if (c + 1 < width.size())
                oss << std::string(pad, ' ');
        }
        if (c + 1 < width.size())
            oss << "  ";
    };
    for (std::size_t c = 0; c < t.columns.size(); ++c)
        emit(t.columns[c].name, c);
    oss << "\n";
    for (const std::vector<std::string> &row : cells) {
        for (std::size_t c = 0; c < row.size(); ++c)
            emit(row[c], c);
        oss << "\n";
    }
}

std::string
csvQuote(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
renderText(const Report &report)
{
    std::ostringstream oss;
    const std::string rule(68, '=');
    oss << rule << "\n" << report.id;
    if (!report.title.empty())
        oss << " -- " << report.title;
    oss << "\n" << rule << "\n";

    auto kv = [&](const std::vector<std::pair<std::string, Value>> &m) {
        for (std::size_t i = 0; i < m.size(); ++i)
            oss << (i ? "  " : "") << m[i].first << "="
                << m[i].second.toText(-1);
    };
    if (!report.meta.empty()) {
        kv(report.meta);
        oss << "\n";
    }
    if (!report.runInfo.empty()) {
        kv(report.runInfo);
        oss << "\n";
    }

    for (const Table &t : report.tables) {
        oss << "\n";
        renderTableText(oss, t);
    }
    if (!report.notes.empty()) {
        oss << "\n";
        for (const std::string &n : report.notes)
            oss << n << "\n";
    }
    return oss.str();
}

std::string
renderCsv(const Report &report)
{
    std::ostringstream oss;
    oss << "# report: " << report.id;
    if (!report.title.empty())
        oss << " -- " << report.title;
    oss << "\n";
    for (const auto &[key, value] : report.meta)
        oss << "# meta: " << key << "=" << value.toCanonical() << "\n";

    for (const Table &t : report.tables) {
        oss << "\n# table: " << t.id;
        if (!t.title.empty())
            oss << " -- " << t.title;
        oss << "\n";
        for (std::size_t c = 0; c < t.columns.size(); ++c)
            oss << (c ? "," : "") << csvQuote(t.columns[c].name);
        oss << "\n";
        for (const std::vector<Value> &row : t.rows) {
            for (std::size_t c = 0; c < row.size(); ++c)
                oss << (c ? "," : "")
                    << csvQuote(row[c].toCanonical());
            oss << "\n";
        }
    }
    return oss.str();
}

std::string
renderJson(const Report &report)
{
    std::ostringstream oss;
    oss << "{\"schema\":\"sharch-report-v1\"";
    oss << ",\"id\":\"" << jsonEscape(report.id) << "\"";
    oss << ",\"title\":\"" << jsonEscape(report.title) << "\"";

    oss << ",\"meta\":{";
    for (std::size_t i = 0; i < report.meta.size(); ++i)
        oss << (i ? "," : "") << "\""
            << jsonEscape(report.meta[i].first)
            << "\":" << report.meta[i].second.toJson();
    oss << "}";

    oss << ",\"tables\":[";
    for (std::size_t t = 0; t < report.tables.size(); ++t) {
        const Table &tab = report.tables[t];
        oss << (t ? "," : "") << "{\"id\":\"" << jsonEscape(tab.id)
            << "\",\"title\":\"" << jsonEscape(tab.title)
            << "\",\"columns\":[";
        for (std::size_t c = 0; c < tab.columns.size(); ++c) {
            const char *kind = "text";
            switch (tab.columns[c].kind) {
              case Value::Kind::Integer: kind = "integer"; break;
              case Value::Kind::Real: kind = "real"; break;
              case Value::Kind::Boolean: kind = "boolean"; break;
              default: break;
            }
            oss << (c ? "," : "") << "{\"name\":\""
                << jsonEscape(tab.columns[c].name) << "\",\"kind\":\""
                << kind << "\"}";
        }
        oss << "],\"rows\":[";
        for (std::size_t r = 0; r < tab.rows.size(); ++r) {
            oss << (r ? "," : "") << "[";
            for (std::size_t c = 0; c < tab.rows[r].size(); ++c)
                oss << (c ? "," : "") << tab.rows[r][c].toJson();
            oss << "]";
        }
        oss << "]}";
    }
    oss << "]";

    oss << ",\"notes\":[";
    for (std::size_t i = 0; i < report.notes.size(); ++i)
        oss << (i ? "," : "") << "\"" << jsonEscape(report.notes[i])
            << "\"";
    oss << "]";

    for (const auto &[key, json] : report.rawJson)
        oss << ",\"" << jsonEscape(key) << "\":" << json;

    oss << "}\n";
    return oss.str();
}

} // namespace sharch::study
