#include "econ/optimizer.hh"

#include <cmath>

#include "common/logging.hh"

namespace sharch {

UtilityOptimizer::UtilityOptimizer(PerfModel &perf, const AreaModel &area)
    : perf_(&perf), area_(area)
{
}

OptResult
UtilityOptimizer::peakPerfPerArea(const BenchmarkProfile &profile, int k)
{
    SHARCH_ASSERT(k >= 1 && k <= 3, "metric exponent must be 1..3");
    OptResult best;
    bool first = true;
    for (unsigned s = 1; s <= SimConfig::kMaxSlices; ++s) {
        for (unsigned banks : l2BankGrid()) {
            const double p = perf_->performance(profile, banks, s);
            const double area = area_.vcoreAreaMm2(s, banks);
            const double metric = std::pow(p, k) / area;
            if (first || metric > best.objective) {
                first = false;
                best.banks = banks;
                best.slices = s;
                best.perf = p;
                best.objective = metric;
            }
        }
    }
    return best;
}

OptResult
UtilityOptimizer::peakPerfPerArea(const std::string &benchmark, int k)
{
    return peakPerfPerArea(profileFor(benchmark), k);
}

double
UtilityOptimizer::utilityAt(const std::string &benchmark, UtilityKind u,
                            const Market &market, double budget,
                            unsigned banks, unsigned slices)
{
    const double p = perf_->performance(benchmark, banks, slices);
    const double v = coresAffordable(market, budget, banks, slices);
    return utilityValue(u, v, p);
}

OptResult
UtilityOptimizer::peakUtility(const std::string &benchmark, UtilityKind u,
                              const Market &market, double budget)
{
    OptResult best;
    bool first = true;
    for (unsigned s = 1; s <= SimConfig::kMaxSlices; ++s) {
        for (unsigned banks : l2BankGrid()) {
            const double p = perf_->performance(benchmark, banks, s);
            const double v =
                coresAffordable(market, budget, banks, s);
            const double util = utilityValue(u, v, p);
            if (first || util > best.objective) {
                first = false;
                best.banks = banks;
                best.slices = s;
                best.perf = p;
                best.objective = util;
                best.cores = v;
            }
        }
    }
    return best;
}

std::vector<SurfacePoint>
UtilityOptimizer::utilitySurface(const std::string &benchmark,
                                 UtilityKind u, const Market &market,
                                 double budget)
{
    std::vector<SurfacePoint> points;
    for (unsigned s = 1; s <= SimConfig::kMaxSlices; ++s) {
        for (unsigned banks : l2BankGrid()) {
            SurfacePoint pt;
            pt.banks = banks;
            pt.slices = s;
            pt.utility =
                utilityAt(benchmark, u, market, budget, banks, s);
            points.push_back(pt);
        }
    }
    return points;
}

} // namespace sharch
