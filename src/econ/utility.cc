#include "econ/utility.hh"

#include <cmath>

#include "common/logging.hh"

namespace sharch {

const char *
utilityName(UtilityKind k)
{
    switch (k) {
      case UtilityKind::Throughput: return "Utility1";
      case UtilityKind::Balanced: return "Utility2";
      case UtilityKind::SingleStream: return "Utility3";
      default: return "unknown";
    }
}

bool
parseUtilityName(const std::string &name, UtilityKind *out)
{
    if (name == "Utility1" || name == "throughput")
        *out = UtilityKind::Throughput;
    else if (name == "Utility2" || name == "balanced")
        *out = UtilityKind::Balanced;
    else if (name == "Utility3" || name == "single-stream")
        *out = UtilityKind::SingleStream;
    else
        return false;
    return true;
}

int
utilityExponent(UtilityKind k)
{
    switch (k) {
      case UtilityKind::Throughput: return 1;
      case UtilityKind::Balanced: return 2;
      case UtilityKind::SingleStream: return 3;
      default: SHARCH_PANIC("unknown utility kind");
    }
}

double
utilityValue(UtilityKind k, double v, double perf)
{
    SHARCH_ASSERT(v >= 0.0 && perf >= 0.0,
                  "utility arguments must be nonnegative");
    switch (k) {
      case UtilityKind::Throughput:
        return v * perf;
      case UtilityKind::Balanced:
        return std::sqrt(v) * perf * perf;
      case UtilityKind::SingleStream:
        return std::cbrt(v) * perf * perf * perf;
      default:
        SHARCH_PANIC("unknown utility kind");
    }
}

} // namespace sharch
