#include "econ/phases.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/math_util.hh"

namespace sharch {

namespace {

/** Performance adjusted for a reconfiguration stall at phase entry. */
double
adjustedPerf(double perf, std::size_t instructions, Cycles penalty)
{
    if (penalty == 0 || perf <= 0.0)
        return perf;
    const double cycles = static_cast<double>(instructions) / perf;
    return static_cast<double>(instructions) /
           (cycles + static_cast<double>(penalty));
}

} // namespace

PhaseStudyResult
phaseStudy(UtilityOptimizer &opt, std::vector<BenchmarkProfile> phases,
           double phase_scale)
{
    SHARCH_ASSERT(phase_scale >= 1.0, "phases cannot shrink");
    if (phases.empty())
        phases = gccPhaseProfiles();
    SHARCH_ASSERT(!phases.empty(), "need at least one phase");

    PerfModel &pm = opt.perfModel();
    const AreaModel &am = opt.areaModel();
    const ReconfigManager reconfig;
    const std::size_t instructions = pm.instructionsPerThread();

    PhaseStudyResult result;
    result.phases = phases;

    for (int k = 1; k <= 3; ++k) {
        PhaseStudyRow row;
        row.metricExponent = k;

        // Per-phase optimal shapes (ignoring transition costs, as the
        // paper's per-phase columns do).
        for (const BenchmarkProfile &phase : phases) {
            const OptResult best = opt.peakPerfPerArea(phase, k);
            row.perPhase.push_back(
                VCoreShape{best.banks, best.slices});
        }

        // Dynamic GME: run each phase at its own optimum, charging the
        // transition penalty when the shape changed from the previous
        // phase.
        std::vector<double> dyn_metrics;
        VCoreShape prev = row.perPhase.front();
        for (std::size_t i = 0; i < phases.size(); ++i) {
            const VCoreShape shape = row.perPhase[i];
            const Cycles penalty =
                i == 0 ? 0 : reconfig.transitionCost(prev, shape);
            double p = pm.performance(phases[i], shape.banks,
                                      shape.slices);
            p = adjustedPerf(p,
                             static_cast<std::size_t>(
                                 instructions * phase_scale),
                             penalty);
            const double area =
                am.vcoreAreaMm2(shape.slices, shape.banks);
            dyn_metrics.push_back(std::pow(p, k) / area);
            prev = shape;
        }
        row.dynamicGme = geometricMean(dyn_metrics);

        // Static optimum: the single shape maximizing the GME of the
        // metric across all phases (more stringent than the optimum
        // across benchmarks, as the paper notes).
        double best_static = 0.0;
        VCoreShape best_shape;
        bool first = true;
        for (unsigned s = 1; s <= SimConfig::kMaxSlices; ++s) {
            for (unsigned banks : l2BankGrid()) {
                std::vector<double> metrics;
                const double area = am.vcoreAreaMm2(s, banks);
                for (const BenchmarkProfile &phase : phases) {
                    const double p =
                        pm.performance(phase, banks, s);
                    metrics.push_back(
                        std::max(1e-12, std::pow(p, k) / area));
                }
                const double gme = geometricMean(metrics);
                if (first || gme > best_static) {
                    first = false;
                    best_static = gme;
                    best_shape = VCoreShape{banks, s};
                }
            }
        }
        row.staticOptimal = best_shape;
        row.staticGme = best_static;
        row.gain = row.dynamicGme / row.staticGme - 1.0;
        result.rows.push_back(std::move(row));
    }
    return result;
}

} // namespace sharch
