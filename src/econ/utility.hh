/**
 * @file
 * Cloud-customer utility functions (section 5.6, Table 5).
 *
 * A customer buys v cores' worth of resources under a budget and gains
 * utility as a function of the per-core single-thread performance
 * P(c, s).  The paper's three exemplar utilities, ordered from
 * throughput-oriented to single-stream-obsessed:
 *
 *   Utility1 (latency-tolerant, Equation 4):  U = v * P
 *   Utility2:                                 U = sqrt(v) * P^2
 *   Utility3 (OLDI-style, Equation 1):        U = cbrt(v) * P^3
 */

#ifndef SHARCH_ECON_UTILITY_HH
#define SHARCH_ECON_UTILITY_HH

#include <string>

namespace sharch {

/** The three utility families of Table 5. */
enum class UtilityKind
{
    Throughput,   //!< Utility1: v * P
    Balanced,     //!< Utility2: sqrt(v) * P^2
    SingleStream, //!< Utility3: cbrt(v) * P^3
};

/** All three kinds in the paper's order. */
inline constexpr UtilityKind kAllUtilities[] = {
    UtilityKind::Throughput, UtilityKind::Balanced,
    UtilityKind::SingleStream};

/** "Utility1" / "Utility2" / "Utility3". */
const char *utilityName(UtilityKind k);

/**
 * Inverse of utilityName(), for deserializing state documents and
 * serve-protocol requests.  Also accepts the descriptive aliases
 * "throughput" / "balanced" / "single-stream" so hand-written
 * requests need not remember the paper's numbering.
 * @return false when @p name matches neither spelling.
 */
bool parseUtilityName(const std::string &name, UtilityKind *out);

/** The performance exponent of the utility (1, 2, or 3). */
int utilityExponent(UtilityKind k);

/**
 * Utility of owning @p v cores each delivering performance @p perf.
 * @p v may be fractional (resources are divisible in the Sharing
 * Architecture's market).
 */
double utilityValue(UtilityKind k, double v, double perf);

} // namespace sharch

#endif // SHARCH_ECON_UTILITY_HH
