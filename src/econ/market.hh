/**
 * @file
 * Sub-core resource markets (section 5.7).
 *
 * The Sharing Architecture lets a provider price Slices and 64 KB L2
 * banks separately.  The paper studies three markets around the
 * equal-area anchor "1 Slice costs the same as 128 KB Cache":
 *
 *   Market1: Slices cost 4x their equal-area price
 *   Market2: prices track area exactly
 *   Market3: cache costs 4x its equal-area price
 *
 * With the bank as the unit of account (price 1 in Market1/2), the
 * price vectors are {slice, bank} = {8, 1}, {2, 1}, {2, 4}.
 */

#ifndef SHARCH_ECON_MARKET_HH
#define SHARCH_ECON_MARKET_HH

#include <string>
#include <vector>

#include "common/json.hh"

namespace sharch {

/** A price vector for the two sub-core resources. */
struct Market
{
    std::string name;
    double slicePrice = 2.0;   //!< per Slice
    double bankPrice = 1.0;    //!< per 64 KB L2 bank
};

/** Market1: Slices at 4x equal-area cost. */
Market market1();
/** Market2: cost == area (the default for the efficiency studies). */
Market market2();
/** Market3: cache at 4x equal-area cost. */
Market market3();

/** The three markets in the paper's order. */
std::vector<Market> allMarkets();

/** Cost of one VCore of @p banks banks and @p slices Slices. */
double configCost(const Market &m, unsigned banks, unsigned slices);

/**
 * Cores affordable under @p budget (Equation 2):
 * v = B / (Cc*c + Cs*s).  Fractional v is allowed.
 */
double coresAffordable(const Market &m, double budget, unsigned banks,
                       unsigned slices);

/**
 * The budget used throughout the efficiency studies: enough to buy
 * eight of the largest single-resource bundles so every grid point is
 * affordable with v >= ~0.2.
 */
double defaultBudget();

/**
 * A price vector as a JSON object for sharch-state-v1 documents:
 * {"name":...,"slice_price":...,"bank_price":...} with canonical
 * "%.17g" reals, so equal markets serialize to equal bytes.
 */
json::Value marketToJson(const Market &m);

/**
 * Rebuild a Market from marketToJson() output.  @return false (and
 * set @p error to the missing/ill-typed field) on anything else.
 */
bool marketFromJson(const json::Value &v, Market *out,
                    std::string *error);

} // namespace sharch

#endif // SHARCH_ECON_MARKET_HH
