/**
 * @file
 * Market-efficiency comparisons (section 5.8, Figures 15 and 16).
 *
 * How much total utility does the Sharing Architecture's per-customer
 * configurability win over (a) one fixed multicore design chosen to be
 * as good as possible across the whole suite, and (b) a heterogeneous
 * chip whose per-utility-class core types are chosen across the suite?
 *
 * Following the paper, the study runs in Market2 (prices == area),
 * pairs every (benchmark, utility) customer with every other, and
 * reports
 *
 *   gain = (U_b1(sharing) + U_b2(sharing))
 *        / (U_b1(fixed_c) + U_b2(fixed_d)).
 */

#ifndef SHARCH_ECON_EFFICIENCY_HH
#define SHARCH_ECON_EFFICIENCY_HH

#include <string>
#include <vector>

#include "econ/optimizer.hh"

namespace sharch {

/** One customer: a workload plus a utility function. */
struct Customer
{
    std::string benchmark;
    UtilityKind utility = UtilityKind::Throughput;
};

/** One point of Figure 15/16. */
struct PairGain
{
    Customer a;
    Customer b;
    double gain = 1.0;
};

/** Summary of a pairwise study. */
struct EfficiencyResult
{
    std::vector<PairGain> gains;  //!< one per unordered customer pair
    double maxGain = 0.0;
    double meanGain = 0.0;
    unsigned banksFixed = 0;      //!< the fixed design's banks
    unsigned slicesFixed = 1;     //!< and Slices (Fig. 15 study only)
};

/** Pairwise Sharing-vs-fixed and Sharing-vs-heterogeneous studies. */
class EfficiencyStudy
{
  public:
    /**
     * @param opt     shared optimizer/performance surface
     * @param budget  per-customer budget (defaultBudget() if <= 0)
     */
    explicit EfficiencyStudy(UtilityOptimizer &opt, double budget = 0.0);

    /** All 45 customers: every benchmark x every utility. */
    std::vector<Customer> allCustomers() const;

    /**
     * The single fixed configuration that maximizes the geometric mean
     * of utility across all customers (the best static multicore an
     * IaaS provider could deploy).
     */
    OptResult bestStaticConfig();

    /**
     * Per-utility-kind best configurations -- what a heterogeneous
     * multicore fixes at design time (one core type per utility
     * class, following [18]).
     */
    std::vector<OptResult> bestPerUtilityConfigs();

    /** Figure 15: Sharing vs. the best static fixed architecture. */
    EfficiencyResult vsStaticFixed();

    /** Figure 16: Sharing vs. the heterogeneous per-utility designs. */
    EfficiencyResult vsHeterogeneous();

  private:
    UtilityOptimizer *opt_;
    Market market_;
    double budget_;

    double sharingUtility(const Customer &c);
    double utilityAtConfig(const Customer &c, unsigned banks,
                           unsigned slices);
    EfficiencyResult pairwiseStudy(
        const std::vector<double> &fixed_utils);
};

} // namespace sharch

#endif // SHARCH_ECON_EFFICIENCY_HH
