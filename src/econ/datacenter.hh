/**
 * @file
 * Datacenter heterogeneity study (section 5.9, Figure 17).
 *
 * A heterogeneous datacenter fixes a mix of big cores (for hmmer vs.
 * gobmk: 3 Slices + 256 KB, gobmk's peak-Utility1 shape) and small
 * cores (1 Slice + 0 KB, hmmer's).  Given an application mix, jobs are
 * assigned to core types to maximize total performance/area.  The
 * paper's point: the optimal big/small ratio moves with the mix, so no
 * fixed ratio serves all mixes -- whereas the Sharing Architecture
 * reshapes the same silicon.
 */

#ifndef SHARCH_ECON_DATACENTER_HH
#define SHARCH_ECON_DATACENTER_HH

#include <string>
#include <vector>

#include "econ/optimizer.hh"

namespace sharch {

/** A fixed core type deployed in the heterogeneous datacenter. */
struct CoreType
{
    std::string label;
    unsigned banks = 0;
    unsigned slices = 1;
};

/** Utility at one (big-core area fraction, application mix) point. */
struct MixPoint
{
    double bigCoreAreaFrac = 0.0; //!< area devoted to big cores
    double appAMix = 0.5;         //!< fraction of jobs that are app A
    double utilityPerArea = 0.0;  //!< total perf/area achieved
};

/** Result of sweeping core ratios for several application mixes. */
struct DatacenterResult
{
    CoreType big;
    CoreType small;
    std::vector<MixPoint> points;

    /** Best big-core fraction for a given mix (from points). */
    double optimalBigFrac(double app_a_mix) const;
};

/**
 * Sweep big-core area fraction x application mix for two workloads.
 *
 * Following the paper's method, the two fixed core types are each
 * application's own peak-perf/area VCore shape (the paper's data gave
 * hmmer a 1-Slice/0 KB small core and gobmk a 3-Slice/256 KB big
 * core; we derive the shapes from our own surface).  Jobs are then
 * assigned to core types to maximize total performance per chip area.
 *
 * @param opt    shared performance/area surface
 * @param app_a  the small-core-friendly workload (paper: hmmer)
 * @param app_b  the big-core-friendly workload (paper: gobmk)
 * @param mixes  application-mix fractions to evaluate
 * @param steps  number of big-core-fraction samples in [0, 1]
 */
DatacenterResult datacenterStudy(UtilityOptimizer &opt,
                                 const std::string &app_a,
                                 const std::string &app_b,
                                 const std::vector<double> &mixes,
                                 unsigned steps = 21);

/**
 * The same sweep with a fraction of each deployed core type failed.
 *
 * A fixed heterogeneous datacenter loses *whole cores* to faults: a
 * dead big core takes all of its Slices and cache with it, and the
 * remaining mix cannot be rebalanced.  Scaling the deployed counts by
 * (1 - fail fraction) models exactly that, so comparing this surface
 * against the healthy one (or against the Sharing Architecture's
 * graceful degradation, which only sheds the faulty tiles) quantifies
 * the configurability advantage under failures.  With both fractions
 * zero the result is bit-identical to datacenterStudy().
 *
 * @param big_fail   fraction of big cores out of service, in [0, 1)
 * @param small_fail fraction of small cores out of service, in [0, 1)
 */
DatacenterResult datacenterStudyDegraded(
    UtilityOptimizer &opt, const std::string &app_a,
    const std::string &app_b, const std::vector<double> &mixes,
    double big_fail, double small_fail, unsigned steps = 21);

} // namespace sharch

#endif // SHARCH_ECON_DATACENTER_HH
