/**
 * @file
 * Exhaustive configuration search (sections 5.5-5.7).
 *
 * The paper finds optimal VCore shapes by exhaustively sweeping Slice
 * count 1..8 and L2 size 0..8 MB.  UtilityOptimizer does the same over
 * PerfModel's memoized surface for two families of objectives:
 *
 *  - performance^k / area  (Table 4; k = 1, 2, 3), and
 *  - customer utility under a market and budget (Tables 5/6,
 *    Figure 14).
 */

#ifndef SHARCH_ECON_OPTIMIZER_HH
#define SHARCH_ECON_OPTIMIZER_HH

#include <string>
#include <vector>

#include "area/area_model.hh"
#include "core/perf_model.hh"
#include "econ/market.hh"
#include "econ/utility.hh"

namespace sharch {

/** The winning point of a sweep. */
struct OptResult
{
    unsigned banks = 0;
    unsigned slices = 1;
    double perf = 0.0;     //!< P(c, s) at the optimum
    double objective = 0.0; //!< metric or utility value
    double cores = 0.0;    //!< v at the optimum (utility sweeps only)

    unsigned cacheKb() const { return banks * 64; }
};

/** One sampled point of a utility surface (Figure 14). */
struct SurfacePoint
{
    unsigned banks = 0;
    unsigned slices = 1;
    double utility = 0.0;
};

/** Exhaustive sweeps over the (banks, slices) grid. */
class UtilityOptimizer
{
  public:
    /**
     * @param perf memoized performance surface (shared across studies)
     * @param area area model for the performance/area metrics
     */
    UtilityOptimizer(PerfModel &perf, const AreaModel &area);

    /** argmax P(c,s)^k / area(c,s) -- Table 4's metrics. */
    OptResult peakPerfPerArea(const std::string &benchmark, int k);
    OptResult peakPerfPerArea(const BenchmarkProfile &profile, int k);

    /** argmax utility under @p market and @p budget -- Tables 5/6. */
    OptResult peakUtility(const std::string &benchmark, UtilityKind u,
                          const Market &market, double budget);

    /** Utility at one explicit configuration. */
    double utilityAt(const std::string &benchmark, UtilityKind u,
                     const Market &market, double budget,
                     unsigned banks, unsigned slices);

    /** The whole surface (Figure 14's heat maps). */
    std::vector<SurfacePoint> utilitySurface(
        const std::string &benchmark, UtilityKind u,
        const Market &market, double budget);

    PerfModel &perfModel() { return *perf_; }
    const AreaModel &areaModel() const { return area_; }

  private:
    PerfModel *perf_;
    AreaModel area_;
};

} // namespace sharch

#endif // SHARCH_ECON_OPTIMIZER_HH
