#include "econ/efficiency.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/math_util.hh"
#include "trace/profile.hh"

namespace sharch {

EfficiencyStudy::EfficiencyStudy(UtilityOptimizer &opt, double budget)
    : opt_(&opt), market_(market2()),
      budget_(budget > 0.0 ? budget : defaultBudget())
{
}

std::vector<Customer>
EfficiencyStudy::allCustomers() const
{
    std::vector<Customer> customers;
    for (const std::string &b : benchmarkNames())
        for (UtilityKind u : kAllUtilities)
            customers.push_back(Customer{b, u});
    return customers;
}

double
EfficiencyStudy::sharingUtility(const Customer &c)
{
    return opt_->peakUtility(c.benchmark, c.utility, market_, budget_)
        .objective;
}

double
EfficiencyStudy::utilityAtConfig(const Customer &c, unsigned banks,
                                 unsigned slices)
{
    return opt_->utilityAt(c.benchmark, c.utility, market_, budget_,
                           banks, slices);
}

OptResult
EfficiencyStudy::bestStaticConfig()
{
    const std::vector<Customer> customers = allCustomers();
    OptResult best;
    bool first = true;
    for (unsigned s = 1; s <= SimConfig::kMaxSlices; ++s) {
        for (unsigned banks : l2BankGrid()) {
            std::vector<double> utils;
            utils.reserve(customers.size());
            for (const Customer &c : customers)
                utils.push_back(
                    std::max(1e-12,
                             utilityAtConfig(c, banks, s)));
            const double gme = geometricMean(utils);
            if (first || gme > best.objective) {
                first = false;
                best.banks = banks;
                best.slices = s;
                best.objective = gme;
            }
        }
    }
    return best;
}

std::vector<OptResult>
EfficiencyStudy::bestPerUtilityConfigs()
{
    std::vector<OptResult> result;
    for (UtilityKind u : kAllUtilities) {
        OptResult best;
        bool first = true;
        for (unsigned s = 1; s <= SimConfig::kMaxSlices; ++s) {
            for (unsigned banks : l2BankGrid()) {
                std::vector<double> utils;
                for (const std::string &b : benchmarkNames()) {
                    utils.push_back(std::max(
                        1e-12,
                        utilityAtConfig(Customer{b, u}, banks, s)));
                }
                const double gme = geometricMean(utils);
                if (first || gme > best.objective) {
                    first = false;
                    best.banks = banks;
                    best.slices = s;
                    best.objective = gme;
                }
            }
        }
        result.push_back(best);
    }
    return result;
}

EfficiencyResult
EfficiencyStudy::pairwiseStudy(const std::vector<double> &fixed_utils)
{
    const std::vector<Customer> customers = allCustomers();
    SHARCH_ASSERT(fixed_utils.size() == customers.size(),
                  "one fixed utility per customer required");

    std::vector<double> sharing_utils;
    sharing_utils.reserve(customers.size());
    for (const Customer &c : customers)
        sharing_utils.push_back(sharingUtility(c));

    EfficiencyResult res;
    double total = 0.0;
    for (std::size_t i = 0; i < customers.size(); ++i) {
        for (std::size_t j = i + 1; j < customers.size(); ++j) {
            PairGain pg;
            pg.a = customers[i];
            pg.b = customers[j];
            const double denom = fixed_utils[i] + fixed_utils[j];
            pg.gain = safeDiv(sharing_utils[i] + sharing_utils[j],
                              denom, 1.0);
            res.maxGain = std::max(res.maxGain, pg.gain);
            total += pg.gain;
            res.gains.push_back(pg);
        }
    }
    res.meanGain = res.gains.empty()
                       ? 0.0
                       : total / static_cast<double>(res.gains.size());
    return res;
}

EfficiencyResult
EfficiencyStudy::vsStaticFixed()
{
    const OptResult fixed = bestStaticConfig();
    const std::vector<Customer> customers = allCustomers();
    std::vector<double> fixed_utils;
    fixed_utils.reserve(customers.size());
    for (const Customer &c : customers) {
        fixed_utils.push_back(
            utilityAtConfig(c, fixed.banks, fixed.slices));
    }
    EfficiencyResult res = pairwiseStudy(fixed_utils);
    res.banksFixed = fixed.banks;
    res.slicesFixed = fixed.slices;
    return res;
}

EfficiencyResult
EfficiencyStudy::vsHeterogeneous()
{
    const std::vector<OptResult> per_utility = bestPerUtilityConfigs();
    const std::vector<Customer> customers = allCustomers();
    std::vector<double> fixed_utils;
    fixed_utils.reserve(customers.size());
    for (const Customer &c : customers) {
        const OptResult &cfg =
            per_utility[static_cast<std::size_t>(
                utilityExponent(c.utility) - 1)];
        fixed_utils.push_back(
            utilityAtConfig(c, cfg.banks, cfg.slices));
    }
    return pairwiseStudy(fixed_utils);
}

} // namespace sharch
