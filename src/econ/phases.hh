/**
 * @file
 * Dynamic-phase study (section 5.10, Table 7).
 *
 * gcc is split into ten phases; each phase is simulated independently
 * across the configuration grid, and for each performance/area metric
 * the study reports the per-phase optimal VCore shape, the dynamic
 * (reconfigure-every-phase) geometric-mean metric -- charging 10,000
 * cycles when a transition changes the L2 allotment and 500 cycles
 * when only the Slice count changes -- and the gain over the best
 * single static configuration for the same program.
 */

#ifndef SHARCH_ECON_PHASES_HH
#define SHARCH_ECON_PHASES_HH

#include <vector>

#include "core/reconfig.hh"
#include "econ/optimizer.hh"
#include "trace/profile.hh"

namespace sharch {

/** Table 7, one metric row. */
struct PhaseStudyRow
{
    int metricExponent = 1;            //!< perf^k/area
    std::vector<VCoreShape> perPhase;  //!< optimal shape per phase
    VCoreShape staticOptimal;          //!< best single configuration
    double dynamicGme = 0.0;           //!< GME of per-phase metric,
                                       //!< reconfig costs charged
    double staticGme = 0.0;            //!< GME at staticOptimal
    double gain = 0.0;                 //!< dynamicGme/staticGme - 1
};

/** Full Table 7. */
struct PhaseStudyResult
{
    std::vector<BenchmarkProfile> phases;
    std::vector<PhaseStudyRow> rows;   //!< one per metric k = 1, 2, 3
};

/**
 * Run the dynamic-phase study.
 *
 * @param opt    shared performance/area surface
 * @param phases phase profiles (defaults to gccPhaseProfiles())
 * @param phase_scale how many instructions each simulated phase
 *        represents, as a multiple of the simulated trace length; the
 *        paper's phases are tenths of a full SPEC run, so the 10,000
 *        cycle reconfiguration penalty must be amortized over far more
 *        instructions than a calibration-sized trace
 */
PhaseStudyResult phaseStudy(UtilityOptimizer &opt,
                            std::vector<BenchmarkProfile> phases = {},
                            double phase_scale = 25.0);

} // namespace sharch

#endif // SHARCH_ECON_PHASES_HH
