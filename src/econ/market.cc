#include "econ/market.hh"

#include "common/logging.hh"

namespace sharch {

Market
market1()
{
    return Market{"Market1", 8.0, 1.0};
}

Market
market2()
{
    return Market{"Market2", 2.0, 1.0};
}

Market
market3()
{
    return Market{"Market3", 2.0, 4.0};
}

std::vector<Market>
allMarkets()
{
    return {market1(), market2(), market3()};
}

double
configCost(const Market &m, unsigned banks, unsigned slices)
{
    SHARCH_ASSERT(slices >= 1, "a VCore needs at least one Slice");
    return m.bankPrice * banks + m.slicePrice * slices;
}

double
coresAffordable(const Market &m, double budget, unsigned banks,
                unsigned slices)
{
    SHARCH_ASSERT(budget > 0.0, "budget must be positive");
    return budget / configCost(m, banks, slices);
}

double
defaultBudget()
{
    // Eight maxed-out VCores under Market2 (128 banks + 8 slices each).
    return 8.0 * configCost(market2(), 128, 8);
}

json::Value
marketToJson(const Market &m)
{
    json::Value v = json::Value::object();
    v.add("name", json::Value::string(m.name));
    v.add("slice_price", json::Value::number(m.slicePrice));
    v.add("bank_price", json::Value::number(m.bankPrice));
    return v;
}

bool
marketFromJson(const json::Value &v, Market *out, std::string *error)
{
    if (!v.isObject()) {
        *error = "market must be a JSON object";
        return false;
    }
    const json::Value *name = v.get("name");
    const json::Value *slice = v.get("slice_price");
    const json::Value *bank = v.get("bank_price");
    if (!name || !name->isString()) {
        *error = "market.name missing or not a string";
        return false;
    }
    if (!slice || !slice->isNumber()) {
        *error = "market.slice_price missing or not a number";
        return false;
    }
    if (!bank || !bank->isNumber()) {
        *error = "market.bank_price missing or not a number";
        return false;
    }
    out->name = name->text;
    out->slicePrice = slice->asDouble();
    out->bankPrice = bank->asDouble();
    return true;
}

} // namespace sharch
