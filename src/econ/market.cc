#include "econ/market.hh"

#include "common/logging.hh"

namespace sharch {

Market
market1()
{
    return Market{"Market1", 8.0, 1.0};
}

Market
market2()
{
    return Market{"Market2", 2.0, 1.0};
}

Market
market3()
{
    return Market{"Market3", 2.0, 4.0};
}

std::vector<Market>
allMarkets()
{
    return {market1(), market2(), market3()};
}

double
configCost(const Market &m, unsigned banks, unsigned slices)
{
    SHARCH_ASSERT(slices >= 1, "a VCore needs at least one Slice");
    return m.bankPrice * banks + m.slicePrice * slices;
}

double
coresAffordable(const Market &m, double budget, unsigned banks,
                unsigned slices)
{
    SHARCH_ASSERT(budget > 0.0, "budget must be positive");
    return budget / configCost(m, banks, slices);
}

double
defaultBudget()
{
    // Eight maxed-out VCores under Market2 (128 banks + 8 slices each).
    return 8.0 * configCost(market2(), 128, 8);
}

} // namespace sharch
