#include "econ/datacenter.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace sharch {

double
DatacenterResult::optimalBigFrac(double app_a_mix) const
{
    double best_frac = 0.0;
    double best_util = -1.0;
    for (const MixPoint &p : points) {
        if (std::abs(p.appAMix - app_a_mix) > 1e-9)
            continue;
        if (p.utilityPerArea > best_util) {
            best_util = p.utilityPerArea;
            best_frac = p.bigCoreAreaFrac;
        }
    }
    SHARCH_ASSERT(best_util >= 0.0, "mix not present in study");
    return best_frac;
}

namespace {

DatacenterResult
studyImpl(UtilityOptimizer &opt, const std::string &app_a,
          const std::string &app_b, const std::vector<double> &mixes,
          unsigned steps, double big_fail, double small_fail)
{
    SHARCH_ASSERT(steps >= 2, "need at least two ratio samples");

    DatacenterResult res;
    PerfModel &pm = opt.perfModel();
    const AreaModel &am = opt.areaModel();

    // Each application's own peak-perf/area shape defines a core type
    // (the paper's data produced (1 Slice, 0 KB) for hmmer and
    // (3 Slices, 256 KB) for gobmk).
    const OptResult small_opt = opt.peakPerfPerArea(app_a, 1);
    const OptResult big_opt = opt.peakPerfPerArea(app_b, 1);
    res.small = CoreType{"small(" + app_a + "-optimal, " +
                             std::to_string(small_opt.cacheKb()) +
                             "K, " + std::to_string(small_opt.slices) +
                             "S)",
                         small_opt.banks, small_opt.slices};
    res.big = CoreType{"big(" + app_b + "-optimal, " +
                           std::to_string(big_opt.cacheKb()) + "K, " +
                           std::to_string(big_opt.slices) + "S)",
                       big_opt.banks, big_opt.slices};

    const double area_big = am.vcoreAreaMm2(res.big.slices,
                                            res.big.banks);
    const double area_small = am.vcoreAreaMm2(res.small.slices,
                                              res.small.banks);

    // Per-core performance of each app on each core type.
    const double pa_big = pm.performance(app_a, res.big.banks,
                                         res.big.slices);
    const double pa_small = pm.performance(app_a, res.small.banks,
                                           res.small.slices);
    const double pb_big = pm.performance(app_b, res.big.banks,
                                         res.big.slices);
    const double pb_small = pm.performance(app_b, res.small.banks,
                                           res.small.slices);

    for (double mix : mixes) {
        SHARCH_ASSERT(mix >= 0.0 && mix <= 1.0, "mix must be in [0,1]");
        for (unsigned i = 0; i < steps; ++i) {
            const double f =
                static_cast<double>(i) / (steps - 1);
            // Unit chip area split between the two core types; a
            // failed core is dead silicon (its area stays spent but
            // it runs nothing).
            const double n_big = f / area_big * (1.0 - big_fail);
            const double n_small =
                (1.0 - f) / area_small * (1.0 - small_fail);
            const double n_total = n_big + n_small;

            // The workload demands `mix` of the cores run app A.
            const double want_a = mix * n_total;
            const double want_b = n_total - want_a;

            // Total performance is linear in how many app-A jobs run
            // on big cores, so the optimum sits at a boundary of the
            // feasible interval.
            const double lo = std::max(0.0, want_a - n_small);
            const double hi = std::min(want_a, n_big);
            const double slope =
                (pa_big - pa_small) - (pb_big - pb_small);
            const double a_on_big = slope > 0.0 ? hi : lo;
            const double a_on_small = want_a - a_on_big;
            const double b_on_big = n_big - a_on_big;
            const double b_on_small = want_b - b_on_big;

            const double total_perf =
                a_on_small * pa_small + a_on_big * pa_big +
                b_on_big * pb_big + b_on_small * pb_small;

            MixPoint p;
            p.bigCoreAreaFrac = f;
            p.appAMix = mix;
            p.utilityPerArea = total_perf; // chip area is 1 by design
            res.points.push_back(p);
        }
    }
    return res;
}

} // namespace

DatacenterResult
datacenterStudy(UtilityOptimizer &opt, const std::string &app_a,
                const std::string &app_b,
                const std::vector<double> &mixes, unsigned steps)
{
    // Multiplying deployed counts by (1 - 0.0) is exact in IEEE
    // arithmetic, so routing the healthy study through the degraded
    // implementation changes no bit of any figure.
    return studyImpl(opt, app_a, app_b, mixes, steps, 0.0, 0.0);
}

DatacenterResult
datacenterStudyDegraded(UtilityOptimizer &opt,
                        const std::string &app_a,
                        const std::string &app_b,
                        const std::vector<double> &mixes,
                        double big_fail, double small_fail,
                        unsigned steps)
{
    SHARCH_ASSERT(big_fail >= 0.0 && big_fail < 1.0 &&
                      small_fail >= 0.0 && small_fail < 1.0,
                  "fail fractions must be in [0, 1)");
    return studyImpl(opt, app_a, app_b, mixes, steps, big_fail,
                     small_fail);
}

} // namespace sharch
