/**
 * @file
 * Simulation statistics: named counters, scalar samples, and the
 * per-stage stall accounting the paper's SSim reports ("cycles executed
 * for a given workload along with cache miss rates and stage-based
 * micro-architecture stalls and statistics", section 5.2).
 */

#ifndef SHARCH_STATS_STATS_HH
#define SHARCH_STATS_STATS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace sharch {

/** Pipeline stages for stall attribution. */
enum class Stage
{
    Fetch,
    Rename,
    Dispatch,
    Issue,
    Execute,
    Memory,
    Commit,
    NumStages
};

/** Printable stage name. */
const char *stageName(Stage s);

/** A monotonically increasing named counter. */
class Counter
{
  public:
    void inc(std::uint64_t by = 1) { value_ += by; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Mean/min/max accumulator for scalar samples. */
class Sample
{
  public:
    void add(double v);
    std::uint64_t count() const { return count_; }
    double mean() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double total() const { return sum_; }
    void reset();

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** A fixed-bucket histogram over [0, buckets*width). */
class Histogram
{
  public:
    Histogram(std::size_t buckets, double width);

    void add(double v);
    std::uint64_t bucketCount(std::size_t i) const;
    std::size_t numBuckets() const { return counts_.size(); }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t samples() const { return samples_; }

  private:
    std::vector<std::uint64_t> counts_;
    double width_;
    std::uint64_t overflow_ = 0;
    std::uint64_t samples_ = 0;
};

/**
 * Provenance of a sampled (SMARTS-style) run: how much of the stream
 * was measured vs. fast-forwarded, and per-counter 95% confidence
 * intervals on the extrapolated rates.  Inactive (and absent from all
 * serializations) for full detailed runs, so reports without --sample
 * stay byte-identical to historical output.
 */
struct SamplingInfo
{
    bool active = false;
    Count windows = 0;               //!< detailed measure windows
    Count measuredInstructions = 0;  //!< instructions inside them
    Count warmupInstructions = 0;    //!< detailed but unmeasured
    Count fastForwardInstructions = 0;

    // Relative 95% CI half-widths (1.96 * sd / (sqrt(m) * mean)) of
    // the per-window rates behind the extrapolated counters; 0 when
    // fewer than two windows were measured.
    double ciCpi = 0.0;
    double ciL1dMissRate = 0.0;
    double ciL2MissRate = 0.0;
    double ciBranchMispredictRate = 0.0;
};

/** Everything SSim reports at the end of one run. */
struct SimStats
{
    Cycles cycles = 0;
    Count instructionsCommitted = 0;
    Count instructionsFetched = 0;
    Count squashedInstructions = 0;

    Count branches = 0;
    Count branchMispredicts = 0;

    Count loads = 0;
    Count stores = 0;
    Count lsqViolations = 0;

    Count l1dAccesses = 0;
    Count l1dMisses = 0;
    Count l1iAccesses = 0;
    Count l1iMisses = 0;
    Count l2Accesses = 0;
    Count l2Misses = 0;
    Count coherenceInvalidations = 0;

    Count operandRequests = 0;   //!< remote operand request messages
    Count operandReplies = 0;
    Count operandNetworkHops = 0;
    Count operandNetworkStalls = 0; //!< injection-port back-pressure

    Count renameBroadcasts = 0;  //!< master-slice rename rounds

    // Latency decomposition sums over committed instructions (divide
    // by instructionsCommitted for means): dispatch->operands-ready,
    // ready->issue (port/window wait), issue->complete (execution,
    // transport, memory).
    Count sumOperandWait = 0;
    Count sumIssueWait = 0;
    Count sumExecLatency = 0;

    /** Cycles in which commit made no progress, attributed per stage. */
    std::array<Count, static_cast<std::size_t>(Stage::NumStages)>
        stallCycles{};

    /** Sampled-run provenance; inactive for full detailed runs. */
    SamplingInfo sampling;

    void addStall(Stage s, Count by = 1)
    { stallCycles[static_cast<std::size_t>(s)] += by; }

    Count stall(Stage s) const
    { return stallCycles[static_cast<std::size_t>(s)]; }

    /** Committed instructions per cycle. */
    double ipc() const;
    double branchMispredictRate() const;
    double l1dMissRate() const;
    double l2MissRate() const;

    /** Merge another run's stats into this one (for multi-VCore VMs). */
    void merge(const SimStats &other);

    /** Human-readable multi-line report. */
    std::string report() const;

    /**
     * One JSON object with every counter, the derived rates, and the
     * per-stage stall cycles.  This is the "stats" section of the
     * sharch-report-v1 schema (see study/report.hh): ssim --json and
     * the study reports embed it verbatim, so every layer agrees on
     * field names.  Reals are emitted with "%.17g" -- equal stats
     * always serialize to identical bytes.
     */
    std::string toJson() const;
};

} // namespace sharch

#endif // SHARCH_STATS_STATS_HH
