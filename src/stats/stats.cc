#include "stats/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"
#include "common/math_util.hh"

namespace sharch {

const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::Fetch: return "fetch";
      case Stage::Rename: return "rename";
      case Stage::Dispatch: return "dispatch";
      case Stage::Issue: return "issue";
      case Stage::Execute: return "execute";
      case Stage::Memory: return "memory";
      case Stage::Commit: return "commit";
      default: return "unknown";
    }
}

void
Sample::add(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
}

double
Sample::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

void
Sample::reset()
{
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

Histogram::Histogram(std::size_t buckets, double width)
    : counts_(buckets, 0), width_(width)
{
    SHARCH_ASSERT(buckets > 0 && width > 0.0,
                  "histogram needs buckets and a positive width");
}

void
Histogram::add(double v)
{
    ++samples_;
    if (v < 0.0) {
        ++overflow_;
        return;
    }
    const auto idx = static_cast<std::size_t>(v / width_);
    if (idx >= counts_.size())
        ++overflow_;
    else
        ++counts_[idx];
}

std::uint64_t
Histogram::bucketCount(std::size_t i) const
{
    SHARCH_ASSERT(i < counts_.size(), "histogram bucket out of range");
    return counts_[i];
}

double
SimStats::ipc() const
{
    return safeDiv(static_cast<double>(instructionsCommitted),
                   static_cast<double>(cycles));
}

double
SimStats::branchMispredictRate() const
{
    return safeDiv(static_cast<double>(branchMispredicts),
                   static_cast<double>(branches));
}

double
SimStats::l1dMissRate() const
{
    return safeDiv(static_cast<double>(l1dMisses),
                   static_cast<double>(l1dAccesses));
}

double
SimStats::l2MissRate() const
{
    return safeDiv(static_cast<double>(l2Misses),
                   static_cast<double>(l2Accesses));
}

void
SimStats::merge(const SimStats &other)
{
    cycles = std::max(cycles, other.cycles);
    instructionsCommitted += other.instructionsCommitted;
    instructionsFetched += other.instructionsFetched;
    squashedInstructions += other.squashedInstructions;
    branches += other.branches;
    branchMispredicts += other.branchMispredicts;
    loads += other.loads;
    stores += other.stores;
    lsqViolations += other.lsqViolations;
    l1dAccesses += other.l1dAccesses;
    l1dMisses += other.l1dMisses;
    l1iAccesses += other.l1iAccesses;
    l1iMisses += other.l1iMisses;
    l2Accesses += other.l2Accesses;
    l2Misses += other.l2Misses;
    coherenceInvalidations += other.coherenceInvalidations;
    operandRequests += other.operandRequests;
    operandReplies += other.operandReplies;
    operandNetworkHops += other.operandNetworkHops;
    operandNetworkStalls += other.operandNetworkStalls;
    renameBroadcasts += other.renameBroadcasts;
    sumOperandWait += other.sumOperandWait;
    sumIssueWait += other.sumIssueWait;
    sumExecLatency += other.sumExecLatency;
    for (std::size_t i = 0; i < stallCycles.size(); ++i)
        stallCycles[i] += other.stallCycles[i];
    if (other.sampling.active) {
        // Conservative aggregate: counts add, interval widths take
        // the max.  SamplingController overwrites this with the CI it
        // computes from cross-VCore window sums, which is tighter.
        sampling.active = true;
        sampling.windows += other.sampling.windows;
        sampling.measuredInstructions +=
            other.sampling.measuredInstructions;
        sampling.warmupInstructions +=
            other.sampling.warmupInstructions;
        sampling.fastForwardInstructions +=
            other.sampling.fastForwardInstructions;
        sampling.ciCpi = std::max(sampling.ciCpi, other.sampling.ciCpi);
        sampling.ciL1dMissRate = std::max(
            sampling.ciL1dMissRate, other.sampling.ciL1dMissRate);
        sampling.ciL2MissRate = std::max(
            sampling.ciL2MissRate, other.sampling.ciL2MissRate);
        sampling.ciBranchMispredictRate =
            std::max(sampling.ciBranchMispredictRate,
                     other.sampling.ciBranchMispredictRate);
    }
}

std::string
SimStats::report() const
{
    std::ostringstream oss;
    oss << "cycles:                " << cycles << "\n"
        << "instructions:          " << instructionsCommitted << "\n"
        << "ipc:                   " << ipc() << "\n"
        << "fetched:               " << instructionsFetched << "\n"
        << "squashed:              " << squashedInstructions << "\n"
        << "branches:              " << branches
        << "  (mispredict rate " << branchMispredictRate() << ")\n"
        << "loads/stores:          " << loads << "/" << stores
        << "  (LSQ violations " << lsqViolations << ")\n"
        << "l1d miss rate:         " << l1dMissRate()
        << "  (" << l1dMisses << "/" << l1dAccesses << ")\n"
        << "l2 miss rate:          " << l2MissRate()
        << "  (" << l2Misses << "/" << l2Accesses << ")\n"
        << "coherence invals:      " << coherenceInvalidations << "\n"
        << "operand req/reply:     " << operandRequests << "/"
        << operandReplies << " (hops " << operandNetworkHops
        << ", stalls " << operandNetworkStalls << ")\n"
        << "rename broadcasts:     " << renameBroadcasts << "\n"
        << "avg operand wait:      "
        << safeDiv(double(sumOperandWait), double(instructionsCommitted))
        << "\n"
        << "avg issue wait:        "
        << safeDiv(double(sumIssueWait), double(instructionsCommitted))
        << "\n"
        << "avg exec latency:      "
        << safeDiv(double(sumExecLatency), double(instructionsCommitted))
        << "\n"
        << "stalls by stage:\n";
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(Stage::NumStages); ++i) {
        oss << "  " << stageName(static_cast<Stage>(i)) << ": "
            << stallCycles[i] << "\n";
    }
    if (sampling.active) {
        oss << "sampled run:           " << sampling.windows
            << " windows, " << sampling.measuredInstructions
            << " measured / " << sampling.warmupInstructions
            << " warm-up / " << sampling.fastForwardInstructions
            << " fast-forwarded\n"
            << "  ci95(cpi):           +/-"
            << sampling.ciCpi * 100.0 << "%\n";
    }
    return oss.str();
}

std::string
SimStats::toJson() const
{
    std::ostringstream oss;
    bool first = true;
    auto num = [&](const char *key, std::uint64_t v) {
        oss << (first ? "" : ",") << "\"" << key << "\":" << v;
        first = false;
    };
    auto real = [&](const char *key, double v) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        oss << (first ? "" : ",") << "\"" << key << "\":" << buf;
        first = false;
    };

    oss << "{";
    num("cycles", cycles);
    num("instructions_committed", instructionsCommitted);
    num("instructions_fetched", instructionsFetched);
    num("squashed_instructions", squashedInstructions);
    real("ipc", ipc());
    num("branches", branches);
    num("branch_mispredicts", branchMispredicts);
    real("branch_mispredict_rate", branchMispredictRate());
    num("loads", loads);
    num("stores", stores);
    num("lsq_violations", lsqViolations);
    num("l1d_accesses", l1dAccesses);
    num("l1d_misses", l1dMisses);
    real("l1d_miss_rate", l1dMissRate());
    num("l1i_accesses", l1iAccesses);
    num("l1i_misses", l1iMisses);
    num("l2_accesses", l2Accesses);
    num("l2_misses", l2Misses);
    real("l2_miss_rate", l2MissRate());
    num("coherence_invalidations", coherenceInvalidations);
    num("operand_requests", operandRequests);
    num("operand_replies", operandReplies);
    num("operand_network_hops", operandNetworkHops);
    num("operand_network_stalls", operandNetworkStalls);
    num("rename_broadcasts", renameBroadcasts);
    real("avg_operand_wait",
         safeDiv(double(sumOperandWait),
                 double(instructionsCommitted)));
    real("avg_issue_wait",
         safeDiv(double(sumIssueWait),
                 double(instructionsCommitted)));
    real("avg_exec_latency",
         safeDiv(double(sumExecLatency),
                 double(instructionsCommitted)));
    oss << ",\"stall_cycles\":{";
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(Stage::NumStages); ++i) {
        oss << (i ? "," : "") << "\""
            << stageName(static_cast<Stage>(i))
            << "\":" << stallCycles[i];
    }
    oss << "}";
    if (sampling.active) {
        // Appended only for sampled runs: full-run serialization stays
        // byte-identical to the historical format (golden-file test).
        first = true;
        oss << ",\"sampling\":{";
        num("windows", sampling.windows);
        num("measured_instructions", sampling.measuredInstructions);
        num("warmup_instructions", sampling.warmupInstructions);
        num("fastforward_instructions",
            sampling.fastForwardInstructions);
        oss << ",\"ci95_rel\":{";
        first = true;
        real("cpi", sampling.ciCpi);
        real("l1d_miss_rate", sampling.ciL1dMissRate);
        real("l2_miss_rate", sampling.ciL2MissRate);
        real("branch_mispredict_rate",
             sampling.ciBranchMispredictRate);
        oss << "}}";
    }
    oss << "}";
    return oss.str();
}

} // namespace sharch
