/**
 * @file
 * Reconfiguration cost model (sections 3.8 and 5.10).
 *
 * The hypervisor reconfigures VCores by rewriting interconnect and
 * protection state.  Shrinking a VCore triggers a Register Flush of
 * dirty architectural state to the surviving Slices; changing the L2
 * allotment requires flushing dirty bank state to memory.  The paper
 * charges 10,000 cycles when the cache configuration changes and 500
 * cycles when only the Slice count changes, which Table 7 and the
 * phase-adaptive experiments use.
 */

#ifndef SHARCH_CORE_RECONFIG_HH
#define SHARCH_CORE_RECONFIG_HH

#include "common/types.hh"
#include "config/sim_config.hh"

namespace sharch {

/** A VCore shape: L2 banks and Slices. */
struct VCoreShape
{
    unsigned banks = 0;
    unsigned slices = 1;

    bool operator==(const VCoreShape &) const = default;
};

/** Computes transition penalties between VCore shapes. */
class ReconfigManager
{
  public:
    explicit ReconfigManager(const SimConfig &cfg = SimConfig{});

    /**
     * Cycles charged to move from @p from to @p to: zero when the
     * shapes match, the cache-flush cost when the bank set changes,
     * the Slice-only cost otherwise.
     */
    Cycles transitionCost(const VCoreShape &from,
                          const VCoreShape &to) const;

    /** True when the transition requires flushing L2 banks. */
    bool requiresCacheFlush(const VCoreShape &from,
                            const VCoreShape &to) const;

    /** True when the transition requires a Register Flush. */
    bool requiresRegisterFlush(const VCoreShape &from,
                               const VCoreShape &to) const;

  private:
    SimConfig cfg_;
};

} // namespace sharch

#endif // SHARCH_CORE_RECONFIG_HH
