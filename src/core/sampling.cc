#include "core/sampling.hh"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/logging.hh"
#include "common/math_util.hh"
#include "common/random.hh"

namespace sharch {

namespace {

/** Field-wise a - b for monotonically growing stats (one VCore's
 *  counters before/after a detailed window). */
SimStats
subtractStats(const SimStats &a, const SimStats &b)
{
    SimStats d;
    d.cycles = a.cycles - b.cycles;
    d.instructionsCommitted =
        a.instructionsCommitted - b.instructionsCommitted;
    d.instructionsFetched = a.instructionsFetched - b.instructionsFetched;
    d.squashedInstructions =
        a.squashedInstructions - b.squashedInstructions;
    d.branches = a.branches - b.branches;
    d.branchMispredicts = a.branchMispredicts - b.branchMispredicts;
    d.loads = a.loads - b.loads;
    d.stores = a.stores - b.stores;
    d.lsqViolations = a.lsqViolations - b.lsqViolations;
    d.l1dAccesses = a.l1dAccesses - b.l1dAccesses;
    d.l1dMisses = a.l1dMisses - b.l1dMisses;
    d.l1iAccesses = a.l1iAccesses - b.l1iAccesses;
    d.l1iMisses = a.l1iMisses - b.l1iMisses;
    d.l2Accesses = a.l2Accesses - b.l2Accesses;
    d.l2Misses = a.l2Misses - b.l2Misses;
    d.coherenceInvalidations =
        a.coherenceInvalidations - b.coherenceInvalidations;
    d.operandRequests = a.operandRequests - b.operandRequests;
    d.operandReplies = a.operandReplies - b.operandReplies;
    d.operandNetworkHops = a.operandNetworkHops - b.operandNetworkHops;
    d.operandNetworkStalls =
        a.operandNetworkStalls - b.operandNetworkStalls;
    d.renameBroadcasts = a.renameBroadcasts - b.renameBroadcasts;
    d.sumOperandWait = a.sumOperandWait - b.sumOperandWait;
    d.sumIssueWait = a.sumIssueWait - b.sumIssueWait;
    d.sumExecLatency = a.sumExecLatency - b.sumExecLatency;
    for (std::size_t i = 0; i < d.stallCycles.size(); ++i)
        d.stallCycles[i] = a.stallCycles[i] - b.stallCycles[i];
    return d;
}

/** Field-wise accumulate (cycles too: window durations add). */
void
addStats(SimStats *acc, const SimStats &w)
{
    acc->cycles += w.cycles;
    acc->instructionsCommitted += w.instructionsCommitted;
    acc->instructionsFetched += w.instructionsFetched;
    acc->squashedInstructions += w.squashedInstructions;
    acc->branches += w.branches;
    acc->branchMispredicts += w.branchMispredicts;
    acc->loads += w.loads;
    acc->stores += w.stores;
    acc->lsqViolations += w.lsqViolations;
    acc->l1dAccesses += w.l1dAccesses;
    acc->l1dMisses += w.l1dMisses;
    acc->l1iAccesses += w.l1iAccesses;
    acc->l1iMisses += w.l1iMisses;
    acc->l2Accesses += w.l2Accesses;
    acc->l2Misses += w.l2Misses;
    acc->coherenceInvalidations += w.coherenceInvalidations;
    acc->operandRequests += w.operandRequests;
    acc->operandReplies += w.operandReplies;
    acc->operandNetworkHops += w.operandNetworkHops;
    acc->operandNetworkStalls += w.operandNetworkStalls;
    acc->renameBroadcasts += w.renameBroadcasts;
    acc->sumOperandWait += w.sumOperandWait;
    acc->sumIssueWait += w.sumIssueWait;
    acc->sumExecLatency += w.sumExecLatency;
    for (std::size_t i = 0; i < acc->stallCycles.size(); ++i)
        acc->stallCycles[i] += w.stallCycles[i];
}

/** Round-to-nearest counter scaling. */
Count
scaleCount(Count v, double scale)
{
    return static_cast<Count>(
        std::llround(static_cast<double>(v) * scale));
}

/** Ratio-extrapolate measured window sums to the whole stream. */
SimStats
scaleStats(const SimStats &sum, double scale)
{
    SimStats e;
    e.cycles = scaleCount(sum.cycles, scale);
    e.instructionsCommitted =
        scaleCount(sum.instructionsCommitted, scale);
    e.instructionsFetched = scaleCount(sum.instructionsFetched, scale);
    e.squashedInstructions =
        scaleCount(sum.squashedInstructions, scale);
    e.branches = scaleCount(sum.branches, scale);
    e.branchMispredicts = scaleCount(sum.branchMispredicts, scale);
    e.loads = scaleCount(sum.loads, scale);
    e.stores = scaleCount(sum.stores, scale);
    e.lsqViolations = scaleCount(sum.lsqViolations, scale);
    e.l1dAccesses = scaleCount(sum.l1dAccesses, scale);
    e.l1dMisses = scaleCount(sum.l1dMisses, scale);
    e.l1iAccesses = scaleCount(sum.l1iAccesses, scale);
    e.l1iMisses = scaleCount(sum.l1iMisses, scale);
    e.l2Accesses = scaleCount(sum.l2Accesses, scale);
    e.l2Misses = scaleCount(sum.l2Misses, scale);
    e.coherenceInvalidations =
        scaleCount(sum.coherenceInvalidations, scale);
    e.operandRequests = scaleCount(sum.operandRequests, scale);
    e.operandReplies = scaleCount(sum.operandReplies, scale);
    e.operandNetworkHops = scaleCount(sum.operandNetworkHops, scale);
    e.operandNetworkStalls =
        scaleCount(sum.operandNetworkStalls, scale);
    e.renameBroadcasts = scaleCount(sum.renameBroadcasts, scale);
    e.sumOperandWait = scaleCount(sum.sumOperandWait, scale);
    e.sumIssueWait = scaleCount(sum.sumIssueWait, scale);
    e.sumExecLatency = scaleCount(sum.sumExecLatency, scale);
    for (std::size_t i = 0; i < e.stallCycles.size(); ++i)
        e.stallCycles[i] = scaleCount(sum.stallCycles[i], scale);
    return e;
}

/**
 * Relative 95% CI half-width of a per-window ratio num/den: the
 * spread of the window-local rates around their mean, 1.96 * sd /
 * (sqrt(m) * mean).  Windows whose denominator is zero carry no
 * information about the rate and are excluded; fewer than two
 * informative windows yield 0 (no interval, not "perfect").
 */
double
ratioCi(const std::vector<SimStats> &windows,
        Count SimStats::*num, Count SimStats::*den)
{
    std::vector<double> rates;
    rates.reserve(windows.size());
    for (const SimStats &w : windows) {
        if (w.*den > 0) {
            rates.push_back(static_cast<double>(w.*num) /
                            static_cast<double>(w.*den));
        }
    }
    const std::size_t m = rates.size();
    if (m < 2)
        return 0.0;
    const double mean = arithmeticMean(rates);
    if (mean <= 0.0)
        return 0.0;
    double var = 0.0;
    for (double r : rates)
        var += (r - mean) * (r - mean);
    var /= static_cast<double>(m - 1);
    return 1.96 * std::sqrt(var / static_cast<double>(m)) / mean;
}

/**
 * Control-variate (regression) CPI estimator.
 *
 * Functional warming counts the timing-independent events of every
 * fast-forwarded instruction, so the *exact* whole-stream per-
 * instruction rates of L1D/L1I/L2 misses and branch mispredicts are
 * known.  Per-window CPI correlates strongly with those same
 * per-window rates (phase noise in the synthetic streams is almost
 * entirely miss- and mispredict-driven; multivariate R^2 is 0.9+ on
 * the noisiest profiles), so regressing window CPI on the window
 * rates and evaluating the fit at the exact whole-stream rates
 * removes most of the sampling variance a plain window mean carries:
 *
 *   cpi_adj = mean(y) + sum_j beta_j * (X_j - mean(x_j))
 *
 * with y the window CPIs, x the window rates, X the exact rates, and
 * beta the least-squares slopes.  This is the classic regression
 * estimator of survey sampling; it is consistent, and with dozens of
 * windows its bias (O(1/m)) is far below the variance it removes.
 *
 * Falls back to the plain ratio estimate when there are too few
 * windows to fit (m < 2 * (k + 1)) or the normal equations are
 * degenerate.  @p ci_out receives the relative 95% CI: residual-based
 * after a fit, the plain window-spread CI otherwise.
 */
constexpr std::size_t kRegressors = 4;

double
regressionCpi(const std::vector<SimStats> &windows,
              const SimStats &exact, Count total_instr, double *ci_out)
{
    // Window observations: CPI and the four architectural rates.
    std::vector<double> y;
    std::vector<std::array<double, kRegressors>> x;
    for (const SimStats &w : windows) {
        if (w.instructionsCommitted == 0)
            continue;
        const double inv =
            1.0 / static_cast<double>(w.instructionsCommitted);
        y.push_back(static_cast<double>(w.cycles) * inv);
        x.push_back({static_cast<double>(w.l1dMisses) * inv,
                     static_cast<double>(w.l1iMisses) * inv,
                     static_cast<double>(w.l2Misses) * inv,
                     static_cast<double>(w.branchMispredicts) * inv});
    }
    const std::size_t m = y.size();

    // Plain ratio estimate (instruction-weighted window mean).
    Count sum_c = 0, sum_i = 0;
    for (const SimStats &w : windows) {
        sum_c += w.cycles;
        sum_i += w.instructionsCommitted;
    }
    const double ratio = sum_i > 0 ? static_cast<double>(sum_c) /
                                         static_cast<double>(sum_i)
                                   : 0.0;
    *ci_out = ratioCi(windows, &SimStats::cycles,
                      &SimStats::instructionsCommitted);
    if (m < 2 * (kRegressors + 1) || total_instr == 0)
        return ratio;

    double ybar = 0.0;
    std::array<double, kRegressors> xbar{};
    for (std::size_t i = 0; i < m; ++i) {
        ybar += y[i];
        for (std::size_t j = 0; j < kRegressors; ++j)
            xbar[j] += x[i][j];
    }
    ybar /= static_cast<double>(m);
    for (double &v : xbar)
        v /= static_cast<double>(m);

    // Centered normal equations.
    double xtx[kRegressors][kRegressors] = {};
    double xty[kRegressors] = {};
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t a = 0; a < kRegressors; ++a) {
            const double da = x[i][a] - xbar[a];
            xty[a] += da * (y[i] - ybar);
            for (std::size_t b = a; b < kRegressors; ++b)
                xtx[a][b] += da * (x[i][b] - xbar[b]);
        }
    }
    double max_diag = 0.0;
    for (std::size_t a = 0; a < kRegressors; ++a) {
        for (std::size_t b = 0; b < a; ++b)
            xtx[a][b] = xtx[b][a];
        max_diag = std::max(max_diag, xtx[a][a]);
    }
    if (max_diag <= 0.0)
        return ratio; // every regressor constant: nothing to fit
    // A hair of ridge keeps near-collinear rate columns (e.g. L1D and
    // L2 misses moving together) from blowing up the solve; at 1e-9
    // of the dominant diagonal it is far below sampling noise.
    for (std::size_t a = 0; a < kRegressors; ++a)
        xtx[a][a] += 1e-9 * max_diag;

    // Gaussian elimination with partial pivoting.
    double beta[kRegressors] = {};
    {
        double A[kRegressors][kRegressors + 1];
        for (std::size_t a = 0; a < kRegressors; ++a) {
            for (std::size_t b = 0; b < kRegressors; ++b)
                A[a][b] = xtx[a][b];
            A[a][kRegressors] = xty[a];
        }
        for (std::size_t c = 0; c < kRegressors; ++c) {
            std::size_t piv = c;
            for (std::size_t r = c + 1; r < kRegressors; ++r) {
                if (std::abs(A[r][c]) > std::abs(A[piv][c]))
                    piv = r;
            }
            if (std::abs(A[piv][c]) < 1e-30 * max_diag)
                return ratio; // degenerate beyond the ridge's help
            if (piv != c) {
                for (std::size_t b = 0; b <= kRegressors; ++b)
                    std::swap(A[c][b], A[piv][b]);
            }
            for (std::size_t r = c + 1; r < kRegressors; ++r) {
                const double f = A[r][c] / A[c][c];
                for (std::size_t b = c; b <= kRegressors; ++b)
                    A[r][b] -= f * A[c][b];
            }
        }
        for (std::size_t c = kRegressors; c-- > 0;) {
            double v = A[c][kRegressors];
            for (std::size_t b = c + 1; b < kRegressors; ++b)
                v -= A[c][b] * beta[b];
            beta[c] = v / A[c][c];
        }
    }

    // Evaluate the fit at the exact whole-stream rates.
    const double inv_total = 1.0 / static_cast<double>(total_instr);
    const std::array<double, kRegressors> xtrue = {
        static_cast<double>(exact.l1dMisses) * inv_total,
        static_cast<double>(exact.l1iMisses) * inv_total,
        static_cast<double>(exact.l2Misses) * inv_total,
        static_cast<double>(exact.branchMispredicts) * inv_total,
    };
    double adj = ybar;
    for (std::size_t j = 0; j < kRegressors; ++j)
        adj += beta[j] * (xtrue[j] - xbar[j]);
    if (!(adj > 0.0) || !std::isfinite(adj))
        return ratio; // wild extrapolation: keep the safe estimate

    // Trust region: the regression corrects the ratio estimate's
    // sampling error, whose own magnitude is bounded by the ratio's
    // 95% CI half-width -- a correction larger than that is leverage
    // (exact rates far outside the window cloud amplifying slope
    // noise), not signal.  Clamping kills the heavy tail such fits
    // produce while leaving genuine corrections untouched.
    const double ratioCiAbs = *ci_out * ratio;
    if (std::abs(adj - ratio) > ratioCiAbs) {
        adj = ratio + std::copysign(ratioCiAbs, adj - ratio);
        return adj; // clamped: the plain-ratio CI stays in *ci_out
    }

    // Residual-based CI (the variance the regression did not remove).
    double ss_res = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
        double r = y[i] - ybar;
        for (std::size_t j = 0; j < kRegressors; ++j)
            r -= beta[j] * (x[i][j] - xbar[j]);
        ss_res += r * r;
    }
    const double dof =
        static_cast<double>(m > kRegressors + 1 ? m - kRegressors - 1
                                                : 1);
    *ci_out = 1.96 *
              std::sqrt(ss_res / dof / static_cast<double>(m)) / adj;
    return adj;
}

/**
 * Replace the estimated architectural counters with their exact
 * whole-stream totals (detailed stats plus functional-warming stats).
 * These are the counters whose events fastForwardOne() observes with
 * the same gating as the detailed walk; the purely timing-domain
 * counters (stalls, squashes, network traffic, waits) stay as the
 * ratio estimates they are.
 */
void
copyExactCounters(SimStats *est, const SimStats &exact)
{
    est->branches = exact.branches;
    est->branchMispredicts = exact.branchMispredicts;
    est->loads = exact.loads;
    est->stores = exact.stores;
    est->l1dAccesses = exact.l1dAccesses;
    est->l1dMisses = exact.l1dMisses;
    est->l1iAccesses = exact.l1iAccesses;
    est->l1iMisses = exact.l1iMisses;
    est->l2Accesses = exact.l2Accesses;
    est->l2Misses = exact.l2Misses;
    est->coherenceInvalidations = exact.coherenceInvalidations;
}

/** Exact counters carry no sampling uncertainty: zero their CIs. */
void
markExactCis(SamplingInfo *info)
{
    info->ciL1dMissRate = 0.0;
    info->ciL2MissRate = 0.0;
    info->ciBranchMispredictRate = 0.0;
}

/** The sampling provenance block for one set of measure windows. */
SamplingInfo
infoFor(const std::vector<SimStats> &windows, Count warmup, Count ff)
{
    SamplingInfo info;
    info.active = true;
    info.windows = windows.size();
    for (const SimStats &w : windows)
        info.measuredInstructions += w.instructionsCommitted;
    info.warmupInstructions = warmup;
    info.fastForwardInstructions = ff;
    info.ciCpi = ratioCi(windows, &SimStats::cycles,
                         &SimStats::instructionsCommitted);
    info.ciL1dMissRate = ratioCi(windows, &SimStats::l1dMisses,
                                 &SimStats::l1dAccesses);
    info.ciL2MissRate = ratioCi(windows, &SimStats::l2Misses,
                                &SimStats::l2Accesses);
    info.ciBranchMispredictRate =
        ratioCi(windows, &SimStats::branchMispredicts,
                &SimStats::branches);
    return info;
}

} // namespace

SamplingController::SamplingController(const SampleSchedule &schedule,
                                       std::uint64_t seed)
    : schedule_(schedule), seed_(seed)
{
    SHARCH_ASSERT(schedule_.measure > 0,
                  "sampling needs a measure window of >= 1 instruction");
}

VmResult
SamplingController::run(
    VmSim &vm, const std::vector<std::unique_ptr<InstSource>> &sources,
    std::size_t chunk)
{
    const std::size_t n = vm.numVCores();
    SHARCH_ASSERT(sources.size() == n,
                  "one instruction source per VCore required");
    SHARCH_ASSERT(chunk > 0, "chunk must be positive");

    // Per-VCore schedule state.  Every VCore walks the same
    // warm-up -> measure -> fast-forward cycle with the same jitter
    // sequence (identical per-VCore seeds), so windows of equal index
    // cover the same stream region on every VCore; the *driver* below
    // rotates VCores round-robin like VmSim::run, with each turn
    // spanning phase boundaries as needed.  Rotation granularity is
    // part of the multi-VCore timing contract: bank-port and
    // directory contention depend on how far one VCore's cycle clock
    // runs ahead (~chunk * CPI cycles in the full run) before the
    // next takes its turn.  Earlier drivers that rotated at phase
    // boundaries, or that charged fast-forwarded (cycle-free)
    // instructions against the turn, advanced fewer cycles per
    // rotation and under-observed contention by 3-4% CPI on the
    // multithreaded workloads.
    enum class Phase { Warmup, Measure, FastForward };
    struct VcState
    {
        Phase phase = Phase::FastForward; //!< rolls into warm-up first
        std::uint64_t left = 0;           //!< instructions left in phase
        SimStats snap;                    //!< stats at measure entry
        std::vector<SimStats> windows;
        Count warmupInsts = 0;
        Count ffInsts = 0;
        Rng jitter;

        explicit VcState(std::uint64_t seed) : jitter(seed) {}
    };
    std::vector<VcState> st;
    st.reserve(n);
    for (std::size_t v = 0; v < n; ++v) {
        // Jitter stream: a pure function of the run's seed, so window
        // placement -- and therefore every extrapolated counter -- is
        // part of the run's deterministic identity.
        st.emplace_back(seed_ ^ 0x53414d504c45ULL); // "SAMPLE"
    }

    // Advance @p s to its next non-empty phase (a fresh period's
    // fast-forward draws its jitter here: +/- U/8 so windows cannot
    // phase-lock with stream structure).
    auto enterNext = [&](VcState &s, std::size_t v) {
        while (s.left == 0) {
            switch (s.phase) {
            case Phase::Warmup:
                s.phase = Phase::Measure;
                s.snap = vm.vcore(v).stats();
                s.left = schedule_.measure;
                break;
            case Phase::Measure: {
                std::uint64_t u = schedule_.fastForward;
                if (u >= 8) {
                    const std::uint64_t span = u / 4;
                    u = u - span / 2 + s.jitter.nextBounded(span + 1);
                }
                s.phase = Phase::FastForward;
                s.left = u;
                break;
            }
            case Phase::FastForward:
                s.phase = Phase::Warmup;
                s.left = schedule_.warmup;
                break;
            }
        }
    };

    bool progress = true;
    while (progress) {
        progress = false;
        for (std::size_t v = 0; v < n; ++v) {
            InstSource &src = *sources[v];
            VcState &s = st[v];
            std::uint64_t turn = chunk;
            while (turn > 0 && !src.exhausted()) {
                if (s.left == 0)
                    enterNext(s, v);
                // The turn budget counts *detailed* instructions
                // only: contention between VCores is driven by how
                // many cycles one clock runs ahead per rotation
                // (~chunk * CPI in the full run), and fast-forward
                // advances no cycles -- charging it against the turn
                // would shrink the per-rotation clock advance and
                // systematically under-observe contention.
                const bool detailed = s.phase != Phase::FastForward;
                const auto quantum = static_cast<std::size_t>(
                    detailed ? std::min<std::uint64_t>(turn, s.left)
                             : s.left);
                std::size_t did = 0;
                switch (s.phase) {
                case Phase::Warmup:
                    did = vm.vcore(v).step(src, quantum);
                    s.warmupInsts += did;
                    break;
                case Phase::Measure:
                    did = vm.vcore(v).step(src, quantum);
                    break;
                case Phase::FastForward:
                    did = vm.vcore(v).fastForward(src, quantum);
                    s.ffInsts += did;
                    break;
                }
                s.left -= did;
                if (detailed)
                    turn -= did;
                if (did > 0)
                    progress = true;
                if (s.phase == Phase::Measure && s.left == 0) {
                    const SimStats delta =
                        subtractStats(vm.vcore(v).stats(), s.snap);
                    if (delta.instructionsCommitted > 0)
                        s.windows.push_back(delta);
                }
                if (did < quantum)
                    break; // source drained mid-quantum
            }
        }
    }

    // A stream that ended inside a measure window still contributed
    // detailed instructions: record the partial window.
    for (std::size_t v = 0; v < n; ++v) {
        VcState &s = st[v];
        if (s.phase != Phase::Measure || s.left == 0)
            continue;
        const SimStats delta =
            subtractStats(vm.vcore(v).stats(), s.snap);
        if (delta.instructionsCommitted > 0)
            s.windows.push_back(delta);
    }

    // Extrapolate each VCore to its full stream length.  Timing-
    // domain counters (stalls, network traffic, squashes, waits)
    // scale by streamed/measured; the architectural counters are not
    // estimated at all -- functional warming counted them exactly, so
    // stats() + functionalStats() is the true whole-stream total.
    // Cycles come from the regression estimator, anchored at those
    // exact rates.
    VmResult res;
    SimStats exactAgg;
    Count totalAgg = 0;
    for (std::size_t v = 0; v < n; ++v) {
        const Count total = sources[v]->consumed();
        SimStats exact = vm.vcore(v).stats();
        addStats(&exact, vm.vcore(v).functionalStats());
        addStats(&exactAgg, exact);
        totalAgg += total;

        SimStats sum;
        for (const SimStats &w : st[v].windows)
            addStats(&sum, w);

        SimStats est;
        if (sum.instructionsCommitted == 0) {
            // Degenerate stream (shorter than one warm-up): nothing
            // was measured, but everything ran detailed -- the actual
            // stats are exact.
            est = vm.vcore(v).stats();
            est.sampling = infoFor(st[v].windows, st[v].warmupInsts,
                                   st[v].ffInsts);
        } else {
            const double scale =
                static_cast<double>(total) /
                static_cast<double>(sum.instructionsCommitted);
            est = scaleStats(sum, scale);
            est.instructionsCommitted = total;
            double ciCpi = 0.0;
            const double cpi =
                regressionCpi(st[v].windows, exact, total, &ciCpi);
            est.cycles = static_cast<Count>(
                std::llround(cpi * static_cast<double>(total)));
            copyExactCounters(&est, exact);
            est.sampling = infoFor(st[v].windows, st[v].warmupInsts,
                                   st[v].ffInsts);
            est.sampling.ciCpi = ciCpi;
            markExactCis(&est.sampling);
        }
        res.perVCore.push_back(est);
        res.aggregate.merge(est);
        res.cycles = std::max(res.cycles, est.cycles);
    }
    res.aggregate.cycles = res.cycles;

    // Aggregate CI from cross-VCore window sums: window k of the
    // aggregate is the sum of every VCore's window k (the VCores run
    // the same lockstep schedule, so equal indices cover the same
    // stream region).  Tighter than the max-merge the per-VCore
    // blocks fold to, and identical to the per-VCore CI when n == 1.
    std::size_t common = st.empty() ? 0 : st[0].windows.size();
    for (const VcState &s : st)
        common = std::min(common, s.windows.size());
    std::vector<SimStats> aggWindows(common);
    for (std::size_t k = 0; k < common; ++k) {
        for (std::size_t v = 0; v < n; ++v)
            addStats(&aggWindows[k], st[v].windows[k]);
    }
    const SamplingInfo perVCoreCounts = res.aggregate.sampling;
    res.aggregate.sampling = infoFor(
        aggWindows,
        perVCoreCounts.warmupInstructions,
        perVCoreCounts.fastForwardInstructions);
    res.aggregate.sampling.windows = perVCoreCounts.windows;
    res.aggregate.sampling.measuredInstructions =
        perVCoreCounts.measuredInstructions;
    if (totalAgg > 0 && !aggWindows.empty()) {
        double ciCpi = 0.0;
        regressionCpi(aggWindows, exactAgg, totalAgg, &ciCpi);
        res.aggregate.sampling.ciCpi = ciCpi;
        markExactCis(&res.aggregate.sampling);
    }
    return res;
}

} // namespace sharch
