/**
 * @file
 * A Virtual Machine: one or more VCores sharing a banked L2.
 *
 * Single-threaded workloads run one VCore.  Multithreaded (PARSEC)
 * workloads run profile.numThreads equally configured VCores that
 * share the VM's L2 banks, with the coherence point between the L1s
 * and the L2 (section 3.5); VCores advance in round-robin chunks so
 * their cycle clocks stay aligned and bank/directory contention is
 * observed.
 */

#ifndef SHARCH_CORE_VM_SIM_HH
#define SHARCH_CORE_VM_SIM_HH

#include <memory>
#include <vector>

#include "cache/l2_system.hh"
#include "config/sim_config.hh"
#include "core/vcore_sim.hh"
#include "stats/stats.hh"
#include "trace/inst_source.hh"
#include "trace/instruction.hh"
#include "trace/profile.hh"

namespace sharch {

/** Result of a whole-VM simulation. */
struct VmResult
{
    SimStats aggregate;               //!< merged across VCores
    std::vector<SimStats> perVCore;
    Cycles cycles = 0;                //!< slowest VCore's finish time

    /** Aggregate committed instructions per cycle. */
    double throughput() const;
};

/** Simulates one VM over a set of per-thread traces. */
class VmSim
{
  public:
    /**
     * @param cfg     per-VCore configuration; cfg.numL2Banks is the
     *                cache attached *per VCore* -- the VM's shared L2
     *                has numL2Banks * num_vcores banks
     * @param num_vcores one VCore per thread
     */
    VmSim(const SimConfig &cfg, unsigned num_vcores);

    /**
     * Install steady-state cache contents for @p profile's workload:
     * each region's most-popular lines, best-ranked last, so LRU
     * retains them exactly as an infinitely long history would.
     * Eliminates the compulsory-miss transient of short traces.
     */
    void prewarm(const BenchmarkProfile &profile);

    /**
     * Run @p sources (one per VCore; lengths may differ) to
     * exhaustion.  VCores advance round-robin in @p chunk-instruction
     * quanta, so bank and directory contention is observed with the
     * same interleaving regardless of how the sources are backed --
     * a streamed run and a materialized run of the same workload
     * execute the identical global instruction order.
     *
     * @param chunk round-robin scheduling quantum in instructions
     */
    VmResult run(const std::vector<std::unique_ptr<InstSource>> &sources,
                 std::size_t chunk = 2000);

    /**
     * Compatibility path for callers holding materialized traces:
     * wraps each trace in a borrowing MaterializedTraceSource and
     * runs as above.
     */
    VmResult run(const std::vector<Trace> &traces,
                 std::size_t chunk = 2000);

    L2System &l2() { return *l2_; }

    /** Number of VCores (one per workload thread). */
    std::size_t numVCores() const { return vcores_.size(); }

    /** Direct access to VCore @p i (sampling controller, benches). */
    VCoreSim &vcore(std::size_t i) { return *vcores_[i]; }

  private:
    SimConfig cfg_;
    std::vector<FabricPlacement> placements_;
    std::unique_ptr<L2System> l2_;
    std::vector<std::unique_ptr<VCoreSim>> vcores_;
};

} // namespace sharch

#endif // SHARCH_CORE_VM_SIM_HH
