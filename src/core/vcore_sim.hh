/**
 * @file
 * SSim's timing model of one Virtual Core.
 *
 * A VCore is s contiguous Slices plus a set of L2 banks.  The model
 * replays a committed-path trace in program order and computes, per
 * instruction, the cycle of every pipeline event under the Sharing
 * Architecture's constraints:
 *
 *  - PC-interleaved fetch, two instructions per Slice per cycle, with
 *    a whole-group stall semantics (section 3.1);
 *  - a distributed bimodal predictor and replicated BTB; mispredicts
 *    flush across Slices with network-latency cost;
 *  - two-stage rename whose depth grows with Slice count (section
 *    3.2) and whose cross-Slice operands ride the Scalar Operand
 *    Network at 2 cycles + 1/hop (section 3.4), with remote values
 *    cached in the local LRF after first use;
 *  - per-Slice issue windows, ROB partitions, LRFs, store buffers and
 *    MSHRs modelled as in-order-allocated occupancy limits;
 *  - loads/stores sorted to the owning Slice by address (section 3.6),
 *    unordered LSQ semantics with store-load forwarding and violation
 *    squashes;
 *  - private per-Slice L1s, a shared banked L2 with distance latency,
 *    and a 100-cycle memory.
 *
 * Wrong-path work is modelled as fetch bubbles (the trace holds only
 * the committed path), the standard trace-driven methodology.
 */

#ifndef SHARCH_CORE_VCORE_SIM_HH
#define SHARCH_CORE_VCORE_SIM_HH

#include <array>
#include <cstdint>
#include <vector>

#include "cache/cache_model.hh"
#include "cache/l2_system.hh"
#include "config/sim_config.hh"
#include "noc/network.hh"
#include "noc/placement.hh"
#include "stats/stats.hh"
#include "trace/inst_source.hh"
#include "trace/instruction.hh"
#include "uarch/branch_predictor.hh"
#include "uarch/mem_dep.hh"
#include "uarch/rename.hh"
#include "uarch/structures.hh"

namespace sharch {

/** Timing model of one VCore, driven by one thread's trace. */
class VCoreSim
{
  public:
    /**
     * @param cfg       microarchitecture parameters
     * @param vc        this VCore's id within its VM
     * @param placement coordinates of this VCore's Slices and the
     *                  VM's banks
     * @param l2        the VM's shared L2 (may have zero banks)
     */
    VCoreSim(const SimConfig &cfg, VCoreId vc,
             const FabricPlacement &placement, L2System &l2);

    /** Pointers to the per-Slice L1 D-caches (for the L2 directory). */
    std::vector<CacheModel *> l1dPointers();

    /**
     * Install one line into the owning Slice's L1D and the L2
     * functionally (no timing); used to prewarm steady-state content.
     */
    void prefillLine(Addr addr);

    /**
     * Process up to @p max_instructions pulled from @p src.
     *
     * Contract: instructions are consumed from @p src in order, one
     * timing walk per instruction; the return value is the number
     * actually processed, which is less than @p max_instructions only
     * when @p src ran out.  Stream progress lives in the source
     * (InstSource::consumed()), not the core: callers may resume the
     * same source on this core, or -- between step calls -- charge
     * reconfigurations.  After a step that drains @p src, done()
     * reports true until the next step() with a non-exhausted source.
     */
    std::size_t step(InstSource &src, std::size_t max_instructions);

    /**
     * Consume up to @p max_instructions from @p src *functionally*:
     * only architectural warm state advances -- L1/L2 tag contents
     * (via the same access sequence the detailed walk performs),
     * branch-predictor and BTB training, memory-dependence history,
     * and the fetch-line tracker.  No port scheduling, no occupancy,
     * no network timing, and crucially no cycle progress:
     * lastCommit_/nextFetchCycle_ stay where the last detailed window
     * left them, so timed windows resumed after a fast-forward remain
     * on one continuous clock.  stats() is untouched; the purely
     * architectural events (cache accesses/misses, branch outcomes,
     * invalidations) are tallied separately in functionalStats() so
     * the sampling controller knows *exact* whole-stream totals for
     * every timing-independent counter.
     *
     * This is the SMARTS functional-warming phase; it runs near
     * generator speed because each instruction costs a few cache tag
     * probes instead of the full timing walk.
     *
     * @return instructions consumed (< max only when @p src ran out)
     */
    std::size_t fastForward(InstSource &src,
                            std::size_t max_instructions);

    /** Run @p src to exhaustion and return the final statistics. */
    const SimStats &run(InstSource &src);

    /** True when the last step() drained its source. */
    bool done() const { return done_; }

    /** Cycle of the most recent commit (the completion frontier). */
    Cycles currentCycle() const { return lastCommit_; }

    const SimStats &stats() const { return stats_; }

    /**
     * Architectural events observed during fast-forward phases only
     * (never mixed into stats()): instructionsCommitted counts
     * fast-forwarded instructions; branches/branchMispredicts, loads/
     * stores, and the L1/L2 access/miss/invalidation counters mirror
     * the detailed walk's counting sites exactly, so
     * stats() + functionalStats() are the exact whole-stream totals
     * of every timing-independent counter.
     */
    const SimStats &functionalStats() const { return funcStats_; }

    /**
     * Charge a reconfiguration penalty: all future activity starts
     * after @p penalty extra cycles, and architectural register state
     * collapses onto Slice 0 (the Register Flush of section 3.8).
     */
    void chargeReconfiguration(Cycles penalty);

    /**
     * Digest of the warm architectural state a fast-forward must
     * reproduce: L1 I/D tags, branch predictor, memory-dependence
     * window, and the fetch-line tracker.  The sampling tests compare
     * this (plus L2System::stateDigest()) between a detailed and a
     * functional pass over the same stream prefix.
     */
    std::uint64_t warmStateDigest() const;

  private:
    SimConfig cfg_;
    VCoreId vc_;
    FabricPlacement placement_;
    L2System *l2_;
    unsigned s_; //!< Slice count
    // Hot-path strength reduction: the per-instruction slice sorts
    // (fetch and load/store home) divide by s_ and blockBytes; both
    // are usually powers of two, so precompute masks and a shift.
    bool slicePow2_;         //!< s_ is a power of two
    unsigned sliceMask_;     //!< s_ - 1 when slicePow2_
    unsigned l1dBlockShift_; //!< log2(cfg.l1d.blockBytes)
    unsigned l1iBlockShift_; //!< log2(cfg.l1i.blockBytes)

    // Networks (operand, LS-sorting; rename rides its own network but
    // its cost is the added pipeline depth).
    SwitchedNetwork operandNet_;
    SwitchedNetwork sortNet_;

    // Per-Slice structures.
    std::vector<CacheModel> l1i_;
    std::vector<CacheModel> l1d_;
    DistributedBranchPredictor predictor_;
    std::vector<OccupancyLimiter> rob_;         //!< frees in order
    std::vector<UnorderedOccupancy> issueQueue_; //!< frees at issue
    std::vector<UnorderedOccupancy> lsq_;        //!< unordered (s3.6)
    std::vector<OccupancyLimiter> lrf_;
    std::vector<OccupancyLimiter> storeBuffer_;
    std::vector<UnorderedOccupancy> mshr_;
    std::vector<SlottedPort> aluPort_;
    std::vector<SlottedPort> lsPort_;
    std::vector<SlottedPort> l1dPort_;
    UnitPort commitPort_;

    RenameState rename_;
    MemDepTracker memDep_;
    /** Cached remote copies: copyReady_[reg][slice] valid via mask. */
    std::vector<std::array<Cycles, SimConfig::kMaxSlices>> copyReady_;
    std::vector<std::uint16_t> copyMask_;
    std::vector<SeqNum> copySeq_;

    // Front-end state.
    Cycles nextFetchCycle_ = 0;  //!< earliest start of the next group
    Cycles curGroupCycle_ = 0;   //!< cycle of the in-progress group
    unsigned groupUsed_ = 0;     //!< instructions fetched this group
    Cycles lastCommit_ = 0;
    SeqNum seq_ = 0;
    bool done_ = false; //!< the last step() drained its source
    Addr lastFetchLine_ = ~Addr{0};

    SimStats stats_;
    SimStats funcStats_; //!< architectural events seen in fast-forward

    // Helpers.
    SliceId fetchSliceOf(Addr pc) const;
    SliceId homeSliceOf(Addr addr) const;
    unsigned frontDepth() const;
    Cycles readSource(RegIndex reg, SliceId my_slice, Cycles when);
    void writeDest(RegIndex reg, SliceId slice, Cycles ready);
    Cycles fetchOne(const TraceInst &ti, SliceId slice);
    void processOne(const TraceInst &ti);
    void fastForwardOne(const TraceInst &ti);
};

} // namespace sharch

#endif // SHARCH_CORE_VCORE_SIM_HH
