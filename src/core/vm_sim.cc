#include "core/vm_sim.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/math_util.hh"
#include "trace/address_map.hh"

namespace sharch {

double
VmResult::throughput()
const
{
    return safeDiv(static_cast<double>(aggregate.instructionsCommitted),
                   static_cast<double>(cycles));
}

VmSim::VmSim(const SimConfig &cfg, unsigned num_vcores) : cfg_(cfg)
{
    SHARCH_ASSERT(num_vcores >= 1, "a VM needs at least one VCore");
    SHARCH_ASSERT(num_vcores <= 32, "directory bitmask limit");

    // The VM's shared L2 aggregates every VCore's bank allotment.
    SimConfig vm_cfg = cfg_;
    vm_cfg.numL2Banks = cfg_.numL2Banks * num_vcores;

    // Each VCore occupies its own column range of the fabric; banks
    // are modelled at each VCore's local distances (see DESIGN.md).
    const int stride =
        static_cast<int>(std::max<unsigned>(cfg_.numSlices,
                                            FabricPlacement::kBanksPerRow))
        + 1;
    placements_.reserve(num_vcores);
    for (unsigned v = 0; v < num_vcores; ++v) {
        placements_.emplace_back(cfg_.numSlices, vm_cfg.numL2Banks,
                                 Coord{static_cast<int>(v) * stride, 0});
    }

    l2_ = std::make_unique<L2System>(vm_cfg, placements_);
    for (unsigned v = 0; v < num_vcores; ++v) {
        vcores_.push_back(std::make_unique<VCoreSim>(
            cfg_, static_cast<VCoreId>(v), placements_[v], *l2_));
        l2_->registerL1s(static_cast<VCoreId>(v),
                         vcores_.back()->l1dPointers());
    }
}

void
VmSim::prewarm(const BenchmarkProfile &profile)
{
    using namespace addrmap;
    const std::uint64_t l2_lines =
        std::uint64_t(cfg_.numL2Banks) * vcores_.size() *
        cfg_.l2Bank.sizeBytes / kLine;
    const std::uint64_t l1_lines =
        std::uint64_t(cfg_.numSlices) * cfg_.l1d.sizeBytes / kLine;

    auto warm_region = [&](VCoreSim &vc, Addr base,
                           std::uint64_t region_lines) {
        // Worst rank first so LRU retains the most popular lines.
        const std::uint64_t n = std::min<std::uint64_t>(
            region_lines, 2 * l2_lines + 4 * l1_lines);
        for (std::uint64_t r = n; r-- > 0;)
            vc.prefillLine(base + r * kLine);
    };

    for (std::size_t v = 0; v < vcores_.size(); ++v) {
        const auto tid = static_cast<unsigned>(v);
        warm_region(*vcores_[v], threadBase(kHeapBase, tid),
                    profile.workingSetBytes / kLine);
        if (profile.multithreaded && profile.sharedFrac > 0.0) {
            warm_region(*vcores_[v], kSharedBase,
                        profile.sharedBytes / kLine);
        }
        warm_region(*vcores_[v], threadBase(kHotBase, tid),
                    std::max<std::uint64_t>(1,
                        profile.hotBytes / kLine));
    }
}

VmResult
VmSim::run(const std::vector<std::unique_ptr<InstSource>> &sources,
           std::size_t chunk)
{
    SHARCH_ASSERT(sources.size() == vcores_.size(),
                  "one instruction source per VCore required");
    SHARCH_ASSERT(chunk > 0, "chunk must be positive");

    bool progress = true;
    while (progress) {
        progress = false;
        for (std::size_t v = 0; v < vcores_.size(); ++v) {
            if (vcores_[v]->step(*sources[v], chunk) > 0)
                progress = true;
        }
    }

    VmResult res;
    for (std::size_t v = 0; v < vcores_.size(); ++v) {
        const SimStats &st = vcores_[v]->stats();
        res.perVCore.push_back(st);
        res.aggregate.merge(st);
        res.cycles = std::max(res.cycles, st.cycles);
    }
    res.aggregate.cycles = res.cycles;
    return res;
}

VmResult
VmSim::run(const std::vector<Trace> &traces, std::size_t chunk)
{
    std::vector<std::unique_ptr<InstSource>> sources;
    sources.reserve(traces.size());
    for (const Trace &t : traces)
        sources.push_back(std::make_unique<MaterializedTraceSource>(t));
    return run(sources, chunk);
}

} // namespace sharch
