/**
 * @file
 * SMARTS-style sampled simulation (ROADMAP item 2b).
 *
 * A full detailed run walks every instruction through the timing
 * model (~5.4M instr/s end to end); the instruction *stream* itself
 * costs only ~32M instr/s to produce.  Sampling closes that gap by
 * timing only a small fraction of the stream: the run alternates
 *
 *   [warm-up W detailed] [measure M detailed] [fast-forward U func.]
 *
 * periods over each VCore's InstSource.  Fast-forward consumes the
 * stream through VCoreSim::fastForward(), which updates architectural
 * warm state only (L1/L2 tags, branch predictor, memory-dependence
 * history) and lets no cycles pass; warm-up re-runs the detailed walk
 * unmeasured to absorb the stale timing state (rename positions,
 * occupancy rings) left from the previous period; the measure window
 * is both timed and recorded.
 *
 * Whole-run CPI is estimated by a control-variate regression: each
 * window's CPI is regressed on its architectural miss/mispredict
 * rates and evaluated at the *exact* whole-stream rates (known from
 * functional counting), which removes most of the variance a plain
 * window-mean would carry.  Timing-independent counters (cache
 * accesses/misses, branches, invalidations) are reported exactly,
 * not extrapolated; residual-based 95% confidence intervals land in
 * SimStats::sampling.
 *
 * Determinism: the fast-forward length is jittered (+/- U/8) from a
 * generator seeded only by the run's seed, so a sampled run is a pure
 * function of (profile, seed, schedule) -- bit-identical across
 * repeat runs, sweep thread counts, and trace modes.  The schedule
 * starts with warm-up + measure, so short streams still measure at
 * least one window.
 */

#ifndef SHARCH_CORE_SAMPLING_HH
#define SHARCH_CORE_SAMPLING_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "config/sim_config.hh"
#include "core/vm_sim.hh"
#include "trace/inst_source.hh"

namespace sharch {

/** How PerfModel and the CLIs obtain SimStats for a run. */
enum class SampleMode
{
    Full,    //!< detailed-time every instruction (historical path)
    Sampled, //!< SMARTS windows + functional fast-forward
};

/**
 * Drives one VM through a sampled run.  The controller owns no
 * simulation state: it rotates the VM's VCores round-robin exactly
 * like VmSim::run -- the turn budget counts *detailed* instructions
 * only, so during warm-up/measure phases the cross-VCore interleaving
 * (bank ports, directory contention) reproduces the full run's,
 * while fast-forward rides free inside a turn (it advances no
 * cycles).  Each VCore runs its own warm-up / measure / fast-forward
 * phase machine; schedules whose W and M are multiples of the chunk
 * keep windows aligned to whole turns, which is what makes measured
 * windows match the full run's contention pattern bit-for-bit.
 */
class SamplingController
{
  public:
    /**
     * @param schedule window lengths (U:W:M), measure >= 1
     * @param seed     seeds the fast-forward jitter stream; use the
     *                 run's SimConfig::seed so results stay a pure
     *                 function of the point identity
     */
    SamplingController(const SampleSchedule &schedule,
                       std::uint64_t seed);

    /**
     * Run @p sources (one per VCore) to exhaustion under the sampled
     * schedule and return extrapolated whole-run statistics.
     *
     * Each per-VCore SimStats estimates the full run:
     * instructionsCommitted is the exact stream length; every other
     * counter is scaled by (stream length / measured instructions);
     * cycles is the measured-CPI extrapolation.  SimStats::sampling
     * carries the window counts and CI95 half-widths.  The aggregate
     * CI is computed from cross-VCore window sums (tighter than the
     * per-VCore maximum merge() would take).
     *
     * @param chunk round-robin quantum in instructions (as VmSim::run)
     */
    VmResult run(VmSim &vm,
                 const std::vector<std::unique_ptr<InstSource>> &sources,
                 std::size_t chunk = 2000);

    const SampleSchedule &schedule() const { return schedule_; }

  private:
    SampleSchedule schedule_;
    std::uint64_t seed_;
};

} // namespace sharch

#endif // SHARCH_CORE_SAMPLING_HH
