#include "core/reconfig.hh"

namespace sharch {

ReconfigManager::ReconfigManager(const SimConfig &cfg) : cfg_(cfg) {}

bool
ReconfigManager::requiresCacheFlush(const VCoreShape &from,
                                    const VCoreShape &to) const
{
    return from.banks != to.banks;
}

bool
ReconfigManager::requiresRegisterFlush(const VCoreShape &from,
                                       const VCoreShape &to) const
{
    // Only shrinking strands register state on departing Slices.
    return to.slices < from.slices;
}

Cycles
ReconfigManager::transitionCost(const VCoreShape &from,
                                const VCoreShape &to) const
{
    if (from == to)
        return 0;
    if (requiresCacheFlush(from, to))
        return cfg_.reconfigCacheFlushCycles;
    return cfg_.reconfigSliceOnlyCycles;
}

} // namespace sharch
