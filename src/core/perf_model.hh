/**
 * @file
 * The performance surface P(c, s) the economics build on.
 *
 * Section 5.6 defines an application's single-thread performance
 * P(c, s) as a function of L2 cache and Slice count; every utility and
 * market experiment consumes it.  PerfModel runs SSim across the
 * configuration grid (memoized -- exhaustive sweeps revisit points)
 * and exposes performance in committed instructions per cycle.
 *
 * PerfModel is concurrency-safe end-to-end: the memo and trace cache
 * are mutex-guarded, disk-cache appends are serialized, and
 * performanceBatch() fans whole grids across an exec::SweepRunner
 * worker pool.  Every simulation derives its seed from the point's
 * identity via exec::deriveJobSeed(), so a batch run with N threads
 * is bit-identical (IPC values and CSV cache contents) to the same
 * batch run serially.
 *
 * The grid of L2 sizes follows the paper: 0 KB to 8 MB in powers of
 * two (Figure 13, Equation 3).
 */

#ifndef SHARCH_CORE_PERF_MODEL_HH
#define SHARCH_CORE_PERF_MODEL_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "config/sim_config.hh"
#include "core/vm_sim.hh"
#include "exec/sweep.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"

namespace sharch {

/** Grid of L2 bank counts used by the paper's sweeps (0 KB..8 MB). */
const std::vector<unsigned> &l2BankGrid();

/** Cache size in KB for a bank count under the 64 KB-bank default. */
unsigned banksToKb(unsigned banks);

/**
 * An immutable, shareable set of generated per-thread traces.  Trace
 * storage is the dominant memory consumer of long multi-benchmark
 * batches (instructions x threads x 32 B per benchmark), so generated
 * bundles are reference-counted: PerfModel's cache keeps at most a
 * bounded number of benchmarks hot and in-flight simulations pin the
 * bundle they replay, while evicted benchmarks regenerate
 * deterministically on next use.
 */
using TraceBundle = std::vector<Trace>;
using TraceBundlePtr = std::shared_ptr<const TraceBundle>;

/** Memoized, thread-safe SSim runner over (benchmark, banks, slices). */
class PerfModel
{
  public:
    /**
     * @param instructions_per_thread trace length per thread
     * @param seed                    base generation/simulation seed
     */
    explicit PerfModel(std::size_t instructions_per_thread = 60000,
                       std::uint64_t seed = 1);

    PerfModel(const PerfModel &) = delete;
    PerfModel &operator=(const PerfModel &) = delete;

    /**
     * Performance of @p benchmark on a VCore with @p banks 64 KB L2
     * banks and @p slices Slices, in aggregate committed IPC (for
     * multithreaded workloads this is VM throughput on one VCore's
     * worth of resources scaled per-VCore; see DESIGN.md).
     */
    double performance(const std::string &benchmark, unsigned banks,
                       unsigned slices);

    /** Performance for an ad-hoc profile (e.g., a gcc phase). */
    double performance(const BenchmarkProfile &profile, unsigned banks,
                       unsigned slices);

    /**
     * Evaluate a whole batch of grid points, fanned across
     * @p threads sweep workers (0: exec::resolveThreadCount(), i.e.
     * SHARCH_THREADS or hardware concurrency).  Results align with
     * @p points; duplicates are simulated once.  Newly simulated
     * values enter the memo and the disk cache in the deterministic
     * order of @p points (single writer, one batched append), so the
     * CSV contents do not depend on the worker count.
     */
    std::vector<exec::SweepResult> performanceBatch(
        const std::vector<exec::SweepPoint> &points,
        unsigned threads = 0);

    /** Full stats for one configuration (uncached path). */
    VmResult detailedRun(const BenchmarkProfile &profile,
                         unsigned banks, unsigned slices);

    std::size_t instructionsPerThread() const { return instructions_; }
    std::uint64_t seed() const { return seed_; }

    /**
     * Persist performance results to @p path (CSV) and preload any
     * existing entries whose (instructions, seed) match.  Lets several
     * benchmark harnesses share one simulated surface.
     */
    void enableDiskCache(const std::string &path);

    /**
     * Bound the generated-trace cache to @p benchmarks distinct
     * workloads (>= 1); least-recently-used bundles are dropped.
     * Simulations already holding a bundle keep it alive; an evicted
     * benchmark regenerates bit-identically on next use.
     */
    void setTraceCacheCapacity(std::size_t benchmarks);

    /** Distinct benchmarks currently held by the trace cache. */
    std::size_t traceCacheSize() const;

    /** Default trace-cache bound (distinct benchmarks). */
    static constexpr std::size_t kDefaultTraceCacheCapacity = 8;

  private:
    /**
     * Memo key over (benchmark, banks, slices), hashed -- the batch
     * phases probe it once per grid point, and the historical
     * tuple-of-string std::map paid an O(log n) chain of string
     * comparisons per probe.
     */
    struct MemoKey
    {
        std::string name;
        std::uint32_t banks = 0;
        std::uint32_t slices = 0;

        bool operator==(const MemoKey &) const = default;
    };

    struct MemoKeyHash
    {
        std::size_t operator()(const MemoKey &k) const
        {
            // Fold the grid coordinates into the string hash with a
            // Fibonacci multiplier so (banks, slices) permutations of
            // one benchmark spread over the table.
            std::size_t h = std::hash<std::string>{}(k.name);
            const std::uint64_t coord =
                (static_cast<std::uint64_t>(k.banks) << 32) |
                k.slices;
            h ^= coord * 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
            return h;
        }
    };

    /** One cached trace bundle plus its LRU recency stamp. */
    struct TraceCacheEntry
    {
        TraceBundlePtr traces;
        std::uint64_t lastUse = 0;
    };

    std::size_t instructions_;
    std::uint64_t seed_;
    std::unordered_map<MemoKey, double, MemoKeyHash> memo_;
    std::unordered_map<std::string, TraceCacheEntry> traces_;
    std::size_t traceCapacity_ = kDefaultTraceCacheCapacity;
    std::uint64_t traceUseTick_ = 0;
    std::string cachePath_;

    mutable std::mutex memoMutex_;  //!< guards memo_ and CSV appends
    mutable std::mutex traceMutex_; //!< guards traces_ and the LRU

    /** Simulate one point (no memo side effects; thread-safe). */
    double simulatePoint(const BenchmarkProfile &profile,
                         unsigned banks, unsigned slices);

    /** Write one CSV cache row to an already-open append stream. */
    void writeCacheRow(std::ostream &out, const std::string &name,
                       unsigned banks, unsigned slices,
                       double perf) const;

    /** Drop least-recently-used bundles down to the capacity.
     *  Caller holds traceMutex_. */
    void evictTracesLocked();

    TraceBundlePtr tracesFor(const BenchmarkProfile &p);
};

} // namespace sharch

#endif // SHARCH_CORE_PERF_MODEL_HH
