/**
 * @file
 * The performance surface P(c, s) the economics build on.
 *
 * Section 5.6 defines an application's single-thread performance
 * P(c, s) as a function of L2 cache and Slice count; every utility and
 * market experiment consumes it.  PerfModel runs SSim across the
 * configuration grid (memoized -- exhaustive sweeps revisit points)
 * and exposes performance in committed instructions per cycle.
 *
 * The grid of L2 sizes follows the paper: 0 KB to 8 MB in powers of
 * two (Figure 13, Equation 3).
 */

#ifndef SHARCH_CORE_PERF_MODEL_HH
#define SHARCH_CORE_PERF_MODEL_HH

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "config/sim_config.hh"
#include "core/vm_sim.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"

namespace sharch {

/** Grid of L2 bank counts used by the paper's sweeps (0 KB..8 MB). */
const std::vector<unsigned> &l2BankGrid();

/** Cache size in KB for a bank count under the 64 KB-bank default. */
unsigned banksToKb(unsigned banks);

/** Memoized SSim runner over (benchmark, banks, slices). */
class PerfModel
{
  public:
    /**
     * @param instructions_per_thread trace length per thread
     * @param seed                    generation/simulation seed
     */
    explicit PerfModel(std::size_t instructions_per_thread = 60000,
                       std::uint64_t seed = 1);

    /**
     * Performance of @p benchmark on a VCore with @p banks 64 KB L2
     * banks and @p slices Slices, in aggregate committed IPC (for
     * multithreaded workloads this is VM throughput on one VCore's
     * worth of resources scaled per-VCore; see DESIGN.md).
     */
    double performance(const std::string &benchmark, unsigned banks,
                       unsigned slices);

    /** Performance for an ad-hoc profile (e.g., a gcc phase). */
    double performance(const BenchmarkProfile &profile, unsigned banks,
                       unsigned slices);

    /** Full stats for one configuration (uncached path). */
    VmResult detailedRun(const BenchmarkProfile &profile,
                         unsigned banks, unsigned slices);

    std::size_t instructionsPerThread() const { return instructions_; }
    std::uint64_t seed() const { return seed_; }

    /**
     * Persist performance results to @p path (CSV) and preload any
     * existing entries whose (instructions, seed) match.  Lets several
     * benchmark harnesses share one simulated surface.
     */
    void enableDiskCache(const std::string &path);

  private:
    std::size_t instructions_;
    std::uint64_t seed_;
    std::map<std::tuple<std::string, unsigned, unsigned>, double>
        memo_;
    std::map<std::string, std::vector<Trace>> traces_;
    std::string cachePath_;

    void appendToDiskCache(const std::string &name, unsigned banks,
                           unsigned slices, double perf) const;

    const std::vector<Trace> &tracesFor(const BenchmarkProfile &p);
};

} // namespace sharch

#endif // SHARCH_CORE_PERF_MODEL_HH
