/**
 * @file
 * The performance surface P(c, s) the economics build on.
 *
 * Section 5.6 defines an application's single-thread performance
 * P(c, s) as a function of L2 cache and Slice count; every utility and
 * market experiment consumes it.  PerfModel runs SSim across the
 * configuration grid (memoized -- exhaustive sweeps revisit points)
 * and exposes performance in committed instructions per cycle.
 *
 * PerfModel is concurrency-safe end-to-end: the memo and trace cache
 * are mutex-guarded, disk-cache appends are serialized, and
 * performanceBatch() fans whole grids across an exec::SweepRunner
 * worker pool.  Every simulation derives its seed from the point's
 * identity via exec::deriveJobSeed(), so a batch run with N threads
 * is bit-identical (IPC values and CSV cache contents) to the same
 * batch run serially.
 *
 * The grid of L2 sizes follows the paper: 0 KB to 8 MB in powers of
 * two (Figure 13, Equation 3).
 */

#ifndef SHARCH_CORE_PERF_MODEL_HH
#define SHARCH_CORE_PERF_MODEL_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "config/sim_config.hh"
#include "core/sampling.hh"
#include "core/vm_sim.hh"
#include "exec/sweep.hh"
#include "trace/generator.hh"
#include "trace/inst_source.hh"
#include "trace/profile.hh"

namespace sharch {

/** Grid of L2 bank counts used by the paper's sweeps (0 KB..8 MB). */
const std::vector<unsigned> &l2BankGrid();

/** Cache size in KB for a bank count under the 64 KB-bank default. */
unsigned banksToKb(unsigned banks);

/** Memoized, thread-safe SSim runner over (benchmark, banks, slices). */
class PerfModel
{
  public:
    /**
     * @param instructions_per_thread trace length per thread
     * @param seed                    base generation/simulation seed
     */
    explicit PerfModel(std::size_t instructions_per_thread = 60000,
                       std::uint64_t seed = 1);

    PerfModel(const PerfModel &) = delete;
    PerfModel &operator=(const PerfModel &) = delete;

    /**
     * Performance of @p benchmark on a VCore with @p banks 64 KB L2
     * banks and @p slices Slices, in aggregate committed IPC (for
     * multithreaded workloads this is VM throughput on one VCore's
     * worth of resources scaled per-VCore; see DESIGN.md).
     */
    double performance(const std::string &benchmark, unsigned banks,
                       unsigned slices);

    /** Performance for an ad-hoc profile (e.g., a gcc phase). */
    double performance(const BenchmarkProfile &profile, unsigned banks,
                       unsigned slices);

    /**
     * Evaluate a whole batch of grid points, fanned across
     * @p threads sweep workers (0: exec::resolveThreadCount(), i.e.
     * SHARCH_THREADS or hardware concurrency).  Results align with
     * @p points; duplicates are simulated once.  Newly simulated
     * values enter the memo and the disk cache in the deterministic
     * order of @p points (single writer, one batched append), so the
     * CSV contents do not depend on the worker count.
     */
    std::vector<exec::SweepResult> performanceBatch(
        const std::vector<exec::SweepPoint> &points,
        unsigned threads = 0);

    /** Full stats for one configuration (uncached path). */
    VmResult detailedRun(const BenchmarkProfile &profile,
                         unsigned banks, unsigned slices);

    std::size_t instructionsPerThread() const { return instructions_; }
    std::uint64_t seed() const { return seed_; }

    /**
     * How simulations obtain their instruction streams.  The default,
     * TraceMode::Stream, fuses generation into the sim loop: no trace
     * bundle is ever materialized and resident trace storage is
     * O(StreamingTraceSource::kBufferInsts) per running simulation.
     * TraceMode::Materialize restores the bundle cache for multi-pass
     * consumers.  Both modes produce bit-identical results (same
     * instruction bytes, same SimStats); set before running -- the
     * mode is not meant to change mid-batch.
     */
    void setTraceMode(TraceMode mode) { traceMode_ = mode; }
    TraceMode traceMode() const { return traceMode_; }

    /**
     * How simulations obtain their SimStats.  The default,
     * SampleMode::Full, detailed-times every instruction and is
     * byte-identical to the historical output.  SampleMode::Sampled
     * routes every run through a SamplingController with @p schedule:
     * only the measure windows are detailed-timed; the rest of the
     * stream advances through the functional fast-forward, and
     * whole-run counters are ratio-extrapolated.  Sampled IPCs are
     * estimates, so they never enter or leave the disk cache (its
     * rows carry no mode column and must stay exact).  Set before
     * running -- not meant to change mid-batch.
     */
    void
    setSampleMode(SampleMode mode,
                  const SampleSchedule &schedule = kDefaultSampleSchedule)
    {
        sampleMode_ = mode;
        sampleSchedule_ = schedule;
    }
    SampleMode sampleMode() const { return sampleMode_; }
    const SampleSchedule &sampleSchedule() const
    { return sampleSchedule_; }

    /**
     * Persist performance results to @p path (CSV) and preload any
     * existing entries whose (instructions, seed) match.  Lets several
     * benchmark harnesses share one simulated surface.
     */
    void enableDiskCache(const std::string &path);

    /**
     * Bound the generated-trace cache to @p benchmarks distinct
     * workloads (>= 1); least-recently-used bundles are dropped.
     * Simulations already holding a bundle keep it alive; an evicted
     * benchmark regenerates bit-identically on next use.
     *
     * The bundle cache is a policy of the materialized path only: in
     * streaming mode no bundles exist, so this records the bound (for
     * a later switch to TraceMode::Materialize) and otherwise no-ops.
     * The bound also limits the streaming path's generator cache,
     * which holds O(codeBytes) skeletons, not traces.
     */
    void setTraceCacheCapacity(std::size_t benchmarks);

    /** Distinct benchmarks currently held by the trace cache
     *  (always 0 in streaming mode: no bundles are materialized). */
    std::size_t traceCacheSize() const;

    /** Default trace-cache bound (distinct benchmarks). */
    static constexpr std::size_t kDefaultTraceCacheCapacity = 8;

  private:
    /**
     * Memo key over (benchmark, banks, slices), hashed -- the batch
     * phases probe it once per grid point, and the historical
     * tuple-of-string std::map paid an O(log n) chain of string
     * comparisons per probe.
     */
    struct MemoKey
    {
        std::string name;
        std::uint32_t banks = 0;
        std::uint32_t slices = 0;

        bool operator==(const MemoKey &) const = default;
    };

    struct MemoKeyHash
    {
        std::size_t operator()(const MemoKey &k) const
        {
            // Fold the grid coordinates into the string hash with a
            // Fibonacci multiplier so (banks, slices) permutations of
            // one benchmark spread over the table.
            std::size_t h = std::hash<std::string>{}(k.name);
            const std::uint64_t coord =
                (static_cast<std::uint64_t>(k.banks) << 32) |
                k.slices;
            h ^= coord * 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
            return h;
        }
    };

    /** One cached trace bundle plus its LRU recency stamp. */
    struct TraceCacheEntry
    {
        TraceBundlePtr traces;
        std::uint64_t lastUse = 0;
    };

    /** One cached generator (skeleton only) plus its recency stamp. */
    struct GenCacheEntry
    {
        std::shared_ptr<const TraceGenerator> generator;
        std::uint64_t lastUse = 0;
    };

    std::size_t instructions_;
    std::uint64_t seed_;
    TraceMode traceMode_ = TraceMode::Stream;
    SampleMode sampleMode_ = SampleMode::Full;
    SampleSchedule sampleSchedule_ = kDefaultSampleSchedule;
    std::unordered_map<MemoKey, double, MemoKeyHash> memo_;
    std::unordered_map<std::string, TraceCacheEntry> traces_;
    std::unordered_map<std::string, GenCacheEntry> generators_;
    std::size_t traceCapacity_ = kDefaultTraceCacheCapacity;
    std::uint64_t traceUseTick_ = 0;
    std::string cachePath_;

    mutable std::mutex memoMutex_;  //!< guards memo_ and CSV appends
    mutable std::mutex traceMutex_; //!< guards traces_ and the LRU

    /** Simulate one point (no memo side effects; thread-safe). */
    double simulatePoint(const BenchmarkProfile &profile,
                         unsigned banks, unsigned slices);

    /** Write one CSV cache row to an already-open append stream. */
    void writeCacheRow(std::ostream &out, const std::string &name,
                       unsigned banks, unsigned slices,
                       double perf) const;

    /** Drop least-recently-used bundles down to the capacity.
     *  Caller holds traceMutex_.  No-op in streaming mode (the cache
     *  never holds bundles there). */
    void evictTracesLocked();

    /** As above for the generator cache.  Caller holds traceMutex_. */
    void evictGeneratorsLocked();

    TraceBundlePtr tracesFor(const BenchmarkProfile &p);

    /** Shared generator for @p p (streaming path), LRU-cached so grid
     *  sweeps do not rebuild the skeleton per point. */
    std::shared_ptr<const TraceGenerator> generatorFor(
        const BenchmarkProfile &p);
};

} // namespace sharch

#endif // SHARCH_CORE_PERF_MODEL_HH
