#include "core/perf_model.hh"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace sharch {

const std::vector<unsigned> &
l2BankGrid()
{
    // 0, 64 KB, 128 KB, ..., 8 MB in 64 KB banks.
    static const std::vector<unsigned> grid = {0,  1,  2,  4,  8,
                                               16, 32, 64, 128};
    return grid;
}

unsigned
banksToKb(unsigned banks)
{
    return banks * 64;
}

PerfModel::PerfModel(std::size_t instructions_per_thread,
                     std::uint64_t seed)
    : instructions_(instructions_per_thread), seed_(seed)
{
    SHARCH_ASSERT(instructions_per_thread > 0, "empty workload");
}

const std::vector<Trace> &
PerfModel::tracesFor(const BenchmarkProfile &p)
{
    auto it = traces_.find(p.name);
    if (it != traces_.end())
        return it->second;
    TraceGenerator gen(p, seed_);
    auto [ins, ok] =
        traces_.emplace(p.name, gen.generateThreads(instructions_));
    SHARCH_ASSERT(ok, "duplicate trace insertion");
    return ins->second;
}

VmResult
PerfModel::detailedRun(const BenchmarkProfile &profile, unsigned banks,
                       unsigned slices)
{
    SimConfig cfg;
    cfg.numSlices = slices;
    cfg.numL2Banks = banks;
    cfg.seed = seed_;
    const unsigned vcores =
        profile.multithreaded ? profile.numThreads : 1;
    VmSim vm(cfg, vcores);
    vm.prewarm(profile);
    return vm.run(tracesFor(profile));
}

double
PerfModel::performance(const BenchmarkProfile &profile, unsigned banks,
                       unsigned slices)
{
    const auto key = std::make_tuple(profile.name, banks, slices);
    auto it = memo_.find(key);
    if (it != memo_.end())
        return it->second;
    const VmResult res = detailedRun(profile, banks, slices);
    const unsigned vcores =
        profile.multithreaded ? profile.numThreads : 1;
    // Per-VCore performance: VM throughput divided across its VCores,
    // so P(c, s) composes with the economics' v replication factor.
    const double perf = res.throughput() / vcores;
    memo_.emplace(key, perf);
    appendToDiskCache(profile.name, banks, slices, perf);
    return perf;
}

void
PerfModel::enableDiskCache(const std::string &path)
{
    cachePath_ = path;
    std::ifstream in(path);
    if (!in)
        return;
    std::string line;
    std::size_t loaded = 0;
    while (std::getline(in, line)) {
        std::istringstream iss(line);
        std::string name;
        std::size_t instructions = 0;
        std::uint64_t seed = 0;
        unsigned banks = 0, slices = 0;
        double perf = 0.0;
        char comma = 0;
        if (!std::getline(iss, name, ','))
            continue;
        if (!(iss >> instructions >> comma >> seed >> comma >> banks >>
              comma >> slices >> comma >> perf)) {
            continue;
        }
        if (instructions != instructions_ || seed != seed_)
            continue;
        memo_[std::make_tuple(name, banks, slices)] = perf;
        ++loaded;
    }
    if (loaded > 0)
        SHARCH_INFORM("loaded ", loaded, " cached results from ", path);
}

void
PerfModel::appendToDiskCache(const std::string &name, unsigned banks,
                             unsigned slices, double perf) const
{
    if (cachePath_.empty())
        return;
    std::ofstream out(cachePath_, std::ios::app);
    if (!out)
        return;
    out << name << ',' << instructions_ << ',' << seed_ << ','
        << banks << ',' << slices << ','
        << std::setprecision(17) << perf << '\n';
}

double
PerfModel::performance(const std::string &benchmark, unsigned banks,
                       unsigned slices)
{
    return performance(profileFor(benchmark), banks, slices);
}

} // namespace sharch
