#include "core/perf_model.hh"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <iterator>
#include <map>
#include <ostream>
#include <sstream>
#include <unordered_set>

#include "common/logging.hh"
#include "config/sim_config.hh"
#include "exec/thread_pool.hh"

namespace sharch {

const std::vector<unsigned> &
l2BankGrid()
{
    // 0, 64 KB, 128 KB, ..., 8 MB in 64 KB banks.
    static const std::vector<unsigned> grid = {0,  1,  2,  4,  8,
                                               16, 32, 64, 128};
    return grid;
}

unsigned
banksToKb(unsigned banks)
{
    return banks * 64;
}

PerfModel::PerfModel(std::size_t instructions_per_thread,
                     std::uint64_t seed)
    : instructions_(instructions_per_thread), seed_(seed)
{
    SHARCH_ASSERT(instructions_per_thread > 0, "empty workload");
}

void
PerfModel::evictTracesLocked()
{
    // Streaming mode materializes no bundles, so there is nothing to
    // evict -- the trace cache is a policy of the materialized path.
    if (traceMode_ == TraceMode::Stream)
        return;
    while (traces_.size() > traceCapacity_) {
        auto victim = traces_.begin();
        for (auto it = std::next(victim); it != traces_.end(); ++it) {
            if (it->second.lastUse < victim->second.lastUse)
                victim = it;
        }
        traces_.erase(victim);
    }
}

void
PerfModel::evictGeneratorsLocked()
{
    while (generators_.size() > traceCapacity_) {
        auto victim = generators_.begin();
        for (auto it = std::next(victim); it != generators_.end();
             ++it) {
            if (it->second.lastUse < victim->second.lastUse)
                victim = it;
        }
        generators_.erase(victim);
    }
}

TraceBundlePtr
PerfModel::tracesFor(const BenchmarkProfile &p)
{
    {
        std::lock_guard<std::mutex> lock(traceMutex_);
        auto it = traces_.find(p.name);
        if (it != traces_.end()) {
            it->second.lastUse = ++traceUseTick_;
            return it->second.traces;
        }
    }
    // Generate outside the lock: traces are deterministic in
    // (profile, seed, thread), so a racing duplicate is identical and
    // the loser's copy is simply discarded.  The bundle is immutable
    // and reference-counted: callers mid-simulation keep theirs alive
    // even if the LRU bound evicts it from the cache meanwhile.
    TraceGenerator gen(p, seed_);
    auto bundle = std::make_shared<const TraceBundle>(
        gen.generateThreads(instructions_));
    std::lock_guard<std::mutex> lock(traceMutex_);
    auto [it, inserted] = traces_.try_emplace(p.name);
    if (inserted)
        it->second.traces = std::move(bundle);
    it->second.lastUse = ++traceUseTick_;
    TraceBundlePtr result = it->second.traces;
    evictTracesLocked();
    return result;
}

std::shared_ptr<const TraceGenerator>
PerfModel::generatorFor(const BenchmarkProfile &p)
{
    {
        std::lock_guard<std::mutex> lock(traceMutex_);
        auto it = generators_.find(p.name);
        if (it != generators_.end()) {
            it->second.lastUse = ++traceUseTick_;
            return it->second.generator;
        }
    }
    // Build outside the lock; a racing duplicate is identical (the
    // skeleton is deterministic in (profile, seed)) and discarded.
    auto gen = std::make_shared<const TraceGenerator>(p, seed_);
    std::lock_guard<std::mutex> lock(traceMutex_);
    auto [it, inserted] = generators_.try_emplace(p.name);
    if (inserted)
        it->second.generator = std::move(gen);
    it->second.lastUse = ++traceUseTick_;
    std::shared_ptr<const TraceGenerator> result = it->second.generator;
    evictGeneratorsLocked();
    return result;
}

void
PerfModel::setTraceCacheCapacity(std::size_t benchmarks)
{
    SHARCH_ASSERT(benchmarks > 0, "trace cache needs >= 1 slot");
    std::lock_guard<std::mutex> lock(traceMutex_);
    traceCapacity_ = benchmarks;
    evictGeneratorsLocked();
    if (traceMode_ == TraceMode::Stream) {
        SHARCH_DEBUG("trace-bundle cache bound is a no-op in streaming "
                     "mode: no bundles are materialized");
        return;
    }
    evictTracesLocked();
}

std::size_t
PerfModel::traceCacheSize() const
{
    std::lock_guard<std::mutex> lock(traceMutex_);
    return traces_.size();
}

VmResult
PerfModel::detailedRun(const BenchmarkProfile &profile, unsigned banks,
                       unsigned slices)
{
    SimConfig cfg;
    cfg.numSlices = slices;
    cfg.numL2Banks = banks;
    // Per-job seed: a pure function of the point's identity, never of
    // submission order, so parallel sweeps replay bit-identically.
    cfg.seed =
        exec::deriveJobSeed(seed_, profile.name, banks, slices);
    const unsigned vcores =
        profile.multithreaded ? profile.numThreads : 1;
    VmSim vm(cfg, vcores);
    vm.prewarm(profile);
    // Pin the bundle for the whole run; the cache may evict it.
    // Streamed and materialized sources emit identical bytes, so both
    // feed either the full detailed walk or the sampling controller.
    const auto sources =
        traceMode_ == TraceMode::Stream
            ? streamSources(generatorFor(profile), instructions_)
            : materializedSources(tracesFor(profile));
    if (sampleMode_ == SampleMode::Sampled) {
        SamplingController controller(sampleSchedule_, cfg.seed);
        return controller.run(vm, sources);
    }
    return vm.run(sources);
}

double
PerfModel::simulatePoint(const BenchmarkProfile &profile,
                         unsigned banks, unsigned slices)
{
    const VmResult res = detailedRun(profile, banks, slices);
    const unsigned vcores =
        profile.multithreaded ? profile.numThreads : 1;
    // Per-VCore performance: VM throughput divided across its VCores,
    // so P(c, s) composes with the economics' v replication factor.
    return res.throughput() / vcores;
}

double
PerfModel::performance(const BenchmarkProfile &profile, unsigned banks,
                       unsigned slices)
{
    const MemoKey key{profile.name, banks, slices};
    {
        std::lock_guard<std::mutex> lock(memoMutex_);
        auto it = memo_.find(key);
        if (it != memo_.end())
            return it->second;
    }
    const double perf = simulatePoint(profile, banks, slices);
    std::lock_guard<std::mutex> lock(memoMutex_);
    auto [it, inserted] = memo_.emplace(key, perf);
    // Sampled values are estimates: keep them out of the CSV cache,
    // whose rows have no mode column and must stay exact.
    if (inserted && !cachePath_.empty() &&
        sampleMode_ == SampleMode::Full) {
        std::ofstream out(cachePath_, std::ios::app);
        if (out)
            writeCacheRow(out, profile.name, banks, slices, perf);
    }
    return it->second;
}

std::vector<exec::SweepResult>
PerfModel::performanceBatch(
    const std::vector<exec::SweepPoint> &points, unsigned threads)
{
    // Phase 1: which distinct points still need simulation?
    std::vector<std::size_t> missing; // indices of first occurrences
    {
        std::lock_guard<std::mutex> lock(memoMutex_);
        std::unordered_set<MemoKey, MemoKeyHash> seen;
        for (std::size_t i = 0; i < points.size(); ++i) {
            const exec::SweepPoint &pt = points[i];
            const MemoKey key{pt.profile.name, pt.banks, pt.slices};
            if (memo_.count(key) || !seen.insert(key).second)
                continue;
            missing.push_back(i);
        }
    }

    if (!missing.empty()) {
        const exec::SweepRunner runner(threads);

        // Warm the per-workload shared state first, so sweep workers
        // never race to build the same thing: trace bundles when
        // materializing, just the (much cheaper) generator skeletons
        // when streaming.
        {
            std::map<std::string, const BenchmarkProfile *> profiles;
            for (std::size_t i : missing)
                profiles.emplace(points[i].profile.name,
                                 &points[i].profile);
            exec::ThreadPool pool(runner.threads());
            for (const auto &[name, profile] : profiles) {
                (void)name;
                pool.submit([this, profile] {
                    if (traceMode_ == TraceMode::Stream)
                        generatorFor(*profile);
                    else
                        tracesFor(*profile);
                });
            }
            pool.wait();
        }

        // Phase 2: simulate, one VmSim per job, on the worker pool.
        std::vector<exec::SweepPoint> jobs;
        jobs.reserve(missing.size());
        for (std::size_t i : missing)
            jobs.push_back(points[i]);
        const std::vector<double> values = runner.run(
            jobs, [this](const exec::SweepPoint &pt) {
                return simulatePoint(pt.profile, pt.banks, pt.slices);
            });

        // Phase 3: single-writer commit, in batch order -- the memo
        // and CSV contents are independent of worker count.
        std::lock_guard<std::mutex> lock(memoMutex_);
        std::ofstream out;
        // Sampled estimates never reach the CSV cache (no mode
        // column; exact full-run rows only).
        if (!cachePath_.empty() && sampleMode_ == SampleMode::Full)
            out.open(cachePath_, std::ios::app);
        for (std::size_t j = 0; j < jobs.size(); ++j) {
            const exec::SweepPoint &pt = jobs[j];
            const MemoKey key{pt.profile.name, pt.banks, pt.slices};
            if (memo_.emplace(key, values[j]).second && out)
                writeCacheRow(out, pt.profile.name, pt.banks,
                              pt.slices, values[j]);
        }
    }

    // Phase 4: assemble results for every requested point.
    std::vector<exec::SweepResult> results;
    results.reserve(points.size());
    std::lock_guard<std::mutex> lock(memoMutex_);
    std::unordered_set<MemoKey, MemoKeyHash> freshKeys;
    for (std::size_t i : missing) {
        const exec::SweepPoint &pt = points[i];
        freshKeys.insert(MemoKey{pt.profile.name, pt.banks,
                                 pt.slices});
    }
    for (const exec::SweepPoint &pt : points) {
        const MemoKey key{pt.profile.name, pt.banks, pt.slices};
        auto it = memo_.find(key);
        SHARCH_ASSERT(it != memo_.end(), "batch point missing");
        results.push_back(exec::SweepResult{pt.profile.name, pt.banks,
                                            pt.slices, it->second,
                                            freshKeys.count(key) > 0});
    }
    return results;
}

void
PerfModel::enableDiskCache(const std::string &path)
{
    std::lock_guard<std::mutex> lock(memoMutex_);
    if (sampleMode_ == SampleMode::Sampled) {
        // Cache rows are exact full-run results; a sampled model must
        // neither serve them (they would hide the estimator) nor add
        // its estimates to them (they would poison full runs).
        SHARCH_INFORM("disk cache disabled for sampled runs (", path,
                      " holds exact full-run results only)");
        return;
    }
    cachePath_ = path;
    std::ifstream in(path);
    if (!in)
        return;
    std::string line;
    std::size_t loaded = 0;
    std::size_t skipped = 0;
    std::size_t line_no = 0;
    std::size_t first_bad_line = 0;
    while (std::getline(in, line)) {
        ++line_no;
        std::istringstream iss(line);
        std::string name;
        std::size_t instructions = 0;
        std::uint64_t seed = 0;
        unsigned banks = 0, slices = 0;
        double perf = 0.0;
        char comma = 0;
        if (line.empty())
            continue;
        // A cache file is append-only and may be cut mid-row by a
        // crash, or corrupted outright; a bad row must be dropped,
        // never memoized (it would silently poison every figure that
        // reads this surface).  One summarized warning below -- a big
        // corrupt file must not flood the log with a line per row.
        if (!std::getline(iss, name, ',') || name.empty() ||
            !(iss >> instructions >> comma >> seed >> comma >> banks >>
              comma >> slices >> comma >> perf)) {
            if (++skipped == 1)
                first_bad_line = line_no;
            continue;
        }
        if (!std::isfinite(perf) || perf < 0.0 || slices < 1 ||
            slices > SimConfig::kMaxSlices ||
            banks > SimConfig::kMaxL2Banks) {
            if (++skipped == 1)
                first_bad_line = line_no;
            continue;
        }
        // Rows written under another workload/seed are legitimate
        // (several studies may share one cache file); skip silently.
        if (instructions != instructions_ || seed != seed_)
            continue;
        memo_[MemoKey{name, banks, slices}] = perf;
        ++loaded;
    }
    if (skipped > 0) {
        SHARCH_WARN("ignored ", skipped, " corrupt row(s) in cache ",
                    path, " (first at line ", first_bad_line,
                    "); delete the file to silence this");
    }
    if (loaded > 0)
        SHARCH_INFORM("loaded ", loaded, " cached results from ", path);
}

void
PerfModel::writeCacheRow(std::ostream &out, const std::string &name,
                         unsigned banks, unsigned slices,
                         double perf) const
{
    out << name << ',' << instructions_ << ',' << seed_ << ','
        << banks << ',' << slices << ','
        << std::setprecision(17) << perf << '\n';
}

double
PerfModel::performance(const std::string &benchmark, unsigned banks,
                       unsigned slices)
{
    return performance(profileFor(benchmark), banks, slices);
}

} // namespace sharch
