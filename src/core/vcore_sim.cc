#include "core/vcore_sim.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/logging.hh"
#include "common/math_util.hh"
#include "obs/obs.hh"

namespace sharch {

#if SHARCH_OBS
namespace {

/** Registered once per process; per-thread shards keep bumps cheap. */
struct PipelineMetrics
{
    obs::MetricId instructions =
        obs::MetricsRegistry::instance().addCounter(
            "pipeline.instructions");
    obs::MetricId mispredicts =
        obs::MetricsRegistry::instance().addCounter(
            "pipeline.mispredicts");
    obs::HistogramHandle commitLatency =
        obs::MetricsRegistry::instance().addHistogram(
            "pipeline.commit_latency", 0.0, 16.0, 64);
};

PipelineMetrics &
pipelineMetrics()
{
    static PipelineMetrics m;
    return m;
}

} // namespace
#endif

namespace {

/** Decoupling between fetch and dispatch (instruction buffer depth
 *  expressed in cycles of slack before back-pressure stalls fetch). */
constexpr Cycles kBufferSlackCycles = 6;

/** Extra commit delay from the pre-commit pointer when s > 1. */
constexpr Cycles kPreCommitDelay = 2;

/** LSQ store-to-load forwarding latency. */
constexpr Cycles kForwardLatency = 2;

} // namespace

VCoreSim::VCoreSim(const SimConfig &cfg, VCoreId vc,
                   const FabricPlacement &placement, L2System &l2)
    : cfg_(cfg), vc_(vc), placement_(placement), l2_(&l2),
      s_(cfg.numSlices), slicePow2_(isPow2(cfg.numSlices)),
      sliceMask_(cfg.numSlices - 1),
      // Guarded so a degenerate config still reaches the validate()
      // diagnostic below instead of panicking in floorLog2.
      l1dBlockShift_(cfg.l1d.blockBytes > 0
                         ? floorLog2(cfg.l1d.blockBytes) : 0),
      l1iBlockShift_(cfg.l1i.blockBytes > 0
                         ? floorLog2(cfg.l1i.blockBytes) : 0),
      operandNet_(cfg.numSlices, cfg.network.baseOperandLatency,
                  cfg.network.perHopLatency,
                  cfg.network.operandNetworks *
                      cfg.network.injectionsPerCycle,
                  "operand"),
      sortNet_(cfg.numSlices, cfg.network.baseOperandLatency,
               cfg.network.perHopLatency, cfg.network.injectionsPerCycle,
               "sort"),
      predictor_(cfg.numSlices, cfg.slice.bimodalEntries,
                 cfg.slice.btbEntries),
      commitPort_(2 * cfg.numSlices),
      copyReady_(RenameState::kArchRegs),
      copyMask_(RenameState::kArchRegs, 0),
      copySeq_(RenameState::kArchRegs, 0)
{
    const std::string err = cfg_.validate();
    if (!err.empty())
        SHARCH_FATAL("invalid VCore configuration: ", err);
    SHARCH_ASSERT(placement_.numSlices() == s_,
                  "placement does not match Slice count");
    for (unsigned i = 0; i < s_; ++i) {
        l1i_.emplace_back(cfg_.l1i);
        l1d_.emplace_back(cfg_.l1d);
        rob_.emplace_back(cfg_.slice.robSize);
        issueQueue_.emplace_back(cfg_.slice.issueWindowSize);
        lsq_.emplace_back(cfg_.slice.lsqSize);
        lrf_.emplace_back(cfg_.slice.numLocalRegisters);
        storeBuffer_.emplace_back(cfg_.slice.storeBufferSize);
        mshr_.emplace_back(cfg_.slice.maxInflightLoads);
        aluPort_.emplace_back(1);
        lsPort_.emplace_back(1);
        l1dPort_.emplace_back(1);
    }
#if SHARCH_OBS
    if (obs::enabled()) {
        for (unsigned i = 0; i < s_; ++i) {
            obs::Tracer::instance().nameTrack(
                obs::kPidPipeline,
                static_cast<std::uint32_t>(
                    vc_ * SimConfig::kMaxSlices + i),
                "vc" + std::to_string(vc_) + ".slice" +
                    std::to_string(i));
        }
    }
#endif
}

std::vector<CacheModel *>
VCoreSim::l1dPointers()
{
    std::vector<CacheModel *> ptrs;
    for (auto &c : l1d_)
        ptrs.push_back(&c);
    return ptrs;
}

void
VCoreSim::prefillLine(Addr addr)
{
    l1d_[homeSliceOf(addr)].access(addr, false);
    l2_->prefill(vc_, addr);
}

SliceId
VCoreSim::fetchSliceOf(Addr pc) const
{
    // Interleaved fetch: PC pair p goes to Slice p mod s (section 3.1).
    const Addr pair = pc >> 3;
    return static_cast<SliceId>(slicePow2_ ? pair & sliceMask_
                                           : pair % s_);
}

SliceId
VCoreSim::homeSliceOf(Addr addr) const
{
    // Loads/stores are low-order interleaved by cache line so the same
    // line always sorts to the same Slice (section 3.5/3.6).
    const Addr line = addr >> l1dBlockShift_;
    return static_cast<SliceId>(slicePow2_ ? line & sliceMask_
                                           : line % s_);
}

unsigned
VCoreSim::frontDepth() const
{
    // fetch + decode + rename stages + dispatch.
    return 3 + renameDepth(s_);
}

Cycles
VCoreSim::readSource(RegIndex reg, SliceId my_slice, Cycles when)
{
    const Producer &p = rename_.lookup(reg);
    if (p.slice == my_slice || s_ == 1)
        return p.readyCycle;
    // A previous remote read may have left a copy in our LRF
    // (section 3.2.2: renamed remote operands are allocated locally so
    // subsequent reads do not generate new requests).
    if ((copyMask_[reg] & (1u << my_slice)) && copySeq_[reg] == p.seq)
        return copyReady_[reg][my_slice];

    const unsigned hops =
        placement_.sliceToSliceHops(p.slice, my_slice);
    const Cycles send_time = std::max(when, p.readyCycle);
    const Cycles arrive = operandNet_.send(p.slice, send_time, hops);
    ++stats_.operandRequests;
    ++stats_.operandReplies;
    stats_.operandNetworkHops += hops;

    if (copySeq_[reg] != p.seq) {
        copyMask_[reg] = static_cast<std::uint16_t>(1u << p.slice);
        copySeq_[reg] = p.seq;
    }
    copyMask_[reg] |= static_cast<std::uint16_t>(1u << my_slice);
    copyReady_[reg][my_slice] = arrive;
    return arrive;
}

void
VCoreSim::writeDest(RegIndex reg, SliceId slice, Cycles ready)
{
    rename_.define(reg, slice, ready, seq_);
    copyMask_[reg] = static_cast<std::uint16_t>(1u << slice);
    copySeq_[reg] = seq_;
    copyReady_[reg][slice] = ready;
}

Cycles
VCoreSim::fetchOne(const TraceInst &ti, SliceId slice)
{
    if (groupUsed_ == 0)
        curGroupCycle_ = nextFetchCycle_;
    Cycles fc = curGroupCycle_;

    // One L1 I-cache access per new fetch line.
    const Addr line = ti.pc >> l1iBlockShift_;
    if (line != lastFetchLine_) {
        ++stats_.l1iAccesses;
        const AccessResult r = l1i_[slice].access(ti.pc, false);
        if (!r.hit) {
            ++stats_.l1iMisses;
            const L2AccessResult l2r =
                l2_->access(vc_, slice, ti.pc, false, fc);
            ++stats_.l2Accesses;
            if (l2r.wentToMemory)
                ++stats_.l2Misses;
            const Cycles delay = l2r.doneCycle - fc;
            curGroupCycle_ += delay;
            fc = curGroupCycle_;
            stats_.addStall(Stage::Fetch, delay);
#if SHARCH_OBS
            if (obs::enabled()) {
                obs::Tracer::instance().record(
                    {"fetch_stall", "pipeline", fc - delay, fc,
                     obs::kPidPipeline,
                     static_cast<std::uint32_t>(
                         vc_ * SimConfig::kMaxSlices + slice),
                     delay, "cycles"});
            }
#endif
        }
        lastFetchLine_ = line;
    }

    ++groupUsed_;
    ++stats_.instructionsFetched;
    if (groupUsed_ >= cfg_.slice.fetchWidth * s_) {
        nextFetchCycle_ = std::max(nextFetchCycle_, curGroupCycle_ + 1);
        groupUsed_ = 0;
    }
    return fc;
}

void
VCoreSim::processOne(const TraceInst &ti)
{
    ++seq_;
    const SliceId slice = fetchSliceOf(ti.pc);

    // Branch prediction happens at fetch time, before training.
    BranchPrediction pred;
    bool mispredict = false;
    bool group_break = false;
    if (ti.isBranch()) {
        pred = predictor_.predict(ti.pc);
        const bool bad_direction = pred.predictTaken != ti.taken;
        // A BTB miss alone is a short fetch redirect (handled below),
        // not a pipeline flush; a *wrong* cached target does flush.
        const bool bad_target =
            ti.taken && pred.btbHit && pred.target != ti.target;
        mispredict = bad_direction || bad_target;
        group_break = ti.taken; // a taken branch ends the fetch group
    }

    const Cycles fetch_cycle = fetchOne(ti, slice);

    // ---- dispatch: front-end depth + structural constraints ----
    Cycles dispatch = fetch_cycle + frontDepth();
    if (s_ > 1)
        ++stats_.renameBroadcasts;
    struct Constraint { Cycles c; Stage stage; };
    Constraint limits[] = {
        {rob_[slice].allocConstraint(), Stage::Commit},
        {ti.dst != kNoReg ? lrf_[slice].allocConstraint() : 0,
         Stage::Rename},
        {ti.op == OpClass::Store
             ? storeBuffer_[slice].allocConstraint() : 0,
         Stage::Memory},
    };
    for (const Constraint &lim : limits) {
        if (lim.c > dispatch) {
            stats_.addStall(lim.stage, lim.c - dispatch);
            dispatch = lim.c;
        }
    }
    // Back-pressure: a stalled dispatch eventually stalls fetch for
    // every Slice (the instruction buffer is finite).
    if (dispatch > fetch_cycle + frontDepth() + kBufferSlackCycles) {
        nextFetchCycle_ = std::max(
            nextFetchCycle_,
            dispatch - frontDepth() - kBufferSlackCycles);
    }

    // ---- source operands ----
    Cycles src_ready = dispatch + 1;
    if (ti.src1 != kNoReg)
        src_ready = std::max(src_ready,
                             readSource(ti.src1, slice, dispatch));
    Cycles src2_ready = 0;
    if (ti.src2 != kNoReg)
        src2_ready = readSource(ti.src2, slice, dispatch);

    Cycles complete = 0;

    switch (ti.op) {
      case OpClass::IntAlu:
      case OpClass::IntMul: {
        const Cycles ready = std::max(src_ready, src2_ready);
        const Cycles win =
            issueQueue_[slice].allocate(dispatch, ready + 1);
        if (win > dispatch)
            stats_.addStall(Stage::Issue, win - dispatch);
        const Cycles issue =
            aluPort_[slice].schedule(std::max(ready, win + 1));
        complete = issue + (ti.op == OpClass::IntMul
                                ? cfg_.slice.mulLatency : 1);
        stats_.sumOperandWait += ready - (dispatch + 1);
        stats_.sumIssueWait += issue - ready;
        stats_.sumExecLatency += complete - issue;
        break;
      }
      case OpClass::Branch: {
        const Cycles ready = std::max(src_ready, src2_ready);
        const Cycles win =
            issueQueue_[slice].allocate(dispatch, ready + 1);
        if (win > dispatch)
            stats_.addStall(Stage::Issue, win - dispatch);
        const Cycles issue =
            aluPort_[slice].schedule(std::max(ready, win + 1));
        complete = issue + 1;
        ++stats_.branches;
        if (mispredict) {
            ++stats_.branchMispredicts;
            // Flush: local penalty plus cross-Slice flush messages.
            Cycles penalty = cfg_.slice.branchMispredictPenalty +
                             renameDepth(s_) - 1;
            if (s_ > 1)
                penalty += operandNet_.uncontendedLatency(s_ - 1);
            nextFetchCycle_ =
                std::max(nextFetchCycle_, complete + penalty);
            groupUsed_ = 0;
            stats_.squashedInstructions +=
                cfg_.slice.fetchWidth * s_;
            stats_.addStall(Stage::Fetch, penalty);
#if SHARCH_OBS
            if (obs::enabled()) {
                obs::Tracer::instance().record(
                    {"mispredict_flush", "pipeline", complete,
                     complete + penalty, obs::kPidPipeline,
                     static_cast<std::uint32_t>(
                         vc_ * SimConfig::kMaxSlices + slice),
                     seq_, "seq"});
            }
#endif
        } else if (group_break) {
            // Correctly predicted taken branch: redirect ends the
            // group; a BTB miss costs an extra bubble even when the
            // direction was right.
            Cycles redirect = curGroupCycle_ + 1;
            if (!pred.btbHit)
                redirect += 2;
            nextFetchCycle_ = std::max(nextFetchCycle_, redirect);
            groupUsed_ = 0;
        }
        predictor_.update(ti.pc, ti.taken, ti.target);
        break;
      }
      case OpClass::Load: {
        ++stats_.loads;
        const Cycles addr_ready = src_ready;
        const Cycles win =
            lsq_[slice].allocate(dispatch, addr_ready + 1);
        if (win > dispatch)
            stats_.addStall(Stage::Issue, win - dispatch);
        const Cycles issue =
            lsPort_[slice].schedule(std::max(addr_ready, win + 1));
        const Cycles agu_done = issue + 1;
        const SliceId m = homeSliceOf(ti.effAddr);
        const unsigned hops = placement_.sliceToSliceHops(slice, m);
        const Cycles at_bank = sortNet_.send(slice, agu_done, hops);

        const MemDepResult dep = memDep_.queryLoad(ti.effAddr, seq_);
        Cycles data_at_bank;
        if (dep.conflict && dep.storeAddrReady > at_bank) {
            // The load issued before an older store to the same word
            // resolved its address: the committing store detects the
            // younger load and squashes it (section 3.6).
            ++stats_.lsqViolations;
            data_at_bank = dep.storeDataReady + kForwardLatency;
            nextFetchCycle_ = std::max(
                nextFetchCycle_,
                dep.storeAddrReady + cfg_.slice.branchMispredictPenalty);
            groupUsed_ = 0;
            stats_.squashedInstructions += cfg_.slice.fetchWidth * s_;
#if SHARCH_OBS
            if (obs::enabled()) {
                obs::Tracer::instance().record(
                    {"lsq_squash", "pipeline", dep.storeAddrReady,
                     dep.storeAddrReady +
                         cfg_.slice.branchMispredictPenalty,
                     obs::kPidPipeline,
                     static_cast<std::uint32_t>(
                         vc_ * SimConfig::kMaxSlices + slice),
                     seq_, "seq"});
            }
#endif
        } else if (dep.conflict) {
            // Forward the in-flight store's data from the LSQ bank.
            data_at_bank = std::max(at_bank, dep.storeDataReady) +
                           kForwardLatency;
        } else {
            const Cycles t = l1dPort_[m].schedule(at_bank);
            ++stats_.l1dAccesses;
            const AccessResult r = l1d_[m].access(ti.effAddr, false);
            if (r.hit) {
                data_at_bank = t + cfg_.l1d.hitLatency;
            } else {
                ++stats_.l1dMisses;
                // MSHR residency estimate from a tag peek: bounds the
                // number of outstanding misses per Slice.
                const Cycles resid =
                    l2_->probeHit(ti.effAddr)
                        ? 30
                        : 30 + cfg_.memoryLatency;
                const Cycles start = mshr_[m].allocate(
                    t + cfg_.l1d.hitLatency,
                    t + cfg_.l1d.hitLatency + resid);
                const L2AccessResult l2r =
                    l2_->access(vc_, m, ti.effAddr, false, start);
                ++stats_.l2Accesses;
                if (l2r.wentToMemory)
                    ++stats_.l2Misses;
                stats_.coherenceInvalidations += l2r.invalidations;
                data_at_bank = l2r.doneCycle;
                if (r.writebackVictim) {
                    l2_->access(vc_, m,
                                r.victimLine * cfg_.l1d.blockBytes,
                                true, data_at_bank);
                }
            }
        }
        // Data returns to the issuing Slice over the SON.
        complete = data_at_bank;
        if (m != slice)
            complete = operandNet_.send(m, data_at_bank, hops);
        stats_.sumOperandWait += addr_ready - (dispatch + 1);
        stats_.sumIssueWait += issue - addr_ready;
        stats_.sumExecLatency += complete - issue;
        break;
      }
      case OpClass::Store: {
        ++stats_.stores;
        const Cycles addr_ready = src_ready;
        // A store's LSQ entry lives until its data is written; the
        // unordered bank frees it out of order (section 3.6).
        const Cycles win =
            lsq_[slice].allocate(dispatch, addr_ready + 2);
        if (win > dispatch)
            stats_.addStall(Stage::Issue, win - dispatch);
        const Cycles issue =
            lsPort_[slice].schedule(std::max(addr_ready, win + 1));
        const Cycles agu_done = issue + 1;
        const SliceId m = homeSliceOf(ti.effAddr);
        const unsigned hops = placement_.sliceToSliceHops(slice, m);
        const Cycles at_bank = sortNet_.send(slice, agu_done, hops);
        const Cycles data_ready = std::max(at_bank, src2_ready);
        memDep_.recordStore(ti.effAddr, seq_, at_bank, data_ready);
        complete = data_ready;
        break;
      }
    }

    // ---- in-order commit with the pre-commit pointer ----
    Cycles commit_ready = complete + (s_ > 1 ? kPreCommitDelay : 0);
    commit_ready = std::max(commit_ready, lastCommit_);
    const Cycles commit = commitPort_.schedule(commit_ready);
    lastCommit_ = commit;
    rob_[slice].allocate(commit + 1);
    if (ti.dst != kNoReg) {
        lrf_[slice].allocate(commit + 1);
        writeDest(ti.dst, slice, complete);
    }
    if (ti.op == OpClass::Store) {
        // The store drains to the cache after commit.
        const SliceId m = homeSliceOf(ti.effAddr);
        storeBuffer_[slice].allocate(commit + 2);
        const Cycles t = l1dPort_[m].schedule(commit + 1);
        ++stats_.l1dAccesses;
        const AccessResult r = l1d_[m].access(ti.effAddr, true);
        if (!r.hit) {
            ++stats_.l1dMisses;
            const L2AccessResult l2r =
                l2_->access(vc_, m, ti.effAddr, true, t);
            ++stats_.l2Accesses;
            if (l2r.wentToMemory)
                ++stats_.l2Misses;
            stats_.coherenceInvalidations += l2r.invalidations;
        }
        if (r.writebackVictim) {
            l2_->access(vc_, m, r.victimLine * cfg_.l1d.blockBytes,
                        true, t + 1);
        }
    }

    ++stats_.instructionsCommitted;
    stats_.cycles = lastCommit_;

#if SHARCH_OBS
    if (obs::enabled()) {
        auto &reg = obs::MetricsRegistry::instance();
        const PipelineMetrics &m = pipelineMetrics();
        reg.add(m.instructions);
        if (mispredict)
            reg.add(m.mispredicts);
        reg.observe(m.commitLatency,
                    static_cast<double>(commit - fetch_cycle));
        obs::Tracer::instance().record(
            {opClassName(ti.op), "pipeline", fetch_cycle, commit,
             obs::kPidPipeline,
             static_cast<std::uint32_t>(vc_ * SimConfig::kMaxSlices +
                                        slice),
             seq_, "seq"});
    }
#endif

    // Timeline debugging: SHARCH_DEBUG_TIMELINE=<start>:<count> dumps
    // per-instruction event times to stderr.
    static const char *dbg = std::getenv("SHARCH_DEBUG_TIMELINE");
    if (dbg) {
        static const std::uint64_t dbg_start = std::strtoull(dbg, nullptr, 10);
        static const std::uint64_t dbg_count =
            std::strchr(dbg, ':') ? std::strtoull(std::strchr(dbg, ':') + 1,
                                                  nullptr, 10) : 40;
        if (seq_ >= dbg_start && seq_ < dbg_start + dbg_count) {
            std::fprintf(stderr,
                "seq=%llu op=%s sl=%u f=%llu d=%llu r=%llu c=%llu cm=%llu\n",
                (unsigned long long)seq_, opClassName(ti.op), slice,
                (unsigned long long)fetch_cycle,
                (unsigned long long)dispatch,
                (unsigned long long)std::max(src_ready, src2_ready),
                (unsigned long long)complete,
                (unsigned long long)commit);
        }
    }
}

std::size_t
VCoreSim::step(InstSource &src, std::size_t max_instructions)
{
    // Batched pull: walk the source's contiguous windows so the
    // per-instruction loop pays no virtual dispatch -- refill() runs
    // once per window (every StreamingTraceSource::kBufferInsts
    // instructions when streaming, once in total when materialized).
    std::size_t n = 0;
    while (n < max_instructions) {
        std::size_t avail;
        const TraceInst *w = src.window(avail);
        if (!w)
            break;
        const std::size_t run =
            std::min(avail, max_instructions - n);
        for (std::size_t i = 0; i < run; ++i)
            processOne(w[i]);
        src.consume(run);
        n += run;
    }
    done_ = src.exhausted();
    stats_.cycles = lastCommit_;
    return n;
}

void
VCoreSim::fastForwardOne(const TraceInst &ti)
{
    // Functional twin of processOne: the same architectural state
    // transitions in the same order -- seq numbering, the per-line
    // L1I access dedup, predictor training, the conflict-gated L1D
    // access for loads, and the post-commit store drain -- with every
    // timing computation removed.  Any new architectural touch added
    // to processOne must be mirrored here (the warm-state
    // differential tests catch a miss).
    ++seq_;

    const Addr line = ti.pc >> l1iBlockShift_;
    if (line != lastFetchLine_) {
        ++funcStats_.l1iAccesses;
        const SliceId slice = fetchSliceOf(ti.pc);
        if (!l1i_[slice].access(ti.pc, false).hit) {
            ++funcStats_.l1iMisses;
            ++funcStats_.l2Accesses;
            if (l2_->accessFunctional(vc_, ti.pc, false).wentToMemory)
                ++funcStats_.l2Misses;
        }
        lastFetchLine_ = line;
    }

    switch (ti.op) {
      case OpClass::IntAlu:
      case OpClass::IntMul:
        break;
      case OpClass::Branch: {
        // Mispredict detection is architectural: predictor state is a
        // pure function of the trained history, so looking it up here
        // counts exactly the mispredicts the detailed walk would see.
        const BranchPrediction pred = predictor_.predict(ti.pc);
        ++funcStats_.branches;
        if (pred.predictTaken != ti.taken ||
            (ti.taken && pred.btbHit && pred.target != ti.target)) {
            ++funcStats_.branchMispredicts;
        }
        predictor_.update(ti.pc, ti.taken, ti.target);
        break;
      }
      case OpClass::Load: {
        ++funcStats_.loads;
        // A conflicting older store forwards (or squashes) the load:
        // in both cases the detailed walk skips the D-cache access.
        if (memDep_.queryLoad(ti.effAddr, seq_).conflict)
            break;
        const SliceId m = homeSliceOf(ti.effAddr);
        ++funcStats_.l1dAccesses;
        const AccessResult r = l1d_[m].access(ti.effAddr, false);
        if (!r.hit) {
            ++funcStats_.l1dMisses;
            ++funcStats_.l2Accesses;
            const L2AccessResult l2r =
                l2_->accessFunctional(vc_, ti.effAddr, false);
            if (l2r.wentToMemory)
                ++funcStats_.l2Misses;
            funcStats_.coherenceInvalidations += l2r.invalidations;
            if (r.writebackVictim) {
                l2_->accessFunctional(
                    vc_, r.victimLine * cfg_.l1d.blockBytes, true);
            }
        }
        break;
      }
      case OpClass::Store: {
        ++funcStats_.stores;
        // Cycle payloads are zero: conflict detection reads only the
        // (word, seq) pair (see MemDepTracker::architecturalDigest).
        memDep_.recordStore(ti.effAddr, seq_, 0, 0);
        const SliceId m = homeSliceOf(ti.effAddr);
        ++funcStats_.l1dAccesses;
        const AccessResult r = l1d_[m].access(ti.effAddr, true);
        if (!r.hit) {
            ++funcStats_.l1dMisses;
            ++funcStats_.l2Accesses;
            const L2AccessResult l2r =
                l2_->accessFunctional(vc_, ti.effAddr, true);
            if (l2r.wentToMemory)
                ++funcStats_.l2Misses;
            funcStats_.coherenceInvalidations += l2r.invalidations;
        }
        if (r.writebackVictim) {
            l2_->accessFunctional(
                vc_, r.victimLine * cfg_.l1d.blockBytes, true);
        }
        break;
      }
    }
    ++funcStats_.instructionsCommitted;
}

std::size_t
VCoreSim::fastForward(InstSource &src, std::size_t max_instructions)
{
    // Same batched pull as step(): no virtual dispatch per
    // instruction, refill() once per window.
    std::size_t n = 0;
    while (n < max_instructions) {
        std::size_t avail;
        const TraceInst *w = src.window(avail);
        if (!w)
            break;
        const std::size_t run =
            std::min(avail, max_instructions - n);
        for (std::size_t i = 0; i < run; ++i)
            fastForwardOne(w[i]);
        src.consume(run);
        n += run;
    }
    done_ = src.exhausted();
    return n;
}

std::uint64_t
VCoreSim::warmStateDigest() const
{
    std::uint64_t h = kDigestSeed;
    for (const CacheModel &c : l1i_)
        h = digestMix(h, c.stateDigest());
    for (const CacheModel &c : l1d_)
        h = digestMix(h, c.stateDigest());
    h = digestMix(h, predictor_.stateDigest());
    h = digestMix(h, memDep_.architecturalDigest());
    h = digestMix(h, lastFetchLine_);
    h = digestMix(h, seq_);
    return h;
}

const SimStats &
VCoreSim::run(InstSource &src)
{
    while (!src.exhausted())
        step(src, std::numeric_limits<std::size_t>::max());
    done_ = true;
    stats_.cycles = lastCommit_;
    return stats_;
}

void
VCoreSim::chargeReconfiguration(Cycles penalty)
{
    const Cycles resume = lastCommit_ + penalty;
    nextFetchCycle_ = std::max(nextFetchCycle_, resume);
    groupUsed_ = 0;
    lastCommit_ = resume;
    // Register Flush: surviving state collapses onto Slice 0.
    rename_.flushTo(0, resume);
    std::fill(copyMask_.begin(), copyMask_.end(), 0);
}

} // namespace sharch
