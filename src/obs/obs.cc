#include "obs/obs.hh"

#include <chrono>

namespace sharch::obs {

namespace detail {
std::atomic<bool> enabled_{false};
} // namespace detail

void
setEnabled(bool on)
{
    const bool was = detail::enabled_.exchange(on);
    if (on && !was) {
        // Label the standard layer processes once, with their time
        // domains, so exported traces read honestly without any
        // naming work on the hot paths.
        Tracer &t = Tracer::instance();
        t.nameProcess(kPidPipeline, "pipeline (cycles)");
        t.nameProcess(kPidCache, "cache (cycles)");
        t.nameProcess(kPidNoc, "noc (cycles)");
        t.nameProcess(kPidFabric, "fabric (decision seq)");
        t.nameProcess(kPidMarket, "market (auction rounds)");
        t.nameProcess(kPidExec, "exec (wall-clock us)");
    }
}

std::uint64_t
nowMicros()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point epoch = Clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - epoch)
            .count());
}

} // namespace sharch::obs
