#include "obs/trace.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/logging.hh"

namespace sharch::obs {

namespace {

std::size_t
ceilPow2(std::size_t v)
{
    std::size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

/** Minimal JSON string escaping for names the trace embeds. */
std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

} // namespace

Tracer &
Tracer::instance()
{
    // Leaked for the same reason as MetricsRegistry::instance().
    static Tracer *tracer = new Tracer;
    return *tracer;
}

void
Tracer::setCapacity(std::size_t spans_per_thread)
{
    SHARCH_ASSERT(spans_per_thread > 0, "ring needs >= 1 span");
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = ceilPow2(spans_per_thread);
}

Tracer::Ring &
Tracer::ringFor()
{
    thread_local Ring *cached = nullptr;
    thread_local std::uint64_t cachedGen = 0;
    const std::uint64_t gen =
        generation_.load(std::memory_order_relaxed);
    if (!cached || cachedGen != gen) {
        std::lock_guard<std::mutex> lock(mutex_);
        rings_.push_back(std::make_unique<Ring>());
        rings_.back()->buf.resize(capacity_);
        cached = rings_.back().get();
        cachedGen = gen;
    }
    return *cached;
}

void
Tracer::record(const TraceSpan &span)
{
    Ring &r = ringFor();
    r.buf[r.head & (r.buf.size() - 1)] = span;
    ++r.head;
}

const char *
Tracer::intern(const std::string &text)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = internIndex_.find(text);
    if (it != internIndex_.end())
        return it->second;
    internPool_.push_back(text);
    const char *stable = internPool_.back().c_str();
    internIndex_.emplace(text, stable);
    return stable;
}

void
Tracer::nameProcess(std::uint32_t pid, const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    processNames_[pid] = name;
}

void
Tracer::nameTrack(std::uint32_t pid, std::uint32_t tid,
                  const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    trackNames_[{pid, tid}] = name;
}

std::uint32_t
Tracer::threadTrackId(std::uint32_t pid)
{
    thread_local std::uint32_t id = ~0u;
    if (id == ~0u) {
        std::lock_guard<std::mutex> lock(mutex_);
        id = nextThreadTrack_++;
        trackNames_[{pid, id}] = "worker" + std::to_string(id);
    }
    return id;
}

std::vector<TraceSpan>
Tracer::collect() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<TraceSpan> spans;
    for (const auto &ring : rings_) {
        const std::uint64_t size = ring->buf.size();
        const std::uint64_t first =
            ring->head > size ? ring->head - size : 0;
        for (std::uint64_t i = first; i < ring->head; ++i)
            spans.push_back(ring->buf[i & (size - 1)]);
    }
    std::stable_sort(spans.begin(), spans.end(),
                     [](const TraceSpan &a, const TraceSpan &b) {
                         if (a.pid != b.pid)
                             return a.pid < b.pid;
                         if (a.tid != b.tid)
                             return a.tid < b.tid;
                         if (a.begin != b.begin)
                             return a.begin < b.begin;
                         return a.end < b.end;
                     });
    return spans;
}

std::uint64_t
Tracer::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t n = 0;
    for (const auto &ring : rings_) {
        if (ring->head > ring->buf.size())
            n += ring->head - ring->buf.size();
    }
    return n;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    rings_.clear();
    processNames_.clear();
    trackNames_.clear();
    nextThreadTrack_ = 0;
    // Invalidate every thread's cached ring pointer (interned strings
    // stay: handed-out pointers must remain valid).
    generation_.fetch_add(1, std::memory_order_relaxed);
}

void
Tracer::writeChromeTrace(std::ostream &out) const
{
    const std::vector<TraceSpan> spans = collect();

    std::lock_guard<std::mutex> lock(mutex_);
    out << "{\"traceEvents\":[";
    bool first = true;
    const auto sep = [&]() -> std::ostream & {
        if (!first)
            out << ",\n";
        first = false;
        return out;
    };

    for (const auto &[pid, name] : processNames_) {
        sep() << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
              << pid << ",\"tid\":0,\"args\":{\"name\":\""
              << escapeJson(name) << "\"}}";
    }
    for (const auto &[key, name] : trackNames_) {
        sep() << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
              << key.first << ",\"tid\":" << key.second
              << ",\"args\":{\"name\":\"" << escapeJson(name)
              << "\"}}";
    }

    for (const TraceSpan &s : spans) {
        sep() << "{\"name\":\"" << escapeJson(s.name)
              << "\",\"cat\":\"" << escapeJson(s.category) << "\",";
        if (s.end > s.begin) {
            out << "\"ph\":\"X\",\"ts\":" << s.begin
                << ",\"dur\":" << s.end - s.begin;
        } else {
            out << "\"ph\":\"i\",\"s\":\"t\",\"ts\":" << s.begin;
        }
        out << ",\"pid\":" << s.pid << ",\"tid\":" << s.tid;
        if (s.argName) {
            out << ",\"args\":{\"" << escapeJson(s.argName)
                << "\":" << s.arg << "}";
        }
        out << "}";
    }

    std::uint64_t dropped = 0;
    for (const auto &ring : rings_) {
        if (ring->head > ring->buf.size())
            dropped += ring->head - ring->buf.size();
    }
    out << "],\n\"displayTimeUnit\":\"ms\",\"otherData\":{"
        << "\"schema\":\"sharch-trace-v1\",\"dropped\":" << dropped
        << "}}\n";
}

} // namespace sharch::obs
