/**
 * @file
 * The obs timeline tracer: bounded per-thread ring buffers of spans,
 * exported as Chrome trace-event JSON (chrome://tracing and Perfetto
 * both load it).
 *
 * A span is (name, category, begin, end) on a (pid, tid) track plus
 * one optional integer argument.  Names and categories are stored as
 * `const char *` so the hot path copies two pointers and four
 * integers -- use string literals, or intern() for dynamic names.
 *
 * Each thread records into its own power-of-two ring; when a ring
 * fills, the oldest spans are overwritten and counted as dropped, so
 * tracing a long run costs bounded memory.  collect() and
 * writeChromeTrace() merge the rings under the same quiescence
 * contract as the metrics registry: call them when no thread is
 * recording.
 *
 * Time is whatever the instrumentation point says it is: spans within
 * one pid must share a clock (cycles, decision counters, wall-clock
 * microseconds), spans across pids need not (see obs.hh's kPid
 * constants, one per time domain).
 */

#ifndef SHARCH_OBS_TRACE_HH
#define SHARCH_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sharch::obs {

/** One recorded interval (or instant, when end == begin). */
struct TraceSpan
{
    const char *name = "";     //!< must outlive the tracer; intern()
    const char *category = ""; //!< trace-viewer filter group
    std::uint64_t begin = 0;
    std::uint64_t end = 0;     //!< == begin renders as an instant
    std::uint32_t pid = 0;     //!< layer/time-domain (obs.hh kPid*)
    std::uint32_t tid = 0;     //!< track within the layer
    std::uint64_t arg = 0;     //!< shown when argName != nullptr
    const char *argName = nullptr;
};

/** Process-wide span collector. */
class Tracer
{
  public:
    static Tracer &instance();

    /**
     * Capacity (spans) of each per-thread ring, rounded up to a power
     * of two.  Affects only rings created after the call; existing
     * rings keep their size.
     */
    void setCapacity(std::size_t spans_per_thread);

    /** Record one span into the calling thread's ring (wait-free). */
    void record(const TraceSpan &span);

    /**
     * Copy @p text into tracer-owned storage and return a stable
     * pointer for TraceSpan::name.  Repeated calls with equal text
     * return the same pointer.  Takes a lock -- intern outside the
     * hot loop (e.g. once per sweep job, not once per instruction).
     */
    const char *intern(const std::string &text);

    /** Label a process (track group) in the exported trace. */
    void nameProcess(std::uint32_t pid, const std::string &name);

    /** Label one (pid, tid) track in the exported trace. */
    void nameTrack(std::uint32_t pid, std::uint32_t tid,
                   const std::string &name);

    /**
     * A small per-thread id for wall-clock tracks: the first call on
     * each thread assigns the next id and names the (pid, id) track
     * "worker<N>".  Later calls return the same id regardless of pid.
     */
    std::uint32_t threadTrackId(std::uint32_t pid);

    /** All surviving spans, sorted by (pid, tid, begin, end). */
    std::vector<TraceSpan> collect() const;

    /** Spans overwritten by ring wrap-around, across all threads. */
    std::uint64_t dropped() const;

    /** Forget all spans, names, and rings (not interned strings). */
    void clear();

    /**
     * Write the Chrome trace-event JSON document: thread/process
     * metadata, every surviving span ("X" complete events, "i"
     * instants), and an otherData section with the schema id
     * ("sharch-trace-v1") and the dropped count.
     */
    void writeChromeTrace(std::ostream &out) const;

  private:
    Tracer() = default;

    struct Ring
    {
        std::vector<TraceSpan> buf; //!< power-of-two size
        std::uint64_t head = 0;     //!< total spans ever recorded
    };

    Ring &ringFor();

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Ring>> rings_;
    std::size_t capacity_ = 1u << 15;
    std::map<std::uint32_t, std::string> processNames_;
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::string>
        trackNames_;
    /** Stable storage for intern(): a deque never moves elements. */
    std::deque<std::string> internPool_;
    std::map<std::string, const char *> internIndex_;
    std::uint32_t nextThreadTrack_ = 0;
    /** Bumped by clear() so threads drop their cached ring pointer. */
    std::atomic<std::uint64_t> generation_{1};
};

} // namespace sharch::obs

#endif // SHARCH_OBS_TRACE_HH
