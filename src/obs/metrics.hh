/**
 * @file
 * The obs metrics registry: named monotonic counters, gauges, and
 * fixed-bucket histograms.
 *
 * Registration happens once (typically from a function-local static in
 * the instrumented translation unit) and returns a small handle; the
 * hot path then updates plain 64-bit cells in a *per-thread shard*, so
 * the exec ThreadPool's workers never contend on a lock or share a
 * cache line with one another.  A snapshot merges all shards by
 * summation -- commutative, so the merged totals are deterministic
 * regardless of which worker did which job.
 *
 * Quiescence contract: updates are unsynchronized by design (each
 * thread writes only its own shard).  snapshot() and reset() must run
 * while no other thread is updating -- e.g. after ThreadPool::wait() or
 * at end of run.  That is exactly when the CLIs call them.
 */

#ifndef SHARCH_OBS_METRICS_HH
#define SHARCH_OBS_METRICS_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sharch::obs {

/** What a registered metric is. */
enum class MetricKind
{
    Counter,   //!< monotonic sum across threads
    Gauge,     //!< signed level; per-thread last-set values sum
    Histogram, //!< fixed-bucket counts plus underflow/overflow
};

/** Printable kind name ("counter", "gauge", "histogram"). */
const char *metricKindName(MetricKind kind);

/** Index of a metric's first cell in every shard's cell array. */
using MetricId = std::uint32_t;

/**
 * Everything observe() needs to find a bucket without consulting the
 * registry.  Bucket i counts values in [lo + i*width, lo + (i+1)*width);
 * values below lo land in the underflow cell, values at or above
 * lo + buckets*width in the overflow cell.
 */
struct HistogramHandle
{
    MetricId id = 0;
    double lo = 0.0;
    double width = 1.0;
    std::uint32_t buckets = 0;
};

/** One merged metric in a snapshot. */
struct MetricValue
{
    std::string name;
    MetricKind kind = MetricKind::Counter;
    std::int64_t value = 0; //!< counter/gauge total (0 for histograms)
    double lo = 0.0;        //!< histogram lower bound
    double width = 0.0;     //!< histogram bucket width
    std::vector<std::uint64_t> buckets; //!< histogram only
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;

    /** Total histogram observations including under/overflow. */
    std::uint64_t samples() const;
};

/** The merged view of every registered metric, registration order. */
struct MetricsSnapshot
{
    std::vector<MetricValue> metrics;

    bool empty() const { return metrics.empty(); }
    /** The metric named @p name, or nullptr. */
    const MetricValue *find(const std::string &name) const;
};

/**
 * Process-wide registry.  Thread-safe registration; wait-free updates
 * (each thread owns its shard); snapshot/reset under the quiescence
 * contract above.
 */
class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    /** Register a monotonic counter.  Names must be unique. */
    MetricId addCounter(const std::string &name);

    /** Register a signed gauge.  Names must be unique. */
    MetricId addGauge(const std::string &name);

    /**
     * Register a histogram of @p buckets cells of @p width starting at
     * @p lo (see HistogramHandle for the edge semantics).
     */
    HistogramHandle addHistogram(const std::string &name, double lo,
                                 double width, std::uint32_t buckets);

    /** Bump a counter by @p by on the calling thread's shard. */
    void add(MetricId id, std::uint64_t by = 1);

    /**
     * Set a gauge on the calling thread's shard.  Per-thread values
     * sum in the snapshot, so "set" is last-write-wins per thread
     * (useful for levels a single thread owns, e.g. free Slices).
     */
    void set(MetricId id, std::int64_t v);

    /** Record one histogram observation. */
    void observe(const HistogramHandle &h, double v);

    /** Merge every shard into one deterministic snapshot. */
    MetricsSnapshot snapshot() const;

    /** Zero every cell in every shard; registrations survive. */
    void reset();

    /** Number of registered metrics. */
    std::size_t numMetrics() const;

  private:
    MetricsRegistry() = default;

    struct Registration
    {
        std::string name;
        MetricKind kind = MetricKind::Counter;
        MetricId id = 0;            //!< first cell
        std::uint32_t cells = 1;    //!< cells occupied
        double lo = 0.0;            //!< histogram geometry
        double width = 0.0;
    };

    /** One thread's private cell array. */
    struct Shard
    {
        std::vector<std::uint64_t> cells;
    };

    MetricId registerMetric(const std::string &name, MetricKind kind,
                            std::uint32_t cells, double lo,
                            double width);
    Shard &shardFor();

    mutable std::mutex mutex_;
    std::vector<Registration> metrics_;
    /** Shards are owned here and outlive their threads, so counts
     *  from finished ThreadPool workers survive into the snapshot. */
    std::vector<std::unique_ptr<Shard>> shards_;
    std::uint32_t cellCount_ = 0;
};

} // namespace sharch::obs

#endif // SHARCH_OBS_METRICS_HH
