#include "obs/metrics.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sharch::obs {

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Gauge: return "gauge";
      case MetricKind::Histogram: return "histogram";
    }
    return "?";
}

std::uint64_t
MetricValue::samples() const
{
    std::uint64_t n = underflow + overflow;
    for (std::uint64_t c : buckets)
        n += c;
    return n;
}

const MetricValue *
MetricsSnapshot::find(const std::string &name) const
{
    for (const MetricValue &m : metrics) {
        if (m.name == name)
            return &m;
    }
    return nullptr;
}

MetricsRegistry &
MetricsRegistry::instance()
{
    // Deliberately leaked: worker threads may touch their shard during
    // static destruction, after a function-local static would be gone.
    static MetricsRegistry *registry = new MetricsRegistry;
    return *registry;
}

MetricId
MetricsRegistry::registerMetric(const std::string &name,
                                MetricKind kind, std::uint32_t cells,
                                double lo, double width)
{
    SHARCH_ASSERT(!name.empty(), "metrics need names");
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Registration &r : metrics_) {
        SHARCH_ASSERT(r.name != name,
                      "duplicate metric registration: ", name);
    }
    Registration reg;
    reg.name = name;
    reg.kind = kind;
    reg.id = cellCount_;
    reg.cells = cells;
    reg.lo = lo;
    reg.width = width;
    metrics_.push_back(reg);
    cellCount_ += cells;
    return reg.id;
}

MetricId
MetricsRegistry::addCounter(const std::string &name)
{
    return registerMetric(name, MetricKind::Counter, 1, 0.0, 0.0);
}

MetricId
MetricsRegistry::addGauge(const std::string &name)
{
    return registerMetric(name, MetricKind::Gauge, 1, 0.0, 0.0);
}

HistogramHandle
MetricsRegistry::addHistogram(const std::string &name, double lo,
                              double width, std::uint32_t buckets)
{
    SHARCH_ASSERT(width > 0.0, "histogram width must be positive");
    SHARCH_ASSERT(buckets > 0, "histogram needs >= 1 bucket");
    HistogramHandle h;
    // Layout: [underflow][bucket 0..buckets-1][overflow].
    h.id = registerMetric(name, MetricKind::Histogram, buckets + 2,
                          lo, width);
    h.lo = lo;
    h.width = width;
    h.buckets = buckets;
    return h;
}

MetricsRegistry::Shard &
MetricsRegistry::shardFor()
{
    thread_local Shard *cached = nullptr;
    if (!cached) {
        std::lock_guard<std::mutex> lock(mutex_);
        shards_.push_back(std::make_unique<Shard>());
        shards_.back()->cells.resize(cellCount_, 0);
        cached = shards_.back().get();
    }
    return *cached;
}

void
MetricsRegistry::add(MetricId id, std::uint64_t by)
{
    Shard &s = shardFor();
    if (id >= s.cells.size()) {
        // A metric registered after this shard was created: catch the
        // cell array up (rare, cold; owner thread resizes its own
        // shard under the lock so snapshot() never races the move).
        std::lock_guard<std::mutex> lock(mutex_);
        s.cells.resize(cellCount_, 0);
    }
    s.cells[id] += by;
}

void
MetricsRegistry::set(MetricId id, std::int64_t v)
{
    Shard &s = shardFor();
    if (id >= s.cells.size()) {
        std::lock_guard<std::mutex> lock(mutex_);
        s.cells.resize(cellCount_, 0);
    }
    s.cells[id] = static_cast<std::uint64_t>(v);
}

void
MetricsRegistry::observe(const HistogramHandle &h, double v)
{
    Shard &s = shardFor();
    const std::size_t last = h.id + h.buckets + 1;
    if (last >= s.cells.size()) {
        std::lock_guard<std::mutex> lock(mutex_);
        s.cells.resize(cellCount_, 0);
    }
    std::size_t cell = 0; // underflow
    if (v >= h.lo) {
        const double idx = (v - h.lo) / h.width;
        cell = idx >= h.buckets
                   ? h.buckets + 1 // overflow
                   : static_cast<std::size_t>(idx) + 1;
    }
    ++s.cells[h.id + cell];
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Merge by summation: commutative, so the totals are independent
    // of thread count and scheduling order.
    std::vector<std::uint64_t> merged(cellCount_, 0);
    for (const auto &shard : shards_) {
        for (std::size_t i = 0; i < shard->cells.size(); ++i)
            merged[i] += shard->cells[i];
    }

    MetricsSnapshot snap;
    snap.metrics.reserve(metrics_.size());
    for (const Registration &r : metrics_) {
        MetricValue v;
        v.name = r.name;
        v.kind = r.kind;
        if (r.kind == MetricKind::Histogram) {
            v.lo = r.lo;
            v.width = r.width;
            v.underflow = merged[r.id];
            v.buckets.assign(merged.begin() + r.id + 1,
                             merged.begin() + r.id + r.cells - 1);
            v.overflow = merged[r.id + r.cells - 1];
        } else {
            // Gauges stored their int64 bit pattern; counters are
            // plain sums.  Both merge by 64-bit addition.
            v.value = static_cast<std::int64_t>(merged[r.id]);
        }
        snap.metrics.push_back(std::move(v));
    }
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &shard : shards_)
        std::fill(shard->cells.begin(), shard->cells.end(), 0);
}

std::size_t
MetricsRegistry::numMetrics() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return metrics_.size();
}

} // namespace sharch::obs
