/**
 * @file
 * Umbrella header of the obs telemetry subsystem.
 *
 * obs gives every layer of the simulator a common way to answer "what
 * actually happened in that run?" without printf archaeology:
 *
 *  - a metrics registry (obs/metrics.hh): named counters, gauges, and
 *    fixed-bucket histograms on contention-free per-thread shards;
 *  - a timeline tracer (obs/trace.hh): bounded per-thread ring buffers
 *    of spans, exported as Chrome trace-event JSON for chrome://tracing
 *    or Perfetto.
 *
 * Gating contract (the reason the PR 4 sim-speed gate keeps passing):
 *
 *  - Compile time: every instrumentation point in a hot layer lives in
 *    an `#if SHARCH_OBS` block.  The macro is 0 unless the build is
 *    configured with -DSHARCH_OBS=ON, so the default Release build
 *    carries no instrumentation at all -- not even a branch.
 *  - Run time: in an obs build the points additionally check
 *    obs::enabled() (one relaxed atomic load) so an instrumented
 *    binary still runs clean unless a --trace-out/--metrics flag (or
 *    library caller) turned collection on.
 *
 * The obs *library* (registry, tracer, exporters) is always compiled,
 * so CLIs can link the flag plumbing unconditionally and unit tests
 * run in every configuration; only the hot-path call sites are gated.
 */

#ifndef SHARCH_OBS_OBS_HH
#define SHARCH_OBS_OBS_HH

#include <atomic>
#include <cstdint>

#include "obs/metrics.hh"
#include "obs/trace.hh"

// Instrumentation points are compiled in only when the build sets
// SHARCH_OBS=1 (cmake -DSHARCH_OBS=ON); default to "compiled out".
#ifndef SHARCH_OBS
#define SHARCH_OBS 0
#endif

namespace sharch::obs {

/**
 * Chrome-trace "process" ids, one per instrumented layer.  Each pid is
 * its own track group *and* its own time domain -- spans within one
 * pid share a clock, spans across pids do not (the exporter names each
 * process with its domain so traces read honestly).
 */
inline constexpr std::uint32_t kPidPipeline = 1; //!< VCore cycles
inline constexpr std::uint32_t kPidCache = 2;    //!< VCore cycles
inline constexpr std::uint32_t kPidNoc = 3;      //!< VCore cycles
inline constexpr std::uint32_t kPidFabric = 4;   //!< decision sequence
inline constexpr std::uint32_t kPidMarket = 5;   //!< auction rounds
inline constexpr std::uint32_t kPidExec = 6;     //!< wall-clock us

namespace detail {
extern std::atomic<bool> enabled_;
} // namespace detail

/** Is collection on?  One relaxed load; safe from any thread. */
inline bool
enabled()
{
    return detail::enabled_.load(std::memory_order_relaxed);
}

/**
 * Turn collection on or off.  Enabling also names the standard
 * per-layer trace processes (pipeline/cache/noc/fabric/market/exec)
 * so exported traces are labelled without any hot-path work.
 */
void setEnabled(bool on);

/** True when the instrumentation points were compiled in. */
constexpr bool
compiledIn()
{
    return SHARCH_OBS != 0;
}

/**
 * Microseconds since the process-wide obs epoch (first call).  The
 * wall-clock time domain of kPidExec; everything else uses simulated
 * cycles or decision counters.
 */
std::uint64_t nowMicros();

} // namespace sharch::obs

#endif // SHARCH_OBS_OBS_HH
