/**
 * @file
 * Command-line options for the redesigned ssim run API.
 *
 * The historical CLI was purely positional
 * (`ssim <benchmark> [config.xml] [instructions]`); this parser keeps
 * that form working while adding named flags:
 *
 *   --config FILE       XML configuration (positional #2 equivalent)
 *   --instructions N    trace length per thread
 *   --slices LIST       Slice counts, e.g. `4`, `1,2,4,8`, or `1-8`
 *   --banks LIST        64 KB L2 bank counts, e.g. `0,2,128`
 *   --seed N            base seed
 *   --threads N         sweep worker threads (default SHARCH_THREADS,
 *                       else hardware concurrency)
 *   --inject-faults S   fault-injection spec (see fault/fault_model.hh)
 *   --fabric WxH        chip geometry for fault replay (default 8x8)
 *   --json              machine-readable output
 *   --trace-out FILE    write a Chrome trace-event JSON timeline
 *                       (needs a -DSHARCH_OBS=ON build to be non-empty)
 *   --metrics           print telemetry counters to stderr at exit
 *   --dump-config       print the default XML config and exit
 *   --list              list benchmark profiles and exit
 *
 * `--slices`/`--banks` override the XML config, and giving either a
 * list turns the run into a sweep over the cross product -- no config
 * file needed for quick sweeps.  Parsing never throws and never
 * exits: malformed input comes back as RunOptions::error so the
 * caller can print usage (and tests can assert on it).  Out-of-range
 * values (Slice counts outside Equation 3's 1..8, bank counts above
 * 128, reversed `lo-hi` ranges) are caught here, at parse time, so
 * every consumer of RunOptions inherits the same validation.
 */

#ifndef SHARCH_EXEC_RUN_OPTIONS_HH
#define SHARCH_EXEC_RUN_OPTIONS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "config/sim_config.hh"
#include "trace/inst_source.hh"

namespace sharch::exec {

/**
 * The values of the flags every sharch binary shares.  ssim,
 * sharch-bench, and sharch-serve all parse --instructions, --seed,
 * --threads, and --trace-mode through one option-spec table
 * (handleSharedFlag), so the three CLIs accept identical spellings
 * with identical validation and identical error messages -- they
 * cannot drift apart flag by flag.
 */
struct SharedFlagValues
{
    std::size_t instructions = 0;      //!< 0: caller's default
    bool instructionsSet = false;
    std::uint64_t seed = 0;
    bool seedSet = false;
    unsigned threads = 0;              //!< 0: resolveThreadCount()
    TraceMode traceMode = TraceMode::Stream;
    bool traceModeSet = false;
    SampleSchedule sample;             //!< --sample U:W:M schedule
    bool sampleSet = false;
};

/**
 * If argv[*i] names a shared flag, consume it (and its value) into
 * @p out and return true; *i is advanced past the value.  A missing
 * or malformed value also returns true, with the canonical message
 * in @p error.  Unrelated arguments return false untouched.
 */
bool handleSharedFlag(int argc, const char *const *argv, int *i,
                      SharedFlagValues *out, std::string *error);

/** One usage line documenting the shared flags (kept in lockstep). */
std::string sharedFlagUsage();

/** Parsed ssim invocation. */
struct RunOptions
{
    std::string benchmark;
    std::string configPath;            //!< empty: built-in defaults
    std::size_t instructions = 100000; //!< per thread
    std::vector<unsigned> slices;      //!< empty: take from config
    std::vector<unsigned> banks;       //!< empty: take from config
    std::uint64_t seed = 0;
    bool seedSet = false;              //!< --seed given (else config's)
    unsigned threads = 0;              //!< 0: resolveThreadCount()
    TraceMode traceMode = TraceMode::Stream; //!< --trace-mode
    SampleSchedule sample;             //!< --sample schedule
    bool sampleSet = false;            //!< --sample given (else full)
    std::string faultSpec;             //!< empty: no fault injection
    int fabricWidth = 8;               //!< --fabric geometry
    int fabricHeight = 8;
    std::string traceOut;              //!< empty: no timeline export
    bool metrics = false;              //!< print counters to stderr
    bool json = false;
    bool dumpConfig = false;
    bool listBenchmarks = false;

    /**
     * Nonempty when the legacy positional `[config.xml]
     * [instructions]` form was used: a one-line warning naming the
     * named-flag equivalents.  The caller prints it to stderr; the
     * run still proceeds.
     */
    std::string deprecationWarning;

    std::string error; //!< nonempty: parse failed, show usage

    bool ok() const { return error.empty(); }
    /** More than one (banks, slices) point requested? */
    bool isSweep() const
    {
        return slices.size() > 1 || banks.size() > 1;
    }
};

/**
 * Parse @p argv (never throws; malformed numbers set .error).
 * Accepts flags in any position, mixed with the legacy positional
 * `<benchmark> [config.xml] [instructions]` form.
 */
RunOptions parseRunOptions(int argc, const char *const *argv);

/** Usage text for the redesigned CLI. */
std::string runUsage(const std::string &prog);

/**
 * Parsed sharch-bench invocation (the study-engine driver that
 * replaced the per-figure harness binaries):
 *
 *   --list              list registered studies and exit
 *   --run GLOB          run studies matching GLOB (repeatable; a
 *                       comma-separated value adds several patterns;
 *                       bare positionals are also patterns)
 *   --format FMT        text | csv | json (default text)
 *   --out DIR           write one report file per study into DIR
 *                       instead of stdout
 *   --instructions N    trace length per thread
 *                       (default SHARCH_BENCH_INSTRUCTIONS or 40000)
 *   --seed N            base generation seed
 *                       (default SHARCH_BENCH_SEED or 1)
 *   --threads N         sweep worker threads (default SHARCH_THREADS,
 *                       else hardware concurrency)
 *   --metrics-out DIR   write one <study>.metrics.json per study
 *   --trace-out FILE    write a Chrome trace-event JSON timeline
 *
 * Same contract as parseRunOptions: never throws, never exits;
 * malformed input comes back as .error.
 */
struct BenchOptions
{
    bool list = false;
    std::vector<std::string> patterns; //!< study-name globs to run
    std::string format = "text";
    std::string outDir;                //!< empty: stdout
    std::size_t instructions = 0;      //!< 0: environment default
    std::uint64_t seed = 0;
    bool seedSet = false;              //!< --seed given
    unsigned threads = 0;              //!< 0: resolveThreadCount()
    TraceMode traceMode = TraceMode::Stream; //!< --trace-mode
    SampleSchedule sample;             //!< --sample schedule
    bool sampleSet = false;            //!< --sample given (else full)
    std::string metricsOut;            //!< empty: no metrics files
    std::string traceOut;              //!< empty: no timeline export

    std::string error; //!< nonempty: parse failed, show usage

    bool ok() const { return error.empty(); }
};

/** Parse a sharch-bench command line (never throws). */
BenchOptions parseBenchOptions(int argc, const char *const *argv);

/** Usage text for sharch-bench. */
std::string benchUsage(const std::string &prog);

/**
 * Parsed sharch-serve invocation (the allocation-engine daemon that
 * answers newline-delimited JSON requests on stdin):
 *
 *   --instructions N    trace length behind the P(c, s) surface the
 *                       market bids against (default 2000: cheap,
 *                       deterministic)
 *   --seed N            base generation seed (default 1)
 *   --threads N         sweep worker threads for surface fills
 *   --fabric WxH        chip geometry (default 8x8)
 *   --restore FILE      start from a sharch-state-v1 checkpoint
 *   --journal DIR       write-ahead journal: recover DIR on start,
 *                       log every event before applying it
 *   --journal-fsync N   fsync cadence (0 never, 1 every record
 *                       [default], N every N records)
 *   --journal-rotate N  records per segment before a snapshot
 *                       anchors a new generation (default 1024)
 *
 * Shares the --instructions/--seed/--threads spec table with ssim
 * and sharch-bench: same spellings, same errors.
 */
struct ServeOptions
{
    std::size_t instructions = 2000;
    std::uint64_t seed = 1;
    unsigned threads = 0;              //!< 0: resolveThreadCount()
    TraceMode traceMode = TraceMode::Stream; //!< --trace-mode
    SampleSchedule sample;             //!< --sample schedule
    bool sampleSet = false;            //!< --sample given (else full)
    int fabricWidth = 8;
    int fabricHeight = 8;
    std::uint64_t fleetChips = 0;      //!< 0: single-chip engine
    std::string restorePath;           //!< empty: fresh engine
    std::string journalDir;            //!< empty: no journal
    unsigned journalFsync = 1;         //!< 0 never, N every N records
    std::uint64_t journalRotate = 1024; //!< records per segment

    std::string error; //!< nonempty: parse failed, show usage

    bool ok() const { return error.empty(); }
};

/** Parse a sharch-serve command line (never throws). */
ServeOptions parseServeOptions(int argc, const char *const *argv);

/** Usage text for sharch-serve. */
std::string serveUsage(const std::string &prog);

/** Strict base-10 parse of a full string; false on any garbage. */
bool parseU64(const std::string &text, std::uint64_t *out);

/**
 * Parse a comma-separated list of non-negative counts ("0,2,128").
 * A field may be an inclusive range "lo-hi" ("1-8" is 1,2,...,8);
 * a reversed range (lo > hi) is rejected rather than silently empty.
 * False on empty fields or garbage; result replaces @p out.
 */
bool parseCountList(const std::string &text,
                    std::vector<unsigned> *out);

} // namespace sharch::exec

#endif // SHARCH_EXEC_RUN_OPTIONS_HH
