#include "exec/run_options.hh"

#include <cerrno>
#include <cstdlib>
#include <limits>

#include "config/sim_config.hh"

namespace sharch::exec {

bool
parseU64(const std::string &text, std::uint64_t *out)
{
    if (text.empty() || text[0] == '-')
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end == text.c_str() || *end != '\0')
        return false;
    *out = v;
    return true;
}

bool
parseCountList(const std::string &text, std::vector<unsigned> *out)
{
    std::vector<unsigned> parsed;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t comma = text.find(',', pos);
        const std::string field =
            text.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        // A field is either one count or an inclusive "lo-hi" range
        // (the dash cannot be first: parseU64 rejects signs anyway).
        const std::size_t dash = field.find('-', 1);
        std::uint64_t lo = 0, hi = 0;
        if (dash != std::string::npos) {
            if (!parseU64(field.substr(0, dash), &lo) ||
                !parseU64(field.substr(dash + 1), &hi)) {
                return false;
            }
            if (lo > hi)
                return false; // reversed range, not an empty sweep
        } else {
            if (!parseU64(field, &lo))
                return false;
            hi = lo;
        }
        if (hi > std::numeric_limits<unsigned>::max() ||
            hi - lo >= 4096) {
            return false;
        }
        for (std::uint64_t v = lo; v <= hi; ++v)
            parsed.push_back(static_cast<unsigned>(v));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (parsed.empty())
        return false;
    *out = std::move(parsed);
    return true;
}

namespace {

/**
 * The option-spec table behind handleSharedFlag().  One row per flag
 * every sharch binary accepts: the spelling, the validator, and the
 * suffix of the canonical "bad --flag 'value'" message.  Adding a
 * row here adds the flag to ssim, sharch-bench, and sharch-serve at
 * once -- the point of the table is that they cannot drift apart.
 */
struct SharedSpec
{
    const char *name;
    const char *errorSuffix;
    bool (*apply)(const char *val, SharedFlagValues *out);
};

const SharedSpec kSharedSpecs[] = {
    {"--instructions", "",
     [](const char *val, SharedFlagValues *out) {
         std::uint64_t v = 0;
         if (!parseU64(val, &v) || v == 0)
             return false;
         out->instructions = static_cast<std::size_t>(v);
         out->instructionsSet = true;
         return true;
     }},
    {"--seed", "",
     [](const char *val, SharedFlagValues *out) {
         if (!parseU64(val, &out->seed))
             return false;
         out->seedSet = true;
         return true;
     }},
    {"--threads", " (want 1..4096)",
     [](const char *val, SharedFlagValues *out) {
         std::uint64_t v = 0;
         if (!parseU64(val, &v) || v == 0 || v > 4096)
             return false;
         out->threads = static_cast<unsigned>(v);
         return true;
     }},
    {"--trace-mode", " (want stream or materialize)",
     [](const char *val, SharedFlagValues *out) {
         if (!parseTraceMode(val, out->traceMode))
             return false;
         out->traceModeSet = true;
         return true;
     }},
    {"--sample", " (want U:W:M instruction counts, measure >= 1)",
     [](const char *val, SharedFlagValues *out) {
         if (!parseSampleSchedule(val, &out->sample))
             return false;
         out->sampleSet = true;
         return true;
     }},
};

} // namespace

bool
handleSharedFlag(int argc, const char *const *argv, int *i,
                 SharedFlagValues *out, std::string *error)
{
    const std::string arg = argv[*i];
    for (const SharedSpec &spec : kSharedSpecs) {
        if (arg != spec.name)
            continue;
        if (*i + 1 >= argc) {
            *error = arg + " requires a value";
            return true;
        }
        const char *val = argv[++*i];
        if (!spec.apply(val, out))
            *error = "bad " + arg + " '" + val + "'" +
                     spec.errorSuffix;
        return true;
    }
    return false;
}

std::string
sharedFlagUsage()
{
    return "  --instructions N (trace length), --seed N, --threads N,\n"
           "  --trace-mode stream|materialize (default stream: fuse "
           "generation\n"
           "  into the sim loop; results are bit-identical either "
           "way), and\n"
           "  --sample U:W:M (SMARTS sampling: fast-forward U, warm "
           "up W, measure M\n"
           "  instructions per period; default " +
           sampleScheduleName(kDefaultSampleSchedule) +
           " when U:W:M is omitted... give\n"
           "  the flag to enable) are shared by every sharch binary: "
           "same\n"
           "  spellings, same validation, same errors.\n";
}

std::string
runUsage(const std::string &prog)
{
    return "usage: " + prog +
           " <benchmark> [--config FILE] [--instructions N]\n"
           "            [--slices LIST] [--banks LIST] [--seed N]\n"
           "            [--threads N] [--trace-mode stream|materialize]\n"
           "            [--sample U:W:M] [--json] [--trace-out FILE]\n"
           "            [--metrics]\n"
           "       " + prog +
           " --inject-faults SPEC [--fabric WxH] [--slices LIST]\n"
           "            [--banks LIST] [--json]\n"
           "       " + prog + " --dump-config | --list\n"
           "\n"
           "  --slices/--banks take comma-separated lists (e.g. "
           "1,2,4,8 or 1-8);\n"
           "  giving a list sweeps the cross product in parallel "
           "(--threads workers,\n"
           "  default SHARCH_THREADS or hardware concurrency).\n"
           "  --inject-faults replays a fault schedule against the "
           "fabric allocator\n"
           "  (spec: seed=N,mtbf=N,count=N[,mttr=N] or fixed "
           "slice:R:C/bank:R:C/link:R:C\n"
           "  events) and reports each VCore's degradation.\n"
           "  --trace-out writes a Chrome trace-event JSON timeline "
           "(load in Perfetto);\n"
           "  --metrics prints telemetry counters to stderr.  Both "
           "need a build with\n"
           "  -DSHARCH_OBS=ON to see any data.\n";
}

namespace {

/** Fetch the value of a --flag; sets error when it is missing. */
template <typename Options>
const char *
flagValue(int argc, const char *const *argv, int *i, Options *opts)
{
    if (*i + 1 >= argc) {
        opts->error = std::string(argv[*i]) + " requires a value";
        return nullptr;
    }
    return argv[++*i];
}

} // namespace

RunOptions
parseRunOptions(int argc, const char *const *argv)
{
    RunOptions opts;
    SharedFlagValues shared;
    int positional = 0;
    for (int i = 1; i < argc && opts.ok(); ++i) {
        const std::string arg = argv[i];
        std::uint64_t v = 0;
        if (handleSharedFlag(argc, argv, &i, &shared,
                             &opts.error)) {
            continue;
        }
        if (arg == "--dump-config") {
            opts.dumpConfig = true;
        } else if (arg == "--list") {
            opts.listBenchmarks = true;
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg == "--config") {
            if (const char *val = flagValue(argc, argv, &i, &opts))
                opts.configPath = val;
        } else if (arg == "--slices") {
            const char *val = flagValue(argc, argv, &i, &opts);
            if (!val)
                continue;
            if (!parseCountList(val, &opts.slices)) {
                opts.error = "bad --slices '" + std::string(val) + "'";
                continue;
            }
            for (unsigned s : opts.slices) {
                if (s < 1 || s > SimConfig::kMaxSlices) {
                    opts.error =
                        "--slices values must be in 1.." +
                        std::to_string(SimConfig::kMaxSlices) +
                        " (got " + std::to_string(s) + ")";
                    break;
                }
            }
        } else if (arg == "--banks") {
            const char *val = flagValue(argc, argv, &i, &opts);
            if (!val)
                continue;
            if (!parseCountList(val, &opts.banks)) {
                opts.error = "bad --banks '" + std::string(val) + "'";
                continue;
            }
            for (unsigned b : opts.banks) {
                if (b > SimConfig::kMaxL2Banks) {
                    opts.error =
                        "--banks values must be in 0.." +
                        std::to_string(SimConfig::kMaxL2Banks) +
                        " (got " + std::to_string(b) + ")";
                    break;
                }
            }
        } else if (arg == "--inject-faults") {
            if (const char *val = flagValue(argc, argv, &i, &opts))
                opts.faultSpec = val;
        } else if (arg == "--trace-out") {
            if (const char *val = flagValue(argc, argv, &i, &opts))
                opts.traceOut = val;
        } else if (arg == "--metrics") {
            opts.metrics = true;
        } else if (arg == "--fabric") {
            const char *val = flagValue(argc, argv, &i, &opts);
            if (!val)
                continue;
            const std::string spec = val;
            const std::size_t x = spec.find('x');
            std::uint64_t w = 0, h = 0;
            if (x == std::string::npos ||
                !parseU64(spec.substr(0, x), &w) ||
                !parseU64(spec.substr(x + 1), &h) || w < 1 ||
                h < 2 || w > 1024 || h > 1024) {
                opts.error = "bad --fabric '" + spec +
                             "' (want WxH, e.g. 8x8)";
            } else {
                opts.fabricWidth = static_cast<int>(w);
                opts.fabricHeight = static_cast<int>(h);
            }
        } else if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
            opts.error = "unknown flag '" + arg + "'";
        } else {
            // Legacy positional form: benchmark, config, instructions.
            // Positions past the benchmark still parse but are
            // deprecated in favor of the named flags.
            switch (positional++) {
              case 0:
                opts.benchmark = arg;
                break;
              case 1:
                opts.configPath = arg;
                opts.deprecationWarning =
                    "warning: positional config/instruction "
                    "arguments are deprecated; use --config FILE "
                    "and --instructions N";
                break;
              case 2:
                if (!parseU64(arg, &v) || v == 0)
                    opts.error =
                        "bad instruction count '" + arg + "'";
                else
                    opts.instructions = static_cast<std::size_t>(v);
                break;
              default:
                opts.error = "unexpected argument '" + arg + "'";
            }
        }
    }
    if (shared.instructionsSet)
        opts.instructions = shared.instructions;
    if (shared.seedSet) {
        opts.seed = shared.seed;
        opts.seedSet = true;
    }
    if (shared.threads != 0)
        opts.threads = shared.threads;
    if (shared.traceModeSet)
        opts.traceMode = shared.traceMode;
    if (shared.sampleSet) {
        opts.sample = shared.sample;
        opts.sampleSet = true;
    }
    // Fault replay (--inject-faults) is a degradation study of the
    // fabric allocator itself; a benchmark is optional there.
    if (opts.ok() && !opts.dumpConfig && !opts.listBenchmarks &&
        opts.faultSpec.empty() && opts.benchmark.empty()) {
        opts.error = "missing benchmark name";
    }
    return opts;
}

std::string
benchUsage(const std::string &prog)
{
    return "usage: " + prog + " --list\n"
           "       " + prog +
           " --run GLOB [--run GLOB ...] [--format text|csv|json]\n"
           "            [--out DIR] [--instructions N] [--seed N]\n"
           "            [--threads N] [--trace-mode stream|materialize]\n"
           "            [--sample U:W:M] [--metrics-out DIR]\n"
           "            [--trace-out FILE]\n"
           "\n"
           "  Runs the registered paper studies (figures, tables,\n"
           "  ablations).  --run takes shell-style globs over study\n"
           "  ids ('fig*', 'tab?', 'fig13'); several patterns union.\n"
           "  The union of the selected studies' grids is simulated\n"
           "  in one parallel batch before any study prints, and the\n"
           "  surface is shared through " +
           std::string("sharch_perf_cache.csv") + " in the\n"
           "  working directory.  With --out, one <study>.<ext> file\n"
           "  is written per study; JSON/CSV reports are bit-identical\n"
           "  across --threads values and --trace-mode settings.\n"
           "  --metrics-out writes one <study>.metrics.json of telemetry\n"
           "  counters per study; --trace-out writes a Chrome trace-event\n"
           "  timeline for the whole invocation.  Both need a build with\n"
           "  -DSHARCH_OBS=ON to see any data.\n";
}

BenchOptions
parseBenchOptions(int argc, const char *const *argv)
{
    BenchOptions opts;
    SharedFlagValues shared;
    for (int i = 1; i < argc && opts.ok(); ++i) {
        const std::string arg = argv[i];
        if (handleSharedFlag(argc, argv, &i, &shared,
                             &opts.error)) {
            continue;
        }
        if (arg == "--list") {
            opts.list = true;
        } else if (arg == "--run") {
            const char *val = flagValue(argc, argv, &i, &opts);
            if (!val)
                continue;
            // A comma-separated value contributes several patterns.
            const std::string list = val;
            std::size_t pos = 0;
            while (pos <= list.size()) {
                const std::size_t comma = list.find(',', pos);
                const std::string pat =
                    list.substr(pos, comma == std::string::npos
                                         ? std::string::npos
                                         : comma - pos);
                if (pat.empty()) {
                    opts.error = "empty pattern in --run '" + list +
                                 "'";
                    break;
                }
                opts.patterns.push_back(pat);
                if (comma == std::string::npos)
                    break;
                pos = comma + 1;
            }
        } else if (arg == "--format") {
            const char *val = flagValue(argc, argv, &i, &opts);
            if (!val)
                continue;
            const std::string fmt = val;
            if (fmt != "text" && fmt != "csv" && fmt != "json")
                opts.error = "bad --format '" + fmt +
                             "' (want text, csv, or json)";
            else
                opts.format = fmt;
        } else if (arg == "--out") {
            if (const char *val = flagValue(argc, argv, &i, &opts))
                opts.outDir = val;
        } else if (arg == "--metrics-out") {
            if (const char *val = flagValue(argc, argv, &i, &opts))
                opts.metricsOut = val;
        } else if (arg == "--trace-out") {
            if (const char *val = flagValue(argc, argv, &i, &opts))
                opts.traceOut = val;
        } else if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
            opts.error = "unknown flag '" + arg + "'";
        } else {
            // Bare positionals are run patterns: `sharch-bench fig13`.
            opts.patterns.push_back(arg);
        }
    }
    if (shared.instructionsSet)
        opts.instructions = shared.instructions;
    if (shared.seedSet) {
        opts.seed = shared.seed;
        opts.seedSet = true;
    }
    if (shared.threads != 0)
        opts.threads = shared.threads;
    if (shared.traceModeSet)
        opts.traceMode = shared.traceMode;
    if (shared.sampleSet) {
        opts.sample = shared.sample;
        opts.sampleSet = true;
    }
    if (opts.ok() && !opts.list && opts.patterns.empty())
        opts.error = "nothing to do: give --list or --run GLOB";
    return opts;
}

std::string
serveUsage(const std::string &prog)
{
    return "usage: " + prog +
           " [--instructions N] [--seed N] [--threads N]\n"
           "            [--trace-mode stream|materialize] "
           "[--sample U:W:M]\n"
           "            [--fabric WxH] [--fleet N] [--restore FILE] "
           "[--journal DIR]\n"
           "            [--journal-fsync N] [--journal-rotate N]\n"
           "\n"
           "  Runs the allocation engine as a daemon: one JSON "
           "request per stdin\n"
           "  line, one JSON response per stdout line (ops: "
           "allocate, release,\n"
           "  reshape, price, snapshot, restore, stats, report; "
           "see DESIGN.md\n"
           "  sections 8-9).  --restore starts from a "
           "sharch-state-v1 checkpoint\n"
           "  file; --fabric sets the chip geometry of a fresh "
           "engine; --journal\n"
           "  recovers DIR (write-ahead log + snapshots) and logs "
           "every event\n"
           "  before applying it, so a kill at any point is "
           "recoverable.\n" +
           sharedFlagUsage();
}

ServeOptions
parseServeOptions(int argc, const char *const *argv)
{
    ServeOptions opts;
    SharedFlagValues shared;
    for (int i = 1; i < argc && opts.ok(); ++i) {
        const std::string arg = argv[i];
        if (handleSharedFlag(argc, argv, &i, &shared,
                             &opts.error)) {
            continue;
        }
        if (arg == "--restore") {
            if (const char *val = flagValue(argc, argv, &i, &opts))
                opts.restorePath = val;
        } else if (arg == "--journal") {
            if (const char *val = flagValue(argc, argv, &i, &opts))
                opts.journalDir = val;
        } else if (arg == "--journal-fsync") {
            const char *val = flagValue(argc, argv, &i, &opts);
            if (!val)
                continue;
            std::uint64_t n = 0;
            if (!parseU64(val, &n) || n > 1u << 20) {
                opts.error = std::string("bad --journal-fsync '") +
                             val + "' (want a record count; 0 "
                             "disables fsync)";
            } else {
                opts.journalFsync = static_cast<unsigned>(n);
            }
        } else if (arg == "--journal-rotate") {
            const char *val = flagValue(argc, argv, &i, &opts);
            if (!val)
                continue;
            std::uint64_t n = 0;
            if (!parseU64(val, &n) || n == 0) {
                opts.error = std::string("bad --journal-rotate '") +
                             val + "' (want a positive record "
                             "count)";
            } else {
                opts.journalRotate = n;
            }
        } else if (arg == "--fleet") {
            const char *val = flagValue(argc, argv, &i, &opts);
            if (!val)
                continue;
            std::uint64_t n = 0;
            if (!parseU64(val, &n) || n == 0 || n > 1u << 20) {
                opts.error = std::string("bad --fleet '") + val +
                             "' (want a chip count in [1, 2^20])";
            } else {
                opts.fleetChips = n;
            }
        } else if (arg == "--fabric") {
            const char *val = flagValue(argc, argv, &i, &opts);
            if (!val)
                continue;
            const std::string spec = val;
            const std::size_t x = spec.find('x');
            std::uint64_t w = 0, h = 0;
            if (x == std::string::npos ||
                !parseU64(spec.substr(0, x), &w) ||
                !parseU64(spec.substr(x + 1), &h) || w < 1 ||
                h < 2 || w > 1024 || h > 1024) {
                opts.error = "bad --fabric '" + spec +
                             "' (want WxH, e.g. 8x8)";
            } else {
                opts.fabricWidth = static_cast<int>(w);
                opts.fabricHeight = static_cast<int>(h);
            }
        } else {
            opts.error = "unknown argument '" + arg + "'";
        }
    }
    if (shared.instructionsSet)
        opts.instructions = shared.instructions;
    if (shared.seedSet)
        opts.seed = shared.seed;
    if (shared.threads != 0)
        opts.threads = shared.threads;
    if (shared.traceModeSet)
        opts.traceMode = shared.traceMode;
    if (shared.sampleSet) {
        opts.sample = shared.sample;
        opts.sampleSet = true;
    }
    return opts;
}

} // namespace sharch::exec
