#include "exec/sweep.hh"

#include <cstdlib>
#include <map>
#include <thread>
#include <tuple>

#include "common/logging.hh"
#include "exec/thread_pool.hh"
#include "obs/obs.hh"

namespace sharch::exec {

#if SHARCH_OBS
namespace {

/** Registered once per process; per-thread shards keep bumps cheap. */
struct ExecMetrics
{
    obs::MetricId jobs =
        obs::MetricsRegistry::instance().addCounter("exec.jobs");
    obs::MetricId retries =
        obs::MetricsRegistry::instance().addCounter("exec.retries");
    obs::MetricId failures =
        obs::MetricsRegistry::instance().addCounter("exec.failures");
};

ExecMetrics &
execMetrics()
{
    static ExecMetrics m;
    return m;
}

} // namespace
#endif

SweepPoint
sweepPoint(const std::string &benchmark, unsigned banks,
           unsigned slices)
{
    return SweepPoint{profileFor(benchmark), banks, slices};
}

std::vector<unsigned>
sliceRange(unsigned max_slices)
{
    SHARCH_ASSERT(max_slices >= 1, "grid needs at least one Slice");
    std::vector<unsigned> slices(max_slices);
    for (unsigned s = 1; s <= max_slices; ++s)
        slices[s - 1] = s;
    return slices;
}

std::vector<SweepPoint>
sweepGrid(const std::vector<std::string> &benchmarks,
          const std::vector<unsigned> &banks,
          const std::vector<unsigned> &slices)
{
    std::vector<BenchmarkProfile> profiles;
    profiles.reserve(benchmarks.size());
    for (const std::string &name : benchmarks)
        profiles.push_back(profileFor(name));
    return sweepGrid(profiles, banks, slices);
}

std::vector<SweepPoint>
sweepGrid(const std::vector<BenchmarkProfile> &profiles,
          const std::vector<unsigned> &banks,
          const std::vector<unsigned> &slices)
{
    std::vector<SweepPoint> grid;
    grid.reserve(profiles.size() * banks.size() * slices.size());
    for (const BenchmarkProfile &p : profiles)
        for (unsigned b : banks)
            for (unsigned s : slices)
                grid.push_back(SweepPoint{p, b, s});
    return grid;
}

namespace {

/** splitmix64 finalizer: full-avalanche 64-bit mix. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** FNV-1a over the benchmark name: stable across platforms. */
std::uint64_t
hashName(const std::string &name)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : name) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

std::uint64_t
deriveJobSeed(std::uint64_t base_seed, const std::string &benchmark,
              unsigned banks, unsigned slices)
{
    std::uint64_t h = mix64(base_seed);
    h = mix64(h ^ hashName(benchmark));
    h = mix64(h ^ (std::uint64_t(banks) << 32 | slices));
    // Never hand out 0: some generators degenerate on an all-zero
    // state.
    return h ? h : 0x5eed5eedULL;
}

std::uint64_t
deriveRetrySeed(std::uint64_t base_seed, const std::string &benchmark,
                unsigned banks, unsigned slices, unsigned attempt)
{
    const std::uint64_t h =
        deriveJobSeed(base_seed, benchmark, banks, slices);
    if (attempt == 0)
        return h; // first attempt == the historical job seed
    const std::uint64_t r = mix64(h ^ mix64(attempt));
    return r ? r : 0x5eed5eedULL;
}

unsigned
resolveThreadCount(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("SHARCH_THREADS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
        SHARCH_WARN("ignoring malformed SHARCH_THREADS='", env, "'");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

SweepRunner::SweepRunner(unsigned threads)
    : threads_(resolveThreadCount(threads))
{
}

std::vector<PointStatus>
SweepRunner::runDetailed(const std::vector<SweepPoint> &points,
                         const RetryingEvaluator &eval,
                         unsigned max_attempts,
                         std::vector<std::exception_ptr> *errors) const
{
    SHARCH_ASSERT(max_attempts >= 1, "a point needs >= 1 attempt");
    std::vector<PointStatus> status(points.size());
    if (errors)
        errors->assign(points.size(), nullptr);
    if (points.empty())
        return status;

    // Evaluate each distinct configuration once; `unique` maps a
    // config to the first index holding it.
    std::map<std::tuple<std::string, unsigned, unsigned>, std::size_t>
        unique;
    std::vector<std::size_t> canonical(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto key = std::make_tuple(points[i].profile.name,
                                         points[i].banks,
                                         points[i].slices);
        canonical[i] = unique.emplace(key, i).first->second;
    }

    {
        ThreadPool pool(threads_);
        for (const auto &[key, i] : unique) {
            (void)key;
            // Each job writes only its own slots, so no lock is
            // needed; the retry loop catches everything so a bad
            // point can never unwind a worker or starve the queue.
            pool.submit([&, i] {
                PointStatus &st = status[i];
#if SHARCH_OBS
                const std::uint64_t job_t0 = obs::nowMicros();
#endif
                for (unsigned attempt = 0; attempt < max_attempts;
                     ++attempt) {
                    ++st.attempts;
                    try {
                        st.value = eval(points[i], attempt);
                        st.ok = true;
                        st.error.clear();
                        break;
                    } catch (const std::exception &e) {
                        st.error = e.what();
                        if (errors)
                            (*errors)[i] = std::current_exception();
                    } catch (...) {
                        st.error = "unknown exception";
                        if (errors)
                            (*errors)[i] = std::current_exception();
                    }
                }
#if SHARCH_OBS
                if (obs::enabled()) {
                    auto &reg = obs::MetricsRegistry::instance();
                    auto &tracer = obs::Tracer::instance();
                    const ExecMetrics &m = execMetrics();
                    reg.add(m.jobs);
                    if (st.attempts > 1)
                        reg.add(m.retries, st.attempts - 1);
                    if (!st.ok)
                        reg.add(m.failures);
                    tracer.record(
                        {tracer.intern(points[i].profile.name),
                         "exec", job_t0, obs::nowMicros(),
                         obs::kPidExec,
                         tracer.threadTrackId(obs::kPidExec),
                         st.attempts, "attempts"});
                }
#endif
            });
        }
        pool.wait();
    }

    for (std::size_t i = 0; i < points.size(); ++i) {
        status[i] = status[canonical[i]];
        if (errors)
            (*errors)[i] = (*errors)[canonical[i]];
    }
    return status;
}

std::vector<PointStatus>
SweepRunner::runWithStatus(const std::vector<SweepPoint> &points,
                           const RetryingEvaluator &eval,
                           unsigned max_attempts) const
{
    return runDetailed(points, eval, max_attempts, nullptr);
}

std::vector<double>
SweepRunner::run(const std::vector<SweepPoint> &points,
                 const PointEvaluator &eval) const
{
    std::vector<std::exception_ptr> errors;
    const auto status = runDetailed(
        points,
        [&eval](const SweepPoint &p, unsigned) { return eval(p); },
        1, &errors);

    // Drain-then-throw: every point ran; surface the first failure by
    // *input position* so the choice is independent of thread count
    // and completion order.
    for (std::size_t i = 0; i < status.size(); ++i) {
        if (!status[i].ok) {
            SHARCH_WARN("sweep point ", points[i].profile.name, " b",
                        points[i].banks, " s", points[i].slices,
                        " failed: ", status[i].error);
            std::rethrow_exception(errors[i]);
        }
    }

    std::vector<double> results(points.size(), 0.0);
    for (std::size_t i = 0; i < points.size(); ++i)
        results[i] = status[i].value;
    return results;
}

} // namespace sharch::exec
