/**
 * @file
 * The parallel sweep engine: batches of configuration points
 * evaluated concurrently with a determinism guarantee.
 *
 * Every figure/table harness consumes the performance surface
 * P(c, s); a full grid is |benchmarks| x |l2BankGrid()| x 8 Slice
 * counts of independent VmSim runs.  SweepRunner fans a batch of
 * SweepPoint jobs across a fixed ThreadPool.
 *
 * Determinism contract: a job's result is a pure function of
 * (point, base seed, instruction count).  Each job derives its RNG
 * seed via deriveJobSeed() from the *identity* of the point -- never
 * from submission order, worker id, or wall clock -- so a sweep run
 * with N threads is bit-identical to the same sweep run with one.
 */

#ifndef SHARCH_EXEC_SWEEP_HH
#define SHARCH_EXEC_SWEEP_HH

#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "trace/profile.hh"

namespace sharch::exec {

/** One configuration-grid job: a workload on a (banks, slices) shape. */
struct SweepPoint
{
    BenchmarkProfile profile;
    unsigned banks = 0;  //!< 64 KB L2 banks attached to the VCore
    unsigned slices = 1; //!< Slices composing the VCore

    /** Memo identity (profiles with equal names are the same job). */
    bool sameConfigAs(const SweepPoint &o) const
    {
        return profile.name == o.profile.name && banks == o.banks &&
               slices == o.slices;
    }
};

/** Point by builtin benchmark name; fatal() when unknown. */
SweepPoint sweepPoint(const std::string &benchmark, unsigned banks,
                      unsigned slices);

/** One evaluated point of the performance surface. */
struct SweepResult
{
    std::string name;    //!< profile name of the point
    unsigned banks = 0;
    unsigned slices = 1;
    double ipc = 0.0;    //!< per-VCore committed IPC, P(c, s)
    bool fresh = false;  //!< simulated now (false: served from cache)
};

/** Slice counts 1..max (Equation 3's 1 <= s <= 8 by default). */
std::vector<unsigned> sliceRange(unsigned max_slices = 8);

/**
 * Cross product of benchmarks x banks x slices, in deterministic
 * row-major order (benchmark outermost).
 */
std::vector<SweepPoint> sweepGrid(
    const std::vector<std::string> &benchmarks,
    const std::vector<unsigned> &banks,
    const std::vector<unsigned> &slices);

/** Same grid over ad-hoc profiles (e.g. gcc phases). */
std::vector<SweepPoint> sweepGrid(
    const std::vector<BenchmarkProfile> &profiles,
    const std::vector<unsigned> &banks,
    const std::vector<unsigned> &slices);

/**
 * Per-job seed: a splitmix64-style mix of the base seed with the
 * point's identity (benchmark name, banks, slices).  Stable across
 * platforms and submission orders; distinct points get decorrelated
 * streams even for adjacent grid coordinates.
 */
std::uint64_t deriveJobSeed(std::uint64_t base_seed,
                            const std::string &benchmark,
                            unsigned banks, unsigned slices);

/**
 * Seed for retry @p attempt of a point.  Attempt 0 is exactly
 * deriveJobSeed() (a sweep that never retries is bit-identical to one
 * run through the retry machinery); each further attempt mixes the
 * attempt number in, so a flaky evaluator re-runs on a fresh,
 * deterministic stream rather than replaying the failing one.
 */
std::uint64_t deriveRetrySeed(std::uint64_t base_seed,
                              const std::string &benchmark,
                              unsigned banks, unsigned slices,
                              unsigned attempt);

/**
 * Worker count for sweeps: @p requested if nonzero, else the
 * SHARCH_THREADS environment variable, else
 * std::thread::hardware_concurrency() (at least 1).
 */
unsigned resolveThreadCount(unsigned requested = 0);

/** Evaluates one SweepPoint to its IPC; must be thread-safe. */
using PointEvaluator = std::function<double(const SweepPoint &)>;

/**
 * Evaluator that is retried on throw: @p attempt is 0 for the first
 * try, 1 for the first retry, and so on.  Pair it with
 * deriveRetrySeed() so every attempt runs a fresh deterministic
 * stream.  Must be thread-safe.
 */
using RetryingEvaluator =
    std::function<double(const SweepPoint &, unsigned attempt)>;

/** Outcome of one sweep point under runWithStatus(). */
struct PointStatus
{
    double value = 0.0;    //!< IPC when ok, 0.0 otherwise
    bool ok = false;
    unsigned attempts = 0; //!< evaluator invocations consumed
    std::string error;     //!< what() of the last failure, "" when ok
};

/**
 * Runs batches of sweep jobs on a fixed thread pool.
 *
 * The runner owns scheduling only; the evaluator owns simulation.
 * Results are returned in the order of the input points regardless of
 * which worker finished first.
 *
 * Failure safety: a throwing evaluator never aborts the batch.  The
 * remaining points still run to completion; run() then rethrows the
 * first failure *in input-point order* (not completion order, which
 * would be racy), while runWithStatus() reports every point's outcome
 * and never throws for evaluator failures.
 */
class SweepRunner
{
  public:
    /** @param threads worker count (0: resolveThreadCount()). */
    explicit SweepRunner(unsigned threads = 0);

    unsigned threads() const { return threads_; }

    /**
     * Evaluate @p eval over @p points; result i corresponds to
     * points[i].  Duplicate points (by sameConfigAs) are evaluated
     * once and fanned out to every occurrence.  If any evaluation
     * threw, the whole batch still completes, then the first failing
     * point's exception (in input order) is rethrown.
     */
    std::vector<double> run(const std::vector<SweepPoint> &points,
                            const PointEvaluator &eval) const;

    /**
     * Evaluate @p eval over @p points with up to @p max_attempts
     * tries per point (fresh attempt number each try -- see
     * deriveRetrySeed()).  Never throws for evaluator failures:
     * status i records points[i]'s value or its last error.
     */
    std::vector<PointStatus>
    runWithStatus(const std::vector<SweepPoint> &points,
                  const RetryingEvaluator &eval,
                  unsigned max_attempts = 1) const;

  private:
    std::vector<PointStatus>
    runDetailed(const std::vector<SweepPoint> &points,
                const RetryingEvaluator &eval, unsigned max_attempts,
                std::vector<std::exception_ptr> *errors) const;

    unsigned threads_;
};

} // namespace sharch::exec

#endif // SHARCH_EXEC_SWEEP_HH
